# Empty compiler generated dependencies file for maabe_baseline.
# This may be replaced when dependencies are built.
