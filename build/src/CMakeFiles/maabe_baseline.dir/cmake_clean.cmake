file(REMOVE_RECURSE
  "CMakeFiles/maabe_baseline.dir/baseline/lewko.cpp.o"
  "CMakeFiles/maabe_baseline.dir/baseline/lewko.cpp.o.d"
  "CMakeFiles/maabe_baseline.dir/baseline/lewko_serial.cpp.o"
  "CMakeFiles/maabe_baseline.dir/baseline/lewko_serial.cpp.o.d"
  "CMakeFiles/maabe_baseline.dir/baseline/waters.cpp.o"
  "CMakeFiles/maabe_baseline.dir/baseline/waters.cpp.o.d"
  "libmaabe_baseline.a"
  "libmaabe_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maabe_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
