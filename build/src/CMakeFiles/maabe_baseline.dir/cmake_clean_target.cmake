file(REMOVE_RECURSE
  "libmaabe_baseline.a"
)
