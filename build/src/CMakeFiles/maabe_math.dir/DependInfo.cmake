
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/bignum.cpp" "src/CMakeFiles/maabe_math.dir/math/bignum.cpp.o" "gcc" "src/CMakeFiles/maabe_math.dir/math/bignum.cpp.o.d"
  "/root/repo/src/math/montgomery.cpp" "src/CMakeFiles/maabe_math.dir/math/montgomery.cpp.o" "gcc" "src/CMakeFiles/maabe_math.dir/math/montgomery.cpp.o.d"
  "/root/repo/src/math/prime.cpp" "src/CMakeFiles/maabe_math.dir/math/prime.cpp.o" "gcc" "src/CMakeFiles/maabe_math.dir/math/prime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/maabe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
