# Empty compiler generated dependencies file for maabe_math.
# This may be replaced when dependencies are built.
