file(REMOVE_RECURSE
  "libmaabe_math.a"
)
