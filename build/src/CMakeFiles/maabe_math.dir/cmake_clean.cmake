file(REMOVE_RECURSE
  "CMakeFiles/maabe_math.dir/math/bignum.cpp.o"
  "CMakeFiles/maabe_math.dir/math/bignum.cpp.o.d"
  "CMakeFiles/maabe_math.dir/math/montgomery.cpp.o"
  "CMakeFiles/maabe_math.dir/math/montgomery.cpp.o.d"
  "CMakeFiles/maabe_math.dir/math/prime.cpp.o"
  "CMakeFiles/maabe_math.dir/math/prime.cpp.o.d"
  "libmaabe_math.a"
  "libmaabe_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maabe_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
