file(REMOVE_RECURSE
  "libmaabe_cloud.a"
)
