file(REMOVE_RECURSE
  "CMakeFiles/maabe_cloud.dir/cloud/entities.cpp.o"
  "CMakeFiles/maabe_cloud.dir/cloud/entities.cpp.o.d"
  "CMakeFiles/maabe_cloud.dir/cloud/hybrid.cpp.o"
  "CMakeFiles/maabe_cloud.dir/cloud/hybrid.cpp.o.d"
  "CMakeFiles/maabe_cloud.dir/cloud/meter.cpp.o"
  "CMakeFiles/maabe_cloud.dir/cloud/meter.cpp.o.d"
  "CMakeFiles/maabe_cloud.dir/cloud/server.cpp.o"
  "CMakeFiles/maabe_cloud.dir/cloud/server.cpp.o.d"
  "CMakeFiles/maabe_cloud.dir/cloud/system.cpp.o"
  "CMakeFiles/maabe_cloud.dir/cloud/system.cpp.o.d"
  "libmaabe_cloud.a"
  "libmaabe_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maabe_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
