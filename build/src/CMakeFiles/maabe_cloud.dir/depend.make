# Empty dependencies file for maabe_cloud.
# This may be replaced when dependencies are built.
