# Empty compiler generated dependencies file for maabe_pairing.
# This may be replaced when dependencies are built.
