file(REMOVE_RECURSE
  "CMakeFiles/maabe_pairing.dir/pairing/curve.cpp.o"
  "CMakeFiles/maabe_pairing.dir/pairing/curve.cpp.o.d"
  "CMakeFiles/maabe_pairing.dir/pairing/fixed_base.cpp.o"
  "CMakeFiles/maabe_pairing.dir/pairing/fixed_base.cpp.o.d"
  "CMakeFiles/maabe_pairing.dir/pairing/fp.cpp.o"
  "CMakeFiles/maabe_pairing.dir/pairing/fp.cpp.o.d"
  "CMakeFiles/maabe_pairing.dir/pairing/fp2.cpp.o"
  "CMakeFiles/maabe_pairing.dir/pairing/fp2.cpp.o.d"
  "CMakeFiles/maabe_pairing.dir/pairing/group.cpp.o"
  "CMakeFiles/maabe_pairing.dir/pairing/group.cpp.o.d"
  "CMakeFiles/maabe_pairing.dir/pairing/pairing.cpp.o"
  "CMakeFiles/maabe_pairing.dir/pairing/pairing.cpp.o.d"
  "CMakeFiles/maabe_pairing.dir/pairing/params.cpp.o"
  "CMakeFiles/maabe_pairing.dir/pairing/params.cpp.o.d"
  "libmaabe_pairing.a"
  "libmaabe_pairing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maabe_pairing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
