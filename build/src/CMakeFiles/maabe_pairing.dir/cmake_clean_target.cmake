file(REMOVE_RECURSE
  "libmaabe_pairing.a"
)
