
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pairing/curve.cpp" "src/CMakeFiles/maabe_pairing.dir/pairing/curve.cpp.o" "gcc" "src/CMakeFiles/maabe_pairing.dir/pairing/curve.cpp.o.d"
  "/root/repo/src/pairing/fixed_base.cpp" "src/CMakeFiles/maabe_pairing.dir/pairing/fixed_base.cpp.o" "gcc" "src/CMakeFiles/maabe_pairing.dir/pairing/fixed_base.cpp.o.d"
  "/root/repo/src/pairing/fp.cpp" "src/CMakeFiles/maabe_pairing.dir/pairing/fp.cpp.o" "gcc" "src/CMakeFiles/maabe_pairing.dir/pairing/fp.cpp.o.d"
  "/root/repo/src/pairing/fp2.cpp" "src/CMakeFiles/maabe_pairing.dir/pairing/fp2.cpp.o" "gcc" "src/CMakeFiles/maabe_pairing.dir/pairing/fp2.cpp.o.d"
  "/root/repo/src/pairing/group.cpp" "src/CMakeFiles/maabe_pairing.dir/pairing/group.cpp.o" "gcc" "src/CMakeFiles/maabe_pairing.dir/pairing/group.cpp.o.d"
  "/root/repo/src/pairing/pairing.cpp" "src/CMakeFiles/maabe_pairing.dir/pairing/pairing.cpp.o" "gcc" "src/CMakeFiles/maabe_pairing.dir/pairing/pairing.cpp.o.d"
  "/root/repo/src/pairing/params.cpp" "src/CMakeFiles/maabe_pairing.dir/pairing/params.cpp.o" "gcc" "src/CMakeFiles/maabe_pairing.dir/pairing/params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/maabe_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
