file(REMOVE_RECURSE
  "CMakeFiles/maabe_lsss.dir/lsss/matrix.cpp.o"
  "CMakeFiles/maabe_lsss.dir/lsss/matrix.cpp.o.d"
  "CMakeFiles/maabe_lsss.dir/lsss/parser.cpp.o"
  "CMakeFiles/maabe_lsss.dir/lsss/parser.cpp.o.d"
  "CMakeFiles/maabe_lsss.dir/lsss/policy.cpp.o"
  "CMakeFiles/maabe_lsss.dir/lsss/policy.cpp.o.d"
  "libmaabe_lsss.a"
  "libmaabe_lsss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maabe_lsss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
