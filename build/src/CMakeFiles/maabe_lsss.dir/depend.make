# Empty dependencies file for maabe_lsss.
# This may be replaced when dependencies are built.
