file(REMOVE_RECURSE
  "libmaabe_lsss.a"
)
