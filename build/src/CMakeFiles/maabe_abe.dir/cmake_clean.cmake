file(REMOVE_RECURSE
  "CMakeFiles/maabe_abe.dir/abe/scheme.cpp.o"
  "CMakeFiles/maabe_abe.dir/abe/scheme.cpp.o.d"
  "CMakeFiles/maabe_abe.dir/abe/serial.cpp.o"
  "CMakeFiles/maabe_abe.dir/abe/serial.cpp.o.d"
  "CMakeFiles/maabe_abe.dir/abe/types.cpp.o"
  "CMakeFiles/maabe_abe.dir/abe/types.cpp.o.d"
  "libmaabe_abe.a"
  "libmaabe_abe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maabe_abe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
