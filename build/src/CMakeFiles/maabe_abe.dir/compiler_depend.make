# Empty compiler generated dependencies file for maabe_abe.
# This may be replaced when dependencies are built.
