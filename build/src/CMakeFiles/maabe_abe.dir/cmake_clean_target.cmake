file(REMOVE_RECURSE
  "libmaabe_abe.a"
)
