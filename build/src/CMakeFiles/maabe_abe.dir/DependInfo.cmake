
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abe/scheme.cpp" "src/CMakeFiles/maabe_abe.dir/abe/scheme.cpp.o" "gcc" "src/CMakeFiles/maabe_abe.dir/abe/scheme.cpp.o.d"
  "/root/repo/src/abe/serial.cpp" "src/CMakeFiles/maabe_abe.dir/abe/serial.cpp.o" "gcc" "src/CMakeFiles/maabe_abe.dir/abe/serial.cpp.o.d"
  "/root/repo/src/abe/types.cpp" "src/CMakeFiles/maabe_abe.dir/abe/types.cpp.o" "gcc" "src/CMakeFiles/maabe_abe.dir/abe/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/maabe_lsss.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_pairing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
