file(REMOVE_RECURSE
  "CMakeFiles/maabe_common.dir/common/bytes.cpp.o"
  "CMakeFiles/maabe_common.dir/common/bytes.cpp.o.d"
  "CMakeFiles/maabe_common.dir/common/wire.cpp.o"
  "CMakeFiles/maabe_common.dir/common/wire.cpp.o.d"
  "libmaabe_common.a"
  "libmaabe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maabe_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
