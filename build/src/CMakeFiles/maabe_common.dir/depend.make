# Empty dependencies file for maabe_common.
# This may be replaced when dependencies are built.
