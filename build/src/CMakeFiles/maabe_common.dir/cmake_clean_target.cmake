file(REMOVE_RECURSE
  "libmaabe_common.a"
)
