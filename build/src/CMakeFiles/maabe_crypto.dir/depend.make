# Empty dependencies file for maabe_crypto.
# This may be replaced when dependencies are built.
