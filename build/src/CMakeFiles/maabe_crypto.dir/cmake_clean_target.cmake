file(REMOVE_RECURSE
  "libmaabe_crypto.a"
)
