file(REMOVE_RECURSE
  "CMakeFiles/maabe_crypto.dir/crypto/aes.cpp.o"
  "CMakeFiles/maabe_crypto.dir/crypto/aes.cpp.o.d"
  "CMakeFiles/maabe_crypto.dir/crypto/authenc.cpp.o"
  "CMakeFiles/maabe_crypto.dir/crypto/authenc.cpp.o.d"
  "CMakeFiles/maabe_crypto.dir/crypto/drbg.cpp.o"
  "CMakeFiles/maabe_crypto.dir/crypto/drbg.cpp.o.d"
  "CMakeFiles/maabe_crypto.dir/crypto/hmac.cpp.o"
  "CMakeFiles/maabe_crypto.dir/crypto/hmac.cpp.o.d"
  "CMakeFiles/maabe_crypto.dir/crypto/random.cpp.o"
  "CMakeFiles/maabe_crypto.dir/crypto/random.cpp.o.d"
  "CMakeFiles/maabe_crypto.dir/crypto/sha256.cpp.o"
  "CMakeFiles/maabe_crypto.dir/crypto/sha256.cpp.o.d"
  "libmaabe_crypto.a"
  "libmaabe_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maabe_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
