
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cpp" "src/CMakeFiles/maabe_crypto.dir/crypto/aes.cpp.o" "gcc" "src/CMakeFiles/maabe_crypto.dir/crypto/aes.cpp.o.d"
  "/root/repo/src/crypto/authenc.cpp" "src/CMakeFiles/maabe_crypto.dir/crypto/authenc.cpp.o" "gcc" "src/CMakeFiles/maabe_crypto.dir/crypto/authenc.cpp.o.d"
  "/root/repo/src/crypto/drbg.cpp" "src/CMakeFiles/maabe_crypto.dir/crypto/drbg.cpp.o" "gcc" "src/CMakeFiles/maabe_crypto.dir/crypto/drbg.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/CMakeFiles/maabe_crypto.dir/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/maabe_crypto.dir/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/random.cpp" "src/CMakeFiles/maabe_crypto.dir/crypto/random.cpp.o" "gcc" "src/CMakeFiles/maabe_crypto.dir/crypto/random.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/maabe_crypto.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/maabe_crypto.dir/crypto/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/maabe_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
