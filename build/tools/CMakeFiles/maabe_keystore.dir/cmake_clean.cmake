file(REMOVE_RECURSE
  "CMakeFiles/maabe_keystore.dir/keystore.cpp.o"
  "CMakeFiles/maabe_keystore.dir/keystore.cpp.o.d"
  "libmaabe_keystore.a"
  "libmaabe_keystore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maabe_keystore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
