# Empty compiler generated dependencies file for maabe_keystore.
# This may be replaced when dependencies are built.
