file(REMOVE_RECURSE
  "libmaabe_keystore.a"
)
