file(REMOVE_RECURSE
  "CMakeFiles/maabe-cli.dir/maabe_cli.cpp.o"
  "CMakeFiles/maabe-cli.dir/maabe_cli.cpp.o.d"
  "maabe-cli"
  "maabe-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maabe-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
