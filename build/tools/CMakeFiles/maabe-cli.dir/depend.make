# Empty dependencies file for maabe-cli.
# This may be replaced when dependencies are built.
