# Empty compiler generated dependencies file for threshold_ablation.
# This may be replaced when dependencies are built.
