file(REMOVE_RECURSE
  "CMakeFiles/threshold_ablation.dir/threshold_ablation.cpp.o"
  "CMakeFiles/threshold_ablation.dir/threshold_ablation.cpp.o.d"
  "threshold_ablation"
  "threshold_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
