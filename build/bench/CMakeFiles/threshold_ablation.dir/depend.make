# Empty dependencies file for threshold_ablation.
# This may be replaced when dependencies are built.
