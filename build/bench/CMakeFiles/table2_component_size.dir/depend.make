# Empty dependencies file for table2_component_size.
# This may be replaced when dependencies are built.
