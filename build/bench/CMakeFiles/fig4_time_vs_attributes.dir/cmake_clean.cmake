file(REMOVE_RECURSE
  "CMakeFiles/fig4_time_vs_attributes.dir/fig4_time_vs_attributes.cpp.o"
  "CMakeFiles/fig4_time_vs_attributes.dir/fig4_time_vs_attributes.cpp.o.d"
  "fig4_time_vs_attributes"
  "fig4_time_vs_attributes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_time_vs_attributes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
