# Empty compiler generated dependencies file for pairing_micro.
# This may be replaced when dependencies are built.
