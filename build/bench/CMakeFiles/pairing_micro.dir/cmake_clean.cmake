file(REMOVE_RECURSE
  "CMakeFiles/pairing_micro.dir/pairing_micro.cpp.o"
  "CMakeFiles/pairing_micro.dir/pairing_micro.cpp.o.d"
  "pairing_micro"
  "pairing_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pairing_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
