
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_scalability.cpp" "bench/CMakeFiles/table1_scalability.dir/table1_scalability.cpp.o" "gcc" "bench/CMakeFiles/table1_scalability.dir/table1_scalability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/maabe_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_abe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_lsss.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_pairing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
