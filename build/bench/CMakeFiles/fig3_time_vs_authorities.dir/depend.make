# Empty dependencies file for fig3_time_vs_authorities.
# This may be replaced when dependencies are built.
