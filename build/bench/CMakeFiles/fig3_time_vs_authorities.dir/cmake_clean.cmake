file(REMOVE_RECURSE
  "CMakeFiles/fig3_time_vs_authorities.dir/fig3_time_vs_authorities.cpp.o"
  "CMakeFiles/fig3_time_vs_authorities.dir/fig3_time_vs_authorities.cpp.o.d"
  "fig3_time_vs_authorities"
  "fig3_time_vs_authorities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_time_vs_authorities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
