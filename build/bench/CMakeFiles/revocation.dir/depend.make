# Empty dependencies file for revocation.
# This may be replaced when dependencies are built.
