file(REMOVE_RECURSE
  "CMakeFiles/revocation.dir/revocation.cpp.o"
  "CMakeFiles/revocation.dir/revocation.cpp.o.d"
  "revocation"
  "revocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
