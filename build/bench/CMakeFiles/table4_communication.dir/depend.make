# Empty dependencies file for table4_communication.
# This may be replaced when dependencies are built.
