file(REMOVE_RECURSE
  "CMakeFiles/table4_communication.dir/table4_communication.cpp.o"
  "CMakeFiles/table4_communication.dir/table4_communication.cpp.o.d"
  "table4_communication"
  "table4_communication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_communication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
