# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_math[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_pairing[1]_include.cmake")
include("/root/repo/build/tests/test_lsss[1]_include.cmake")
include("/root/repo/build/tests/test_abe[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_cloud[1]_include.cmake")
include("/root/repo/build/tests/test_keystore[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
