# Empty dependencies file for test_keystore.
# This may be replaced when dependencies are built.
