file(REMOVE_RECURSE
  "CMakeFiles/test_keystore.dir/tools/keystore_test.cpp.o"
  "CMakeFiles/test_keystore.dir/tools/keystore_test.cpp.o.d"
  "test_keystore"
  "test_keystore.pdb"
  "test_keystore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keystore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
