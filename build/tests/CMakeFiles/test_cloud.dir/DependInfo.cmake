
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cloud/entities_test.cpp" "tests/CMakeFiles/test_cloud.dir/cloud/entities_test.cpp.o" "gcc" "tests/CMakeFiles/test_cloud.dir/cloud/entities_test.cpp.o.d"
  "/root/repo/tests/cloud/failure_injection_test.cpp" "tests/CMakeFiles/test_cloud.dir/cloud/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/test_cloud.dir/cloud/failure_injection_test.cpp.o.d"
  "/root/repo/tests/cloud/hybrid_test.cpp" "tests/CMakeFiles/test_cloud.dir/cloud/hybrid_test.cpp.o" "gcc" "tests/CMakeFiles/test_cloud.dir/cloud/hybrid_test.cpp.o.d"
  "/root/repo/tests/cloud/meter_test.cpp" "tests/CMakeFiles/test_cloud.dir/cloud/meter_test.cpp.o" "gcc" "tests/CMakeFiles/test_cloud.dir/cloud/meter_test.cpp.o.d"
  "/root/repo/tests/cloud/soak_test.cpp" "tests/CMakeFiles/test_cloud.dir/cloud/soak_test.cpp.o" "gcc" "tests/CMakeFiles/test_cloud.dir/cloud/soak_test.cpp.o.d"
  "/root/repo/tests/cloud/system_test.cpp" "tests/CMakeFiles/test_cloud.dir/cloud/system_test.cpp.o" "gcc" "tests/CMakeFiles/test_cloud.dir/cloud/system_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/maabe_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_abe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_lsss.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_pairing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
