
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/math/bignum_test.cpp" "tests/CMakeFiles/test_math.dir/math/bignum_test.cpp.o" "gcc" "tests/CMakeFiles/test_math.dir/math/bignum_test.cpp.o.d"
  "/root/repo/tests/math/montgomery_test.cpp" "tests/CMakeFiles/test_math.dir/math/montgomery_test.cpp.o" "gcc" "tests/CMakeFiles/test_math.dir/math/montgomery_test.cpp.o.d"
  "/root/repo/tests/math/prime_test.cpp" "tests/CMakeFiles/test_math.dir/math/prime_test.cpp.o" "gcc" "tests/CMakeFiles/test_math.dir/math/prime_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/maabe_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
