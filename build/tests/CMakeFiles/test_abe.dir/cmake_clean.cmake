file(REMOVE_RECURSE
  "CMakeFiles/test_abe.dir/abe/e2e_property_test.cpp.o"
  "CMakeFiles/test_abe.dir/abe/e2e_property_test.cpp.o.d"
  "CMakeFiles/test_abe.dir/abe/scheme_test.cpp.o"
  "CMakeFiles/test_abe.dir/abe/scheme_test.cpp.o.d"
  "CMakeFiles/test_abe.dir/abe/serial_test.cpp.o"
  "CMakeFiles/test_abe.dir/abe/serial_test.cpp.o.d"
  "test_abe"
  "test_abe.pdb"
  "test_abe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
