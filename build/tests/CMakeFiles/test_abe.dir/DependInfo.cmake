
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/abe/e2e_property_test.cpp" "tests/CMakeFiles/test_abe.dir/abe/e2e_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_abe.dir/abe/e2e_property_test.cpp.o.d"
  "/root/repo/tests/abe/scheme_test.cpp" "tests/CMakeFiles/test_abe.dir/abe/scheme_test.cpp.o" "gcc" "tests/CMakeFiles/test_abe.dir/abe/scheme_test.cpp.o.d"
  "/root/repo/tests/abe/serial_test.cpp" "tests/CMakeFiles/test_abe.dir/abe/serial_test.cpp.o" "gcc" "tests/CMakeFiles/test_abe.dir/abe/serial_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/maabe_abe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_lsss.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_pairing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/maabe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
