file(REMOVE_RECURSE
  "CMakeFiles/test_crypto.dir/crypto/aes_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/aes_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/authenc_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/authenc_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/drbg_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/drbg_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/hmac_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/hmac_test.cpp.o.d"
  "CMakeFiles/test_crypto.dir/crypto/sha256_test.cpp.o"
  "CMakeFiles/test_crypto.dir/crypto/sha256_test.cpp.o.d"
  "test_crypto"
  "test_crypto.pdb"
  "test_crypto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
