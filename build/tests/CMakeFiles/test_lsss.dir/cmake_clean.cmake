file(REMOVE_RECURSE
  "CMakeFiles/test_lsss.dir/lsss/matrix_test.cpp.o"
  "CMakeFiles/test_lsss.dir/lsss/matrix_test.cpp.o.d"
  "CMakeFiles/test_lsss.dir/lsss/parser_test.cpp.o"
  "CMakeFiles/test_lsss.dir/lsss/parser_test.cpp.o.d"
  "CMakeFiles/test_lsss.dir/lsss/policy_test.cpp.o"
  "CMakeFiles/test_lsss.dir/lsss/policy_test.cpp.o.d"
  "test_lsss"
  "test_lsss.pdb"
  "test_lsss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
