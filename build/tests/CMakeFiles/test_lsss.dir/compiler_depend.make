# Empty compiler generated dependencies file for test_lsss.
# This may be replaced when dependencies are built.
