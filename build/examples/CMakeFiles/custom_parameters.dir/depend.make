# Empty dependencies file for custom_parameters.
# This may be replaced when dependencies are built.
