file(REMOVE_RECURSE
  "CMakeFiles/custom_parameters.dir/custom_parameters.cpp.o"
  "CMakeFiles/custom_parameters.dir/custom_parameters.cpp.o.d"
  "custom_parameters"
  "custom_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
