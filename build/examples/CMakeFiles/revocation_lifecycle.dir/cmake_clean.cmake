file(REMOVE_RECURSE
  "CMakeFiles/revocation_lifecycle.dir/revocation_lifecycle.cpp.o"
  "CMakeFiles/revocation_lifecycle.dir/revocation_lifecycle.cpp.o.d"
  "revocation_lifecycle"
  "revocation_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revocation_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
