file(REMOVE_RECURSE
  "CMakeFiles/joint_project.dir/joint_project.cpp.o"
  "CMakeFiles/joint_project.dir/joint_project.cpp.o.d"
  "joint_project"
  "joint_project.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joint_project.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
