# Empty compiler generated dependencies file for joint_project.
# This may be replaced when dependencies are built.
