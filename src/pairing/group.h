// Public pairing-group API used by the ABE schemes.
//
// A Group bundles a type-A parameter set with its contexts, a fixed
// generator g of the order-r subgroup, and the cached value e(g, g).
// Element types Zr (exponents mod r), G1 (curve points) and GT (target
// group) are cheap value types referencing their Group; the Group must
// outlive its elements (create it once per process, e.g. via the
// shared_ptr factories, and keep it alive).
//
// All serialization is fixed-width: |Zr| = r-bytes, |G1| = q-bytes + 1
// (compressed point), |GT| = 2 * q-bytes. These are the element sizes the
// paper's Tables II-IV count symbolically as |p|, |G|, |GT|.
//
// Thread-safety contract (relied on by engine::CryptoEngine): a fully
// constructed Group is immutable. Every const method — pair(), g_pow(),
// egg_pow(), hash_to_*, *_from_bytes, element arithmetic through the
// contexts — may be called concurrently from any number of threads
// without external synchronization. The only mutable state the pairing
// stack touches after construction lives in caller-owned values (the
// elements being produced) and in crypto::Drbg, which is NOT
// synchronized: methods taking a Drbg& (zr_random, g1_random, ...) are
// safe only if each thread uses its own rng instance.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "pairing/fixed_base.h"
#include "pairing/pairing.h"

namespace maabe::pairing {

class Group;

/// Exponent in Z_r (plain representation; arithmetic mod the group
/// order r).
class Zr {
 public:
  Zr() = default;

  const math::Bignum& value() const { return v_; }
  const Group* group() const { return g_; }
  bool is_zero() const { return v_.is_zero(); }

  Zr add(const Zr& o) const;
  Zr sub(const Zr& o) const;
  Zr mul(const Zr& o) const;
  Zr neg() const;
  /// Multiplicative inverse mod r; throws MathError on zero.
  Zr inverse() const;

  friend Zr operator+(const Zr& a, const Zr& b) { return a.add(b); }
  friend Zr operator-(const Zr& a, const Zr& b) { return a.sub(b); }
  friend Zr operator*(const Zr& a, const Zr& b) { return a.mul(b); }
  friend bool operator==(const Zr& a, const Zr& b) { return a.v_ == b.v_; }
  friend bool operator!=(const Zr& a, const Zr& b) { return !(a == b); }

  Bytes to_bytes() const;

 private:
  friend class Group;
  Zr(const Group* g, math::Bignum v) : g_(g), v_(std::move(v)) {}

  const Group* g_ = nullptr;
  math::Bignum v_;
};

/// Point in the order-r subgroup of E(F_q) (written multiplicatively in
/// the paper: G1 "exponentiation" g^k is scalar multiplication here).
class G1 {
 public:
  G1() = default;

  bool is_identity() const { return pt_.inf; }

  G1 add(const G1& o) const;
  G1 neg() const;
  /// g^k — scalar multiplication by an exponent in Z_r.
  G1 mul(const Zr& k) const;
  /// True when the point lies in the order-r subgroup. Deserialized
  /// points are guaranteed on-curve but may sit in a cofactor coset;
  /// key-material decoders call this (see abe/serial.cpp).
  bool in_subgroup() const;

  friend G1 operator+(const G1& a, const G1& b) { return a.add(b); }
  friend G1 operator-(const G1& a, const G1& b) { return a.add(b.neg()); }
  friend G1 operator*(const G1& a, const Zr& k) { return a.mul(k); }
  friend bool operator==(const G1& a, const G1& b);
  friend bool operator!=(const G1& a, const G1& b) { return !(a == b); }

  Bytes to_bytes() const;
  /// Uncompressed encoding x || y || flag (2|q|+1 bytes). Twice the size
  /// of to_bytes() but decodable without a field square root — used for
  /// transient protocol messages (update keys / update infos) where
  /// decode speed matters more than the wire size counted in Table IV.
  Bytes to_bytes_uncompressed() const;

 private:
  friend class Group;
  G1(const Group* g, AffinePoint pt) : g_(g), pt_(std::move(pt)) {}

  const Group* g_ = nullptr;
  AffinePoint pt_;
};

/// Unreduced pairing value: the Miller-loop output in F_{q^2}, before
/// the final exponentiation. Produced by Group::miller() /
/// miller_with(); fold many with mul() (or raise one with pow()) and
/// map the product to GT with Group::miller_reduce() — ONE shared final
/// exponentiation. The final exponentiation is a group homomorphism and
/// all arithmetic is exact, so reduce(a * b) == reduce(a) * reduce(b)
/// bit for bit; this is the algebra behind the multi-pairing kernel.
class MillerVal {
 public:
  MillerVal() = default;

  /// True for the fold-neutral value (identity inputs produce it).
  bool is_one() const;

  MillerVal mul(const MillerVal& o) const;
  /// Full-field exponentiation (Miller values are generally NOT in the
  /// norm-1 subgroup; cyclotomic shortcuts do not apply before
  /// reduction). reduce(m.pow(k)) == reduce(m).pow(k).
  MillerVal pow(const Zr& k) const;

  friend MillerVal operator*(const MillerVal& a, const MillerVal& b) {
    return a.mul(b);
  }

  /// Raw F_{q^2} serialization — lets tests assert bit-level equality
  /// of unreduced values; not a wire format.
  Bytes to_bytes() const;

 private:
  friend class Group;
  MillerVal(const Group* g, Fp2 v) : g_(g), v_(std::move(v)) {}

  const Group* g_ = nullptr;
  Fp2 v_;
};

/// Element of the target group (order-r subgroup of F_{q^2}^*).
class GT {
 public:
  GT() = default;

  bool is_one() const;

  GT mul(const GT& o) const;
  GT div(const GT& o) const { return mul(o.inverse()); }
  /// Inverse via conjugation (valid in the norm-1 cyclotomic subgroup).
  GT inverse() const;
  GT pow(const Zr& k) const;
  /// True when the element lies in the order-r target subgroup.
  bool in_subgroup() const;

  friend GT operator*(const GT& a, const GT& b) { return a.mul(b); }
  friend GT operator/(const GT& a, const GT& b) { return a.div(b); }
  friend bool operator==(const GT& a, const GT& b);
  friend bool operator!=(const GT& a, const GT& b) { return !(a == b); }

  Bytes to_bytes() const;

 private:
  friend class Group;
  GT(const Group* g, Fp2 v) : g_(g), v_(std::move(v)) {}

  const Group* g_ = nullptr;
  Fp2 v_;
};

class Group {
 public:
  /// The paper's setting: 512-bit base field, 160-bit order (PBC a.param).
  static std::shared_ptr<const Group> pbc_a512();
  /// Fast insecure parameters for tests (192-bit base field).
  static std::shared_ptr<const Group> test_small();
  static std::shared_ptr<const Group> create(const TypeAParams& params);

  explicit Group(const TypeAParams& params);

  const TypeAParams& params() const { return ctx_.params(); }
  const math::Bignum& order() const { return ctx_.params().r; }
  const PairingCtx& ctx() const { return ctx_; }

  // Serialized element sizes in bytes.
  size_t zr_size() const;
  size_t g1_size() const;
  size_t g1_uncompressed_size() const;
  size_t gt_size() const;

  // ---- Zr ----------------------------------------------------------
  Zr zr_zero() const { return Zr(this, {}); }
  Zr zr_one() const { return Zr(this, math::Bignum::from_u64(1)); }
  Zr zr_from_u64(uint64_t v) const;
  /// Reduces an arbitrary integer mod r.
  Zr zr_from_bignum(const math::Bignum& v) const;
  Zr zr_random(crypto::Drbg& rng) const;
  Zr zr_nonzero_random(crypto::Drbg& rng) const;
  Zr zr_from_bytes(ByteView data) const;
  /// The random oracle H: {0,1}* -> Z_r of the paper.
  Zr hash_to_zr(ByteView data) const;
  Zr hash_to_zr(std::string_view s) const;

  // ---- G1 ----------------------------------------------------------
  G1 g1_identity() const { return G1(this, AffinePoint::infinity()); }
  /// The fixed generator g (deterministically derived from the params).
  const G1& g() const { return generator_; }
  /// g^k via the precomputed window table — 4-6x faster than g().mul(k);
  /// use whenever the base is the generator (KeyGen, Encrypt hot paths).
  G1 g_pow(const Zr& k) const;
  G1 g1_random(crypto::Drbg& rng) const;
  /// Try-and-increment hash to the order-r subgroup (needed by the
  /// Lewko-Waters baseline's H: {0,1}* -> G).
  G1 hash_to_g1(ByteView data) const;
  G1 hash_to_g1(std::string_view s) const;
  G1 g1_from_bytes(ByteView data) const;
  /// Decodes the x || y || flag form. Validates the curve equation
  /// (cheap) instead of re-deriving y by square root; like
  /// g1_from_bytes, the result is on-curve but not subgroup-checked.
  G1 g1_from_bytes_uncompressed(ByteView data) const;

  // ---- GT ----------------------------------------------------------
  GT gt_one() const { return GT(this, ctx_.fq2().one()); }
  /// e(g, g), cached at construction.
  const GT& gt_generator() const { return e_gg_; }
  /// e(g,g)^k via the precomputed window table.
  GT egg_pow(const Zr& k) const;
  /// Uniform random element of the order-r target subgroup (used as the
  /// KEM "message" whose hash becomes a content key).
  GT gt_random(crypto::Drbg& rng) const;
  GT gt_from_bytes(ByteView data) const;

  /// The bilinear map e: G1 x G1 -> GT.
  GT pair(const G1& a, const G1& b) const;

  // ---- Multi-pairing kernel ----------------------------------------
  /// The fold-neutral Miller value (what an empty product reduces from).
  MillerVal miller_one() const { return MillerVal(this, ctx_.fq2().one()); }
  /// Miller loop only — no final exponentiation. Identity inputs yield
  /// the neutral value, so any term is safe to fold.
  MillerVal miller(const G1& a, const G1& b) const;
  /// Reduces a (folded) Miller value to GT: one final exponentiation.
  /// miller_reduce(miller(a, b)) == pair(a, b) bit for bit.
  GT miller_reduce(const MillerVal& f) const;

  /// Line-coefficient table for a fixed first pairing argument (the
  /// pairing analogue of g1_precompute). `base` may be the identity —
  /// evaluations then return the neutral value. The table references
  /// this Group's contexts and must not outlive it.
  std::unique_ptr<PairingPrecomp> pair_precompute(const G1& base) const;
  /// miller(base, b) through the precomputed table — ~2x faster, same
  /// bits.
  MillerVal miller_with(const PairingPrecomp& pre, const G1& b) const;

  // ---- Precomputation hooks (engine layer) -------------------------
  // Window tables for *variable* bases, used by engine::CryptoEngine's
  // multi-exponentiation cache for repeatedly-seen bases (PK_UID,
  // PK_{x,AID}, C', ...). The table references this Group's contexts and
  // must not outlive it. `base` must not be the identity.
  std::unique_ptr<G1FixedBase> g1_precompute(const G1& base) const;
  G1 g1_pow_with(const G1FixedBase& table, const Zr& k) const;
  std::unique_ptr<GtFixedBase> gt_precompute(const GT& base) const;
  GT gt_pow_with(const GtFixedBase& table, const Zr& k) const;

  /// Process-unique id of this Group instance (monotonic counter).
  /// Lets caches keyed by Group* detect address reuse after destruction.
  uint64_t instance_id() const { return instance_id_; }

 private:
  friend class Zr;
  friend class G1;
  friend class GT;
  friend class MillerVal;

  PairingCtx ctx_;
  G1 generator_;
  GT e_gg_;
  std::unique_ptr<G1FixedBase> g_table_;
  std::unique_ptr<GtFixedBase> egg_table_;
  uint64_t instance_id_ = 0;
};

}  // namespace maabe::pairing
