// Quadratic extension F_{q^2} = F_q[i] / (i^2 + 1).
//
// Valid because q = 3 (mod 4) makes -1 a non-residue. This is the target
// field of the embedding-degree-2 pairing: GT elements live in the
// order-(q+1) cyclotomic subgroup of F_{q^2}^*, where inversion is
// conjugation.
#pragma once

#include "pairing/fp.h"

namespace maabe::pairing {

/// Element a + b*i with both coordinates in Montgomery form.
struct Fp2 {
  math::Bignum a;
  math::Bignum b;

  friend bool operator==(const Fp2& x, const Fp2& y) = default;
};

class Fp2Ctx {
 public:
  explicit Fp2Ctx(const FpCtx& fq) : fq_(fq) {}

  const FpCtx& base() const { return fq_; }

  Fp2 zero() const { return {fq_.zero(), fq_.zero()}; }
  Fp2 one() const { return {fq_.one(), fq_.zero()}; }
  bool is_one(const Fp2& x) const { return x.a == fq_.one() && x.b.is_zero(); }
  bool is_zero(const Fp2& x) const { return x.a.is_zero() && x.b.is_zero(); }

  Fp2 add(const Fp2& x, const Fp2& y) const;
  Fp2 sub(const Fp2& x, const Fp2& y) const;
  Fp2 neg(const Fp2& x) const;
  /// Karatsuba: 3 base-field multiplications.
  Fp2 mul(const Fp2& x, const Fp2& y) const;
  /// (a+bi)^2 = (a-b)(a+b) + 2ab i: 2 base-field multiplications.
  Fp2 sqr(const Fp2& x) const;
  Fp2 conj(const Fp2& x) const { return {x.a, fq_.neg(x.b)}; }
  /// (a+bi)^{-1} = (a-bi) / (a^2+b^2). Throws MathError on zero.
  Fp2 inv(const Fp2& x) const;
  Fp2 pow(const Fp2& base, const math::Bignum& exp) const;

  /// Norm a^2 + b^2 == 1, i.e. membership in the order-(q+1) cyclotomic
  /// subgroup (where every pairing value lands after the easy part of
  /// the final exponentiation, and where all of GT lives).
  bool is_norm_one(const Fp2& x) const;
  /// Square of a norm-1 element: (2a^2 - 1) + ((a+b)^2 - 1) i — two
  /// base-field *squarings* and no multiplications. Only valid when
  /// is_norm_one(x); produces bits identical to sqr(x) there.
  Fp2 sqr_cyclotomic(const Fp2& x) const;
  /// pow() with cyclotomic squarings; base must satisfy is_norm_one.
  Fp2 pow_cyclotomic(const Fp2& base, const math::Bignum& exp) const;

  /// Uniform nonzero-capable random element.
  Fp2 random(crypto::Drbg& rng) const;

  /// 2*|F_q| bytes: a || b (plain big-endian).
  Bytes to_bytes(const Fp2& x) const;
  Fp2 from_bytes(ByteView data) const;
  size_t byte_length() const { return 2 * fq_.byte_length(); }

 private:
  const FpCtx& fq_;
};

}  // namespace maabe::pairing
