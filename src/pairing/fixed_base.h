// Fixed-base windowed exponentiation.
//
// Every algorithm in the scheme exponentiates the same two bases over
// and over: the generator g (KeyGen, Encrypt) and e(g,g) (Encrypt,
// authority public keys). Precomputing radix-2^w digit tables
//   T[d][j] = base^(j * 2^(w*d)),  j in [0, 2^w)
// turns a b-bit exponentiation into ceil(b/w) group operations with no
// doublings/squarings — a 4-6x speedup for w = 4 at 160-bit exponents.
//
// The tables are built once per Group (see group.h) and shared by all
// callers; lookups are value-dependent (NOT constant-time, like the rest
// of this research library).
#pragma once

#include <vector>

#include "pairing/curve.h"
#include "pairing/fp2.h"

namespace maabe::pairing {

/// Window table for a fixed point of E(F_q).
class G1FixedBase {
 public:
  /// base must not be infinity; `exp_bits` is the maximum exponent
  /// length (the group order's bit length).
  G1FixedBase(const CurveCtx& curve, const AffinePoint& base, int exp_bits,
              int window_bits = 4);

  /// base^k (written multiplicatively) for 0 <= k < 2^exp_bits.
  AffinePoint pow(const math::Bignum& k) const;

 private:
  const CurveCtx& curve_;
  int window_bits_;
  int digits_;
  /// table_[d][j] = base * (j << (w*d)); j = 0 entries stay infinity.
  std::vector<std::vector<AffinePoint>> table_;
};

/// Window table for a fixed element of the order-r subgroup of F_{q^2}.
class GtFixedBase {
 public:
  GtFixedBase(const Fp2Ctx& fq2, const Fp2& base, int exp_bits, int window_bits = 4);

  Fp2 pow(const math::Bignum& k) const;

 private:
  const Fp2Ctx& fq2_;
  int window_bits_;
  int digits_;
  std::vector<std::vector<Fp2>> table_;
};

}  // namespace maabe::pairing
