// Prime-field context: Montgomery arithmetic plus the field-level
// operations the curve and pairing layers need (inversion, square roots,
// serialization, uniform sampling).
//
// Field elements are plain math::Bignum values in Montgomery form; all
// operations go through the owning FpCtx (context-object style keeps the
// hot path free of per-element field pointers).
#pragma once

#include "crypto/drbg.h"
#include "math/bignum.h"
#include "math/montgomery.h"

namespace maabe::pairing {

class FpCtx {
 public:
  /// p must be an odd prime.
  explicit FpCtx(const math::Bignum& p);

  const math::Bignum& modulus() const { return mont_.modulus(); }
  size_t byte_length() const { return mont_.byte_length(); }

  // Montgomery codec.
  math::Bignum enc(const math::Bignum& plain) const { return mont_.to_mont(plain); }
  math::Bignum dec(const math::Bignum& m) const { return mont_.from_mont(m); }

  // Arithmetic on Montgomery-form elements.
  math::Bignum add(const math::Bignum& a, const math::Bignum& b) const { return mont_.add(a, b); }
  math::Bignum sub(const math::Bignum& a, const math::Bignum& b) const { return mont_.sub(a, b); }
  math::Bignum neg(const math::Bignum& a) const { return mont_.neg(a); }
  math::Bignum mul(const math::Bignum& a, const math::Bignum& b) const { return mont_.mul(a, b); }
  math::Bignum sqr(const math::Bignum& a) const { return mont_.sqr(a); }
  math::Bignum inv(const math::Bignum& a) const;
  math::Bignum pow(const math::Bignum& base, const math::Bignum& exp) const {
    return mont_.pow(base, exp);
  }
  math::Bignum dbl(const math::Bignum& a) const { return mont_.add(a, a); }

  const math::Bignum& one() const { return mont_.one(); }
  math::Bignum zero() const { return math::Bignum(); }

  /// Quadratic-residue test via Euler's criterion (element in Montgomery
  /// form; zero counts as a residue).
  bool is_qr(const math::Bignum& a) const;

  /// Square root for p = 3 (mod 4): a^((p+1)/4). Throws MathError if `a`
  /// is a non-residue.
  math::Bignum sqrt(const math::Bignum& a) const;

  /// Uniform field element (Montgomery form).
  math::Bignum random(crypto::Drbg& rng) const;

  /// Fixed-width big-endian serialization of the *plain* value.
  Bytes to_bytes(const math::Bignum& mont_form) const;
  math::Bignum from_bytes(ByteView data) const;

 private:
  math::MontCtx mont_;
  math::Bignum qr_exp_;    // (p-1)/2
  math::Bignum sqrt_exp_;  // (p+1)/4
};

}  // namespace maabe::pairing
