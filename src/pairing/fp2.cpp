#include "pairing/fp2.h"

#include "common/errors.h"

namespace maabe::pairing {

using math::Bignum;

Fp2 Fp2Ctx::add(const Fp2& x, const Fp2& y) const {
  return {fq_.add(x.a, y.a), fq_.add(x.b, y.b)};
}

Fp2 Fp2Ctx::sub(const Fp2& x, const Fp2& y) const {
  return {fq_.sub(x.a, y.a), fq_.sub(x.b, y.b)};
}

Fp2 Fp2Ctx::neg(const Fp2& x) const { return {fq_.neg(x.a), fq_.neg(x.b)}; }

Fp2 Fp2Ctx::mul(const Fp2& x, const Fp2& y) const {
  const Bignum t0 = fq_.mul(x.a, y.a);
  const Bignum t1 = fq_.mul(x.b, y.b);
  const Bignum mixed = fq_.mul(fq_.add(x.a, x.b), fq_.add(y.a, y.b));
  return {fq_.sub(t0, t1), fq_.sub(fq_.sub(mixed, t0), t1)};
}

Fp2 Fp2Ctx::sqr(const Fp2& x) const {
  const Bignum t = fq_.mul(fq_.sub(x.a, x.b), fq_.add(x.a, x.b));
  const Bignum ab = fq_.mul(x.a, x.b);
  return {t, fq_.dbl(ab)};
}

Fp2 Fp2Ctx::inv(const Fp2& x) const {
  const Bignum norm = fq_.add(fq_.sqr(x.a), fq_.sqr(x.b));
  const Bignum d = fq_.inv(norm);  // throws on zero
  return {fq_.mul(x.a, d), fq_.neg(fq_.mul(x.b, d))};
}

Fp2 Fp2Ctx::pow(const Fp2& base, const Bignum& exp) const {
  Fp2 result = one();
  for (int i = exp.bit_length() - 1; i >= 0; --i) {
    result = sqr(result);
    if (exp.bit(i)) result = mul(result, base);
  }
  return result;
}

Fp2 Fp2Ctx::random(crypto::Drbg& rng) const {
  return {fq_.random(rng), fq_.random(rng)};
}

Bytes Fp2Ctx::to_bytes(const Fp2& x) const {
  Bytes out = fq_.to_bytes(x.a);
  const Bytes bb = fq_.to_bytes(x.b);
  out.insert(out.end(), bb.begin(), bb.end());
  return out;
}

Fp2 Fp2Ctx::from_bytes(ByteView data) const {
  const size_t half = fq_.byte_length();
  if (data.size() != 2 * half) throw WireError("Fp2Ctx::from_bytes: bad length");
  return {fq_.from_bytes(data.subspan(0, half)), fq_.from_bytes(data.subspan(half))};
}

}  // namespace maabe::pairing
