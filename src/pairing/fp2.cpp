#include "pairing/fp2.h"

#include "common/errors.h"

namespace maabe::pairing {

using math::Bignum;

Fp2 Fp2Ctx::add(const Fp2& x, const Fp2& y) const {
  return {fq_.add(x.a, y.a), fq_.add(x.b, y.b)};
}

Fp2 Fp2Ctx::sub(const Fp2& x, const Fp2& y) const {
  return {fq_.sub(x.a, y.a), fq_.sub(x.b, y.b)};
}

Fp2 Fp2Ctx::neg(const Fp2& x) const { return {fq_.neg(x.a), fq_.neg(x.b)}; }

Fp2 Fp2Ctx::mul(const Fp2& x, const Fp2& y) const {
  const Bignum t0 = fq_.mul(x.a, y.a);
  const Bignum t1 = fq_.mul(x.b, y.b);
  const Bignum mixed = fq_.mul(fq_.add(x.a, x.b), fq_.add(y.a, y.b));
  return {fq_.sub(t0, t1), fq_.sub(fq_.sub(mixed, t0), t1)};
}

Fp2 Fp2Ctx::sqr(const Fp2& x) const {
  const Bignum t = fq_.mul(fq_.sub(x.a, x.b), fq_.add(x.a, x.b));
  const Bignum ab = fq_.mul(x.a, x.b);
  return {t, fq_.dbl(ab)};
}

Fp2 Fp2Ctx::inv(const Fp2& x) const {
  const Bignum norm = fq_.add(fq_.sqr(x.a), fq_.sqr(x.b));
  const Bignum d = fq_.inv(norm);  // throws on zero
  return {fq_.mul(x.a, d), fq_.neg(fq_.mul(x.b, d))};
}

Fp2 Fp2Ctx::pow(const Fp2& base, const Bignum& exp) const {
  Fp2 result = one();
  for (int i = exp.bit_length() - 1; i >= 0; --i) {
    result = sqr(result);
    if (exp.bit(i)) result = mul(result, base);
  }
  return result;
}

bool Fp2Ctx::is_norm_one(const Fp2& x) const {
  return fq_.add(fq_.sqr(x.a), fq_.sqr(x.b)) == fq_.one();
}

Fp2 Fp2Ctx::sqr_cyclotomic(const Fp2& x) const {
  // With a^2 + b^2 = 1: (a+bi)^2 = (a^2 - b^2) + 2ab i
  //                             = (2a^2 - 1) + ((a+b)^2 - 1) i.
  // Exact canonical arithmetic makes this bit-identical to sqr(x).
  const Bignum a2 = fq_.sqr(x.a);
  const Bignum s2 = fq_.sqr(fq_.add(x.a, x.b));
  return {fq_.sub(fq_.dbl(a2), fq_.one()), fq_.sub(s2, fq_.one())};
}

Fp2 Fp2Ctx::pow_cyclotomic(const Fp2& base, const Bignum& exp) const {
  // The running value stays in the cyclotomic subgroup (it is a power
  // of `base`), so every square step may use the cheap form. one() is
  // norm-1 too, so the identity-prefix squarings are covered.
  Fp2 result = one();
  for (int i = exp.bit_length() - 1; i >= 0; --i) {
    result = sqr_cyclotomic(result);
    if (exp.bit(i)) result = mul(result, base);
  }
  return result;
}

Fp2 Fp2Ctx::random(crypto::Drbg& rng) const {
  return {fq_.random(rng), fq_.random(rng)};
}

Bytes Fp2Ctx::to_bytes(const Fp2& x) const {
  Bytes out = fq_.to_bytes(x.a);
  const Bytes bb = fq_.to_bytes(x.b);
  out.insert(out.end(), bb.begin(), bb.end());
  return out;
}

Fp2 Fp2Ctx::from_bytes(ByteView data) const {
  const size_t half = fq_.byte_length();
  if (data.size() != 2 * half) throw WireError("Fp2Ctx::from_bytes: bad length");
  return {fq_.from_bytes(data.subspan(0, half)), fq_.from_bytes(data.subspan(half))};
}

}  // namespace maabe::pairing
