// Modified Tate pairing on the type-A curve.
//
//   e(P, Q) = f_{r,P}(phi(Q))^((q^2-1)/r),  phi(x, y) = (-x, i*y)
//
// Implementation notes:
//  * Miller loop in Jacobian coordinates; lines are scaled by arbitrary
//    F_q factors (killed by the final exponentiation), which removes all
//    inversions from the loop.
//  * Denominator elimination: vertical lines evaluate inside F_q because
//    x(phi(Q)) = -x_Q is in F_q, so they are skipped entirely.
//  * Final exponentiation splits as (q^2-1)/r = (q-1) * h:
//    f^(q-1) = conj(f) * f^{-1} (one Fp2 inversion), then
//    square-and-multiply by the cofactor h = (q+1)/r using cyclotomic
//    squarings (f^(q-1) has norm 1).
//  * Multi-pairing: miller_loop() exposes the unreduced Miller value so
//    products of pairings can be folded in F_{q^2} and pay ONE shared
//    final exponentiation. Because x -> x^((q^2-1)/r) is a group
//    homomorphism of F_{q^2}^* and the arithmetic is exact, the result
//    is bit-for-bit the same as multiplying individually reduced
//    pairings.
//  * PairingPrecomp caches the Miller-loop line coefficients of a fixed
//    first argument (the pairing analogue of G1FixedBase): evaluation
//    against a fresh Q then costs two F_q multiplications per line
//    instead of re-deriving tangents/chords and advancing the Jacobian
//    accumulator.
#pragma once

#include <cstdint>
#include <vector>

#include "pairing/curve.h"
#include "pairing/fp2.h"
#include "pairing/params.h"

namespace maabe::pairing {

class PairingCtx;

/// Precomputed Miller-loop line coefficients for a fixed first pairing
/// argument P. Every line the loop multiplies in evaluates at phi(Q) as
///   l(phi(Q)) = (c0 * x_q + c1) + (c2 * y_q) * i
/// with c0..c2 depending only on P (and the loop's Jacobian state,
/// which P determines). miller() replays the recorded schedule and is
/// bit-identical to PairingCtx::miller_loop(P, Q) — distributing the
/// line evaluation over the cached coefficients is exact in modular
/// arithmetic. Immutable after construction; safe for concurrent use.
class PairingPrecomp {
 public:
  PairingPrecomp(const PairingCtx& ctx, const AffinePoint& p);

  /// True when the fixed argument was the point at infinity; miller()
  /// then always returns 1.
  bool base_is_infinity() const { return inf_; }
  size_t line_count() const { return lines_.size(); }

  /// The unreduced Miller value f_{r,P}(phi(Q)).
  Fp2 miller(const AffinePoint& q) const;

 private:
  struct Line {
    math::Bignum c0, c1, c2;
    uint32_t sqrs_before;  ///< f-squarings preceding this line multiply
  };
  const PairingCtx* ctx_;
  bool inf_ = false;
  std::vector<Line> lines_;
  uint32_t trailing_sqrs_ = 0;
};

/// Bundles every context needed to evaluate pairings on one parameter
/// set. Cheap to construct; Group (group.h) owns one per instance.
class PairingCtx {
 public:
  explicit PairingCtx(const TypeAParams& params);

  const TypeAParams& params() const { return params_; }
  const FpCtx& fq() const { return fq_; }
  const Fp2Ctx& fq2() const { return fq2_; }
  const CurveCtx& curve() const { return curve_; }

  /// e(P, Q); symmetric and bilinear on the order-r subgroup. Returns 1
  /// if either input is the point at infinity.
  Fp2 pair(const AffinePoint& p, const AffinePoint& q) const;

  /// f_{r,P}(phi(Q)) — the Miller loop only, no final exponentiation.
  /// Returns 1 if either input is the point at infinity (so the value
  /// is always safe to fold into a shared product).
  Fp2 miller_loop(const AffinePoint& p, const AffinePoint& q) const;

  /// Maps an arbitrary f in F_{q^2}^* to the order-r target group.
  Fp2 final_exponentiation(const Fp2& f) const;

 private:
  TypeAParams params_;
  FpCtx fq_;
  Fp2Ctx fq2_;
  CurveCtx curve_;
};

}  // namespace maabe::pairing
