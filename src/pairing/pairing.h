// Modified Tate pairing on the type-A curve.
//
//   e(P, Q) = f_{r,P}(phi(Q))^((q^2-1)/r),  phi(x, y) = (-x, i*y)
//
// Implementation notes:
//  * Miller loop in Jacobian coordinates; lines are scaled by arbitrary
//    F_q factors (killed by the final exponentiation), which removes all
//    inversions from the loop.
//  * Denominator elimination: vertical lines evaluate inside F_q because
//    x(phi(Q)) = -x_Q is in F_q, so they are skipped entirely.
//  * Final exponentiation splits as (q^2-1)/r = (q-1) * h:
//    f^(q-1) = conj(f) * f^{-1} (one Fp2 inversion), then a plain
//    square-and-multiply by the cofactor h = (q+1)/r.
#pragma once

#include "pairing/curve.h"
#include "pairing/fp2.h"
#include "pairing/params.h"

namespace maabe::pairing {

/// Bundles every context needed to evaluate pairings on one parameter
/// set. Cheap to construct; Group (group.h) owns one per instance.
class PairingCtx {
 public:
  explicit PairingCtx(const TypeAParams& params);

  const TypeAParams& params() const { return params_; }
  const FpCtx& fq() const { return fq_; }
  const Fp2Ctx& fq2() const { return fq2_; }
  const CurveCtx& curve() const { return curve_; }

  /// e(P, Q); symmetric and bilinear on the order-r subgroup. Returns 1
  /// if either input is the point at infinity.
  Fp2 pair(const AffinePoint& p, const AffinePoint& q) const;

  /// Maps an arbitrary f in F_{q^2}^* to the order-r target group.
  Fp2 final_exponentiation(const Fp2& f) const;

 private:
  TypeAParams params_;
  FpCtx fq_;
  Fp2Ctx fq2_;
  CurveCtx curve_;
};

}  // namespace maabe::pairing
