#include "pairing/fp.h"

#include "common/errors.h"

namespace maabe::pairing {

using math::Bignum;

FpCtx::FpCtx(const Bignum& p) : mont_(p) {
  qr_exp_ = Bignum::shr(Bignum::sub(p, Bignum::from_u64(1)), 1);
  sqrt_exp_ = Bignum::shr(Bignum::add(p, Bignum::from_u64(1)), 2);
}

Bignum FpCtx::inv(const Bignum& a) const {
  if (a.is_zero()) throw MathError("FpCtx::inv: zero is not invertible");
  return mont_.inv(a);
}

bool FpCtx::is_qr(const Bignum& a) const {
  if (a.is_zero()) return true;
  return mont_.pow(a, qr_exp_) == mont_.one();
}

Bignum FpCtx::sqrt(const Bignum& a) const {
  if (a.is_zero()) return a;
  const Bignum root = mont_.pow(a, sqrt_exp_);
  if (mont_.mul(root, root) != a) throw MathError("FpCtx::sqrt: not a quadratic residue");
  return root;
}

Bignum FpCtx::random(crypto::Drbg& rng) const {
  return enc(rng.below(mont_.modulus()));
}

Bytes FpCtx::to_bytes(const Bignum& mont_form) const {
  return dec(mont_form).to_bytes_be(mont_.byte_length());
}

Bignum FpCtx::from_bytes(ByteView data) const {
  if (data.size() != mont_.byte_length()) throw WireError("FpCtx::from_bytes: bad length");
  const Bignum plain = Bignum::from_bytes_be(data);
  if (Bignum::cmp(plain, mont_.modulus()) >= 0)
    throw WireError("FpCtx::from_bytes: value exceeds modulus");
  return enc(plain);
}

}  // namespace maabe::pairing
