// Arithmetic on the supersingular curve E: y^2 = x^3 + x over F_q.
//
// Affine points are the external representation; scalar multiplication
// and the Miller loop run in Jacobian coordinates ((X:Y:Z) with
// x = X/Z^2, y = Y/Z^3) to avoid per-step field inversions.
#pragma once

#include "pairing/fp.h"

namespace maabe::pairing {

/// Affine point; coordinates in Montgomery form. `inf` marks the point
/// at infinity (coordinates ignored).
struct AffinePoint {
  math::Bignum x;
  math::Bignum y;
  bool inf = true;

  static AffinePoint infinity() { return {}; }
};

/// Jacobian point used internally by scalar multiplication and pairing.
struct JacPoint {
  math::Bignum x;
  math::Bignum y;
  math::Bignum z;  // zero z encodes infinity
};

class CurveCtx {
 public:
  explicit CurveCtx(const FpCtx& fq) : fq_(fq) {}

  const FpCtx& field() const { return fq_; }

  bool eq(const AffinePoint& p, const AffinePoint& q) const;
  bool is_on_curve(const AffinePoint& p) const;

  AffinePoint neg(const AffinePoint& p) const;
  AffinePoint add(const AffinePoint& p, const AffinePoint& q) const;
  AffinePoint dbl(const AffinePoint& p) const;
  /// Scalar multiplication; k is a plain (non-Montgomery) integer.
  AffinePoint mul(const AffinePoint& p, const math::Bignum& k) const;

  // Jacobian core (also used by the Miller loop).
  JacPoint to_jac(const AffinePoint& p) const;
  AffinePoint to_affine(const JacPoint& p) const;
  JacPoint jac_dbl(const JacPoint& p) const;
  /// Mixed addition with an affine q; q must not be infinity.
  JacPoint jac_add_mixed(const JacPoint& p, const AffinePoint& q) const;

  /// Solves y^2 = x^3 + x for y given x (Montgomery form); returns false
  /// if the RHS is a non-residue.
  bool lift_x(const math::Bignum& x, math::Bignum* y) const;

 private:
  const FpCtx& fq_;
};

}  // namespace maabe::pairing
