#include "pairing/params.h"

#include "common/errors.h"
#include "math/prime.h"

namespace maabe::pairing {

using math::Bignum;

void TypeAParams::validate() const {
  if (!math::is_probable_prime(q)) throw MathError("TypeAParams: q is not prime");
  if (!math::is_probable_prime(r)) throw MathError("TypeAParams: r is not prime");
  if (Bignum::mod(q, Bignum::from_u64(4)).to_u64() != 3)
    throw MathError("TypeAParams: q must be 3 mod 4");
  if (Bignum::add(Bignum::mul(h, r), Bignum()) !=
      Bignum::add(q, Bignum::from_u64(1)))
    throw MathError("TypeAParams: h*r != q+1");
}

const TypeAParams& TypeAParams::pbc_a512() {
  static const TypeAParams params = {
      Bignum::from_hex(
          "a7a73868e95fba886edef8ce96e7217e364bb946f5ed839628d1f80010940622"
          "a7afdaf9b049744a459e54dab7ba5be92539e8ff9b4f30a3cf6230c28e284d97"),
      Bignum::from_hex("8000000000000800000000000000000000000001"),
      Bignum::from_hex(
          "14f4e70d1d2bf601bf6b0d47137cc83915f505f0e85050f93a6344777e2cd28f"
          "f9b4f30a3cf6230c28e284d98")};
  return params;
}

const TypeAParams& TypeAParams::test_small() {
  static const TypeAParams params = {
      Bignum::from_hex("a8a00006952d5bd44d531e0f159f2117c2792ecb0de393eb"),
      Bignum::from_hex("a8b318d0752b1825bc55"),
      Bignum::from_hex("ffe3054f92fff366bad4964db03c")};
  return params;
}

TypeAParams TypeAParams::generate(int rbits, int qbits, crypto::Drbg& rng) {
  if (rbits < 16 || qbits < rbits + 8)
    throw MathError("TypeAParams::generate: need qbits >> rbits >= 16");
  const int hbits = qbits - rbits;

  for (int attempt = 0; attempt < 100000; ++attempt) {
    // Random odd rbits candidate with the top bit set.
    Bytes rb = rng.bytes((rbits + 7) / 8);
    Bignum r = Bignum::from_bytes_be(rb);
    r = Bignum::mod(r, Bignum::shl(Bignum::from_u64(1), rbits));
    r = Bignum::add(Bignum::mod(r, Bignum::shl(Bignum::from_u64(1), rbits - 1)),
                    Bignum::shl(Bignum::from_u64(1), rbits - 1));
    if (!r.is_odd()) r = Bignum::add(r, Bignum::from_u64(1));
    if (!math::is_probable_prime(r)) continue;

    // Cofactor: multiple of 4 so that q = h*r - 1 = -1 = 3 (mod 4).
    for (int inner = 0; inner < 1000; ++inner) {
      Bytes hb = rng.bytes((hbits + 7) / 8);
      Bignum h = Bignum::from_bytes_be(hb);
      h = Bignum::add(Bignum::mod(h, Bignum::shl(Bignum::from_u64(1), hbits - 1)),
                      Bignum::shl(Bignum::from_u64(1), hbits - 1));
      h = Bignum::sub(h, Bignum::mod(h, Bignum::from_u64(4)));
      const Bignum q = Bignum::sub(Bignum::mul(h, r), Bignum::from_u64(1));
      if (q.bit_length() != qbits) continue;
      if (!math::is_probable_prime(q)) continue;
      TypeAParams out{q, r, h};
      out.validate();
      return out;
    }
  }
  throw MathError("TypeAParams::generate: no parameters found");
}

}  // namespace maabe::pairing
