// Type-A (supersingular) pairing parameters.
//
// The paper's evaluation uses PBC's symmetric "alpha" curve: the
// supersingular curve  E: y^2 = x^3 + x  over F_q with q = 3 (mod 4)
// prime, which has #E(F_q) = q + 1 and embedding degree 2. Picking a
// prime r with q + 1 = h * r gives a subgroup G = E(F_q)[r] and a
// symmetric pairing e: G x G -> GT (subgroup of F_{q^2}^*) via the
// modified Tate pairing with the distortion map phi(x, y) = (-x, iy).
//
// pbc_a512() reproduces the exact group sizes of the paper's testbed
// (512-bit base field, 160-bit group order — PBC's stock a.param).
// test_small() is a 192-bit-field instance for fast unit testing; it is
// NOT cryptographically secure.
#pragma once

#include "crypto/drbg.h"
#include "math/bignum.h"

namespace maabe::pairing {

struct TypeAParams {
  math::Bignum q;  ///< Base-field prime, q = 3 (mod 4).
  math::Bignum r;  ///< Prime group order, r | q + 1.
  math::Bignum h;  ///< Cofactor, q + 1 = h * r.

  /// Validates primality and the algebraic relations above.
  /// Throws MathError on violation.
  void validate() const;

  /// PBC's stock 512-bit/160-bit "a" parameters (the paper's setting).
  static const TypeAParams& pbc_a512();

  /// Small (192-bit q, 80-bit r) parameters for fast tests. Insecure.
  static const TypeAParams& test_small();

  /// Generates fresh parameters: a random `rbits` prime r and cofactor h
  /// (a multiple of 4, so q = 3 mod 4) such that q = h*r - 1 is a
  /// `qbits` prime.
  static TypeAParams generate(int rbits, int qbits, crypto::Drbg& rng);
};

}  // namespace maabe::pairing
