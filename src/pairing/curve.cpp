#include "pairing/curve.h"

#include "common/errors.h"

namespace maabe::pairing {

using math::Bignum;

bool CurveCtx::eq(const AffinePoint& p, const AffinePoint& q) const {
  if (p.inf || q.inf) return p.inf == q.inf;
  return p.x == q.x && p.y == q.y;
}

bool CurveCtx::is_on_curve(const AffinePoint& p) const {
  if (p.inf) return true;
  // y^2 == x^3 + x  (curve coefficient a = 1, b = 0).
  const Bignum lhs = fq_.sqr(p.y);
  const Bignum rhs = fq_.add(fq_.mul(fq_.sqr(p.x), p.x), p.x);
  return lhs == rhs;
}

AffinePoint CurveCtx::neg(const AffinePoint& p) const {
  if (p.inf) return p;
  return {p.x, fq_.neg(p.y), false};
}

JacPoint CurveCtx::to_jac(const AffinePoint& p) const {
  if (p.inf) return {fq_.one(), fq_.one(), fq_.zero()};
  return {p.x, p.y, fq_.one()};
}

AffinePoint CurveCtx::to_affine(const JacPoint& p) const {
  if (p.z.is_zero()) return AffinePoint::infinity();
  const Bignum zi = fq_.inv(p.z);
  const Bignum zi2 = fq_.sqr(zi);
  return {fq_.mul(p.x, zi2), fq_.mul(p.y, fq_.mul(zi2, zi)), false};
}

JacPoint CurveCtx::jac_dbl(const JacPoint& p) const {
  if (p.z.is_zero() || p.y.is_zero()) return {fq_.one(), fq_.one(), fq_.zero()};
  // dbl-2007-bl style with a = 1 handled via M = 3X^2 + Z^4.
  const Bignum y2 = fq_.sqr(p.y);
  const Bignum s = fq_.dbl(fq_.dbl(fq_.mul(p.x, y2)));       // 4XY^2
  const Bignum z2 = fq_.sqr(p.z);
  const Bignum x2 = fq_.sqr(p.x);
  const Bignum m = fq_.add(fq_.add(fq_.dbl(x2), x2), fq_.sqr(z2));  // 3X^2 + Z^4
  const Bignum xr = fq_.sub(fq_.sqr(m), fq_.dbl(s));
  const Bignum y4 = fq_.sqr(y2);
  const Bignum yr = fq_.sub(fq_.mul(m, fq_.sub(s, xr)), fq_.dbl(fq_.dbl(fq_.dbl(y4))));
  const Bignum zr = fq_.dbl(fq_.mul(p.y, p.z));
  return {xr, yr, zr};
}

JacPoint CurveCtx::jac_add_mixed(const JacPoint& p, const AffinePoint& q) const {
  if (q.inf) throw MathError("jac_add_mixed: affine operand is infinity");
  if (p.z.is_zero()) return {q.x, q.y, fq_.one()};
  const Bignum z2 = fq_.sqr(p.z);
  const Bignum u2 = fq_.mul(q.x, z2);
  const Bignum s2 = fq_.mul(q.y, fq_.mul(z2, p.z));
  const Bignum hh = fq_.sub(u2, p.x);
  const Bignum rr = fq_.sub(s2, p.y);
  if (hh.is_zero()) {
    if (rr.is_zero()) return jac_dbl(p);
    return {fq_.one(), fq_.one(), fq_.zero()};  // p == -q
  }
  const Bignum h2 = fq_.sqr(hh);
  const Bignum h3 = fq_.mul(hh, h2);
  const Bignum v = fq_.mul(p.x, h2);
  const Bignum xr = fq_.sub(fq_.sub(fq_.sqr(rr), h3), fq_.dbl(v));
  const Bignum yr = fq_.sub(fq_.mul(rr, fq_.sub(v, xr)), fq_.mul(p.y, h3));
  const Bignum zr = fq_.mul(p.z, hh);
  return {xr, yr, zr};
}

AffinePoint CurveCtx::dbl(const AffinePoint& p) const {
  if (p.inf) return p;
  return to_affine(jac_dbl(to_jac(p)));
}

AffinePoint CurveCtx::add(const AffinePoint& p, const AffinePoint& q) const {
  if (p.inf) return q;
  if (q.inf) return p;
  return to_affine(jac_add_mixed(to_jac(p), q));
}

AffinePoint CurveCtx::mul(const AffinePoint& p, const Bignum& k) const {
  if (p.inf || k.is_zero()) return AffinePoint::infinity();
  JacPoint acc{fq_.one(), fq_.one(), fq_.zero()};
  for (int i = k.bit_length() - 1; i >= 0; --i) {
    acc = jac_dbl(acc);
    if (k.bit(i)) acc = jac_add_mixed(acc, p);
  }
  return to_affine(acc);
}

bool CurveCtx::lift_x(const Bignum& x, Bignum* y) const {
  const Bignum rhs = fq_.add(fq_.mul(fq_.sqr(x), x), x);
  if (!fq_.is_qr(rhs)) return false;
  *y = fq_.sqrt(rhs);
  return true;
}

}  // namespace maabe::pairing
