#include "pairing/fixed_base.h"

#include "common/errors.h"

namespace maabe::pairing {

using math::Bignum;

namespace {

int digit_at(const Bignum& k, int d, int w) {
  int out = 0;
  for (int b = 0; b < w; ++b) {
    if (k.bit(d * w + b)) out |= 1 << b;
  }
  return out;
}

}  // namespace

G1FixedBase::G1FixedBase(const CurveCtx& curve, const AffinePoint& base, int exp_bits,
                         int window_bits)
    : curve_(curve), window_bits_(window_bits) {
  if (base.inf) throw MathError("G1FixedBase: base must not be infinity");
  if (window_bits < 1 || window_bits > 8) throw MathError("G1FixedBase: bad window");
  digits_ = (exp_bits + window_bits - 1) / window_bits;
  const int span = 1 << window_bits;

  table_.resize(digits_);
  AffinePoint digit_base = base;  // base^(2^(w*d))
  for (int d = 0; d < digits_; ++d) {
    auto& row = table_[d];
    row.resize(span);
    row[0] = AffinePoint::infinity();
    row[1] = digit_base;
    for (int j = 2; j < span; ++j) row[j] = curve_.add(row[j - 1], digit_base);
    if (d + 1 < digits_) {
      // digit_base <<= w  (w doublings).
      digit_base = curve_.add(row[span - 1], digit_base);
    }
  }
}

AffinePoint G1FixedBase::pow(const Bignum& k) const {
  if (k.bit_length() > digits_ * window_bits_)
    throw MathError("G1FixedBase: exponent exceeds table range");
  // Accumulate in Jacobian coordinates (mixed additions against the
  // affine table entries); a single inversion at the end.
  JacPoint acc = curve_.to_jac(AffinePoint::infinity());
  for (int d = 0; d < digits_; ++d) {
    const int digit = digit_at(k, d, window_bits_);
    if (digit != 0) acc = curve_.jac_add_mixed(acc, table_[d][digit]);
  }
  return curve_.to_affine(acc);
}

GtFixedBase::GtFixedBase(const Fp2Ctx& fq2, const Fp2& base, int exp_bits,
                         int window_bits)
    : fq2_(fq2), window_bits_(window_bits) {
  if (fq2.is_zero(base)) throw MathError("GtFixedBase: zero base");
  if (window_bits < 1 || window_bits > 8) throw MathError("GtFixedBase: bad window");
  digits_ = (exp_bits + window_bits - 1) / window_bits;
  const int span = 1 << window_bits;

  // GT bases live in the norm-1 cyclotomic subgroup, where squaring
  // costs two base-field squarings instead of a full multiply; even
  // table entries are squares of earlier ones, so build them that way.
  // (Bit-identical either path — the guard only exists for callers that
  // precompute arbitrary F_{q^2} elements.)
  const bool norm1 = fq2.is_norm_one(base);
  table_.resize(digits_);
  Fp2 digit_base = base;
  for (int d = 0; d < digits_; ++d) {
    auto& row = table_[d];
    row.resize(span);
    row[0] = fq2_.one();
    row[1] = digit_base;
    for (int j = 2; j < span; ++j) {
      row[j] = (norm1 && j % 2 == 0) ? fq2_.sqr_cyclotomic(row[j / 2])
                                     : fq2_.mul(row[j - 1], digit_base);
    }
    if (d + 1 < digits_) {
      digit_base = norm1 ? fq2_.sqr_cyclotomic(row[span / 2])
                         : fq2_.mul(row[span - 1], digit_base);
    }
  }
}

Fp2 GtFixedBase::pow(const Bignum& k) const {
  if (k.bit_length() > digits_ * window_bits_)
    throw MathError("GtFixedBase: exponent exceeds table range");
  Fp2 acc = fq2_.one();
  for (int d = 0; d < digits_; ++d) {
    const int digit = digit_at(k, d, window_bits_);
    if (digit != 0) acc = fq2_.mul(acc, table_[d][digit]);
  }
  return acc;
}

}  // namespace maabe::pairing
