#include "pairing/pairing.h"

#include "common/errors.h"

namespace maabe::pairing {

using math::Bignum;

PairingCtx::PairingCtx(const TypeAParams& params)
    : params_(params), fq_(params.q), fq2_(fq_), curve_(fq_) {}

namespace {

// Line through T (Jacobian, = tangent when doubling) evaluated at
// phi(Q) = (-x_q, i*y_q), scaled by an arbitrary F_q constant.
//
// Tangent at T: l = 2YZ^3*y - 2Y^2 - (3X^2 + Z^4)(Z^2*x - X), so at
// phi(Q):  real = M*(Z^2*x_q + X) - 2Y^2,  imag = 2YZ^3 * y_q,
// with M = 3X^2 + Z^4 (curve coefficient a = 1).
Fp2 tangent_line(const FpCtx& fq, const JacPoint& t, const AffinePoint& q) {
  const Bignum z2 = fq.sqr(t.z);
  const Bignum x2 = fq.sqr(t.x);
  const Bignum m = fq.add(fq.add(fq.dbl(x2), x2), fq.sqr(z2));
  const Bignum real =
      fq.sub(fq.mul(m, fq.add(fq.mul(z2, q.x), t.x)), fq.dbl(fq.sqr(t.y)));
  const Bignum imag = fq.mul(fq.dbl(fq.mul(t.y, fq.mul(z2, t.z))), q.y);
  return {real, imag};
}

// Line through T (Jacobian) and affine P evaluated at phi(Q), scaled by
// an arbitrary F_q constant:
//   real = R*(x_q + x_p) - H*Z*y_p,   imag = H*Z*y_q,
// with H = x_p*Z^2 - X, R = y_p*Z^3 - Y (chord slope numerator pieces).
Fp2 chord_line(const FpCtx& fq, const JacPoint& t, const AffinePoint& p,
               const AffinePoint& q, const Bignum& hh, const Bignum& rr) {
  const Bignum hz = fq.mul(hh, t.z);
  const Bignum real = fq.sub(fq.mul(rr, fq.add(q.x, p.x)), fq.mul(hz, p.y));
  const Bignum imag = fq.mul(hz, q.y);
  return {real, imag};
}

}  // namespace

Fp2 PairingCtx::final_exponentiation(const Fp2& f) const {
  if (fq2_.is_zero(f)) throw MathError("final_exponentiation: zero input");
  // f^(q-1) = conj(f) / f.
  const Fp2 f1 = fq2_.mul(fq2_.conj(f), fq2_.inv(f));
  // f1 has norm 1 (f1^(q+1) = f^(q^2-1) = 1 by Fermat), so the hard
  // part h = (q+1)/r runs on cyclotomic squarings — the same bits as a
  // generic pow at roughly half the base-field multiplies per square.
  return fq2_.pow_cyclotomic(f1, params_.h);
}

Fp2 PairingCtx::miller_loop(const AffinePoint& p, const AffinePoint& q) const {
  if (p.inf || q.inf) return fq2_.one();

  Fp2 f = fq2_.one();
  JacPoint t = curve_.to_jac(p);
  const Bignum& r = params_.r;

  for (int i = r.bit_length() - 2; i >= 0; --i) {
    f = fq2_.sqr(f);
    if (!t.z.is_zero()) {
      const Fp2 line = tangent_line(fq_, t, q);
      f = fq2_.mul(f, line);
      t = curve_.jac_dbl(t);
    }
    if (r.bit(i) && !t.z.is_zero()) {
      // Mixed addition, reusing H and R for the line.
      const Bignum z2 = fq_.sqr(t.z);
      const Bignum hh = fq_.sub(fq_.mul(p.x, z2), t.x);
      const Bignum rr = fq_.sub(fq_.mul(p.y, fq_.mul(z2, t.z)), t.y);
      if (hh.is_zero()) {
        if (rr.is_zero()) {
          // T == P: tangent case (cannot occur for points of prime order
          // r > 2 before the last step, but handle it for robustness).
          f = fq2_.mul(f, tangent_line(fq_, t, q));
          t = curve_.jac_dbl(t);
        } else {
          // T == -P: vertical line lies in F_q, contributes 1.
          t = {fq_.one(), fq_.one(), fq_.zero()};
        }
      } else {
        f = fq2_.mul(f, chord_line(fq_, t, p, q, hh, rr));
        const Bignum h2 = fq_.sqr(hh);
        const Bignum h3 = fq_.mul(hh, h2);
        const Bignum v = fq_.mul(t.x, h2);
        const Bignum xr = fq_.sub(fq_.sub(fq_.sqr(rr), h3), fq_.dbl(v));
        const Bignum yr = fq_.sub(fq_.mul(rr, fq_.sub(v, xr)), fq_.mul(t.y, h3));
        const Bignum zr = fq_.mul(t.z, hh);
        t = {xr, yr, zr};
      }
    }
  }
  return f;
}

Fp2 PairingCtx::pair(const AffinePoint& p, const AffinePoint& q) const {
  if (p.inf || q.inf) return fq2_.one();
  return final_exponentiation(miller_loop(p, q));
}

// ---------------------------------------------------------- precomp --

PairingPrecomp::PairingPrecomp(const PairingCtx& ctx, const AffinePoint& p)
    : ctx_(&ctx) {
  if (p.inf) {
    inf_ = true;
    return;
  }
  // Replay miller_loop(p, ·)'s exact control flow — which depends only
  // on P and r — recording each line's Q-independent coefficients. The
  // on-line tangent evaluates as M*(Z^2*x_q + X) - 2Y^2; distributing
  // gives c0 = M*Z^2, c1 = M*X - 2Y^2, and the chord analogously —
  // exact modular arithmetic keeps the distributed form bit-identical.
  const FpCtx& fq = ctx.fq();
  const CurveCtx& curve = ctx.curve();
  JacPoint t = curve.to_jac(p);
  const Bignum& r = ctx.params().r;
  uint32_t pending = 0;

  const auto push_tangent = [&] {
    const Bignum z2 = fq.sqr(t.z);
    const Bignum x2 = fq.sqr(t.x);
    const Bignum m = fq.add(fq.add(fq.dbl(x2), x2), fq.sqr(z2));
    lines_.push_back({fq.mul(m, z2),
                      fq.sub(fq.mul(m, t.x), fq.dbl(fq.sqr(t.y))),
                      fq.dbl(fq.mul(t.y, fq.mul(z2, t.z))), pending});
    pending = 0;
  };

  for (int i = r.bit_length() - 2; i >= 0; --i) {
    ++pending;  // the f = f^2 at the top of each iteration
    if (!t.z.is_zero()) {
      push_tangent();
      t = curve.jac_dbl(t);
    }
    if (r.bit(i) && !t.z.is_zero()) {
      const Bignum z2 = fq.sqr(t.z);
      const Bignum hh = fq.sub(fq.mul(p.x, z2), t.x);
      const Bignum rr = fq.sub(fq.mul(p.y, fq.mul(z2, t.z)), t.y);
      if (hh.is_zero()) {
        if (rr.is_zero()) {
          push_tangent();
          t = curve.jac_dbl(t);
        } else {
          t = {fq.one(), fq.one(), fq.zero()};
        }
      } else {
        const Bignum hz = fq.mul(hh, t.z);
        lines_.push_back({rr, fq.sub(fq.mul(rr, p.x), fq.mul(hz, p.y)), hz,
                          pending});
        pending = 0;
        const Bignum h2 = fq.sqr(hh);
        const Bignum h3 = fq.mul(hh, h2);
        const Bignum v = fq.mul(t.x, h2);
        const Bignum xr = fq.sub(fq.sub(fq.sqr(rr), h3), fq.dbl(v));
        const Bignum yr = fq.sub(fq.mul(rr, fq.sub(v, xr)), fq.mul(t.y, h3));
        const Bignum zr = fq.mul(t.z, hh);
        t = {xr, yr, zr};
      }
    }
  }
  trailing_sqrs_ = pending;
}

Fp2 PairingPrecomp::miller(const AffinePoint& q) const {
  const Fp2Ctx& fq2 = ctx_->fq2();
  if (inf_ || q.inf) return fq2.one();
  const FpCtx& fq = ctx_->fq();
  Fp2 f = fq2.one();
  for (const Line& l : lines_) {
    for (uint32_t s = 0; s < l.sqrs_before; ++s) f = fq2.sqr(f);
    f = fq2.mul(f, {fq.add(fq.mul(l.c0, q.x), l.c1), fq.mul(l.c2, q.y)});
  }
  for (uint32_t s = 0; s < trailing_sqrs_; ++s) f = fq2.sqr(f);
  return f;
}

}  // namespace maabe::pairing
