#include "pairing/group.h"

#include <atomic>
#include <chrono>

#include "common/errors.h"
#include "common/wire.h"
#include "crypto/sha256.h"
#include "telemetry/metrics.h"

namespace maabe::pairing {

using math::Bignum;

namespace {

// Per-op instrumentation for the five group operations every cost model
// in the paper counts (pairings, G1/GT exponentiations). The counters
// run unconditionally (one relaxed fetch_add each); the latency
// histograms read the clock per call and are gated behind
// telemetry::op_timing_enabled() to keep the default path cheap.
struct PairingMetrics {
  telemetry::Counter& pairings;
  telemetry::Counter& g1_exps;
  telemetry::Counter& gt_exps;
  telemetry::Counter& miller_loops;
  telemetry::Counter& final_exps;
  telemetry::Counter& precomp_builds;
  telemetry::Counter& precomp_hits;
  telemetry::Histogram& pair_ns;
  telemetry::Histogram& g1_exp_ns;
  telemetry::Histogram& gt_exp_ns;

  static PairingMetrics& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static PairingMetrics* m = new PairingMetrics{
        reg.counter("maabe_pairing_pairings_total"),
        reg.counter("maabe_pairing_g1_exps_total"),
        reg.counter("maabe_pairing_gt_exps_total"),
        reg.counter("maabe_pairing_miller_loops_total"),
        reg.counter("maabe_pairing_final_exps_total"),
        reg.counter("maabe_pairing_precomp_builds_total"),
        reg.counter("maabe_pairing_precomp_hits_total"),
        reg.histogram("maabe_pairing_pair_ns"),
        reg.histogram("maabe_pairing_g1_exp_ns"),
        reg.histogram("maabe_pairing_gt_exp_ns"),
    };
    return *m;
  }
};

/// Observes wall time into `hist` on destruction when op timing is on;
/// a no-op (no clock read) otherwise.
class OpTimer {
 public:
  explicit OpTimer(telemetry::Histogram& hist)
      : hist_(telemetry::op_timing_enabled() ? &hist : nullptr) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~OpTimer() {
    if (hist_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      hist_->observe(static_cast<uint64_t>(ns));
    }
  }

 private:
  telemetry::Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

// Pairing-layer misuse is a MathError: this layer sits below the ABE
// schemes and must not reach up into their exception types (see
// common/errors.h).
void require_same_group(const void* a, const void* b, const char* op) {
  if (a == nullptr || b == nullptr) throw MathError(std::string(op) + ": uninitialized element");
  if (a != b) throw MathError(std::string(op) + ": elements from different groups");
}

// Domain-separated expansion of `data` to `out_len` bytes.
Bytes expand(std::string_view domain, ByteView data, size_t out_len) {
  Bytes out;
  uint32_t counter = 0;
  while (out.size() < out_len) {
    crypto::Sha256 h;
    Writer w;
    w.str(domain);
    w.u32(counter++);
    w.var_bytes(data);
    h.update(w.bytes());
    const Bytes d = h.finish();
    out.insert(out.end(), d.begin(), d.end());
  }
  out.resize(out_len);
  return out;
}

}  // namespace

// ---------------------------------------------------------------- Zr --

Zr Zr::add(const Zr& o) const {
  require_same_group(g_, o.g_, "Zr::add");
  return Zr(g_, Bignum::mod_add(v_, o.v_, g_->order()));
}

Zr Zr::sub(const Zr& o) const {
  require_same_group(g_, o.g_, "Zr::sub");
  return Zr(g_, Bignum::mod_sub(v_, o.v_, g_->order()));
}

Zr Zr::mul(const Zr& o) const {
  require_same_group(g_, o.g_, "Zr::mul");
  return Zr(g_, Bignum::mod_mul(v_, o.v_, g_->order()));
}

Zr Zr::neg() const {
  if (g_ == nullptr) throw MathError("Zr::neg: uninitialized element");
  return Zr(g_, Bignum::mod_sub(Bignum(), v_, g_->order()));
}

Zr Zr::inverse() const {
  if (g_ == nullptr) throw MathError("Zr::inverse: uninitialized element");
  return Zr(g_, Bignum::mod_inverse(v_, g_->order()));
}

Bytes Zr::to_bytes() const {
  if (g_ == nullptr) throw MathError("Zr::to_bytes: uninitialized element");
  return v_.to_bytes_be(g_->zr_size());
}

// ---------------------------------------------------------------- G1 --

G1 G1::add(const G1& o) const {
  require_same_group(g_, o.g_, "G1::add");
  return G1(g_, g_->ctx().curve().add(pt_, o.pt_));
}

G1 G1::neg() const {
  if (g_ == nullptr) throw MathError("G1::neg: uninitialized element");
  return G1(g_, g_->ctx().curve().neg(pt_));
}

G1 G1::mul(const Zr& k) const {
  require_same_group(g_, k.group(), "G1::mul");
  PairingMetrics& m = PairingMetrics::get();
  m.g1_exps.inc();
  OpTimer t(m.g1_exp_ns);
  return G1(g_, g_->ctx().curve().mul(pt_, k.value()));
}

bool operator==(const G1& a, const G1& b) {
  require_same_group(a.g_, b.g_, "G1::eq");
  return a.g_->ctx().curve().eq(a.pt_, b.pt_);
}

bool G1::in_subgroup() const {
  if (g_ == nullptr) throw MathError("G1::in_subgroup: uninitialized element");
  if (pt_.inf) return true;
  return g_->ctx().curve().mul(pt_, g_->order()).inf;
}

Bytes G1::to_bytes() const {
  if (g_ == nullptr) throw MathError("G1::to_bytes: uninitialized element");
  const FpCtx& fq = g_->ctx().fq();
  Bytes out;
  if (pt_.inf) {
    out.assign(fq.byte_length(), 0);
    out.push_back(2);  // infinity marker
    return out;
  }
  out = fq.to_bytes(pt_.x);
  out.push_back(static_cast<uint8_t>(fq.dec(pt_.y).is_odd() ? 1 : 0));
  return out;
}

Bytes G1::to_bytes_uncompressed() const {
  if (g_ == nullptr) throw MathError("G1::to_bytes_uncompressed: uninitialized element");
  const FpCtx& fq = g_->ctx().fq();
  Bytes out;
  if (pt_.inf) {
    out.assign(2 * fq.byte_length(), 0);
    out.push_back(2);  // infinity marker
    return out;
  }
  out = fq.to_bytes(pt_.x);
  const Bytes yb = fq.to_bytes(pt_.y);
  out.insert(out.end(), yb.begin(), yb.end());
  out.push_back(0);
  return out;
}

// ---------------------------------------------------------------- GT --

bool GT::is_one() const {
  if (g_ == nullptr) throw MathError("GT::is_one: uninitialized element");
  return g_->ctx().fq2().is_one(v_);
}

GT GT::mul(const GT& o) const {
  require_same_group(g_, o.g_, "GT::mul");
  return GT(g_, g_->ctx().fq2().mul(v_, o.v_));
}

GT GT::inverse() const {
  if (g_ == nullptr) throw MathError("GT::inverse: uninitialized element");
  // Elements of the order-r subgroup have norm 1, so conjugation inverts.
  return GT(g_, g_->ctx().fq2().conj(v_));
}

GT GT::pow(const Zr& k) const {
  require_same_group(g_, k.group(), "GT::pow");
  PairingMetrics& m = PairingMetrics::get();
  m.gt_exps.inc();
  OpTimer t(m.gt_exp_ns);
  // Subgroup elements all have norm 1, unlocking cyclotomic squaring
  // (same bits, ~2/3 the base-field multiplies). The check keeps raw
  // gt_from_bytes values — which may sit outside the subgroup — on the
  // generic path.
  const Fp2Ctx& fq2 = g_->ctx().fq2();
  return GT(g_, fq2.is_norm_one(v_) ? fq2.pow_cyclotomic(v_, k.value())
                                    : fq2.pow(v_, k.value()));
}

bool operator==(const GT& a, const GT& b) {
  require_same_group(a.g_, b.g_, "GT::eq");
  return a.v_ == b.v_;
}

// --------------------------------------------------------- MillerVal --

bool MillerVal::is_one() const {
  if (g_ == nullptr) throw MathError("MillerVal::is_one: uninitialized element");
  return g_->ctx().fq2().is_one(v_);
}

MillerVal MillerVal::mul(const MillerVal& o) const {
  require_same_group(g_, o.g_, "MillerVal::mul");
  return MillerVal(g_, g_->ctx().fq2().mul(v_, o.v_));
}

MillerVal MillerVal::pow(const Zr& k) const {
  require_same_group(g_, k.group(), "MillerVal::pow");
  // Counts as a target-field exponentiation in the op model: it stands
  // in for the GT::pow the reduced pairing would have paid.
  PairingMetrics& m = PairingMetrics::get();
  m.gt_exps.inc();
  OpTimer t(m.gt_exp_ns);
  return MillerVal(g_, g_->ctx().fq2().pow(v_, k.value()));
}

Bytes MillerVal::to_bytes() const {
  if (g_ == nullptr) throw MathError("MillerVal::to_bytes: uninitialized element");
  return g_->ctx().fq2().to_bytes(v_);
}

bool GT::in_subgroup() const {
  if (g_ == nullptr) throw MathError("GT::in_subgroup: uninitialized element");
  return g_->ctx().fq2().is_one(g_->ctx().fq2().pow(v_, g_->order()));
}

Bytes GT::to_bytes() const {
  if (g_ == nullptr) throw MathError("GT::to_bytes: uninitialized element");
  return g_->ctx().fq2().to_bytes(v_);
}

// ------------------------------------------------------------- Group --

Group::Group(const TypeAParams& params) : ctx_(params) {
  static std::atomic<uint64_t> next_instance_id{1};
  instance_id_ = next_instance_id.fetch_add(1, std::memory_order_relaxed);
  params.validate();
  // Deterministic generator: hash to the curve, clear the cofactor.
  generator_ = hash_to_g1(std::string_view("maabe/type-a/generator/v1"));
  if (generator_.is_identity()) throw MathError("Group: generator derivation failed");
  e_gg_ = pair(generator_, generator_);
  if (e_gg_.is_one()) throw MathError("Group: degenerate pairing");
  // Window tables for the two fixed bases every scheme algorithm uses.
  g_table_ = std::make_unique<G1FixedBase>(ctx_.curve(), generator_.pt_,
                                           params.r.bit_length());
  egg_table_ = std::make_unique<GtFixedBase>(ctx_.fq2(), e_gg_.v_,
                                             params.r.bit_length());
}

G1 Group::g_pow(const Zr& k) const {
  if (k.group() != this) throw MathError("g_pow: exponent from another group");
  PairingMetrics& m = PairingMetrics::get();
  m.g1_exps.inc();
  OpTimer t(m.g1_exp_ns);
  return G1(this, g_table_->pow(k.value()));
}

GT Group::egg_pow(const Zr& k) const {
  if (k.group() != this) throw MathError("egg_pow: exponent from another group");
  PairingMetrics& m = PairingMetrics::get();
  m.gt_exps.inc();
  OpTimer t(m.gt_exp_ns);
  return GT(this, egg_table_->pow(k.value()));
}

std::unique_ptr<G1FixedBase> Group::g1_precompute(const G1& base) const {
  require_same_group(this, base.g_, "g1_precompute");
  return std::make_unique<G1FixedBase>(ctx_.curve(), base.pt_,
                                       params().r.bit_length());
}

G1 Group::g1_pow_with(const G1FixedBase& table, const Zr& k) const {
  if (k.group() != this) throw MathError("g1_pow_with: exponent from another group");
  PairingMetrics& m = PairingMetrics::get();
  m.g1_exps.inc();
  OpTimer t(m.g1_exp_ns);
  return G1(this, table.pow(k.value()));
}

std::unique_ptr<GtFixedBase> Group::gt_precompute(const GT& base) const {
  require_same_group(this, base.g_, "gt_precompute");
  return std::make_unique<GtFixedBase>(ctx_.fq2(), base.v_,
                                       params().r.bit_length());
}

GT Group::gt_pow_with(const GtFixedBase& table, const Zr& k) const {
  if (k.group() != this) throw MathError("gt_pow_with: exponent from another group");
  PairingMetrics& m = PairingMetrics::get();
  m.gt_exps.inc();
  OpTimer t(m.gt_exp_ns);
  return GT(this, table.pow(k.value()));
}

std::shared_ptr<const Group> Group::pbc_a512() {
  return std::make_shared<const Group>(TypeAParams::pbc_a512());
}

std::shared_ptr<const Group> Group::test_small() {
  return std::make_shared<const Group>(TypeAParams::test_small());
}

std::shared_ptr<const Group> Group::create(const TypeAParams& params) {
  return std::make_shared<const Group>(params);
}

size_t Group::zr_size() const { return (order().bit_length() + 7) / 8; }
size_t Group::g1_size() const { return ctx_.fq().byte_length() + 1; }
size_t Group::g1_uncompressed_size() const { return 2 * ctx_.fq().byte_length() + 1; }
size_t Group::gt_size() const { return 2 * ctx_.fq().byte_length(); }

Zr Group::zr_from_u64(uint64_t v) const {
  return Zr(this, Bignum::mod(Bignum::from_u64(v), order()));
}

Zr Group::zr_from_bignum(const Bignum& v) const {
  return Zr(this, Bignum::mod(v, order()));
}

Zr Group::zr_random(crypto::Drbg& rng) const { return Zr(this, rng.below(order())); }

Zr Group::zr_nonzero_random(crypto::Drbg& rng) const {
  return Zr(this, rng.nonzero_below(order()));
}

Zr Group::zr_from_bytes(ByteView data) const {
  if (data.size() != zr_size()) throw WireError("zr_from_bytes: bad length");
  const Bignum v = Bignum::from_bytes_be(data);
  if (Bignum::cmp(v, order()) >= 0) throw WireError("zr_from_bytes: value exceeds order");
  return Zr(this, v);
}

Zr Group::hash_to_zr(ByteView data) const {
  // 16 extra bytes make the mod-r bias negligible.
  const Bytes wide = expand("maabe/hash-to-zr", data, zr_size() + 16);
  return Zr(this, Bignum::mod(Bignum::from_bytes_be(wide), order()));
}

Zr Group::hash_to_zr(std::string_view s) const {
  return hash_to_zr(ByteView(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
}

G1 Group::g1_random(crypto::Drbg& rng) const {
  return g().mul(zr_nonzero_random(rng));
}

G1 Group::hash_to_g1(ByteView data) const {
  const FpCtx& fq = ctx_.fq();
  const CurveCtx& curve = ctx_.curve();
  for (uint32_t counter = 0; counter < 1000; ++counter) {
    Writer w;
    w.u32(counter);
    w.var_bytes(data);
    const Bytes xb = expand("maabe/hash-to-g1", w.bytes(), fq.byte_length() + 16);
    const Bignum x_plain = Bignum::mod(Bignum::from_bytes_be(xb), fq.modulus());
    const Bignum x = fq.enc(x_plain);
    Bignum y;
    if (!curve.lift_x(x, &y)) continue;
    // Pick the sign of y from one more hash bit for uniformity.
    const Bytes sign = expand("maabe/hash-to-g1/sign", w.bytes(), 1);
    if (sign[0] & 1) y = fq.neg(y);
    // Clear the cofactor to land in the order-r subgroup.
    const AffinePoint pt = curve.mul({x, y, false}, params().h);
    if (!pt.inf) return G1(this, pt);
  }
  throw MathError("hash_to_g1: failed to find a curve point");
}

G1 Group::hash_to_g1(std::string_view s) const {
  return hash_to_g1(ByteView(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
}

G1 Group::g1_from_bytes(ByteView data) const {
  if (data.size() != g1_size()) throw WireError("g1_from_bytes: bad length");
  const FpCtx& fq = ctx_.fq();
  const uint8_t flag = data[data.size() - 1];
  const ByteView xb = data.subspan(0, data.size() - 1);
  if (flag == 2) {
    for (uint8_t b : xb)
      if (b != 0) throw WireError("g1_from_bytes: malformed infinity encoding");
    return g1_identity();
  }
  if (flag > 1) throw WireError("g1_from_bytes: bad sign flag");
  const Bignum x = fq.from_bytes(xb);
  Bignum y;
  if (!ctx_.curve().lift_x(x, &y)) throw WireError("g1_from_bytes: x not on curve");
  if (fq.dec(y).is_odd() != (flag == 1)) y = fq.neg(y);
  return G1(this, {x, y, false});
}

G1 Group::g1_from_bytes_uncompressed(ByteView data) const {
  if (data.size() != g1_uncompressed_size())
    throw WireError("g1_from_bytes_uncompressed: bad length");
  const FpCtx& fq = ctx_.fq();
  const size_t half = fq.byte_length();
  const uint8_t flag = data[data.size() - 1];
  if (flag == 2) {
    for (size_t i = 0; i + 1 < data.size(); ++i)
      if (data[i] != 0)
        throw WireError("g1_from_bytes_uncompressed: malformed infinity encoding");
    return g1_identity();
  }
  if (flag != 0) throw WireError("g1_from_bytes_uncompressed: bad flag");
  const AffinePoint pt{fq.from_bytes(data.subspan(0, half)),
                       fq.from_bytes(data.subspan(half, half)), false};
  if (!ctx_.curve().is_on_curve(pt))
    throw WireError("g1_from_bytes_uncompressed: point not on curve");
  return G1(this, pt);
}

GT Group::gt_random(crypto::Drbg& rng) const {
  return gt_generator().pow(zr_nonzero_random(rng));
}

GT Group::gt_from_bytes(ByteView data) const {
  return GT(this, ctx_.fq2().from_bytes(data));
}

GT Group::pair(const G1& a, const G1& b) const {
  require_same_group(this, a.g_, "Group::pair");
  require_same_group(this, b.g_, "Group::pair");
  PairingMetrics& m = PairingMetrics::get();
  m.pairings.inc();
  OpTimer t(m.pair_ns);
  if (a.pt_.inf || b.pt_.inf) return GT(this, ctx_.fq2().one());
  m.miller_loops.inc();
  m.final_exps.inc();
  return GT(this, ctx_.final_exponentiation(ctx_.miller_loop(a.pt_, b.pt_)));
}

MillerVal Group::miller(const G1& a, const G1& b) const {
  require_same_group(this, a.g_, "Group::miller");
  require_same_group(this, b.g_, "Group::miller");
  PairingMetrics& m = PairingMetrics::get();
  if (!a.pt_.inf && !b.pt_.inf) m.miller_loops.inc();
  return MillerVal(this, ctx_.miller_loop(a.pt_, b.pt_));
}

GT Group::miller_reduce(const MillerVal& f) const {
  require_same_group(this, f.g_, "Group::miller_reduce");
  PairingMetrics& m = PairingMetrics::get();
  m.final_exps.inc();
  OpTimer t(m.pair_ns);
  return GT(this, ctx_.final_exponentiation(f.v_));
}

std::unique_ptr<PairingPrecomp> Group::pair_precompute(const G1& base) const {
  require_same_group(this, base.g_, "pair_precompute");
  PairingMetrics::get().precomp_builds.inc();
  return std::make_unique<PairingPrecomp>(ctx_, base.pt_);
}

MillerVal Group::miller_with(const PairingPrecomp& pre, const G1& b) const {
  require_same_group(this, b.g_, "Group::miller_with");
  PairingMetrics& m = PairingMetrics::get();
  if (!pre.base_is_infinity() && !b.pt_.inf) {
    m.miller_loops.inc();
    m.precomp_hits.inc();
  }
  return MillerVal(this, pre.miller(b.pt_));
}

}  // namespace maabe::pairing
