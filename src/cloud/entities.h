// The stateful entities of the access-control framework (paper Fig. 1):
// certificate authority, attribute authorities, data owners and data
// consumers. The cloud server lives in server.h; the wiring (who sends
// what to whom, with byte metering) lives in system.h.
#pragma once

#include <list>
#include <mutex>
#include <optional>

#include "abe/scheme.h"
#include "cloud/hybrid.h"

namespace maabe::cloud {

/// Fully trusted CA: assigns global UIDs and AIDs, issues PK_UID.
class CertificateAuthority {
 public:
  CertificateAuthority(std::shared_ptr<const pairing::Group> grp, crypto::Drbg rng);

  /// Authenticates and registers a user; throws SchemeError on duplicate.
  const abe::UserPublicKey& register_user(const std::string& uid);
  /// Registers an attribute authority; throws SchemeError on duplicate.
  void register_authority(const std::string& aid);

  const abe::UserPublicKey& user_public_key(const std::string& uid) const;
  bool has_user(const std::string& uid) const { return users_.contains(uid); }
  bool has_authority(const std::string& aid) const { return authorities_.contains(aid); }

 private:
  std::shared_ptr<const pairing::Group> grp_;
  crypto::Drbg rng_;
  std::map<std::string, abe::UserPublicKey> users_;
  std::map<std::string, pairing::Zr> user_secrets_;  // CA archive of u
  std::set<std::string> authorities_;
};

/// An attribute authority: manages its attribute universe, assigns
/// attributes to users, issues per-owner secret keys and runs the ReKey
/// side of revocation.
class AttributeAuthority {
 public:
  AttributeAuthority(std::shared_ptr<const pairing::Group> grp, std::string aid,
                     crypto::Drbg rng);

  const std::string& aid() const { return aid_; }
  uint32_t version() const { return vk_.version; }

  /// Adds an attribute to this authority's universe.
  void define_attribute(const std::string& name);
  bool manages(const std::string& name) const { return universe_.contains(name); }

  /// Owner onboarding: the AA stores SK_o so it can issue keys for this
  /// owner's data.
  void accept_owner_share(const abe::OwnerSecretShare& share);

  /// Current PK_{o,AID} = e(g,g)^alpha.
  abe::AuthorityPublicKey public_key() const;
  /// Current PK_{x,AID} for every attribute in the universe, keyed by
  /// qualified handle.
  std::map<std::string, abe::PublicAttributeKey> attribute_public_keys() const;

  /// Assigns attributes to a user (role assignment in the AA's domain).
  void assign(const std::string& uid, const std::set<std::string>& names);
  const std::set<std::string>& assignment(const std::string& uid) const;

  /// Issues SK_{UID,AID} for the user's current assignment under the
  /// given owner's SK_o.
  abe::UserSecretKey issue_key(const abe::UserPublicKey& user,
                               const std::string& owner_id);

  /// Everything the ReKey phase produces (paper Section V-C Phase 1).
  struct RevocationBundle {
    uint32_t new_version = 0;
    /// Fresh keys for the revoked user, one per onboarded owner.
    std::map<std::string, abe::UserSecretKey> regenerated_keys;
    /// Update keys, one per onboarded owner (UK1 is owner-specific).
    std::map<std::string, abe::UpdateKey> update_keys;
  };

  /// Revokes attribute `name` from `uid`: removes the assignment, bumps
  /// the version key and produces the regenerated/update keys.
  RevocationBundle revoke(const abe::UserPublicKey& user, const std::string& name);

  /// User-level revocation: strips EVERY attribute this authority has
  /// assigned to the user, with a single version bump (the paper cites
  /// schemes limited to user-level revocation; here it composes from the
  /// same ReKey machinery). Throws if the user holds nothing.
  RevocationBundle revoke_all(const abe::UserPublicKey& user);

 private:
  RevocationBundle rekey_for(const abe::UserPublicKey& user,
                             const std::set<std::string>& remaining);

  std::shared_ptr<const pairing::Group> grp_;
  std::string aid_;
  crypto::Drbg rng_;
  abe::AuthorityVersionKey vk_;
  std::set<std::string> universe_;
  std::map<std::string, std::set<std::string>> assignments_;  // uid -> names
  std::map<std::string, abe::OwnerSecretShare> owners_;       // owner_id -> SK_o
};

/// A data owner: holds MK_o, tracks current public keys, hybrid-encrypts
/// files (Fig. 2) and produces UpdateInfo during revocation.
class DataOwner {
 public:
  DataOwner(std::shared_ptr<const pairing::Group> grp, std::string owner_id,
            crypto::Drbg rng);

  const std::string& owner_id() const { return owner_id_; }
  const abe::OwnerSecretShare& share() const { return share_; }

  /// Key distribution: the owner caches the AA-published keys it will
  /// encrypt under.
  void learn_authority_key(const abe::AuthorityPublicKey& pk);
  void learn_attribute_key(const abe::PublicAttributeKey& pk);

  /// Splits `components` per Fig. 2: symmetric-encrypts each component
  /// under a fresh content key, CP-ABE-protects the keys. Remembers the
  /// encryption exponents (EncryptionRecord) and ciphertext copies for
  /// later re-keying.
  StoredFile protect(const std::string& file_id,
                     const std::vector<DataComponent>& components);

  /// Revocation phase-1 step 3: fold UK into the cached public keys.
  /// Returns false if the update does not concern this owner.
  bool apply_update(const abe::UpdateKey& uk);

  /// Revocation phase 2 prep: UpdateInfo for every ciphertext of this
  /// owner that involves `aid` at `from_version`.
  /// `new_attribute_pks` must already be at the target version (i.e.
  /// call apply_update first).
  std::vector<abe::UpdateInfo> update_infos(const std::string& aid,
                                            uint32_t from_version);

  size_t tracked_ciphertexts() const { return ciphertexts_.size(); }

 private:
  std::shared_ptr<const pairing::Group> grp_;
  std::string owner_id_;
  crypto::Drbg rng_;
  abe::OwnerMasterKey mk_;
  abe::OwnerSecretShare share_;
  std::map<std::string, abe::AuthorityPublicKey> authority_pks_;
  std::map<std::string, abe::PublicAttributeKey> attribute_pks_;      // current
  std::map<std::string, abe::PublicAttributeKey> prev_attribute_pks_; // one version back
  std::map<std::string, abe::EncryptionRecord> records_;   // ct_id -> s
  std::map<std::string, abe::Ciphertext> ciphertexts_;     // ct_id -> copy
};

/// A data consumer: accumulates per-(owner, authority) secret keys,
/// applies update keys, opens stored files.
///
/// Decrypt-result cache: open_slot memoizes successful plaintexts in a
/// bounded LRU keyed by a hash of the slot's full ciphertext bytes
/// (ABE key-ct — which embeds every per-authority version — plus the
/// sealed payload). A revocation epoch rewrites the ciphertext, so the
/// re-encrypted slot misses by construction; and any change to this
/// consumer's own keys (update key applied, key replaced/regenerated)
/// invalidates the whole cache, so a stale plaintext can never be
/// served across a key-version bump. Failed decrypts are never cached.
class Consumer {
 public:
  Consumer(std::shared_ptr<const pairing::Group> grp, abe::UserPublicKey pk);
  Consumer(Consumer&&) noexcept;
  Consumer& operator=(Consumer&&) noexcept;
  ~Consumer();  // out of line: DecryptCache is incomplete here

  const std::string& uid() const { return pk_.uid; }
  const abe::UserPublicKey& public_key() const { return pk_; }

  void add_key(const abe::UserSecretKey& sk);
  /// Applies UK to the matching (owner, authority) key; returns false if
  /// this consumer holds no such key.
  bool apply_update(const abe::UpdateKey& uk);
  /// Replaces the key outright (revoked user receiving its regenerated,
  /// reduced key).
  void replace_key(const abe::UserSecretKey& sk) { add_key(sk); }

  bool has_key(const std::string& owner_id, const std::string& aid) const;
  const abe::UserSecretKey& key(const std::string& owner_id, const std::string& aid) const;

  /// Decrypts every slot this consumer is authorized for. Components it
  /// cannot open are simply absent from the result (the paper's
  /// different-granularity property).
  std::map<std::string, Bytes> open_file(const StoredFile& file) const;

  /// Decrypts one slot the consumer's keys satisfy. Throws SchemeError
  /// when the keys do not satisfy the slot's policy/version, and
  /// CryptoError when the sealed payload fails authentication.
  Bytes open_slot(const StoredFile& file, const SealedSlot& slot) const;

  /// True when the consumer's keys can open the given slot.
  bool can_open(const SealedSlot& slot) const;

  /// Total serialized size of held secret keys (Table III row "User").
  size_t key_storage_bytes() const;

  /// Bounds the decrypt-result cache in entries; 0 disables it. The
  /// default (64) keeps a hot working set of slots decrypt-free.
  void set_decrypt_cache_capacity(size_t entries);
  size_t decrypt_cache_capacity() const;
  size_t decrypt_cache_size() const;
  /// Hit/miss counts since construction, also mirrored into the global
  /// maabe_decrypt_cache_{hits,misses}_total counters.
  uint64_t decrypt_cache_hits() const;
  uint64_t decrypt_cache_misses() const;

 private:
  /// Decrypt-result LRU state (entities.cpp); behind a unique_ptr so
  /// Consumer stays movable despite the cache's internal mutex.
  struct DecryptCache;

  std::map<std::string, abe::UserSecretKey> keys_for_owner(const std::string& owner_id) const;
  /// Cache key for one slot; empty when caching is disabled.
  Bytes decrypt_cache_key(const StoredFile& file, const SealedSlot& slot) const;
  void invalidate_decrypt_cache();

  std::shared_ptr<const pairing::Group> grp_;
  abe::UserPublicKey pk_;
  /// Keyed by owner_id + '\0' + aid.
  std::map<std::string, abe::UserSecretKey> keys_;
  std::unique_ptr<DecryptCache> cache_;
};

}  // namespace maabe::cloud
