// CloudSystem: the full multi-authority access-control deployment.
//
// Wires the CA, attribute authorities, data owners, consumers and the
// storage cluster together. Every artefact that crosses an entity
// boundary travels through a Transport as serialized bytes (DESIGN.md
// §10): serialize -> frame -> deliver -> verify -> deserialize. Sends
// use a ReliableLink (capped exponential backoff, per-request ids,
// origin-scoped receiver dedup); revocation and upload traffic
// additionally parks in per-destination FIFO queues (DurableLink) when
// the destination stays unreachable and replays on the next successful
// call, so a revocation epoch that could not reach its node is applied
// before any later read.
//
// The storage tier is a Cluster (DESIGN.md §13): client traffic is
// routed over the consistent-hash ring to the first alive replica,
// writes replicate asynchronously through per-node op queues, reads are
// quorum reads with read-repair, and revocation epochs are cluster-wide
// two-phase commits. The default single-node cluster behaves exactly
// like the PR 3 single server. Canonical entity names used for channels
// and metering:
//   "ca", "aa:<AID>", "owner:<id>", "user:<UID>",
//   "server" (single-node cluster) or "node:<i>" (multi-node).
#pragma once

#include "cloud/cluster.h"
#include "cloud/entities.h"
#include "cloud/server.h"
#include "cloud/transport.h"
#include "telemetry/metrics.h"

namespace maabe::cloud {

class CloudSystem {
 public:
  explicit CloudSystem(std::shared_ptr<const pairing::Group> grp,
                       const std::string& seed = "maabe-system");
  /// Full control: inject a transport (typically a LoopbackTransport
  /// with a FaultPlan), a retry policy, and the cluster shape (defaults
  /// to a single node, which behaves exactly like the PR 3 server).
  CloudSystem(std::shared_ptr<const pairing::Group> grp, const std::string& seed,
              std::unique_ptr<Transport> transport, RetryPolicy retry = RetryPolicy(),
              ClusterConfig cluster = ClusterConfig());

  // ---- Enrollment ----------------------------------------------------
  /// Registers an AA with the CA and creates its entity. Owner shares
  /// are delivered through the transport; shares that cannot be
  /// delivered park and replay later (issue_user_key reports a typed
  /// error until the share arrives).
  AttributeAuthority& add_authority(const std::string& aid,
                                    const std::set<std::string>& attributes);
  /// Registers a user with the CA and creates its consumer entity from
  /// the transported PK bytes. Safe to retry after a TransportError.
  Consumer& add_user(const std::string& uid);
  /// Creates an owner and distributes SK_o to every existing authority.
  DataOwner& add_owner(const std::string& owner_id);

  // ---- Attribute & key management -------------------------------------
  /// AA-side role assignment (admin request routed ca -> aa).
  void assign_attributes(const std::string& aid, const std::string& uid,
                         const std::set<std::string>& attributes);
  /// User pulls SK_{UID,AID} for one owner's data from one authority.
  void issue_user_key(const std::string& aid, const std::string& uid,
                      const std::string& owner_id);
  /// Owner pulls the current public keys from one authority.
  void publish_authority_keys(const std::string& aid, const std::string& owner_id);

  // ---- Data path -------------------------------------------------------
  /// Owner protects and uploads a file. If the server is unreachable the
  /// upload parks and replays before any later server delivery.
  void upload(const std::string& owner_id, const std::string& file_id,
              const std::vector<DataComponent>& components);

  /// Per-slot outcome of a degraded-mode download.
  enum class SlotState {
    kOk,       ///< decrypted; plaintext present
    kNoKey,    ///< keys do not satisfy the slot (authority unreachable
               ///< at issuance time, insufficient attributes, or stale
               ///< version) — indistinguishable by design
    kCorrupt,  ///< keys satisfy the slot but authentication failed
    kError,    ///< other typed failure (detail has the message)
  };
  struct SlotReport {
    std::string component;
    SlotState state = SlotState::kNoKey;
    Bytes plaintext;     ///< only for kOk
    std::string detail;  ///< human-readable cause for non-kOk states
  };
  struct DownloadReport {
    std::string file_id;
    std::vector<SlotReport> slots;
    /// The kOk slots, keyed by component name.
    std::map<std::string, Bytes> opened() const;
    bool all_ok() const;
    bool any_corrupt() const;
  };

  /// Degraded-mode download: decrypts the slots it can and reports the
  /// rest as kNoKey/kCorrupt/kError per slot, instead of failing the
  /// whole file. Reads are fail-closed against parked revocation epochs:
  /// throws TransportError(kDegraded) while server deliveries are
  /// pending and the flush could not drain them.
  DownloadReport download_report(const std::string& uid, const std::string& file_id);

  /// Legacy strict download: the opened slots; re-throws the first
  /// kCorrupt/kError slot's failure as a typed error.
  std::map<std::string, Bytes> download(const std::string& uid,
                                        const std::string& file_id);

  // ---- Revocation (paper Section V-C, both phases) ---------------------
  /// Runs the complete protocol: AA re-keys, the revoked user receives
  /// regenerated keys, all other holders update, owners update public
  /// keys and emit UpdateInfo, the server re-encrypts. Deliveries that
  /// cannot complete park per destination and replay later (the epoch
  /// extends PR 2's failure atomicity across the network boundary).
  /// Returns the number of ciphertext slots re-encrypted *and committed
  /// on the server during this call* — parked work shows in health().
  size_t revoke_attribute(const std::string& aid, const std::string& uid,
                          const std::string& attribute);

  /// User-level revocation: strips every attribute the authority has
  /// assigned to `uid` with a single version bump, then runs the same
  /// update/re-encryption pipeline.
  size_t revoke_user(const std::string& aid, const std::string& uid);

  // ---- Degraded-mode plumbing ------------------------------------------
  /// Attempts to replay every parked delivery, in per-destination FIFO
  /// order. Stops a queue at its first transport failure (order must be
  /// preserved). Returns the number of deliveries still parked.
  size_t flush_pending();

  /// Liveness/robustness counters for operators and the chaos harness.
  struct Health {
    ChannelStats transport;         ///< aggregate over every channel
    uint64_t sends_ok = 0;          ///< reliable sends that succeeded
    uint64_t sends_failed = 0;      ///< reliable sends that exhausted retries
    uint64_t retries = 0;           ///< re-attempts across all sends
    uint64_t applied_requests = 0;  ///< distinct request ids applied
    uint64_t pending_deliveries = 0;
    std::map<std::string, size_t> pending_by_destination;
    uint64_t virtual_ms = 0;  ///< transport clock (delays + backoff)
  };
  /// health() may be called concurrently with operations on other
  /// threads: the meter, link counters and pending queues synchronize
  /// themselves, and every row of the result is internally coherent.
  Health health() const;

  /// Per-node health: the node's store/epoch counters plus its share of
  /// the transport meter and the durable queues, so an injected fault
  /// is attributable to the node it hit. Throws SchemeError on an
  /// unknown node name.
  NodeHealth health(const std::string& node_id) const;
  /// health(node) for every node of the cluster, in node order.
  std::vector<NodeHealth> cluster_health() const;

  /// Parked replication/read-repair deliveries across all nodes — the
  /// cluster's replication lag in ops.
  uint64_t replication_lag() const;

  // ---- Admission control -----------------------------------------------
  /// Caps every per-destination durable queue (default
  /// kDefaultPendingCap ops; 0 restores the default). When a queue is
  /// full further sends are rejected with TransportError(kOverloaded):
  /// entity traffic (uploads, revocation distribution) sees the typed
  /// error, cluster maintenance fan-out sheds and lets read-repair heal.
  void set_pending_cap(size_t cap) { durable_.set_pending_cap(cap); }
  size_t pending_cap() const { return durable_.pending_cap(); }
  /// Sends rejected at the cap / parked ops dropped by restart
  /// reconciliation (also in maabe_transport_parked_{rejected,pruned}_total).
  uint64_t parked_rejected_total() const { return durable_.rejected_total(); }
  uint64_t parked_pruned_total() const { return durable_.pruned_total(); }

  /// Point-in-time view of the process-wide telemetry registry
  /// (maabe_engine_*, maabe_transport_*, maabe_server_*, ... counters
  /// and histograms), including this system's collector contributions
  /// (per-channel totals, pending queues, server occupancy). Render
  /// with Snapshot::prometheus_text().
  telemetry::Snapshot telemetry_snapshot() const;

  /// One aggregated cluster-observability document (ISSUE 9): per-node
  /// health (liveness, store totals, epoch ledger, queue depth),
  /// replication lag, parked-delivery queues, staged 2PC epochs, link
  /// counters, and every maabe_slo_* burn-rate gauge currently in the
  /// registry — a single JSON object an operator (or `maabe-loadgen
  /// --status-out`) can poll instead of stitching five views together.
  std::string status_json() const;

  // ---- Introspection ----------------------------------------------------
  AttributeAuthority& authority(const std::string& aid);
  DataOwner& owner(const std::string& owner_id);
  Consumer& user(const std::string& uid);
  /// Node 0's store — the whole store on a single-node cluster.
  CloudServer& server() { return cluster_.node_store(0); }
  Cluster& cluster() { return cluster_; }
  const Cluster& cluster() const { return cluster_; }
  Transport& transport() { return *transport_; }
  const ChannelMeter& meter() const { return transport_->meter(); }
  ChannelMeter& meter() { return transport_->meter(); }
  const pairing::Group& group() const { return *grp_; }
  RetryPolicy retry_policy() const { return link_.policy(); }
  void set_retry_policy(const RetryPolicy& policy) { link_.set_policy(policy); }

  /// Table III storage accounting. AA storage is the version key |p|;
  /// owner storage is MK_o + cached public keys; user storage is held
  /// secret keys; server storage is stored files.
  struct StorageReport {
    std::map<std::string, size_t> per_entity;
  };
  StorageReport storage_report() const;

 private:
  using Apply = ReliableLink::Apply;

  crypto::Drbg fork_rng(const std::string& label);
  size_t distribute_revocation(const std::string& aid, const std::string& uid,
                               uint32_t from_version,
                               const AttributeAuthority::RevocationBundle& bundle);

  /// Reliable send; throws TransportError(kExhausted) on failure.
  void send_reliable(const std::string& from, const std::string& to, ByteView payload,
                     const Apply& apply);
  /// Ordered durable send via the DurableLink (see replication.h).
  bool send_or_park(const std::string& from, const std::string& to, Bytes payload,
                    Apply apply, const std::string& label);

  std::shared_ptr<const pairing::Group> grp_;
  crypto::Drbg rng_;
  CertificateAuthority ca_;
  std::unique_ptr<Transport> transport_;
  ReliableLink link_;
  /// Per-destination write-ahead queues, shared between entity traffic
  /// and the cluster's replication fan-out (one health view).
  DurableLink durable_;
  Cluster cluster_;
  std::map<std::string, AttributeAuthority> authorities_;
  std::map<std::string, DataOwner> owners_;
  std::map<std::string, Consumer> users_;
  /// Declared last: deregisters on destruction before any member the
  /// collector callback reads goes away.
  telemetry::MetricsRegistry::CollectorToken collector_;
};

}  // namespace maabe::cloud
