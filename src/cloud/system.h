// CloudSystem: the full multi-authority access-control deployment.
//
// Wires the CA, attribute authorities, data owners, consumers and the
// cloud server together, moving every artefact through serialized
// channels with byte metering (ChannelMeter) — the basis of the
// communication-cost reproduction (Table IV) and the end-to-end
// examples. Canonical entity names used for metering:
//   "ca", "aa:<AID>", "owner:<id>", "user:<UID>", "server".
#pragma once

#include "cloud/entities.h"
#include "cloud/meter.h"
#include "cloud/server.h"

namespace maabe::cloud {

class CloudSystem {
 public:
  explicit CloudSystem(std::shared_ptr<const pairing::Group> grp,
                       const std::string& seed = "maabe-system");

  // ---- Enrollment ----------------------------------------------------
  /// Registers an AA with the CA and creates its entity.
  AttributeAuthority& add_authority(const std::string& aid,
                                    const std::set<std::string>& attributes);
  /// Registers a user with the CA and creates its consumer entity.
  Consumer& add_user(const std::string& uid);
  /// Creates an owner and distributes SK_o to every existing authority.
  DataOwner& add_owner(const std::string& owner_id);

  // ---- Attribute & key management -------------------------------------
  /// AA-side role assignment.
  void assign_attributes(const std::string& aid, const std::string& uid,
                         const std::set<std::string>& attributes);
  /// User pulls SK_{UID,AID} for one owner's data from one authority.
  void issue_user_key(const std::string& aid, const std::string& uid,
                      const std::string& owner_id);
  /// Owner pulls the current public keys from one authority.
  void publish_authority_keys(const std::string& aid, const std::string& owner_id);

  // ---- Data path -------------------------------------------------------
  /// Owner protects and uploads a file.
  void upload(const std::string& owner_id, const std::string& file_id,
              const std::vector<DataComponent>& components);
  /// User downloads and decrypts whatever slots its keys allow.
  std::map<std::string, Bytes> download(const std::string& uid,
                                        const std::string& file_id);

  // ---- Revocation (paper Section V-C, both phases) ---------------------
  /// Runs the complete protocol: AA re-keys, the revoked user receives
  /// regenerated keys, all other holders update, owners update public
  /// keys and emit UpdateInfo, the server re-encrypts. Returns the
  /// number of ciphertexts re-encrypted.
  size_t revoke_attribute(const std::string& aid, const std::string& uid,
                          const std::string& attribute);

  /// User-level revocation: strips every attribute the authority has
  /// assigned to `uid` with a single version bump, then runs the same
  /// update/re-encryption pipeline.
  size_t revoke_user(const std::string& aid, const std::string& uid);

  // ---- Introspection ----------------------------------------------------
  AttributeAuthority& authority(const std::string& aid);
  DataOwner& owner(const std::string& owner_id);
  Consumer& user(const std::string& uid);
  CloudServer& server() { return server_; }
  const ChannelMeter& meter() const { return meter_; }
  ChannelMeter& meter() { return meter_; }
  const pairing::Group& group() const { return *grp_; }

  /// Table III storage accounting. AA storage is the version key |p|;
  /// owner storage is MK_o + cached public keys; user storage is held
  /// secret keys; server storage is stored files.
  struct StorageReport {
    std::map<std::string, size_t> per_entity;
  };
  StorageReport storage_report() const;

 private:
  crypto::Drbg fork_rng(const std::string& label);
  size_t distribute_revocation(const std::string& aid, const std::string& uid,
                               uint32_t from_version,
                               const AttributeAuthority::RevocationBundle& bundle);

  std::shared_ptr<const pairing::Group> grp_;
  crypto::Drbg rng_;
  CertificateAuthority ca_;
  CloudServer server_;
  ChannelMeter meter_;
  std::map<std::string, AttributeAuthority> authorities_;
  std::map<std::string, DataOwner> owners_;
  std::map<std::string, Consumer> users_;
};

}  // namespace maabe::cloud
