#include "cloud/ring.h"

#include <algorithm>
#include <set>

#include "common/errors.h"
#include "crypto/sha256.h"

namespace maabe::cloud {

uint64_t HashRing::position(const std::string& label) {
  const Bytes digest = crypto::Sha256::digest(bytes_of(label));
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) v = (v << 8) | digest[i];
  return v;
}

HashRing::HashRing(std::vector<std::string> nodes, size_t replication, size_t vnodes)
    : nodes_(std::move(nodes)), vnodes_(vnodes == 0 ? 1 : vnodes) {
  if (nodes_.empty()) throw SchemeError("HashRing: no nodes");
  std::set<std::string> seen;
  for (const std::string& n : nodes_) {
    if (n.empty()) throw SchemeError("HashRing: empty node name");
    if (!seen.insert(n).second)
      throw SchemeError("HashRing: duplicate node '" + n + "'");
  }
  replication_ = std::clamp<size_t>(replication, 1, nodes_.size());
  ring_.reserve(nodes_.size() * vnodes_);
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    for (size_t v = 0; v < vnodes_; ++v) {
      ring_.emplace_back(position(nodes_[i] + "#" + std::to_string(v)), i);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::vector<std::string> HashRing::preference_order(const std::string& key) const {
  if (ring_.empty()) throw SchemeError("HashRing: not initialized");
  const uint64_t pos = position(key);
  const auto start = std::lower_bound(ring_.begin(), ring_.end(),
                                      std::make_pair(pos, uint32_t{0}));
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  std::vector<bool> taken(nodes_.size(), false);
  for (size_t step = 0; step < ring_.size() && out.size() < nodes_.size(); ++step) {
    const size_t idx =
        (static_cast<size_t>(start - ring_.begin()) + step) % ring_.size();
    const uint32_t node = ring_[idx].second;
    if (taken[node]) continue;
    taken[node] = true;
    out.push_back(nodes_[node]);
  }
  return out;
}

std::vector<std::string> HashRing::replicas_for(const std::string& key) const {
  std::vector<std::string> order = preference_order(key);
  order.resize(std::min(order.size(), replication_));
  return order;
}

const std::string& HashRing::primary_for(const std::string& key) const {
  if (ring_.empty()) throw SchemeError("HashRing: not initialized");
  const uint64_t pos = position(key);
  const auto start = std::lower_bound(ring_.begin(), ring_.end(),
                                      std::make_pair(pos, uint32_t{0}));
  const size_t idx = start == ring_.end() ? 0 : static_cast<size_t>(start - ring_.begin());
  return nodes_[ring_[idx].second];
}

bool HashRing::contains(const std::string& node) const {
  return std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end();
}

}  // namespace maabe::cloud
