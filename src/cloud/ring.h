// Consistent-hash ring for cluster file placement (DESIGN.md §13).
//
// Each node owns `vnodes` positions on a 64-bit ring (the first 8 bytes
// of SHA-256 over "<node>#<i>"); a file lands at the position of its
// file_id and its replica set is the next `replication` distinct nodes
// clockwise. Placement is static for a fixed membership: node failure
// changes who *coordinates* an operation (the first alive replica), not
// where the file lives, so a recovered node finds its parked replication
// queue addressed to exactly the files it still owns.
//
// Virtual nodes smooth the load: with 64 vnodes per node the largest
// per-node share of a uniform keyspace stays within a small factor of
// the mean, which the ring tests assert.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace maabe::cloud {

class HashRing {
 public:
  HashRing() = default;

  /// `replication` is clamped to [1, nodes.size()]. Node names must be
  /// unique and non-empty; throws SchemeError otherwise.
  HashRing(std::vector<std::string> nodes, size_t replication, size_t vnodes = 64);

  const std::vector<std::string>& nodes() const { return nodes_; }
  size_t replication() const { return replication_; }
  size_t vnodes() const { return vnodes_; }

  /// Every node, ordered by first appearance walking clockwise from the
  /// key's position. The first replication() entries are the replica
  /// set; the remainder is the failover order.
  std::vector<std::string> preference_order(const std::string& key) const;

  /// The first replication() nodes of preference_order.
  std::vector<std::string> replicas_for(const std::string& key) const;

  /// The first node of preference_order.
  const std::string& primary_for(const std::string& key) const;

  bool contains(const std::string& node) const;

  /// Ring position of an arbitrary label: big-endian u64 from the first
  /// 8 bytes of SHA-256. Exposed for tests.
  static uint64_t position(const std::string& label);

 private:
  std::vector<std::string> nodes_;
  size_t replication_ = 1;
  size_t vnodes_ = 0;
  /// Sorted (position, node index). Ties sort by index, so the walk is
  /// deterministic even on (astronomically unlikely) hash collisions.
  std::vector<std::pair<uint64_t, uint32_t>> ring_;
};

}  // namespace maabe::cloud
