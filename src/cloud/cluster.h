// Cluster: N CloudServer nodes joined only through the Transport
// (DESIGN.md §13).
//
// Placement is a consistent-hash ring (HashRing): each file lives on R
// replicas; the coordinator of an operation is the first *alive* node
// of the file's preference order, so node failure changes who serves a
// request, never where the data belongs.
//
// Writes: the coordinator assigns the file the next version of its
// local copy, stores it, and fans a ReplicationOp out to the other
// replicas through per-node DurableLink queues — asynchronous
// replication with write-ahead parking, replayed in version order when
// an unreachable replica comes back.
//
// Reads: the coordinator collects one FetchReply per alive replica
// (its own copy locally, the rest over the transport), requires a
// quorum, picks the winner (authentic > newest > preferred) and
// repairs divergent replicas in the background (read-repair).
//
// Revocation epochs: cluster-wide two-phase commit over the PR 2
// stage-then-commit hooks. The coordinator stages the epoch on every
// node (each node re-encrypts only the files it holds), commits
// everywhere once all staged — parked commits replay before any read —
// and aborts everywhere byte-identically if any node cannot stage.
//
// Failure model: alive/killed is scripted by the chaos harness
// (kill_node / restart_node); a killed node loses its memory-only
// staged epochs (abort_all_staged) but keeps its committed store, and a
// message addressed to a dead node fails like any lost frame, so the
// ReliableLink retry/park machinery needs no special cases.
//
// A single-node cluster (the default) degenerates to exactly the PR 3
// system: the node is named "server", writes replicate nowhere, reads
// are local, and epochs skip the 2PC and call reencrypt() directly.
#pragma once

#include <atomic>
#include <functional>
#include <set>

#include "cloud/recovery.h"
#include "cloud/replication.h"
#include "cloud/ring.h"
#include "cloud/server.h"

namespace maabe::cloud {

struct ClusterConfig {
  size_t nodes = 1;
  size_t replication = 1;  ///< copies per file, clamped to [1, nodes]
  size_t vnodes = 64;      ///< ring positions per node
  /// Replies required by a quorum read; 0 means majority (R/2 + 1).
  size_t read_quorum = 0;
};

/// Per-node liveness/robustness view (satellite of ISSUE 6): the store
/// and epoch counters come from the node, the transport and queue
/// fields are filled in by CloudSystem::health(node), which owns the
/// meter and the durable queues.
struct NodeHealth {
  std::string node;
  bool alive = true;
  ShardStats store;                  ///< totals over the node's shards
  uint64_t epochs_committed = 0;
  uint64_t epochs_aborted = 0;
  uint64_t epochs_staged_open = 0;   ///< staged 2PC epochs awaiting verdict
  uint64_t pending_in = 0;           ///< deliveries parked for this node
  uint64_t replication_lag = 0;      ///< parked replicate/read-repair ops to it
  ChannelStats transport_in;         ///< meter rows with to == node
  ChannelStats transport_out;        ///< meter rows with from == node
};

/// Cluster-wide monotonic counters (mirroring ServerStats/ChannelStats
/// style: snapshot, subtract, report).
struct ClusterStats {
  size_t nodes = 0;
  size_t alive = 0;
  size_t replication = 0;
  uint64_t replication_ops_sent = 0;  ///< ops fanned out (incl. parked)
  uint64_t replication_ops_applied = 0;
  uint64_t read_repairs = 0;          ///< repair ops issued by quorum reads
  uint64_t quorum_reads = 0;          ///< reads that met quorum
  uint64_t quorum_failures = 0;       ///< reads that could not meet quorum
  uint64_t epochs_2pc = 0;            ///< multi-node epochs attempted
  uint64_t epoch_commits = 0;         ///< 2PC epochs committed everywhere
  uint64_t epoch_aborts = 0;          ///< 2PC epochs aborted everywhere
  uint64_t epoch_commit_orphans = 0;  ///< commits for staged state lost to a restart
  /// Maintenance ops (replication fan-out, read-repair, epoch controls)
  /// dropped because the destination's bounded durable queue was full.
  /// The replica stays stale until read-repair / repair_all heals it.
  uint64_t replication_sheds = 0;
  /// Parked ops dropped by restart_node reconciliation (superseded
  /// replication versions, epoch controls whose staged state died).
  uint64_t restart_prunes = 0;
  /// Totals over every node's store.
  ShardStats store_totals;
  uint64_t server_epochs_committed = 0;
  uint64_t server_epochs_aborted = 0;
};

class Cluster {
 public:
  /// Node names: "server" for a single-node cluster (byte-compatible
  /// with the PR 3 channel layout), else "node:0" .. "node:N-1".
  Cluster(std::shared_ptr<const pairing::Group> grp, const ClusterConfig& config,
          ReliableLink& link, DurableLink& durable);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  size_t size() const { return nodes_.size(); }
  const std::vector<std::string>& node_names() const { return names_; }
  const std::string& node_name(size_t i) const;
  bool is_node(const std::string& name) const;
  size_t node_index(const std::string& name) const;  ///< throws SchemeError
  CloudServer& node_store(size_t i);
  CloudServer& node_store(const std::string& name);
  const CloudServer& node_store(const std::string& name) const;
  const HashRing& ring() const { return ring_; }
  const ClusterConfig& config() const { return config_; }
  /// Replies a quorum read needs (config.read_quorum or majority of R).
  size_t read_quorum() const;

  // ---- Liveness (scripted by the chaos harness) ----------------------
  bool alive(const std::string& name) const;
  size_t alive_count() const;
  /// Marks the node dead and discards its memory-only staged epochs
  /// (restart semantics: the committed store is durable, stage state is
  /// not). Messages to it now fail; durable sends park.
  void kill_node(const std::string& name);
  /// Marks the node alive again, reconciles its parked durable queue
  /// (replication/read-repair ops superseded by a newer parked version
  /// of the same file are dropped — each op carries the whole file and
  /// applies last-write-wins — and epoch commit/abort controls whose
  /// staged 2PC state died with the node are dropped, a dropped commit
  /// counting as an epoch_commit_orphan), then runs the rejoin protocol
  /// (DESIGN.md §15): resolve staged epochs, drain hinted hand-offs,
  /// scoped Merkle anti-entropy against each alive peer, and a second
  /// prune of parked ops the recovered state supersedes. After this the
  /// node is byte-identical to its peers on the files it replicates,
  /// without a full-store scan.
  void restart_node(const std::string& name);

  // ---- Placement -----------------------------------------------------
  std::vector<std::string> replicas_for(const std::string& file_id) const;
  /// The coordinator for this file: first alive replica, or the primary
  /// when the whole replica set is down (sends then park at it).
  std::string route_for(const std::string& file_id) const;
  /// The epoch coordinator: first alive node (node 0 when all are down).
  std::string coordinator() const;

  // ---- Node-side handlers (run inside transport applies) -------------
  /// Write path at the coordinator: assign version, store locally, fan
  /// ReplicationOps to the other replicas. Throws TransportError(kLost)
  /// when `self` is dead (the delivery never happened).
  void handle_store(const std::string& self, ByteView stored_file_wire);
  /// Replica side of replication and read-repair: applies the op iff it
  /// is newer than the local copy, or same-version with differing bytes
  /// (corruption repair). Idempotent.
  void handle_replication(const std::string& self, ByteView op_wire);
  /// Quorum read at the coordinator. Returns the winner's serialized
  /// StoredFile; issues read-repair ops for divergent replicas. Throws
  /// TransportError(kDegraded) when quorum cannot be met, SchemeError
  /// when no replica has the file.
  Bytes handle_fetch(const std::string& self, const std::string& file_id);
  /// Revocation epoch at the coordinator. Single node: plain
  /// reencrypt(). Multi-node: 2PC — stage on every node, commit
  /// everywhere when all staged (parked commits replay before reads),
  /// abort everywhere otherwise and throw so the epoch message itself
  /// stays parked and replays.
  void handle_epoch(const std::string& self, ByteView epoch_wire);

  // ---- Anti-entropy / introspection ----------------------------------
  /// Legacy operator anti-entropy: quorum-read every known file at its
  /// current coordinator so divergent replicas get read-repair ops.
  /// When the whole replica set of a file is down, the read is
  /// attempted from the next alive node in preference order so the
  /// failure is counted (quorum_failures) instead of silently skipped.
  /// Prefer recovery().sync_all(): it moves only divergent files.
  /// Returns the number of repair ops issued.
  size_t repair_all();

  /// The self-healing subsystem (Merkle anti-entropy, hinted hand-off,
  /// 2PC epoch resolution — DESIGN.md §15).
  RecoveryManager& recovery() { return *recovery_; }
  const RecoveryManager& recovery() const { return *recovery_; }

  /// Test hook for 2PC crash injection: called during a multi-node
  /// epoch with phase "staged" (all nodes staged, no decision recorded)
  /// and "decided" (commit decision recorded, before any commit
  /// applies). A hook that kills the coordinator and throws
  /// TransportError simulates a coordinator crash at that point.
  using EpochFaultHook = std::function<void(uint64_t, const std::string&)>;
  void set_epoch_fault_hook(EpochFaultHook hook) {
    epoch_fault_hook_ = std::move(hook);
  }

  /// Canonical bytes of one node's store: sorted (file_id, version,
  /// serialized file). Two replicas converged iff snapshots agree on
  /// their shared files; chaos tests compare these across runs.
  Bytes snapshot(const std::string& name) const;
  /// Version of this node's copy (0 when absent).
  uint64_t version_of(const std::string& name, const std::string& file_id) const;

  /// Human-readable dump of one node's flight-recorder ring (last N
  /// spans + typed events, DESIGN.md §16). Empty-ish ("0 entries")
  /// when the FlightRegistry was never armed or the node recorded
  /// nothing; chaos and recovery tests attach this on failure.
  std::string dump_flight_recorder(const std::string& name) const;

  NodeHealth node_health(const std::string& name) const;
  ClusterStats stats() const;
  /// Sum of per-node reencrypted_slots — the unit revocation returns.
  uint64_t total_reencrypted_slots() const;

 private:
  friend class RecoveryManager;

  // 2PC decision-log verdicts (persisted per node, survive kill_node).
  static constexpr uint8_t kVerdictCommit = 1;
  static constexpr uint8_t kVerdictAbort = 2;

  struct Meta {
    uint64_t version = 0;
    Bytes hash;  ///< SHA-256 over the serialized file as written
  };
  struct Node {
    std::string name;
    std::unique_ptr<CloudServer> store;
    bool alive = true;                       // guarded by mu
    std::map<std::string, Meta> meta;        // guarded by mu
    std::map<uint64_t, uint64_t> staged;     // epoch id -> store token, by mu
    /// Hinted hand-off: target node -> (file_id -> newest missed
    /// version). Held by the coordinator that shed/parked the write;
    /// survives kill_node like the committed store. Guarded by mu.
    std::map<std::string, std::map<std::string, uint64_t>> hints;
    /// 2PC decision log: epoch id -> kVerdict*. The durable half of the
    /// presumed-abort protocol — kill_node wipes staged state but never
    /// this, so peers can resolve a dead coordinator's epochs. By mu.
    std::map<uint64_t, uint8_t> decisions;
    mutable std::mutex mu;
  };

  Node& node(const std::string& name);
  const Node& node(const std::string& name) const;
  /// Throws TransportError(kLost) when the node is down, so an apply
  /// aimed at it fails exactly like a lost frame.
  void ensure_alive(const Node& n) const;
  /// Local read of one node's copy, as a FetchReply.
  FetchReply local_read(const Node& n, const std::string& file_id) const;
  void apply_replication(Node& n, const ReplicationOp& op);
  /// Records the verdict in n's decision log and commits or aborts the
  /// staged epoch if n still holds it (store mutation + meta bump under
  /// n.mu). Returns whether staged state was found. Used by phase 2, by
  /// control applies and by the recovery resolver.
  bool apply_epoch_decision(Node& n, uint64_t epoch_id, bool commit);
  void send_epoch_control(const std::string& self, const std::string& peer,
                          uint8_t verb, uint64_t epoch_id, const std::string& label);
  bool epoch_in_flight(uint64_t epoch_id) const;

  std::shared_ptr<const pairing::Group> grp_;
  ClusterConfig config_;
  ReliableLink& link_;
  DurableLink& durable_;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<Node>> nodes_;
  HashRing ring_;
  std::unique_ptr<RecoveryManager> recovery_;
  EpochFaultHook epoch_fault_hook_;
  /// Epochs whose 2PC is currently executing; the recovery resolver
  /// skips them (they are not stuck, just in flight).
  mutable std::mutex active_epochs_mu_;
  std::set<uint64_t> active_epochs_;
  std::atomic<uint64_t> next_epoch_id_{0};
  std::atomic<uint64_t> replication_ops_sent_{0};
  std::atomic<uint64_t> replication_ops_applied_{0};
  std::atomic<uint64_t> read_repairs_{0};
  std::atomic<uint64_t> quorum_reads_{0};
  std::atomic<uint64_t> quorum_failures_{0};
  std::atomic<uint64_t> epochs_2pc_{0};
  std::atomic<uint64_t> epoch_commits_{0};
  std::atomic<uint64_t> epoch_aborts_{0};
  std::atomic<uint64_t> epoch_commit_orphans_{0};
  std::atomic<uint64_t> replication_sheds_{0};
  std::atomic<uint64_t> restart_prunes_{0};
};

}  // namespace maabe::cloud
