#include "cloud/transport.h"

#include <algorithm>

#include "crypto/sha256.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace maabe::cloud {

namespace {

/// Registry handles for the transport's global counters (frame sends
/// are a telemetry hot path: one sharded-atomic add each, no locks).
struct TransportMetrics {
  telemetry::Counter& frames;
  telemetry::Counter& frame_bytes;
  telemetry::Counter& deliveries;
  telemetry::Counter& faults;
  telemetry::Counter& retries;
  telemetry::Counter& redeliveries;
  telemetry::Counter& sends_ok;
  telemetry::Counter& sends_failed;

  static TransportMetrics& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static TransportMetrics* m = new TransportMetrics{
        reg.counter("maabe_transport_frames_total"),
        reg.counter("maabe_transport_frame_bytes_total"),
        reg.counter("maabe_transport_deliveries_total"),
        reg.counter("maabe_transport_faults_total"),
        reg.counter("maabe_transport_retries_total"),
        reg.counter("maabe_transport_redeliveries_total"),
        reg.counter("maabe_transport_sends_ok_total"),
        reg.counter("maabe_transport_sends_failed_total"),
    };
    return *m;
  }
};

constexpr uint8_t kFrameTag = 0x7A;
constexpr size_t kChecksumSize = 4;

Bytes frame_checksum(ByteView framed_prefix) {
  Bytes digest = crypto::Sha256::digest(framed_prefix);
  digest.resize(kChecksumSize);
  return digest;
}

/// Uniform double in [0, 1) from 8 Drbg bytes (53-bit mantissa).
double uniform01(crypto::Drbg& rng) {
  const Bytes b = rng.bytes(8);
  uint64_t v = 0;
  for (uint8_t byte : b) v = (v << 8) | byte;
  return static_cast<double>(v >> 11) * 0x1.0p-53;
}

uint64_t uniform_u64(crypto::Drbg& rng) {
  const Bytes b = rng.bytes(8);
  uint64_t v = 0;
  for (uint8_t byte : b) v = (v << 8) | byte;
  return v;
}

}  // namespace

// ----------------------------------------------------------- Frames --

namespace {
constexpr uint8_t kFlagTrace = 0x01;
}  // namespace

Bytes encode_frame(const Frame& f) {
  Writer w;
  w.u8(kFrameTag);
  w.str(f.from);
  w.str(f.to);
  w.u64(f.request_id);
  w.u64(f.seq);
  if (f.has_trace()) {
    w.u8(kFlagTrace);
    w.u64(f.trace_id);
    w.u64(f.parent_span_id);
    w.str(f.origin_node);
  } else {
    w.u8(0);
  }
  w.var_bytes(f.payload);
  Bytes out = w.take();
  const Bytes sum = frame_checksum(out);
  out.insert(out.end(), sum.begin(), sum.end());
  return out;
}

Frame decode_frame(ByteView wire) {
  if (wire.size() < 1 + kChecksumSize)
    throw TransportError(TransportError::Kind::kMalformed,
                         "transport: frame shorter than header + checksum");
  const ByteView body(wire.data(), wire.size() - kChecksumSize);
  const ByteView sum(wire.data() + body.size(), kChecksumSize);
  const Bytes expect = frame_checksum(body);
  // The checksum covers every body byte, so any in-flight flip lands
  // here; constant-time comparison is unnecessary (integrity, not auth —
  // the sealed payloads carry their own MACs).
  if (!std::equal(expect.begin(), expect.end(), sum.begin(), sum.end()))
    throw TransportError(TransportError::Kind::kChecksum,
                         "transport: frame checksum mismatch");
  try {
    Reader r(body);
    if (r.u8() != kFrameTag)
      throw TransportError(TransportError::Kind::kMalformed,
                           "transport: bad frame tag");
    Frame f;
    f.from = r.str();
    f.to = r.str();
    f.request_id = r.u64();
    f.seq = r.u64();
    const uint8_t flags = r.u8();
    if ((flags & ~kFlagTrace) != 0)
      throw TransportError(TransportError::Kind::kMalformed,
                           "transport: unknown frame flags");
    if (flags & kFlagTrace) {
      f.trace_id = r.u64();
      f.parent_span_id = r.u64();
      f.origin_node = r.str();
      if (f.parent_span_id == 0)
        throw TransportError(TransportError::Kind::kMalformed,
                             "transport: trace flag set with null span id");
    }
    f.payload = r.var_bytes();
    r.expect_done();
    return f;
  } catch (const WireError& e) {
    throw TransportError(TransportError::Kind::kMalformed,
                         std::string("transport: malformed frame: ") + e.what());
  }
}

// -------------------------------------------------------- FaultPlan --

FaultPlan::FaultPlan(uint64_t seed) : seeded_(true), seed_(seed) {}

void FaultPlan::set_channel(const std::string& from, const std::string& to,
                            const FaultSpec& spec) {
  channel_specs_[{from, to}] = spec;
}

void FaultPlan::fail_next(const std::string& from, const std::string& to, uint32_t n) {
  scripts_[{from, to}] += n;
}

const FaultSpec& FaultPlan::spec_for(const std::string& from,
                                     const std::string& to) const {
  const auto it = channel_specs_.find({from, to});
  return it == channel_specs_.end() ? default_spec_ : it->second;
}

crypto::Drbg& FaultPlan::channel_rng(const std::string& from, const std::string& to) {
  const auto key = std::make_pair(from, to);
  auto it = rngs_.find(key);
  if (it == rngs_.end()) {
    const std::string label =
        "maabe/fault-plan/" + std::to_string(seed_) + "/" + from + ">" + to;
    it = rngs_.emplace(key, crypto::Drbg(std::string_view(label))).first;
  }
  return it->second;
}

FaultPlan::Decision FaultPlan::decide(const std::string& from, const std::string& to,
                                      size_t frame_size) {
  Decision d;
  // Scripts fire before (and independent of) the probabilistic spec.
  const auto script = scripts_.find({from, to});
  if (script != scripts_.end() && script->second > 0) {
    --script->second;
    d.script_failure = true;
    ++injected_.script_failures;
    return d;
  }
  const FaultSpec& spec = spec_for(from, to);
  if (!seeded_ || spec.fault_free()) return d;

  // Always draw every field in a fixed order, so the channel stream is a
  // pure function of (seed, channel, transmission index).
  crypto::Drbg& rng = channel_rng(from, to);
  const double p_drop = uniform01(rng);
  const double p_dup = uniform01(rng);
  const double p_corrupt = uniform01(rng);
  const double p_ack = uniform01(rng);
  const double p_delay = uniform01(rng);
  const uint64_t corrupt_pos = uniform_u64(rng);
  const uint8_t corrupt_mask = rng.bytes(1)[0];

  d.drop = p_drop < spec.drop;
  d.duplicate = p_dup < spec.duplicate;
  d.corrupt = p_corrupt < spec.corrupt;
  d.ack_loss = p_ack < spec.ack_loss;
  if (p_delay < spec.delay) d.delay_ms = spec.delay_ms;
  d.corrupt_offset = frame_size == 0 ? 0 : static_cast<size_t>(corrupt_pos % frame_size);
  d.corrupt_xor = static_cast<uint8_t>(corrupt_mask | 0x01);  // never a no-op flip

  if (d.delay_ms > 0) ++injected_.delays;
  if (d.drop) {
    // A dropped frame never reaches the receiver; the other outcomes
    // are moot (but their randomness was consumed, keeping the stream
    // aligned across spec changes).
    d.duplicate = d.corrupt = d.ack_loss = false;
    ++injected_.drops;
    return d;
  }
  if (d.corrupt) {
    d.duplicate = d.ack_loss = false;
    ++injected_.corruptions;
    return d;
  }
  if (d.duplicate) ++injected_.duplicates;
  if (d.ack_loss) ++injected_.ack_losses;
  return d;
}

// ------------------------------------------------ LoopbackTransport --

LoopbackTransport::LoopbackTransport(FaultPlan plan) : plan_(std::move(plan)) {}

void LoopbackTransport::deliver(const std::string& from, const std::string& to,
                                uint64_t request_id, ByteView payload,
                                const Sink& sink) {
  Frame frame;
  frame.from = from;
  frame.to = to;
  frame.request_id = request_id;
  // Trace-context injection: the sender's current span (the scoped
  // "transport.send" for direct sends, the replay span for parked
  // frames — which preserves the ORIGINATING context) rides the frame
  // so the receiving side can continue the same trace.
  const telemetry::SpanContext ctx = telemetry::Tracer::current();
  if (ctx.valid()) {
    frame.trace_id = ctx.trace_id;
    frame.parent_span_id = ctx.span_id;
    frame.origin_node = from;
  }
  frame.payload.assign(payload.begin(), payload.end());
  FaultPlan::Decision d;
  {
    std::lock_guard<std::mutex> lock(mu_);
    frame.seq = ++seq_[{from, to}];
  }
  Bytes wire = encode_frame(frame);
  {
    std::lock_guard<std::mutex> lock(mu_);
    d = plan_.decide(from, to, wire.size());
  }

  TransportMetrics& tm = TransportMetrics::get();
  tm.frames.inc();
  tm.frame_bytes.add(wire.size());

  // One span per transmission attempt. Ends (and emits) even when the
  // attempt throws below, with the outcome attribute already recorded —
  // this is how a traced revocation epoch shows every injected fault.
  telemetry::Span span = telemetry::Tracer::global().start_span("transport.frame");
  if (span.active()) {
    span.attr("from", from);
    span.attr("to", to);
    span.attr("node_id", from);
    span.attr("request_id", request_id);
    span.attr("seq", frame.seq);
    span.attr("frame_bytes", static_cast<uint64_t>(wire.size()));
  }

  // Meter commits happen in short lock scopes between protocol steps —
  // never while the sink runs, since sinks may nest further sends.
  meter_.apply(from, to, [&](ChannelStats& s) {
    s.frames += 1;
    s.frame_bytes += wire.size();
    s.payload_bytes += payload.size();
  });

  // Fault injections land in the destination node's flight recorder
  // (when armed): a failing chaos run dumps exactly which faults hit
  // the node under suspicion.
  const auto flight_fault = [&](const char* what) {
    if (telemetry::FlightRegistry::armed())
      telemetry::FlightRegistry::global().record_event(
          to, telemetry::FlightEntry::Kind::kFaultInjected, what,
          "from=" + from + " request_id=" + std::to_string(request_id));
  };

  if (d.script_failure) {
    meter_.apply(from, to, [](ChannelStats& s) { ++s.script_failures; });
    tm.faults.inc();
    span.attr("outcome", "scripted_failure");
    flight_fault("scripted_failure");
    throw TransportError(TransportError::Kind::kLost,
                         "transport: scripted failure on " + from + " -> " + to);
  }
  if (d.delay_ms > 0) {
    meter_.apply(from, to, [&](ChannelStats& s) {
      ++s.delays;
      s.delay_ms += d.delay_ms;
    });
    tm.faults.inc();
    now_ms_.fetch_add(d.delay_ms, std::memory_order_relaxed);
    span.attr("delay_ms", d.delay_ms);
    flight_fault("delay");
  }
  if (d.drop) {
    meter_.apply(from, to, [](ChannelStats& s) { ++s.drops; });
    tm.faults.inc();
    span.attr("outcome", "dropped");
    flight_fault("drop");
    throw TransportError(TransportError::Kind::kLost,
                         "transport: frame lost on " + from + " -> " + to);
  }
  if (d.corrupt) wire[d.corrupt_offset] ^= d.corrupt_xor;

  // Receiver side: verify and parse; a corrupted frame dies here.
  Frame received;
  try {
    received = decode_frame(wire);
  } catch (const TransportError&) {
    meter_.apply(from, to, [](ChannelStats& s) { ++s.corruptions; });
    tm.faults.inc();
    span.attr("outcome", "corrupted");
    flight_fault("corrupt");
    throw;
  }
  // Trace rehydration: continue the sender's trace on the receiving
  // side. The scoped recv span becomes the thread's current span, so
  // everything the sink does on this node nests under the propagated
  // wire context — this is what links a coordinator's epoch to its
  // replicas' stage/commit work into one tree.
  telemetry::Span recv;
  if (received.has_trace()) {
    recv = telemetry::Tracer::global().start_span(
        "transport.recv", {received.trace_id, received.parent_span_id});
    if (recv.active()) {
      recv.attr("node_id", to);
      recv.attr("origin", received.origin_node);
      recv.attr("request_id", received.request_id);
    }
  }
  // Delivery is counted at hand-off, before the sink runs: the intact
  // copy has reached the receiver at that point, and counting first
  // keeps bytes_delivered >= bytes_accepted at every instant (the sink
  // is what credits bytes_accepted).
  meter_.apply(from, to, [&](ChannelStats& s) {
    ++s.deliveries;
    s.bytes_delivered += received.payload.size();
  });
  tm.deliveries.inc();
  sink(received.request_id, received.payload);
  if (d.duplicate) {
    meter_.apply(from, to, [&](ChannelStats& s) {
      ++s.duplicates;
      s.frames += 1;
      s.frame_bytes += wire.size();
      ++s.deliveries;
      s.bytes_delivered += received.payload.size();
    });
    tm.faults.inc();
    tm.frames.inc();
    tm.frame_bytes.add(wire.size());
    tm.deliveries.inc();
    flight_fault("duplicate");
    sink(received.request_id, received.payload);
  }
  if (d.ack_loss) {
    meter_.apply(from, to, [](ChannelStats& s) { ++s.ack_losses; });
    tm.faults.inc();
    span.attr("outcome", "ack_lost");
    flight_fault("ack_loss");
    throw TransportError(TransportError::Kind::kLost,
                         "transport: acknowledgement lost on " + from + " -> " + to);
  }
  span.attr("outcome", "delivered");
}

// ----------------------------------------------------- ReliableLink --

ReliableLink::ReliableLink(Transport& transport, RetryPolicy policy)
    : transport_(transport), policy_(policy) {}

void ReliableLink::send(const std::string& from, const std::string& to,
                        ByteView payload, const Apply& apply) {
  send_as(allocate_request_id(), from, to, payload, apply);
}

void ReliableLink::send_as(uint64_t request_id, const std::string& from,
                           const std::string& to, ByteView payload,
                           const Apply& apply) {
  TransportMetrics& tm = TransportMetrics::get();
  // The logical-send span parents every transmission-attempt span the
  // transport emits below, so one trace links a send to its retries.
  telemetry::Span span = telemetry::Tracer::global().start_span("transport.send");
  if (span.active()) {
    span.attr("from", from);
    span.attr("to", to);
    span.attr("node_id", from);
    span.attr("request_id", request_id);
  }
  const uint64_t deadline = transport_.now_ms() + policy_.deadline_ms;
  std::string last_error = "no attempt made";
  uint32_t attempt = 0;
  for (; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      const uint64_t backoff = std::min(
          policy_.base_backoff_ms << (attempt - 1), policy_.max_backoff_ms);
      transport_.advance_clock(backoff);
      transport_.meter().apply(from, to, [](ChannelStats& s) { s.retries += 1; });
      retries_.fetch_add(1, std::memory_order_relaxed);
      tm.retries.inc();
      if (transport_.now_ms() > deadline) break;
    }
    try {
      transport_.deliver(
          from, to, request_id, payload, [&](uint64_t rid, ByteView delivered) {
            // Check/insert scopes are split around apply(): the dedup
            // mutex must not be held while apply runs, because applies
            // nest further sends back through this link. A request id
            // is only in flight once per logical send, so the split is
            // not a race window. Keys are (origin, request id): ids are
            // per-origin counters, and a retry of an applied request
            // must dedup even when failover re-routes it elsewhere.
            const auto key = std::make_pair(from, rid);
            bool fresh;
            {
              std::lock_guard<std::mutex> lock(applied_mu_);
              fresh = !applied_.contains(key);
            }
            if (!fresh) {
              transport_.meter().apply(
                  from, to, [](ChannelStats& s) { s.redeliveries += 1; });
              tm.redeliveries.inc();
              // A dedup'd redelivery is an event leaf in the ambient
              // trace (child of the rehydrated recv span), never a new
              // subtree: the duplicate's work was already recorded the
              // first time around.
              telemetry::Span dup = telemetry::Tracer::global().start_span(
                  "transport.dropped_duplicate");
              if (dup.active()) {
                dup.attr("from", from);
                dup.attr("to", to);
                dup.attr("node_id", to);
                dup.attr("request_id", rid);
              }
              return;
            }
            apply(delivered);
            transport_.meter().apply(from, to, [&](ChannelStats& s) {
              s.bytes_accepted += delivered.size();
            });
            std::lock_guard<std::mutex> lock(applied_mu_);
            applied_.insert(key);
          });
      sends_ok_.fetch_add(1, std::memory_order_relaxed);
      tm.sends_ok.inc();
      if (span.active()) {
        span.attr("attempts", attempt + 1);
        span.attr("outcome", "ok");
      }
      return;
    } catch (const TransportError& e) {
      last_error = e.what();
    }
  }
  sends_failed_.fetch_add(1, std::memory_order_relaxed);
  tm.sends_failed.inc();
  if (span.active()) {
    span.attr("attempts", attempt);
    span.attr("outcome", "exhausted");
  }
  throw TransportError(TransportError::Kind::kExhausted,
                       "transport: giving up on " + from + " -> " + to +
                           " after retries (last: " + last_error + ")");
}

}  // namespace maabe::cloud
