#include "cloud/entities.h"

#include "abe/serial.h"
#include "common/errors.h"
#include "crypto/sha256.h"
#include "lsss/parser.h"
#include "telemetry/metrics.h"

namespace maabe::cloud {

using abe::AuthorityPublicKey;
using abe::Ciphertext;
using abe::EncryptionRecord;
using abe::PublicAttributeKey;
using abe::UpdateInfo;
using abe::UpdateKey;
using abe::UserPublicKey;
using abe::UserSecretKey;
using pairing::GT;

// ------------------------------------------------ CertificateAuthority --

CertificateAuthority::CertificateAuthority(std::shared_ptr<const pairing::Group> grp,
                                           crypto::Drbg rng)
    : grp_(std::move(grp)), rng_(std::move(rng)) {}

const UserPublicKey& CertificateAuthority::register_user(const std::string& uid) {
  if (users_.contains(uid)) throw SchemeError("CA: UID '" + uid + "' already registered");
  pairing::Zr u;
  const UserPublicKey pk = abe::ca_register_user(*grp_, uid, rng_, &u);
  user_secrets_.emplace(uid, u);
  return users_.emplace(uid, pk).first->second;
}

void CertificateAuthority::register_authority(const std::string& aid) {
  if (aid.empty()) throw SchemeError("CA: empty AID");
  if (!authorities_.insert(aid).second)
    throw SchemeError("CA: AID '" + aid + "' already registered");
}

const UserPublicKey& CertificateAuthority::user_public_key(const std::string& uid) const {
  const auto it = users_.find(uid);
  if (it == users_.end()) throw SchemeError("CA: unknown UID '" + uid + "'");
  return it->second;
}

// -------------------------------------------------- AttributeAuthority --

AttributeAuthority::AttributeAuthority(std::shared_ptr<const pairing::Group> grp,
                                       std::string aid, crypto::Drbg rng)
    : grp_(std::move(grp)), aid_(std::move(aid)), rng_(std::move(rng)) {
  vk_ = abe::aa_setup(*grp_, aid_, rng_);
}

void AttributeAuthority::define_attribute(const std::string& name) {
  if (name.empty()) throw SchemeError("AA: empty attribute name");
  universe_.insert(name);
}

void AttributeAuthority::accept_owner_share(const abe::OwnerSecretShare& share) {
  owners_.insert_or_assign(share.owner_id, share);
}

AuthorityPublicKey AttributeAuthority::public_key() const {
  return abe::aa_public_key(*grp_, vk_);
}

std::map<std::string, PublicAttributeKey> AttributeAuthority::attribute_public_keys()
    const {
  std::map<std::string, PublicAttributeKey> out;
  for (const std::string& name : universe_) {
    PublicAttributeKey pk = abe::aa_attribute_key(*grp_, vk_, name);
    out.emplace(pk.attr.qualified(), std::move(pk));
  }
  return out;
}

void AttributeAuthority::assign(const std::string& uid, const std::set<std::string>& names) {
  for (const std::string& name : names) {
    if (!universe_.contains(name))
      throw SchemeError("AA '" + aid_ + "': does not manage attribute '" + name + "'");
  }
  assignments_[uid].insert(names.begin(), names.end());
}

const std::set<std::string>& AttributeAuthority::assignment(const std::string& uid) const {
  static const std::set<std::string> kEmpty;
  const auto it = assignments_.find(uid);
  return it == assignments_.end() ? kEmpty : it->second;
}

UserSecretKey AttributeAuthority::issue_key(const UserPublicKey& user,
                                            const std::string& owner_id) {
  const auto owner = owners_.find(owner_id);
  if (owner == owners_.end())
    throw SchemeError("AA '" + aid_ + "': owner '" + owner_id + "' not onboarded");
  return abe::aa_keygen(*grp_, vk_, owner->second, user, assignment(user.uid));
}

AttributeAuthority::RevocationBundle AttributeAuthority::rekey_for(
    const UserPublicKey& user, const std::set<std::string>& remaining) {
  const abe::AuthorityVersionKey old_vk = vk_;
  vk_ = abe::aa_rekey(*grp_, old_vk, rng_).new_vk;

  RevocationBundle bundle;
  bundle.new_version = vk_.version;
  for (const auto& [owner_id, share] : owners_) {
    bundle.regenerated_keys.emplace(
        owner_id, abe::aa_regenerate_key(*grp_, vk_, share, user, remaining));
    bundle.update_keys.emplace(owner_id,
                               abe::aa_make_update_key(*grp_, old_vk, vk_, share));
  }
  return bundle;
}

AttributeAuthority::RevocationBundle AttributeAuthority::revoke(
    const UserPublicKey& user, const std::string& name) {
  auto it = assignments_.find(user.uid);
  if (it == assignments_.end() || it->second.erase(name) == 0)
    throw SchemeError("AA '" + aid_ + "': user '" + user.uid +
                      "' does not hold attribute '" + name + "'");
  return rekey_for(user, it->second);
}

AttributeAuthority::RevocationBundle AttributeAuthority::revoke_all(
    const UserPublicKey& user) {
  auto it = assignments_.find(user.uid);
  if (it == assignments_.end() || it->second.empty())
    throw SchemeError("AA '" + aid_ + "': user '" + user.uid +
                      "' holds no attributes to revoke");
  it->second.clear();
  return rekey_for(user, {});
}

// ---------------------------------------------------------- DataOwner --

DataOwner::DataOwner(std::shared_ptr<const pairing::Group> grp, std::string owner_id,
                     crypto::Drbg rng)
    : grp_(std::move(grp)), owner_id_(std::move(owner_id)), rng_(std::move(rng)) {
  mk_ = abe::owner_gen(*grp_, owner_id_, rng_);
  share_ = abe::owner_share(*grp_, mk_);
}

void DataOwner::learn_authority_key(const AuthorityPublicKey& pk) {
  authority_pks_.insert_or_assign(pk.aid, pk);
}

void DataOwner::learn_attribute_key(const PublicAttributeKey& pk) {
  attribute_pks_.insert_or_assign(pk.attr.qualified(), pk);
}

StoredFile DataOwner::protect(const std::string& file_id,
                              const std::vector<DataComponent>& components) {
  if (components.empty()) throw SchemeError("DataOwner: no components to protect");
  StoredFile file;
  file.file_id = file_id;
  file.owner_id = owner_id_;
  for (const DataComponent& comp : components) {
    const std::string ct_id = slot_ct_id(file_id, comp.name);
    if (records_.contains(ct_id))
      throw SchemeError("DataOwner: duplicate component id '" + ct_id + "'");

    // KEM: random GT seed -> content key.
    const GT seed = grp_->gt_random(rng_);
    const Bytes content_key = content_key_from_gt(seed);

    const lsss::LsssMatrix policy =
        lsss::LsssMatrix::from_policy(lsss::parse_policy(comp.policy));
    abe::EncryptionResult enc =
        abe::encrypt(*grp_, mk_, ct_id, seed, policy, authority_pks_, attribute_pks_, rng_);

    SealedSlot slot;
    slot.component_name = comp.name;
    slot.sealed_data =
        crypto::seal(content_key, comp.data, slot_aad(file_id, comp.name), rng_);
    slot.key_ct = enc.ct;

    records_.emplace(ct_id, enc.record);
    ciphertexts_.emplace(ct_id, std::move(enc.ct));
    file.slots.push_back(std::move(slot));
  }
  return file;
}

bool DataOwner::apply_update(const UpdateKey& uk) {
  if (uk.owner_id != owner_id_) return false;
  const auto apk = authority_pks_.find(uk.aid);
  if (apk == authority_pks_.end()) return false;
  apk->second = abe::apply_update_to_authority_pk(*grp_, apk->second, uk);
  for (auto& [handle, pk] : attribute_pks_) {
    if (pk.attr.aid != uk.aid) continue;
    prev_attribute_pks_.insert_or_assign(handle, pk);
    pk = abe::apply_update_to_attribute_pk(*grp_, pk, uk);
  }
  return true;
}

std::vector<UpdateInfo> DataOwner::update_infos(const std::string& aid,
                                                uint32_t from_version) {
  std::vector<UpdateInfo> out;
  for (auto& [ct_id, ct] : ciphertexts_) {
    const auto ver = ct.versions.find(aid);
    if (ver == ct.versions.end() || ver->second != from_version) continue;
    out.push_back(abe::owner_update_info(*grp_, mk_, records_.at(ct_id), ct,
                                         prev_attribute_pks_, attribute_pks_, aid));
    // Track the owner's own copy forward so later revocations can build
    // on the current ciphertext state.
    ver->second = from_version + 1;
    // The C / C_i components of the owner's copy also advance; rebuild
    // them the same way the server will (cheap, local).
  }
  return out;
}

// ----------------------------------------------------------- Consumer --

struct Consumer::DecryptCache {
  mutable std::mutex mu;
  size_t capacity = 64;
  std::list<std::pair<Bytes, Bytes>> order;  // (key, plaintext); front = MRU
  std::map<Bytes, std::list<std::pair<Bytes, Bytes>>::iterator> index;
  uint64_t hits = 0;
  uint64_t misses = 0;
};

Consumer::Consumer(std::shared_ptr<const pairing::Group> grp, UserPublicKey pk)
    : grp_(std::move(grp)), pk_(std::move(pk)),
      cache_(std::make_unique<DecryptCache>()) {}

Consumer::Consumer(Consumer&&) noexcept = default;
Consumer& Consumer::operator=(Consumer&&) noexcept = default;
Consumer::~Consumer() = default;

namespace {
std::string key_slot(const std::string& owner_id, const std::string& aid) {
  return owner_id + '\0' + aid;
}

/// Process-wide decrypt-cache counters, summed over every Consumer.
struct DecryptCacheMetrics {
  telemetry::Counter& hits;
  telemetry::Counter& misses;

  static DecryptCacheMetrics& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static DecryptCacheMetrics* m = new DecryptCacheMetrics{
        reg.counter("maabe_decrypt_cache_hits_total"),
        reg.counter("maabe_decrypt_cache_misses_total"),
    };
    return *m;
  }
};
}  // namespace

void Consumer::add_key(const UserSecretKey& sk) {
  if (sk.uid != pk_.uid)
    throw SchemeError("Consumer '" + pk_.uid + "': key issued to '" + sk.uid + "'");
  keys_.insert_or_assign(key_slot(sk.owner_id, sk.aid), sk);
  // Any key change (first issuance, regenerated key after revocation)
  // could alter what — and whether — a cached slot decrypts to.
  invalidate_decrypt_cache();
}

bool Consumer::apply_update(const UpdateKey& uk) {
  const auto it = keys_.find(key_slot(uk.owner_id, uk.aid));
  if (it == keys_.end()) return false;
  it->second = abe::apply_update_to_secret_key(*grp_, it->second, uk);
  // The key's per-authority version advanced: every cached plaintext
  // predates this revocation epoch.
  invalidate_decrypt_cache();
  return true;
}

bool Consumer::has_key(const std::string& owner_id, const std::string& aid) const {
  return keys_.contains(key_slot(owner_id, aid));
}

const UserSecretKey& Consumer::key(const std::string& owner_id,
                                   const std::string& aid) const {
  const auto it = keys_.find(key_slot(owner_id, aid));
  if (it == keys_.end())
    throw SchemeError("Consumer '" + pk_.uid + "': no key for owner '" + owner_id +
                      "' authority '" + aid + "'");
  return it->second;
}

std::map<std::string, UserSecretKey> Consumer::keys_for_owner(
    const std::string& owner_id) const {
  std::map<std::string, UserSecretKey> out;
  const std::string prefix = owner_id + '\0';
  for (const auto& [slot, sk] : keys_) {
    if (slot.starts_with(prefix)) out.emplace(sk.aid, sk);
  }
  return out;
}

bool Consumer::can_open(const SealedSlot& slot) const {
  return abe::can_decrypt(*grp_, slot.key_ct, keys_for_owner(slot.key_ct.owner_id));
}

std::map<std::string, Bytes> Consumer::open_file(const StoredFile& file) const {
  std::map<std::string, Bytes> out;
  const std::map<std::string, UserSecretKey> keys = keys_for_owner(file.owner_id);
  for (const SealedSlot& slot : file.slots) {
    if (!abe::can_decrypt(*grp_, slot.key_ct, keys)) continue;
    out.emplace(slot.component_name, open_slot(file, slot));
  }
  return out;
}

Bytes Consumer::open_slot(const StoredFile& file, const SealedSlot& slot) const {
  const Bytes cache_key = decrypt_cache_key(file, slot);
  if (!cache_key.empty()) {
    std::lock_guard<std::mutex> lock(cache_->mu);
    const auto it = cache_->index.find(cache_key);
    if (it != cache_->index.end()) {
      cache_->order.splice(cache_->order.begin(), cache_->order, it->second);
      ++cache_->hits;
      DecryptCacheMetrics::get().hits.inc();
      return cache_->order.front().second;
    }
    ++cache_->misses;
    DecryptCacheMetrics::get().misses.inc();
  }
  const std::map<std::string, UserSecretKey> keys = keys_for_owner(file.owner_id);
  const GT seed = abe::decrypt(*grp_, slot.key_ct, pk_, keys);
  const Bytes key = content_key_from_gt(seed);
  Bytes plaintext = crypto::open(key, slot.sealed_data,
                                 slot_aad(file.file_id, slot.component_name));
  if (!cache_key.empty()) {
    // Only a fully authenticated decrypt reaches this point — failures
    // threw above and are never cached.
    std::lock_guard<std::mutex> lock(cache_->mu);
    if (!cache_->index.contains(cache_key)) {
      cache_->order.emplace_front(cache_key, plaintext);
      cache_->index[cache_key] = cache_->order.begin();
      while (cache_->index.size() > cache_->capacity) {
        cache_->index.erase(cache_->order.back().first);
        cache_->order.pop_back();
      }
    }
  }
  return plaintext;
}

size_t Consumer::key_storage_bytes() const {
  size_t total = 0;
  for (const auto& [slot, sk] : keys_) total += abe::serialize(*grp_, sk).size();
  return total;
}

// The key covers the slot's complete ciphertext bytes: the ABE key-ct
// serialization embeds every per-authority version, and a revocation
// epoch rewrites C / C_i, so a re-encrypted slot can never collide with
// its pre-epoch plaintext. The consumer's own key state is handled by
// wholesale invalidation in add_key / apply_update instead of being
// folded into the key — cheaper than hashing every held key per read.
Bytes Consumer::decrypt_cache_key(const StoredFile& file,
                                  const SealedSlot& slot) const {
  {
    std::lock_guard<std::mutex> lock(cache_->mu);
    if (cache_->capacity == 0) return {};
  }
  Writer w;
  w.str(file.file_id);
  w.str(slot.component_name);
  w.var_bytes(abe::serialize(*grp_, slot.key_ct));
  w.var_bytes(slot.sealed_data);
  return crypto::Sha256::digest(w.bytes());
}

void Consumer::invalidate_decrypt_cache() {
  std::lock_guard<std::mutex> lock(cache_->mu);
  cache_->order.clear();
  cache_->index.clear();
}

void Consumer::set_decrypt_cache_capacity(size_t entries) {
  std::lock_guard<std::mutex> lock(cache_->mu);
  cache_->capacity = entries;
  while (cache_->index.size() > cache_->capacity) {
    cache_->index.erase(cache_->order.back().first);
    cache_->order.pop_back();
  }
}

size_t Consumer::decrypt_cache_capacity() const {
  std::lock_guard<std::mutex> lock(cache_->mu);
  return cache_->capacity;
}

size_t Consumer::decrypt_cache_size() const {
  std::lock_guard<std::mutex> lock(cache_->mu);
  return cache_->index.size();
}

uint64_t Consumer::decrypt_cache_hits() const {
  std::lock_guard<std::mutex> lock(cache_->mu);
  return cache_->hits;
}

uint64_t Consumer::decrypt_cache_misses() const {
  std::lock_guard<std::mutex> lock(cache_->mu);
  return cache_->misses;
}

}  // namespace maabe::cloud
