#include "cloud/cluster.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "abe/serial.h"
#include "common/errors.h"
#include "crypto/sha256.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace maabe::cloud {

namespace {

/// Registry handles for the cluster's global counters (PR 4 registry:
/// sharded-atomic adds, no locks on the data path).
struct ClusterMetrics {
  telemetry::Counter& replication_ops;
  telemetry::Counter& replication_applied;
  telemetry::Counter& read_repairs;
  telemetry::Counter& quorum_reads;
  telemetry::Counter& quorum_failures;
  telemetry::Counter& epochs_2pc;
  telemetry::Counter& epoch_commits;
  telemetry::Counter& epoch_aborts;
  telemetry::Counter& epoch_commit_orphans;
  telemetry::Counter& replication_shed;
  telemetry::Counter& restart_pruned;

  static ClusterMetrics& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static ClusterMetrics* m = new ClusterMetrics{
        reg.counter("maabe_cluster_replication_ops_total"),
        reg.counter("maabe_cluster_replication_applied_total"),
        reg.counter("maabe_cluster_read_repairs_total"),
        reg.counter("maabe_cluster_quorum_reads_total"),
        reg.counter("maabe_cluster_quorum_failures_total"),
        reg.counter("maabe_cluster_epochs_2pc_total"),
        reg.counter("maabe_cluster_epoch_commits_total"),
        reg.counter("maabe_cluster_epoch_aborts_total"),
        reg.counter("maabe_cluster_epoch_commit_orphans_total"),
        reg.counter("maabe_cluster_replication_shed_total"),
        reg.counter("maabe_cluster_restart_pruned_total"),
    };
    return *m;
  }
};

// Epoch control verbs on the node-to-node channel.
constexpr uint8_t kEpochStage = 1;
constexpr uint8_t kEpochCommit = 2;
constexpr uint8_t kEpochAbort = 3;

Bytes sha256_of(ByteView data) { return crypto::Sha256::digest(data); }

/// Parses "replicate <fid> v<N>" / "read-repair <fid> v<N>" labels (the
/// inverse of the label formatting in handle_store / handle_fetch).
bool parse_versioned_label(const std::string& label, std::string* fid,
                           uint64_t* version) {
  size_t body = 0;
  if (label.starts_with("replicate ")) {
    body = 10;
  } else if (label.starts_with("read-repair ")) {
    body = 12;
  } else {
    return false;
  }
  const size_t sp = label.rfind(" v");
  if (sp == std::string::npos || sp < body) return false;
  const std::string digits = label.substr(sp + 2);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *fid = label.substr(body, sp - body);
  *version = std::stoull(digits);
  return true;
}

/// Parses "epoch commit #<id>" / "epoch abort #<id>" labels.
bool parse_epoch_control_label(const std::string& label, bool* is_commit,
                               uint64_t* epoch_id) {
  size_t body = 0;
  if (label.starts_with("epoch commit #")) {
    body = 14;
    *is_commit = true;
  } else if (label.starts_with("epoch abort #")) {
    body = 13;
    *is_commit = false;
  } else {
    return false;
  }
  const std::string digits = label.substr(body);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *epoch_id = std::stoull(digits);
  return true;
}

}  // namespace

Cluster::Cluster(std::shared_ptr<const pairing::Group> grp,
                 const ClusterConfig& config, ReliableLink& link,
                 DurableLink& durable)
    : grp_(std::move(grp)), config_(config), link_(link), durable_(durable) {
  if (config_.nodes == 0) config_.nodes = 1;
  config_.replication = std::clamp<size_t>(config_.replication, 1, config_.nodes);
  // One node keeps the PR 3 channel name so every existing script,
  // meter expectation and trace stays byte-compatible.
  if (config_.nodes == 1) {
    names_ = {"server"};
  } else {
    for (size_t i = 0; i < config_.nodes; ++i)
      names_.push_back("node:" + std::to_string(i));
  }
  for (const std::string& name : names_) {
    auto n = std::make_unique<Node>();
    n->name = name;
    n->store = std::make_unique<CloudServer>(grp_);
    n->store->set_node_name(name);
    nodes_.push_back(std::move(n));
  }
  ring_ = HashRing(names_, config_.replication, config_.vnodes);
  recovery_ = std::make_unique<RecoveryManager>(*this);
}

const std::string& Cluster::node_name(size_t i) const {
  if (i >= names_.size())
    throw SchemeError("Cluster: no node index " + std::to_string(i));
  return names_[i];
}

bool Cluster::is_node(const std::string& name) const {
  return std::find(names_.begin(), names_.end(), name) != names_.end();
}

size_t Cluster::node_index(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) throw SchemeError("Cluster: unknown node '" + name + "'");
  return static_cast<size_t>(it - names_.begin());
}

CloudServer& Cluster::node_store(size_t i) {
  if (i >= nodes_.size())
    throw SchemeError("Cluster: no node index " + std::to_string(i));
  return *nodes_[i]->store;
}

CloudServer& Cluster::node_store(const std::string& name) {
  return *nodes_[node_index(name)]->store;
}

const CloudServer& Cluster::node_store(const std::string& name) const {
  return *nodes_[node_index(name)]->store;
}

size_t Cluster::read_quorum() const {
  const size_t r = config_.replication;
  const size_t q = config_.read_quorum == 0 ? r / 2 + 1 : config_.read_quorum;
  return std::min(q, r);
}

Cluster::Node& Cluster::node(const std::string& name) {
  return *nodes_[node_index(name)];
}

const Cluster::Node& Cluster::node(const std::string& name) const {
  return *nodes_[node_index(name)];
}

// ------------------------------------------------------- liveness --

bool Cluster::alive(const std::string& name) const {
  const Node& n = node(name);
  std::lock_guard<std::mutex> lock(n.mu);
  return n.alive;
}

size_t Cluster::alive_count() const {
  size_t count = 0;
  for (const auto& n : nodes_) {
    std::lock_guard<std::mutex> lock(n->mu);
    if (n->alive) ++count;
  }
  return count;
}

void Cluster::kill_node(const std::string& name) {
  Node& n = node(name);
  {
    std::lock_guard<std::mutex> lock(n.mu);
    n.alive = false;
    // Staged 2PC epochs are memory-only: a restart loses them. The
    // epoch ids are dropped here so a replayed commit surfaces as an
    // orphan instead of committing stale staged state.
    n.staged.clear();
  }
  n.store->abort_all_staged();
}

void Cluster::restart_node(const std::string& name) {
  Node& n = node(name);
  std::set<uint64_t> staged_ids;
  {
    std::lock_guard<std::mutex> lock(n.mu);
    n.alive = true;
    for (const auto& [id, token] : n.staged) staged_ids.insert(id);
  }
  // Reconcile the restarted node's parked queue against what the node
  // can still use, so pending/replication-lag gauges stop reporting ops
  // it will never meaningfully drain:
  //  * replication/read-repair ops superseded by a newer parked version
  //    of the same file — each op carries the whole file and applies
  //    last-write-wins, so only the newest parked version matters;
  //  * epoch commit/abort controls whose staged 2PC state died with the
  //    node (kill_node clears it): a dropped commit is recorded as an
  //    epoch_commit_orphan exactly as a delivered-but-unknown commit
  //    would be, and the node's stale copy heals via read-repair.
  // Recovery replay of the survivors is still the durable queues' job:
  // they land on the next flush; repair_all() closes any remaining
  // divergence.
  std::map<std::string, uint64_t> newest;
  for (const std::string& label : durable_.pending_labels(name)) {
    std::string fid;
    uint64_t version = 0;
    if (!parse_versioned_label(label, &fid, &version)) continue;
    auto [it, inserted] = newest.try_emplace(fid, version);
    if (!inserted && version > it->second) it->second = version;
  }
  uint64_t orphans = 0;
  const size_t pruned =
      durable_.prune_queue(name, [&](const std::string& label) {
        std::string fid;
        uint64_t version = 0;
        if (parse_versioned_label(label, &fid, &version))
          return version < newest[fid];
        bool is_commit = false;
        uint64_t epoch_id = 0;
        if (parse_epoch_control_label(label, &is_commit, &epoch_id) &&
            !staged_ids.contains(epoch_id)) {
          if (is_commit) ++orphans;
          return true;
        }
        return false;
      });
  if (pruned > 0) {
    restart_prunes_.fetch_add(pruned, std::memory_order_relaxed);
    ClusterMetrics::get().restart_pruned.add(pruned);
  }
  if (orphans > 0) {
    epoch_commit_orphans_.fetch_add(orphans, std::memory_order_relaxed);
    ClusterMetrics::get().epoch_commit_orphans.add(orphans);
  }
  // Rejoin protocol (DESIGN.md §15): resolve staged-open epochs, drain
  // the hinted hand-offs recorded while this node was down, then run a
  // scoped Merkle anti-entropy round against each alive peer. The node
  // is byte-identical to its peers afterwards without a full-store
  // scan or quorum read.
  recovery_->rejoin(name);
  // Second reconciliation: parked replication/read-repair ops at or
  // below the version the rejoin already delivered would replay as
  // no-ops — drop them so the pending/lag gauges reflect real work.
  const size_t pruned_after =
      durable_.prune_queue(name, [&](const std::string& label) {
        std::string fid;
        uint64_t version = 0;
        return parse_versioned_label(label, &fid, &version) &&
               version <= version_of(name, fid);
      });
  if (pruned_after > 0) {
    restart_prunes_.fetch_add(pruned_after, std::memory_order_relaxed);
    ClusterMetrics::get().restart_pruned.add(pruned_after);
  }
}

void Cluster::ensure_alive(const Node& n) const {
  std::lock_guard<std::mutex> lock(n.mu);
  if (!n.alive)
    throw TransportError(TransportError::Kind::kLost,
                         "cluster: node '" + n.name + "' is down");
}

// ------------------------------------------------------ placement --

std::vector<std::string> Cluster::replicas_for(const std::string& file_id) const {
  return ring_.replicas_for(file_id);
}

std::string Cluster::route_for(const std::string& file_id) const {
  const std::vector<std::string> replicas = ring_.replicas_for(file_id);
  for (const std::string& r : replicas) {
    if (alive(r)) return r;
  }
  // Whole replica set down: address the primary, so sends park there
  // and replay when it recovers.
  return replicas.front();
}

std::string Cluster::coordinator() const {
  for (const std::string& n : names_) {
    if (alive(n)) return n;
  }
  return names_.front();
}

// ----------------------------------------------------- write path --

void Cluster::handle_store(const std::string& self, ByteView stored_file_wire) {
  Node& n = node(self);
  ensure_alive(n);
  StoredFile file = deserialize_stored_file(*grp_, stored_file_wire);
  const std::string file_id = file.file_id;
  const Bytes wire(stored_file_wire.begin(), stored_file_wire.end());
  const Bytes hash = sha256_of(wire);
  uint64_t version = 0;
  {
    // Store mutation and meta bump under one mu hold: snapshot() and
    // local_read() read under the same lock, so no reader can pair the
    // new bytes with the old version (or vice versa).
    std::lock_guard<std::mutex> lock(n.mu);
    n.store->store(std::move(file));
    Meta& m = n.meta[file_id];
    version = ++m.version;
    m.hash = hash;
  }
  if (config_.replication == 1) return;
  // Fan the versioned op out to the other replicas. Unreachable
  // replicas park; the queue replays in FIFO = version order, so a
  // recovered replica converges without reordering. Any replica that
  // misses the synchronous delivery (parked or shed) gets a hinted
  // hand-off, drained when it rejoins.
  ReplicationOp op{file_id, version, hash, wire};
  const Bytes op_wire = encode_replication_op(op);
  for (const std::string& replica : ring_.replicas_for(file_id)) {
    if (replica == self) continue;
    replication_ops_sent_.fetch_add(1, std::memory_order_relaxed);
    ClusterMetrics::get().replication_ops.inc();
    try {
      const bool delivered = durable_.send_or_park(
          self, replica, op_wire,
          [this, replica](ByteView payload) { handle_replication(replica, payload); },
          "replicate " + file_id + " v" + std::to_string(version));
      if (!delivered) recovery_->record_hint(self, replica, file_id, version);
    } catch (const TransportError& e) {
      // Bounded-queue backpressure: the replica's parked queue is full.
      // The write already succeeded at the coordinator; shed this
      // maintenance op (counted) and leave a hint so the rejoin drain
      // (or read-repair) heals the replica.
      if (e.kind() != TransportError::Kind::kOverloaded) throw;
      replication_sheds_.fetch_add(1, std::memory_order_relaxed);
      ClusterMetrics::get().replication_shed.inc();
      recovery_->record_hint(self, replica, file_id, version);
    }
  }
}

void Cluster::apply_replication(Node& n, const ReplicationOp& op) {
  // Newer versions always apply; an equal version applies only when the
  // stored bytes differ from the op's (corruption repair). Older
  // versions are ignored, which makes replays and duplicates idempotent.
  // The check, store mutation and meta update share one mu hold so no
  // snapshot or local read sees a version/bytes mismatch.
  {
    std::lock_guard<std::mutex> lock(n.mu);
    const auto it = n.meta.find(op.file_id);
    if (it != n.meta.end() && op.version < it->second.version) return;
    if (it != n.meta.end() && op.version == it->second.version &&
        n.store->has_file(op.file_id)) {
      const Bytes local = serialize(*grp_, *n.store->fetch(op.file_id));
      if (sha256_of(local) == op.hash) return;  // already converged
    }
    n.store->store(deserialize_stored_file(*grp_, op.wire));
    Meta& m = n.meta[op.file_id];
    m.version = op.version;
    m.hash = op.hash;
  }
  replication_ops_applied_.fetch_add(1, std::memory_order_relaxed);
  ClusterMetrics::get().replication_applied.inc();
}

void Cluster::handle_replication(const std::string& self, ByteView op_wire) {
  Node& n = node(self);
  ensure_alive(n);
  apply_replication(n, decode_replication_op(op_wire));
}

// ------------------------------------------------------ read path --

FetchReply Cluster::local_read(const Node& n, const std::string& file_id) const {
  FetchReply reply;
  // One mu hold across bytes and meta: a concurrent writer can never
  // make the reply pair new bytes with an old version.
  std::lock_guard<std::mutex> lock(n.mu);
  if (!n.store->has_file(file_id)) return reply;
  reply.found = true;
  reply.wire = serialize(*grp_, *n.store->fetch(file_id));
  const auto it = n.meta.find(file_id);
  if (it != n.meta.end()) {
    reply.version = it->second.version;
    reply.hash = it->second.hash;
  } else {
    // Stored out of band (tests poke node stores directly): treat the
    // current bytes as authentic at version 0.
    reply.hash = sha256_of(reply.wire);
  }
  return reply;
}

Bytes Cluster::handle_fetch(const std::string& self, const std::string& file_id) {
  Node& coord = node(self);
  ensure_alive(coord);
  telemetry::Span span;
  if (size() > 1) {
    span = telemetry::Tracer::global().start_span("cluster.quorum_fetch");
    if (span.active()) {
      span.attr("coordinator", self);
      span.attr("node_id", self);
      span.attr("file_id", file_id);
    }
  }
  const std::vector<std::string> replicas = ring_.replicas_for(file_id);
  const size_t quorum = std::min(read_quorum(), replicas.size());

  struct ReplicaReply {
    size_t pref = 0;
    std::string node;
    FetchReply reply;
    bool valid = false;
  };
  std::vector<ReplicaReply> replies;
  for (size_t i = 0; i < replicas.size(); ++i) {
    const std::string& replica = replicas[i];
    if (replica == self) {
      replies.push_back({i, replica, local_read(coord, file_id), false});
      continue;
    }
    if (!alive(replica)) continue;  // failure detector: don't wait on the dead
    try {
      // Two legs, like the client download: the request carries the id,
      // the reply carries the versioned bytes, and the meter sees both.
      Bytes reply_wire;
      link_.send(self, replica, bytes_of(file_id),
                 [this, &replica, &reply_wire](ByteView payload) {
                   Node& remote = node(replica);
                   ensure_alive(remote);
                   reply_wire = encode_fetch_reply(local_read(
                       remote, std::string(payload.begin(), payload.end())));
                 });
      FetchReply reply;
      link_.send(replica, self, reply_wire, [&reply](ByteView payload) {
        reply = decode_fetch_reply(payload);
      });
      replies.push_back({i, replica, std::move(reply), false});
    } catch (const TransportError&) {
      // No reply from this replica; quorum accounting decides below.
    }
  }

  if (replies.size() < quorum) {
    quorum_failures_.fetch_add(1, std::memory_order_relaxed);
    ClusterMetrics::get().quorum_failures.inc();
    if (span.active()) span.attr("outcome", "quorum_failed");
    throw TransportError(TransportError::Kind::kDegraded,
                         "cluster: quorum read of '" + file_id + "' got " +
                             std::to_string(replies.size()) + "/" +
                             std::to_string(quorum) + " replies");
  }
  quorum_reads_.fetch_add(1, std::memory_order_relaxed);
  ClusterMetrics::get().quorum_reads.inc();

  // Winner: authentic (bytes match the recorded hash) beats corrupt,
  // then the highest version, then ring preference order.
  ReplicaReply* winner = nullptr;
  for (ReplicaReply& r : replies) {
    if (!r.reply.found) continue;
    r.valid = sha256_of(r.reply.wire) == r.reply.hash;
    if (winner == nullptr ||
        std::make_tuple(r.valid, r.reply.version, winner->pref) >
            std::make_tuple(winner->valid, winner->reply.version, r.pref)) {
      winner = &r;
    }
  }
  if (winner == nullptr)
    throw SchemeError("CloudServer: no file '" + file_id + "'");

  // Read-repair: push the winner at divergent replicas, asynchronously.
  const Bytes true_hash = sha256_of(winner->reply.wire);
  for (const ReplicaReply& r : replies) {
    if (&r == winner) continue;
    if (r.reply.found && r.reply.wire == winner->reply.wire &&
        r.reply.version == winner->reply.version) {
      continue;
    }
    const ReplicationOp op{file_id, winner->reply.version, true_hash,
                           winner->reply.wire};
    read_repairs_.fetch_add(1, std::memory_order_relaxed);
    ClusterMetrics::get().read_repairs.inc();
    if (r.node == self) {
      apply_replication(coord, op);  // repair our own stale/corrupt copy
      continue;
    }
    try {
      const bool delivered = durable_.send_or_park(
          self, r.node, encode_replication_op(op),
          [this, target = r.node](ByteView payload) {
            handle_replication(target, payload);
          },
          "read-repair " + file_id + " v" +
              std::to_string(winner->reply.version));
      if (!delivered) {
        recovery_->record_hint(self, r.node, file_id, winner->reply.version);
      }
    } catch (const TransportError& e) {
      // Shed the repair under backpressure; the read itself succeeded.
      // The hint keeps the divergence on record for the rejoin drain.
      if (e.kind() != TransportError::Kind::kOverloaded) throw;
      replication_sheds_.fetch_add(1, std::memory_order_relaxed);
      ClusterMetrics::get().replication_shed.inc();
      recovery_->record_hint(self, r.node, file_id, winner->reply.version);
    }
  }
  if (span.active()) {
    span.attr("replies", static_cast<uint64_t>(replies.size()));
    span.attr("outcome", "ok");
  }
  return winner->reply.wire;
}

// ----------------------------------------------------- revocation --

namespace {

struct EpochPayload {
  abe::UpdateKey uk;
  std::vector<abe::UpdateInfo> infos;
};

EpochPayload decode_epoch(const pairing::Group& grp, ByteView wire) {
  Reader r(wire);
  EpochPayload out;
  out.uk =
      abe::deserialize_update_key(grp, r.var_bytes(), abe::UkCheck::kCiphertextPath);
  const uint32_t n = r.u32();
  out.infos.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    out.infos.push_back(abe::deserialize_update_info(grp, r.var_bytes()));
  }
  r.expect_done();
  return out;
}

}  // namespace

void Cluster::send_epoch_control(const std::string& self, const std::string& peer,
                                 uint8_t verb, uint64_t epoch_id,
                                 const std::string& label) {
  Writer w;
  w.u8(verb);
  w.u64(epoch_id);
  try {
  durable_.send_or_park(
      self, peer, w.take(),
      [this, peer](ByteView payload) {
        Reader r(payload);
        const uint8_t v = r.u8();
        const uint64_t id = r.u64();
        r.expect_done();
        Node& n = node(peer);
        ensure_alive(n);
        // The verdict lands in the node's decision log either way, so
        // recovery resolution can answer queries about this epoch.
        const bool known = apply_epoch_decision(n, id, v == kEpochCommit);
        if (v == kEpochCommit && !known) {
          // The node restarted between stage and commit and lost its
          // staged state: the commit is an orphan. Its copy is stale
          // until anti-entropy / read-repair catches it up — counted,
          // never silent.
          epoch_commit_orphans_.fetch_add(1, std::memory_order_relaxed);
          ClusterMetrics::get().epoch_commit_orphans.inc();
        }
      },
      label);
  } catch (const TransportError& e) {
    // Phase-2 controls must not unwind a half-committed epoch: under
    // backpressure the control is shed (counted) and the peer's copy
    // stays stale — its staged state shows in epochs_staged_open and
    // quorum reads route around it until read-repair catches it up.
    if (e.kind() != TransportError::Kind::kOverloaded) throw;
    replication_sheds_.fetch_add(1, std::memory_order_relaxed);
    ClusterMetrics::get().replication_shed.inc();
    if (telemetry::FlightRegistry::armed())
      telemetry::FlightRegistry::global().record_event(
          peer, telemetry::FlightEntry::Kind::kOverloadShed, "epoch_control_shed",
          "label=" + label + " from=" + self);
  }
}

bool Cluster::apply_epoch_decision(Node& n, uint64_t epoch_id, bool commit) {
  bool had_staged = false;
  {
    std::lock_guard<std::mutex> lock(n.mu);
    n.decisions[epoch_id] = commit ? kVerdictCommit : kVerdictAbort;
    const auto it = n.staged.find(epoch_id);
    if (it != n.staged.end()) {
      had_staged = true;
      const uint64_t token = it->second;
      n.staged.erase(it);
      if (commit) {
        // Commit and meta bump under the same mu hold (see
        // handle_store): no reader pairs re-encrypted bytes with the
        // old version.
        std::vector<std::string> committed_files;
        n.store->commit_reencrypt(token, &committed_files);
        for (const std::string& fid : committed_files) {
          Meta& m = n.meta[fid];
          ++m.version;
          m.hash = sha256_of(serialize(*grp_, *n.store->fetch(fid)));
        }
      } else {
        n.store->abort_reencrypt(token);
      }
    }
  }
  // Epoch decisions are the events a 2PC post-mortem needs: which
  // verdict reached which node, and whether staged state was there to
  // apply it to (a commit with no staged state is the orphan case).
  if (telemetry::FlightRegistry::armed())
    telemetry::FlightRegistry::global().record_event(
        n.name, telemetry::FlightEntry::Kind::kEpochDecision,
        commit ? "commit" : "abort",
        "epoch_id=" + std::to_string(epoch_id) +
            (had_staged ? " applied" : " no_staged_state"));
  return had_staged;
}

bool Cluster::epoch_in_flight(uint64_t epoch_id) const {
  std::lock_guard<std::mutex> g(active_epochs_mu_);
  return active_epochs_.contains(epoch_id);
}

void Cluster::handle_epoch(const std::string& self, ByteView epoch_wire) {
  Node& coord = node(self);
  ensure_alive(coord);
  if (size() == 1) {
    // Single node: the PR 2 failure-atomic epoch needs no 2PC.
    const EpochPayload epoch = decode_epoch(*grp_, epoch_wire);
    coord.store->reencrypt(epoch.uk, epoch.infos);
    return;
  }

  epochs_2pc_.fetch_add(1, std::memory_order_relaxed);
  ClusterMetrics::get().epochs_2pc.inc();
  const uint64_t epoch_id = next_epoch_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Mark the epoch in flight so the recovery resolver never presumes
  // abort on a 2PC that is still executing; removed on every exit path.
  {
    std::lock_guard<std::mutex> g(active_epochs_mu_);
    active_epochs_.insert(epoch_id);
  }
  struct ActiveEpochGuard {
    Cluster* c;
    uint64_t id;
    ~ActiveEpochGuard() {
      std::lock_guard<std::mutex> g(c->active_epochs_mu_);
      c->active_epochs_.erase(id);
    }
  } active_guard{this, epoch_id};
  telemetry::Span span = telemetry::Tracer::global().start_span("cluster.epoch_2pc");
  if (span.active()) {
    span.attr("coordinator", self);
    span.attr("node_id", self);
    span.attr("epoch_id", epoch_id);
  }

  // ---- Phase 1: stage on every node. Each node re-encrypts only the
  // files it holds; the staged copies touch no store.
  std::vector<std::string> staged_nodes;
  try {
    {
      const EpochPayload epoch = decode_epoch(*grp_, epoch_wire);
      const uint64_t token = coord.store->stage_reencrypt(epoch.uk, epoch.infos);
      std::lock_guard<std::mutex> lock(coord.mu);
      coord.staged[epoch_id] = token;
    }
    staged_nodes.push_back(self);
    for (const std::string& peer : names_) {
      if (peer == self) continue;
      if (!alive(peer)) {
        throw TransportError(TransportError::Kind::kLost,
                             "cluster: cannot stage epoch on dead node '" + peer +
                                 "'");
      }
      Writer w;
      w.u8(kEpochStage);
      w.u64(epoch_id);
      w.var_bytes(epoch_wire);
      link_.send(self, peer, w.bytes(), [this, peer](ByteView payload) {
        Reader r(payload);
        if (r.u8() != kEpochStage)
          throw SchemeError("cluster: bad epoch control verb");
        const uint64_t id = r.u64();
        const Bytes wire = r.var_bytes();
        r.expect_done();
        Node& n = node(peer);
        ensure_alive(n);
        const EpochPayload epoch = decode_epoch(*grp_, wire);
        const uint64_t token = n.store->stage_reencrypt(epoch.uk, epoch.infos);
        std::lock_guard<std::mutex> lock(n.mu);
        n.staged[id] = token;
      });
      staged_nodes.push_back(peer);
    }
    // Crash point "staged": all nodes staged, no decision recorded yet.
    // A hook that kills this coordinator and throws leaves its peers
    // staged-open with nothing in any decision log — the presumed-abort
    // case the recovery resolver must handle.
    if (epoch_fault_hook_) epoch_fault_hook_(epoch_id, "staged");
  } catch (...) {
    if (!alive(self)) {
      // The coordinator crashed mid-epoch: a dead node sends nothing,
      // so no abort controls go out. Peers stay staged until recovery
      // resolution presumes abort from the missing decision record.
      if (span.active()) span.attr("outcome", "coordinator_crashed");
      throw;
    }
    // ---- Abort: record the verdict, then discard every staged copy so
    // all stores stay byte-identical to before the epoch, and rethrow.
    // A TransportError keeps the epoch message parked at the
    // coordinator, so it replays (and eventually commits everywhere)
    // once the cluster heals.
    epoch_aborts_.fetch_add(1, std::memory_order_relaxed);
    ClusterMetrics::get().epoch_aborts.inc();
    for (const std::string& staged : staged_nodes) {
      if (staged == self) {
        apply_epoch_decision(coord, epoch_id, /*commit=*/false);
        continue;
      }
      send_epoch_control(self, staged, kEpochAbort, epoch_id,
                         "epoch abort #" + std::to_string(epoch_id));
    }
    if (span.active()) span.attr("outcome", "aborted");
    throw;
  }

  // ---- Decision record (presumed-abort write-ahead): the commit
  // verdict lands in the coordinator's decision log — which survives
  // kill_node — before any commit applies, so peers can resolve the
  // epoch even if the coordinator dies right here.
  {
    std::lock_guard<std::mutex> lock(coord.mu);
    coord.decisions[epoch_id] = kVerdictCommit;
  }
  // Crash point "decided": decision durable, nothing committed yet.
  if (epoch_fault_hook_) epoch_fault_hook_(epoch_id, "decided");

  // ---- Phase 2: every node staged; commit everywhere. The local
  // commit happens first, the rest go through the durable queues —
  // a parked commit is a blocking delivery, replayed before any read.
  apply_epoch_decision(coord, epoch_id, /*commit=*/true);
  for (const std::string& peer : names_) {
    if (peer == self) continue;
    send_epoch_control(self, peer, kEpochCommit, epoch_id,
                       "epoch commit #" + std::to_string(epoch_id));
  }
  epoch_commits_.fetch_add(1, std::memory_order_relaxed);
  ClusterMetrics::get().epoch_commits.inc();
  if (span.active()) {
    span.attr("staged_nodes", static_cast<uint64_t>(staged_nodes.size()));
    span.attr("outcome", "committed");
  }
}

// --------------------------------------- anti-entropy / inspection --

size_t Cluster::repair_all() {
  const uint64_t before = read_repairs_.load(std::memory_order_relaxed);
  std::set<std::string> ids;
  for (const auto& n : nodes_) {
    if (!alive(n->name)) continue;
    for (const std::string& id : n->store->file_ids()) ids.insert(id);
  }
  for (const std::string& id : ids) {
    std::string coord = route_for(id);
    if (!alive(coord)) {
      // Whole replica set down: fall back to the next alive node in
      // preference order so the attempt is made (and its quorum failure
      // counted) instead of silently skipping the file.
      coord.clear();
      for (const std::string& n : ring_.preference_order(id)) {
        if (alive(n)) {
          coord = n;
          break;
        }
      }
      if (coord.empty()) continue;  // whole cluster down
    }
    try {
      handle_fetch(coord, id);
    } catch (const Error&) {
      // Quorum not met (or the file vanished): nothing to repair now.
    }
  }
  return static_cast<size_t>(read_repairs_.load(std::memory_order_relaxed) - before);
}

Bytes Cluster::snapshot(const std::string& name) const {
  const Node& n = node(name);
  // One consistent pass under the node mutex: taking version_of() per
  // file after listing ids would let a concurrent store pair a new
  // version with old bytes (or vice versa) — a torn read.
  std::lock_guard<std::mutex> lock(n.mu);
  Writer w;
  const std::vector<std::string> ids = n.store->file_ids();
  w.u32(static_cast<uint32_t>(ids.size()));
  for (const std::string& id : ids) {
    w.str(id);
    const auto it = n.meta.find(id);
    w.u64(it == n.meta.end() ? 0 : it->second.version);
    w.var_bytes(serialize(*grp_, *n.store->fetch(id)));
  }
  return w.take();
}

uint64_t Cluster::version_of(const std::string& name,
                             const std::string& file_id) const {
  const Node& n = node(name);
  std::lock_guard<std::mutex> lock(n.mu);
  const auto it = n.meta.find(file_id);
  return it == n.meta.end() ? 0 : it->second.version;
}

std::string Cluster::dump_flight_recorder(const std::string& name) const {
  return telemetry::FlightRegistry::global().dump(name);
}

NodeHealth Cluster::node_health(const std::string& name) const {
  const Node& n = node(name);
  NodeHealth h;
  h.node = name;
  const ServerStats stats = n.store->stats();
  h.store = stats.totals();
  h.epochs_committed = stats.epochs_committed;
  h.epochs_aborted = stats.epochs_aborted;
  h.epochs_staged_open = stats.epochs_staged_open;
  std::lock_guard<std::mutex> lock(n.mu);
  h.alive = n.alive;
  return h;
}

ClusterStats Cluster::stats() const {
  ClusterStats s;
  s.nodes = nodes_.size();
  s.alive = alive_count();
  s.replication = config_.replication;
  s.replication_ops_sent = replication_ops_sent_.load(std::memory_order_relaxed);
  s.replication_ops_applied =
      replication_ops_applied_.load(std::memory_order_relaxed);
  s.read_repairs = read_repairs_.load(std::memory_order_relaxed);
  s.quorum_reads = quorum_reads_.load(std::memory_order_relaxed);
  s.quorum_failures = quorum_failures_.load(std::memory_order_relaxed);
  s.epochs_2pc = epochs_2pc_.load(std::memory_order_relaxed);
  s.epoch_commits = epoch_commits_.load(std::memory_order_relaxed);
  s.epoch_aborts = epoch_aborts_.load(std::memory_order_relaxed);
  s.epoch_commit_orphans = epoch_commit_orphans_.load(std::memory_order_relaxed);
  s.replication_sheds = replication_sheds_.load(std::memory_order_relaxed);
  s.restart_prunes = restart_prunes_.load(std::memory_order_relaxed);
  for (const auto& n : nodes_) {
    const ServerStats stats = n->store->stats();
    s.store_totals += stats.totals();
    s.server_epochs_committed += stats.epochs_committed;
    s.server_epochs_aborted += stats.epochs_aborted;
  }
  return s;
}

uint64_t Cluster::total_reencrypted_slots() const {
  uint64_t total = 0;
  for (const auto& n : nodes_) total += n->store->stats().totals().reencrypted_slots;
  return total;
}

}  // namespace maabe::cloud
