#include "cloud/recovery.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "cloud/cluster.h"
#include "common/errors.h"
#include "common/wire.h"
#include "crypto/sha256.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace maabe::cloud {

namespace {

/// Registry handles for the recovery counters (PR 4 registry style).
struct RecoveryMetrics {
  telemetry::Counter& hints_recorded;
  telemetry::Counter& hints_replayed;
  telemetry::Counter& syncs;
  telemetry::Counter& sync_rounds;
  telemetry::Counter& shards_divergent;
  telemetry::Counter& files_transferred;
  telemetry::Counter& bytes_transferred;
  telemetry::Counter& epochs_resolved;
  telemetry::Counter& rejoins;

  static RecoveryMetrics& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static RecoveryMetrics* m = new RecoveryMetrics{
        reg.counter("maabe_recovery_hints_recorded_total"),
        reg.counter("maabe_recovery_hints_replayed_total"),
        reg.counter("maabe_recovery_syncs_total"),
        reg.counter("maabe_recovery_sync_rounds_total"),
        reg.counter("maabe_recovery_shards_divergent_total"),
        reg.counter("maabe_recovery_files_transferred_total"),
        reg.counter("maabe_recovery_bytes_transferred_total"),
        reg.counter("maabe_recovery_epochs_resolved_total"),
        reg.counter("maabe_recovery_rejoins_total"),
    };
    return *m;
  }
};

// Recovery verbs on the node-to-node channel. Every exchange is two
// transport legs (request, reply) so the meter and fault injection see
// both directions, exactly like the quorum read.
constexpr uint8_t kTreeLevel = 1;     ///< digests of one tree level slice
constexpr uint8_t kShardListing = 2;  ///< leaf entries of divergent shards
constexpr uint8_t kFilePull = 3;      ///< current copy of one file
constexpr uint8_t kHintList = 4;      ///< hints held for a target node
constexpr uint8_t kHintClear = 5;     ///< ack a drained hint
constexpr uint8_t kDecisionQuery = 6; ///< 2PC decision-log lookup

}  // namespace

/// One (file_id, version, content-hash) Merkle leaf. The hash covers
/// the bytes the node holds *now*, not the hash recorded at write time,
/// so silent corruption diverges the trees; `authentic` says whether
/// the two still agree.
struct RecoveryManager::ShardLeaf {
  std::string fid;
  uint64_t version = 0;
  Bytes content_hash;
  bool authentic = true;
};

/// Responder-side state of one anti-entropy session: the pair-scoped
/// listing and tree are computed once per sync_id and served level by
/// level, so a session sees one coherent snapshot of the store.
struct RecoveryManager::Session {
  std::string peer;
  uint64_t sync_id = 0;
  std::vector<std::vector<ShardLeaf>> listing;  // per shard, sorted by fid
  std::vector<std::vector<Bytes>> levels;       // [0] = root ... back() = shard leaves
};

RecoveryManager::RecoveryManager(Cluster& cluster) : cluster_(cluster) {}
RecoveryManager::~RecoveryManager() = default;

/// Binary tree over the per-shard digests, root first. The shard count
/// pads to a power of two so both sides' trees always align.
std::vector<std::vector<Bytes>> RecoveryManager::build_tree_levels(
    const std::vector<std::vector<RecoveryManager::ShardLeaf>>& listing) {
  size_t width = 1;
  while (width < listing.size()) width <<= 1;
  std::vector<Bytes> leaves(width);
  for (size_t i = 0; i < width; ++i) {
    Writer w;
    if (i < listing.size()) {
      for (const RecoveryManager::ShardLeaf& leaf : listing[i]) {
        w.str(leaf.fid);
        w.u64(leaf.version);
        w.raw(leaf.content_hash);
      }
    }
    leaves[i] = crypto::Sha256::digest(w.bytes());
  }
  std::vector<std::vector<Bytes>> levels;
  levels.push_back(std::move(leaves));
  while (levels.back().size() > 1) {
    const std::vector<Bytes>& prev = levels.back();
    std::vector<Bytes> up(prev.size() / 2);
    for (size_t i = 0; i < up.size(); ++i) {
      Writer w;
      w.raw(prev[2 * i]);
      w.raw(prev[2 * i + 1]);
      up[i] = crypto::Sha256::digest(w.bytes());
    }
    levels.push_back(std::move(up));
  }
  std::reverse(levels.begin(), levels.end());
  return levels;
}

// ------------------------------------------------------ tree build --

std::vector<std::vector<RecoveryManager::ShardLeaf>>
RecoveryManager::pair_listing(const std::string& owner,
                              const std::string& peer) {
  Cluster::Node& n = cluster_.node(owner);
  const size_t shards = n.store->shard_count();
  std::vector<std::vector<ShardLeaf>> out(shards);
  std::lock_guard<std::mutex> lock(n.mu);
  // file_ids() is sorted, so each shard's leaves come out fid-sorted.
  for (const std::string& fid : n.store->file_ids()) {
    const std::vector<std::string> replicas = cluster_.ring_.replicas_for(fid);
    const auto has = [&](const std::string& x) {
      return std::find(replicas.begin(), replicas.end(), x) != replicas.end();
    };
    if (!has(owner) || !has(peer)) continue;  // not a shared file
    ShardLeaf leaf;
    leaf.fid = fid;
    const Bytes wire = serialize(*cluster_.grp_, *n.store->fetch(fid));
    leaf.content_hash = crypto::Sha256::digest(wire);
    const auto it = n.meta.find(fid);
    if (it != n.meta.end()) {
      leaf.version = it->second.version;
      leaf.authentic = leaf.content_hash == it->second.hash;
    }
    out[n.store->shard_of(fid)].push_back(std::move(leaf));
  }
  return out;
}

RecoveryManager::Session& RecoveryManager::session_for(
    const std::string& owner, const std::string& peer, uint64_t sync_id) {
  // Caller holds mu_. One cached session per responder: a new sync_id
  // (or a different peer) snapshots the store afresh.
  std::unique_ptr<Session>& slot = sessions_[owner];
  if (!slot || slot->sync_id != sync_id || slot->peer != peer) {
    auto s = std::make_unique<Session>();
    s->peer = peer;
    s->sync_id = sync_id;
    s->listing = pair_listing(owner, peer);
    s->levels = build_tree_levels(s->listing);
    slot = std::move(s);
  }
  return *slot;
}

// ------------------------------------------------------------- rpc --

Bytes RecoveryManager::rpc(const std::string& from, const std::string& to,
                           Bytes request) {
  Bytes reply;
  cluster_.link_.send(from, to, request, [this, &to, &reply](ByteView payload) {
    reply = serve(to, payload);
  });
  Bytes out;
  cluster_.link_.send(to, from, reply, [&out](ByteView payload) {
    out.assign(payload.begin(), payload.end());
  });
  return out;
}

Bytes RecoveryManager::serve(const std::string& self, ByteView request) {
  Cluster::Node& n = cluster_.node(self);
  cluster_.ensure_alive(n);
  Reader r(request);
  const uint8_t verb = r.u8();
  Writer w;
  switch (verb) {
    case kTreeLevel: {
      const std::string initiator = r.str();
      const uint64_t sync_id = r.u64();
      const uint32_t depth = r.u32();
      const uint32_t count = r.u32();
      std::lock_guard<std::mutex> lock(mu_);
      Session& s = session_for(self, initiator, sync_id);
      w.u32(count);
      for (uint32_t i = 0; i < count; ++i) {
        const uint32_t idx = r.u32();
        if (depth >= s.levels.size() || idx >= s.levels[depth].size())
          throw SchemeError("recovery: tree level request out of range");
        w.var_bytes(s.levels[depth][idx]);
      }
      r.expect_done();
      break;
    }
    case kShardListing: {
      const std::string initiator = r.str();
      const uint64_t sync_id = r.u64();
      const uint32_t count = r.u32();
      std::lock_guard<std::mutex> lock(mu_);
      Session& s = session_for(self, initiator, sync_id);
      w.u32(count);
      for (uint32_t i = 0; i < count; ++i) {
        const uint32_t shard = r.u32();
        if (shard >= s.listing.size())
          throw SchemeError("recovery: shard listing request out of range");
        w.u32(shard);
        w.u32(static_cast<uint32_t>(s.listing[shard].size()));
        for (const ShardLeaf& leaf : s.listing[shard]) {
          w.str(leaf.fid);
          w.u64(leaf.version);
          w.u8(leaf.authentic ? 1 : 0);
          w.var_bytes(leaf.content_hash);
        }
      }
      r.expect_done();
      break;
    }
    case kFilePull: {
      const std::string fid = r.str();
      r.expect_done();
      std::lock_guard<std::mutex> lock(n.mu);
      if (!n.store->has_file(fid)) {
        w.u8(0);
        break;
      }
      ReplicationOp op;
      op.file_id = fid;
      op.wire = serialize(*cluster_.grp_, *n.store->fetch(fid));
      op.hash = crypto::Sha256::digest(op.wire);
      const auto it = n.meta.find(fid);
      op.version = it == n.meta.end() ? 0 : it->second.version;
      w.u8(1);
      w.var_bytes(encode_replication_op(op));
      break;
    }
    case kHintList: {
      const std::string target = r.str();
      r.expect_done();
      std::lock_guard<std::mutex> lock(n.mu);
      const auto it = n.hints.find(target);
      if (it == n.hints.end()) {
        w.u32(0);
        break;
      }
      w.u32(static_cast<uint32_t>(it->second.size()));
      for (const auto& [fid, version] : it->second) {
        w.str(fid);
        w.u64(version);
      }
      break;
    }
    case kHintClear: {
      const std::string target = r.str();
      const std::string fid = r.str();
      const uint64_t version = r.u64();
      r.expect_done();
      std::lock_guard<std::mutex> lock(n.mu);
      const auto it = n.hints.find(target);
      if (it != n.hints.end()) {
        const auto hit = it->second.find(fid);
        if (hit != it->second.end() && hit->second <= version) {
          it->second.erase(hit);
          if (it->second.empty()) n.hints.erase(it);
        }
      }
      w.u8(1);
      break;
    }
    case kDecisionQuery: {
      const uint64_t epoch_id = r.u64();
      r.expect_done();
      std::lock_guard<std::mutex> lock(n.mu);
      const auto it = n.decisions.find(epoch_id);
      w.u8(it == n.decisions.end() ? 0 : it->second);
      break;
    }
    default:
      throw SchemeError("recovery: unknown verb " + std::to_string(verb));
  }
  return w.take();
}

// ----------------------------------------------------- anti-entropy --

void RecoveryManager::push_file(const std::string& from, const std::string& to,
                                const ShardLeaf& leaf, SyncReport* rep) {
  Cluster::Node& n = cluster_.node(from);
  ReplicationOp op;
  {
    std::lock_guard<std::mutex> lock(n.mu);
    if (!n.store->has_file(leaf.fid)) return;
    op.file_id = leaf.fid;
    op.wire = serialize(*cluster_.grp_, *n.store->fetch(leaf.fid));
    op.hash = crypto::Sha256::digest(op.wire);
    const auto it = n.meta.find(leaf.fid);
    op.version = it == n.meta.end() ? 0 : it->second.version;
  }
  const Bytes op_wire = encode_replication_op(op);
  cluster_.link_.send(from, to, op_wire, [this, &to](ByteView payload) {
    cluster_.handle_replication(to, payload);
  });
  ++rep->files_pushed;
  rep->bytes_transferred += op.wire.size();
}

bool RecoveryManager::pull_file(const std::string& to, const std::string& from,
                                const std::string& file_id, uint64_t* bytes) {
  Writer w;
  w.u8(kFilePull);
  w.str(file_id);
  const Bytes reply = rpc(to, from, w.take());
  Reader r(reply);
  if (r.u8() == 0) return false;
  const Bytes op_wire = r.var_bytes();
  r.expect_done();
  const ReplicationOp op = decode_replication_op(op_wire);
  if (bytes != nullptr) *bytes += op.wire.size();
  cluster_.apply_replication(cluster_.node(to), op);
  return true;
}

SyncReport RecoveryManager::sync(const std::string& initiator,
                                 const std::string& peer) {
  Cluster::Node& a = cluster_.node(initiator);
  cluster_.ensure_alive(a);
  cluster_.ensure_alive(cluster_.node(peer));
  telemetry::Span span =
      telemetry::Tracer::global().start_span("recovery.sync");
  if (span.active()) {
    span.attr("initiator", initiator);
    span.attr("peer", peer);
    span.attr("node_id", initiator);
  }
  const uint64_t sync_id =
      next_sync_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::vector<std::vector<ShardLeaf>> listing =
      pair_listing(initiator, peer);
  const std::vector<std::vector<Bytes>> levels = build_tree_levels(listing);

  SyncReport rep;
  const uint32_t leaf_depth = static_cast<uint32_t>(levels.size()) - 1;
  std::vector<uint32_t> want = {0};
  std::vector<uint32_t> divergent;
  for (uint32_t depth = 0; depth <= leaf_depth && !want.empty(); ++depth) {
    Writer w;
    w.u8(kTreeLevel);
    w.str(initiator);
    w.u64(sync_id);
    w.u32(depth);
    w.u32(static_cast<uint32_t>(want.size()));
    for (const uint32_t idx : want) w.u32(idx);
    const Bytes reply = rpc(initiator, peer, w.take());
    ++rep.rounds;
    Reader r(reply);
    const uint32_t count = r.u32();
    if (count != want.size())
      throw SchemeError("recovery: tree level reply count mismatch");
    std::vector<uint32_t> next;
    for (uint32_t i = 0; i < count; ++i) {
      const Bytes remote = r.var_bytes();
      const uint32_t idx = want[i];
      if (levels[depth][idx] == remote) continue;  // subtree converged
      if (depth == leaf_depth) {
        if (idx < listing.size()) divergent.push_back(idx);
      } else {
        next.push_back(2 * idx);
        next.push_back(2 * idx + 1);
      }
    }
    r.expect_done();
    want = std::move(next);
  }

  if (!divergent.empty()) {
    rep.shards_divergent = divergent.size();
    Writer w;
    w.u8(kShardListing);
    w.str(initiator);
    w.u64(sync_id);
    w.u32(static_cast<uint32_t>(divergent.size()));
    for (const uint32_t shard : divergent) w.u32(shard);
    const Bytes reply = rpc(initiator, peer, w.take());
    ++rep.rounds;
    Reader r(reply);
    const uint32_t nshards = r.u32();
    for (uint32_t s = 0; s < nshards; ++s) {
      const uint32_t shard = r.u32();
      const uint32_t count = r.u32();
      std::vector<ShardLeaf> remote(count);
      for (uint32_t i = 0; i < count; ++i) {
        remote[i].fid = r.str();
        remote[i].version = r.u64();
        remote[i].authentic = r.u8() != 0;
        remote[i].content_hash = r.var_bytes();
      }
      static const std::vector<ShardLeaf> kNoLeaves;
      const std::vector<ShardLeaf>& local =
          shard < listing.size() ? listing[shard] : kNoLeaves;
      // Both sides are fid-sorted: a merge walk finds the divergence.
      size_t li = 0, ri = 0;
      while (li < local.size() || ri < remote.size()) {
        const bool only_local =
            ri == remote.size() ||
            (li < local.size() && local[li].fid < remote[ri].fid);
        const bool only_remote =
            li == local.size() ||
            (ri < remote.size() && remote[ri].fid < local[li].fid);
        if (only_local) {
          push_file(initiator, peer, local[li], &rep);
          ++li;
          continue;
        }
        if (only_remote) {
          uint64_t bytes = 0;
          if (pull_file(initiator, peer, remote[ri].fid, &bytes))
            ++rep.files_pulled;
          rep.bytes_transferred += bytes;
          ++ri;
          continue;
        }
        const ShardLeaf& l = local[li];
        const ShardLeaf& m = remote[ri];
        ++li;
        ++ri;
        if (l.version == m.version && l.content_hash == m.content_hash)
          continue;  // converged leaf
        bool push;
        if (l.version != m.version) {
          push = l.version > m.version;  // newest version wins
        } else if (l.authentic != m.authentic) {
          push = l.authentic;  // authentic copy beats bit-rot
        } else {
          // Same version, both (or neither) authentic yet different
          // bytes: deterministic tie-break by ring preference order.
          push = true;
          for (const std::string& p : cluster_.ring_.preference_order(l.fid)) {
            if (p == initiator) break;
            if (p == peer) {
              push = false;
              break;
            }
          }
        }
        if (push) {
          push_file(initiator, peer, l, &rep);
        } else {
          uint64_t bytes = 0;
          if (pull_file(initiator, peer, l.fid, &bytes)) ++rep.files_pulled;
          rep.bytes_transferred += bytes;
        }
      }
    }
    r.expect_done();
  }

  syncs_.fetch_add(1, std::memory_order_relaxed);
  sync_rounds_.fetch_add(rep.rounds, std::memory_order_relaxed);
  shards_divergent_.fetch_add(rep.shards_divergent, std::memory_order_relaxed);
  files_transferred_.fetch_add(rep.files_pushed + rep.files_pulled,
                               std::memory_order_relaxed);
  bytes_transferred_.fetch_add(rep.bytes_transferred, std::memory_order_relaxed);
  RecoveryMetrics& m = RecoveryMetrics::get();
  m.syncs.inc();
  m.sync_rounds.add(rep.rounds);
  m.shards_divergent.add(rep.shards_divergent);
  m.files_transferred.add(rep.files_pushed + rep.files_pulled);
  m.bytes_transferred.add(rep.bytes_transferred);
  if (span.active()) {
    span.attr("rounds", rep.rounds);
    span.attr("shards_divergent", rep.shards_divergent);
    span.attr("files_transferred", rep.files_pushed + rep.files_pulled);
    span.attr("bytes_transferred", rep.bytes_transferred);
  }
  return rep;
}

SyncReport RecoveryManager::sync_all() {
  SyncReport agg;
  for (size_t i = 0; i < cluster_.names_.size(); ++i) {
    for (size_t j = i + 1; j < cluster_.names_.size(); ++j) {
      const std::string& a = cluster_.names_[i];
      const std::string& b = cluster_.names_[j];
      if (!cluster_.alive(a) || !cluster_.alive(b)) continue;
      try {
        agg += sync(a, b);
      } catch (const TransportError&) {
        sync_failures_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return agg;
}

// -------------------------------------------------- hinted hand-off --

void RecoveryManager::record_hint(const std::string& holder,
                                  const std::string& target,
                                  const std::string& file_id,
                                  uint64_t version) {
  Cluster::Node& h = cluster_.node(holder);
  {
    std::lock_guard<std::mutex> lock(h.mu);
    uint64_t& v = h.hints[target][file_id];
    if (version > v) v = version;
  }
  hints_recorded_.fetch_add(1, std::memory_order_relaxed);
  RecoveryMetrics::get().hints_recorded.inc();
}

void RecoveryManager::clear_hint(const std::string& target,
                                 const std::string& holder,
                                 const std::string& file_id, uint64_t version) {
  Writer w;
  w.u8(kHintClear);
  w.str(target);
  w.str(file_id);
  w.u64(version);
  rpc(target, holder, w.take());
}

size_t RecoveryManager::drain_hints_for(const std::string& target) {
  if (!cluster_.alive(target) || cluster_.size() <= 1) return 0;
  telemetry::Span span =
      telemetry::Tracer::global().start_span("recovery.drain_hints");
  if (span.active()) {
    span.attr("node", target);
    span.attr("node_id", target);
  }
  size_t drained = 0;
  for (const std::string& holder : cluster_.names_) {
    if (holder == target || !cluster_.alive(holder)) continue;
    try {
      Writer w;
      w.u8(kHintList);
      w.str(target);
      const Bytes reply = rpc(target, holder, w.take());
      Reader r(reply);
      const uint32_t count = r.u32();
      std::vector<std::pair<std::string, uint64_t>> entries(count);
      for (uint32_t i = 0; i < count; ++i) {
        entries[i].first = r.str();
        entries[i].second = r.u64();
      }
      r.expect_done();
      for (const auto& [fid, version] : entries) {
        if (cluster_.version_of(target, fid) >= version) {
          clear_hint(target, holder, fid, version);
          hints_superseded_.fetch_add(1, std::memory_order_relaxed);
          ++drained;
          continue;
        }
        uint64_t bytes = 0;
        if (pull_file(target, holder, fid, &bytes)) {
          hints_replayed_.fetch_add(1, std::memory_order_relaxed);
          files_transferred_.fetch_add(1, std::memory_order_relaxed);
          bytes_transferred_.fetch_add(bytes, std::memory_order_relaxed);
          RecoveryMetrics& m = RecoveryMetrics::get();
          m.hints_replayed.inc();
          m.files_transferred.inc();
          m.bytes_transferred.add(bytes);
        } else {
          hints_dropped_.fetch_add(1, std::memory_order_relaxed);
        }
        clear_hint(target, holder, fid,
                   std::max(version, cluster_.version_of(target, fid)));
        ++drained;
      }
    } catch (const TransportError&) {
      // This holder's hints stay put for a later drain; anti-entropy
      // covers the files in the meantime.
      sync_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (span.active()) span.attr("drained", static_cast<uint64_t>(drained));
  return drained;
}

size_t RecoveryManager::hint_count(const std::string& target) const {
  size_t total = 0;
  for (const auto& n : cluster_.nodes_) {
    std::lock_guard<std::mutex> lock(n->mu);
    const auto it = n->hints.find(target);
    if (it != n->hints.end()) total += it->second.size();
  }
  return total;
}

size_t RecoveryManager::pending_hints() const {
  size_t total = 0;
  for (const auto& n : cluster_.nodes_) {
    std::lock_guard<std::mutex> lock(n->mu);
    for (const auto& [target, files] : n->hints) total += files.size();
  }
  return total;
}

// ---------------------------------------------- 2PC epoch resolution --

size_t RecoveryManager::resolve_staged_epochs() {
  size_t resolved = 0;
  for (const std::string& name : cluster_.names_) {
    if (!cluster_.alive(name)) continue;
    Cluster::Node& n = cluster_.node(name);
    std::map<uint64_t, uint64_t> staged;
    {
      std::lock_guard<std::mutex> lock(n.mu);
      staged = n.staged;
    }
    for (const auto& [epoch_id, token] : staged) {
      (void)token;
      if (cluster_.epoch_in_flight(epoch_id)) continue;
      uint8_t verdict = 0;
      {
        std::lock_guard<std::mutex> lock(n.mu);
        const auto it = n.decisions.find(epoch_id);
        if (it != n.decisions.end()) verdict = it->second;
      }
      if (verdict == 0) {
        for (const std::string& peer : cluster_.names_) {
          if (peer == name || !cluster_.alive(peer)) continue;
          try {
            Writer w;
            w.u8(kDecisionQuery);
            w.u64(epoch_id);
            const Bytes reply = rpc(name, peer, w.take());
            Reader r(reply);
            const uint8_t v = r.u8();
            r.expect_done();
            if (v != 0) {
              verdict = v;
              break;  // a recorded decision is final either way
            }
          } catch (const Error&) {
            // Unreachable peer: no decision learned from it.
          }
        }
      }
      // Presumed abort: a staged epoch with no recorded decision
      // anywhere reachable never committed — the coordinator records
      // its commit decision before applying any commit.
      const bool commit = verdict == Cluster::kVerdictCommit;
      telemetry::Span span =
          telemetry::Tracer::global().start_span("recovery.resolve_epoch");
      if (span.active()) {
        span.attr("node", name);
        span.attr("node_id", name);
        span.attr("epoch_id", epoch_id);
        span.attr("verdict", commit            ? "commit"
                             : verdict == 0    ? "presumed_abort"
                                               : "abort");
      }
      cluster_.apply_epoch_decision(n, epoch_id, commit);
      (commit ? epochs_resolved_commit_ : epochs_resolved_abort_)
          .fetch_add(1, std::memory_order_relaxed);
      RecoveryMetrics::get().epochs_resolved.inc();
      ++resolved;
    }
  }
  return resolved;
}

// ------------------------------------------------------------ rejoin --

void RecoveryManager::rejoin(const std::string& name) {
  if (cluster_.size() <= 1) return;
  telemetry::Span span =
      telemetry::Tracer::global().start_span("recovery.rejoin");
  if (span.active()) {
    span.attr("node", name);
    span.attr("node_id", name);
  }
  rejoins_.fetch_add(1, std::memory_order_relaxed);
  RecoveryMetrics::get().rejoins.inc();
  // Order matters: resolve staged epochs first so anti-entropy compares
  // committed state, then drain the writes that missed this node, then
  // a scoped sync against each alive peer closes whatever is left
  // (shed controls, lost repairs, bit-rot).
  const size_t resolved = resolve_staged_epochs();
  const size_t drained = drain_hints_for(name);
  SyncReport agg;
  for (const std::string& peer : cluster_.names_) {
    if (peer == name || !cluster_.alive(peer)) continue;
    try {
      agg += sync(name, peer);
    } catch (const TransportError&) {
      sync_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (span.active()) {
    span.attr("epochs_resolved", static_cast<uint64_t>(resolved));
    span.attr("hints_drained", static_cast<uint64_t>(drained));
    span.attr("files_transferred", agg.files_pushed + agg.files_pulled);
    span.attr("bytes_transferred", agg.bytes_transferred);
  }
}

RecoveryStats RecoveryManager::stats() const {
  RecoveryStats s;
  s.hints_recorded = hints_recorded_.load(std::memory_order_relaxed);
  s.hints_replayed = hints_replayed_.load(std::memory_order_relaxed);
  s.hints_superseded = hints_superseded_.load(std::memory_order_relaxed);
  s.hints_dropped = hints_dropped_.load(std::memory_order_relaxed);
  s.syncs = syncs_.load(std::memory_order_relaxed);
  s.sync_rounds = sync_rounds_.load(std::memory_order_relaxed);
  s.shards_divergent = shards_divergent_.load(std::memory_order_relaxed);
  s.files_transferred = files_transferred_.load(std::memory_order_relaxed);
  s.bytes_transferred = bytes_transferred_.load(std::memory_order_relaxed);
  s.epochs_resolved_commit =
      epochs_resolved_commit_.load(std::memory_order_relaxed);
  s.epochs_resolved_abort =
      epochs_resolved_abort_.load(std::memory_order_relaxed);
  s.rejoins = rejoins_.load(std::memory_order_relaxed);
  s.sync_failures = sync_failures_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace maabe::cloud
