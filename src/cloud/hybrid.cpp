#include "cloud/hybrid.h"

#include "abe/serial.h"
#include "common/errors.h"
#include "crypto/hmac.h"

namespace maabe::cloud {

Bytes content_key_from_gt(const pairing::GT& seed) {
  return crypto::kdf(seed.to_bytes(), "maabe/content-key", crypto::kContentKeySize);
}

std::string slot_ct_id(const std::string& file_id, const std::string& component_name) {
  return file_id + "/" + component_name;
}

std::pair<std::string, std::string> split_slot_ct_id(const std::string& ct_id) {
  const size_t slash = ct_id.find('/');
  if (slash == std::string::npos) return {ct_id, ""};
  return {ct_id.substr(0, slash), ct_id.substr(slash + 1)};
}

Bytes slot_aad(const std::string& file_id, const std::string& component_name) {
  Writer w;
  w.str(file_id);
  w.str(component_name);
  return w.take();
}

Bytes serialize(const pairing::Group& grp, const StoredFile& v) {
  Writer w;
  w.u8(0x60);
  w.str(v.file_id);
  w.str(v.owner_id);
  w.u32(static_cast<uint32_t>(v.slots.size()));
  for (const SealedSlot& slot : v.slots) {
    w.str(slot.component_name);
    w.var_bytes(abe::serialize(grp, slot.key_ct));
    w.var_bytes(slot.sealed_data);
  }
  return w.take();
}

StoredFile deserialize_stored_file(const pairing::Group& grp, ByteView data) {
  Reader r(data);
  if (r.u8() != 0x60) throw WireError("deserialize: wrong tag for StoredFile");
  StoredFile v;
  v.file_id = r.str();
  v.owner_id = r.str();
  const uint32_t n = r.u32();
  v.slots.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SealedSlot slot;
    slot.component_name = r.str();
    slot.key_ct = abe::deserialize_ciphertext(grp, r.var_bytes());
    slot.sealed_data = r.var_bytes();
    if (slot.key_ct.owner_id != v.owner_id)
      throw WireError("deserialize: slot ciphertext owner mismatch");
    v.slots.push_back(std::move(slot));
  }
  r.expect_done();
  return v;
}

}  // namespace maabe::cloud
