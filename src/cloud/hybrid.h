// Hybrid data format (paper Fig. 2).
//
// The owner splits data into logical components m_1..m_n, encrypts each
// with a fresh symmetric content key k_i, and CP-ABE-protects only the
// content keys:
//
//   [ CT_1 | E_{k_1}(m_1) ]  [ CT_2 | E_{k_2}(m_2) ]  ...
//
// The content key is transported KEM-style: the ABE "message" is a
// random GT element whose serialization feeds a KDF that yields the
// 32-byte AES/HMAC key. Users whose attributes satisfy a component's
// policy recover that component only — different users obtain different
// granularities of the same file.
#pragma once

#include "abe/types.h"
#include "crypto/authenc.h"

namespace maabe::cloud {

/// Owner-side input: one logical component and its access policy.
struct DataComponent {
  std::string name;    ///< e.g. "diagnosis", "billing"
  Bytes data;
  std::string policy;  ///< policy-language string (lsss/parser.h)
};

/// One protected component as stored in the cloud.
struct SealedSlot {
  std::string component_name;
  abe::Ciphertext key_ct;  ///< CP-ABE ciphertext of the content-key seed
  Bytes sealed_data;       ///< authenc box: iv || E_k(data) || tag
};

struct StoredFile {
  std::string file_id;
  std::string owner_id;
  std::vector<SealedSlot> slots;
};

/// Derives the 32-byte content key from the ABE-transported GT element.
Bytes content_key_from_gt(const pairing::GT& seed);

/// Stable ciphertext id for a component: "<file_id>/<component_name>".
std::string slot_ct_id(const std::string& file_id, const std::string& component_name);

/// Splits a slot ciphertext id back into {file_id, component_name} at
/// the first '/' (file ids themselves never contain one). An id with no
/// separator maps to {id, ""} — pre-hybrid single-component ids.
std::pair<std::string, std::string> split_slot_ct_id(const std::string& ct_id);

/// Additional authenticated data binding a sealed box to its slot.
Bytes slot_aad(const std::string& file_id, const std::string& component_name);

Bytes serialize(const pairing::Group& grp, const StoredFile& v);
StoredFile deserialize_stored_file(const pairing::Group& grp, ByteView data);

}  // namespace maabe::cloud
