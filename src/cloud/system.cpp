#include "cloud/system.h"

#include "abe/serial.h"
#include "common/errors.h"

namespace maabe::cloud {

namespace {

std::string aa_name(const std::string& aid) { return "aa:" + aid; }
std::string owner_name(const std::string& id) { return "owner:" + id; }
std::string user_name(const std::string& uid) { return "user:" + uid; }
constexpr const char* kServer = "server";
constexpr const char* kCa = "ca";

}  // namespace

CloudSystem::CloudSystem(std::shared_ptr<const pairing::Group> grp,
                         const std::string& seed)
    : grp_(std::move(grp)),
      rng_(std::string_view(seed)),
      ca_(grp_, crypto::Drbg(std::string_view(seed + "/ca"))),
      server_(grp_) {}

crypto::Drbg CloudSystem::fork_rng(const std::string& label) {
  crypto::Drbg fork(rng_.bytes(48));
  fork.reseed(bytes_of(label));
  return fork;
}

AttributeAuthority& CloudSystem::add_authority(const std::string& aid,
                                               const std::set<std::string>& attributes) {
  if (authorities_.contains(aid))
    throw SchemeError("CloudSystem: authority '" + aid + "' already exists");
  ca_.register_authority(aid);
  meter_.record(kCa, aa_name(aid), aid.size());  // AID assignment
  auto [it, inserted] =
      authorities_.emplace(aid, AttributeAuthority(grp_, aid, fork_rng("aa/" + aid)));
  for (const std::string& name : attributes) it->second.define_attribute(name);
  // Late-joining authorities still need every existing owner's SK_o.
  for (auto& [owner_id, owner] : owners_) {
    it->second.accept_owner_share(owner.share());
    meter_.record(owner_name(owner_id), aa_name(aid),
                  abe::serialize(*grp_, owner.share()).size());
  }
  return it->second;
}

Consumer& CloudSystem::add_user(const std::string& uid) {
  if (users_.contains(uid)) throw SchemeError("CloudSystem: user '" + uid + "' already exists");
  const abe::UserPublicKey& pk = ca_.register_user(uid);
  meter_.record(kCa, user_name(uid), abe::serialize(*grp_, pk).size());
  return users_.emplace(uid, Consumer(grp_, pk)).first->second;
}

DataOwner& CloudSystem::add_owner(const std::string& owner_id) {
  if (owners_.contains(owner_id))
    throw SchemeError("CloudSystem: owner '" + owner_id + "' already exists");
  auto [it, inserted] =
      owners_.emplace(owner_id, DataOwner(grp_, owner_id, fork_rng("owner/" + owner_id)));
  // SK_o goes to every authority over a secure channel.
  const Bytes share_bytes = abe::serialize(*grp_, it->second.share());
  for (auto& [aid, aa] : authorities_) {
    aa.accept_owner_share(it->second.share());
    meter_.record(owner_name(owner_id), aa_name(aid), share_bytes.size());
  }
  return it->second;
}

void CloudSystem::assign_attributes(const std::string& aid, const std::string& uid,
                                    const std::set<std::string>& attributes) {
  if (!users_.contains(uid)) throw SchemeError("CloudSystem: unknown user '" + uid + "'");
  authority(aid).assign(uid, attributes);
}

void CloudSystem::issue_user_key(const std::string& aid, const std::string& uid,
                                 const std::string& owner_id) {
  AttributeAuthority& aa = authority(aid);
  Consumer& consumer = user(uid);
  const abe::UserSecretKey sk = aa.issue_key(consumer.public_key(), owner_id);
  meter_.record(aa_name(aid), user_name(uid), abe::serialize(*grp_, sk).size());
  consumer.add_key(sk);
}

void CloudSystem::publish_authority_keys(const std::string& aid,
                                         const std::string& owner_id) {
  AttributeAuthority& aa = authority(aid);
  DataOwner& data_owner = owner(owner_id);
  const abe::AuthorityPublicKey apk = aa.public_key();
  size_t bytes = abe::serialize(*grp_, apk).size();
  data_owner.learn_authority_key(apk);
  for (const auto& [handle, pk] : aa.attribute_public_keys()) {
    bytes += abe::serialize(*grp_, pk).size();
    data_owner.learn_attribute_key(pk);
  }
  meter_.record(aa_name(aid), owner_name(owner_id), bytes);
}

void CloudSystem::upload(const std::string& owner_id, const std::string& file_id,
                         const std::vector<DataComponent>& components) {
  DataOwner& data_owner = owner(owner_id);
  StoredFile file = data_owner.protect(file_id, components);
  meter_.record(owner_name(owner_id), kServer, serialize(*grp_, file).size());
  server_.store(std::move(file));
}

std::map<std::string, Bytes> CloudSystem::download(const std::string& uid,
                                                   const std::string& file_id) {
  Consumer& consumer = user(uid);
  const std::shared_ptr<const StoredFile> file = server_.fetch(file_id);
  meter_.record(kServer, user_name(uid), serialize(*grp_, *file).size());
  return consumer.open_file(*file);
}

size_t CloudSystem::revoke_attribute(const std::string& aid, const std::string& uid,
                                     const std::string& attribute) {
  AttributeAuthority& aa = authority(aid);
  Consumer& revoked = user(uid);
  const uint32_t from_version = aa.version();
  // ---- Phase 1: Key Update (AA side) ----------------------------------
  const AttributeAuthority::RevocationBundle bundle =
      aa.revoke(revoked.public_key(), attribute);
  return distribute_revocation(aid, uid, from_version, bundle);
}

size_t CloudSystem::revoke_user(const std::string& aid, const std::string& uid) {
  AttributeAuthority& aa = authority(aid);
  Consumer& revoked = user(uid);
  const uint32_t from_version = aa.version();
  const AttributeAuthority::RevocationBundle bundle =
      aa.revoke_all(revoked.public_key());
  return distribute_revocation(aid, uid, from_version, bundle);
}

size_t CloudSystem::distribute_revocation(
    const std::string& aid, const std::string& uid, uint32_t from_version,
    const AttributeAuthority::RevocationBundle& bundle) {
  Consumer& revoked = user(uid);

  // 1) Fresh (reduced) secret keys to the revoked user — only for owners
  //    whose data the user actually holds keys for.
  for (const auto& [owner_id, sk] : bundle.regenerated_keys) {
    if (!revoked.has_key(owner_id, aid)) continue;
    meter_.record(aa_name(aid), user_name(uid), abe::serialize(*grp_, sk).size());
    revoked.replace_key(sk);
  }

  // 2) Update keys to every other user holding keys from this AA.
  for (auto& [other_uid, consumer] : users_) {
    if (other_uid == uid) continue;
    for (const auto& [owner_id, uk] : bundle.update_keys) {
      if (!consumer.has_key(owner_id, aid)) continue;
      if (consumer.apply_update(uk))
        meter_.record(aa_name(aid), user_name(other_uid),
                      abe::serialize(*grp_, uk).size());
    }
  }

  // 3) Update keys to every owner; owners refresh their cached public
  //    keys and emit UpdateInfo for affected ciphertexts.
  size_t reencrypted = 0;
  for (auto& [owner_id, data_owner] : owners_) {
    const auto uk_it = bundle.update_keys.find(owner_id);
    if (uk_it == bundle.update_keys.end()) continue;
    const abe::UpdateKey& uk = uk_it->second;
    if (!data_owner.apply_update(uk)) continue;
    meter_.record(aa_name(aid), owner_name(owner_id), abe::serialize(*grp_, uk).size());

    // ---- Phase 2: Data Re-encryption ---------------------------------
    const std::vector<abe::UpdateInfo> infos = data_owner.update_infos(aid, from_version);
    if (infos.empty()) continue;
    size_t bytes = abe::serialize(*grp_, uk).size();
    for (const abe::UpdateInfo& ui : infos) bytes += abe::serialize(*grp_, ui).size();
    meter_.record(owner_name(owner_id), kServer, bytes);
    reencrypted += server_.reencrypt(uk, infos);
  }
  return reencrypted;
}

AttributeAuthority& CloudSystem::authority(const std::string& aid) {
  const auto it = authorities_.find(aid);
  if (it == authorities_.end())
    throw SchemeError("CloudSystem: unknown authority '" + aid + "'");
  return it->second;
}

DataOwner& CloudSystem::owner(const std::string& owner_id) {
  const auto it = owners_.find(owner_id);
  if (it == owners_.end())
    throw SchemeError("CloudSystem: unknown owner '" + owner_id + "'");
  return it->second;
}

Consumer& CloudSystem::user(const std::string& uid) {
  const auto it = users_.find(uid);
  if (it == users_.end()) throw SchemeError("CloudSystem: unknown user '" + uid + "'");
  return it->second;
}

CloudSystem::StorageReport CloudSystem::storage_report() const {
  StorageReport report;
  // AA: just the version key (one exponent) — the paper's Table III
  // headline advantage over Lewko's 2*n_k exponents.
  for (const auto& [aid, aa] : authorities_) {
    report.per_entity["aa:" + aid] = grp_->zr_size();
  }
  for (const auto& [owner_id, data_owner] : owners_) {
    // MK_o (two exponents) + cached authority/attribute public keys.
    size_t bytes = 2 * grp_->zr_size();
    // Count cached keys by re-deriving their serialized sizes.
    // (The owner caches one AuthorityPublicKey per AA and one
    // PublicAttributeKey per attribute.)
    for (const auto& [aid, aa] : authorities_) {
      bytes += grp_->gt_size();
      bytes += aa.attribute_public_keys().size() * grp_->g1_size();
    }
    report.per_entity["owner:" + owner_id] = bytes;
  }
  for (const auto& [uid, consumer] : users_) {
    report.per_entity["user:" + uid] = consumer.key_storage_bytes();
  }
  report.per_entity["server"] = server_.storage_bytes();
  return report;
}

}  // namespace maabe::cloud
