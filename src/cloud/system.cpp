#include "cloud/system.h"

#include "abe/serial.h"
#include "common/errors.h"
#include "telemetry/trace.h"

namespace maabe::cloud {

namespace {

std::string aa_name(const std::string& aid) { return "aa:" + aid; }
std::string owner_name(const std::string& id) { return "owner:" + id; }
std::string user_name(const std::string& uid) { return "user:" + uid; }
constexpr const char* kCa = "ca";

/// Queued work that does NOT gate reads: replication fan-out,
/// read-repair and epoch aborts only ever rewrite a replica toward the
/// state a quorum already serves, so a stale copy behind one of these
/// can never open under a revoked key. Everything else (uploads,
/// revocation epochs, 2PC commits) fails reads closed.
bool benign_for_reads(const std::string& label) {
  return label.starts_with("replicate ") || label.starts_with("read-repair ") ||
         label.starts_with("epoch abort");
}

bool is_replication_label(const std::string& label) {
  return label.starts_with("replicate ") || label.starts_with("read-repair ");
}

}  // namespace

CloudSystem::CloudSystem(std::shared_ptr<const pairing::Group> grp,
                         const std::string& seed)
    : CloudSystem(std::move(grp), seed, std::make_unique<LoopbackTransport>()) {}

CloudSystem::CloudSystem(std::shared_ptr<const pairing::Group> grp,
                         const std::string& seed, std::unique_ptr<Transport> transport,
                         RetryPolicy retry, ClusterConfig cluster)
    : grp_(std::move(grp)),
      rng_(std::string_view(seed)),
      ca_(grp_, crypto::Drbg(std::string_view(seed + "/ca"))),
      transport_(std::move(transport)),
      link_(*transport_, retry),
      durable_(link_),
      cluster_(grp_, cluster, link_, durable_) {
  // Snapshot-time gauges for state that lives in structured stats
  // rather than registry counters. add_gauge sums, so several systems
  // in one process contribute naturally. The token (last member) is
  // destroyed first, and reset() blocks on any in-flight collect(), so
  // the callback never reads a dying system.
  collector_ = telemetry::MetricsRegistry::global().register_collector(
      [this](telemetry::Snapshot& snap) {
        snap.add_gauge("maabe_system_pending_deliveries",
                       static_cast<int64_t>(durable_.pending_count()));
        snap.add_gauge("maabe_system_sends_ok",
                       static_cast<int64_t>(link_.sends_ok()));
        snap.add_gauge("maabe_system_sends_failed",
                       static_cast<int64_t>(link_.sends_failed()));
        snap.add_gauge("maabe_system_retries",
                       static_cast<int64_t>(link_.retries()));
        snap.add_gauge("maabe_system_applied_requests",
                       static_cast<int64_t>(link_.applied_requests()));
        const ChannelStats t = transport_->meter().totals();
        snap.add_gauge("maabe_system_channel_payload_bytes",
                       static_cast<int64_t>(t.payload_bytes));
        snap.add_gauge("maabe_system_channel_frame_bytes",
                       static_cast<int64_t>(t.frame_bytes));
        snap.add_gauge("maabe_system_channel_bytes_delivered",
                       static_cast<int64_t>(t.bytes_delivered));
        snap.add_gauge("maabe_system_channel_bytes_accepted",
                       static_cast<int64_t>(t.bytes_accepted));
        const ClusterStats cs = cluster_.stats();
        snap.add_gauge("maabe_system_server_files",
                       static_cast<int64_t>(cs.store_totals.files));
        snap.add_gauge("maabe_system_server_bytes",
                       static_cast<int64_t>(cs.store_totals.bytes));
        snap.add_gauge("maabe_cluster_nodes_alive", static_cast<int64_t>(cs.alive));
        snap.add_gauge("maabe_cluster_replication_lag",
                       static_cast<int64_t>(replication_lag()));
        snap.add_gauge("maabe_recovery_hints_pending",
                       static_cast<int64_t>(cluster_.recovery().pending_hints()));
      });
}

crypto::Drbg CloudSystem::fork_rng(const std::string& label) {
  crypto::Drbg fork(rng_.bytes(48));
  fork.reseed(bytes_of(label));
  return fork;
}

// ---------------------------------------------------- reliable sends --

void CloudSystem::send_reliable(const std::string& from, const std::string& to,
                                ByteView payload, const Apply& apply) {
  link_.send(from, to, payload, apply);
}

bool CloudSystem::send_or_park(const std::string& from, const std::string& to,
                               Bytes payload, Apply apply, const std::string& label) {
  return durable_.send_or_park(from, to, std::move(payload), std::move(apply), label);
}

size_t CloudSystem::flush_pending() { return durable_.flush_all(); }

CloudSystem::Health CloudSystem::health() const {
  Health h;
  h.transport = transport_->meter().totals();
  h.sends_ok = link_.sends_ok();
  h.sends_failed = link_.sends_failed();
  h.retries = link_.retries();
  h.applied_requests = link_.applied_requests();
  h.pending_by_destination = durable_.pending_by_destination();
  for (const auto& [to, n] : h.pending_by_destination) h.pending_deliveries += n;
  h.virtual_ms = transport_->now_ms();
  return h;
}

NodeHealth CloudSystem::health(const std::string& node_id) const {
  NodeHealth h = cluster_.node_health(node_id);
  h.pending_in = durable_.pending_for(node_id);
  for (const std::string& label : durable_.pending_labels(node_id)) {
    if (is_replication_label(label)) ++h.replication_lag;
  }
  for (const auto& [channel, stats] : transport_->meter().entries()) {
    if (channel.second == node_id) h.transport_in += stats;
    if (channel.first == node_id) h.transport_out += stats;
  }
  return h;
}

std::vector<NodeHealth> CloudSystem::cluster_health() const {
  std::vector<NodeHealth> out;
  out.reserve(cluster_.size());
  for (const std::string& name : cluster_.node_names()) out.push_back(health(name));
  return out;
}

uint64_t CloudSystem::replication_lag() const {
  uint64_t lag = 0;
  for (const std::string& name : cluster_.node_names()) {
    for (const std::string& label : durable_.pending_labels(name)) {
      if (is_replication_label(label)) ++lag;
    }
  }
  return lag;
}

telemetry::Snapshot CloudSystem::telemetry_snapshot() const {
  return telemetry::MetricsRegistry::global().collect();
}

namespace {

void status_escape_to(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

std::string status_str(std::string_view s) {
  std::string out = "\"";
  status_escape_to(out, s);
  out += "\"";
  return out;
}

}  // namespace

std::string CloudSystem::status_json() const {
  const ClusterStats cs = cluster_.stats();
  const Health h = health();
  std::string out = "{";
  out += "\"cluster\":{";
  out += "\"nodes\":" + std::to_string(cs.nodes);
  out += ",\"alive\":" + std::to_string(cs.alive);
  out += ",\"replication\":" + std::to_string(cs.replication);
  out += ",\"coordinator\":" + status_str(cluster_.coordinator());
  out += "}";
  out += ",\"replication_lag\":" + std::to_string(replication_lag());
  out += ",\"pending_deliveries\":" + std::to_string(h.pending_deliveries);
  out += ",\"pending_by_destination\":{";
  bool first = true;
  for (const auto& [to, n] : h.pending_by_destination) {
    if (!first) out += ",";
    first = false;
    out += status_str(to) + ":" + std::to_string(n);
  }
  out += "}";
  out += ",\"link\":{";
  out += "\"sends_ok\":" + std::to_string(h.sends_ok);
  out += ",\"sends_failed\":" + std::to_string(h.sends_failed);
  out += ",\"retries\":" + std::to_string(h.retries);
  out += ",\"parked_rejected\":" + std::to_string(parked_rejected_total());
  out += ",\"parked_pruned\":" + std::to_string(parked_pruned_total());
  out += "}";
  uint64_t staged_total = 0;
  out += ",\"nodes\":[";
  first = true;
  for (const NodeHealth& nh : cluster_health()) {
    if (!first) out += ",";
    first = false;
    staged_total += nh.epochs_staged_open;
    out += "{";
    out += "\"node\":" + status_str(nh.node);
    out += ",\"alive\":" + std::string(nh.alive ? "true" : "false");
    out += ",\"files\":" + std::to_string(nh.store.files);
    out += ",\"bytes\":" + std::to_string(nh.store.bytes);
    out += ",\"epochs_committed\":" + std::to_string(nh.epochs_committed);
    out += ",\"epochs_aborted\":" + std::to_string(nh.epochs_aborted);
    out += ",\"epochs_staged_open\":" + std::to_string(nh.epochs_staged_open);
    out += ",\"pending_in\":" + std::to_string(nh.pending_in);
    out += ",\"replication_lag\":" + std::to_string(nh.replication_lag);
    out += "}";
  }
  out += "]";
  out += ",\"staged_epochs\":" + std::to_string(staged_total);
  // The SLO plane exports maabe_slo_<name>_{met,burn_short_x1000,
  // burn_long_x1000,samples} gauges (slo.h); fold them back into
  // per-objective sub-objects so burn rates ride the same document.
  out += ",\"slo\":{";
  const telemetry::Snapshot snap = telemetry_snapshot();
  static constexpr std::string_view kSloPrefix = "maabe_slo_";
  static constexpr std::string_view kSuffixes[] = {
      "_met", "_burn_short_x1000", "_burn_long_x1000", "_samples"};
  std::map<std::string, std::map<std::string, int64_t>> slos;
  for (const auto& [name, value] : snap.gauges) {
    if (!name.starts_with(kSloPrefix)) continue;
    for (const std::string_view suffix : kSuffixes) {
      if (!name.ends_with(suffix)) continue;
      const std::string objective =
          name.substr(kSloPrefix.size(),
                      name.size() - kSloPrefix.size() - suffix.size());
      if (!objective.empty()) slos[objective][std::string(suffix.substr(1))] = value;
      break;
    }
  }
  first = true;
  for (const auto& [objective, fields] : slos) {
    if (!first) out += ",";
    first = false;
    out += status_str(objective) + ":{";
    bool f2 = true;
    for (const auto& [k, v] : fields) {
      if (!f2) out += ",";
      f2 = false;
      out += status_str(k) + ":" + std::to_string(v);
    }
    out += "}";
  }
  out += "}}";
  return out;
}

// -------------------------------------------------------- enrollment --

AttributeAuthority& CloudSystem::add_authority(const std::string& aid,
                                               const std::set<std::string>& attributes) {
  telemetry::Span span = telemetry::Tracer::global().start_span("system.add_authority");
  if (span.active()) span.attr("aid", aid);
  if (authorities_.contains(aid))
    throw SchemeError("CloudSystem: authority '" + aid + "' already exists");
  // Idempotent against a retried call whose AID-assignment frame was
  // lost: the CA registration may already exist.
  if (!ca_.has_authority(aid)) ca_.register_authority(aid);
  // AID assignment: the authority comes alive only when the CA's
  // notification actually arrives.
  send_reliable(kCa, aa_name(aid), bytes_of(aid), [&](ByteView payload) {
    const std::string assigned(payload.begin(), payload.end());
    auto [it, inserted] = authorities_.emplace(
        assigned, AttributeAuthority(grp_, assigned, fork_rng("aa/" + assigned)));
    for (const std::string& name : attributes) it->second.define_attribute(name);
  });
  // Late-joining authorities still need every existing owner's SK_o.
  // Shares park if the authority is unreachable and replay later.
  for (auto& [owner_id, owner] : owners_) {
    send_or_park(owner_name(owner_id), aa_name(aid),
                 abe::serialize(*grp_, owner.share()),
                 [this, aid](ByteView payload) {
                   authorities_.at(aid).accept_owner_share(
                       abe::deserialize_owner_secret_share(*grp_, payload));
                 },
                 "owner share");
  }
  return authorities_.at(aid);
}

Consumer& CloudSystem::add_user(const std::string& uid) {
  telemetry::Span span = telemetry::Tracer::global().start_span("system.add_user");
  if (span.active()) span.attr("uid", uid);
  if (users_.contains(uid)) throw SchemeError("CloudSystem: user '" + uid + "' already exists");
  const abe::UserPublicKey& pk =
      ca_.has_user(uid) ? ca_.user_public_key(uid) : ca_.register_user(uid);
  send_reliable(kCa, user_name(uid), abe::serialize(*grp_, pk), [&](ByteView payload) {
    users_.emplace(uid,
                   Consumer(grp_, abe::deserialize_user_public_key(*grp_, payload)));
  });
  return users_.at(uid);
}

DataOwner& CloudSystem::add_owner(const std::string& owner_id) {
  telemetry::Span span = telemetry::Tracer::global().start_span("system.add_owner");
  if (span.active()) span.attr("owner", owner_id);
  if (owners_.contains(owner_id))
    throw SchemeError("CloudSystem: owner '" + owner_id + "' already exists");
  auto [it, inserted] =
      owners_.emplace(owner_id, DataOwner(grp_, owner_id, fork_rng("owner/" + owner_id)));
  // SK_o goes to every authority over a secure channel; undeliverable
  // shares park (the authority cannot issue keys for this owner until
  // its share arrives — a typed SchemeError, not silent success).
  const Bytes share_bytes = abe::serialize(*grp_, it->second.share());
  for (auto& [aid, aa] : authorities_) {
    send_or_park(owner_name(owner_id), aa_name(aid), share_bytes,
                 [this, aid](ByteView payload) {
                   authorities_.at(aid).accept_owner_share(
                       abe::deserialize_owner_secret_share(*grp_, payload));
                 },
                 "owner share");
  }
  return it->second;
}

// ------------------------------------------------- attribute & keys --

void CloudSystem::assign_attributes(const std::string& aid, const std::string& uid,
                                    const std::set<std::string>& attributes) {
  if (!users_.contains(uid)) throw SchemeError("CloudSystem: unknown user '" + uid + "'");
  AttributeAuthority& aa = authority(aid);
  Writer w;
  w.str(uid);
  w.u32(static_cast<uint32_t>(attributes.size()));
  for (const std::string& name : attributes) w.str(name);
  send_reliable(kCa, aa_name(aid), w.bytes(), [&](ByteView payload) {
    Reader r(payload);
    const std::string target = r.str();
    std::set<std::string> names;
    const uint32_t n = r.u32();
    for (uint32_t i = 0; i < n; ++i) names.insert(r.str());
    r.expect_done();
    aa.assign(target, names);
  });
}

void CloudSystem::issue_user_key(const std::string& aid, const std::string& uid,
                                 const std::string& owner_id) {
  telemetry::Span span = telemetry::Tracer::global().start_span("system.issue_user_key");
  if (span.active()) {
    span.attr("aid", aid);
    span.attr("uid", uid);
    span.attr("owner", owner_id);
  }
  AttributeAuthority& aa = authority(aid);
  Consumer& consumer = user(uid);
  const abe::UserSecretKey sk = aa.issue_key(consumer.public_key(), owner_id);
  send_reliable(aa_name(aid), user_name(uid), abe::serialize(*grp_, sk),
                [&](ByteView payload) {
                  consumer.add_key(abe::deserialize_user_secret_key(*grp_, payload));
                });
}

void CloudSystem::publish_authority_keys(const std::string& aid,
                                         const std::string& owner_id) {
  AttributeAuthority& aa = authority(aid);
  DataOwner& data_owner = owner(owner_id);
  Writer w;
  w.var_bytes(abe::serialize(*grp_, aa.public_key()));
  const auto attr_pks = aa.attribute_public_keys();
  w.u32(static_cast<uint32_t>(attr_pks.size()));
  for (const auto& [handle, pk] : attr_pks) w.var_bytes(abe::serialize(*grp_, pk));
  send_reliable(aa_name(aid), owner_name(owner_id), w.bytes(), [&](ByteView payload) {
    Reader r(payload);
    data_owner.learn_authority_key(
        abe::deserialize_authority_public_key(*grp_, r.var_bytes()));
    const uint32_t n = r.u32();
    for (uint32_t i = 0; i < n; ++i) {
      data_owner.learn_attribute_key(
          abe::deserialize_public_attribute_key(*grp_, r.var_bytes()));
    }
    r.expect_done();
  });
}

// --------------------------------------------------------- data path --

void CloudSystem::upload(const std::string& owner_id, const std::string& file_id,
                         const std::vector<DataComponent>& components) {
  telemetry::Span span = telemetry::Tracer::global().start_span("system.upload");
  if (span.active()) {
    span.attr("owner", owner_id);
    span.attr("file_id", file_id);
  }
  DataOwner& data_owner = owner(owner_id);
  StoredFile file = data_owner.protect(file_id, components);
  // Route to the file's coordinator; the node stores its copy and fans
  // replication ops to the other replicas from inside the apply.
  const std::string target = cluster_.route_for(file_id);
  send_or_park(owner_name(owner_id), target, serialize(*grp_, file),
               [this, target](ByteView payload) {
                 cluster_.handle_store(target, payload);
               },
               "upload " + file_id);
}

std::map<std::string, Bytes> CloudSystem::DownloadReport::opened() const {
  std::map<std::string, Bytes> out;
  for (const SlotReport& slot : slots) {
    if (slot.state == SlotState::kOk) out.emplace(slot.component, slot.plaintext);
  }
  return out;
}

bool CloudSystem::DownloadReport::all_ok() const {
  for (const SlotReport& slot : slots) {
    if (slot.state != SlotState::kOk) return false;
  }
  return true;
}

bool CloudSystem::DownloadReport::any_corrupt() const {
  for (const SlotReport& slot : slots) {
    if (slot.state == SlotState::kCorrupt) return true;
  }
  return false;
}

CloudSystem::DownloadReport CloudSystem::download_report(const std::string& uid,
                                                         const std::string& file_id) {
  telemetry::Span span = telemetry::Tracer::global().start_span("system.download");
  if (span.active()) {
    span.attr("uid", uid);
    span.attr("file_id", file_id);
  }
  Consumer& consumer = user(uid);
  // Fail closed: never serve reads while revocation epochs (or earlier
  // uploads) are parked for any node — a stale ciphertext could still
  // open under a revoked key. Benign replica maintenance (replication
  // fan-out, read-repair, epoch aborts) does not gate reads: it only
  // rewrites a replica toward state a quorum already serves.
  for (const std::string& name : cluster_.node_names()) durable_.flush_queue(name);
  for (const std::string& name : cluster_.node_names()) {
    const std::vector<std::string> labels = durable_.pending_labels(name);
    bool blocking = false;
    for (const std::string& label : labels) {
      if (!benign_for_reads(label)) {
        blocking = true;
        break;
      }
    }
    if (blocking) {
      throw TransportError(
          TransportError::Kind::kDegraded,
          "CloudSystem: " + name + " has " + std::to_string(labels.size()) +
              " pending deliveries; refusing download of '" + file_id + "'");
    }
  }
  // Best effort: deliver any parked key material for this user first so
  // it can open everything it is entitled to.
  durable_.flush_queue(user_name(uid));

  // Request leg: the user asks the file's coordinator for it by id; the
  // coordinator answers with a quorum read (+ read-repair). Failures
  // out of the fetch (quorum not met, unknown file) are protocol
  // errors, not transport errors — captured so the link does not retry
  // an already-applied request.
  const std::string coord = cluster_.route_for(file_id);
  Bytes wire;
  std::exception_ptr fetch_error;
  send_reliable(user_name(uid), coord, bytes_of(file_id), [&](ByteView payload) {
    try {
      wire = cluster_.handle_fetch(coord, std::string(payload.begin(), payload.end()));
    } catch (const Error&) {
      fetch_error = std::current_exception();
    }
  });
  if (fetch_error) std::rethrow_exception(fetch_error);

  // Response leg: the file travels back as bytes, serialized once — the
  // transport meters the actual frame, there is no second serialization.
  DownloadReport report;
  report.file_id = file_id;
  send_reliable(coord, user_name(uid), wire, [&](ByteView payload) {
    const StoredFile file = deserialize_stored_file(*grp_, payload);
    report.slots.clear();  // redundant on dedup'd applies, cheap insurance
    for (const SealedSlot& slot : file.slots) {
      SlotReport sr;
      sr.component = slot.component_name;
      if (!consumer.can_open(slot)) {
        sr.state = SlotState::kNoKey;
        sr.detail = "no usable key (authority unreachable, attributes "
                    "insufficient, or key version stale)";
      } else {
        try {
          sr.plaintext = consumer.open_slot(file, slot);
          sr.state = SlotState::kOk;
        } catch (const CryptoError& e) {
          sr.state = SlotState::kCorrupt;
          sr.detail = e.what();
        } catch (const Error& e) {
          sr.state = SlotState::kError;
          sr.detail = e.what();
        }
      }
      report.slots.push_back(std::move(sr));
    }
  });
  return report;
}

std::map<std::string, Bytes> CloudSystem::download(const std::string& uid,
                                                   const std::string& file_id) {
  const DownloadReport report = download_report(uid, file_id);
  for (const SlotReport& slot : report.slots) {
    if (slot.state == SlotState::kCorrupt)
      throw CryptoError("CloudSystem: slot '" + slot.component + "' of '" + file_id +
                        "': " + slot.detail);
    if (slot.state == SlotState::kError)
      throw SchemeError("CloudSystem: slot '" + slot.component + "' of '" + file_id +
                        "': " + slot.detail);
  }
  return report.opened();
}

// -------------------------------------------------------- revocation --

size_t CloudSystem::revoke_attribute(const std::string& aid, const std::string& uid,
                                     const std::string& attribute) {
  telemetry::Span span =
      telemetry::Tracer::global().start_span("system.revoke_attribute");
  if (span.active()) {
    span.attr("aid", aid);
    span.attr("uid", uid);
    span.attr("attribute", attribute);
  }
  AttributeAuthority& aa = authority(aid);
  Consumer& revoked = user(uid);
  const uint32_t from_version = aa.version();
  // ---- Phase 1: Key Update (AA side) ----------------------------------
  const AttributeAuthority::RevocationBundle bundle =
      aa.revoke(revoked.public_key(), attribute);
  return distribute_revocation(aid, uid, from_version, bundle);
}

size_t CloudSystem::revoke_user(const std::string& aid, const std::string& uid) {
  telemetry::Span span = telemetry::Tracer::global().start_span("system.revoke_user");
  if (span.active()) {
    span.attr("aid", aid);
    span.attr("uid", uid);
  }
  AttributeAuthority& aa = authority(aid);
  Consumer& revoked = user(uid);
  const uint32_t from_version = aa.version();
  const AttributeAuthority::RevocationBundle bundle =
      aa.revoke_all(revoked.public_key());
  return distribute_revocation(aid, uid, from_version, bundle);
}

size_t CloudSystem::distribute_revocation(
    const std::string& aid, const std::string& uid, uint32_t from_version,
    const AttributeAuthority::RevocationBundle& bundle) {
  Consumer& revoked = user(uid);
  const uint64_t slots_before = cluster_.total_reencrypted_slots();

  // 1) Fresh (reduced) secret keys to the revoked user — only for owners
  //    whose data the user actually holds keys for. Undeliverable keys
  //    park; until they land the user still fails closed, because the
  //    server-side epoch (step 3) version-locks the old key out.
  for (const auto& [owner_id, sk] : bundle.regenerated_keys) {
    if (!revoked.has_key(owner_id, aid)) continue;
    send_or_park(aa_name(aid), user_name(uid), abe::serialize(*grp_, sk),
                 [this, uid](ByteView payload) {
                   users_.at(uid).replace_key(
                       abe::deserialize_user_secret_key(*grp_, payload));
                 },
                 "regenerated key");
  }

  // 2) Update keys to every other user holding keys from this AA.
  //    Applied exactly once per request id — a duplicated frame must not
  //    fold UK2 into the key twice.
  for (auto& [other_uid, consumer] : users_) {
    if (other_uid == uid) continue;
    for (const auto& [owner_id, uk] : bundle.update_keys) {
      if (!consumer.has_key(owner_id, aid)) continue;
      send_or_park(aa_name(aid), user_name(other_uid), abe::serialize(*grp_, uk),
                   [this, other = other_uid](ByteView payload) {
                     users_.at(other).apply_update(
                         abe::deserialize_update_key(*grp_, payload));
                   },
                   "update key");
    }
  }

  // 3) Update keys to every owner; each owner refreshes its cached
  //    public keys, emits UpdateInfo for affected ciphertexts and ships
  //    {UK, UpdateInfo*} to the epoch coordinator as one epoch message.
  //    Both hops park-and-replay, so an epoch that cannot reach the
  //    cluster is applied (in version order) before any later read. On
  //    a multi-node cluster the coordinator runs the epoch as a 2PC
  //    across every node (DESIGN.md §13); an aborted 2PC rethrows, so
  //    the epoch message itself stays parked and replays.
  for (auto& [owner_id, data_owner] : owners_) {
    const auto uk_it = bundle.update_keys.find(owner_id);
    if (uk_it == bundle.update_keys.end()) continue;
    send_or_park(
        aa_name(aid), owner_name(owner_id), abe::serialize(*grp_, uk_it->second),
        [this, aid, from_version, owner_id](ByteView payload) {
          DataOwner& o = owners_.at(owner_id);
          const abe::UpdateKey uk = abe::deserialize_update_key(*grp_, payload);
          if (!o.apply_update(uk)) return;
          // ---- Phase 2: Data Re-encryption -----------------------------
          const std::vector<abe::UpdateInfo> infos = o.update_infos(aid, from_version);
          if (infos.empty()) return;
          Writer w;
          w.var_bytes(abe::serialize(*grp_, uk));
          w.u32(static_cast<uint32_t>(infos.size()));
          for (const abe::UpdateInfo& ui : infos) w.var_bytes(abe::serialize(*grp_, ui));
          const std::string target = cluster_.coordinator();
          send_or_park(owner_name(owner_id), target, w.take(),
                       [this, target](ByteView epoch) {
                         cluster_.handle_epoch(target, epoch);
                       },
                       "revocation epoch v" + std::to_string(from_version + 1));
        },
        "owner update key");
  }
  return static_cast<size_t>(cluster_.total_reencrypted_slots() - slots_before);
}

// ------------------------------------------------------ introspection --

AttributeAuthority& CloudSystem::authority(const std::string& aid) {
  const auto it = authorities_.find(aid);
  if (it == authorities_.end())
    throw SchemeError("CloudSystem: unknown authority '" + aid + "'");
  return it->second;
}

DataOwner& CloudSystem::owner(const std::string& owner_id) {
  const auto it = owners_.find(owner_id);
  if (it == owners_.end())
    throw SchemeError("CloudSystem: unknown owner '" + owner_id + "'");
  return it->second;
}

Consumer& CloudSystem::user(const std::string& uid) {
  const auto it = users_.find(uid);
  if (it == users_.end()) throw SchemeError("CloudSystem: unknown user '" + uid + "'");
  return it->second;
}

CloudSystem::StorageReport CloudSystem::storage_report() const {
  StorageReport report;
  // AA: just the version key (one exponent) — the paper's Table III
  // headline advantage over Lewko's 2*n_k exponents.
  for (const auto& [aid, aa] : authorities_) {
    report.per_entity["aa:" + aid] = grp_->zr_size();
  }
  for (const auto& [owner_id, data_owner] : owners_) {
    // MK_o (two exponents) + cached authority/attribute public keys.
    size_t bytes = 2 * grp_->zr_size();
    // Count cached keys by re-deriving their serialized sizes.
    // (The owner caches one AuthorityPublicKey per AA and one
    // PublicAttributeKey per attribute.)
    for (const auto& [aid, aa] : authorities_) {
      bytes += grp_->gt_size();
      bytes += aa.attribute_public_keys().size() * grp_->g1_size();
    }
    report.per_entity["owner:" + owner_id] = bytes;
  }
  for (const auto& [uid, consumer] : users_) {
    report.per_entity["user:" + uid] = consumer.key_storage_bytes();
  }
  // One row per node: "server" on a single-node cluster (the legacy
  // layout), "node:<i>" rows on a multi-node one.
  for (const std::string& name : cluster_.node_names()) {
    report.per_entity[name] = cluster_.node_store(name).storage_bytes();
  }
  return report;
}

}  // namespace maabe::cloud
