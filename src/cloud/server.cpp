#include "cloud/server.h"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "abe/serial.h"
#include "common/errors.h"
#include "engine/engine.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace maabe::cloud {

namespace {

/// Registry handles for the server's global counters. fetch() is the
/// shard-lookup hot path — a single sharded-atomic add, no extra locks.
struct ServerMetrics {
  telemetry::Counter& stores;
  telemetry::Counter& fetches;
  telemetry::Counter& reencrypted_slots;
  telemetry::Counter& epochs_committed;
  telemetry::Counter& epochs_aborted;
  telemetry::Histogram& epoch_ns;

  static ServerMetrics& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static ServerMetrics* m = new ServerMetrics{
        reg.counter("maabe_server_stores_total"),
        reg.counter("maabe_server_fetches_total"),
        reg.counter("maabe_server_reencrypted_slots_total"),
        reg.counter("maabe_server_epochs_committed_total"),
        reg.counter("maabe_server_epochs_aborted_total"),
        reg.histogram("maabe_server_epoch_ns"),
    };
    return *m;
  }
};

}  // namespace

ShardStats& ShardStats::operator+=(const ShardStats& o) {
  files += o.files;
  bytes += o.bytes;
  stores += o.stores;
  fetches += o.fetches;
  reencrypted_slots += o.reencrypted_slots;
  return *this;
}

ShardStats ServerStats::totals() const {
  ShardStats t;
  for (const ShardStats& s : shards) t += s;
  return t;
}

CloudServer::CloudServer(std::shared_ptr<const pairing::Group> grp, size_t shard_count)
    : grp_(std::move(grp)), shards_(shard_count == 0 ? 1 : shard_count) {}

size_t CloudServer::shard_of(const std::string& file_id) const {
  return std::hash<std::string>{}(file_id) % shards_.size();
}

void CloudServer::store(StoredFile file) {
  if (file.file_id.empty()) throw SchemeError("CloudServer: empty file id");
  if (file.owner_id.empty())
    throw SchemeError("CloudServer: file '" + file.file_id +
                      "' has empty owner id (would escape revocation)");
  const size_t bytes = serialize(*grp_, file).size();
  Shard& sh = shards_[shard_of(file.file_id)];
  auto snapshot = std::make_shared<const StoredFile>(std::move(file));
  std::unique_lock lk(sh.mu);
  Entry& entry = sh.files[snapshot->file_id];
  sh.bytes = sh.bytes - entry.bytes + bytes;
  entry = Entry{std::move(snapshot), bytes};
  ++sh.stores;
  ServerMetrics::get().stores.inc();
}

bool CloudServer::has_file(const std::string& file_id) const {
  const Shard& sh = shards_[shard_of(file_id)];
  std::shared_lock lk(sh.mu);
  return sh.files.contains(file_id);
}

std::shared_ptr<const StoredFile> CloudServer::fetch(const std::string& file_id) const {
  const Shard& sh = shards_[shard_of(file_id)];
  std::shared_lock lk(sh.mu);
  const auto it = sh.files.find(file_id);
  if (it == sh.files.end())
    throw SchemeError("CloudServer: no file '" + file_id + "'");
  sh.fetches.fetch_add(1, std::memory_order_relaxed);
  ServerMetrics::get().fetches.inc();
  return it->second.file;
}

std::vector<std::string> CloudServer::file_ids() const {
  std::vector<std::string> out;
  for (const Shard& sh : shards_) {
    std::shared_lock lk(sh.mu);
    for (const auto& [id, entry] : sh.files) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

CloudServer::StagedEpoch CloudServer::stage_impl(
    const abe::UpdateKey& uk, const std::vector<abe::UpdateInfo>& infos,
    const telemetry::SpanContext& slot_parent) {
  ServerMetrics& sm = ServerMetrics::get();
  // Index the update infos by ciphertext id. Two infos for the same
  // ciphertext are a protocol violation — applying an arbitrary one
  // would corrupt the slot, so fail loudly instead.
  std::map<std::string, const abe::UpdateInfo*> by_ct;
  for (const abe::UpdateInfo& ui : infos) {
    if (!by_ct.emplace(ui.ct_id, &ui).second)
      throw SchemeError("CloudServer: duplicate update info for ciphertext '" +
                        ui.ct_id + "'");
  }

  // ---- Stage: select affected files under shard read locks and deep-
  // copy them. All re-encryption below mutates only these private
  // copies, so any failure leaves the store byte-identical.
  StagedEpoch epoch;
  epoch.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  std::vector<StagedFile>& staged = epoch.files;
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::shared_lock lk(shards_[s].mu);
    for (const auto& [file_id, entry] : shards_[s].files) {
      const StoredFile& file = *entry.file;
      if (file.owner_id != uk.owner_id) continue;
      std::vector<size_t> slots;
      for (size_t i = 0; i < file.slots.size(); ++i) {
        const abe::Ciphertext& ct = file.slots[i].key_ct;
        const auto ver = ct.versions.find(uk.aid);
        if (ver == ct.versions.end() || ver->second != uk.from_version) continue;
        if (!by_ct.contains(ct.id))
          throw SchemeError("CloudServer: missing update info for ciphertext '" +
                            ct.id + "'");
        slots.push_back(i);
      }
      if (slots.empty()) continue;
      staged.push_back({s, entry.file, std::make_shared<StoredFile>(file),
                        std::move(slots)});
    }
  }
  if (staged.empty()) return epoch;

  // Flatten to per-slot work items and fan the proxy re-encryption (one
  // pairing + per-row point additions each) across the engine's pool.
  // Slots are independent; results don't depend on order.
  struct SlotRef {
    size_t file, slot;
  };
  std::vector<SlotRef> work;
  for (size_t f = 0; f < staged.size(); ++f) {
    for (size_t i : staged[f].slot_indices) work.push_back({f, i});
  }
  // Every slot pairs against the same UK1; build its pairing line table
  // once before fanning out so all slots take the precomputed path.
  engine::CryptoEngine::for_group(*grp_).warm_pair_precomp(uk.uk1);
  try {
    // Per-slot spans run on pool workers, so they parent on the caller's
    // captured context rather than thread-local propagation.
    engine::CryptoEngine::for_group(*grp_).parallel_for(
        work.size(), [&](size_t w) {
          abe::Ciphertext& ct =
              staged[work[w].file].staged->slots[work[w].slot].key_ct;
          telemetry::Span slot_span = telemetry::Tracer::global().start_child(
              "server.reencrypt_slot", slot_parent);
          if (slot_span.active()) {
            slot_span.attr("ct_id", ct.id);
            slot_span.attr("node_id", node_name_);
          }
          if (fault_hook_) fault_hook_(ct.id);
          abe::reencrypt(*grp_, &ct, uk, *by_ct.at(ct.id));
        });
  } catch (...) {
    // parallel_for rethrows the first failure and may abandon remaining
    // slots — both fine here: the staged copies are simply dropped.
    epochs_aborted_.fetch_add(1, std::memory_order_relaxed);
    sm.epochs_aborted.inc();
    throw;
  }
  return epoch;
}

size_t CloudServer::commit_impl(StagedEpoch& epoch,
                                std::vector<std::string>* committed_files) {
  ServerMetrics& sm = ServerMetrics::get();
  // Every slot succeeded; swap the snapshots in under the shard write
  // locks. A file replaced by a concurrent store() since staging keeps
  // the replacement (the epoch covered the files present at stage time).
  size_t committed = 0;
  for (StagedFile& sf : epoch.files) {
    Shard& sh = shards_[sf.shard];
    std::unique_lock lk(sh.mu);
    const auto it = sh.files.find(sf.staged->file_id);
    if (it == sh.files.end() || it->second.file != sf.original) continue;
    const size_t bytes = serialize(*grp_, *sf.staged).size();
    sh.bytes = sh.bytes - it->second.bytes + bytes;
    if (committed_files != nullptr) committed_files->push_back(sf.staged->file_id);
    it->second = Entry{std::move(sf.staged), bytes};
    sh.reencrypted_slots += sf.slot_indices.size();
    committed += sf.slot_indices.size();
  }
  epochs_committed_.fetch_add(1, std::memory_order_relaxed);
  sm.epochs_committed.inc();
  sm.reencrypted_slots.add(committed);
  sm.epoch_ns.observe(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count()) - epoch.start_ns);
  return committed;
}

size_t CloudServer::reencrypt(const abe::UpdateKey& uk,
                              const std::vector<abe::UpdateInfo>& infos) {
  telemetry::Span epoch_span =
      telemetry::Tracer::global().start_span("server.reencrypt_epoch");
  if (epoch_span.active()) {
    epoch_span.attr("aid", uk.aid);
    epoch_span.attr("owner", uk.owner_id);
    epoch_span.attr("from_version", static_cast<uint64_t>(uk.from_version));
    epoch_span.attr("node_id", node_name_);
  }
  StagedEpoch epoch;
  try {
    epoch = stage_impl(uk, infos, epoch_span.context());
  } catch (...) {
    if (epoch_span.active()) epoch_span.attr("outcome", "aborted");
    throw;
  }
  if (epoch.files.empty()) return 0;
  const size_t committed = commit_impl(epoch, nullptr);
  if (epoch_span.active()) {
    epoch_span.attr("slots", static_cast<uint64_t>(committed));
    epoch_span.attr("outcome", "committed");
  }
  return committed;
}

uint64_t CloudServer::stage_reencrypt(const abe::UpdateKey& uk,
                                      const std::vector<abe::UpdateInfo>& infos) {
  telemetry::Span stage_span =
      telemetry::Tracer::global().start_span("server.reencrypt_stage");
  if (stage_span.active()) {
    stage_span.attr("aid", uk.aid);
    stage_span.attr("owner", uk.owner_id);
    stage_span.attr("from_version", static_cast<uint64_t>(uk.from_version));
    stage_span.attr("node_id", node_name_);
  }
  StagedEpoch epoch = stage_impl(uk, infos, stage_span.context());
  if (epoch.files.empty()) {
    if (stage_span.active()) stage_span.attr("outcome", "empty");
    return 0;
  }
  if (stage_span.active()) {
    stage_span.attr("files", static_cast<uint64_t>(epoch.files.size()));
    stage_span.attr("outcome", "staged");
  }
  std::lock_guard<std::mutex> lock(staged_mu_);
  const uint64_t token = ++next_token_;
  staged_epochs_.emplace(token, std::move(epoch));
  return token;
}

size_t CloudServer::commit_reencrypt(uint64_t token,
                                     std::vector<std::string>* committed_files) {
  if (token == 0) return 0;
  StagedEpoch epoch;
  {
    std::lock_guard<std::mutex> lock(staged_mu_);
    const auto it = staged_epochs_.find(token);
    if (it == staged_epochs_.end())
      throw SchemeError("CloudServer: unknown staged epoch token " +
                        std::to_string(token));
    epoch = std::move(it->second);
    staged_epochs_.erase(it);
  }
  return commit_impl(epoch, committed_files);
}

void CloudServer::abort_reencrypt(uint64_t token) {
  if (token == 0) return;
  std::lock_guard<std::mutex> lock(staged_mu_);
  const auto it = staged_epochs_.find(token);
  if (it == staged_epochs_.end()) return;
  staged_epochs_.erase(it);
  epochs_aborted_.fetch_add(1, std::memory_order_relaxed);
  ServerMetrics::get().epochs_aborted.inc();
}

size_t CloudServer::abort_all_staged() {
  std::lock_guard<std::mutex> lock(staged_mu_);
  const size_t n = staged_epochs_.size();
  staged_epochs_.clear();
  epochs_aborted_.fetch_add(n, std::memory_order_relaxed);
  ServerMetrics::get().epochs_aborted.add(n);
  return n;
}

size_t CloudServer::storage_bytes() const {
  size_t total = 0;
  for (const Shard& sh : shards_) {
    std::shared_lock lk(sh.mu);
    total += sh.bytes;
  }
  return total;
}

size_t CloudServer::ciphertext_group_material_bytes() const {
  size_t total = 0;
  for (const Shard& sh : shards_) {
    std::shared_lock lk(sh.mu);
    for (const auto& [id, entry] : sh.files) {
      for (const SealedSlot& slot : entry.file->slots)
        total += abe::ciphertext_group_material_bytes(*grp_, slot.key_ct);
    }
  }
  return total;
}

ServerStats CloudServer::stats() const {
  ServerStats out;
  out.shards.reserve(shards_.size());
  for (const Shard& sh : shards_) {
    std::shared_lock lk(sh.mu);
    ShardStats s;
    s.files = sh.files.size();
    s.bytes = sh.bytes;
    s.stores = sh.stores;
    s.fetches = sh.fetches.load(std::memory_order_relaxed);
    s.reencrypted_slots = sh.reencrypted_slots;
    out.shards.push_back(s);
  }
  out.epochs_committed = epochs_committed_.load(std::memory_order_relaxed);
  out.epochs_aborted = epochs_aborted_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(staged_mu_);
    out.epochs_staged_open = staged_epochs_.size();
  }
  return out;
}

}  // namespace maabe::cloud
