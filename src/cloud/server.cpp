#include "cloud/server.h"

#include "abe/serial.h"
#include "common/errors.h"
#include "engine/engine.h"

namespace maabe::cloud {

void CloudServer::store(StoredFile file) {
  if (file.file_id.empty()) throw SchemeError("CloudServer: empty file id");
  files_.insert_or_assign(file.file_id, std::move(file));
}

const StoredFile& CloudServer::fetch(const std::string& file_id) const {
  const auto it = files_.find(file_id);
  if (it == files_.end()) throw SchemeError("CloudServer: no file '" + file_id + "'");
  return it->second;
}

std::vector<std::string> CloudServer::file_ids() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [id, file] : files_) out.push_back(id);
  return out;
}

size_t CloudServer::reencrypt(const abe::UpdateKey& uk,
                              const std::vector<abe::UpdateInfo>& infos) {
  // Index the update infos by ciphertext id.
  std::map<std::string, const abe::UpdateInfo*> by_ct;
  for (const abe::UpdateInfo& ui : infos) by_ct.emplace(ui.ct_id, &ui);

  // Serial pass: select and validate the affected slots in store order.
  struct Work {
    abe::Ciphertext* ct;
    const abe::UpdateInfo* ui;
  };
  std::vector<Work> work;
  for (auto& [file_id, file] : files_) {
    if (file.owner_id != uk.owner_id) continue;
    for (SealedSlot& slot : file.slots) {
      const auto ver = slot.key_ct.versions.find(uk.aid);
      if (ver == slot.key_ct.versions.end() || ver->second != uk.from_version) continue;
      const auto ui = by_ct.find(slot.key_ct.id);
      if (ui == by_ct.end())
        throw SchemeError("CloudServer: missing update info for ciphertext '" +
                          slot.key_ct.id + "'");
      work.push_back({&slot.key_ct, ui->second});
    }
  }

  // Parallel pass: ciphertexts are independent, so the proxy
  // re-encryption (one pairing + per-row point additions each) fans out
  // across the engine's pool. Per-slot results don't depend on order.
  engine::CryptoEngine::for_group(*grp_).parallel_for(
      work.size(),
      [&](size_t i) { abe::reencrypt(*grp_, work[i].ct, uk, *work[i].ui); });
  return work.size();
}

size_t CloudServer::storage_bytes() const {
  size_t total = 0;
  for (const auto& [id, file] : files_) total += serialize(*grp_, file).size();
  return total;
}

size_t CloudServer::ciphertext_group_material_bytes() const {
  size_t total = 0;
  for (const auto& [id, file] : files_) {
    for (const SealedSlot& slot : file.slots)
      total += abe::ciphertext_group_material_bytes(*grp_, slot.key_ct);
  }
  return total;
}

}  // namespace maabe::cloud
