// Byte accounting between entities.
//
// The framework layer (system.h) routes every serialized artefact
// through a ChannelMeter, which is how the communication-cost benchmark
// (paper Table IV) measures real wire bytes per channel, and how the
// storage benchmark (Table III) attributes at-rest bytes to entities.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace maabe::cloud {

class ChannelMeter {
 public:
  /// Records `bytes` sent from `from` to `to`.
  void record(const std::string& from, const std::string& to, size_t bytes);

  /// Directional total from -> to.
  size_t sent(const std::string& from, const std::string& to) const;

  /// Sum of both directions between two entities.
  size_t between(const std::string& a, const std::string& b) const;

  /// Everything sent or received by one entity.
  size_t involving(const std::string& entity) const;

  void reset();

  const std::map<std::pair<std::string, std::string>, size_t>& entries() const {
    return totals_;
  }

 private:
  std::map<std::pair<std::string, std::string>, size_t> totals_;
};

}  // namespace maabe::cloud
