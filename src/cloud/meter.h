// Byte and crypto-op accounting.
//
// The framework layer (system.h) routes every serialized artefact
// through a ChannelMeter, which is how the communication-cost benchmark
// (paper Table IV) measures real wire bytes per channel, and how the
// storage benchmark (Table III) attributes at-rest bytes to entities.
//
// OpMeter is the group-operation analogue: it attributes
// engine::CryptoEngine op counters (pairings, exponentiations) and batch
// wall time to named phases (Encrypt, Decrypt, ReEncrypt, ...), which is
// how the benches report ops-per-phase next to milliseconds.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "engine/engine.h"

namespace maabe::cloud {

/// Per-directed-channel counters. payload_bytes keeps the Table IV
/// semantics (application artefact bytes); everything else is transport
/// accounting: frames/frame_bytes count every transmission attempt
/// (including dropped and duplicated copies), the fault counters mirror
/// what the FaultPlan injected on the channel, retries counts sender
/// re-attempts after a TransportError, and redeliveries counts duplicate
/// copies suppressed by receiver-side request-id dedup.
struct ChannelStats {
  uint64_t payload_bytes = 0;  ///< artefact bytes handed to the transport
  uint64_t frame_bytes = 0;    ///< on-the-wire bytes incl. header + checksum
  uint64_t frames = 0;         ///< transmission attempts
  uint64_t deliveries = 0;     ///< frame copies that arrived intact
  uint64_t drops = 0;
  uint64_t duplicates = 0;
  uint64_t corruptions = 0;
  uint64_t ack_losses = 0;
  uint64_t delays = 0;
  uint64_t delay_ms = 0;          ///< total injected latency
  uint64_t script_failures = 0;   ///< fail_next() script hits
  uint64_t retries = 0;
  uint64_t redeliveries = 0;
  /// Payload bytes of every intact frame copy handed to the receiver —
  /// duplicate and redelivered copies count each time they arrive.
  uint64_t bytes_delivered = 0;
  /// Payload bytes the receiver actually APPLIED (goodput): request
  /// payloads that passed request-id dedup. Redelivered copies of an
  /// already-applied request count toward bytes_delivered but never
  /// toward bytes_accepted; on a fault-free channel the two are equal.
  uint64_t bytes_accepted = 0;

  uint64_t faults() const {
    return drops + duplicates + corruptions + ack_losses + delays + script_failures;
  }
  ChannelStats& operator+=(const ChannelStats& o);
};

/// Thread-safe: every accessor takes the meter mutex, so concurrent
/// senders and health()/telemetry readers see coherent per-channel
/// rows. The transport layer updates counters through apply(), whose
/// callback runs under the lock — it must be a handful of field
/// increments, never something that can re-enter the meter (delivery
/// sinks nest sends, so the transport is careful to call apply()
/// outside sink invocations).
class ChannelMeter {
 public:
  /// Records `bytes` of payload sent from `from` to `to`.
  void record(const std::string& from, const std::string& to, size_t bytes);

  /// Runs `fn(ChannelStats&)` for the directed channel under the meter
  /// lock — the transport layer's accounting hook (replaces the old
  /// unsynchronized mutable_stats()).
  template <typename Fn>
  void apply(const std::string& from, const std::string& to, Fn&& fn) {
    std::lock_guard<std::mutex> lock(mu_);
    fn(totals_[{from, to}]);
  }

  /// Directional payload total from -> to (Table IV numbers).
  size_t sent(const std::string& from, const std::string& to) const;

  /// Sum of both directions between two entities.
  size_t between(const std::string& a, const std::string& b) const;

  /// Everything sent or received by one entity.
  size_t involving(const std::string& entity) const;

  /// Full counters for one directed channel (zeroes if never used).
  ChannelStats stats(const std::string& from, const std::string& to) const;
  /// Aggregate over every channel.
  ChannelStats totals() const;

  void reset();

  /// Copy of every per-channel row (a snapshot, not a live reference).
  std::map<std::pair<std::string, std::string>, ChannelStats> entries() const;

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::string>, ChannelStats> totals_;
};

/// Accumulates engine-stat deltas per named phase.
class OpMeter {
 public:
  /// Snapshots the engine's counters on construction and records the
  /// delta into `meter` under `phase` on destruction.
  class Scope {
   public:
    Scope(OpMeter& meter, engine::CryptoEngine& eng, std::string phase)
        : meter_(meter), eng_(eng), phase_(std::move(phase)), start_(eng.stats()) {}
    ~Scope() { meter_.record(phase_, eng_.stats() - start_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    OpMeter& meter_;
    engine::CryptoEngine& eng_;
    std::string phase_;
    engine::EngineStats start_;
  };

  void record(const std::string& phase, const engine::EngineStats& delta);
  /// Zeroed stats if the phase was never recorded.
  engine::EngineStats phase(const std::string& name) const;
  const std::map<std::string, engine::EngineStats>& phases() const { return phases_; }
  void reset() { phases_.clear(); }

 private:
  std::map<std::string, engine::EngineStats> phases_;
};

}  // namespace maabe::cloud
