// Byte and crypto-op accounting.
//
// The framework layer (system.h) routes every serialized artefact
// through a ChannelMeter, which is how the communication-cost benchmark
// (paper Table IV) measures real wire bytes per channel, and how the
// storage benchmark (Table III) attributes at-rest bytes to entities.
//
// OpMeter is the group-operation analogue: it attributes
// engine::CryptoEngine op counters (pairings, exponentiations) and batch
// wall time to named phases (Encrypt, Decrypt, ReEncrypt, ...), which is
// how the benches report ops-per-phase next to milliseconds.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "engine/engine.h"

namespace maabe::cloud {

class ChannelMeter {
 public:
  /// Records `bytes` sent from `from` to `to`.
  void record(const std::string& from, const std::string& to, size_t bytes);

  /// Directional total from -> to.
  size_t sent(const std::string& from, const std::string& to) const;

  /// Sum of both directions between two entities.
  size_t between(const std::string& a, const std::string& b) const;

  /// Everything sent or received by one entity.
  size_t involving(const std::string& entity) const;

  void reset();

  const std::map<std::pair<std::string, std::string>, size_t>& entries() const {
    return totals_;
  }

 private:
  std::map<std::pair<std::string, std::string>, size_t> totals_;
};

/// Accumulates engine-stat deltas per named phase.
class OpMeter {
 public:
  /// Snapshots the engine's counters on construction and records the
  /// delta into `meter` under `phase` on destruction.
  class Scope {
   public:
    Scope(OpMeter& meter, engine::CryptoEngine& eng, std::string phase)
        : meter_(meter), eng_(eng), phase_(std::move(phase)), start_(eng.stats()) {}
    ~Scope() { meter_.record(phase_, eng_.stats() - start_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    OpMeter& meter_;
    engine::CryptoEngine& eng_;
    std::string phase_;
    engine::EngineStats start_;
  };

  void record(const std::string& phase, const engine::EngineStats& delta);
  /// Zeroed stats if the phase was never recorded.
  engine::EngineStats phase(const std::string& name) const;
  const std::map<std::string, engine::EngineStats>& phases() const { return phases_; }
  void reset() { phases_.clear(); }

 private:
  std::map<std::string, engine::EngineStats> phases_;
};

}  // namespace maabe::cloud
