// Self-healing recovery for the replicated Cluster (DESIGN.md §15).
//
// Three protocols, all speaking node-to-node over the same Transport the
// data plane uses (so the meter and fault injection see every byte):
//
//  * Merkle anti-entropy — each node's store state folds into a per-
//    shard hash tree over (file_id, version, content-hash of the bytes
//    it currently holds); `sync(a, b)` walks the two trees level by
//    level, root first, and transfers only the files under divergent
//    leaves. Hashing the *current* bytes (not the recorded write hash)
//    means silent bit-rot diverges the trees too, so sync survives
//    corrupt and missing replicas, replacing repair_all()'s O(files)
//    quorum fetches with O(divergence) transfers.
//
//  * Hinted hand-off — when a write sheds or parks for a dead replica,
//    the coordinator records a typed hint (target, file_id, version).
//    On rejoin the node drains its hints from every alive holder,
//    pulling exactly the files written while it was down.
//
//  * 2PC epoch resolution — every commit/abort verdict is recorded in a
//    per-node decision log that (unlike staged state) survives
//    kill_node. When a coordinator dies mid-epoch, any alive replica
//    resolves its staged epochs by querying peers for a decision:
//    any recorded commit wins, otherwise presumed abort. No epoch
//    stays staged-open forever.
//
// `rejoin(node)` (run by Cluster::restart_node) strings the three into
// one traced sequence: resolve staged epochs, drain hints, then a
// scoped anti-entropy round against each alive peer — byte-identical
// state without a full-store scan.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace maabe::cloud {

class Cluster;

/// Result of one pairwise anti-entropy session (initiator's view).
struct SyncReport {
  uint64_t rounds = 0;             ///< tree-level exchanges (root → leaves)
  uint64_t shards_divergent = 0;   ///< leaf shards whose digests differed
  uint64_t files_pushed = 0;       ///< initiator → peer transfers
  uint64_t files_pulled = 0;       ///< peer → initiator transfers
  uint64_t bytes_transferred = 0;  ///< file payload bytes moved either way

  bool converged_without_transfer() const {
    return files_pushed + files_pulled == 0;
  }
  SyncReport& operator+=(const SyncReport& o) {
    rounds += o.rounds;
    shards_divergent += o.shards_divergent;
    files_pushed += o.files_pushed;
    files_pulled += o.files_pulled;
    bytes_transferred += o.bytes_transferred;
    return *this;
  }
};

/// Monotonic counters (snapshot/subtract, ClusterStats style).
struct RecoveryStats {
  uint64_t hints_recorded = 0;
  uint64_t hints_replayed = 0;    ///< hinted files pulled and applied
  uint64_t hints_superseded = 0;  ///< cleared: local copy already as new
  uint64_t hints_dropped = 0;     ///< cleared: holder no longer had the file
  uint64_t syncs = 0;             ///< pairwise anti-entropy sessions
  uint64_t sync_rounds = 0;       ///< tree-level exchanges across sessions
  uint64_t shards_divergent = 0;
  uint64_t files_transferred = 0;
  uint64_t bytes_transferred = 0;
  uint64_t epochs_resolved_commit = 0;
  uint64_t epochs_resolved_abort = 0;
  uint64_t rejoins = 0;
  uint64_t sync_failures = 0;  ///< sessions/drains lost to transport faults
};

class RecoveryManager {
 public:
  // Both out of line: Session is incomplete here, and the sessions_ map
  // needs its complete type for (exception-path) destruction.
  explicit RecoveryManager(Cluster& cluster);
  ~RecoveryManager();

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  // ---- Merkle anti-entropy -------------------------------------------
  /// One pairwise session: `initiator` walks `peer`'s tree over the
  /// transport and converges the files both nodes replicate. Both nodes
  /// must be alive; throws TransportError(kLost) otherwise and lets
  /// in-flight transport faults propagate.
  SyncReport sync(const std::string& initiator, const std::string& peer);
  /// Every alive pair, tolerating per-pair transport failures (counted
  /// in stats().sync_failures). The operator-facing repair_all()
  /// replacement: O(divergence) transfers instead of O(files) reads.
  SyncReport sync_all();

  // ---- Hinted hand-off -----------------------------------------------
  /// Records at `holder` that `target` missed (file_id, version). Called
  /// by the write paths when a fan-out parks or sheds.
  void record_hint(const std::string& holder, const std::string& target,
                   const std::string& file_id, uint64_t version);
  /// Rejoining side: pull every hinted file from every alive holder and
  /// clear the served hints. Returns hints drained (replayed, superseded
  /// or dropped). Per-holder transport failures leave that holder's
  /// hints for a later drain.
  size_t drain_hints_for(const std::string& target);
  /// Hints currently held for `target`, across all holders.
  size_t hint_count(const std::string& target) const;
  /// All hints across all holders and targets.
  size_t pending_hints() const;

  // ---- 2PC epoch resolution ------------------------------------------
  /// Resolves every staged-open epoch on every alive node: query alive
  /// peers for a recorded decision — any commit wins, otherwise
  /// presumed abort. Skips epochs whose 2PC is still in flight. Returns
  /// the number of epochs resolved.
  size_t resolve_staged_epochs();

  // ---- Rejoin orchestration ------------------------------------------
  /// The restart_node recovery sequence, linked under one
  /// "recovery.rejoin" span: resolve staged epochs, drain this node's
  /// hints, scoped anti-entropy against each alive peer. No full-store
  /// scan and no quorum reads.
  void rejoin(const std::string& name);

  RecoveryStats stats() const;

 private:
  struct ShardLeaf;
  struct Session;

  /// Two transport legs (request then reply), like the quorum read, so
  /// the meter sees both directions.
  Bytes rpc(const std::string& from, const std::string& to, Bytes request);
  /// Responder dispatch for every recovery verb.
  Bytes serve(const std::string& self, ByteView request);

  std::vector<std::vector<ShardLeaf>> pair_listing(const std::string& owner,
                                                   const std::string& peer);
  static std::vector<std::vector<Bytes>> build_tree_levels(
      const std::vector<std::vector<ShardLeaf>>& listing);
  Session& session_for(const std::string& owner, const std::string& peer,
                       uint64_t sync_id);
  void push_file(const std::string& from, const std::string& to,
                 const ShardLeaf& leaf, SyncReport* rep);
  bool pull_file(const std::string& to, const std::string& from,
                 const std::string& file_id, uint64_t* bytes);
  void clear_hint(const std::string& target, const std::string& holder,
                  const std::string& file_id, uint64_t version);

  Cluster& cluster_;

  std::mutex mu_;  ///< guards sessions_
  std::map<std::string, std::unique_ptr<Session>> sessions_;  // responder → latest
  std::atomic<uint64_t> next_sync_id_{0};

  std::atomic<uint64_t> hints_recorded_{0};
  std::atomic<uint64_t> hints_replayed_{0};
  std::atomic<uint64_t> hints_superseded_{0};
  std::atomic<uint64_t> hints_dropped_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> sync_rounds_{0};
  std::atomic<uint64_t> shards_divergent_{0};
  std::atomic<uint64_t> files_transferred_{0};
  std::atomic<uint64_t> bytes_transferred_{0};
  std::atomic<uint64_t> epochs_resolved_commit_{0};
  std::atomic<uint64_t> epochs_resolved_abort_{0};
  std::atomic<uint64_t> rejoins_{0};
  std::atomic<uint64_t> sync_failures_{0};
};

}  // namespace maabe::cloud
