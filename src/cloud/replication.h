// Asynchronous replication plumbing for the cluster (DESIGN.md §13).
//
// Two pieces:
//
//  * Wire formats for the node-to-node protocol: ReplicationOp (a
//    versioned copy of a stored file, fanned out from the coordinator
//    of a write and replayed in version order) and FetchReply (one
//    replica's answer in a quorum read, carrying the version and
//    recorded content hash so the coordinator can detect stale or
//    corrupt copies).
//
//  * DurableLink: the per-destination write-ahead op queue. A send that
//    cannot reach its destination parks in FIFO order under its
//    original request id and replays head-first on the next flush, so
//    order is preserved per destination and a recovered node receives
//    exactly the ops it missed, in the order they were issued. This is
//    the park-and-replay machinery PR 3 built into CloudSystem,
//    extracted so the Cluster's replication fan-out and the system's
//    entity traffic share one implementation (and one health view).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "cloud/transport.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace maabe::cloud {

// ---------------------------------------------------- wire formats --

/// One versioned write as shipped between replicas. `wire` is the
/// serialized StoredFile; `hash` is SHA-256 over `wire`, recorded by
/// the coordinator so a replica (and later quorum reads) can tell a
/// faithful copy from a corrupted one.
struct ReplicationOp {
  std::string file_id;
  uint64_t version = 0;
  Bytes hash;
  Bytes wire;
};

Bytes encode_replication_op(const ReplicationOp& op);
ReplicationOp decode_replication_op(ByteView data);  ///< throws WireError

/// One replica's reply in a quorum read. `hash` is the hash recorded
/// when the copy was written; the coordinator recomputes SHA-256 over
/// `wire` and treats a mismatch as a corrupt replica.
struct FetchReply {
  bool found = false;
  uint64_t version = 0;
  Bytes hash;
  Bytes wire;
};

Bytes encode_fetch_reply(const FetchReply& r);
FetchReply decode_fetch_reply(ByteView data);  ///< throws WireError

// ----------------------------------------------------- DurableLink --

/// Default bound on a single destination's parked queue; see
/// DurableLink::set_pending_cap.
inline constexpr size_t kDefaultPendingCap = 4096;

/// Ordered durable sends over a ReliableLink: queues behind earlier
/// parked deliveries to the same destination, parks instead of throwing
/// on transport failure, and replays per-destination queues head-first.
///
/// Admission control: each destination's queue is bounded (default
/// kDefaultPendingCap ops). A send that would park behind a full queue
/// is rejected with TransportError(kOverloaded) and counted in
/// maabe_transport_parked_rejected_total — a sustained outage applies
/// backpressure to callers instead of growing memory without bound.
///
/// Thread-safety: all public methods lock the (recursive) queue mutex.
/// Recursive because a parked delivery's apply may nest another
/// send_or_park — a replayed revocation epoch fans its commit messages
/// out from inside its own apply.
class DurableLink {
 public:
  using Apply = ReliableLink::Apply;

  explicit DurableLink(ReliableLink& link);

  DurableLink(const DurableLink&) = delete;
  DurableLink& operator=(const DurableLink&) = delete;

  /// Caps every per-destination queue at `cap` parked ops (0 restores
  /// the default; there is deliberately no "unbounded" setting).
  void set_pending_cap(size_t cap);
  size_t pending_cap() const;

  /// Rejections (kOverloaded) since construction, mirrored into the
  /// process-wide maabe_transport_parked_rejected_total counter.
  uint64_t rejected_total() const;
  /// Ops dropped by prune_queue since construction, mirrored into
  /// maabe_transport_parked_pruned_total.
  uint64_t pruned_total() const;

  /// Flushes `to`'s queue first (order must be preserved), then either
  /// delivers now (returns true) or parks (returns false). The label is
  /// operator-facing: health views and read-gating classify queued work
  /// by label prefix. Throws TransportError(kOverloaded) when `to`'s
  /// queue is already at the cap.
  bool send_or_park(const std::string& from, const std::string& to, Bytes payload,
                    Apply apply, const std::string& label);

  /// Reconciliation hook for node restart: drops every parked op for
  /// `to` whose label the predicate rejects, preserving the relative
  /// order of survivors. Returns the number of ops dropped (also added
  /// to pruned_total). The predicate sees the op's label.
  size_t prune_queue(const std::string& to,
                     const std::function<bool(const std::string& label)>& drop);

  /// Replays `to`'s queue head-first; stops at the first transport
  /// failure so per-destination order is never violated.
  void flush_queue(const std::string& to);

  /// Flushes every queue; returns the number of deliveries still parked.
  size_t flush_all();

  size_t pending_count() const;
  size_t pending_for(const std::string& to) const;
  std::map<std::string, size_t> pending_by_destination() const;
  /// Labels of the deliveries parked for `to`, head first.
  std::vector<std::string> pending_labels(const std::string& to) const;

 private:
  struct Pending {
    uint64_t request_id = 0;
    std::string from;
    Bytes payload;
    Apply apply;
    std::string label;
    /// The sender's span context at park time. Replays run under it
    /// (ContextOverride), so a parked frame carries its ORIGINATING
    /// trace over the wire instead of whichever operation happened to
    /// trigger the flush; invalid when the original send was untraced.
    telemetry::SpanContext ctx;
  };

  ReliableLink& link_;
  mutable std::recursive_mutex mu_;
  std::map<std::string, std::deque<Pending>> pending_;  // keyed by destination
  size_t pending_cap_ = kDefaultPendingCap;
  uint64_t rejected_ = 0;
  uint64_t pruned_ = 0;
  telemetry::Counter& rejected_counter_;
  telemetry::Counter& pruned_counter_;
};

}  // namespace maabe::cloud
