// Asynchronous replication plumbing for the cluster (DESIGN.md §13).
//
// Two pieces:
//
//  * Wire formats for the node-to-node protocol: ReplicationOp (a
//    versioned copy of a stored file, fanned out from the coordinator
//    of a write and replayed in version order) and FetchReply (one
//    replica's answer in a quorum read, carrying the version and
//    recorded content hash so the coordinator can detect stale or
//    corrupt copies).
//
//  * DurableLink: the per-destination write-ahead op queue. A send that
//    cannot reach its destination parks in FIFO order under its
//    original request id and replays head-first on the next flush, so
//    order is preserved per destination and a recovered node receives
//    exactly the ops it missed, in the order they were issued. This is
//    the park-and-replay machinery PR 3 built into CloudSystem,
//    extracted so the Cluster's replication fan-out and the system's
//    entity traffic share one implementation (and one health view).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "cloud/transport.h"

namespace maabe::cloud {

// ---------------------------------------------------- wire formats --

/// One versioned write as shipped between replicas. `wire` is the
/// serialized StoredFile; `hash` is SHA-256 over `wire`, recorded by
/// the coordinator so a replica (and later quorum reads) can tell a
/// faithful copy from a corrupted one.
struct ReplicationOp {
  std::string file_id;
  uint64_t version = 0;
  Bytes hash;
  Bytes wire;
};

Bytes encode_replication_op(const ReplicationOp& op);
ReplicationOp decode_replication_op(ByteView data);  ///< throws WireError

/// One replica's reply in a quorum read. `hash` is the hash recorded
/// when the copy was written; the coordinator recomputes SHA-256 over
/// `wire` and treats a mismatch as a corrupt replica.
struct FetchReply {
  bool found = false;
  uint64_t version = 0;
  Bytes hash;
  Bytes wire;
};

Bytes encode_fetch_reply(const FetchReply& r);
FetchReply decode_fetch_reply(ByteView data);  ///< throws WireError

// ----------------------------------------------------- DurableLink --

/// Ordered durable sends over a ReliableLink: queues behind earlier
/// parked deliveries to the same destination, parks instead of throwing
/// on transport failure, and replays per-destination queues head-first.
///
/// Thread-safety: all public methods lock the (recursive) queue mutex.
/// Recursive because a parked delivery's apply may nest another
/// send_or_park — a replayed revocation epoch fans its commit messages
/// out from inside its own apply.
class DurableLink {
 public:
  using Apply = ReliableLink::Apply;

  explicit DurableLink(ReliableLink& link) : link_(link) {}

  DurableLink(const DurableLink&) = delete;
  DurableLink& operator=(const DurableLink&) = delete;

  /// Flushes `to`'s queue first (order must be preserved), then either
  /// delivers now (returns true) or parks (returns false). The label is
  /// operator-facing: health views and read-gating classify queued work
  /// by label prefix.
  bool send_or_park(const std::string& from, const std::string& to, Bytes payload,
                    Apply apply, const std::string& label);

  /// Replays `to`'s queue head-first; stops at the first transport
  /// failure so per-destination order is never violated.
  void flush_queue(const std::string& to);

  /// Flushes every queue; returns the number of deliveries still parked.
  size_t flush_all();

  size_t pending_count() const;
  size_t pending_for(const std::string& to) const;
  std::map<std::string, size_t> pending_by_destination() const;
  /// Labels of the deliveries parked for `to`, head first.
  std::vector<std::string> pending_labels(const std::string& to) const;

 private:
  struct Pending {
    uint64_t request_id = 0;
    std::string from;
    Bytes payload;
    Apply apply;
    std::string label;
  };

  ReliableLink& link_;
  mutable std::recursive_mutex mu_;
  std::map<std::string, std::deque<Pending>> pending_;  // keyed by destination
};

}  // namespace maabe::cloud
