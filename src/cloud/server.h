// The honest-but-curious cloud server.
//
// Stores owners' protected files, serves them to consumers, and runs the
// ReEncrypt half of attribute revocation via proxy re-encryption — it
// never holds content keys and never decrypts anything (paper Section
// III-B trust model).
//
// Concurrency model (DESIGN.md §9): the store is split into N shards by
// hash of file_id, each guarded by its own std::shared_mutex. fetch()
// returns an immutable snapshot (shared_ptr<const StoredFile>) taken
// under the shard's read lock, so readers are never invalidated by a
// concurrent store() or reencrypt(). Writers lock only their shard, so
// re-encryption of one owner's files never blocks reads of unrelated
// shards.
//
// Revocation is a failure-atomic epoch: reencrypt() stages re-encrypted
// copies of every affected ciphertext off to the side (fanned out over
// CryptoEngine::parallel_for) and swaps them in under the shard write
// locks only after every slot has succeeded. If any slot throws, the
// staged copies are discarded and the stored bytes are exactly what they
// were before the call — the scheme's strict per-authority version
// checks (abe::reencrypt) can therefore never observe a half-updated
// store. A test-only fault hook lets tests prove this.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "abe/scheme.h"
#include "cloud/hybrid.h"
#include "telemetry/trace.h"

namespace maabe::cloud {

/// Per-shard monotonic counters, mirroring engine::EngineStats /
/// OpMeter: snapshot with CloudServer::stats(), report from benches.
struct ShardStats {
  uint64_t files = 0;             ///< live files in the shard
  uint64_t bytes = 0;             ///< serialized bytes at rest
  uint64_t stores = 0;            ///< store() calls (inserts + replacements)
  uint64_t fetches = 0;           ///< successful fetch() snapshots served
  uint64_t reencrypted_slots = 0; ///< ciphertext slots committed by epochs

  ShardStats& operator+=(const ShardStats& o);
};

/// Whole-store snapshot: per-shard counters plus the epoch ledger.
struct ServerStats {
  std::vector<ShardStats> shards;
  uint64_t epochs_committed = 0;       ///< reencrypt() epochs fully applied
  uint64_t epochs_aborted = 0;         ///< epochs staged, then discarded on failure
  uint64_t epochs_staged_open = 0;     ///< staged, neither committed nor aborted
  ShardStats totals() const;
};

class CloudServer {
 public:
  static constexpr size_t kDefaultShards = 16;

  explicit CloudServer(std::shared_ptr<const pairing::Group> grp,
                       size_t shard_count = kDefaultShards);

  CloudServer(const CloudServer&) = delete;
  CloudServer& operator=(const CloudServer&) = delete;

  /// Stores (or replaces) a file uploaded by an owner. Both file_id and
  /// owner_id must be non-empty — a file without an owner could never
  /// match any UpdateKey.owner_id and would silently escape revocation.
  void store(StoredFile file);

  bool has_file(const std::string& file_id) const;

  /// Immutable snapshot of the file at the time of the call. The
  /// snapshot stays valid (and unchanged) however many store() /
  /// reencrypt() calls race with the reader.
  std::shared_ptr<const StoredFile> fetch(const std::string& file_id) const;

  /// All file ids, sorted (stable across shard counts).
  std::vector<std::string> file_ids() const;

  /// ReEncrypt (paper Section V-C Phase 2): applies the update key and
  /// the per-ciphertext update information to every affected slot, as
  /// one all-or-nothing epoch. Throws SchemeError on duplicate or
  /// missing UpdateInfo; on any failure the store is unchanged.
  /// Returns the number of ciphertext slots re-encrypted and committed.
  size_t reencrypt(const abe::UpdateKey& uk, const std::vector<abe::UpdateInfo>& infos);

  // ---- Two-phase epoch hooks (cluster 2PC, DESIGN.md §13) -------------
  // stage_reencrypt runs the whole staging pass (select + deep-copy +
  // re-encrypt into private copies) but does NOT touch the store; the
  // staged epoch is held under an opaque token until the coordinator
  // decides its fate. commit_reencrypt swaps the staged copies in;
  // abort_reencrypt discards them, leaving the store byte-identical to
  // before the stage. reencrypt() above is stage+commit in one call.

  /// Stages an epoch. Returns a nonzero token, or 0 when no stored file
  /// is affected (nothing to commit or abort). Throws SchemeError on
  /// protocol violations and propagates re-encryption failures; either
  /// way nothing is retained and the store is unchanged.
  uint64_t stage_reencrypt(const abe::UpdateKey& uk,
                           const std::vector<abe::UpdateInfo>& infos);

  /// Commits a staged epoch; returns the slots committed and the ids of
  /// the files actually swapped (a file replaced by a concurrent
  /// store() since staging keeps the replacement and is not listed).
  /// Token 0 is a no-op. Throws SchemeError on an unknown token — a
  /// node that lost its staged state (restart) must surface that to the
  /// coordinator rather than silently ack an empty commit.
  size_t commit_reencrypt(uint64_t token,
                          std::vector<std::string>* committed_files = nullptr);

  /// Discards a staged epoch. Unknown (or 0) tokens are a no-op: aborts
  /// are broadcast best-effort and may race a restart.
  void abort_reencrypt(uint64_t token);

  /// Discards every staged epoch (process restart: staged state is
  /// memory-only and does not survive). Returns the number discarded.
  size_t abort_all_staged();

  /// Bytes at rest (Table III row "Server"): serialized stored files.
  size_t storage_bytes() const;

  /// Bytes of ABE group material at rest (the paper's |GT|+(l+1)|G|
  /// accounting, excluding the symmetric payloads).
  size_t ciphertext_group_material_bytes() const;

  size_t shard_count() const { return shards_.size(); }
  size_t shard_of(const std::string& file_id) const;
  ServerStats stats() const;

  /// Node identity stamped onto this store's spans (node_id attr). Set
  /// by the Cluster at construction; the default "server" matches the
  /// single-node CloudSystem. Not thread-safe against running epochs —
  /// install before use.
  void set_node_name(std::string name) { node_name_ = std::move(name); }
  const std::string& node_name() const { return node_name_; }

  /// Test-only: invoked (from pool workers) once per slot during the
  /// staging pass, before the slot is re-encrypted; throwing from the
  /// hook aborts the epoch. Not thread-safe against a running
  /// reencrypt() — install before use.
  void set_reencrypt_fault_hook(std::function<void(const std::string& ct_id)> hook) {
    fault_hook_ = std::move(hook);
  }

 private:
  struct Entry {
    std::shared_ptr<const StoredFile> file;
    size_t bytes = 0;  ///< serialized size, maintained on every swap
  };
  struct Shard {
    mutable std::shared_mutex mu;
    std::map<std::string, Entry> files;     // guarded by mu
    uint64_t bytes = 0;                     // guarded by mu (exclusive)
    uint64_t stores = 0;                    // guarded by mu (exclusive)
    uint64_t reencrypted_slots = 0;         // guarded by mu (exclusive)
    mutable std::atomic<uint64_t> fetches{0};  // bumped under shared lock
  };
  struct StagedFile {
    size_t shard;
    std::shared_ptr<const StoredFile> original;  // for commit-time identity check
    std::shared_ptr<StoredFile> staged;
    std::vector<size_t> slot_indices;
  };
  struct StagedEpoch {
    std::vector<StagedFile> files;
    uint64_t start_ns = 0;  ///< steady-clock, for the epoch histogram
  };

  /// Staging pass shared by reencrypt() and stage_reencrypt(). Slot
  /// spans parent on `slot_parent` (the caller's epoch/stage span).
  StagedEpoch stage_impl(const abe::UpdateKey& uk,
                         const std::vector<abe::UpdateInfo>& infos,
                         const telemetry::SpanContext& slot_parent);
  /// Swap pass shared by reencrypt() and commit_reencrypt().
  size_t commit_impl(StagedEpoch& epoch, std::vector<std::string>* committed_files);

  std::shared_ptr<const pairing::Group> grp_;
  std::string node_name_ = "server";
  std::vector<Shard> shards_;
  std::atomic<uint64_t> epochs_committed_{0};
  std::atomic<uint64_t> epochs_aborted_{0};
  std::function<void(const std::string&)> fault_hook_;
  mutable std::mutex staged_mu_;
  uint64_t next_token_ = 0;                       // guarded by staged_mu_
  std::map<uint64_t, StagedEpoch> staged_epochs_;  // guarded by staged_mu_
};

}  // namespace maabe::cloud
