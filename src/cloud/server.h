// The honest-but-curious cloud server.
//
// Stores owners' protected files, serves them to consumers, and runs the
// ReEncrypt half of attribute revocation via proxy re-encryption — it
// never holds content keys and never decrypts anything (paper Section
// III-B trust model).
#pragma once

#include "abe/scheme.h"
#include "cloud/hybrid.h"

namespace maabe::cloud {

class CloudServer {
 public:
  explicit CloudServer(std::shared_ptr<const pairing::Group> grp)
      : grp_(std::move(grp)) {}

  /// Stores (or replaces) a file uploaded by an owner.
  void store(StoredFile file);

  bool has_file(const std::string& file_id) const { return files_.contains(file_id); }
  const StoredFile& fetch(const std::string& file_id) const;
  std::vector<std::string> file_ids() const;

  /// ReEncrypt (paper Section V-C Phase 2): applies the update key and
  /// the per-ciphertext update information to every affected slot.
  /// Returns the number of ciphertexts re-encrypted.
  size_t reencrypt(const abe::UpdateKey& uk, const std::vector<abe::UpdateInfo>& infos);

  /// Bytes at rest (Table III row "Server"): serialized stored files.
  size_t storage_bytes() const;

  /// Bytes of ABE group material at rest (the paper's |GT|+(l+1)|G|
  /// accounting, excluding the symmetric payloads).
  size_t ciphertext_group_material_bytes() const;

 private:
  std::shared_ptr<const pairing::Group> grp_;
  std::map<std::string, StoredFile> files_;
};

}  // namespace maabe::cloud
