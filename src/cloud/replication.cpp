#include "cloud/replication.h"

#include "telemetry/flight_recorder.h"

namespace maabe::cloud {

// ---------------------------------------------------- wire formats --

namespace {
constexpr uint8_t kReplicationTag = 0x52;  // 'R'
constexpr uint8_t kFetchReplyTag = 0x51;   // 'Q'
}  // namespace

Bytes encode_replication_op(const ReplicationOp& op) {
  Writer w;
  w.u8(kReplicationTag);
  w.str(op.file_id);
  w.u64(op.version);
  w.var_bytes(op.hash);
  w.var_bytes(op.wire);
  return w.take();
}

ReplicationOp decode_replication_op(ByteView data) {
  Reader r(data);
  if (r.u8() != kReplicationTag)
    throw WireError("replication: bad op tag");
  ReplicationOp op;
  op.file_id = r.str();
  op.version = r.u64();
  op.hash = r.var_bytes();
  op.wire = r.var_bytes();
  r.expect_done();
  return op;
}

Bytes encode_fetch_reply(const FetchReply& reply) {
  Writer w;
  w.u8(kFetchReplyTag);
  w.u8(reply.found ? 1 : 0);
  w.u64(reply.version);
  w.var_bytes(reply.hash);
  w.var_bytes(reply.wire);
  return w.take();
}

FetchReply decode_fetch_reply(ByteView data) {
  Reader r(data);
  if (r.u8() != kFetchReplyTag)
    throw WireError("replication: bad fetch-reply tag");
  FetchReply reply;
  reply.found = r.u8() != 0;
  reply.version = r.u64();
  reply.hash = r.var_bytes();
  reply.wire = r.var_bytes();
  r.expect_done();
  return reply;
}

// ----------------------------------------------------- DurableLink --

DurableLink::DurableLink(ReliableLink& link)
    : link_(link),
      rejected_counter_(telemetry::MetricsRegistry::global().counter(
          "maabe_transport_parked_rejected_total")),
      pruned_counter_(telemetry::MetricsRegistry::global().counter(
          "maabe_transport_parked_pruned_total")) {}

void DurableLink::set_pending_cap(size_t cap) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  pending_cap_ = cap == 0 ? kDefaultPendingCap : cap;
}

size_t DurableLink::pending_cap() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return pending_cap_;
}

uint64_t DurableLink::rejected_total() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return rejected_;
}

uint64_t DurableLink::pruned_total() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return pruned_;
}

bool DurableLink::send_or_park(const std::string& from, const std::string& to,
                               Bytes payload, Apply apply, const std::string& label) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Order must be preserved per destination: never jump a parked queue.
  flush_queue(to);
  auto& queue = pending_[to];
  if (queue.size() >= pending_cap_) {
    ++rejected_;
    rejected_counter_.add(1);
    if (telemetry::FlightRegistry::armed())
      telemetry::FlightRegistry::global().record_event(
          to, telemetry::FlightEntry::Kind::kOverloadShed, "parked_rejected",
          "label=" + label + " cap=" + std::to_string(pending_cap_));
    throw TransportError(TransportError::Kind::kOverloaded,
                         "durable queue for '" + to + "' at cap (" +
                             std::to_string(pending_cap_) + "): rejecting '" +
                             label + "'");
  }
  if (!queue.empty()) {
    queue.push_back({link_.allocate_request_id(), from, std::move(payload),
                     std::move(apply), label, telemetry::Tracer::current()});
    return false;
  }
  const uint64_t rid = link_.allocate_request_id();
  try {
    link_.send_as(rid, from, to, payload, apply);
  } catch (const TransportError&) {
    queue.push_back({rid, from, std::move(payload), std::move(apply), label,
                     telemetry::Tracer::current()});
    return false;
  }
  pending_.erase(to);  // drop the empty deque we may have created
  return true;
}

size_t DurableLink::prune_queue(
    const std::string& to, const std::function<bool(const std::string&)>& drop) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const auto it = pending_.find(to);
  if (it == pending_.end()) return 0;
  auto& queue = it->second;
  std::deque<Pending> kept;
  size_t dropped = 0;
  for (Pending& p : queue) {
    if (drop(p.label)) {
      ++dropped;
    } else {
      kept.push_back(std::move(p));
    }
  }
  queue = std::move(kept);
  if (queue.empty()) pending_.erase(it);
  if (dropped > 0) {
    pruned_ += dropped;
    pruned_counter_.add(dropped);
  }
  return dropped;
}

void DurableLink::flush_queue(const std::string& to) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const auto it = pending_.find(to);
  if (it == pending_.end()) return;
  auto& queue = it->second;
  while (!queue.empty()) {
    Pending& head = queue.front();
    // Replay under the context captured at park time: the frame on the
    // wire carries the originating trace, and an originally-untraced
    // op stays detached from whatever operation triggered this flush.
    telemetry::ContextOverride restore_ctx(head.ctx);
    telemetry::Span replay =
        telemetry::Tracer::global().start_span("durable.replay");
    if (replay.active()) {
      replay.attr("to", to);
      replay.attr("label", head.label);
      replay.attr("node_id", head.from);
    }
    try {
      link_.send_as(head.request_id, head.from, to, head.payload, head.apply);
    } catch (const TransportError&) {
      if (replay.active()) replay.attr("outcome", "still_parked");
      return;  // keep order; retry on the next call
    }
    if (replay.active()) replay.attr("outcome", "delivered");
    queue.pop_front();
  }
  pending_.erase(it);
}

size_t DurableLink::flush_all() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::vector<std::string> destinations;
  destinations.reserve(pending_.size());
  for (const auto& [to, queue] : pending_) destinations.push_back(to);
  for (const std::string& to : destinations) flush_queue(to);
  return pending_count();
}

size_t DurableLink::pending_count() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [to, queue] : pending_) n += queue.size();
  return n;
}

size_t DurableLink::pending_for(const std::string& to) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const auto it = pending_.find(to);
  return it == pending_.end() ? 0 : it->second.size();
}

std::map<std::string, size_t> DurableLink::pending_by_destination() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::map<std::string, size_t> out;
  for (const auto& [to, queue] : pending_) {
    if (!queue.empty()) out[to] = queue.size();
  }
  return out;
}

std::vector<std::string> DurableLink::pending_labels(const std::string& to) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::vector<std::string> out;
  const auto it = pending_.find(to);
  if (it == pending_.end()) return out;
  out.reserve(it->second.size());
  for (const Pending& p : it->second) out.push_back(p.label);
  return out;
}

}  // namespace maabe::cloud
