// Byte-level transport for the framework protocol (DESIGN.md §10).
//
// Every artefact a CloudSystem entity sends — keys, ciphertexts, stored
// files, update keys — travels through a Transport as serialized bytes:
// the sender serializes, the transport frames (sequence number +
// checksum) and delivers, the receiver verifies and deserializes.
// Nothing crosses an entity boundary by reference anymore, so the
// protocol can be exercised against dropped, duplicated, corrupted and
// delayed messages.
//
// Fault injection is deterministic: a FaultPlan derives one Drbg stream
// per directed channel from a single seed, so a failing run reproduces
// byte-identically from its seed, independent of how other channels
// interleave. ReliableLink adds capped exponential backoff with a
// deadline on the transport's virtual clock, and request-id
// deduplication at the receiver so a redelivered or retried request is
// applied exactly once.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <utility>

#include "cloud/meter.h"
#include "common/errors.h"
#include "common/wire.h"
#include "crypto/drbg.h"

namespace maabe::cloud {

// ----------------------------------------------------------- Frames --

/// A decoded transport frame. The wire form is
///   u8 tag (0x7A) | str from | str to | u64 request_id | u64 seq |
///   u8 flags | [u64 trace_id | u64 parent_span_id | str origin_node] |
///   var_bytes payload | raw[4] checksum
/// where flags bit 0 says whether the optional trace-context triple is
/// present (all other flag bits must be zero), and the checksum is the
/// first 4 bytes of SHA-256 over everything before it — the trace
/// header is inside the checksummed body, so a flipped trace byte is a
/// kChecksum fault like any other corruption. decode_frame verifies
/// the checksum before parsing, so any in-flight corruption surfaces
/// as TransportError(kChecksum).
///
/// The trace triple (DESIGN.md §16) carries the sender's current span
/// context across the wire: the receiving node rehydrates it as the
/// parent of a scoped "transport.recv" span, so one revocation epoch's
/// coordinator fan-out, replica stage/commit, quorum reads and
/// recovery rounds form a single cross-node span tree.
struct Frame {
  std::string from;
  std::string to;
  uint64_t request_id = 0;  ///< sender-unique logical request id
  uint64_t seq = 0;         ///< per-channel transmission counter
  uint64_t trace_id = 0;        ///< propagated trace (0 = untraced)
  uint64_t parent_span_id = 0;  ///< sender's span at send time
  std::string origin_node;      ///< where the trace context was captured
  Bytes payload;

  bool has_trace() const { return parent_span_id != 0; }
};

Bytes encode_frame(const Frame& f);
Frame decode_frame(ByteView wire);  ///< throws TransportError

// -------------------------------------------------------- FaultPlan --

/// Per-channel fault probabilities. All probabilities are independent
/// per transmission; a frame can be both delayed and dropped.
struct FaultSpec {
  double drop = 0.0;       ///< P(frame lost before delivery)
  double duplicate = 0.0;  ///< P(frame delivered twice)
  double corrupt = 0.0;    ///< P(one frame byte flipped in flight)
  double ack_loss = 0.0;   ///< P(delivered, but the sender sees failure)
  double delay = 0.0;      ///< P(frame held up delay_ms on the clock)
  uint64_t delay_ms = 25;  ///< latency added when a delay fires

  bool fault_free() const {
    return drop == 0 && duplicate == 0 && corrupt == 0 && ack_loss == 0 && delay == 0;
  }
};

/// Deterministic fault schedule, reproducible from a seed. Each directed
/// channel gets its own Drbg stream (derived from seed + channel name),
/// so the decisions on one channel do not depend on traffic elsewhere.
/// On top of the probabilistic spec, fail_next() scripts "fail the next
/// N transmissions on this channel, then succeed" — the shape most
/// outage tests want.
class FaultPlan {
 public:
  /// Everything the plan injected, for reconciling against the
  /// ChannelMeter: every injected fault must be accounted for.
  struct Injected {
    uint64_t drops = 0;
    uint64_t duplicates = 0;
    uint64_t corruptions = 0;
    uint64_t ack_losses = 0;
    uint64_t delays = 0;
    uint64_t script_failures = 0;
    uint64_t total() const {
      return drops + duplicates + corruptions + ack_losses + delays + script_failures;
    }
  };

  /// What happens to one transmission.
  struct Decision {
    bool drop = false;
    bool duplicate = false;
    bool corrupt = false;
    bool ack_loss = false;
    bool script_failure = false;
    uint64_t delay_ms = 0;
    size_t corrupt_offset = 0;  ///< which frame byte to flip
    uint8_t corrupt_xor = 0;    ///< nonzero xor mask for that byte
  };

  FaultPlan() = default;               ///< fault-free, no randomness
  explicit FaultPlan(uint64_t seed);

  /// Spec for channels without a channel-specific override.
  void set_default(const FaultSpec& spec) { default_spec_ = spec; }
  void set_channel(const std::string& from, const std::string& to,
                   const FaultSpec& spec);
  /// Script: the next `n` transmissions from->to fail outright.
  void fail_next(const std::string& from, const std::string& to, uint32_t n);

  Decision decide(const std::string& from, const std::string& to, size_t frame_size);
  const Injected& injected() const { return injected_; }

 private:
  const FaultSpec& spec_for(const std::string& from, const std::string& to) const;
  crypto::Drbg& channel_rng(const std::string& from, const std::string& to);

  bool seeded_ = false;
  uint64_t seed_ = 0;
  FaultSpec default_spec_;
  std::map<std::pair<std::string, std::string>, FaultSpec> channel_specs_;
  std::map<std::pair<std::string, std::string>, uint32_t> scripts_;
  std::map<std::pair<std::string, std::string>, crypto::Drbg> rngs_;
  Injected injected_;
};

// -------------------------------------------------------- Transport --

class Transport {
 public:
  virtual ~Transport() = default;

  /// Called once per frame copy that arrives intact — zero times for a
  /// dropped frame, twice for a duplicated one. Receivers must dedup by
  /// request id: in the ack-loss case the sink has already run when the
  /// sender sees the failure and retries.
  using Sink = std::function<void(uint64_t request_id, ByteView payload)>;

  /// One transmission attempt from->to. Throws TransportError when the
  /// frame is lost (kLost), fails its checksum (kChecksum), or its
  /// acknowledgement is lost after delivery (kLost).
  virtual void deliver(const std::string& from, const std::string& to,
                       uint64_t request_id, ByteView payload, const Sink& sink) = 0;

  /// Per-channel byte and fault accounting lives inside the transport —
  /// it is the only layer that sees real wire bytes.
  virtual ChannelMeter& meter() = 0;
  const ChannelMeter& meter() const {
    return const_cast<Transport*>(this)->meter();
  }

  /// Virtual clock (milliseconds). Delay faults and retry backoff
  /// advance it; nothing ever sleeps, so chaos runs are fast and
  /// deterministic.
  virtual uint64_t now_ms() const = 0;
  virtual void advance_clock(uint64_t ms) = 0;
};

/// In-process transport: frames are encoded, run through the FaultPlan,
/// and decoded on the spot. The real serialize -> frame -> verify ->
/// deserialize path is exercised even though no socket is involved.
///
/// Thread-safety: deliver() may be called concurrently (the fault plan
/// and sequence counters are mutex-guarded, the clock is atomic, and
/// the meter synchronizes itself); no lock is held while the receiver
/// sink runs, so sinks may nest further sends. faults() hands out the
/// plan unsynchronized — configure it before concurrent traffic starts.
class LoopbackTransport : public Transport {
 public:
  explicit LoopbackTransport(FaultPlan plan = FaultPlan());

  void deliver(const std::string& from, const std::string& to, uint64_t request_id,
               ByteView payload, const Sink& sink) override;
  using Transport::meter;  // keep the const overload visible
  ChannelMeter& meter() override { return meter_; }
  uint64_t now_ms() const override {
    return now_ms_.load(std::memory_order_relaxed);
  }
  void advance_clock(uint64_t ms) override {
    now_ms_.fetch_add(ms, std::memory_order_relaxed);
  }

  FaultPlan& faults() { return plan_; }
  const FaultPlan& faults() const { return plan_; }

 private:
  std::mutex mu_;  // guards plan_ decisions + seq_ allocation
  FaultPlan plan_;
  ChannelMeter meter_;
  std::map<std::pair<std::string, std::string>, uint64_t> seq_;
  std::atomic<uint64_t> now_ms_{0};
};

// ----------------------------------------------------- ReliableLink --

/// Retry/backoff parameters for one logical send. Backoff is capped
/// exponential: base, 2*base, 4*base, ... up to max, charged to the
/// transport's virtual clock; the deadline bounds the whole send.
struct RetryPolicy {
  uint32_t max_attempts = 4;
  uint64_t base_backoff_ms = 10;
  uint64_t max_backoff_ms = 500;
  uint64_t deadline_ms = 4000;
};

/// Reliable unicast over an unreliable Transport: retries with capped
/// exponential backoff until the policy is exhausted, and guarantees the
/// receiver-side apply runs at most once per (origin, request id) even
/// when frames are duplicated or an applied request is retried after an
/// ack loss (idempotent request handling). Dedup keys are scoped by the
/// origin because request-id counters are per sender process: two nodes
/// can legitimately allocate the same id, while one origin retrying a
/// request against a *different* destination (a store re-routed to a
/// new primary after failover) must still be a no-op. Suppressed
/// duplicate copies are counted as redeliveries on the channel.
class ReliableLink {
 public:
  explicit ReliableLink(Transport& transport, RetryPolicy policy = RetryPolicy());

  /// Hands out sender-unique request ids (so a parked delivery can be
  /// replayed later under its original id).
  uint64_t allocate_request_id() {
    return next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  using Apply = std::function<void(ByteView payload)>;

  /// Sends `payload` under a fresh request id. `apply` runs exactly once
  /// on success. Throws TransportError(kExhausted) when every attempt
  /// failed; non-transport exceptions from `apply` propagate unretried.
  void send(const std::string& from, const std::string& to, ByteView payload,
            const Apply& apply);

  /// Same, under a caller-held request id: if an earlier attempt already
  /// applied this id (ack lost), the replay is a no-op that still counts
  /// as success.
  void send_as(uint64_t request_id, const std::string& from, const std::string& to,
               ByteView payload, const Apply& apply);

  const RetryPolicy& policy() const { return policy_; }
  void set_policy(const RetryPolicy& policy) { policy_ = policy; }

  // Counters are atomics and the dedup set is mutex-guarded, so these
  // accessors (and concurrent sends) are safe from any thread.
  uint64_t sends_ok() const { return sends_ok_.load(std::memory_order_relaxed); }
  uint64_t sends_failed() const {
    return sends_failed_.load(std::memory_order_relaxed);
  }
  uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }
  uint64_t applied_requests() const {
    std::lock_guard<std::mutex> lock(applied_mu_);
    return applied_.size();
  }

 private:
  Transport& transport_;
  RetryPolicy policy_;
  std::atomic<uint64_t> next_request_id_{0};
  mutable std::mutex applied_mu_;  // never held across apply/sink calls
  std::set<std::pair<std::string, uint64_t>> applied_;  // (origin, request id)
  std::atomic<uint64_t> sends_ok_{0};
  std::atomic<uint64_t> sends_failed_{0};
  std::atomic<uint64_t> retries_{0};
};

}  // namespace maabe::cloud
