#include "cloud/meter.h"

namespace maabe::cloud {

void ChannelMeter::record(const std::string& from, const std::string& to, size_t bytes) {
  totals_[{from, to}] += bytes;
}

size_t ChannelMeter::sent(const std::string& from, const std::string& to) const {
  const auto it = totals_.find({from, to});
  return it == totals_.end() ? 0 : it->second;
}

size_t ChannelMeter::between(const std::string& a, const std::string& b) const {
  return sent(a, b) + sent(b, a);
}

size_t ChannelMeter::involving(const std::string& entity) const {
  size_t total = 0;
  for (const auto& [channel, bytes] : totals_) {
    if (channel.first == entity || channel.second == entity) total += bytes;
  }
  return total;
}

void ChannelMeter::reset() { totals_.clear(); }

void OpMeter::record(const std::string& phase, const engine::EngineStats& delta) {
  phases_[phase] += delta;
}

engine::EngineStats OpMeter::phase(const std::string& name) const {
  const auto it = phases_.find(name);
  return it == phases_.end() ? engine::EngineStats{} : it->second;
}

}  // namespace maabe::cloud
