#include "cloud/meter.h"

namespace maabe::cloud {

ChannelStats& ChannelStats::operator+=(const ChannelStats& o) {
  payload_bytes += o.payload_bytes;
  frame_bytes += o.frame_bytes;
  frames += o.frames;
  deliveries += o.deliveries;
  drops += o.drops;
  duplicates += o.duplicates;
  corruptions += o.corruptions;
  ack_losses += o.ack_losses;
  delays += o.delays;
  delay_ms += o.delay_ms;
  script_failures += o.script_failures;
  retries += o.retries;
  redeliveries += o.redeliveries;
  bytes_delivered += o.bytes_delivered;
  bytes_accepted += o.bytes_accepted;
  return *this;
}

void ChannelMeter::record(const std::string& from, const std::string& to, size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_[{from, to}].payload_bytes += bytes;
}

size_t ChannelMeter::sent(const std::string& from, const std::string& to) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = totals_.find({from, to});
  return it == totals_.end() ? 0 : it->second.payload_bytes;
}

ChannelStats ChannelMeter::stats(const std::string& from, const std::string& to) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = totals_.find({from, to});
  return it == totals_.end() ? ChannelStats{} : it->second;
}

ChannelStats ChannelMeter::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  ChannelStats out;
  for (const auto& [channel, stats] : totals_) out += stats;
  return out;
}

size_t ChannelMeter::between(const std::string& a, const std::string& b) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [channel, stats] : totals_) {
    if ((channel.first == a && channel.second == b) ||
        (channel.first == b && channel.second == a))
      total += stats.payload_bytes;
  }
  return total;
}

size_t ChannelMeter::involving(const std::string& entity) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [channel, stats] : totals_) {
    if (channel.first == entity || channel.second == entity)
      total += stats.payload_bytes;
  }
  return total;
}

std::map<std::pair<std::string, std::string>, ChannelStats> ChannelMeter::entries()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_;
}

void ChannelMeter::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  totals_.clear();
}

void OpMeter::record(const std::string& phase, const engine::EngineStats& delta) {
  phases_[phase] += delta;
}

engine::EngineStats OpMeter::phase(const std::string& name) const {
  const auto it = phases_.find(name);
  return it == phases_.end() ? engine::EngineStats{} : it->second;
}

}  // namespace maabe::cloud
