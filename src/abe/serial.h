// Wire serialization for every ABE artifact.
//
// The byte counts these encoders produce are what the storage and
// communication benchmarks (paper Tables II-IV) measure. Group-element
// fields are fixed-width; strings and maps carry length prefixes. Every
// decoder validates lengths, tags and group membership (points are
// re-derived from compressed coordinates) and throws WireError on
// malformed input.
#pragma once

#include "abe/types.h"
#include "common/wire.h"

namespace maabe::abe {

Bytes serialize(const pairing::Group& grp, const UserPublicKey& v);
UserPublicKey deserialize_user_public_key(const pairing::Group& grp, ByteView data);

// Secret-material encodings (for local keystores; never transmit these).
Bytes serialize(const pairing::Group& grp, const OwnerMasterKey& v);
OwnerMasterKey deserialize_owner_master_key(const pairing::Group& grp, ByteView data);

Bytes serialize(const pairing::Group& grp, const AuthorityVersionKey& v);
AuthorityVersionKey deserialize_authority_version_key(const pairing::Group& grp,
                                                      ByteView data);

Bytes serialize(const pairing::Group& grp, const EncryptionRecord& v);
EncryptionRecord deserialize_encryption_record(const pairing::Group& grp, ByteView data);

Bytes serialize(const pairing::Group& grp, const OwnerSecretShare& v);
OwnerSecretShare deserialize_owner_secret_share(const pairing::Group& grp, ByteView data);

Bytes serialize(const pairing::Group& grp, const AuthorityPublicKey& v);
AuthorityPublicKey deserialize_authority_public_key(const pairing::Group& grp, ByteView data);

Bytes serialize(const pairing::Group& grp, const PublicAttributeKey& v);
PublicAttributeKey deserialize_public_attribute_key(const pairing::Group& grp, ByteView data);

Bytes serialize(const pairing::Group& grp, const UserSecretKey& v);
UserSecretKey deserialize_user_secret_key(const pairing::Group& grp, ByteView data);

Bytes serialize(const pairing::Group& grp, const Ciphertext& v);
Ciphertext deserialize_ciphertext(const pairing::Group& grp, ByteView data);

/// Receiver-dependent validation depth for update keys. Users folding a
/// UK into their secret key must insist on the order-r subgroup
/// (kKeyMaterial); the server only injects uk1 into ciphertext
/// components, where — like per-row ciphertext points — an off-subgroup
/// value degrades to a typed decryption failure, so the on-curve check
/// suffices and the epoch skips a scalar multiplication (kCiphertextPath).
enum class UkCheck { kKeyMaterial, kCiphertextPath };

Bytes serialize(const pairing::Group& grp, const UpdateKey& v);
UpdateKey deserialize_update_key(const pairing::Group& grp, ByteView data,
                                 UkCheck check = UkCheck::kKeyMaterial);

Bytes serialize(const pairing::Group& grp, const UpdateInfo& v);
UpdateInfo deserialize_update_info(const pairing::Group& grp, ByteView data);

/// Bytes of group material only (excluding policy text, ids and framing):
/// |GT| + (l+1)|G| — the quantity the paper's Table II tracks for the
/// ciphertext.
size_t ciphertext_group_material_bytes(const pairing::Group& grp, const Ciphertext& v);

}  // namespace maabe::abe
