#include "abe/types.h"

#include "common/errors.h"

namespace maabe::abe {

std::set<lsss::Attribute> UserSecretKey::attributes() const {
  std::set<lsss::Attribute> out;
  for (const auto& [handle, key] : kx) {
    const size_t at = handle.rfind('@');
    if (at == std::string::npos)
      throw SchemeError("UserSecretKey: malformed attribute handle '" + handle + "'");
    out.insert(lsss::Attribute{handle.substr(0, at), handle.substr(at + 1)});
  }
  return out;
}

std::set<std::string> Ciphertext::involved_authorities() const {
  std::set<std::string> out;
  for (const auto& [aid, version] : versions) out.insert(aid);
  return out;
}

}  // namespace maabe::abe
