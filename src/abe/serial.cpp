#include "abe/serial.h"

#include "common/errors.h"

namespace maabe::abe {

using pairing::G1;
using pairing::Group;
using pairing::GT;
using pairing::Zr;

namespace {

// One-byte type tags catch cross-type decoding mistakes early.
enum Tag : uint8_t {
  kUserPublicKey = 0x01,
  kOwnerSecretShare = 0x02,
  kAuthorityPublicKey = 0x03,
  kPublicAttributeKey = 0x04,
  kUserSecretKey = 0x05,
  kCiphertext = 0x06,
  kUpdateKey = 0x07,
  kUpdateInfo = 0x08,
  kOwnerMasterKey = 0x09,
  kAuthorityVersionKey = 0x0a,
  kEncryptionRecord = 0x0b,
};

void put_g1(Writer& w, const G1& v) { w.raw(v.to_bytes()); }
void put_gt(Writer& w, const GT& v) { w.raw(v.to_bytes()); }
void put_zr(Writer& w, const Zr& v) { w.raw(v.to_bytes()); }

G1 get_g1(const Group& grp, Reader& r) { return grp.g1_from_bytes(r.raw(grp.g1_size())); }

// Transient revocation-protocol messages (update keys / update infos)
// use the uncompressed x||y encoding: decoding skips the per-point
// square root, which dominates epoch delivery over the byte-level
// transport. Durable artefacts (keys, ciphertexts) keep the compressed
// form whose sizes Tables II-IV count.
void put_g1_xy(Writer& w, const G1& v) { w.raw(v.to_bytes_uncompressed()); }
G1 get_g1_xy(const Group& grp, Reader& r) {
  return grp.g1_from_bytes_uncompressed(r.raw(grp.g1_uncompressed_size()));
}

// Key material additionally gets an order check: decompression only
// guarantees on-curve, not membership in the order-r subgroup. Applied
// to the handful of points inside keys (not to per-row ciphertext
// components, where it would cost one scalar multiplication per policy
// row on every load; see README "Architecture notes").
G1 get_g1_checked(const Group& grp, Reader& r) {
  G1 point = get_g1(grp, r);
  if (!point.in_subgroup())
    throw WireError("deserialize: point outside the order-r subgroup");
  return point;
}
GT get_gt(const Group& grp, Reader& r) { return grp.gt_from_bytes(r.raw(grp.gt_size())); }
Zr get_zr(const Group& grp, Reader& r) { return grp.zr_from_bytes(r.raw(grp.zr_size())); }

void expect_tag(Reader& r, Tag tag, const char* what) {
  if (r.u8() != tag) throw WireError(std::string("deserialize: wrong tag for ") + what);
}

lsss::Attribute parse_handle(const std::string& handle) {
  const size_t at = handle.rfind('@');
  if (at == std::string::npos || at == 0 || at + 1 == handle.size())
    throw WireError("deserialize: malformed attribute handle '" + handle + "'");
  return {handle.substr(0, at), handle.substr(at + 1)};
}

}  // namespace

Bytes serialize(const Group& grp, const UserPublicKey& v) {
  (void)grp;
  Writer w;
  w.u8(kUserPublicKey);
  w.str(v.uid);
  put_g1(w, v.pk);
  return w.take();
}

UserPublicKey deserialize_user_public_key(const Group& grp, ByteView data) {
  Reader r(data);
  expect_tag(r, kUserPublicKey, "UserPublicKey");
  UserPublicKey v;
  v.uid = r.str();
  v.pk = get_g1_checked(grp, r);
  r.expect_done();
  return v;
}

Bytes serialize(const Group& grp, const OwnerSecretShare& v) {
  (void)grp;
  Writer w;
  w.u8(kOwnerSecretShare);
  w.str(v.owner_id);
  put_g1(w, v.g_inv_beta);
  put_zr(w, v.r_over_beta);
  return w.take();
}

OwnerSecretShare deserialize_owner_secret_share(const Group& grp, ByteView data) {
  Reader r(data);
  expect_tag(r, kOwnerSecretShare, "OwnerSecretShare");
  OwnerSecretShare v;
  v.owner_id = r.str();
  v.g_inv_beta = get_g1_checked(grp, r);
  v.r_over_beta = get_zr(grp, r);
  r.expect_done();
  return v;
}

Bytes serialize(const Group& grp, const AuthorityPublicKey& v) {
  (void)grp;
  Writer w;
  w.u8(kAuthorityPublicKey);
  w.str(v.aid);
  w.u32(v.version);
  put_gt(w, v.e_gg_alpha);
  return w.take();
}

AuthorityPublicKey deserialize_authority_public_key(const Group& grp, ByteView data) {
  Reader r(data);
  expect_tag(r, kAuthorityPublicKey, "AuthorityPublicKey");
  AuthorityPublicKey v;
  v.aid = r.str();
  v.version = r.u32();
  v.e_gg_alpha = get_gt(grp, r);
  r.expect_done();
  return v;
}

Bytes serialize(const Group& grp, const PublicAttributeKey& v) {
  (void)grp;
  Writer w;
  w.u8(kPublicAttributeKey);
  w.str(v.attr.name);
  w.str(v.attr.aid);
  w.u32(v.version);
  put_g1(w, v.key);
  return w.take();
}

PublicAttributeKey deserialize_public_attribute_key(const Group& grp, ByteView data) {
  Reader r(data);
  expect_tag(r, kPublicAttributeKey, "PublicAttributeKey");
  PublicAttributeKey v;
  v.attr.name = r.str();
  v.attr.aid = r.str();
  v.version = r.u32();
  v.key = get_g1_checked(grp, r);
  r.expect_done();
  return v;
}

Bytes serialize(const Group& grp, const UserSecretKey& v) {
  (void)grp;
  Writer w;
  w.u8(kUserSecretKey);
  w.str(v.uid);
  w.str(v.aid);
  w.str(v.owner_id);
  w.u32(v.version);
  put_g1(w, v.k);
  w.u32(static_cast<uint32_t>(v.kx.size()));
  for (const auto& [handle, key] : v.kx) {
    w.str(handle);
    put_g1(w, key);
  }
  return w.take();
}

UserSecretKey deserialize_user_secret_key(const Group& grp, ByteView data) {
  Reader r(data);
  expect_tag(r, kUserSecretKey, "UserSecretKey");
  UserSecretKey v;
  v.uid = r.str();
  v.aid = r.str();
  v.owner_id = r.str();
  v.version = r.u32();
  v.k = get_g1_checked(grp, r);
  const uint32_t n = r.u32();
  for (uint32_t i = 0; i < n; ++i) {
    const std::string handle = r.str();
    (void)parse_handle(handle);  // validate shape
    const G1 key = get_g1_checked(grp, r);
    if (!v.kx.emplace(handle, key).second)
      throw WireError("deserialize: duplicate attribute in UserSecretKey");
  }
  r.expect_done();
  return v;
}

Bytes serialize(const Group& grp, const Ciphertext& v) {
  (void)grp;
  Writer w;
  w.u8(kCiphertext);
  w.str(v.id);
  w.str(v.owner_id);
  v.policy.serialize(w);
  put_gt(w, v.c);
  put_g1(w, v.c_prime);
  w.u32(static_cast<uint32_t>(v.ci.size()));
  for (const G1& c : v.ci) put_g1(w, c);
  w.u32(static_cast<uint32_t>(v.versions.size()));
  for (const auto& [aid, version] : v.versions) {
    w.str(aid);
    w.u32(version);
  }
  return w.take();
}

Ciphertext deserialize_ciphertext(const Group& grp, ByteView data) {
  Reader r(data);
  expect_tag(r, kCiphertext, "Ciphertext");
  Ciphertext v;
  v.id = r.str();
  v.owner_id = r.str();
  v.policy = lsss::LsssMatrix::deserialize(r);
  v.c = get_gt(grp, r);
  v.c_prime = get_g1(grp, r);
  const uint32_t rows = r.u32();
  if (rows != static_cast<uint32_t>(v.policy.rows()))
    throw WireError("deserialize: ciphertext row count mismatch");
  v.ci.reserve(rows);
  for (uint32_t i = 0; i < rows; ++i) v.ci.push_back(get_g1(grp, r));
  const uint32_t nv = r.u32();
  for (uint32_t i = 0; i < nv; ++i) {
    const std::string aid = r.str();
    const uint32_t version = r.u32();
    if (!v.versions.emplace(aid, version).second)
      throw WireError("deserialize: duplicate authority version");
  }
  r.expect_done();
  return v;
}

Bytes serialize(const Group& grp, const UpdateKey& v) {
  (void)grp;
  Writer w;
  w.u8(kUpdateKey);
  w.str(v.aid);
  w.str(v.owner_id);
  w.u32(v.from_version);
  w.u32(v.to_version);
  put_g1_xy(w, v.uk1);
  put_zr(w, v.uk2);
  return w.take();
}

UpdateKey deserialize_update_key(const Group& grp, ByteView data, UkCheck check) {
  Reader r(data);
  expect_tag(r, kUpdateKey, "UpdateKey");
  UpdateKey v;
  v.aid = r.str();
  v.owner_id = r.str();
  v.from_version = r.u32();
  v.to_version = r.u32();
  v.uk1 = get_g1_xy(grp, r);
  if (check == UkCheck::kKeyMaterial && !v.uk1.in_subgroup())
    throw WireError("deserialize: point outside the order-r subgroup");
  v.uk2 = get_zr(grp, r);
  r.expect_done();
  return v;
}

Bytes serialize(const Group& grp, const UpdateInfo& v) {
  (void)grp;
  Writer w;
  w.u8(kUpdateInfo);
  w.str(v.aid);
  w.str(v.owner_id);
  w.str(v.ct_id);
  w.u32(v.from_version);
  w.u32(v.to_version);
  w.u32(static_cast<uint32_t>(v.ui.size()));
  for (const auto& [handle, g] : v.ui) {
    w.str(handle);
    put_g1_xy(w, g);
  }
  return w.take();
}

UpdateInfo deserialize_update_info(const Group& grp, ByteView data) {
  Reader r(data);
  expect_tag(r, kUpdateInfo, "UpdateInfo");
  UpdateInfo v;
  v.aid = r.str();
  v.owner_id = r.str();
  v.ct_id = r.str();
  v.from_version = r.u32();
  v.to_version = r.u32();
  const uint32_t n = r.u32();
  for (uint32_t i = 0; i < n; ++i) {
    const std::string handle = r.str();
    (void)parse_handle(handle);
    const G1 g = get_g1_xy(grp, r);
    if (!v.ui.emplace(handle, g).second)
      throw WireError("deserialize: duplicate attribute in UpdateInfo");
  }
  r.expect_done();
  return v;
}

Bytes serialize(const Group& grp, const OwnerMasterKey& v) {
  (void)grp;
  Writer w;
  w.u8(kOwnerMasterKey);
  w.str(v.owner_id);
  put_zr(w, v.beta);
  put_zr(w, v.r);
  return w.take();
}

OwnerMasterKey deserialize_owner_master_key(const Group& grp, ByteView data) {
  Reader r(data);
  expect_tag(r, kOwnerMasterKey, "OwnerMasterKey");
  OwnerMasterKey v;
  v.owner_id = r.str();
  v.beta = get_zr(grp, r);
  v.r = get_zr(grp, r);
  r.expect_done();
  if (v.beta.is_zero()) throw WireError("deserialize: zero beta in OwnerMasterKey");
  return v;
}

Bytes serialize(const Group& grp, const AuthorityVersionKey& v) {
  (void)grp;
  Writer w;
  w.u8(kAuthorityVersionKey);
  w.str(v.aid);
  w.u32(v.version);
  put_zr(w, v.alpha);
  return w.take();
}

AuthorityVersionKey deserialize_authority_version_key(const Group& grp, ByteView data) {
  Reader r(data);
  expect_tag(r, kAuthorityVersionKey, "AuthorityVersionKey");
  AuthorityVersionKey v;
  v.aid = r.str();
  v.version = r.u32();
  v.alpha = get_zr(grp, r);
  r.expect_done();
  if (v.alpha.is_zero()) throw WireError("deserialize: zero alpha in AuthorityVersionKey");
  return v;
}

Bytes serialize(const Group& grp, const EncryptionRecord& v) {
  (void)grp;
  Writer w;
  w.u8(kEncryptionRecord);
  w.str(v.ct_id);
  put_zr(w, v.s);
  return w.take();
}

EncryptionRecord deserialize_encryption_record(const Group& grp, ByteView data) {
  Reader r(data);
  expect_tag(r, kEncryptionRecord, "EncryptionRecord");
  EncryptionRecord v;
  v.ct_id = r.str();
  v.s = get_zr(grp, r);
  r.expect_done();
  return v;
}

size_t ciphertext_group_material_bytes(const Group& grp, const Ciphertext& v) {
  return grp.gt_size() + (v.ci.size() + 1) * grp.g1_size();
}

}  // namespace maabe::abe
