// Key material and ciphertext types of the Yang-Jia multi-authority
// CP-ABE scheme (ICDCS 2012).
//
// Notation mapping to the paper (Section V-B):
//   UserPublicKey         PK_UID = g^u              (issued by the CA)
//   OwnerMasterKey        MK_o = {beta, r}
//   OwnerSecretShare      SK_o = {g^{1/beta}, r/beta}  (owner -> each AA)
//   AuthorityVersionKey   VK_AID = alpha_AID        (secret, versioned)
//   AuthorityPublicKey    PK_{o,AID} = e(g,g)^{alpha_AID}
//   PublicAttributeKey    PK_{x,AID} = g^{alpha_AID * H(x)}
//   UserSecretKey         SK_{UID,AID} = (K, {K_x})
//   Ciphertext            CT = (C, C', {C_i}) + access structure
//   UpdateKey             UK_AID = (UK1 = g^{(a'-a)/beta}, UK2 = a'/a)
//   UpdateInfo            UI_{x,AID} = (PK_x / PK'_x)^{beta*s}
//
// Keys carry explicit version numbers so that the revocation protocol
// (ReKey / ReEncrypt) can detect stale material instead of silently
// failing to decrypt.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lsss/matrix.h"
#include "pairing/group.h"

namespace maabe::abe {

/// The string fed to the random oracle H(.) for attribute x managed by
/// authority aid — the qualified "name@aid" form, so that same-named
/// attributes of different authorities stay distinguishable (Section V-A).
inline std::string attribute_handle(const lsss::Attribute& attr) {
  return attr.qualified();
}

/// CA-issued user credential. The exponent u stays with the CA; everyone
/// else (AAs, owners, the decryption algorithm) only sees g^u.
struct UserPublicKey {
  std::string uid;
  pairing::G1 pk;  // g^u
};

/// Owner's master key MK_o. Never leaves the owner.
struct OwnerMasterKey {
  std::string owner_id;
  pairing::Zr beta;
  pairing::Zr r;
};

/// SK_o — what the owner hands each AA over a secure channel so the AA
/// can issue per-owner user secret keys without learning beta or r.
struct OwnerSecretShare {
  std::string owner_id;
  pairing::G1 g_inv_beta;    // g^{1/beta}
  pairing::Zr r_over_beta;   // r / beta
};

/// VK_AID — the authority's current version key. Bumping the version
/// (attribute revocation) replaces alpha wholesale.
struct AuthorityVersionKey {
  std::string aid;
  uint32_t version = 1;
  pairing::Zr alpha;
};

/// PK_{o,AID} = e(g,g)^{alpha_AID}: used by owners during encryption.
struct AuthorityPublicKey {
  std::string aid;
  uint32_t version = 1;
  pairing::GT e_gg_alpha;
};

/// PK_{x,AID} = g^{alpha_AID * H(x)} for one attribute.
struct PublicAttributeKey {
  lsss::Attribute attr;
  uint32_t version = 1;
  pairing::G1 key;
};

/// SK_{UID,AID} — per (user, authority, owner) decryption key.
struct UserSecretKey {
  std::string uid;
  std::string aid;
  std::string owner_id;
  uint32_t version = 1;
  pairing::G1 k;  // (g^u)^{r/beta} * g^{alpha/beta}
  /// Keyed by the qualified attribute handle ("name@aid").
  std::map<std::string, pairing::G1> kx;  // (g^u)^{alpha * H(x)}

  std::set<lsss::Attribute> attributes() const;
};

/// CT — encrypts a GT element under an LSSS access structure.
struct Ciphertext {
  std::string id;  ///< Owner-chosen identifier (revocation bookkeeping).
  std::string owner_id;
  lsss::LsssMatrix policy;
  pairing::GT c;               // m * (prod_k e(g,g)^{alpha_k})^s
  pairing::G1 c_prime;         // g^{beta*s}
  std::vector<pairing::G1> ci; // g^{r*lambda_i} * PK_{rho(i)}^{-beta*s}
  /// Version of each involved authority's keys at encryption time.
  std::map<std::string, uint32_t> versions;

  /// The involved authority set I_A.
  std::set<std::string> involved_authorities() const;
};

/// Owner-side record of the encryption exponent s for ciphertext `ct_id`;
/// required to build UpdateInfo during revocation (the paper implicitly
/// assumes owners can recompute (PK_x/PK'_x)^{beta*s}).
struct EncryptionRecord {
  std::string ct_id;
  pairing::Zr s;
};

/// UK_AID for one owner. UK1 depends on the owner's beta, so each owner
/// (and its users' keys) gets its own UK1; UK2 = alpha'/alpha is shared.
struct UpdateKey {
  std::string aid;
  std::string owner_id;
  uint32_t from_version = 0;
  uint32_t to_version = 0;
  pairing::G1 uk1;  // g^{(alpha' - alpha)/beta}
  pairing::Zr uk2;  // alpha' / alpha
};

/// UI_AID for one ciphertext: per-attribute correction factors the cloud
/// server multiplies into the affected C_i rows.
struct UpdateInfo {
  std::string aid;
  std::string owner_id;
  std::string ct_id;
  uint32_t from_version = 0;
  uint32_t to_version = 0;
  /// Keyed by qualified attribute handle; value (PK_x / PK'_x)^{beta*s}.
  std::map<std::string, pairing::G1> ui;
};

}  // namespace maabe::abe
