#include "abe/scheme.h"

#include "common/errors.h"
#include "engine/engine.h"

namespace maabe::abe {

using engine::CryptoEngine;
using lsss::Attribute;
using lsss::LsssMatrix;
using pairing::G1;
using pairing::Group;
using pairing::GT;
using pairing::Zr;

namespace {

const PublicAttributeKey& require_attribute_pk(
    const std::map<std::string, PublicAttributeKey>& pks, const std::string& handle) {
  const auto it = pks.find(handle);
  if (it == pks.end())
    throw SchemeError("encrypt: missing public attribute key for '" + handle + "'");
  return it->second;
}

}  // namespace

UserPublicKey ca_register_user(const Group& grp, const std::string& uid,
                               crypto::Drbg& rng, Zr* u_out) {
  if (uid.empty()) throw SchemeError("ca_register_user: empty UID");
  const Zr u = grp.zr_nonzero_random(rng);
  if (u_out != nullptr) *u_out = u;
  return {uid, grp.g_pow(u)};
}

OwnerMasterKey owner_gen(const Group& grp, const std::string& owner_id,
                         crypto::Drbg& rng) {
  if (owner_id.empty()) throw SchemeError("owner_gen: empty owner id");
  return {owner_id, grp.zr_nonzero_random(rng), grp.zr_nonzero_random(rng)};
}

OwnerSecretShare owner_share(const Group& grp, const OwnerMasterKey& mk) {
  const Zr beta_inv = mk.beta.inverse();
  return {mk.owner_id, grp.g_pow(beta_inv), mk.r * beta_inv};
}

AuthorityVersionKey aa_setup(const Group& grp, const std::string& aid,
                             crypto::Drbg& rng) {
  if (aid.empty()) throw SchemeError("aa_setup: empty AID");
  return {aid, 1, grp.zr_nonzero_random(rng)};
}

PublicAttributeKey aa_attribute_key(const Group& grp, const AuthorityVersionKey& vk,
                                    const std::string& name) {
  const Attribute attr{name, vk.aid};
  const Zr hx = grp.hash_to_zr(attribute_handle(attr));
  return {attr, vk.version, grp.g_pow(vk.alpha * hx)};
}

AuthorityPublicKey aa_public_key(const Group& grp, const AuthorityVersionKey& vk) {
  return {vk.aid, vk.version, grp.egg_pow(vk.alpha)};
}

UserSecretKey aa_keygen(const Group& grp, const AuthorityVersionKey& vk,
                        const OwnerSecretShare& owner, const UserPublicKey& user,
                        const std::set<std::string>& attribute_names) {
  UserSecretKey sk;
  sk.uid = user.uid;
  sk.aid = vk.aid;
  sk.owner_id = owner.owner_id;
  sk.version = vk.version;
  // All exponentiations go through the engine in one batch; the PK_UID
  // base repeats across every K_x row (and across keygen calls), so the
  // engine's table cache amortizes it.
  CryptoEngine& eng = CryptoEngine::for_group(grp);
  std::vector<CryptoEngine::G1Term> terms;
  terms.reserve(attribute_names.size() + 2);
  // K = PK_UID^{r/beta} * g^{alpha/beta} = (g^u)^{r/beta} * (g^{1/beta})^alpha.
  terms.push_back({user.pk, owner.r_over_beta});
  terms.push_back({owner.g_inv_beta, vk.alpha});
  std::vector<std::string> handles;
  handles.reserve(attribute_names.size());
  for (const std::string& name : attribute_names) {
    const Attribute attr{name, vk.aid};
    const std::string handle = attribute_handle(attr);
    const Zr hx = grp.hash_to_zr(handle);
    // K_x = PK_UID^{alpha * H(x)}.
    terms.push_back({user.pk, vk.alpha * hx});
    handles.push_back(handle);
  }
  const std::vector<G1> powers = eng.multi_exp_g1(terms);
  sk.k = powers[0] + powers[1];
  for (size_t i = 0; i < handles.size(); ++i)
    sk.kx.emplace(handles[i], powers[i + 2]);
  return sk;
}

EncryptionResult encrypt(const Group& grp, const OwnerMasterKey& mk,
                         const std::string& ct_id, const GT& message,
                         const LsssMatrix& policy,
                         const std::map<std::string, AuthorityPublicKey>& authority_pks,
                         const std::map<std::string, PublicAttributeKey>& attribute_pks,
                         crypto::Drbg& rng) {
  if (policy.rows() == 0) throw SchemeError("encrypt: empty policy");

  // Resolve involved authorities and check key-version coherence.
  std::set<std::string> involved;
  for (const Attribute& a : policy.row_attributes()) involved.insert(a.aid);

  Ciphertext ct;
  ct.id = ct_id;
  ct.owner_id = mk.owner_id;
  ct.policy = policy;

  GT blind = grp.gt_one();
  for (const std::string& aid : involved) {
    const auto it = authority_pks.find(aid);
    if (it == authority_pks.end())
      throw SchemeError("encrypt: missing authority public key for '" + aid + "'");
    blind = blind * it->second.e_gg_alpha;
    ct.versions.emplace(aid, it->second.version);
  }

  const Zr s = grp.zr_nonzero_random(rng);
  const std::vector<Zr> lambda = policy.share(grp, s, rng);
  CryptoEngine& eng = CryptoEngine::for_group(grp);

  // C = m * (prod_k e(g,g)^{alpha_k})^s,  C' = g^{beta*s}. The blind is
  // fixed per authority set, so its table is cached across encryptions.
  ct.c = message * eng.multi_exp_gt({{blind, s}})[0];
  const Zr beta_s = mk.beta * s;
  ct.c_prime = grp.g_pow(beta_s);

  // C_i = g^{r*lambda_i} * PK_{rho(i)}^{-beta*s}: validate and collect
  // the per-row exponents serially, then submit both batches.
  std::vector<Zr> gen_exps;
  std::vector<CryptoEngine::G1Term> pk_terms;
  gen_exps.reserve(policy.rows());
  pk_terms.reserve(policy.rows());
  for (int i = 0; i < policy.rows(); ++i) {
    const Attribute& attr = policy.row_attribute(i);
    const PublicAttributeKey& pk = require_attribute_pk(attribute_pks, attr.qualified());
    if (pk.version != ct.versions.at(attr.aid))
      throw SchemeError("encrypt: attribute key version mismatch for '" +
                        attr.qualified() + "'");
    gen_exps.push_back(mk.r * lambda[i]);
    pk_terms.push_back({pk.key, beta_s});
  }
  const std::vector<G1> gen_parts = eng.g_pow_batch(gen_exps);
  const std::vector<G1> pk_parts = eng.multi_exp_g1(pk_terms);
  ct.ci.reserve(policy.rows());
  for (int i = 0; i < policy.rows(); ++i)
    ct.ci.push_back(gen_parts[i] + pk_parts[i].neg());

  return {std::move(ct), EncryptionRecord{ct_id, s}};
}

namespace {

// Shared precondition checks for decrypt / can_decrypt. Returns the
// reconstruction coefficients, or nullopt with `error` filled in.
std::optional<std::vector<lsss::ReconCoeff>> decryption_plan(
    const Group& grp, const Ciphertext& ct,
    const std::map<std::string, UserSecretKey>& secret_keys, std::string* error) {
  std::set<Attribute> have;
  for (const std::string& aid : ct.involved_authorities()) {
    const auto it = secret_keys.find(aid);
    if (it == secret_keys.end()) {
      *error = "decrypt: no secret key from involved authority '" + aid + "'";
      return std::nullopt;
    }
    const UserSecretKey& sk = it->second;
    if (sk.aid != aid) {
      *error = "decrypt: secret key map mislabeled for '" + aid + "'";
      return std::nullopt;
    }
    if (sk.owner_id != ct.owner_id) {
      *error = "decrypt: secret key issued for owner '" + sk.owner_id +
               "' cannot decrypt ciphertext of owner '" + ct.owner_id + "'";
      return std::nullopt;
    }
    if (sk.version != ct.versions.at(aid)) {
      *error = "decrypt: key version " + std::to_string(sk.version) +
               " does not match ciphertext version " +
               std::to_string(ct.versions.at(aid)) + " for authority '" + aid + "'";
      return std::nullopt;
    }
    for (const Attribute& a : sk.attributes()) have.insert(a);
  }

  auto coeffs = ct.policy.reconstruction(grp, have);
  if (!coeffs) {
    *error = "decrypt: attribute set does not satisfy the access structure";
    return std::nullopt;
  }
  return coeffs;
}

}  // namespace

bool can_decrypt(const Group& grp, const Ciphertext& ct,
                 const std::map<std::string, UserSecretKey>& secret_keys) {
  std::string error;
  return decryption_plan(grp, ct, secret_keys, &error).has_value();
}

GT decrypt(const Group& grp, const Ciphertext& ct, const UserPublicKey& user,
           const std::map<std::string, UserSecretKey>& secret_keys) {
  std::string error;
  const auto coeffs = decryption_plan(grp, ct, secret_keys, &error);
  if (!coeffs) throw SchemeError(error);

  const std::set<std::string> involved = ct.involved_authorities();
  const Zr n_a = grp.zr_from_u64(involved.size());
  CryptoEngine& eng = CryptoEngine::for_group(grp);

  // The whole decryption is ONE multi-pairing product: the denominator
  // rows (e(PK_UID, C_i) * e(C', K_{rho(i)}))^{w_i * n_A} and the
  // numerator terms prod_k e(C', K_{UID,AID_k}) folded with a negated
  // argument (e(a, -b) is exactly e(a, b)^{-1}). The 2l + N_A pairings
  // — the decryption bottleneck (DESIGN.md sections 5, 12) — run their
  // Miller loops in parallel and share a single final exponentiation;
  // the repeated first arguments (PK_UID across rows, C' everywhere)
  // hit the engine's line-table cache.
  std::vector<CryptoEngine::PairTerm> terms;
  std::vector<Zr> exps;
  terms.reserve(2 * coeffs->size() + involved.size());
  exps.reserve(2 * coeffs->size() + involved.size());
  for (const auto& [row, w] : *coeffs) {
    const Attribute& attr = ct.policy.row_attribute(row);
    const UserSecretKey& sk = secret_keys.at(attr.aid);
    const auto kx = sk.kx.find(attr.qualified());
    if (kx == sk.kx.end())
      throw SchemeError("decrypt: secret key lacks K_x for '" + attr.qualified() + "'");
    const Zr e = w * n_a;
    terms.push_back({user.pk, ct.ci[row]});
    terms.push_back({ct.c_prime, kx->second});
    exps.push_back(e);
    exps.push_back(e);
  }
  const Zr one = grp.zr_one();
  for (const std::string& aid : involved) {
    terms.push_back({ct.c_prime, secret_keys.at(aid).k.neg()});
    exps.push_back(one);
  }
  // C * denominator / numerator = m.
  return ct.c * eng.pairing_power_product(terms, exps);
}

ReKeyResult aa_rekey(const Group& grp, const AuthorityVersionKey& vk,
                     crypto::Drbg& rng) {
  Zr fresh = grp.zr_nonzero_random(rng);
  while (fresh == vk.alpha) fresh = grp.zr_nonzero_random(rng);
  return {AuthorityVersionKey{vk.aid, vk.version + 1, fresh}};
}

UserSecretKey aa_regenerate_key(const Group& grp, const AuthorityVersionKey& new_vk,
                                const OwnerSecretShare& owner, const UserPublicKey& user,
                                const std::set<std::string>& remaining_attribute_names) {
  return aa_keygen(grp, new_vk, owner, user, remaining_attribute_names);
}

UpdateKey aa_make_update_key(const Group& grp, const AuthorityVersionKey& old_vk,
                             const AuthorityVersionKey& new_vk,
                             const OwnerSecretShare& owner) {
  if (old_vk.aid != new_vk.aid)
    throw SchemeError("aa_make_update_key: authority mismatch");
  if (new_vk.version != old_vk.version + 1)
    throw SchemeError("aa_make_update_key: non-consecutive versions");
  UpdateKey uk;
  uk.aid = old_vk.aid;
  uk.owner_id = owner.owner_id;
  uk.from_version = old_vk.version;
  uk.to_version = new_vk.version;
  // UK1 = (g^{1/beta})^{alpha' - alpha}, UK2 = alpha'/alpha.
  uk.uk1 = owner.g_inv_beta.mul(new_vk.alpha - old_vk.alpha);
  uk.uk2 = new_vk.alpha * old_vk.alpha.inverse();
  return uk;
}

UserSecretKey apply_update_to_secret_key(const Group& grp, const UserSecretKey& sk,
                                         const UpdateKey& uk) {
  (void)grp;
  if (sk.aid != uk.aid) throw SchemeError("key update: authority mismatch");
  if (sk.owner_id != uk.owner_id) throw SchemeError("key update: owner mismatch");
  if (sk.version != uk.from_version)
    throw SchemeError("key update: key at version " + std::to_string(sk.version) +
                      ", update expects " + std::to_string(uk.from_version));
  UserSecretKey out = sk;
  out.version = uk.to_version;
  out.k = sk.k + uk.uk1;
  for (auto& [handle, key] : out.kx) key = key.mul(uk.uk2);
  return out;
}

AuthorityPublicKey apply_update_to_authority_pk(const Group& grp,
                                                const AuthorityPublicKey& pk,
                                                const UpdateKey& uk) {
  (void)grp;
  if (pk.aid != uk.aid) throw SchemeError("authority pk update: authority mismatch");
  if (pk.version != uk.from_version)
    throw SchemeError("authority pk update: version mismatch");
  return {pk.aid, uk.to_version, pk.e_gg_alpha.pow(uk.uk2)};
}

PublicAttributeKey apply_update_to_attribute_pk(const Group& grp,
                                                const PublicAttributeKey& pk,
                                                const UpdateKey& uk) {
  (void)grp;
  if (pk.attr.aid != uk.aid) throw SchemeError("attribute pk update: authority mismatch");
  if (pk.version != uk.from_version)
    throw SchemeError("attribute pk update: version mismatch");
  return {pk.attr, uk.to_version, pk.key.mul(uk.uk2)};
}

UpdateInfo owner_update_info(const Group& grp, const OwnerMasterKey& mk,
                             const EncryptionRecord& record, const Ciphertext& ct,
                             const std::map<std::string, PublicAttributeKey>& old_attribute_pks,
                             const std::map<std::string, PublicAttributeKey>& new_attribute_pks,
                             const std::string& aid) {
  (void)grp;
  if (record.ct_id != ct.id) throw SchemeError("owner_update_info: record/ciphertext mismatch");
  if (ct.owner_id != mk.owner_id) throw SchemeError("owner_update_info: foreign ciphertext");

  UpdateInfo ui;
  ui.aid = aid;
  ui.owner_id = mk.owner_id;
  ui.ct_id = ct.id;
  ui.from_version = ct.versions.at(aid);
  ui.to_version = ui.from_version + 1;

  const Zr beta_s = mk.beta * record.s;
  for (const lsss::Attribute& attr : ct.policy.row_attributes()) {
    if (attr.aid != aid) continue;
    const std::string handle = attr.qualified();
    const auto old_it = old_attribute_pks.find(handle);
    const auto new_it = new_attribute_pks.find(handle);
    if (old_it == old_attribute_pks.end() || new_it == new_attribute_pks.end())
      throw SchemeError("owner_update_info: missing attribute key for '" + handle + "'");
    if (new_it->second.version != ui.to_version)
      throw SchemeError("owner_update_info: new attribute key has wrong version");
    // UI_x = (PK_x / PK'_x)^{beta*s}.
    ui.ui.emplace(handle, (old_it->second.key - new_it->second.key).mul(beta_s));
  }
  return ui;
}

void reencrypt(const Group& grp, Ciphertext* ct, const UpdateKey& uk,
               const UpdateInfo& ui) {
  if (ct == nullptr) throw SchemeError("reencrypt: null ciphertext");
  if (uk.aid != ui.aid || uk.to_version != ui.to_version)
    throw SchemeError("reencrypt: update key / update info mismatch");
  if (ui.ct_id != ct->id) throw SchemeError("reencrypt: update info for another ciphertext");
  if (uk.owner_id != ct->owner_id) throw SchemeError("reencrypt: owner mismatch");
  const auto ver = ct->versions.find(uk.aid);
  if (ver == ct->versions.end())
    throw SchemeError("reencrypt: ciphertext does not involve authority '" + uk.aid + "'");
  if (ver->second != uk.from_version)
    throw SchemeError("reencrypt: ciphertext at version " + std::to_string(ver->second) +
                      ", update expects " + std::to_string(uk.from_version));

  // C~ = C * e(UK1, C') — through the engine, so the epoch's shared UK1
  // hits the pairing line-table cache (CloudServer warms it before
  // fanning slots across the pool).
  ct->c = ct->c * CryptoEngine::for_group(grp).pair(uk.uk1, ct->c_prime);
  // C~_i = C_i * UI_{rho(i)} for rows labeled by this authority.
  for (int i = 0; i < ct->policy.rows(); ++i) {
    const lsss::Attribute& attr = ct->policy.row_attribute(i);
    if (attr.aid != uk.aid) continue;
    const auto it = ui.ui.find(attr.qualified());
    if (it == ui.ui.end())
      throw SchemeError("reencrypt: update info lacks UI for '" + attr.qualified() + "'");
    ct->ci[i] = ct->ci[i] + it->second;
  }
  ver->second = uk.to_version;
}

}  // namespace maabe::abe
