// The Yang-Jia multi-authority CP-ABE scheme (ICDCS 2012, Section V).
//
// Stateless algorithm layer: every function is a pure mapping from keys
// to keys/ciphertexts. Entity state (who holds which key, channels,
// storage) lives in the cloud/ layer.
//
// Algorithm inventory (paper Definition 3):
//   Setup      -> ca_register_user / (AIDs are plain strings)
//   OwnerGen   -> owner_gen + owner_share
//   AAGen      -> aa_setup + aa_attribute_key
//   KeyGen     -> aa_public_key (owner side) + aa_keygen (user side)
//   Encrypt    -> encrypt
//   Decrypt    -> decrypt
//   ReKey      -> aa_rekey + aa_make_update_key + apply_update_* +
//                 owner_update_info
//   ReEncrypt  -> reencrypt
#pragma once

#include "abe/types.h"
#include "crypto/drbg.h"

namespace maabe::abe {

// ------------------------------------------------------------ Setup --

/// CA side of Setup: authenticates a user, assigns the global UID and
/// creates PK_UID = g^u. The secret exponent u is returned through
/// `u_out` for the CA's archive; it is not needed for decryption.
UserPublicKey ca_register_user(const pairing::Group& grp, const std::string& uid,
                               crypto::Drbg& rng, pairing::Zr* u_out = nullptr);

// --------------------------------------------------------- OwnerGen --

/// Owner's master key MK_o = {beta, r}.
OwnerMasterKey owner_gen(const pairing::Group& grp, const std::string& owner_id,
                         crypto::Drbg& rng);

/// SK_o = {g^{1/beta}, r/beta}, shared with every AA.
OwnerSecretShare owner_share(const pairing::Group& grp, const OwnerMasterKey& mk);

// ------------------------------------------------------------ AAGen --

/// Authority setup: fresh version key alpha_AID (version 1).
AuthorityVersionKey aa_setup(const pairing::Group& grp, const std::string& aid,
                             crypto::Drbg& rng);

/// PK_{x,AID} = g^{alpha * H(x)} for attribute `name` under this AA.
PublicAttributeKey aa_attribute_key(const pairing::Group& grp,
                                    const AuthorityVersionKey& vk,
                                    const std::string& name);

// ----------------------------------------------------------- KeyGen --

/// PK_{o,AID} = e(g,g)^{alpha_AID}, sent to owners for encryption.
AuthorityPublicKey aa_public_key(const pairing::Group& grp,
                                 const AuthorityVersionKey& vk);

/// SK_{UID,AID}: issues keys for `attribute_names` (names local to this
/// AA) to the user, bound to the owner via SK_o.
UserSecretKey aa_keygen(const pairing::Group& grp, const AuthorityVersionKey& vk,
                        const OwnerSecretShare& owner, const UserPublicKey& user,
                        const std::set<std::string>& attribute_names);

// ---------------------------------------------------------- Encrypt --

struct EncryptionResult {
  Ciphertext ct;
  EncryptionRecord record;  ///< Owner keeps this for future re-keying.
};

/// Encrypts GT element `message` under `policy`.
/// `authority_pks` is keyed by AID and must cover every authority in the
/// policy; `attribute_pks` is keyed by qualified attribute handle and
/// must cover every row attribute. All keys must share one version per
/// authority. Throws SchemeError on missing/mismatched material.
EncryptionResult encrypt(const pairing::Group& grp, const OwnerMasterKey& mk,
                         const std::string& ct_id, const pairing::GT& message,
                         const lsss::LsssMatrix& policy,
                         const std::map<std::string, AuthorityPublicKey>& authority_pks,
                         const std::map<std::string, PublicAttributeKey>& attribute_pks,
                         crypto::Drbg& rng);

// ---------------------------------------------------------- Decrypt --

/// Decrypts with the user's per-authority secret keys (keyed by AID).
/// Requires a key from every involved authority, version agreement with
/// the ciphertext, and an attribute set satisfying the access structure.
/// Throws SchemeError otherwise.
pairing::GT decrypt(const pairing::Group& grp, const Ciphertext& ct,
                    const UserPublicKey& user,
                    const std::map<std::string, UserSecretKey>& secret_keys);

/// True when `secret_keys` can decrypt `ct` (without doing the pairings).
bool can_decrypt(const pairing::Group& grp, const Ciphertext& ct,
                 const std::map<std::string, UserSecretKey>& secret_keys);

// ------------------------------------------------------------ ReKey --

struct ReKeyResult {
  AuthorityVersionKey new_vk;  ///< alpha', version+1.
};

/// Phase 1 step 1 (AA): draw the fresh version key alpha'.
ReKeyResult aa_rekey(const pairing::Group& grp, const AuthorityVersionKey& vk,
                     crypto::Drbg& rng);

/// Regenerates the revoked user's key under alpha' with its reduced
/// attribute set `remaining_attribute_names` (S-tilde, a subset of the
/// previous set).
UserSecretKey aa_regenerate_key(const pairing::Group& grp,
                                const AuthorityVersionKey& new_vk,
                                const OwnerSecretShare& owner,
                                const UserPublicKey& user,
                                const std::set<std::string>& remaining_attribute_names);

/// UK_AID for one owner: UK1 = (g^{1/beta})^{alpha'-alpha}, UK2 = alpha'/alpha.
UpdateKey aa_make_update_key(const pairing::Group& grp,
                             const AuthorityVersionKey& old_vk,
                             const AuthorityVersionKey& new_vk,
                             const OwnerSecretShare& owner);

/// Non-revoked user's key update: K *= UK1, K_x ^= UK2.
UserSecretKey apply_update_to_secret_key(const pairing::Group& grp,
                                         const UserSecretKey& sk,
                                         const UpdateKey& uk);

/// Owner-side public-key updates: PK_{o,AID} ^= UK2, PK_{x,AID} ^= UK2.
AuthorityPublicKey apply_update_to_authority_pk(const pairing::Group& grp,
                                                const AuthorityPublicKey& pk,
                                                const UpdateKey& uk);
PublicAttributeKey apply_update_to_attribute_pk(const pairing::Group& grp,
                                                const PublicAttributeKey& pk,
                                                const UpdateKey& uk);

/// Owner-side UpdateInfo for one ciphertext: UI_x = (PK_x/PK'_x)^{beta*s}
/// for every policy attribute of the re-keyed authority.
UpdateInfo owner_update_info(const pairing::Group& grp, const OwnerMasterKey& mk,
                             const EncryptionRecord& record, const Ciphertext& ct,
                             const std::map<std::string, PublicAttributeKey>& old_attribute_pks,
                             const std::map<std::string, PublicAttributeKey>& new_attribute_pks,
                             const std::string& aid);

// -------------------------------------------------------- ReEncrypt --

/// Server-side proxy re-encryption (paper Eq. 2):
///   C  *= e(UK1, C')              (moves e(g,g)^{alpha*s} to alpha')
///   C_i *= UI_{rho(i)}            (only rows labeled by the AA)
/// The server never decrypts. Updates versions[aid] in place.
void reencrypt(const pairing::Group& grp, Ciphertext* ct, const UpdateKey& uk,
               const UpdateInfo& ui);

}  // namespace maabe::abe
