// Minimal length-prefixed binary wire format.
//
// Every persistent artefact in the library (keys, ciphertexts, stored
// files) serializes through Writer/Reader so that the size and
// communication benchmarks (paper Tables II-IV) measure real byte counts
// rather than in-memory sizes. Integers are big-endian; variable-size
// fields carry a u32 length prefix. Reader performs strict bounds checks
// and throws WireError on any malformed input.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace maabe {

class Writer {
 public:
  void u8(uint8_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  /// Fixed-size field; caller and reader must agree on the size.
  void raw(ByteView data);
  /// u32 length prefix followed by the bytes.
  void var_bytes(ByteView data);
  void str(std::string_view s);

  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}

  uint8_t u8();
  uint32_t u32();
  uint64_t u64();
  Bytes raw(size_t n);
  Bytes var_bytes();
  std::string str();

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  /// Throws WireError unless the whole buffer has been consumed.
  void expect_done() const;

 private:
  void need(size_t n) const;

  ByteView data_;
  size_t pos_ = 0;
};

}  // namespace maabe
