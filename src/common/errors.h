// Exception hierarchy for the maabe library.
//
// All library errors derive from maabe::Error. Callers that want a single
// catch-all can catch Error&; the subsystem-specific types exist so that
// tests and applications can distinguish "bad policy string" from
// "ciphertext corrupted" without string matching.
#pragma once

#include <stdexcept>
#include <string>

namespace maabe {

/// Base class of every exception thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Arithmetic or pairing-layer misuse: overflow of fixed bignum capacity,
/// division by zero, non-invertible element, malformed numeric encoding,
/// and group-element misuse (uninitialized elements, mixing elements or
/// exponents from different Groups). The math/ and pairing/ layers throw
/// only MathError (or WireError for decoding) — never the ABE layer's
/// SchemeError, which belongs to the scheme layers above them.
class MathError : public Error {
 public:
  using Error::Error;
};

/// Symmetric-crypto failures: bad key sizes, MAC verification failure.
class CryptoError : public Error {
 public:
  using Error::Error;
};

/// Access-policy failures: parse errors, duplicate attributes (the paper
/// requires an injective row-labeling function rho), empty policies.
class PolicyError : public Error {
 public:
  using Error::Error;
};

/// ABE-scheme misuse or failure: missing key material, attributes that do
/// not satisfy the access structure, key/ciphertext version mismatches.
/// Thrown by the abe/, baseline/, cloud/ and tools/ layers only.
class SchemeError : public Error {
 public:
  using Error::Error;
};

/// Serialization failures: truncated buffers, bad tags, range violations.
class WireError : public Error {
 public:
  using Error::Error;
};

/// Admission-control rejection outside the transport: a bounded work
/// queue (e.g. the CryptoEngine submission window) refused new work
/// instead of growing without bound. Callers treat this as retriable
/// backpressure, not data loss.
class OverloadError : public Error {
 public:
  using Error::Error;
};

/// Byte-transport failures (cloud/transport.h): lost or corrupted
/// frames, exhausted retry budgets, and reads refused while revocation
/// epochs are still parked in a pending queue. The kind distinguishes
/// the failure classes so tests and retry policies can react without
/// string matching.
class TransportError : public Error {
 public:
  enum class Kind {
    kLost,       ///< frame (or its acknowledgement) never arrived
    kChecksum,   ///< frame arrived but failed integrity verification
    kMalformed,  ///< frame structure invalid (bad magic, bad lengths)
    kExhausted,   ///< retry attempts or the send deadline ran out
    kDegraded,    ///< operation refused fail-closed (pending deliveries)
    kOverloaded,  ///< admission control rejected the op (bounded queue full)
  };
  TransportError(Kind kind, const std::string& what) : Error(what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

}  // namespace maabe
