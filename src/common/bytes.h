// Byte-string helpers shared by every subsystem.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace maabe {

using Bytes = std::vector<uint8_t>;
using ByteView = std::span<const uint8_t>;

/// Encodes `data` as lowercase hex.
std::string to_hex(ByteView data);

/// Decodes a hex string (upper or lower case, even length). Throws
/// WireError on malformed input.
Bytes from_hex(std::string_view hex);

/// Constant-time equality over byte strings of equal length; returns false
/// immediately (and without leaking contents) when lengths differ.
bool secure_equal(ByteView a, ByteView b);

/// Copies a std::string's bytes into a Bytes vector.
Bytes bytes_of(std::string_view s);

/// Interprets a byte string as text (for debugging / examples).
std::string string_of(ByteView b);

/// Concatenates byte strings.
Bytes concat(ByteView a, ByteView b);

}  // namespace maabe
