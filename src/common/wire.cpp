#include "common/wire.h"

#include "common/errors.h"

namespace maabe {

void Writer::u8(uint8_t v) { buf_.push_back(v); }

void Writer::u32(uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8)
    buf_.push_back(static_cast<uint8_t>(v >> shift));
}

void Writer::u64(uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    buf_.push_back(static_cast<uint8_t>(v >> shift));
}

void Writer::raw(ByteView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

void Writer::var_bytes(ByteView data) {
  if (data.size() > UINT32_MAX) throw WireError("var_bytes: field too large");
  u32(static_cast<uint32_t>(data.size()));
  raw(data);
}

void Writer::str(std::string_view s) {
  var_bytes(ByteView(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
}

void Reader::need(size_t n) const {
  if (data_.size() - pos_ < n) throw WireError("wire: truncated input");
}

uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

uint32_t Reader::u32() {
  need(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = v << 8 | data_[pos_++];
  return v;
}

uint64_t Reader::u64() {
  need(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | data_[pos_++];
  return v;
}

Bytes Reader::raw(size_t n) {
  need(n);
  Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

Bytes Reader::var_bytes() {
  const uint32_t n = u32();
  return raw(n);
}

std::string Reader::str() {
  const Bytes b = var_bytes();
  return std::string(b.begin(), b.end());
}

void Reader::expect_done() const {
  if (!done()) throw WireError("wire: trailing bytes after message");
}

}  // namespace maabe
