#include "common/bytes.h"

#include "common/errors.h"

namespace maabe {

namespace {

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(ByteView data) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw WireError("from_hex: odd-length hex string");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) throw WireError("from_hex: invalid hex digit");
    out.push_back(static_cast<uint8_t>(hi << 4 | lo));
  }
  return out;
}

bool secure_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

Bytes bytes_of(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string string_of(ByteView b) {
  return std::string(b.begin(), b.end());
}

Bytes concat(ByteView a, ByteView b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace maabe
