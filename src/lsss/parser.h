// Textual policy language.
//
// Grammar (case-insensitive keywords, '@' binds attribute to authority):
//
//   expr   := term ( OR term )*
//   term   := factor ( AND factor )*
//   factor := attribute | '(' expr ')' | INT 'of' '(' expr (',' expr)* ')'
//   attribute := ident '@' ident
//   ident  := [A-Za-z0-9_.:+-]+
//
// Examples:
//   "Doctor@MedOrg AND Researcher@TrialAdmin"
//   "(Engineer@IBM OR Engineer@Google) AND Member@JointProject"
//   "2of(CS@UnivA, EE@UnivB, Math@UnivC)"
#pragma once

#include <string_view>

#include "lsss/policy.h"

namespace maabe::lsss {

/// Parses a policy string; throws PolicyError with a position-annotated
/// message on syntax errors.
PolicyPtr parse_policy(std::string_view text);

}  // namespace maabe::lsss
