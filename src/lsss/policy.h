// Access-policy abstract syntax trees.
//
// A policy is a monotone boolean formula over authority-qualified
// attributes ("Doctor@MedOrg"), built from AND, OR and k-of-n threshold
// gates. The paper's scheme encrypts under any LSSS access structure;
// policies compile to LSSS matrices in matrix.h.
#pragma once

#include <compare>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace maabe::lsss {

/// An attribute together with the authority (AID) that manages it. The
/// paper stresses that the AID makes same-named attributes from
/// different authorities distinguishable.
struct Attribute {
  std::string name;
  std::string aid;

  /// Canonical "name@aid" form — the string fed to the random oracle
  /// H(x) and shown in policy strings.
  std::string qualified() const { return name + "@" + aid; }

  auto operator<=>(const Attribute&) const = default;
};

class PolicyNode;
using PolicyPtr = std::shared_ptr<const PolicyNode>;

/// Immutable policy tree node. Construct through the factories; shared
/// ownership makes subtree reuse cheap.
class PolicyNode {
 public:
  enum class Kind { kAttr, kAnd, kOr, kThreshold };

  static PolicyPtr attr(Attribute a);
  static PolicyPtr attr(std::string name, std::string aid);
  /// AND / OR over >= 1 children (a single child collapses to the child).
  static PolicyPtr and_of(std::vector<PolicyPtr> children);
  static PolicyPtr or_of(std::vector<PolicyPtr> children);
  /// k-of-n threshold gate; requires 1 <= k <= n. k=1 collapses to OR,
  /// k=n to AND.
  static PolicyPtr threshold(int k, std::vector<PolicyPtr> children);

  Kind kind() const { return kind_; }
  const Attribute& attribute() const;
  int threshold_k() const { return k_; }
  const std::vector<PolicyPtr>& children() const { return children_; }

  /// All leaf attributes, left-to-right (duplicates preserved).
  std::vector<Attribute> leaves() const;

  /// Set of authorities whose attributes appear in the policy.
  std::set<std::string> involved_authorities() const;

  /// Boolean-formula semantics — the reference oracle that the LSSS
  /// compilation must agree with (property-tested).
  bool satisfied_by(const std::set<Attribute>& have) const;

  /// Round-trippable textual form, e.g.
  /// "(Doctor@MedOrg AND Researcher@Trial) OR 2of(a@A, b@B, c@C)".
  std::string to_string() const;

 private:
  PolicyNode() = default;

  Kind kind_ = Kind::kAttr;
  Attribute attr_;
  int k_ = 0;
  std::vector<PolicyPtr> children_;
};

/// Rewrites every threshold gate into an OR of ANDs over its
/// C(n, k) satisfying combinations, yielding an AND/OR-only tree (the
/// shape the Lewko-Waters LSSS conversion consumes). Throws PolicyError
/// if the expansion would exceed `max_terms` combinations.
PolicyPtr expand_thresholds(const PolicyPtr& node, size_t max_terms = 4096);

}  // namespace maabe::lsss
