#include "lsss/matrix.h"

#include <algorithm>

#include "common/errors.h"

namespace maabe::lsss {

using math::Bignum;
using pairing::Group;
using pairing::Zr;

namespace {

// Guarded power for Vandermonde threshold columns.
int64_t checked_pow(int64_t base, int exp) {
  __int128 acc = 1;
  for (int i = 0; i < exp; ++i) {
    acc *= base;
    if (acc > (__int128(1) << 62))
      throw PolicyError("lsss: threshold gate too wide (Vandermonde power overflow)");
  }
  return static_cast<int64_t>(acc);
}

// Policy-tree -> matrix conversion state (see matrix.h for the rules).
struct Converter {
  std::vector<std::vector<int64_t>> rows;
  std::vector<Attribute> attrs;
  int counter = 1;

  void walk(const PolicyPtr& node, std::vector<int64_t> vec) {
    switch (node->kind()) {
      case PolicyNode::Kind::kAttr:
        rows.push_back(std::move(vec));
        attrs.push_back(node->attribute());
        return;
      case PolicyNode::Kind::kOr:
        for (const auto& c : node->children()) walk(c, vec);
        return;
      case PolicyNode::Kind::kAnd: {
        // n-ary AND folds right: AND(c1, ..., cn) = AND(c1, AND(c2, ...)).
        // Each binary AND appends one column.
        const auto& ch = node->children();
        std::vector<int64_t> left = vec;
        for (size_t i = 0; i + 1 < ch.size(); ++i) {
          left.resize(counter, 0);
          left.push_back(1);
          std::vector<int64_t> right(counter, 0);
          right.push_back(-1);
          ++counter;
          walk(ch[i], left);
          left = std::move(right);
        }
        walk(ch.back(), left);
        return;
      }
      case PolicyNode::Kind::kThreshold: {
        // Vandermonde insertion: child i gets (v, x_i, ..., x_i^{k-1}).
        const auto& ch = node->children();
        const int k = node->threshold_k();
        const int base_col = counter;
        counter += k - 1;
        for (size_t i = 0; i < ch.size(); ++i) {
          std::vector<int64_t> child = vec;
          child.resize(base_col, 0);
          child.resize(base_col + k - 1, 0);
          const int64_t x = static_cast<int64_t>(i) + 1;
          for (int j = 1; j <= k - 1; ++j) child[base_col + j - 1] = checked_pow(x, j);
          walk(ch[i], std::move(child));
        }
        return;
      }
    }
    throw PolicyError("lsss: corrupt node kind");
  }
};

Zr entry_to_zr(const Group& grp, int64_t e) {
  if (e >= 0) return grp.zr_from_u64(static_cast<uint64_t>(e));
  return grp.zr_from_u64(static_cast<uint64_t>(-e)).neg();
}

}  // namespace

LsssMatrix LsssMatrix::from_policy(const PolicyPtr& policy, bool allow_attribute_reuse,
                                   ThresholdMode mode) {
  if (!policy) throw PolicyError("lsss: null policy");
  const PolicyPtr compiled =
      mode == ThresholdMode::kExpand ? expand_thresholds(policy) : policy;

  Converter conv;
  conv.walk(compiled, std::vector<int64_t>{1});

  LsssMatrix out;
  out.width_ = conv.counter;
  out.matrix_ = std::move(conv.rows);
  out.row_attrs_ = std::move(conv.attrs);
  out.policy_text_ = policy->to_string();
  for (auto& row : out.matrix_) row.resize(out.width_, 0);

  if (!allow_attribute_reuse) {
    std::set<Attribute> seen;
    for (const auto& a : out.row_attrs_) {
      if (!seen.insert(a).second)
        throw PolicyError("lsss: attribute '" + a.qualified() +
                          "' appears more than once; the scheme requires an "
                          "injective row labeling (pass allow_attribute_reuse "
                          "to override)");
    }
  }
  return out;
}

void LsssMatrix::serialize(Writer& w) const {
  w.u32(static_cast<uint32_t>(matrix_.size()));
  w.u32(static_cast<uint32_t>(width_));
  for (const auto& row : matrix_) {
    for (int64_t e : row) {
      // Zigzag-style bias keeps the encoding sign-safe and fixed width.
      w.u64(static_cast<uint64_t>(e) + (uint64_t{1} << 63));
    }
  }
  for (const auto& a : row_attrs_) {
    w.str(a.name);
    w.str(a.aid);
  }
  w.str(policy_text_);
}

LsssMatrix LsssMatrix::deserialize(Reader& r) {
  LsssMatrix out;
  const uint32_t rows = r.u32();
  const uint32_t cols = r.u32();
  if (rows == 0 || cols == 0 || rows > 100000 || cols > 100000)
    throw WireError("lsss: implausible matrix dimensions");
  out.width_ = static_cast<int>(cols);
  out.matrix_.assign(rows, std::vector<int64_t>(cols, 0));
  for (auto& row : out.matrix_) {
    for (auto& e : row)
      e = static_cast<int64_t>(r.u64() - (uint64_t{1} << 63));
  }
  out.row_attrs_.reserve(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    Attribute a;
    a.name = r.str();
    a.aid = r.str();
    if (a.name.empty() || a.aid.empty()) throw WireError("lsss: empty attribute");
    out.row_attrs_.push_back(std::move(a));
  }
  out.policy_text_ = r.str();
  return out;
}

std::vector<Zr> LsssMatrix::share(const Group& grp, const Zr& s, crypto::Drbg& rng) const {
  // v = (s, y_2, ..., y_n).
  std::vector<Zr> v;
  v.reserve(width_);
  v.push_back(s);
  for (int i = 1; i < width_; ++i) v.push_back(grp.zr_random(rng));

  std::vector<Zr> shares;
  shares.reserve(matrix_.size());
  for (const auto& row : matrix_) {
    Zr acc = grp.zr_zero();
    for (int j = 0; j < width_; ++j) {
      if (row[j] == 0) continue;
      acc = acc + entry_to_zr(grp, row[j]) * v[j];
    }
    shares.push_back(acc);
  }
  return shares;
}

std::optional<std::vector<ReconCoeff>> LsssMatrix::reconstruction(
    const Group& grp, const std::set<Attribute>& have) const {
  // Select the rows the caller holds.
  std::vector<int> selected;
  for (int i = 0; i < rows(); ++i) {
    if (have.contains(row_attrs_[i])) selected.push_back(i);
  }
  if (selected.empty()) return std::nullopt;

  // Solve  M_S^T w = e_1  over Z_r: an n x k system (n = width_,
  // k = |selected|) with augmented column e_1.
  const int n = width_;
  const int k = static_cast<int>(selected.size());
  const Bignum& order = grp.order();

  // a[row][col]; col k is the augmented target.
  std::vector<std::vector<Bignum>> a(n, std::vector<Bignum>(k + 1));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) {
      const int64_t e = matrix_[selected[j]][i];
      a[i][j] = e >= 0
                    ? Bignum::mod(Bignum::from_u64(static_cast<uint64_t>(e)), order)
                    : Bignum::mod_sub(Bignum(),
                                      Bignum::mod(Bignum::from_u64(
                                                      static_cast<uint64_t>(-e)),
                                                  order),
                                      order);
    }
  }
  a[0][k] = Bignum::from_u64(1);

  // Gaussian elimination (any nonzero pivot works in a field).
  std::vector<int> pivot_col_of_row(n, -1);
  int rank = 0;
  for (int col = 0; col < k && rank < n; ++col) {
    int piv = -1;
    for (int r = rank; r < n; ++r) {
      if (!a[r][col].is_zero()) {
        piv = r;
        break;
      }
    }
    if (piv < 0) continue;
    std::swap(a[rank], a[piv]);
    const Bignum inv = Bignum::mod_inverse(a[rank][col], order);
    for (int j = col; j <= k; ++j) a[rank][j] = Bignum::mod_mul(a[rank][j], inv, order);
    for (int r = 0; r < n; ++r) {
      if (r == rank || a[r][col].is_zero()) continue;
      const Bignum f = a[r][col];
      for (int j = col; j <= k; ++j) {
        a[r][j] = Bignum::mod_sub(a[r][j], Bignum::mod_mul(f, a[rank][j], order), order);
      }
    }
    pivot_col_of_row[rank] = col;
    ++rank;
  }

  // Consistency: rows beyond the rank must have zero RHS.
  for (int r = rank; r < n; ++r) {
    if (!a[r][k].is_zero()) return std::nullopt;
  }

  // Back-substitute (already reduced): w[pivot_col] = rhs, free vars 0.
  std::vector<Bignum> w(k);
  for (int r = 0; r < rank; ++r) w[pivot_col_of_row[r]] = a[r][k];

  std::vector<ReconCoeff> out;
  for (int j = 0; j < k; ++j) {
    if (w[j].is_zero()) continue;
    out.push_back({selected[j], grp.zr_from_bignum(w[j])});
  }
  if (out.empty()) {
    // Unreachable for a consistent nonzero target; defensive.
    return std::nullopt;
  }
  return out;
}

}  // namespace maabe::lsss
