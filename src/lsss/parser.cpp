#include "lsss/parser.h"

#include <cctype>

#include "common/errors.h"

namespace maabe::lsss {

namespace {

struct Token {
  enum class Kind { kIdent, kInt, kAnd, kOr, kOf, kLParen, kRParen, kComma, kAt, kEnd };
  Kind kind;
  std::string text;
  size_t pos;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == ':' || c == '+' || c == '-';
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    const size_t start = pos_;
    if (pos_ >= text_.size()) {
      current_ = {Token::Kind::kEnd, "", start};
      return;
    }
    const char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      current_ = {Token::Kind::kLParen, "(", start};
      return;
    }
    if (c == ')') {
      ++pos_;
      current_ = {Token::Kind::kRParen, ")", start};
      return;
    }
    if (c == ',') {
      ++pos_;
      current_ = {Token::Kind::kComma, ",", start};
      return;
    }
    if (c == '@') {
      ++pos_;
      current_ = {Token::Kind::kAt, "@", start};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // An integer immediately followed by "of" (e.g. "2of(") splits into
      // INT + OF; an integer followed by other ident chars is an ident
      // (attribute names may start with digits only via the '@' context,
      // so keep it simple: digits then optional "of").
      size_t end = pos_;
      while (end < text_.size() && std::isdigit(static_cast<unsigned char>(text_[end]))) ++end;
      const bool of_follows = end + 1 < text_.size() &&
                              std::tolower(static_cast<unsigned char>(text_[end])) == 'o' &&
                              std::tolower(static_cast<unsigned char>(text_[end + 1])) == 'f';
      if (of_follows || end >= text_.size() || !ident_char(text_[end])) {
        current_ = {Token::Kind::kInt, std::string(text_.substr(pos_, end - pos_)), start};
        pos_ = end;
        return;
      }
      // fall through to ident
    }
    if (ident_char(c)) {
      size_t end = pos_;
      while (end < text_.size() && ident_char(text_[end])) ++end;
      const std::string word(text_.substr(pos_, end - pos_));
      pos_ = end;
      const std::string lw = lower(word);
      if (lw == "and") {
        current_ = {Token::Kind::kAnd, word, start};
      } else if (lw == "or") {
        current_ = {Token::Kind::kOr, word, start};
      } else if (lw == "of") {
        current_ = {Token::Kind::kOf, word, start};
      } else {
        current_ = {Token::Kind::kIdent, word, start};
      }
      return;
    }
    throw PolicyError("policy parse error: unexpected character '" + std::string(1, c) +
                      "' at position " + std::to_string(start));
  }

  std::string_view text_;
  size_t pos_ = 0;
  Token current_{Token::Kind::kEnd, "", 0};
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lex_(text) {}

  PolicyPtr parse() {
    PolicyPtr p = expr();
    expect(Token::Kind::kEnd, "end of input");
    return p;
  }

 private:
  [[noreturn]] void fail(const std::string& expected) {
    const Token& t = lex_.peek();
    throw PolicyError("policy parse error: expected " + expected + " at position " +
                      std::to_string(t.pos) +
                      (t.text.empty() ? "" : " (found '" + t.text + "')"));
  }

  Token expect(Token::Kind k, const std::string& what) {
    if (lex_.peek().kind != k) fail(what);
    return lex_.take();
  }

  PolicyPtr expr() {
    std::vector<PolicyPtr> terms{term()};
    while (lex_.peek().kind == Token::Kind::kOr) {
      lex_.take();
      terms.push_back(term());
    }
    return PolicyNode::or_of(std::move(terms));
  }

  PolicyPtr term() {
    std::vector<PolicyPtr> factors{factor()};
    while (lex_.peek().kind == Token::Kind::kAnd) {
      lex_.take();
      factors.push_back(factor());
    }
    return PolicyNode::and_of(std::move(factors));
  }

  PolicyPtr factor() {
    const Token& t = lex_.peek();
    if (t.kind == Token::Kind::kLParen) {
      lex_.take();
      PolicyPtr inner = expr();
      expect(Token::Kind::kRParen, "')'");
      return inner;
    }
    if (t.kind == Token::Kind::kInt) {
      const Token k = lex_.take();
      expect(Token::Kind::kOf, "'of' after threshold count");
      expect(Token::Kind::kLParen, "'(' after 'of'");
      std::vector<PolicyPtr> children{expr()};
      while (lex_.peek().kind == Token::Kind::kComma) {
        lex_.take();
        children.push_back(expr());
      }
      expect(Token::Kind::kRParen, "')' closing threshold list");
      int kv = 0;
      try {
        kv = std::stoi(k.text);
      } catch (const std::exception&) {
        throw PolicyError("policy parse error: bad threshold count '" + k.text + "'");
      }
      return PolicyNode::threshold(kv, std::move(children));
    }
    if (t.kind == Token::Kind::kIdent) {
      const Token name = lex_.take();
      expect(Token::Kind::kAt, "'@' after attribute name");
      const Token aid = expect(Token::Kind::kIdent, "authority id after '@'");
      return PolicyNode::attr(name.text, aid.text);
    }
    fail("attribute, '(' or threshold");
  }

  Lexer lex_;
};

}  // namespace

PolicyPtr parse_policy(std::string_view text) { return Parser(text).parse(); }

}  // namespace maabe::lsss
