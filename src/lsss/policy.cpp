#include "lsss/policy.h"

#include "common/errors.h"

namespace maabe::lsss {

namespace {

PolicyPtr make_node(PolicyNode&& node) {
  return std::make_shared<const PolicyNode>(std::move(node));
}

}  // namespace

// PolicyNode has a private default constructor; the factories assemble
// instances through a friend-free trick: a mutable local built via the
// private ctor accessible from static member functions.

PolicyPtr PolicyNode::attr(Attribute a) {
  if (a.name.empty() || a.aid.empty())
    throw PolicyError("policy: attribute name and authority must be non-empty");
  PolicyNode n;
  n.kind_ = Kind::kAttr;
  n.attr_ = std::move(a);
  return make_node(std::move(n));
}

PolicyPtr PolicyNode::attr(std::string name, std::string aid) {
  return attr(Attribute{std::move(name), std::move(aid)});
}

PolicyPtr PolicyNode::and_of(std::vector<PolicyPtr> children) {
  if (children.empty()) throw PolicyError("policy: AND requires children");
  for (const auto& c : children)
    if (!c) throw PolicyError("policy: null child");
  if (children.size() == 1) return children.front();
  PolicyNode n;
  n.kind_ = Kind::kAnd;
  n.children_ = std::move(children);
  return make_node(std::move(n));
}

PolicyPtr PolicyNode::or_of(std::vector<PolicyPtr> children) {
  if (children.empty()) throw PolicyError("policy: OR requires children");
  for (const auto& c : children)
    if (!c) throw PolicyError("policy: null child");
  if (children.size() == 1) return children.front();
  PolicyNode n;
  n.kind_ = Kind::kOr;
  n.children_ = std::move(children);
  return make_node(std::move(n));
}

PolicyPtr PolicyNode::threshold(int k, std::vector<PolicyPtr> children) {
  const int n = static_cast<int>(children.size());
  if (n == 0) throw PolicyError("policy: threshold requires children");
  for (const auto& c : children)
    if (!c) throw PolicyError("policy: null child");
  if (k < 1 || k > n) throw PolicyError("policy: threshold k out of range");
  if (k == 1) return or_of(std::move(children));
  if (k == n) return and_of(std::move(children));
  PolicyNode node;
  node.kind_ = Kind::kThreshold;
  node.k_ = k;
  node.children_ = std::move(children);
  return make_node(std::move(node));
}

const Attribute& PolicyNode::attribute() const {
  if (kind_ != Kind::kAttr) throw PolicyError("policy: not an attribute node");
  return attr_;
}

std::vector<Attribute> PolicyNode::leaves() const {
  std::vector<Attribute> out;
  if (kind_ == Kind::kAttr) {
    out.push_back(attr_);
    return out;
  }
  for (const auto& c : children_) {
    const auto sub = c->leaves();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::set<std::string> PolicyNode::involved_authorities() const {
  std::set<std::string> out;
  for (const auto& a : leaves()) out.insert(a.aid);
  return out;
}

bool PolicyNode::satisfied_by(const std::set<Attribute>& have) const {
  switch (kind_) {
    case Kind::kAttr:
      return have.contains(attr_);
    case Kind::kAnd:
      for (const auto& c : children_)
        if (!c->satisfied_by(have)) return false;
      return true;
    case Kind::kOr:
      for (const auto& c : children_)
        if (c->satisfied_by(have)) return true;
      return false;
    case Kind::kThreshold: {
      int count = 0;
      for (const auto& c : children_)
        if (c->satisfied_by(have)) ++count;
      return count >= k_;
    }
  }
  throw PolicyError("policy: corrupt node kind");
}

std::string PolicyNode::to_string() const {
  switch (kind_) {
    case Kind::kAttr:
      return attr_.qualified();
    case Kind::kAnd:
    case Kind::kOr: {
      const char* op = kind_ == Kind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += op;
        out += children_[i]->to_string();
      }
      out += ")";
      return out;
    }
    case Kind::kThreshold: {
      std::string out = std::to_string(k_) + "of(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i]->to_string();
      }
      out += ")";
      return out;
    }
  }
  throw PolicyError("policy: corrupt node kind");
}

namespace {

// Enumerates k-subsets of [0, n) and builds OR-of-AND combinations.
void combinations(int n, int k, std::vector<int>& current, int start,
                  const std::vector<PolicyPtr>& children,
                  std::vector<PolicyPtr>* terms, size_t max_terms) {
  if (static_cast<int>(current.size()) == k) {
    std::vector<PolicyPtr> conj;
    conj.reserve(k);
    for (int idx : current) conj.push_back(children[idx]);
    terms->push_back(PolicyNode::and_of(std::move(conj)));
    if (terms->size() > max_terms)
      throw PolicyError("policy: threshold expansion too large");
    return;
  }
  for (int i = start; i <= n - (k - static_cast<int>(current.size())); ++i) {
    current.push_back(i);
    combinations(n, k, current, i + 1, children, terms, max_terms);
    current.pop_back();
  }
}

}  // namespace

PolicyPtr expand_thresholds(const PolicyPtr& node, size_t max_terms) {
  if (!node) throw PolicyError("policy: null node");
  switch (node->kind()) {
    case PolicyNode::Kind::kAttr:
      return node;
    case PolicyNode::Kind::kAnd:
    case PolicyNode::Kind::kOr: {
      std::vector<PolicyPtr> expanded;
      expanded.reserve(node->children().size());
      for (const auto& c : node->children())
        expanded.push_back(expand_thresholds(c, max_terms));
      return node->kind() == PolicyNode::Kind::kAnd
                 ? PolicyNode::and_of(std::move(expanded))
                 : PolicyNode::or_of(std::move(expanded));
    }
    case PolicyNode::Kind::kThreshold: {
      std::vector<PolicyPtr> expanded;
      expanded.reserve(node->children().size());
      for (const auto& c : node->children())
        expanded.push_back(expand_thresholds(c, max_terms));
      std::vector<PolicyPtr> terms;
      std::vector<int> current;
      combinations(static_cast<int>(expanded.size()), node->threshold_k(),
                   current, 0, expanded, &terms, max_terms);
      return PolicyNode::or_of(std::move(terms));
    }
  }
  throw PolicyError("policy: corrupt node kind");
}

}  // namespace maabe::lsss
