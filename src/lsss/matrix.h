// Linear secret-sharing scheme (LSSS) matrices.
//
// Compiles an AND/OR/threshold policy tree into a share-generating
// matrix M (l x n over Z_r) with a row-labeling function rho.
//
// AND/OR gates use the Lewko-Waters conversion (EUROCRYPT 2011,
// Appendix G):
//   * the root starts with vector (1), counter c = 1;
//   * an OR node passes its vector to every child;
//   * an AND node gives child 1 the vector padded to length c with 1
//     appended, child 2 the vector (0,...,0,-1) of length c+1, c += 1.
//
// Threshold gates have two compilation strategies:
//   * kDirect (default): the Vandermonde insertion construction — a
//     k-of-n gate with parent vector v allocates k-1 fresh columns and
//     hands child i the vector (v, x_i, x_i^2, ..., x_i^{k-1}) with
//     x_i = i. Any k children solve sum w_i = 1, sum w_i x_i^j = 0
//     (Vandermonde); fewer than k cannot. Matrix stays l x O(c) and the
//     row labeling stays injective, so threshold policies remain within
//     the paper's stated rho restriction.
//   * kExpand: rewrite k-of-n into the OR of all C(n,k) AND-combinations
//     first (kept for comparison/ablation; necessarily repeats
//     attributes, requiring the rho-reuse opt-in).
//
// Shares of a secret s are lambda_i = M_i . v for v = (s, y_2..y_n);
// an attribute set S is authorized iff (1,0,...,0) lies in the span of
// the rows labeled by S, and the reconstruction coefficients w_i with
// sum w_i lambda_i = s come from Gaussian elimination over Z_r.
#pragma once

#include <cstdint>
#include <optional>

#include "common/wire.h"
#include "lsss/policy.h"
#include "pairing/group.h"

namespace maabe::lsss {

/// One reconstruction coefficient: w for the share at `row`.
struct ReconCoeff {
  int row;
  pairing::Zr w;
};

/// How threshold gates compile (see file comment).
enum class ThresholdMode { kDirect, kExpand };

class LsssMatrix {
 public:
  /// Compiles a policy. Entries are signed integers: {-1,0,1} from
  /// AND/OR gates, Vandermonde powers (up to n^{k-1}) from direct
  /// threshold gates. Throws PolicyError when rho would repeat an
  /// attribute and `allow_attribute_reuse` is false (the paper's
  /// injectivity rule), or when a threshold gate's powers would not fit
  /// an int64.
  static LsssMatrix from_policy(const PolicyPtr& policy,
                                bool allow_attribute_reuse = false,
                                ThresholdMode mode = ThresholdMode::kDirect);

  int rows() const { return static_cast<int>(matrix_.size()); }
  int cols() const { return width_; }
  const std::vector<int64_t>& row(int i) const { return matrix_[i]; }
  const Attribute& row_attribute(int i) const { return row_attrs_[i]; }
  const std::vector<Attribute>& row_attributes() const { return row_attrs_; }
  const std::string& policy_text() const { return policy_text_; }

  /// lambda_i = M_i . (s, y_2, ..., y_n) with fresh random y's.
  std::vector<pairing::Zr> share(const pairing::Group& grp, const pairing::Zr& s,
                                 crypto::Drbg& rng) const;

  /// Reconstruction coefficients over the rows whose attribute is in
  /// `have`; nullopt when `have` does not satisfy the access structure.
  /// Rows with zero coefficient are omitted.
  std::optional<std::vector<ReconCoeff>> reconstruction(
      const pairing::Group& grp, const std::set<Attribute>& have) const;

  bool satisfiable(const pairing::Group& grp, const std::set<Attribute>& have) const {
    return reconstruction(grp, have).has_value();
  }

  /// Wire format: explicit matrix + row labels + policy text (no
  /// re-parsing on load, so ciphertexts stay self-contained).
  void serialize(Writer& w) const;
  static LsssMatrix deserialize(Reader& r);

 private:
  std::vector<std::vector<int64_t>> matrix_;
  std::vector<Attribute> row_attrs_;
  int width_ = 0;
  std::string policy_text_;
};

}  // namespace maabe::lsss
