// Baseline: Lewko-Waters decentralized CP-ABE (EUROCRYPT 2011),
// prime-order random-oracle variant — the scheme the paper compares
// against in Tables II-IV and Figures 3-4.
//
// Construction (attributes are globally unique "name@aid" handles; an
// authority is simply the manager of a set of attributes):
//   AuthoritySetup: per attribute x: alpha_x, y_x <- Z_r;
//                   publish e(g,g)^{alpha_x}, g^{y_x}.
//   KeyGen(GID,x):  K_x = g^{alpha_x} * H(GID)^{y_x}    (H: {0,1}* -> G)
//   Encrypt(m,(M,rho)): s <- Z_r, shares lambda_i of s and omega_i of 0;
//                   C0 = m * e(g,g)^s and per row i with fresh r_i:
//                   C1_i = e(g,g)^{lambda_i} * e(g,g)^{alpha_rho(i) r_i}
//                   C2_i = g^{r_i}
//                   C3_i = g^{y_rho(i) r_i} * g^{omega_i}
//   Decrypt(GID):   per used row,
//                   C1_i * e(H(GID), C3_i) / e(K_rho(i), C2_i)
//                     = e(g,g)^{lambda_i} * e(H(GID),g)^{omega_i};
//                   combine with reconstruction coefficients to get
//                   e(g,g)^s, then m = C0 / e(g,g)^s.
//
// Unlike the paper's scheme there is no owner key and no revocation
// support; keys are global (not per-owner).
#pragma once

#include <map>

#include "crypto/drbg.h"
#include "lsss/matrix.h"

namespace maabe::baseline {

/// Authority-held secrets: (alpha_x, y_x) per managed attribute.
struct LewkoAuthorityKeys {
  std::string aid;
  /// Keyed by qualified attribute handle.
  std::map<std::string, std::pair<pairing::Zr, pairing::Zr>> secrets;
};

/// Published per-attribute keys.
struct LewkoAttributePublicKey {
  lsss::Attribute attr;
  pairing::GT e_gg_alpha;  // e(g,g)^{alpha_x}
  pairing::G1 g_y;         // g^{y_x}
};

/// A user's decryption keys (from any number of authorities).
struct LewkoUserKey {
  std::string gid;
  /// Keyed by qualified attribute handle; value g^{alpha_x} H(GID)^{y_x}.
  std::map<std::string, pairing::G1> k;

  std::set<lsss::Attribute> attributes() const;
};

struct LewkoCiphertext {
  lsss::LsssMatrix policy;
  pairing::GT c0;
  std::vector<pairing::GT> c1;
  std::vector<pairing::G1> c2;
  std::vector<pairing::G1> c3;
};

/// Creates an authority managing `attribute_names` (under its AID).
LewkoAuthorityKeys lewko_authority_setup(const pairing::Group& grp,
                                         const std::string& aid,
                                         const std::set<std::string>& attribute_names,
                                         crypto::Drbg& rng);

/// Publishes the keys for one attribute of the authority.
LewkoAttributePublicKey lewko_attribute_pk(const pairing::Group& grp,
                                           const LewkoAuthorityKeys& authority,
                                           const std::string& name);

/// The random oracle H: {0,1}* -> G applied to a global identifier.
pairing::G1 lewko_hash_gid(const pairing::Group& grp, const std::string& gid);

/// Issues keys for `attribute_names` of this authority to user `gid`,
/// merging into `key` (which adopts/validates the gid).
void lewko_keygen(const pairing::Group& grp, const LewkoAuthorityKeys& authority,
                  const std::string& gid, const std::set<std::string>& attribute_names,
                  LewkoUserKey* key);

LewkoCiphertext lewko_encrypt(const pairing::Group& grp, const pairing::GT& message,
                              const lsss::LsssMatrix& policy,
                              const std::map<std::string, LewkoAttributePublicKey>& pks,
                              crypto::Drbg& rng);

/// Throws SchemeError when the key's attributes do not satisfy the policy.
pairing::GT lewko_decrypt(const pairing::Group& grp, const LewkoCiphertext& ct,
                          const LewkoUserKey& key);

}  // namespace maabe::baseline
