#include "baseline/waters.h"

#include "common/errors.h"

namespace maabe::baseline {

using lsss::Attribute;
using lsss::LsssMatrix;
using pairing::G1;
using pairing::Group;
using pairing::GT;
using pairing::Zr;

std::set<Attribute> WatersSecretKey::attributes() const {
  std::set<Attribute> out;
  for (const auto& [handle, key] : kx) {
    const size_t at = handle.rfind('@');
    if (at == std::string::npos)
      throw SchemeError("WatersSecretKey: malformed attribute handle '" + handle + "'");
    out.insert(Attribute{handle.substr(0, at), handle.substr(at + 1)});
  }
  return out;
}

WatersSetupResult waters_setup(const Group& grp, crypto::Drbg& rng) {
  const Zr alpha = grp.zr_nonzero_random(rng);
  const Zr a = grp.zr_nonzero_random(rng);
  WatersSetupResult out;
  out.pk.e_gg_alpha = grp.egg_pow(alpha);
  out.pk.g_a = grp.g_pow(a);
  out.msk.g_alpha = grp.g_pow(alpha);
  return out;
}

G1 waters_hash_attribute(const Group& grp, const Attribute& attr) {
  return grp.hash_to_g1(std::string("waters/attr/" + attr.qualified()));
}

WatersSecretKey waters_keygen(const Group& grp, const WatersPublicKey& pk,
                              const WatersMasterKey& msk,
                              const std::set<Attribute>& attrs, crypto::Drbg& rng) {
  const Zr t = grp.zr_nonzero_random(rng);
  WatersSecretKey sk;
  sk.k = msk.g_alpha + pk.g_a.mul(t);
  sk.l = grp.g_pow(t);
  for (const Attribute& attr : attrs) {
    sk.kx.emplace(attr.qualified(), waters_hash_attribute(grp, attr).mul(t));
  }
  return sk;
}

WatersCiphertext waters_encrypt(const Group& grp, const WatersPublicKey& pk,
                                const GT& message, const LsssMatrix& policy,
                                crypto::Drbg& rng) {
  if (policy.rows() == 0) throw SchemeError("waters_encrypt: empty policy");
  const Zr s = grp.zr_nonzero_random(rng);
  const std::vector<Zr> lambda = policy.share(grp, s, rng);

  WatersCiphertext ct;
  ct.policy = policy;
  ct.c = message * pk.e_gg_alpha.pow(s);
  ct.c_prime = grp.g_pow(s);
  ct.ci.reserve(policy.rows());
  ct.di.reserve(policy.rows());
  for (int i = 0; i < policy.rows(); ++i) {
    const Zr ri = grp.zr_nonzero_random(rng);
    const G1 hx = waters_hash_attribute(grp, policy.row_attribute(i));
    ct.ci.push_back(pk.g_a.mul(lambda[i]) + hx.mul(ri).neg());
    ct.di.push_back(grp.g_pow(ri));
  }
  return ct;
}

GT waters_decrypt(const Group& grp, const WatersCiphertext& ct,
                  const WatersSecretKey& sk) {
  const auto coeffs = ct.policy.reconstruction(grp, sk.attributes());
  if (!coeffs)
    throw SchemeError("waters_decrypt: attributes do not satisfy the access structure");

  GT denom = grp.gt_one();
  for (const auto& [row, w] : *coeffs) {
    const std::string handle = ct.policy.row_attribute(row).qualified();
    const auto kx = sk.kx.find(handle);
    if (kx == sk.kx.end())
      throw SchemeError("waters_decrypt: key lacks '" + handle + "'");
    const GT term = grp.pair(ct.ci[row], sk.l) * grp.pair(ct.di[row], kx->second);
    denom = denom * term.pow(w);
  }
  const GT blind = grp.pair(ct.c_prime, sk.k) / denom;
  return ct.c / blind;
}

}  // namespace maabe::baseline
