#include "baseline/waters.h"

#include "common/errors.h"
#include "engine/engine.h"

namespace maabe::baseline {

using engine::CryptoEngine;
using lsss::Attribute;
using lsss::LsssMatrix;
using pairing::G1;
using pairing::Group;
using pairing::GT;
using pairing::Zr;

std::set<Attribute> WatersSecretKey::attributes() const {
  std::set<Attribute> out;
  for (const auto& [handle, key] : kx) {
    const size_t at = handle.rfind('@');
    if (at == std::string::npos)
      throw SchemeError("WatersSecretKey: malformed attribute handle '" + handle + "'");
    out.insert(Attribute{handle.substr(0, at), handle.substr(at + 1)});
  }
  return out;
}

WatersSetupResult waters_setup(const Group& grp, crypto::Drbg& rng) {
  const Zr alpha = grp.zr_nonzero_random(rng);
  const Zr a = grp.zr_nonzero_random(rng);
  WatersSetupResult out;
  out.pk.e_gg_alpha = grp.egg_pow(alpha);
  out.pk.g_a = grp.g_pow(a);
  out.msk.g_alpha = grp.g_pow(alpha);
  return out;
}

G1 waters_hash_attribute(const Group& grp, const Attribute& attr) {
  return grp.hash_to_g1(std::string("waters/attr/" + attr.qualified()));
}

WatersSecretKey waters_keygen(const Group& grp, const WatersPublicKey& pk,
                              const WatersMasterKey& msk,
                              const std::set<Attribute>& attrs, crypto::Drbg& rng) {
  const Zr t = grp.zr_nonzero_random(rng);
  WatersSecretKey sk;
  sk.l = grp.g_pow(t);
  // One engine batch: g_a^t plus H(x)^t per attribute. The attribute
  // hashes (try-and-increment, expensive) are computed as a parallel
  // sweep first; their bases recur across keygen calls, so they cache.
  CryptoEngine& eng = CryptoEngine::for_group(grp);
  const std::vector<Attribute> ordered(attrs.begin(), attrs.end());
  std::vector<G1> hashes(ordered.size());
  eng.parallel_for(ordered.size(), [&](size_t i) {
    hashes[i] = waters_hash_attribute(grp, ordered[i]);
  });
  std::vector<CryptoEngine::G1Term> terms;
  terms.reserve(ordered.size() + 1);
  terms.push_back({pk.g_a, t});
  for (const G1& hx : hashes) terms.push_back({hx, t});
  const std::vector<G1> powers = eng.multi_exp_g1(terms);
  sk.k = msk.g_alpha + powers[0];
  for (size_t i = 0; i < ordered.size(); ++i)
    sk.kx.emplace(ordered[i].qualified(), powers[i + 1]);
  return sk;
}

WatersCiphertext waters_encrypt(const Group& grp, const WatersPublicKey& pk,
                                const GT& message, const LsssMatrix& policy,
                                crypto::Drbg& rng) {
  if (policy.rows() == 0) throw SchemeError("waters_encrypt: empty policy");
  const Zr s = grp.zr_nonzero_random(rng);
  const std::vector<Zr> lambda = policy.share(grp, s, rng);

  WatersCiphertext ct;
  ct.policy = policy;
  ct.c_prime = grp.g_pow(s);
  // Draw all per-row randomness serially first (the rng sequence is part
  // of the deterministic contract), then batch everything else.
  std::vector<Zr> ri;
  ri.reserve(policy.rows());
  for (int i = 0; i < policy.rows(); ++i) ri.push_back(grp.zr_nonzero_random(rng));

  CryptoEngine& eng = CryptoEngine::for_group(grp);
  ct.c = message * eng.multi_exp_gt({{pk.e_gg_alpha, s}})[0];
  std::vector<G1> hashes(policy.rows());
  eng.parallel_for(static_cast<size_t>(policy.rows()), [&](size_t i) {
    hashes[i] = waters_hash_attribute(grp, policy.row_attribute(static_cast<int>(i)));
  });
  std::vector<CryptoEngine::G1Term> terms;
  terms.reserve(2 * policy.rows());
  for (int i = 0; i < policy.rows(); ++i) {
    terms.push_back({pk.g_a, lambda[i]});
    terms.push_back({hashes[i], ri[i]});
  }
  const std::vector<G1> powers = eng.multi_exp_g1(terms);
  const std::vector<G1> di = eng.g_pow_batch(ri);
  ct.ci.reserve(policy.rows());
  ct.di.reserve(policy.rows());
  for (int i = 0; i < policy.rows(); ++i) {
    ct.ci.push_back(powers[2 * i] + powers[2 * i + 1].neg());
    ct.di.push_back(di[i]);
  }
  return ct;
}

GT waters_decrypt(const Group& grp, const WatersCiphertext& ct,
                  const WatersSecretKey& sk) {
  const auto coeffs = ct.policy.reconstruction(grp, sk.attributes());
  if (!coeffs)
    throw SchemeError("waters_decrypt: attributes do not satisfy the access structure");

  // One multi-pairing product for the 2l + 1 pairings: row terms raised
  // to w_i on the unreduced Miller values, the blinding pairing folded
  // with a negated argument (e(C', -K) = e(C', K)^{-1}), a single
  // shared final exponentiation. L repeats across rows as the first
  // argument, so it hits the engine's line-table cache.
  CryptoEngine& eng = CryptoEngine::for_group(grp);
  std::vector<CryptoEngine::PairTerm> pair_terms;
  std::vector<Zr> exps;
  pair_terms.reserve(2 * coeffs->size() + 1);
  exps.reserve(2 * coeffs->size() + 1);
  for (const auto& [row, w] : *coeffs) {
    const std::string handle = ct.policy.row_attribute(row).qualified();
    const auto kx = sk.kx.find(handle);
    if (kx == sk.kx.end())
      throw SchemeError("waters_decrypt: key lacks '" + handle + "'");
    pair_terms.push_back({sk.l, ct.ci[row]});
    pair_terms.push_back({ct.di[row], kx->second});
    exps.push_back(w);
    exps.push_back(w);
  }
  pair_terms.push_back({ct.c_prime, sk.k.neg()});
  exps.push_back(grp.zr_one());
  // C * denom / e(C', K) = m.
  return ct.c * eng.pairing_power_product(pair_terms, exps);
}

}  // namespace maabe::baseline
