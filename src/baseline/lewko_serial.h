// Serialization for the Lewko-Waters baseline (used by the Table II-IV
// size and communication benchmarks).
#pragma once

#include "baseline/lewko.h"
#include "common/wire.h"

namespace maabe::baseline {

Bytes serialize(const pairing::Group& grp, const LewkoAttributePublicKey& v);
LewkoAttributePublicKey deserialize_lewko_attribute_pk(const pairing::Group& grp,
                                                       ByteView data);

Bytes serialize(const pairing::Group& grp, const LewkoUserKey& v);
LewkoUserKey deserialize_lewko_user_key(const pairing::Group& grp, ByteView data);

Bytes serialize(const pairing::Group& grp, const LewkoCiphertext& v);
LewkoCiphertext deserialize_lewko_ciphertext(const pairing::Group& grp, ByteView data);

/// Group material of the ciphertext: (l+1)|GT| + 2l|G| (paper Table II).
size_t lewko_ciphertext_group_material_bytes(const pairing::Group& grp,
                                             const LewkoCiphertext& v);

/// Authority storage: 2 * n_k * |p| exponents (paper Table III row "AA").
size_t lewko_authority_storage_bytes(const pairing::Group& grp,
                                     const LewkoAuthorityKeys& v);

}  // namespace maabe::baseline
