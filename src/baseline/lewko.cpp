#include "baseline/lewko.h"

#include "common/errors.h"
#include "engine/engine.h"

namespace maabe::baseline {

using engine::CryptoEngine;
using lsss::Attribute;
using lsss::LsssMatrix;
using pairing::G1;
using pairing::Group;
using pairing::GT;
using pairing::Zr;

std::set<Attribute> LewkoUserKey::attributes() const {
  std::set<Attribute> out;
  for (const auto& [handle, key] : k) {
    const size_t at = handle.rfind('@');
    if (at == std::string::npos)
      throw SchemeError("LewkoUserKey: malformed attribute handle '" + handle + "'");
    out.insert(Attribute{handle.substr(0, at), handle.substr(at + 1)});
  }
  return out;
}

LewkoAuthorityKeys lewko_authority_setup(const Group& grp, const std::string& aid,
                                         const std::set<std::string>& attribute_names,
                                         crypto::Drbg& rng) {
  if (aid.empty()) throw SchemeError("lewko_authority_setup: empty AID");
  LewkoAuthorityKeys out;
  out.aid = aid;
  for (const std::string& name : attribute_names) {
    const Attribute attr{name, aid};
    out.secrets.emplace(attr.qualified(),
                        std::make_pair(grp.zr_nonzero_random(rng),
                                       grp.zr_nonzero_random(rng)));
  }
  return out;
}

LewkoAttributePublicKey lewko_attribute_pk(const Group& grp,
                                           const LewkoAuthorityKeys& authority,
                                           const std::string& name) {
  const Attribute attr{name, authority.aid};
  const auto it = authority.secrets.find(attr.qualified());
  if (it == authority.secrets.end())
    throw SchemeError("lewko_attribute_pk: authority does not manage '" +
                      attr.qualified() + "'");
  const auto& [alpha, y] = it->second;
  return {attr, grp.egg_pow(alpha), grp.g_pow(y)};
}

G1 lewko_hash_gid(const Group& grp, const std::string& gid) {
  return grp.hash_to_g1(std::string("lewko/gid/" + gid));
}

void lewko_keygen(const Group& grp, const LewkoAuthorityKeys& authority,
                  const std::string& gid, const std::set<std::string>& attribute_names,
                  LewkoUserKey* key) {
  if (key == nullptr) throw SchemeError("lewko_keygen: null key");
  if (key->gid.empty()) {
    key->gid = gid;
  } else if (key->gid != gid) {
    throw SchemeError("lewko_keygen: key belongs to another GID");
  }
  const G1 h_gid = lewko_hash_gid(grp, gid);
  // Validate + collect serially, then batch: g^{alpha_x} over the fixed
  // base and H(GID)^{y_x} over the per-user base (cached across the
  // attributes of one call and across calls for the same GID).
  std::vector<std::string> handles;
  std::vector<Zr> g_exps;
  std::vector<CryptoEngine::G1Term> h_terms;
  for (const std::string& name : attribute_names) {
    const Attribute attr{name, authority.aid};
    const auto it = authority.secrets.find(attr.qualified());
    if (it == authority.secrets.end())
      throw SchemeError("lewko_keygen: authority does not manage '" + attr.qualified() + "'");
    const auto& [alpha, y] = it->second;
    handles.push_back(attr.qualified());
    g_exps.push_back(alpha);
    h_terms.push_back({h_gid, y});
  }
  CryptoEngine& eng = CryptoEngine::for_group(grp);
  const std::vector<G1> g_parts = eng.g_pow_batch(g_exps);
  const std::vector<G1> h_parts = eng.multi_exp_g1(h_terms);
  // K_x = g^{alpha_x} * H(GID)^{y_x}.
  for (size_t i = 0; i < handles.size(); ++i)
    key->k.insert_or_assign(handles[i], g_parts[i] + h_parts[i]);
}

LewkoCiphertext lewko_encrypt(const Group& grp, const GT& message,
                              const LsssMatrix& policy,
                              const std::map<std::string, LewkoAttributePublicKey>& pks,
                              crypto::Drbg& rng) {
  if (policy.rows() == 0) throw SchemeError("lewko_encrypt: empty policy");

  const Zr s = grp.zr_nonzero_random(rng);
  const std::vector<Zr> lambda = policy.share(grp, s, rng);
  const std::vector<Zr> omega = policy.share(grp, grp.zr_zero(), rng);

  LewkoCiphertext ct;
  ct.policy = policy;
  ct.c0 = message * grp.egg_pow(s);
  // Serial pass: validation and the rng draws (sequence is part of the
  // deterministic contract). Parallel pass: the four exponentiation
  // batches; the per-attribute pk bases recur across encryptions and hit
  // the engine's table cache.
  std::vector<CryptoEngine::GtTerm> alpha_terms;
  std::vector<CryptoEngine::G1Term> y_terms;
  std::vector<Zr> ri;
  alpha_terms.reserve(policy.rows());
  y_terms.reserve(policy.rows());
  ri.reserve(policy.rows());
  for (int i = 0; i < policy.rows(); ++i) {
    const std::string handle = policy.row_attribute(i).qualified();
    const auto it = pks.find(handle);
    if (it == pks.end())
      throw SchemeError("lewko_encrypt: missing public key for '" + handle + "'");
    const Zr r = grp.zr_nonzero_random(rng);
    ri.push_back(r);
    alpha_terms.push_back({it->second.e_gg_alpha, r});
    y_terms.push_back({it->second.g_y, r});
  }
  CryptoEngine& eng = CryptoEngine::for_group(grp);
  const std::vector<GT> egg_lambda = eng.egg_pow_batch(lambda);
  const std::vector<GT> alpha_r = eng.multi_exp_gt(alpha_terms);
  const std::vector<G1> g_r = eng.g_pow_batch(ri);
  const std::vector<G1> y_r = eng.multi_exp_g1(y_terms);
  const std::vector<G1> g_omega = eng.g_pow_batch(omega);
  ct.c1.reserve(policy.rows());
  ct.c2.reserve(policy.rows());
  ct.c3.reserve(policy.rows());
  for (int i = 0; i < policy.rows(); ++i) {
    ct.c1.push_back(egg_lambda[i] * alpha_r[i]);
    ct.c2.push_back(g_r[i]);
    ct.c3.push_back(y_r[i] + g_omega[i]);
  }
  return ct;
}

GT lewko_decrypt(const Group& grp, const LewkoCiphertext& ct, const LewkoUserKey& key) {
  const auto coeffs = ct.policy.reconstruction(grp, key.attributes());
  if (!coeffs)
    throw SchemeError("lewko_decrypt: attributes do not satisfy the access structure");

  const G1 h_gid = lewko_hash_gid(grp, key.gid);
  // The 2l pairings go through the shared-final-exp kernel:
  // (e(H(GID), C3_i) / e(K_x, C2_i))^{w_i} becomes two kernel terms with
  // exponent w_i, the divisor's point negated (e(K_x, -C2_i) is exactly
  // e(K_x, C2_i)^{-1}). H(GID) repeats as first argument -> line-table
  // cache. The C1_i^{w_i} factors stay a GT multi-exponentiation.
  CryptoEngine& eng = CryptoEngine::for_group(grp);
  std::vector<CryptoEngine::PairTerm> pair_terms;
  std::vector<CryptoEngine::GtTerm> pows;
  std::vector<Zr> exps;
  pair_terms.reserve(2 * coeffs->size());
  exps.reserve(2 * coeffs->size());
  pows.reserve(coeffs->size());
  for (const auto& [row, w] : *coeffs) {
    const std::string handle = ct.policy.row_attribute(row).qualified();
    const auto kx = key.k.find(handle);
    if (kx == key.k.end())
      throw SchemeError("lewko_decrypt: key lacks '" + handle + "'");
    // C1_i * e(H(GID), C3_i) / e(K_x, C2_i) = e(g,g)^{lambda_i} e(H,g)^{omega_i}.
    pair_terms.push_back({h_gid, ct.c3[row]});
    pair_terms.push_back({kx->second, ct.c2[row].neg()});
    exps.push_back(w);
    exps.push_back(w);
    pows.push_back({ct.c1[row], w});
  }
  GT acc = eng.pairing_power_product(pair_terms, exps);
  for (const GT& t : eng.multi_exp_gt(pows, /*cache_bases=*/false)) acc = acc * t;
  return ct.c0 / acc;
}

}  // namespace maabe::baseline
