#include "baseline/lewko.h"

#include "common/errors.h"

namespace maabe::baseline {

using lsss::Attribute;
using lsss::LsssMatrix;
using pairing::G1;
using pairing::Group;
using pairing::GT;
using pairing::Zr;

std::set<Attribute> LewkoUserKey::attributes() const {
  std::set<Attribute> out;
  for (const auto& [handle, key] : k) {
    const size_t at = handle.rfind('@');
    if (at == std::string::npos)
      throw SchemeError("LewkoUserKey: malformed attribute handle '" + handle + "'");
    out.insert(Attribute{handle.substr(0, at), handle.substr(at + 1)});
  }
  return out;
}

LewkoAuthorityKeys lewko_authority_setup(const Group& grp, const std::string& aid,
                                         const std::set<std::string>& attribute_names,
                                         crypto::Drbg& rng) {
  if (aid.empty()) throw SchemeError("lewko_authority_setup: empty AID");
  LewkoAuthorityKeys out;
  out.aid = aid;
  for (const std::string& name : attribute_names) {
    const Attribute attr{name, aid};
    out.secrets.emplace(attr.qualified(),
                        std::make_pair(grp.zr_nonzero_random(rng),
                                       grp.zr_nonzero_random(rng)));
  }
  return out;
}

LewkoAttributePublicKey lewko_attribute_pk(const Group& grp,
                                           const LewkoAuthorityKeys& authority,
                                           const std::string& name) {
  const Attribute attr{name, authority.aid};
  const auto it = authority.secrets.find(attr.qualified());
  if (it == authority.secrets.end())
    throw SchemeError("lewko_attribute_pk: authority does not manage '" +
                      attr.qualified() + "'");
  const auto& [alpha, y] = it->second;
  return {attr, grp.egg_pow(alpha), grp.g_pow(y)};
}

G1 lewko_hash_gid(const Group& grp, const std::string& gid) {
  return grp.hash_to_g1(std::string("lewko/gid/" + gid));
}

void lewko_keygen(const Group& grp, const LewkoAuthorityKeys& authority,
                  const std::string& gid, const std::set<std::string>& attribute_names,
                  LewkoUserKey* key) {
  if (key == nullptr) throw SchemeError("lewko_keygen: null key");
  if (key->gid.empty()) {
    key->gid = gid;
  } else if (key->gid != gid) {
    throw SchemeError("lewko_keygen: key belongs to another GID");
  }
  const G1 h_gid = lewko_hash_gid(grp, gid);
  for (const std::string& name : attribute_names) {
    const Attribute attr{name, authority.aid};
    const auto it = authority.secrets.find(attr.qualified());
    if (it == authority.secrets.end())
      throw SchemeError("lewko_keygen: authority does not manage '" + attr.qualified() + "'");
    const auto& [alpha, y] = it->second;
    // K_x = g^{alpha_x} * H(GID)^{y_x}.
    key->k.insert_or_assign(attr.qualified(), grp.g_pow(alpha) + h_gid.mul(y));
  }
}

LewkoCiphertext lewko_encrypt(const Group& grp, const GT& message,
                              const LsssMatrix& policy,
                              const std::map<std::string, LewkoAttributePublicKey>& pks,
                              crypto::Drbg& rng) {
  if (policy.rows() == 0) throw SchemeError("lewko_encrypt: empty policy");

  const Zr s = grp.zr_nonzero_random(rng);
  const std::vector<Zr> lambda = policy.share(grp, s, rng);
  const std::vector<Zr> omega = policy.share(grp, grp.zr_zero(), rng);

  LewkoCiphertext ct;
  ct.policy = policy;
  ct.c0 = message * grp.egg_pow(s);
  ct.c1.reserve(policy.rows());
  ct.c2.reserve(policy.rows());
  ct.c3.reserve(policy.rows());
  for (int i = 0; i < policy.rows(); ++i) {
    const std::string handle = policy.row_attribute(i).qualified();
    const auto it = pks.find(handle);
    if (it == pks.end())
      throw SchemeError("lewko_encrypt: missing public key for '" + handle + "'");
    const Zr ri = grp.zr_nonzero_random(rng);
    ct.c1.push_back(grp.egg_pow(lambda[i]) * it->second.e_gg_alpha.pow(ri));
    ct.c2.push_back(grp.g_pow(ri));
    ct.c3.push_back(it->second.g_y.mul(ri) + grp.g_pow(omega[i]));
  }
  return ct;
}

GT lewko_decrypt(const Group& grp, const LewkoCiphertext& ct, const LewkoUserKey& key) {
  const auto coeffs = ct.policy.reconstruction(grp, key.attributes());
  if (!coeffs)
    throw SchemeError("lewko_decrypt: attributes do not satisfy the access structure");

  const G1 h_gid = lewko_hash_gid(grp, key.gid);
  GT acc = grp.gt_one();
  for (const auto& [row, w] : *coeffs) {
    const std::string handle = ct.policy.row_attribute(row).qualified();
    const auto kx = key.k.find(handle);
    if (kx == key.k.end())
      throw SchemeError("lewko_decrypt: key lacks '" + handle + "'");
    // C1_i * e(H(GID), C3_i) / e(K_x, C2_i) = e(g,g)^{lambda_i} e(H,g)^{omega_i}.
    const GT term =
        ct.c1[row] * grp.pair(h_gid, ct.c3[row]) / grp.pair(kx->second, ct.c2[row]);
    acc = acc * term.pow(w);
  }
  return ct.c0 / acc;
}

}  // namespace maabe::baseline
