// Waters single-authority CP-ABE (PKC 2011), large-universe
// random-oracle variant.
//
// This is the construction the paper's security proof reduces to
// (Theorem 2 "...as the construction in [3]") and the canonical
// single-authority scheme its introduction argues cannot handle
// multi-authority deployments. Having it implemented (a) grounds the
// reduction, (b) cross-validates the LSSS machinery shared by all three
// schemes in this repo, and (c) lets tests demonstrate concretely what
// breaks in a multi-authority setting without the paper's techniques.
//
//   Setup:        alpha, a <- Z_r; PK = (e(g,g)^alpha, g^a); MSK = g^alpha
//   KeyGen(S):    t <- Z_r; K = g^alpha g^{at}; L = g^t; K_x = H(x)^t
//   Encrypt(m,(M,rho)): s, shares lambda_i; r_i <- Z_r;
//                 C = m e(g,g)^{alpha s}; C' = g^s;
//                 C_i = g^{a lambda_i} H(rho(i))^{-r_i}; D_i = g^{r_i}
//   Decrypt:      e(C',K) / prod_i (e(C_i,L) e(D_i,K_rho(i)))^{w_i}
//                   = e(g,g)^{alpha s}
#pragma once

#include <map>

#include "crypto/drbg.h"
#include "lsss/matrix.h"

namespace maabe::baseline {

struct WatersPublicKey {
  pairing::GT e_gg_alpha;
  pairing::G1 g_a;
};

struct WatersMasterKey {
  pairing::G1 g_alpha;
};

struct WatersSecretKey {
  pairing::G1 k;  // g^alpha g^{at}
  pairing::G1 l;  // g^t
  /// Keyed by qualified attribute handle.
  std::map<std::string, pairing::G1> kx;  // H(x)^t

  std::set<lsss::Attribute> attributes() const;
};

struct WatersCiphertext {
  lsss::LsssMatrix policy;
  pairing::GT c;
  pairing::G1 c_prime;
  std::vector<pairing::G1> ci;
  std::vector<pairing::G1> di;
};

struct WatersSetupResult {
  WatersPublicKey pk;
  WatersMasterKey msk;
};

WatersSetupResult waters_setup(const pairing::Group& grp, crypto::Drbg& rng);

/// H: {0,1}* -> G applied to a qualified attribute handle.
pairing::G1 waters_hash_attribute(const pairing::Group& grp, const lsss::Attribute& attr);

WatersSecretKey waters_keygen(const pairing::Group& grp, const WatersPublicKey& pk,
                              const WatersMasterKey& msk,
                              const std::set<lsss::Attribute>& attrs, crypto::Drbg& rng);

WatersCiphertext waters_encrypt(const pairing::Group& grp, const WatersPublicKey& pk,
                                const pairing::GT& message,
                                const lsss::LsssMatrix& policy, crypto::Drbg& rng);

/// Throws SchemeError when the key does not satisfy the policy.
pairing::GT waters_decrypt(const pairing::Group& grp, const WatersCiphertext& ct,
                           const WatersSecretKey& sk);

}  // namespace maabe::baseline
