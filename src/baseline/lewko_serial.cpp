#include "baseline/lewko_serial.h"

#include "common/errors.h"

namespace maabe::baseline {

using pairing::G1;
using pairing::Group;
using pairing::GT;

namespace {

constexpr uint8_t kTagAttributePk = 0x41;
constexpr uint8_t kTagUserKey = 0x42;
constexpr uint8_t kTagCiphertext = 0x43;

void expect_tag(Reader& r, uint8_t tag, const char* what) {
  if (r.u8() != tag) throw WireError(std::string("deserialize: wrong tag for ") + what);
}

}  // namespace

Bytes serialize(const Group& grp, const LewkoAttributePublicKey& v) {
  (void)grp;
  Writer w;
  w.u8(kTagAttributePk);
  w.str(v.attr.name);
  w.str(v.attr.aid);
  w.raw(v.e_gg_alpha.to_bytes());
  w.raw(v.g_y.to_bytes());
  return w.take();
}

LewkoAttributePublicKey deserialize_lewko_attribute_pk(const Group& grp, ByteView data) {
  Reader r(data);
  expect_tag(r, kTagAttributePk, "LewkoAttributePublicKey");
  LewkoAttributePublicKey v;
  v.attr.name = r.str();
  v.attr.aid = r.str();
  v.e_gg_alpha = grp.gt_from_bytes(r.raw(grp.gt_size()));
  v.g_y = grp.g1_from_bytes(r.raw(grp.g1_size()));
  r.expect_done();
  return v;
}

Bytes serialize(const Group& grp, const LewkoUserKey& v) {
  (void)grp;
  Writer w;
  w.u8(kTagUserKey);
  w.str(v.gid);
  w.u32(static_cast<uint32_t>(v.k.size()));
  for (const auto& [handle, key] : v.k) {
    w.str(handle);
    w.raw(key.to_bytes());
  }
  return w.take();
}

LewkoUserKey deserialize_lewko_user_key(const Group& grp, ByteView data) {
  Reader r(data);
  expect_tag(r, kTagUserKey, "LewkoUserKey");
  LewkoUserKey v;
  v.gid = r.str();
  const uint32_t n = r.u32();
  for (uint32_t i = 0; i < n; ++i) {
    const std::string handle = r.str();
    const G1 key = grp.g1_from_bytes(r.raw(grp.g1_size()));
    if (!v.k.emplace(handle, key).second)
      throw WireError("deserialize: duplicate attribute in LewkoUserKey");
  }
  r.expect_done();
  return v;
}

Bytes serialize(const Group& grp, const LewkoCiphertext& v) {
  (void)grp;
  Writer w;
  w.u8(kTagCiphertext);
  v.policy.serialize(w);
  w.raw(v.c0.to_bytes());
  w.u32(static_cast<uint32_t>(v.c1.size()));
  for (size_t i = 0; i < v.c1.size(); ++i) {
    w.raw(v.c1[i].to_bytes());
    w.raw(v.c2[i].to_bytes());
    w.raw(v.c3[i].to_bytes());
  }
  return w.take();
}

LewkoCiphertext deserialize_lewko_ciphertext(const Group& grp, ByteView data) {
  Reader r(data);
  expect_tag(r, kTagCiphertext, "LewkoCiphertext");
  LewkoCiphertext v;
  v.policy = lsss::LsssMatrix::deserialize(r);
  v.c0 = grp.gt_from_bytes(r.raw(grp.gt_size()));
  const uint32_t rows = r.u32();
  if (rows != static_cast<uint32_t>(v.policy.rows()))
    throw WireError("deserialize: lewko ciphertext row count mismatch");
  for (uint32_t i = 0; i < rows; ++i) {
    v.c1.push_back(grp.gt_from_bytes(r.raw(grp.gt_size())));
    v.c2.push_back(grp.g1_from_bytes(r.raw(grp.g1_size())));
    v.c3.push_back(grp.g1_from_bytes(r.raw(grp.g1_size())));
  }
  r.expect_done();
  return v;
}

size_t lewko_ciphertext_group_material_bytes(const Group& grp, const LewkoCiphertext& v) {
  return (v.c1.size() + 1) * grp.gt_size() + 2 * v.c2.size() * grp.g1_size();
}

size_t lewko_authority_storage_bytes(const Group& grp, const LewkoAuthorityKeys& v) {
  return 2 * v.secrets.size() * grp.zr_size();
}

}  // namespace maabe::baseline
