#include "math/montgomery.h"

#include "common/errors.h"

namespace maabe::math {

using u128 = unsigned __int128;

MontCtx::MontCtx(const Bignum& modulus) : p_(modulus) {
  if (!modulus.is_odd() || modulus.bit_length() < 2)
    throw MathError("MontCtx: modulus must be odd and >= 3");
  n_ = modulus.limb_count();
  bits_ = modulus.bit_length();
  byte_len_ = (bits_ + 7) / 8;

  // n0_ = -p^{-1} mod 2^64 via Newton-Hensel lifting.
  const uint64_t p0 = modulus.limb(0);
  uint64_t x = p0;  // 3-bit correct start (x*p == 1 mod 8 for odd p)
  for (int i = 0; i < 6; ++i) x *= 2 - p0 * x;
  n0_ = ~x + 1;  // -x

  // R mod p and R^2 mod p via shifting.
  const Bignum r = Bignum::mod(Bignum::shl(Bignum::from_u64(1), 64 * n_), p_);
  one_ = r;
  r2_ = Bignum::mod(Bignum::mul(r, r), p_);
}

Bignum MontCtx::mul(const Bignum& a, const Bignum& b) const {
  // CIOS (coarsely integrated operand scanning).
  const int n = n_;
  uint64_t t[Bignum::kMaxLimbs + 2] = {0};
  for (int i = 0; i < n; ++i) {
    const uint64_t ai = a.limb(i);
    // t += ai * b
    u128 carry = 0;
    for (int j = 0; j < n; ++j) {
      const u128 s = u128(ai) * b.limb(j) + t[j] + static_cast<uint64_t>(carry);
      t[j] = static_cast<uint64_t>(s);
      carry = s >> 64;
    }
    u128 s = u128(t[n]) + static_cast<uint64_t>(carry);
    t[n] = static_cast<uint64_t>(s);
    t[n + 1] = static_cast<uint64_t>(s >> 64);

    // t = (t + m*p) / 2^64
    const uint64_t m = t[0] * n0_;
    s = u128(m) * p_.limb(0) + t[0];
    carry = s >> 64;
    for (int j = 1; j < n; ++j) {
      s = u128(m) * p_.limb(j) + t[j] + static_cast<uint64_t>(carry);
      t[j - 1] = static_cast<uint64_t>(s);
      carry = s >> 64;
    }
    s = u128(t[n]) + static_cast<uint64_t>(carry);
    t[n - 1] = static_cast<uint64_t>(s);
    t[n] = t[n + 1] + static_cast<uint64_t>(s >> 64);
    t[n + 1] = 0;
  }

  // t[0..n] holds the result, < 2p.
  Bignum out = Bignum::from_limbs_le(t, n + 1);
  if (Bignum::cmp(out, p_) >= 0) out = Bignum::sub(out, p_);
  return out;
}

Bignum MontCtx::sqr(const Bignum& a) const {
  // SOS (separated operand scanning): compute the full 2n-limb square —
  // cross products a_i*a_j (i < j) once, doubled by a shift, plus the
  // diagonal a_i^2 — then run n Montgomery reduction steps. Roughly
  // n^2/2 of the n^2 multiplies in mul(a, a) are saved; the value is
  // identical (both are the canonical a^2 * R^{-1} mod p).
  const int n = n_;
  uint64_t t[2 * Bignum::kMaxLimbs + 1] = {0};

  // Cross products into t[1 .. 2n-1].
  for (int i = 0; i < n; ++i) {
    const uint64_t ai = a.limb(i);
    u128 carry = 0;
    for (int j = i + 1; j < n; ++j) {
      const u128 s = u128(ai) * a.limb(j) + t[i + j] + static_cast<uint64_t>(carry);
      t[i + j] = static_cast<uint64_t>(s);
      carry = s >> 64;
    }
    t[i + n] = static_cast<uint64_t>(carry);
  }

  // Double (2 * sum of cross products < a^2 < 2^(128n), so no overflow
  // out of 2n limbs), then add the diagonal squares.
  uint64_t top = 0;
  for (int k = 0; k < 2 * n; ++k) {
    const uint64_t v = t[k];
    t[k] = (v << 1) | top;
    top = v >> 63;
  }
  u128 carry = 0;
  for (int i = 0; i < n; ++i) {
    const u128 d = u128(a.limb(i)) * a.limb(i);
    const u128 lo = u128(t[2 * i]) + static_cast<uint64_t>(d) + static_cast<uint64_t>(carry);
    t[2 * i] = static_cast<uint64_t>(lo);
    const u128 hi = u128(t[2 * i + 1]) + static_cast<uint64_t>(d >> 64) +
                    static_cast<uint64_t>(lo >> 64);
    t[2 * i + 1] = static_cast<uint64_t>(hi);
    carry = hi >> 64;
  }

  // Montgomery reduction: n passes, each clearing one low limb.
  for (int i = 0; i < n; ++i) {
    const uint64_t m = t[i] * n0_;
    u128 c = 0;
    for (int j = 0; j < n; ++j) {
      const u128 s = u128(m) * p_.limb(j) + t[i + j] + static_cast<uint64_t>(c);
      t[i + j] = static_cast<uint64_t>(s);
      c = s >> 64;
    }
    for (int k = i + n; c != 0 && k <= 2 * n; ++k) {
      const u128 s = u128(t[k]) + static_cast<uint64_t>(c);
      t[k] = static_cast<uint64_t>(s);
      c = s >> 64;
    }
  }

  // t[n .. 2n] holds the reduced value, < 2p.
  Bignum out = Bignum::from_limbs_le(t + n, n + 1);
  if (Bignum::cmp(out, p_) >= 0) out = Bignum::sub(out, p_);
  return out;
}

Bignum MontCtx::to_mont(const Bignum& a) const { return mul(a, r2_); }

Bignum MontCtx::from_mont(const Bignum& a) const { return mul(a, Bignum::from_u64(1)); }

Bignum MontCtx::add(const Bignum& a, const Bignum& b) const {
  return Bignum::mod_add(a, b, p_);
}

Bignum MontCtx::sub(const Bignum& a, const Bignum& b) const {
  return Bignum::mod_sub(a, b, p_);
}

Bignum MontCtx::neg(const Bignum& a) const {
  if (a.is_zero()) return a;
  return Bignum::sub(p_, a);
}

Bignum MontCtx::pow(const Bignum& base, const Bignum& exp) const {
  Bignum result = one_;
  for (int i = exp.bit_length() - 1; i >= 0; --i) {
    result = sqr(result);
    if (exp.bit(i)) result = mul(result, base);
  }
  return result;
}

Bignum MontCtx::inv(const Bignum& a) const {
  const Bignum plain = from_mont(a);
  return to_mont(Bignum::mod_inverse(plain, p_));
}

}  // namespace maabe::math
