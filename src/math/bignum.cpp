#include "math/bignum.h"

#include <bit>

#include "common/errors.h"

namespace maabe::math {

using u128 = unsigned __int128;

void Bignum::normalize() {
  while (n_ > 0 && l_[n_ - 1] == 0) --n_;
}

void Bignum::set_limbs(int n) {
  if (n > kMaxLimbs) throw MathError("Bignum: capacity exceeded");
  n_ = n;
}

Bignum Bignum::from_u64(uint64_t v) {
  Bignum b;
  if (v != 0) {
    b.l_[0] = v;
    b.n_ = 1;
  }
  return b;
}

Bignum Bignum::from_limbs_le(const uint64_t* limbs, int n) {
  Bignum b;
  b.set_limbs(n);
  for (int i = 0; i < n; ++i) b.l_[i] = limbs[i];
  b.normalize();
  return b;
}

Bignum Bignum::from_hex(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  if (hex.empty()) throw MathError("Bignum::from_hex: empty string");
  Bignum b;
  int bits = 0;
  for (char c : hex) {
    int v;
    if (c >= '0' && c <= '9')
      v = c - '0';
    else if (c >= 'a' && c <= 'f')
      v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F')
      v = c - 'A' + 10;
    else
      throw MathError("Bignum::from_hex: invalid digit");
    // b = b*16 + v
    if (bits + 4 > kMaxLimbs * 64) throw MathError("Bignum: capacity exceeded");
    uint64_t carry = static_cast<uint64_t>(v);
    for (int i = 0; i < b.n_ || carry; ++i) {
      if (i >= kMaxLimbs) throw MathError("Bignum: capacity exceeded");
      const u128 t = (u128(b.l_[i]) << 4) | carry;
      b.l_[i] = static_cast<uint64_t>(t);
      carry = static_cast<uint64_t>(t >> 64);
      if (i >= b.n_) b.n_ = i + 1;
    }
    bits = b.bit_length();
  }
  b.normalize();
  return b;
}

Bignum Bignum::from_bytes_be(ByteView data) {
  // Skip leading zeros.
  size_t i = 0;
  while (i < data.size() && data[i] == 0) ++i;
  const size_t len = data.size() - i;
  if (len > size_t(kMaxLimbs) * 8) throw MathError("Bignum: capacity exceeded");
  Bignum b;
  b.n_ = static_cast<int>((len + 7) / 8);
  for (size_t k = 0; k < len; ++k) {
    const uint8_t byte = data[data.size() - 1 - k];
    b.l_[k / 8] |= uint64_t(byte) << (8 * (k % 8));
  }
  b.normalize();
  return b;
}

uint64_t Bignum::to_u64() const {
  if (n_ > 1) throw MathError("Bignum::to_u64: value too large");
  return n_ == 0 ? 0 : l_[0];
}

std::string Bignum::to_hex() const {
  if (is_zero()) return "0";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  bool started = false;
  for (int i = n_ - 1; i >= 0; --i) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      const int nib = static_cast<int>(l_[i] >> shift) & 0xf;
      if (!started && nib == 0) continue;
      started = true;
      out.push_back(kDigits[nib]);
    }
  }
  return out;
}

Bytes Bignum::to_bytes_be(size_t width) const {
  if (size_t(bit_length()) > width * 8) throw MathError("Bignum::to_bytes_be: value does not fit");
  Bytes out(width, 0);
  for (size_t k = 0; k < width && k < size_t(n_) * 8; ++k) {
    out[width - 1 - k] = static_cast<uint8_t>(l_[k / 8] >> (8 * (k % 8)));
  }
  return out;
}

Bytes Bignum::to_bytes_be_min() const {
  return to_bytes_be((bit_length() + 7) / 8);
}

int Bignum::bit_length() const {
  if (n_ == 0) return 0;
  return 64 * n_ - std::countl_zero(l_[n_ - 1]);
}

bool Bignum::bit(int i) const {
  if (i < 0 || i >= n_ * 64) return false;
  return (l_[i / 64] >> (i % 64)) & 1;
}

int Bignum::cmp(const Bignum& a, const Bignum& b) {
  if (a.n_ != b.n_) return a.n_ < b.n_ ? -1 : 1;
  for (int i = a.n_ - 1; i >= 0; --i) {
    if (a.l_[i] != b.l_[i]) return a.l_[i] < b.l_[i] ? -1 : 1;
  }
  return 0;
}

Bignum Bignum::add(const Bignum& a, const Bignum& b) {
  Bignum out;
  const int n = std::max(a.n_, b.n_);
  uint64_t carry = 0;
  for (int i = 0; i < n; ++i) {
    const u128 t = u128(a.limb(i)) + b.limb(i) + carry;
    out.l_[i] = static_cast<uint64_t>(t);
    carry = static_cast<uint64_t>(t >> 64);
  }
  out.n_ = n;
  if (carry) {
    out.set_limbs(n + 1);
    out.l_[n] = carry;
  }
  out.normalize();
  return out;
}

Bignum Bignum::sub(const Bignum& a, const Bignum& b) {
  if (cmp(a, b) < 0) throw MathError("Bignum::sub: negative result");
  Bignum out;
  uint64_t borrow = 0;
  for (int i = 0; i < a.n_; ++i) {
    const u128 t = u128(a.limb(i)) - b.limb(i) - borrow;
    out.l_[i] = static_cast<uint64_t>(t);
    borrow = (t >> 64) ? 1 : 0;
  }
  out.n_ = a.n_;
  out.normalize();
  return out;
}

Bignum Bignum::mul(const Bignum& a, const Bignum& b) {
  if (a.is_zero() || b.is_zero()) return Bignum();
  Bignum out;
  out.set_limbs(a.n_ + b.n_);
  for (int i = 0; i < a.n_; ++i) {
    uint64_t carry = 0;
    const uint64_t ai = a.l_[i];
    for (int j = 0; j < b.n_; ++j) {
      const u128 t = u128(ai) * b.l_[j] + out.l_[i + j] + carry;
      out.l_[i + j] = static_cast<uint64_t>(t);
      carry = static_cast<uint64_t>(t >> 64);
    }
    out.l_[i + b.n_] = carry;
  }
  out.normalize();
  return out;
}

Bignum Bignum::shl(const Bignum& a, int bits) {
  if (bits < 0) throw MathError("Bignum::shl: negative shift");
  if (a.is_zero() || bits == 0) return a;
  const int limb_shift = bits / 64;
  const int bit_shift = bits % 64;
  Bignum out;
  const int needed = (a.bit_length() + bits + 63) / 64;
  out.set_limbs(needed);
  for (int i = a.n_ - 1; i >= 0; --i) {
    const uint64_t v = a.l_[i];
    if (bit_shift == 0) {
      out.l_[i + limb_shift] = v;
    } else {
      if (i + limb_shift + 1 < needed)
        out.l_[i + limb_shift + 1] |= v >> (64 - bit_shift);
      out.l_[i + limb_shift] |= v << bit_shift;
    }
  }
  out.normalize();
  return out;
}

Bignum Bignum::shr(const Bignum& a, int bits) {
  if (bits < 0) throw MathError("Bignum::shr: negative shift");
  if (a.is_zero() || bits == 0) return a;
  const int limb_shift = bits / 64;
  const int bit_shift = bits % 64;
  if (limb_shift >= a.n_) return Bignum();
  Bignum out;
  out.n_ = a.n_ - limb_shift;
  for (int i = 0; i < out.n_; ++i) {
    uint64_t v = a.l_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < a.n_)
      v |= a.l_[i + limb_shift + 1] << (64 - bit_shift);
    out.l_[i] = v;
  }
  out.normalize();
  return out;
}

void Bignum::divmod(const Bignum& a, const Bignum& b, Bignum* q, Bignum* r) {
  if (b.is_zero()) throw MathError("Bignum::divmod: division by zero");
  if (cmp(a, b) < 0) {
    if (q) *q = Bignum();
    if (r) *r = a;
    return;
  }
  if (b.n_ == 1) {
    // Single-limb fast path.
    const uint64_t d = b.l_[0];
    Bignum quot;
    quot.n_ = a.n_;
    uint64_t rem = 0;
    for (int i = a.n_ - 1; i >= 0; --i) {
      const u128 cur = (u128(rem) << 64) | a.l_[i];
      quot.l_[i] = static_cast<uint64_t>(cur / d);
      rem = static_cast<uint64_t>(cur % d);
    }
    quot.normalize();
    if (q) *q = quot;
    if (r) *r = from_u64(rem);
    return;
  }

  // Knuth TAOCP vol 2, Algorithm D.
  const int n = b.n_;
  const int m = a.n_ - n;
  const int s = std::countl_zero(b.l_[n - 1]);

  // Normalized divisor and dividend. un has m+n+1 limbs.
  std::array<uint64_t, kMaxLimbs + 1> un{};
  std::array<uint64_t, kMaxLimbs> vn{};
  {
    const Bignum bs = shl(b, s);
    for (int i = 0; i < n; ++i) vn[i] = bs.l_[i];
    const Bignum as = shl(a, s);
    if (as.n_ > kMaxLimbs) throw MathError("Bignum::divmod: capacity exceeded");
    for (int i = 0; i < as.n_; ++i) un[i] = as.l_[i];
  }

  Bignum quot;
  quot.set_limbs(m + 1);
  constexpr u128 kBase = u128(1) << 64;

  for (int j = m; j >= 0; --j) {
    const u128 top = (u128(un[j + n]) << 64) | un[j + n - 1];
    u128 qhat = top / vn[n - 1];
    u128 rhat = top % vn[n - 1];
    while (qhat >= kBase ||
           u128(qhat) * vn[n - 2] > ((rhat << 64) | un[j + n - 2])) {
      --qhat;
      rhat += vn[n - 1];
      if (rhat >= kBase) break;
    }
    // Multiply and subtract: un[j..j+n] -= qhat * vn[0..n-1].
    u128 borrow = 0;
    u128 carry = 0;
    for (int i = 0; i < n; ++i) {
      const u128 p = qhat * vn[i] + carry;
      carry = p >> 64;
      const u128 t = u128(un[i + j]) - static_cast<uint64_t>(p) - borrow;
      un[i + j] = static_cast<uint64_t>(t);
      borrow = (t >> 64) ? 1 : 0;
    }
    const u128 t = u128(un[j + n]) - carry - borrow;
    un[j + n] = static_cast<uint64_t>(t);
    if (t >> 64) {
      // qhat was one too large: add the divisor back.
      --qhat;
      uint64_t c = 0;
      for (int i = 0; i < n; ++i) {
        const u128 sum = u128(un[i + j]) + vn[i] + c;
        un[i + j] = static_cast<uint64_t>(sum);
        c = static_cast<uint64_t>(sum >> 64);
      }
      un[j + n] += c;
    }
    quot.l_[j] = static_cast<uint64_t>(qhat);
  }
  quot.normalize();

  if (r) {
    Bignum rem;
    rem.n_ = n;
    for (int i = 0; i < n; ++i) rem.l_[i] = un[i];
    rem.normalize();
    *r = shr(rem, s);
  }
  if (q) *q = quot;
}

Bignum Bignum::div(const Bignum& a, const Bignum& b) {
  Bignum q;
  divmod(a, b, &q, nullptr);
  return q;
}

Bignum Bignum::mod(const Bignum& a, const Bignum& m) {
  Bignum r;
  divmod(a, m, nullptr, &r);
  return r;
}

Bignum Bignum::mod_add(const Bignum& a, const Bignum& b, const Bignum& m) {
  Bignum s = add(a, b);
  if (cmp(s, m) >= 0) s = sub(s, m);
  return s;
}

Bignum Bignum::mod_sub(const Bignum& a, const Bignum& b, const Bignum& m) {
  if (cmp(a, b) >= 0) return sub(a, b);
  return sub(add(a, m), b);
}

Bignum Bignum::mod_mul(const Bignum& a, const Bignum& b, const Bignum& m) {
  return mod(mul(a, b), m);
}

Bignum Bignum::mod_pow(const Bignum& base, const Bignum& exp, const Bignum& m) {
  if (m.is_zero()) throw MathError("Bignum::mod_pow: zero modulus");
  if (m.is_one()) return Bignum();
  Bignum result = from_u64(1);
  Bignum b = mod(base, m);
  for (int i = exp.bit_length() - 1; i >= 0; --i) {
    result = mod_mul(result, result, m);
    if (exp.bit(i)) result = mod_mul(result, b, m);
  }
  return result;
}

namespace {

// Extended Euclid with coefficients tracked modulo m (avoids signed bignums:
// each update t_{k+1} = t_{k-1} - q*t_k is computed in Z_m).
Bignum inverse_euclid(const Bignum& a, const Bignum& m) {
  Bignum r0 = m, r1 = Bignum::mod(a, m);
  Bignum t0, t1 = Bignum::from_u64(1);
  while (!r1.is_zero()) {
    Bignum q, r2;
    Bignum::divmod(r0, r1, &q, &r2);
    const Bignum qt = Bignum::mod(Bignum::mul(Bignum::mod(q, m), t1), m);
    const Bignum t2 = Bignum::mod_sub(t0, qt, m);
    r0 = r1;
    r1 = r2;
    t0 = t1;
    t1 = t2;
  }
  if (!r0.is_one()) throw MathError("mod_inverse: element not invertible");
  return t0;
}

// Binary extended gcd; m must be odd. Much faster than Euclid for the
// field sizes used here (no divisions, only shifts and subtractions).
Bignum inverse_binary(const Bignum& a, const Bignum& m) {
  Bignum u = Bignum::mod(a, m);
  if (u.is_zero()) throw MathError("mod_inverse: zero is not invertible");
  Bignum v = m;
  Bignum x1 = Bignum::from_u64(1);
  Bignum x2;
  const auto half_mod = [&m](Bignum x) {
    if (x.is_odd()) x = Bignum::add(x, m);
    return Bignum::shr(x, 1);
  };
  while (!u.is_one() && !v.is_one()) {
    while (!u.is_odd()) {
      u = Bignum::shr(u, 1);
      x1 = half_mod(x1);
    }
    while (!v.is_odd()) {
      v = Bignum::shr(v, 1);
      x2 = half_mod(x2);
    }
    if (Bignum::cmp(u, v) >= 0) {
      u = Bignum::sub(u, v);
      x1 = Bignum::mod_sub(x1, x2, m);
    } else {
      v = Bignum::sub(v, u);
      x2 = Bignum::mod_sub(x2, x1, m);
    }
    if (u.is_zero() || v.is_zero()) throw MathError("mod_inverse: element not invertible");
  }
  return u.is_one() ? x1 : x2;
}

}  // namespace

Bignum Bignum::mod_inverse(const Bignum& a, const Bignum& m) {
  if (m.is_zero() || m.is_one()) throw MathError("mod_inverse: bad modulus");
  return m.is_odd() ? inverse_binary(a, m) : inverse_euclid(a, m);
}

}  // namespace maabe::math
