// Primality testing.
//
// Miller-Rabin with fixed small-prime bases. For the parameter-generation
// use case (random candidates, not adversarial inputs) 40 bases give a
// composite-acceptance probability far below 4^-40.
#pragma once

#include "math/bignum.h"

namespace maabe::math {

/// Miller-Rabin probable-prime test. `rounds` caps the number of bases
/// used (at most the 40 built-in small-prime bases).
bool is_probable_prime(const Bignum& n, int rounds = 40);

}  // namespace maabe::math
