// Fixed-capacity arbitrary-precision unsigned integers.
//
// The pairing substrate needs integers up to ~1100 bits (products of
// 512-bit field elements plus headroom); Bignum stores up to kMaxLimbs
// 64-bit limbs inline, giving cheap value semantics with no heap traffic.
// All operations throw MathError on capacity overflow instead of silently
// truncating.
//
// This type is deliberately unsigned: the library only ever computes in
// residue rings, where subtraction is expressed as modular subtraction.
// Signed intermediates (extended gcd) are handled internally by the
// modular-inverse routine.
//
// None of these routines are constant-time; this is a research
// reproduction, not a hardened production crypto library (see README).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace maabe::math {

class Bignum {
 public:
  /// 2560-bit capacity: enough for products of 1024-bit values with room
  /// for division normalization.
  static constexpr int kMaxLimbs = 40;

  /// Zero.
  Bignum() = default;

  static Bignum from_u64(uint64_t v);
  /// Builds from little-endian limbs (used by the Montgomery hot path).
  static Bignum from_limbs_le(const uint64_t* limbs, int n);
  /// Parses big-endian hex, optional "0x" prefix. Throws MathError.
  static Bignum from_hex(std::string_view hex);
  /// Big-endian bytes, any length up to capacity.
  static Bignum from_bytes_be(ByteView data);

  /// Throws MathError if the value does not fit in 64 bits.
  uint64_t to_u64() const;
  /// Lowercase hex without leading zeros ("0" for zero).
  std::string to_hex() const;
  /// Big-endian, exactly `width` bytes; throws MathError if it can't fit.
  Bytes to_bytes_be(size_t width) const;
  /// Minimal big-endian encoding (empty for zero).
  Bytes to_bytes_be_min() const;

  int limb_count() const { return n_; }
  /// Returns 0 beyond the significant length.
  uint64_t limb(int i) const { return i < n_ ? l_[i] : 0; }

  bool is_zero() const { return n_ == 0; }
  bool is_odd() const { return n_ > 0 && (l_[0] & 1); }
  bool is_one() const { return n_ == 1 && l_[0] == 1; }
  /// Number of significant bits (0 for zero).
  int bit_length() const;
  /// Bit i (0 = least significant); 0 beyond the length.
  bool bit(int i) const;

  /// -1 / 0 / +1.
  static int cmp(const Bignum& a, const Bignum& b);
  friend bool operator==(const Bignum& a, const Bignum& b) { return cmp(a, b) == 0; }
  friend bool operator!=(const Bignum& a, const Bignum& b) { return cmp(a, b) != 0; }
  friend bool operator<(const Bignum& a, const Bignum& b) { return cmp(a, b) < 0; }
  friend bool operator<=(const Bignum& a, const Bignum& b) { return cmp(a, b) <= 0; }
  friend bool operator>(const Bignum& a, const Bignum& b) { return cmp(a, b) > 0; }
  friend bool operator>=(const Bignum& a, const Bignum& b) { return cmp(a, b) >= 0; }

  static Bignum add(const Bignum& a, const Bignum& b);
  /// Requires a >= b; throws MathError otherwise.
  static Bignum sub(const Bignum& a, const Bignum& b);
  static Bignum mul(const Bignum& a, const Bignum& b);
  static Bignum sqr(const Bignum& a) { return mul(a, a); }
  static Bignum shl(const Bignum& a, int bits);
  static Bignum shr(const Bignum& a, int bits);

  /// Knuth Algorithm D. Throws MathError if b == 0.
  static void divmod(const Bignum& a, const Bignum& b, Bignum* q, Bignum* r);
  static Bignum div(const Bignum& a, const Bignum& b);
  static Bignum mod(const Bignum& a, const Bignum& m);

  // Plain (non-Montgomery) modular arithmetic, for setup / one-off paths.
  // Inputs must already be reduced mod m unless stated otherwise.
  static Bignum mod_add(const Bignum& a, const Bignum& b, const Bignum& m);
  static Bignum mod_sub(const Bignum& a, const Bignum& b, const Bignum& m);
  static Bignum mod_mul(const Bignum& a, const Bignum& b, const Bignum& m);
  static Bignum mod_pow(const Bignum& base, const Bignum& exp, const Bignum& m);
  /// Binary extended gcd for odd m; general extended Euclid otherwise.
  /// Throws MathError when gcd(a, m) != 1.
  static Bignum mod_inverse(const Bignum& a, const Bignum& m);

 private:
  void normalize();
  void set_limbs(int n);

  std::array<uint64_t, kMaxLimbs> l_{};
  int n_ = 0;  // significant limbs; invariant: n_ == 0 || l_[n_-1] != 0
};

}  // namespace maabe::math
