// Montgomery modular arithmetic context for a fixed odd modulus.
//
// The pairing substrate performs millions of modular multiplications per
// benchmark run; CIOS Montgomery multiplication avoids the per-operation
// long division that plain mod-mul would need. Elements handled by a
// MontCtx are Bignums in Montgomery representation (a*R mod p, where
// R = 2^(64*limbs)); convert at the boundary with to_mont()/from_mont().
#pragma once

#include "math/bignum.h"

namespace maabe::math {

class MontCtx {
 public:
  /// Modulus must be odd and >= 3. Throws MathError otherwise.
  explicit MontCtx(const Bignum& modulus);

  const Bignum& modulus() const { return p_; }
  int limbs() const { return n_; }
  /// Bytes needed to serialize a reduced residue.
  size_t byte_length() const { return byte_len_; }
  int bit_length() const { return bits_; }

  /// a must be < modulus.
  Bignum to_mont(const Bignum& a) const;
  Bignum from_mont(const Bignum& a) const;

  /// Montgomery product of two Montgomery-form values.
  Bignum mul(const Bignum& a, const Bignum& b) const;
  /// Montgomery square: SOS with halved cross products, ~25% fewer
  /// 64x64 multiplies than mul(a, a). Identical result bits.
  Bignum sqr(const Bignum& a) const;

  // Plain modular add/sub/neg: representation-agnostic (work equally on
  // Montgomery or standard form, as long as both operands match).
  Bignum add(const Bignum& a, const Bignum& b) const;
  Bignum sub(const Bignum& a, const Bignum& b) const;
  Bignum neg(const Bignum& a) const;

  /// base in Montgomery form, exponent a plain integer; Montgomery result.
  Bignum pow(const Bignum& base, const Bignum& exp) const;
  /// Inverse of a Montgomery-form value, in Montgomery form.
  Bignum inv(const Bignum& a) const;

  /// Montgomery form of 1 (i.e. R mod p).
  const Bignum& one() const { return one_; }

 private:
  Bignum p_;
  Bignum r2_;   // R^2 mod p
  Bignum one_;  // R mod p
  uint64_t n0_ = 0;  // -p^{-1} mod 2^64
  int n_ = 0;
  int bits_ = 0;
  size_t byte_len_ = 0;
};

}  // namespace maabe::math
