#include "math/prime.h"

#include <algorithm>

#include "math/montgomery.h"

namespace maabe::math {

namespace {

constexpr uint64_t kBases[] = {2,  3,  5,  7,  11, 13, 17, 19, 23, 29,
                               31, 37, 41, 43, 47, 53, 59, 61, 67, 71,
                               73, 79, 83, 89, 97, 101, 103, 107, 109, 113,
                               127, 131, 137, 139, 149, 151, 157, 163, 167, 173};

}  // namespace

bool is_probable_prime(const Bignum& n, int rounds) {
  if (n.bit_length() <= 6) {
    const uint64_t v = n.to_u64();
    for (uint64_t p : kBases) {
      if (v == p) return true;
      if (v % p == 0) return false;
    }
    return v > 1;
  }
  if (!n.is_odd()) return false;

  // Cheap trial division first (n may itself be one of the small primes).
  for (uint64_t p : kBases) {
    if (Bignum::mod(n, Bignum::from_u64(p)).is_zero())
      return n.bit_length() <= 8 && n.to_u64() == p;
  }

  // n-1 = d * 2^s with d odd.
  const Bignum n1 = Bignum::sub(n, Bignum::from_u64(1));
  int s = 0;
  Bignum d = n1;
  while (!d.is_odd()) {
    d = Bignum::shr(d, 1);
    ++s;
  }

  const MontCtx mont(n);
  const Bignum one_m = mont.one();
  const Bignum minus_one_m = mont.neg(one_m);

  const int count = std::min<int>(rounds, std::size(kBases));
  for (int i = 0; i < count; ++i) {
    const Bignum a_m = mont.to_mont(Bignum::from_u64(kBases[i]));
    Bignum x = mont.pow(a_m, d);
    if (x == one_m || x == minus_one_m) continue;
    bool witness = true;
    for (int r = 1; r < s; ++r) {
      x = mont.sqr(x);
      if (x == minus_one_m) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

}  // namespace maabe::math
