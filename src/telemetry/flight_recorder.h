// Per-node flight recorder (DESIGN.md §16): fixed-capacity ring
// buffers that always retain the last N finished spans and typed
// events (fault injections, overload sheds, epoch decisions) per node,
// independently of whether the JSONL trace sink is enabled. Chaos and
// recovery tests arm the registry and attach a dump on failure, so a
// non-deterministic flake ships its own post-mortem instead of needing
// a rerun.
//
// Concurrency model: recording never blocks on a global lock. A writer
// claims a slot with one fetch_add on the ring cursor (wait-free), then
// publishes through that slot's seqlock-style spin guard; the guarded
// section is only the entry copy. Readers (snapshot/dump) take the same
// per-slot guards one slot at a time. Two writers contend on a slot
// only when one has lapped the whole ring; the newer entry (by global
// sequence) wins. Arming is a process-wide static atomic so the
// disarmed fast path in Tracer costs one relaxed load.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace maabe::telemetry {

struct SpanRecord;

/// One retained record: a finished span or a typed event.
struct FlightEntry {
  enum class Kind : uint8_t {
    kSpan,           ///< a finished span (tee from Tracer::emit)
    kFaultInjected,  ///< transport fault plan fired (drop/corrupt/...)
    kOverloadShed,   ///< durable queue at cap rejected or shed a send
    kEpochDecision,  ///< 2PC epoch decided (commit/abort) on a node
  };
  uint64_t seq = 0;      ///< global order across every node's ring
  uint64_t wall_us = 0;  ///< wall-clock µs (spans: wall_start_us)
  Kind kind = Kind::kSpan;
  std::string node;    ///< owning node ("process" when unattributed)
  std::string name;    ///< span name, or a short event label
  std::string detail;  ///< rendered span attrs, or event detail
  // Span-only fields (zero for events).
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;

  /// One human-readable line, stable field order, for dumps.
  std::string to_line() const;
};

/// Fixed-capacity ring of FlightEntry. See the header comment for the
/// concurrency model.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  /// Retains `entry`, evicting the oldest when full. entry.seq must be
  /// set (the registry assigns it); lapped stale writers lose.
  void record(FlightEntry entry);

  /// The retained entries in global-sequence order.
  std::vector<FlightEntry> snapshot() const;

  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    /// Per-slot spin guard (seqlock-style publication): writers and
    /// readers exchange/store with acquire/release so the entry copy
    /// is race-free under tsan.
    std::atomic<bool> busy{false};
    bool published = false;
    FlightEntry entry;
  };

  std::atomic<uint64_t> cursor_{0};
  /// unique_ptr slots: Slot holds an atomic, so the vector must never
  /// relocate construction-in-place; fixed at construction anyway.
  std::vector<std::unique_ptr<Slot>> slots_;
};

/// Process-wide registry interning one FlightRecorder per node name.
/// Disarmed by default: record_* calls are dropped at one relaxed
/// atomic load, and the Tracer does not tee spans. Tests arm it (RAII:
/// ArmedFlightRecorder) around chaos/recovery runs.
class FlightRegistry {
 public:
  static FlightRegistry& global();

  /// Arms recording; rings created afterwards use `capacity`. Clears
  /// previously retained entries so each arming is a fresh recording.
  void arm(size_t capacity = FlightRecorder::kDefaultCapacity);
  void disarm();
  static bool armed();

  /// Tee from Tracer::emit: routes by the span's `node_id` attribute
  /// ("process" when absent). No-op when disarmed.
  void record_span(const SpanRecord& rec);
  /// Typed event from an instrumentation site. No-op when disarmed.
  void record_event(const std::string& node, FlightEntry::Kind kind,
                    std::string_view name, std::string detail);

  /// The retained entries of one node's ring, oldest first. Empty for
  /// an unknown node.
  std::vector<FlightEntry> entries(const std::string& node) const;
  /// Human-readable dump of one node's ring ("<node>: <n> entries"
  /// header + one line per entry). Used by
  /// Cluster::dump_flight_recorder and failing chaos tests.
  std::string dump(const std::string& node) const;
  /// Every node that has a ring, in name order.
  std::vector<std::string> nodes() const;

 private:
  FlightRecorder& recorder_locked(const std::string& node);

  static std::atomic<bool> armed_;
  std::atomic<uint64_t> seq_{1};
  mutable std::mutex mu_;  ///< guards the ring map, not the rings
  size_t capacity_ = FlightRecorder::kDefaultCapacity;
  std::map<std::string, std::unique_ptr<FlightRecorder>> recorders_;
};

/// RAII arming for tests: arms on construction, disarms on scope exit
/// so the process-wide default (disarmed, zero overhead) is restored
/// even when a test fails by exception.
class ArmedFlightRecorder {
 public:
  explicit ArmedFlightRecorder(size_t capacity = FlightRecorder::kDefaultCapacity) {
    FlightRegistry::global().arm(capacity);
  }
  ~ArmedFlightRecorder() { FlightRegistry::global().disarm(); }
  ArmedFlightRecorder(const ArmedFlightRecorder&) = delete;
  ArmedFlightRecorder& operator=(const ArmedFlightRecorder&) = delete;
};

}  // namespace maabe::telemetry
