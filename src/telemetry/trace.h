// Operation tracing (DESIGN.md §11): Span/Tracer with trace + span ids
// propagated through CloudSystem operations down into CryptoEngine
// batches, CloudServer shard ops and Transport frames, so one
// revocation epoch yields a causally-linked span tree including every
// per-retry transport event.
//
// Propagation model: starting a span makes it the calling thread's
// *current* span; spans started later on the same call stack become its
// children automatically. Work handed to another thread (CryptoEngine
// pool workers) captures `Tracer::current()` before the hop and starts
// the child with the explicit-parent overload. Ending a span restores
// the previous current span, so strict RAII nesting holds per thread.
//
// Cost model: tracing is off by default. A disabled tracer hands out
// inert spans — no id allocation, no clock read, two relaxed atomic
// loads — so instrumented hot paths stay within the <1% overhead
// budget. When enabled, finished spans are handed to the sink through a
// flush-combining queue: emitters enqueue under the lock, one thread
// drains outside it, so file I/O never serializes concurrent emitters.
// The stock sink is JSON-lines (one object per line). Independently of
// the sink, an armed FlightRegistry (flight_recorder.h) tees every
// finished span into per-node ring buffers, so the last N spans survive
// for post-mortems even with the JSONL sink disabled.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace maabe::telemetry {

/// Ids that link a span into its trace. span_id 0 means "no span".
struct SpanContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool valid() const { return span_id != 0; }
};

/// A finished span as handed to the sink.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 for a trace root
  std::string name;
  uint64_t start_ns = 0;  ///< steady-clock, process-relative
  uint64_t end_ns = 0;
  /// Wall-clock start (µs since the Unix epoch), derived from a
  /// one-time per-process (steady, wall) anchor so traces from
  /// different runs/nodes can be aligned on a shared timeline while
  /// start_ns/end_ns keep steady-clock monotonicity for durations.
  uint64_t wall_start_us = 0;
  std::vector<std::pair<std::string, std::string>> attrs;

  /// One JSON object, no trailing newline. Numeric ids are emitted as
  /// decimal strings so 64-bit values survive lossy JSON readers.
  std::string to_json_line() const;
};

class Tracer;

/// RAII span handle. Default-constructed or disabled-tracer spans are
/// inert: every method is a no-op. Ends (and emits) on destruction,
/// including during exception unwinding — a faulted transport frame
/// still records its span with the outcome attribute already set.
class Span {
 public:
  Span() = default;
  Span(Span&& o) noexcept;
  Span& operator=(Span&& o) noexcept;
  ~Span() { end(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return rec_ != nullptr; }
  /// Context for explicit-parent propagation across threads. Invalid
  /// (all-zero) when inert, so cross-thread children of an untraced
  /// operation are themselves inert roots.
  SpanContext context() const;

  void attr(std::string_view key, std::string_view value);
  void attr(std::string_view key, uint64_t value);

  /// Emit now (idempotent). Restores the thread's previous current
  /// span; must be called on the thread that started the span.
  void end();

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::unique_ptr<SpanRecord> rec, SpanContext prev,
       bool scoped)
      : tracer_(tracer), rec_(std::move(rec)), prev_(prev), scoped_(scoped) {}

  Tracer* tracer_ = nullptr;
  std::unique_ptr<SpanRecord> rec_;
  SpanContext prev_;    // thread-local current to restore on end()
  bool scoped_ = false; // whether this span installed itself as current
};

/// RAII override of the calling thread's current span context,
/// restored on scope exit. Used by replay paths (DurableLink) that
/// must run under the context captured when the work was parked — an
/// op parked during one operation must not attach its transport spans
/// to whatever operation happens to trigger the flush. Overriding
/// with an invalid context detaches the scope from the ambient trace.
class ContextOverride {
 public:
  explicit ContextOverride(const SpanContext& ctx);
  ~ContextOverride();
  ContextOverride(const ContextOverride&) = delete;
  ContextOverride& operator=(const ContextOverride&) = delete;

 private:
  SpanContext prev_;
};

class Tracer {
 public:
  /// The process-wide tracer (never destroyed).
  static Tracer& global();

  using Sink = std::function<void(const SpanRecord&)>;

  /// Turn tracing on, routing finished spans to `sink`. Replaces any
  /// previous sink. Sink calls are serialized by the tracer.
  void enable(Sink sink);
  /// Turn tracing off and drop the sink (flushes file sinks that close
  /// on destruction). Spans still alive keep recording and are
  /// silently discarded when they end.
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Child of the calling thread's current span; a new trace root when
  /// there is none. Becomes the thread's current span until it ends.
  Span start_span(std::string_view name);
  /// Scoped child of an explicit parent: becomes the thread's current
  /// span until it ends, but links to `parent` instead of the ambient
  /// context. This is the wire-rehydration primitive — a receiving
  /// node continues the sender's trace and everything it does nests
  /// under the propagated context. An invalid parent yields an inert
  /// span: an untraced frame stays untraced on the receiving side.
  Span start_span(std::string_view name, const SpanContext& parent);
  /// Child of an explicit parent (cross-thread propagation). Does NOT
  /// become the thread's current span. An invalid parent yields an
  /// inert span: untraced callers stay untraced across thread hops.
  Span start_child(std::string_view name, const SpanContext& parent);

  /// The calling thread's current span context (invalid when none).
  static SpanContext current();

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  friend class Span;

  Span make_span(std::string_view name, const SpanContext& parent, bool scoped);
  void emit(const SpanRecord& rec);
  static uint64_t now_ns();
  /// Spans are real when the sink is on OR the flight registry is
  /// armed (rings retain spans with the JSONL sink disabled).
  bool recording() const;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  // Flush-combining sink state: emitters append to queue_ under
  // sink_mu_; the first one becomes the flusher and drains batches
  // with the lock released, so the sink callback (file I/O) never
  // runs under the lock and re-entrant emits from inside a sink
  // cannot deadlock. enable()/disable() wait out an active flusher.
  std::mutex sink_mu_;
  std::condition_variable flush_cv_;
  std::vector<SpanRecord> queue_;
  bool flushing_ = false;
  Sink sink_;
};

/// Span sink appending one JSON object per line to a file. Copyable
/// (shares the underlying stream); the file closes when the last copy
/// is destroyed — i.e. on Tracer::disable() for the installed copy.
class JsonLinesSink {
 public:
  /// Truncates `path`. Throws std::runtime_error if it cannot be opened.
  explicit JsonLinesSink(const std::string& path);
  void operator()(const SpanRecord& rec);

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace maabe::telemetry
