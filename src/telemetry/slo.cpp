#include "telemetry/slo.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/metrics.h"

namespace maabe::telemetry {
namespace {

double burn_rate(double bad_fraction, double objective) {
  const double budget = 1.0 - objective;
  if (budget <= 1e-12) return bad_fraction > 0.0 ? 1e12 : 0.0;
  return bad_fraction / budget;
}

}  // namespace

SloTracker::SloTracker(SloSpec spec, size_t short_window, size_t long_window)
    : spec_(std::move(spec)),
      short_window_(std::max<size_t>(1, short_window)),
      long_window_(std::max(std::max<size_t>(1, long_window), short_window_)) {
  ring_.assign(long_window_, 0);
}

void SloTracker::record(double ms, bool failed) {
  const bool bad =
      spec_.kind == SloSpec::Kind::kLatency ? (failed || ms > spec_.threshold_ms)
                                            : failed;
  std::lock_guard<std::mutex> lock(mu_);
  ring_[pos_ % long_window_] = bad ? 1 : 0;
  ++pos_;
  ++total_;
  if (bad) ++total_bad_;
}

double SloTracker::bad_fraction_locked(size_t window) const {
  const size_t have = std::min<size_t>(pos_, long_window_);
  const size_t n = std::min(window, have);
  if (n == 0) return 0.0;
  uint64_t bad = 0;
  for (size_t i = 0; i < n; ++i)
    bad += ring_[(pos_ - 1 - i) % long_window_];
  return static_cast<double>(bad) / static_cast<double>(n);
}

SloStatus SloTracker::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  SloStatus s;
  s.name = spec_.name;
  s.kind = spec_.kind;
  s.threshold_ms = spec_.threshold_ms;
  s.objective = spec_.objective;
  s.samples = total_;
  s.bad = total_bad_;
  s.bad_fraction_short = bad_fraction_locked(short_window_);
  s.bad_fraction_long = bad_fraction_locked(long_window_);
  s.burn_short = burn_rate(s.bad_fraction_short, spec_.objective);
  s.burn_long = burn_rate(s.bad_fraction_long, spec_.objective);
  s.met = total_ == 0 || s.burn_long <= 1.0;
  return s;
}

SloPlane::SloPlane(std::vector<SloSpec> specs) {
  trackers_.reserve(specs.size());
  for (SloSpec& spec : specs)
    trackers_.push_back(std::make_unique<SloTracker>(std::move(spec)));
}

std::vector<SloSpec> SloPlane::parse(const std::string& spec) {
  std::vector<SloSpec> out;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(start, comma - start);
    start = comma + 1;
    if (token.empty()) continue;
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::invalid_argument("bad SLO token (want name=value): " + token);
    SloSpec s;
    s.name = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    const size_t at = value.find('@');
    std::string objective_str;
    if (at != std::string::npos) {
      objective_str = value.substr(at + 1);
      value = value.substr(0, at);
    }
    double v = 0.0, obj = 0.0;
    try {
      v = std::stod(value);
      if (!objective_str.empty()) obj = std::stod(objective_str);
    } catch (const std::exception&) {
      throw std::invalid_argument("bad SLO value in token: " + token);
    }
    if (s.name.find("error_rate") != std::string::npos) {
      s.kind = SloSpec::Kind::kErrorRate;
      if (v < 0.0 || v >= 1.0)
        throw std::invalid_argument("error-rate SLO wants a fraction in [0,1): " +
                                    token);
      s.objective = 1.0 - v;
    } else {
      s.kind = SloSpec::Kind::kLatency;
      if (v <= 0.0)
        throw std::invalid_argument("latency SLO wants a positive ms threshold: " +
                                    token);
      s.threshold_ms = v;
      s.objective = 0.99;
    }
    if (!objective_str.empty()) {
      if (obj <= 0.0 || obj >= 1.0)
        throw std::invalid_argument("SLO objective wants a fraction in (0,1): " +
                                    token);
      s.objective = obj;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void SloPlane::observe(std::string_view name, double ms, bool failed) {
  for (const auto& t : trackers_) {
    if (t->spec().name == name) t->record(ms, failed);
  }
}

std::vector<SloStatus> SloPlane::status() const {
  std::vector<SloStatus> out;
  out.reserve(trackers_.size());
  for (const auto& t : trackers_) out.push_back(t->status());
  return out;
}

void SloPlane::export_gauges() const {
  auto& reg = MetricsRegistry::global();
  for (const SloStatus& s : status()) {
    const std::string base = "maabe_slo_" + s.name;
    reg.gauge(base + "_met").set(s.met ? 1 : 0);
    reg.gauge(base + "_burn_short_x1000")
        .set(static_cast<int64_t>(std::lround(
            std::min(s.burn_short, 1e6) * 1000.0)));
    reg.gauge(base + "_burn_long_x1000")
        .set(static_cast<int64_t>(std::lround(
            std::min(s.burn_long, 1e6) * 1000.0)));
    reg.gauge(base + "_samples").set(static_cast<int64_t>(s.samples));
  }
}

}  // namespace maabe::telemetry
