#include "telemetry/metrics.h"

#include <algorithm>
#include <sstream>

namespace maabe::telemetry {
namespace {

std::atomic<size_t> g_next_thread_slot{0};
std::atomic<bool> g_op_timing{false};

}  // namespace

size_t Counter::cell_index() noexcept {
  // Round-robin slot assignment at first use per thread: cheaper and
  // better distributed than hashing std::thread::id.
  static thread_local const size_t slot =
      g_next_thread_slot.fetch_add(1, std::memory_order_relaxed) % kCells;
  return slot;
}

Histogram::Histogram(std::vector<uint64_t> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = latency_ns_bounds();
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(uint64_t v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

Histogram::Data Histogram::data() const {
  Data d;
  d.bounds = bounds_;
  d.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i)
    d.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  d.count = count_.load(std::memory_order_relaxed);
  d.sum = sum_.load(std::memory_order_relaxed);
  return d;
}

std::vector<uint64_t> Histogram::latency_ns_bounds() {
  std::vector<uint64_t> b;
  for (uint64_t v = 1000; v <= 1'000'000'000ull; v *= 4) b.push_back(v);
  return b;
}

uint64_t Snapshot::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

int64_t Snapshot::gauge(const std::string& name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0 : it->second;
}

void Snapshot::add_gauge(const std::string& name, int64_t v) {
  gauges[name] += v;
}

namespace {

/// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*.
/// Registry names are free-form (collector contributions interpolate
/// node names like "node:1" — ':' is legal, but '-' or '.' are not),
/// so the exposition maps every other character to '_' and prefixes a
/// leading digit.
std::string sanitize_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

}  // namespace

std::string Snapshot::prometheus_text() const {
  std::ostringstream out;
  for (const auto& [name, v] : counters) {
    const std::string n = sanitize_metric_name(name);
    out << "# HELP " << n << " Monotonic counter " << n << ".\n";
    out << "# TYPE " << n << " counter\n" << n << " " << v << "\n";
  }
  for (const auto& [name, v] : gauges) {
    const std::string n = sanitize_metric_name(name);
    out << "# HELP " << n << " Point-in-time gauge " << n << ".\n";
    out << "# TYPE " << n << " gauge\n" << n << " " << v << "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string n = sanitize_metric_name(name);
    out << "# HELP " << n << " Cumulative histogram " << n << ".\n";
    out << "# TYPE " << n << " histogram\n";
    // Canonical le order: ascending finite bounds, then +Inf; buckets
    // are cumulative so each count includes every bucket below it.
    uint64_t cum = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cum += h.counts[i];
      out << n << "_bucket{le=\"" << h.bounds[i] << "\"} " << cum << "\n";
    }
    out << n << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << n << "_sum " << h.sum << "\n";
    out << n << "_count " << h.count << "\n";
  }
  return out.str();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // intentionally leaked
  return *reg;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge()))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram(std::move(bounds))))
             .first;
  }
  return *it->second;
}

MetricsRegistry::CollectorToken::CollectorToken(CollectorToken&& o) noexcept
    : reg_(o.reg_), id_(o.id_) {
  o.reg_ = nullptr;
  o.id_ = 0;
}

MetricsRegistry::CollectorToken& MetricsRegistry::CollectorToken::operator=(
    CollectorToken&& o) noexcept {
  if (this != &o) {
    reset();
    reg_ = o.reg_;
    id_ = o.id_;
    o.reg_ = nullptr;
    o.id_ = 0;
  }
  return *this;
}

void MetricsRegistry::CollectorToken::reset() {
  if (reg_ != nullptr) {
    std::lock_guard<std::mutex> lock(reg_->collector_mu_);
    reg_->collectors_.erase(id_);
    reg_ = nullptr;
    id_ = 0;
  }
}

MetricsRegistry::CollectorToken MetricsRegistry::register_collector(Collector fn) {
  std::lock_guard<std::mutex> lock(collector_mu_);
  const uint64_t id = next_collector_id_++;
  collectors_.emplace(id, std::move(fn));
  return CollectorToken(this, id);
}

Snapshot MetricsRegistry::collect() const {
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
    for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
    for (const auto& [name, h] : histograms_) snap.histograms[name] = h->data();
  }
  // Callbacks run without the registry mutex: a collector may read
  // subsystem state whose locks are held around metric updates
  // elsewhere (queue depth vs. a handler bumping a counter) without a
  // lock-order cycle. collector_mu_ keeps the token guarantee: reset()
  // returns only once no callback is in flight.
  std::lock_guard<std::mutex> lock(collector_mu_);
  for (const auto& [id, fn] : collectors_) fn(snap);
  return snap;
}

bool op_timing_enabled() noexcept {
  return g_op_timing.load(std::memory_order_relaxed);
}

void set_op_timing(bool on) noexcept {
  g_op_timing.store(on, std::memory_order_relaxed);
}

}  // namespace maabe::telemetry
