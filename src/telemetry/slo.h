// SLO plane (DESIGN.md §16): rolling-window service-level objectives
// with multi-window burn rates, fed by the workload harness and
// exported as maabe_slo_* gauges.
//
// Model: every objective is a good-fraction target over a stream of
// samples. A latency SLO "download_p99_ms=250@0.99" means "at least
// 99% of downloads finish within 250 ms" — a sample is bad when it
// misses the threshold or fails outright. An error-rate SLO
// "error_rate=0.01" means "at most 1% of operations fail".
//
// Burn rate (SRE convention): bad_fraction / error_budget where
// error_budget = 1 - objective. burn == 1.0 consumes the budget
// exactly as fast as allowed; burn > 1 means the objective will be
// violated if the window's behaviour continues. Two windows are
// computed — a short window that reacts fast (paging signal) and a
// long window that smooths bursts (ticket signal); `met` reports the
// long window staying within budget.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace maabe::telemetry {

struct SloSpec {
  enum class Kind {
    kLatency,    ///< sample bad when latency > threshold_ms or failed
    kErrorRate,  ///< sample bad when the operation failed
  };
  std::string name;  ///< e.g. "download_p99_ms"; keyed by the feeder
  Kind kind = Kind::kLatency;
  double threshold_ms = 0.0;  ///< kLatency only
  double objective = 0.99;    ///< required good fraction (0,1)
};

struct SloStatus {
  std::string name;
  SloSpec::Kind kind = SloSpec::Kind::kLatency;
  double threshold_ms = 0.0;
  double objective = 0.99;
  uint64_t samples = 0;  ///< lifetime samples recorded
  uint64_t bad = 0;      ///< lifetime bad samples
  double bad_fraction_short = 0.0;
  double bad_fraction_long = 0.0;
  double burn_short = 0.0;  ///< short-window burn-rate multiplier
  double burn_long = 0.0;   ///< long-window burn-rate multiplier
  bool met = true;          ///< long-window burn <= 1 (or no samples)
};

/// One objective's rolling windows. record() is mutex-guarded (the
/// harness drives it from the op loop; contention is negligible next
/// to the crypto work being measured).
class SloTracker {
 public:
  static constexpr size_t kShortWindow = 64;
  static constexpr size_t kLongWindow = 512;

  explicit SloTracker(SloSpec spec, size_t short_window = kShortWindow,
                      size_t long_window = kLongWindow);

  /// kLatency: bad when failed or ms > threshold. kErrorRate: bad when
  /// failed (ms ignored).
  void record(double ms, bool failed);

  SloStatus status() const;
  const SloSpec& spec() const { return spec_; }

 private:
  double bad_fraction_locked(size_t window) const;

  SloSpec spec_;
  size_t short_window_;
  size_t long_window_;
  mutable std::mutex mu_;
  std::vector<uint8_t> ring_;  ///< 1 = bad, newest at (pos_ - 1)
  size_t pos_ = 0;
  uint64_t total_ = 0;
  uint64_t total_bad_ = 0;
};

/// A set of trackers keyed by SLO name. Feeders call observe() with
/// the SLO name they map to; unknown names are dropped, so the harness
/// instruments unconditionally and the --slo spec decides what is
/// actually tracked.
class SloPlane {
 public:
  SloPlane() = default;
  explicit SloPlane(std::vector<SloSpec> specs);

  /// Parses a spec string: comma-separated `name=value[@objective]`.
  /// A name containing "error_rate" is an error-rate SLO whose value
  /// is the allowed bad fraction (objective = 1 - value); any other
  /// name is a latency SLO whose value is the threshold in ms with a
  /// default objective of 0.99. Throws std::invalid_argument on a
  /// malformed token. Example:
  ///   "download_p99_ms=250,epoch_commit_ms=2000@0.95,error_rate=0.01"
  static std::vector<SloSpec> parse(const std::string& spec);

  bool empty() const { return trackers_.empty(); }

  /// Feed one sample to the named objective (no-op when untracked).
  void observe(std::string_view name, double ms, bool failed);

  std::vector<SloStatus> status() const;

  /// Publishes maabe_slo_<name>_{met,burn_short_x1000,burn_long_x1000,
  /// samples} gauges into the global MetricsRegistry, so SLO state
  /// rides the existing snapshot/exposition path (status documents,
  /// BENCH telemetry blocks, prometheus_text).
  void export_gauges() const;

 private:
  std::vector<std::unique_ptr<SloTracker>> trackers_;
};

}  // namespace maabe::telemetry
