#include "telemetry/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "telemetry/flight_recorder.h"

namespace maabe::telemetry {
namespace {

thread_local SpanContext tl_current;

/// One-time per-process pairing of the steady and wall clocks, taken
/// together on first use. Every span's wall_start_us is derived from
/// its steady start_ns against this anchor, so all spans of a process
/// share one consistent steady->wall mapping (no per-span wall reads,
/// immune to wall-clock steps mid-run).
struct WallAnchor {
  uint64_t steady_ns;
  uint64_t wall_us;
};

const WallAnchor& wall_anchor() {
  static const WallAnchor anchor = [] {
    WallAnchor a;
    a.steady_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    a.wall_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    return a;
  }();
  return anchor;
}

uint64_t wall_us_of(uint64_t steady_ns) {
  const WallAnchor& a = wall_anchor();
  // steady_ns predating the anchor can only happen for the anchoring
  // call itself (sub-µs skew); clamp instead of wrapping.
  const uint64_t delta_ns = steady_ns >= a.steady_ns ? steady_ns - a.steady_ns : 0;
  return a.wall_us + delta_ns / 1000;
}

void json_escape_to(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string SpanRecord::to_json_line() const {
  std::string out = "{";
  out += "\"trace_id\":\"" + std::to_string(trace_id) + "\"";
  out += ",\"span_id\":\"" + std::to_string(span_id) + "\"";
  out += ",\"parent_id\":\"" + std::to_string(parent_id) + "\"";
  out += ",\"name\":\"";
  json_escape_to(out, name);
  out += "\",\"start_ns\":" + std::to_string(start_ns);
  out += ",\"end_ns\":" + std::to_string(end_ns);
  out += ",\"wall_start_us\":" + std::to_string(wall_start_us);
  out += ",\"attrs\":{";
  bool first = true;
  for (const auto& [k, v] : attrs) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    json_escape_to(out, k);
    out += "\":\"";
    json_escape_to(out, v);
    out += "\"";
  }
  out += "}}";
  return out;
}

Span::Span(Span&& o) noexcept
    : tracer_(o.tracer_), rec_(std::move(o.rec_)), prev_(o.prev_),
      scoped_(o.scoped_) {
  o.tracer_ = nullptr;
  o.scoped_ = false;
}

Span& Span::operator=(Span&& o) noexcept {
  if (this != &o) {
    end();
    tracer_ = o.tracer_;
    rec_ = std::move(o.rec_);
    prev_ = o.prev_;
    scoped_ = o.scoped_;
    o.tracer_ = nullptr;
    o.scoped_ = false;
  }
  return *this;
}

SpanContext Span::context() const {
  if (!rec_) return {};
  return {rec_->trace_id, rec_->span_id};
}

void Span::attr(std::string_view key, std::string_view value) {
  if (rec_) rec_->attrs.emplace_back(std::string(key), std::string(value));
}

void Span::attr(std::string_view key, uint64_t value) {
  if (rec_) rec_->attrs.emplace_back(std::string(key), std::to_string(value));
}

void Span::end() {
  if (!rec_) return;
  if (scoped_) tl_current = prev_;
  rec_->end_ns = Tracer::now_ns();
  tracer_->emit(*rec_);
  rec_.reset();
  tracer_ = nullptr;
  scoped_ = false;
}

ContextOverride::ContextOverride(const SpanContext& ctx) : prev_(tl_current) {
  tl_current = ctx;
}

ContextOverride::~ContextOverride() { tl_current = prev_; }

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // intentionally leaked
  return *tracer;
}

void Tracer::enable(Sink sink) {
  std::unique_lock<std::mutex> lock(sink_mu_);
  // Wait out an active flusher so records queued for the old sink are
  // not delivered to the new one.
  flush_cv_.wait(lock, [this] { return !flushing_; });
  sink_ = std::move(sink);
  enabled_.store(sink_ != nullptr, std::memory_order_relaxed);
}

void Tracer::disable() {
  std::unique_lock<std::mutex> lock(sink_mu_);
  enabled_.store(false, std::memory_order_relaxed);
  // Drain: the flusher loops until the queue is empty, so once it is
  // done every record emitted before disable() has reached the sink.
  flush_cv_.wait(lock, [this] { return !flushing_; });
  sink_ = nullptr;
}

bool Tracer::recording() const {
  return enabled() || FlightRegistry::armed();
}

Span Tracer::start_span(std::string_view name) {
  if (!recording()) return {};
  return make_span(name, tl_current, /*scoped=*/true);
}

Span Tracer::start_span(std::string_view name, const SpanContext& parent) {
  if (!recording() || !parent.valid()) return {};
  return make_span(name, parent, /*scoped=*/true);
}

Span Tracer::start_child(std::string_view name, const SpanContext& parent) {
  if (!recording() || !parent.valid()) return {};
  return make_span(name, parent, /*scoped=*/false);
}

SpanContext Tracer::current() { return tl_current; }

Span Tracer::make_span(std::string_view name, const SpanContext& parent,
                       bool scoped) {
  auto rec = std::make_unique<SpanRecord>();
  rec->span_id = next_id_.fetch_add(1, std::memory_order_relaxed);
  rec->trace_id = parent.valid() ? parent.trace_id : rec->span_id;
  rec->parent_id = parent.valid() ? parent.span_id : 0;
  rec->name = std::string(name);
  rec->start_ns = now_ns();
  rec->wall_start_us = wall_us_of(rec->start_ns);
  const SpanContext prev = tl_current;
  if (scoped) tl_current = {rec->trace_id, rec->span_id};
  return Span(this, std::move(rec), prev, scoped);
}

void Tracer::emit(const SpanRecord& rec) {
  // The flight-recorder tee is independent of the sink: armed rings
  // retain spans even when JSONL output is off.
  if (FlightRegistry::armed()) FlightRegistry::global().record_span(rec);

  std::unique_lock<std::mutex> lock(sink_mu_);
  // Late-ending spans after disable() are dropped, not crashed on.
  if (!sink_) return;
  queue_.push_back(rec);
  if (flushing_) return;  // the active flusher will pick this up
  flushing_ = true;
  while (!queue_.empty()) {
    std::vector<SpanRecord> batch;
    batch.swap(queue_);
    // Copy the sink so enable()/disable() racing this flush cannot
    // invalidate it mid-batch (both wait for !flushing_ anyway).
    Sink sink = sink_;
    lock.unlock();
    for (const SpanRecord& r : batch) sink(r);
    lock.lock();
  }
  flushing_ = false;
  lock.unlock();
  flush_cv_.notify_all();
}

uint64_t Tracer::now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct JsonLinesSink::Impl {
  std::ofstream out;
};

JsonLinesSink::JsonLinesSink(const std::string& path)
    : impl_(std::make_shared<Impl>()) {
  impl_->out.open(path, std::ios::out | std::ios::trunc);
  if (!impl_->out.is_open())
    throw std::runtime_error("cannot open trace output file: " + path);
}

void JsonLinesSink::operator()(const SpanRecord& rec) {
  impl_->out << rec.to_json_line() << '\n';
  impl_->out.flush();
}

}  // namespace maabe::telemetry
