#include "telemetry/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace maabe::telemetry {
namespace {

thread_local SpanContext tl_current;

void json_escape_to(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string SpanRecord::to_json_line() const {
  std::string out = "{";
  out += "\"trace_id\":\"" + std::to_string(trace_id) + "\"";
  out += ",\"span_id\":\"" + std::to_string(span_id) + "\"";
  out += ",\"parent_id\":\"" + std::to_string(parent_id) + "\"";
  out += ",\"name\":\"";
  json_escape_to(out, name);
  out += "\",\"start_ns\":" + std::to_string(start_ns);
  out += ",\"end_ns\":" + std::to_string(end_ns);
  out += ",\"attrs\":{";
  bool first = true;
  for (const auto& [k, v] : attrs) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    json_escape_to(out, k);
    out += "\":\"";
    json_escape_to(out, v);
    out += "\"";
  }
  out += "}}";
  return out;
}

Span::Span(Span&& o) noexcept
    : tracer_(o.tracer_), rec_(std::move(o.rec_)), prev_(o.prev_),
      scoped_(o.scoped_) {
  o.tracer_ = nullptr;
  o.scoped_ = false;
}

Span& Span::operator=(Span&& o) noexcept {
  if (this != &o) {
    end();
    tracer_ = o.tracer_;
    rec_ = std::move(o.rec_);
    prev_ = o.prev_;
    scoped_ = o.scoped_;
    o.tracer_ = nullptr;
    o.scoped_ = false;
  }
  return *this;
}

SpanContext Span::context() const {
  if (!rec_) return {};
  return {rec_->trace_id, rec_->span_id};
}

void Span::attr(std::string_view key, std::string_view value) {
  if (rec_) rec_->attrs.emplace_back(std::string(key), std::string(value));
}

void Span::attr(std::string_view key, uint64_t value) {
  if (rec_) rec_->attrs.emplace_back(std::string(key), std::to_string(value));
}

void Span::end() {
  if (!rec_) return;
  if (scoped_) tl_current = prev_;
  rec_->end_ns = Tracer::now_ns();
  tracer_->emit(*rec_);
  rec_.reset();
  tracer_ = nullptr;
  scoped_ = false;
}

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // intentionally leaked
  return *tracer;
}

void Tracer::enable(Sink sink) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  sink_ = std::move(sink);
  enabled_.store(sink_ != nullptr, std::memory_order_relaxed);
}

void Tracer::disable() {
  std::lock_guard<std::mutex> lock(sink_mu_);
  enabled_.store(false, std::memory_order_relaxed);
  sink_ = nullptr;
}

Span Tracer::start_span(std::string_view name) {
  if (!enabled()) return {};
  return make_span(name, tl_current, /*scoped=*/true);
}

Span Tracer::start_child(std::string_view name, const SpanContext& parent) {
  if (!enabled() || !parent.valid()) return {};
  return make_span(name, parent, /*scoped=*/false);
}

SpanContext Tracer::current() { return tl_current; }

Span Tracer::make_span(std::string_view name, const SpanContext& parent,
                       bool scoped) {
  auto rec = std::make_unique<SpanRecord>();
  rec->span_id = next_id_.fetch_add(1, std::memory_order_relaxed);
  rec->trace_id = parent.valid() ? parent.trace_id : rec->span_id;
  rec->parent_id = parent.valid() ? parent.span_id : 0;
  rec->name = std::string(name);
  rec->start_ns = now_ns();
  const SpanContext prev = tl_current;
  if (scoped) tl_current = {rec->trace_id, rec->span_id};
  return Span(this, std::move(rec), prev, scoped);
}

void Tracer::emit(const SpanRecord& rec) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  // Late-ending spans after disable() are dropped, not crashed on.
  if (sink_) sink_(rec);
}

uint64_t Tracer::now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct JsonLinesSink::Impl {
  std::ofstream out;
};

JsonLinesSink::JsonLinesSink(const std::string& path)
    : impl_(std::make_shared<Impl>()) {
  impl_->out.open(path, std::ios::out | std::ios::trunc);
  if (!impl_->out.is_open())
    throw std::runtime_error("cannot open trace output file: " + path);
}

void JsonLinesSink::operator()(const SpanRecord& rec) {
  impl_->out << rec.to_json_line() << '\n';
  impl_->out.flush();
}

}  // namespace maabe::telemetry
