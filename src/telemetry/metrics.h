// Process-wide metrics: a registry of named counters, gauges and
// fixed-bucket latency histograms (DESIGN.md §11).
//
// Hot paths (pairings, multi-exps, shard lookups, frame sends) record
// through std::atomic cells — counters shard their cells across cache
// lines so concurrent writers do not bounce a single line. The registry
// mutex is touched only when a metric handle is first interned; callers
// cache the returned reference (handles live until process exit).
//
// Snapshots are pull-based: collect() sums the cells and then runs the
// registered collector callbacks, which let subsystems that keep their
// own structured stats (ChannelMeter totals, CloudServer shard stats,
// CloudSystem health) contribute point-in-time gauges. The result
// renders as a Prometheus-style text exposition via prometheus_text().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace maabe::telemetry {

/// Monotonic counter. add() is lock-free and wait-free: each thread
/// hashes to one of kCells cache-line-sized cells and does a relaxed
/// fetch_add there; value() sums the cells (so a concurrent read may
/// miss in-flight adds, but never tears below a previously-read value
/// of any single cell).
class Counter {
 public:
  void add(uint64_t delta) noexcept {
    cells_[cell_index()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  uint64_t value() const noexcept {
    uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class MetricsRegistry;
  Counter() = default;

  static constexpr size_t kCells = 8;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  static size_t cell_index() noexcept;

  Cell cells_[kCells];
};

/// Last-write-wins signed value (queue depths, sizes).
class Gauge {
 public:
  void set(int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<int64_t> v_{0};
};

/// Fixed-bucket histogram. observe() is lock-free: a binary search over
/// the (immutable) bounds plus three relaxed fetch_adds. Bounds are
/// cumulative upper bounds in ascending order; an implicit +Inf bucket
/// catches the tail, matching Prometheus `le` semantics.
class Histogram {
 public:
  void observe(uint64_t v) noexcept;

  const std::vector<uint64_t>& bounds() const { return bounds_; }

  struct Data {
    std::vector<uint64_t> bounds;  ///< upper bounds (no +Inf entry)
    std::vector<uint64_t> counts;  ///< per-bucket, size = bounds.size() + 1
    uint64_t count = 0;            ///< total observations
    uint64_t sum = 0;              ///< sum of observed values
  };
  Data data() const;

  /// Default bounds for nanosecond latencies: 1us .. 1s, x4 steps.
  static std::vector<uint64_t> latency_ns_bounds();

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<uint64_t> bounds);

  std::vector<uint64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Point-in-time view of every metric, plus collector contributions.
struct Snapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Histogram::Data> histograms;

  /// 0 / absent-safe lookups (missing names are not an error).
  uint64_t counter(const std::string& name) const;
  int64_t gauge(const std::string& name) const;

  /// Collector API: merge a gauge contribution (adds to an existing
  /// value so several CloudSystems in one process sum naturally).
  void add_gauge(const std::string& name, int64_t v);

  /// Prometheus text exposition: `# TYPE` lines, counters suffixed
  /// `_total` by convention of the recording site, histograms expanded
  /// to `_bucket{le="..."}` / `_sum` / `_count` series.
  std::string prometheus_text() const;
};

class MetricsRegistry {
 public:
  /// The process-wide registry (never destroyed; safe during static
  /// teardown of other objects).
  static MetricsRegistry& global();

  /// Intern a metric by name. Repeated calls with the same name return
  /// the same handle; the reference stays valid for the process
  /// lifetime. A histogram's bounds are fixed by the first caller.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<uint64_t> bounds = {});

  /// Snapshot-time contributions from subsystems with structured stats.
  /// The callback runs with the registry mutex RELEASED (under a
  /// dedicated collector mutex), so it may read state guarded by locks
  /// that are themselves held around metric updates — e.g. a queue
  /// mutex held while a handler bumps a counter — without creating a
  /// lock-order cycle. It must not call collect() or
  /// register_collector() re-entrantly.
  using Collector = std::function<void(Snapshot&)>;

  /// RAII deregistration: the collector stops being invoked when the
  /// token is destroyed (CloudSystem holds one for its lifetime).
  class CollectorToken {
   public:
    CollectorToken() = default;
    CollectorToken(CollectorToken&& o) noexcept;
    CollectorToken& operator=(CollectorToken&& o) noexcept;
    ~CollectorToken() { reset(); }
    void reset();

   private:
    friend class MetricsRegistry;
    CollectorToken(MetricsRegistry* reg, uint64_t id) : reg_(reg), id_(id) {}
    MetricsRegistry* reg_ = nullptr;
    uint64_t id_ = 0;
  };
  [[nodiscard]] CollectorToken register_collector(Collector fn);

  Snapshot collect() const;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  friend class CollectorToken;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;

  // Collectors live under their own mutex, never taken by the metric
  // interning above: collect() runs the callbacks holding only this
  // one, and CollectorToken::reset() blocking on it preserves the
  // "never invoked after reset" guarantee.
  mutable std::mutex collector_mu_;
  std::map<uint64_t, Collector> collectors_;
  uint64_t next_collector_id_ = 1;
};

/// Per-op timing of individual pairing-layer calls (pair, g^k, ...).
/// Off by default: a clock read per group operation costs a few percent
/// on the test curve, so only counters run unconditionally and the
/// latency histograms are gated behind this flag (`maabe-cli
/// --metrics-out` and the benches turn it on).
bool op_timing_enabled() noexcept;
void set_op_timing(bool on) noexcept;

}  // namespace maabe::telemetry
