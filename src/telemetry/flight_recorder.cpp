#include "telemetry/flight_recorder.h"

#include <algorithm>
#include <chrono>

#include "telemetry/trace.h"

namespace maabe::telemetry {
namespace {

const char* kind_label(FlightEntry::Kind k) {
  switch (k) {
    case FlightEntry::Kind::kSpan: return "span";
    case FlightEntry::Kind::kFaultInjected: return "fault";
    case FlightEntry::Kind::kOverloadShed: return "shed";
    case FlightEntry::Kind::kEpochDecision: return "epoch";
  }
  return "?";
}

class SlotGuard {
 public:
  explicit SlotGuard(std::atomic<bool>& busy) : busy_(busy) {
    while (busy_.exchange(true, std::memory_order_acquire)) {
      // Spin: the guarded section is a single entry copy.
    }
  }
  ~SlotGuard() { busy_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool>& busy_;
};

}  // namespace

std::string FlightEntry::to_line() const {
  std::string out = "[" + std::to_string(seq) + "] ";
  out += kind_label(kind);
  out += " ";
  out += name;
  out += " node=" + node;
  out += " wall_us=" + std::to_string(wall_us);
  if (kind == Kind::kSpan) {
    out += " trace=" + std::to_string(trace_id);
    out += " span=" + std::to_string(span_id);
    out += " parent=" + std::to_string(parent_id);
    out += " dur_us=" + std::to_string((end_ns - start_ns) / 1000);
  }
  if (!detail.empty()) out += " " + detail;
  return out;
}

FlightRecorder::FlightRecorder(size_t capacity) {
  slots_.reserve(capacity == 0 ? 1 : capacity);
  for (size_t i = 0; i < (capacity == 0 ? 1 : capacity); ++i)
    slots_.push_back(std::make_unique<Slot>());
}

void FlightRecorder::record(FlightEntry entry) {
  const uint64_t idx = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = *slots_[idx % slots_.size()];
  SlotGuard guard(slot.busy);
  // A writer lapped by the whole ring must not clobber a newer entry.
  if (slot.published && slot.entry.seq > entry.seq) return;
  slot.entry = std::move(entry);
  slot.published = true;
}

std::vector<FlightEntry> FlightRecorder::snapshot() const {
  std::vector<FlightEntry> out;
  out.reserve(slots_.size());
  for (const auto& slot_ptr : slots_) {
    Slot& slot = *const_cast<Slot*>(slot_ptr.get());
    SlotGuard guard(slot.busy);
    if (slot.published) out.push_back(slot.entry);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEntry& a, const FlightEntry& b) { return a.seq < b.seq; });
  return out;
}

std::atomic<bool> FlightRegistry::armed_{false};

FlightRegistry& FlightRegistry::global() {
  static FlightRegistry* registry = new FlightRegistry();  // leaked
  return *registry;
}

bool FlightRegistry::armed() {
  return armed_.load(std::memory_order_relaxed);
}

void FlightRegistry::arm(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  recorders_.clear();
  armed_.store(true, std::memory_order_relaxed);
}

void FlightRegistry::disarm() {
  armed_.store(false, std::memory_order_relaxed);
}

FlightRecorder& FlightRegistry::recorder_locked(const std::string& node) {
  auto it = recorders_.find(node);
  if (it == recorders_.end())
    it = recorders_.emplace(node, std::make_unique<FlightRecorder>(capacity_)).first;
  return *it->second;
}

void FlightRegistry::record_span(const SpanRecord& rec) {
  if (!armed()) return;
  FlightEntry e;
  e.kind = FlightEntry::Kind::kSpan;
  e.node = "process";
  std::string detail;
  for (const auto& [k, v] : rec.attrs) {
    if (k == "node_id") {
      e.node = v;
      continue;
    }
    if (!detail.empty()) detail += " ";
    detail += k + "=" + v;
  }
  e.name = rec.name;
  e.detail = std::move(detail);
  e.wall_us = rec.wall_start_us;
  e.trace_id = rec.trace_id;
  e.span_id = rec.span_id;
  e.parent_id = rec.parent_id;
  e.start_ns = rec.start_ns;
  e.end_ns = rec.end_ns;
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  FlightRecorder* ring;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring = &recorder_locked(e.node);
  }
  ring->record(std::move(e));
}

void FlightRegistry::record_event(const std::string& node, FlightEntry::Kind kind,
                                  std::string_view name, std::string detail) {
  if (!armed()) return;
  FlightEntry e;
  e.kind = kind;
  e.node = node.empty() ? "process" : node;
  e.name = std::string(name);
  e.detail = std::move(detail);
  e.wall_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  FlightRecorder* ring;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring = &recorder_locked(e.node);
  }
  ring->record(std::move(e));
}

std::vector<FlightEntry> FlightRegistry::entries(const std::string& node) const {
  const FlightRecorder* ring = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = recorders_.find(node);
    if (it != recorders_.end()) ring = it->second.get();
  }
  if (!ring) return {};
  return ring->snapshot();
}

std::string FlightRegistry::dump(const std::string& node) const {
  const std::vector<FlightEntry> all = entries(node);
  std::string out = "flight-recorder " + node + ": " +
                    std::to_string(all.size()) + " entries\n";
  for (const FlightEntry& e : all) {
    out += "  " + e.to_line() + "\n";
  }
  return out;
}

std::vector<std::string> FlightRegistry::nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(recorders_.size());
  for (const auto& [name, ring] : recorders_) out.push_back(name);
  return out;
}

}  // namespace maabe::telemetry
