#include "crypto/hmac.h"

#include "common/errors.h"
#include "crypto/sha256.h"

namespace maabe::crypto {

Bytes hmac_sha256(ByteView key, ByteView data) {
  constexpr size_t kBlock = Sha256::kBlockSize;
  Bytes k(kBlock, 0);
  if (key.size() > kBlock) {
    const Bytes hashed = Sha256::digest(key);
    std::copy(hashed.begin(), hashed.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }

  Bytes ipad(kBlock), opad(kBlock);
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  const Bytes inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

Bytes kdf(ByteView ikm, std::string_view label, size_t out_len) {
  if (out_len == 0 || out_len > 255 * Sha256::kDigestSize)
    throw CryptoError("kdf: bad output length");
  // Extract with a fixed application salt.
  const Bytes salt = bytes_of("maabe/kdf/v1");
  const Bytes prk = hmac_sha256(salt, ikm);
  // Expand.
  Bytes out;
  Bytes t;
  uint8_t counter = 1;
  while (out.size() < out_len) {
    Bytes block = t;
    block.insert(block.end(), label.begin(), label.end());
    block.push_back(counter++);
    t = hmac_sha256(prk, block);
    out.insert(out.end(), t.begin(), t.end());
  }
  out.resize(out_len);
  return out;
}

}  // namespace maabe::crypto
