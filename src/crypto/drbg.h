// Deterministic random bit generator (HMAC_DRBG, NIST SP 800-90A style).
//
// All randomness in the library flows through a Drbg so that tests can be
// reproducible (seed with a constant) while applications seed from OS
// entropy (see random.h). The generator also provides uniform sampling of
// integers below a bound, which the pairing and ABE layers use for
// exponents and secret shares.
#pragma once

#include "common/bytes.h"
#include "math/bignum.h"

namespace maabe::crypto {

class Drbg {
 public:
  /// Seeds from arbitrary entropy input (any length).
  explicit Drbg(ByteView seed);
  /// Convenience: seed from a label string (tests).
  explicit Drbg(std::string_view seed_label);

  /// Fills `out_len` pseudo-random bytes.
  Bytes bytes(size_t out_len);

  /// Uniform integer in [0, bound) via rejection sampling.
  /// Throws MathError if bound is zero.
  math::Bignum below(const math::Bignum& bound);

  /// Uniform integer in [1, bound) — the "random nonzero exponent" shape
  /// every ABE algorithm needs.
  math::Bignum nonzero_below(const math::Bignum& bound);

  /// Mixes additional entropy into the state.
  void reseed(ByteView entropy);

 private:
  void update(ByteView provided);

  Bytes key_;  // 32 bytes
  Bytes v_;    // 32 bytes
};

}  // namespace maabe::crypto
