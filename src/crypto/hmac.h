// HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//
// Used by the hybrid layer for encrypt-then-MAC integrity on data
// components and by the KDF that turns a GT element into a content key.
#pragma once

#include "common/bytes.h"

namespace maabe::crypto {

/// HMAC-SHA-256 of `data` under `key` (any key length).
Bytes hmac_sha256(ByteView key, ByteView data);

/// HKDF-style expansion: derives `out_len` bytes from input keying
/// material and a context/label string, via HMAC-SHA-256
/// (extract with a fixed salt, then expand).
Bytes kdf(ByteView ikm, std::string_view label, size_t out_len);

}  // namespace maabe::crypto
