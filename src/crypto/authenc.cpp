#include "crypto/authenc.h"

#include "common/errors.h"
#include "common/wire.h"
#include "crypto/aes.h"
#include "crypto/hmac.h"

namespace maabe::crypto {

namespace {

constexpr size_t kIvSize = 16;
constexpr size_t kTagSize = 32;

// Independent subkeys for encryption and authentication.
struct SubKeys {
  Bytes enc;
  Bytes mac;
};

SubKeys derive(ByteView key) {
  if (key.size() != kContentKeySize) throw CryptoError("authenc: key must be 32 bytes");
  const Bytes material = kdf(key, "authenc/subkeys", 64);
  return {Bytes(material.begin(), material.begin() + 32),
          Bytes(material.begin() + 32, material.end())};
}

Bytes mac_input(ByteView iv, ByteView ct, ByteView aad) {
  Writer w;
  w.var_bytes(aad);
  w.raw(iv);
  w.raw(ct);
  return w.take();
}

}  // namespace

Bytes seal(ByteView key, ByteView plaintext, ByteView aad, Drbg& rng) {
  const SubKeys keys = derive(key);
  const Bytes iv = rng.bytes(kIvSize);
  const Bytes ct = aes_ctr(keys.enc, iv, plaintext);
  const Bytes tag = hmac_sha256(keys.mac, mac_input(iv, ct, aad));
  Bytes out;
  out.reserve(iv.size() + ct.size() + tag.size());
  out.insert(out.end(), iv.begin(), iv.end());
  out.insert(out.end(), ct.begin(), ct.end());
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

Bytes open(ByteView key, ByteView box, ByteView aad) {
  if (box.size() < kIvSize + kTagSize) throw CryptoError("authenc: box too short");
  const SubKeys keys = derive(key);
  const ByteView iv = box.subspan(0, kIvSize);
  const ByteView ct = box.subspan(kIvSize, box.size() - kIvSize - kTagSize);
  const ByteView tag = box.subspan(box.size() - kTagSize);
  const Bytes expect = hmac_sha256(keys.mac, mac_input(iv, ct, aad));
  if (!secure_equal(expect, tag)) throw CryptoError("authenc: authentication failed");
  return aes_ctr(keys.enc, iv, ct);
}

}  // namespace maabe::crypto
