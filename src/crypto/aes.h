// AES-128/192/256 block cipher (FIPS 197) and CTR mode.
//
// The paper's hybrid data format encrypts each data component with a
// symmetric content key; this module provides that cipher. The
// implementation is a straightforward table-free byte-oriented AES:
// clarity over speed (the asymmetric operations dominate every benchmark
// in the paper by orders of magnitude).
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace maabe::crypto {

class Aes {
 public:
  /// Key must be 16, 24 or 32 bytes. Throws CryptoError otherwise.
  explicit Aes(ByteView key);

  static constexpr size_t kBlockSize = 16;

  /// Encrypts a single 16-byte block in place.
  void encrypt_block(uint8_t block[kBlockSize]) const;
  /// Decrypts a single 16-byte block in place.
  void decrypt_block(uint8_t block[kBlockSize]) const;

 private:
  uint8_t round_keys_[15][16];
  int rounds_ = 0;
};

/// CTR-mode keystream XOR: encryption and decryption are the same
/// operation. `iv` must be 16 bytes (it is used as the initial counter
/// block; the low 32 bits increment per block).
Bytes aes_ctr(ByteView key, ByteView iv, ByteView data);

}  // namespace maabe::crypto
