// OS entropy source.
#pragma once

#include "common/bytes.h"
#include "crypto/drbg.h"

namespace maabe::crypto {

/// Reads `n` bytes from the operating system's entropy pool
/// (/dev/urandom). Throws CryptoError on failure.
Bytes os_entropy(size_t n);

/// A Drbg seeded with 48 bytes of OS entropy.
Drbg make_system_drbg();

}  // namespace maabe::crypto
