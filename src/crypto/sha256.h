// SHA-256 (FIPS 180-4), written from scratch for this reproduction.
//
// Used as the random oracle H:{0,1}* -> Z_p of the paper (via
// pairing::hash_to_zr), as the hash-to-group primitive needed by the
// Lewko-Waters baseline, inside HMAC, and as the core of the
// deterministic random bit generator.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace maabe::crypto {

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  /// Streams more input.
  void update(ByteView data);
  /// Finishes and returns the 32-byte digest; the object must not be
  /// reused afterwards (construct a fresh one).
  Bytes finish();

  /// One-shot convenience.
  static Bytes digest(ByteView data);

 private:
  void compress(const uint8_t* block);

  uint32_t h_[8];
  uint8_t buf_[kBlockSize];
  size_t buf_len_ = 0;
  uint64_t total_len_ = 0;
  bool finished_ = false;
};

}  // namespace maabe::crypto
