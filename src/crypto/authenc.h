// Authenticated symmetric encryption for data components.
//
// AES-256-CTR with HMAC-SHA-256, encrypt-then-MAC. This is the
// "symmetric encryption method" the paper leaves unspecified for the
// content-key layer (Fig. 2): data components m_i are encrypted under
// content keys k_i, which are themselves protected by CP-ABE.
//
// Wire layout of a sealed box: iv(16) || ciphertext || tag(32).
#pragma once

#include "common/bytes.h"
#include "crypto/drbg.h"

namespace maabe::crypto {

constexpr size_t kContentKeySize = 32;

/// Encrypts and authenticates `plaintext` under a 32-byte content key.
/// `aad` is authenticated but not encrypted (the hybrid layer binds the
/// component name and ciphertext id through it).
Bytes seal(ByteView key, ByteView plaintext, ByteView aad, Drbg& rng);

/// Reverses seal(). Throws CryptoError if authentication fails.
Bytes open(ByteView key, ByteView box, ByteView aad);

}  // namespace maabe::crypto
