#include "crypto/random.h"

#include <cstdio>

#include "common/errors.h"

namespace maabe::crypto {

Bytes os_entropy(size_t n) {
  Bytes out(n);
  std::FILE* f = std::fopen("/dev/urandom", "rb");
  if (f == nullptr) throw CryptoError("os_entropy: cannot open /dev/urandom");
  const size_t got = std::fread(out.data(), 1, n, f);
  std::fclose(f);
  if (got != n) throw CryptoError("os_entropy: short read from /dev/urandom");
  return out;
}

Drbg make_system_drbg() { return Drbg(os_entropy(48)); }

}  // namespace maabe::crypto
