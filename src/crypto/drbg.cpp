#include "crypto/drbg.h"

#include "common/errors.h"
#include "crypto/hmac.h"

namespace maabe::crypto {

Drbg::Drbg(ByteView seed) : key_(32, 0x00), v_(32, 0x01) { update(seed); }

Drbg::Drbg(std::string_view seed_label) : Drbg(ByteView(
    reinterpret_cast<const uint8_t*>(seed_label.data()), seed_label.size())) {}

void Drbg::update(ByteView provided) {
  Bytes block = v_;
  block.push_back(0x00);
  block.insert(block.end(), provided.begin(), provided.end());
  key_ = hmac_sha256(key_, block);
  v_ = hmac_sha256(key_, v_);
  if (!provided.empty()) {
    block = v_;
    block.push_back(0x01);
    block.insert(block.end(), provided.begin(), provided.end());
    key_ = hmac_sha256(key_, block);
    v_ = hmac_sha256(key_, v_);
  }
}

Bytes Drbg::bytes(size_t out_len) {
  Bytes out;
  out.reserve(out_len);
  while (out.size() < out_len) {
    v_ = hmac_sha256(key_, v_);
    out.insert(out.end(), v_.begin(), v_.end());
  }
  out.resize(out_len);
  update({});
  return out;
}

math::Bignum Drbg::below(const math::Bignum& bound) {
  if (bound.is_zero()) throw MathError("Drbg::below: zero bound");
  const int bits = bound.bit_length();
  const size_t nbytes = (bits + 7) / 8;
  const int excess_bits = static_cast<int>(nbytes * 8) - bits;
  // Rejection sampling: expected < 2 draws.
  for (;;) {
    Bytes b = bytes(nbytes);
    b[0] &= static_cast<uint8_t>(0xff >> excess_bits);
    const math::Bignum candidate = math::Bignum::from_bytes_be(b);
    if (math::Bignum::cmp(candidate, bound) < 0) return candidate;
  }
}

math::Bignum Drbg::nonzero_below(const math::Bignum& bound) {
  for (;;) {
    math::Bignum candidate = below(bound);
    if (!candidate.is_zero()) return candidate;
  }
}

void Drbg::reseed(ByteView entropy) { update(entropy); }

}  // namespace maabe::crypto
