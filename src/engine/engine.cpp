#include "engine/engine.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <thread>

#include "common/errors.h"

namespace maabe::engine {

using pairing::G1;
using pairing::Group;
using pairing::GT;
using pairing::Zr;

namespace {

// Set inside pool workers so reentrant parallel_for calls run inline
// instead of deadlocking on the (busy) pool.
thread_local bool tl_in_worker = false;

std::atomic<int> g_default_override{0};

}  // namespace

EngineStats EngineStats::operator-(const EngineStats& e) const {
  EngineStats d;
  d.pairings = pairings - e.pairings;
  d.g1_exps = g1_exps - e.g1_exps;
  d.gt_exps = gt_exps - e.gt_exps;
  d.batches = batches - e.batches;
  d.tasks = tasks - e.tasks;
  d.table_builds = table_builds - e.table_builds;
  d.table_hits = table_hits - e.table_hits;
  d.wall_ns = wall_ns - e.wall_ns;
  return d;
}

EngineStats& EngineStats::operator+=(const EngineStats& o) {
  pairings += o.pairings;
  g1_exps += o.g1_exps;
  gt_exps += o.gt_exps;
  batches += o.batches;
  tasks += o.tasks;
  table_builds += o.table_builds;
  table_hits += o.table_hits;
  wall_ns += o.wall_ns;
  return *this;
}

// ---------------------------------------------------------------- Pool --

struct CryptoEngine::Pool {
  explicit Pool(int workers) {
    threads.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i) threads.emplace_back([this] { worker(); });
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mu);
      stop = true;
    }
    cv_work.notify_all();
    for (auto& t : threads) t.join();
  }

  /// Runs fn over [0, total); the caller participates alongside the
  /// workers. One job at a time (job_mu); blocks until every index is
  /// done, then rethrows the first captured exception, if any.
  void run(size_t job_total, const std::function<void(size_t)>& job_fn) {
    std::lock_guard<std::mutex> job_lk(job_mu);
    {
      std::lock_guard<std::mutex> lk(mu);
      fn = &job_fn;
      total = job_total;
      next.store(0, std::memory_order_relaxed);
      error = nullptr;
      pending = threads.size();
      ++job_id;
    }
    cv_work.notify_all();
    process();
    {
      std::unique_lock<std::mutex> lk(mu);
      cv_done.wait(lk, [&] { return pending == 0; });
      fn = nullptr;
    }
    if (error) std::rethrow_exception(error);
  }

  void process() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu);
        if (!error) error = std::current_exception();
        next.store(total, std::memory_order_relaxed);  // abandon the rest
      }
    }
  }

  void worker() {
    tl_in_worker = true;
    uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu);
        cv_work.wait(lk, [&] { return stop || job_id != seen; });
        if (stop) return;
        seen = job_id;
      }
      process();
      {
        std::lock_guard<std::mutex> lk(mu);
        if (--pending == 0) cv_done.notify_all();
      }
    }
  }

  std::mutex job_mu;  // serializes run() callers
  std::mutex mu;
  std::condition_variable cv_work, cv_done;
  std::vector<std::thread> threads;
  const std::function<void(size_t)>* fn = nullptr;
  size_t total = 0;
  std::atomic<size_t> next{0};
  size_t pending = 0;
  uint64_t job_id = 0;
  std::exception_ptr error;
  bool stop = false;
};

// ------------------------------------------------------------ LruCache --

/// LRU of window tables for variable bases, keyed by the base's
/// serialized form. A base only pays for table construction after it has
/// been submitted kBuildThreshold times (break-even vs plain
/// exponentiation); until then the entry just tracks its use count.
struct CryptoEngine::LruCache {
  static constexpr size_t kCapacity = 64;
  static constexpr uint64_t kBuildThreshold = 4;

  struct Node {
    Bytes key;
    uint64_t uses = 0;
    std::shared_ptr<const pairing::G1FixedBase> g1;
    std::shared_ptr<const pairing::GtFixedBase> gt;
  };
  using List = std::list<Node>;

  std::mutex mu;
  List order;  // front = most recently used
  std::map<Bytes, List::iterator> index;

  /// Bumps the entry for `key` (inserting/evicting as needed) and
  /// returns it, moved to the front.
  Node& touch(const Bytes& key) {
    auto it = index.find(key);
    if (it != index.end()) {
      order.splice(order.begin(), order, it->second);
    } else {
      order.push_front(Node{key, 0, nullptr, nullptr});
      index[key] = order.begin();
      if (index.size() > kCapacity) {
        index.erase(order.back().key);
        order.pop_back();
      }
    }
    ++order.front().uses;
    return order.front();
  }
};

// --------------------------------------------------------- CryptoEngine --

CryptoEngine::CryptoEngine(const Group& grp, int threads)
    : grp_(&grp), threads_(1), cache_(std::make_unique<LruCache>()) {
  set_threads(threads);
}

CryptoEngine::~CryptoEngine() = default;

int CryptoEngine::default_threads() {
  const int o = g_default_override.load(std::memory_order_relaxed);
  if (o > 0) return o;
  if (const char* env = std::getenv("MAABE_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void CryptoEngine::set_default_threads(int threads) {
  g_default_override.store(threads > 0 ? threads : 0, std::memory_order_relaxed);
}

CryptoEngine& CryptoEngine::for_group(const Group& grp) {
  struct Slot {
    uint64_t id = 0;
    std::unique_ptr<CryptoEngine> engine;
  };
  static std::mutex reg_mu;
  static std::map<const Group*, Slot> registry;
  std::lock_guard<std::mutex> lk(reg_mu);
  Slot& slot = registry[&grp];
  if (!slot.engine || slot.id != grp.instance_id()) {
    // First sighting, or the address was reused by a new Group after the
    // old one died — either way the engine (and its cached tables, which
    // reference the dead Group's contexts) must be rebuilt.
    slot.engine = std::make_unique<CryptoEngine>(grp);
    slot.id = grp.instance_id();
  }
  return *slot.engine;
}

void CryptoEngine::set_threads(int threads) {
  const int n = threads > 0 ? threads : default_threads();
  std::lock_guard<std::mutex> lk(mu_);
  if (n == threads_ && (pool_ || n == 1)) return;
  pool_.reset();  // joins workers; must not race a running batch
  threads_ = n;
  // Pool holds threads_ - 1 workers; the submitting thread participates.
  if (threads_ > 1) pool_ = std::make_unique<Pool>(threads_ - 1);
}

void CryptoEngine::parallel_for(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.tasks += n;
  }
  if (pool_ == nullptr || n < 2 || tl_in_worker) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool_->run(n, fn);
}

namespace {

class BatchTimer {
 public:
  explicit BatchTimer(std::mutex& mu, EngineStats& stats)
      : mu_(mu), stats_(stats), start_(std::chrono::steady_clock::now()) {}
  ~BatchTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    std::lock_guard<std::mutex> lk(mu_);
    stats_.batches += 1;
    stats_.wall_ns += static_cast<uint64_t>(ns);
  }

 private:
  std::mutex& mu_;
  EngineStats& stats_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

std::vector<GT> CryptoEngine::pair_batch(const std::vector<PairTerm>& terms) {
  BatchTimer timer(mu_, stats_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.pairings += terms.size();
  }
  std::vector<GT> out(terms.size());
  parallel_for(terms.size(),
               [&](size_t i) { out[i] = grp_->pair(terms[i].a, terms[i].b); });
  return out;
}

GT CryptoEngine::pairing_product(const std::vector<PairTerm>& terms) {
  std::vector<GT> parts = pair_batch(terms);
  // Exact group arithmetic: folding in submission order reproduces the
  // serial loop's value bit for bit regardless of evaluation order.
  GT acc = grp_->gt_one();
  for (const GT& p : parts) acc = acc * p;
  return acc;
}

std::vector<G1> CryptoEngine::multi_exp_g1(const std::vector<G1Term>& terms,
                                           bool cache_bases) {
  BatchTimer timer(mu_, stats_);
  const size_t n = terms.size();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.g1_exps += n;
  }
  // Serial resolve phase: consult/update the LRU under one lock so the
  // parallel phase below touches only immutable tables.
  std::vector<std::shared_ptr<const pairing::G1FixedBase>> tables(n);
  if (cache_bases) {
    uint64_t builds = 0, hits = 0;
    std::lock_guard<std::mutex> lk(cache_->mu);
    for (size_t i = 0; i < n; ++i) {
      if (terms[i].base.is_identity()) continue;
      LruCache::Node& node = cache_->touch(terms[i].base.to_bytes());
      if (!node.g1 && node.uses >= LruCache::kBuildThreshold) {
        node.g1 = grp_->g1_precompute(terms[i].base);
        ++builds;
      }
      if (node.g1) ++hits;
      tables[i] = node.g1;
    }
    std::lock_guard<std::mutex> slk(mu_);
    stats_.table_builds += builds;
    stats_.table_hits += hits;
  }
  std::vector<G1> out(n);
  parallel_for(n, [&](size_t i) {
    out[i] = tables[i] ? grp_->g1_pow_with(*tables[i], terms[i].exp)
                       : terms[i].base.mul(terms[i].exp);
  });
  return out;
}

std::vector<GT> CryptoEngine::multi_exp_gt(const std::vector<GtTerm>& terms,
                                           bool cache_bases) {
  BatchTimer timer(mu_, stats_);
  const size_t n = terms.size();
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.gt_exps += n;
  }
  std::vector<std::shared_ptr<const pairing::GtFixedBase>> tables(n);
  if (cache_bases) {
    uint64_t builds = 0, hits = 0;
    std::lock_guard<std::mutex> lk(cache_->mu);
    for (size_t i = 0; i < n; ++i) {
      if (terms[i].base.is_one()) continue;
      LruCache::Node& node = cache_->touch(terms[i].base.to_bytes());
      if (!node.gt && node.uses >= LruCache::kBuildThreshold) {
        node.gt = grp_->gt_precompute(terms[i].base);
        ++builds;
      }
      if (node.gt) ++hits;
      tables[i] = node.gt;
    }
    std::lock_guard<std::mutex> slk(mu_);
    stats_.table_builds += builds;
    stats_.table_hits += hits;
  }
  std::vector<GT> out(n);
  parallel_for(n, [&](size_t i) {
    out[i] = tables[i] ? grp_->gt_pow_with(*tables[i], terms[i].exp)
                       : terms[i].base.pow(terms[i].exp);
  });
  return out;
}

std::vector<G1> CryptoEngine::g_pow_batch(const std::vector<Zr>& exps) {
  BatchTimer timer(mu_, stats_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.g1_exps += exps.size();
  }
  std::vector<G1> out(exps.size());
  parallel_for(exps.size(), [&](size_t i) { out[i] = grp_->g_pow(exps[i]); });
  return out;
}

std::vector<GT> CryptoEngine::egg_pow_batch(const std::vector<Zr>& exps) {
  BatchTimer timer(mu_, stats_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.gt_exps += exps.size();
  }
  std::vector<GT> out(exps.size());
  parallel_for(exps.size(), [&](size_t i) { out[i] = grp_->egg_pow(exps[i]); });
  return out;
}

EngineStats CryptoEngine::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void CryptoEngine::reset_stats() {
  std::lock_guard<std::mutex> lk(mu_);
  stats_ = EngineStats{};
}

}  // namespace maabe::engine
