#include "engine/engine.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <thread>

#include "common/errors.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace maabe::engine {

using pairing::G1;
using pairing::Group;
using pairing::GT;
using pairing::Zr;

namespace {

// Set inside pool workers so reentrant parallel_for calls run inline
// instead of deadlocking on the (busy) pool.
thread_local bool tl_in_worker = false;

std::atomic<int> g_default_override{0};

/// Registry handles for the engine's global counters/histograms,
/// interned once (the registry returns process-lifetime references).
struct EngineMetrics {
  telemetry::Counter& pairings;
  telemetry::Counter& g1_exps;
  telemetry::Counter& gt_exps;
  telemetry::Counter& miller_loops;
  telemetry::Counter& final_exps;
  telemetry::Counter& batches;
  telemetry::Counter& tasks;
  telemetry::Counter& table_builds;
  telemetry::Counter& table_hits;
  telemetry::Counter& precomp_builds;
  telemetry::Counter& precomp_hits;
  telemetry::Counter& batch_wall_ns;
  telemetry::Counter& sheds;
  telemetry::Histogram& pair_batch_ns;
  telemetry::Histogram& multi_exp_g1_ns;
  telemetry::Histogram& multi_exp_gt_ns;
  telemetry::Histogram& g_pow_batch_ns;
  telemetry::Histogram& egg_pow_batch_ns;

  static EngineMetrics& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static EngineMetrics* m = new EngineMetrics{
        reg.counter("maabe_engine_pairings_total"),
        reg.counter("maabe_engine_g1_exps_total"),
        reg.counter("maabe_engine_gt_exps_total"),
        reg.counter("maabe_engine_miller_loops_total"),
        reg.counter("maabe_engine_final_exps_total"),
        reg.counter("maabe_engine_batches_total"),
        reg.counter("maabe_engine_tasks_total"),
        reg.counter("maabe_engine_table_builds_total"),
        reg.counter("maabe_engine_table_hits_total"),
        reg.counter("maabe_engine_precomp_builds_total"),
        reg.counter("maabe_engine_precomp_hits_total"),
        reg.counter("maabe_engine_batch_wall_ns_total"),
        reg.counter("maabe_engine_shed_total"),
        reg.histogram("maabe_engine_pair_batch_ns"),
        reg.histogram("maabe_engine_multi_exp_g1_ns"),
        reg.histogram("maabe_engine_multi_exp_gt_ns"),
        reg.histogram("maabe_engine_g_pow_batch_ns"),
        reg.histogram("maabe_engine_egg_pow_batch_ns"),
    };
    return *m;
  }
};

}  // namespace

EngineStats EngineStats::operator-(const EngineStats& e) const {
  EngineStats d;
  d.pairings = pairings - e.pairings;
  d.g1_exps = g1_exps - e.g1_exps;
  d.gt_exps = gt_exps - e.gt_exps;
  d.miller_loops = miller_loops - e.miller_loops;
  d.final_exps = final_exps - e.final_exps;
  d.batches = batches - e.batches;
  d.tasks = tasks - e.tasks;
  d.table_builds = table_builds - e.table_builds;
  d.table_hits = table_hits - e.table_hits;
  d.precomp_builds = precomp_builds - e.precomp_builds;
  d.precomp_hits = precomp_hits - e.precomp_hits;
  d.wall_ns = wall_ns - e.wall_ns;
  return d;
}

EngineStats& EngineStats::operator+=(const EngineStats& o) {
  pairings += o.pairings;
  g1_exps += o.g1_exps;
  gt_exps += o.gt_exps;
  miller_loops += o.miller_loops;
  final_exps += o.final_exps;
  batches += o.batches;
  tasks += o.tasks;
  table_builds += o.table_builds;
  table_hits += o.table_hits;
  precomp_builds += o.precomp_builds;
  precomp_hits += o.precomp_hits;
  wall_ns += o.wall_ns;
  return *this;
}

// ---------------------------------------------------------------- Pool --

struct CryptoEngine::Pool {
  explicit Pool(int workers) {
    threads.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i) threads.emplace_back([this] { worker(); });
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mu);
      stop = true;
    }
    cv_work.notify_all();
    for (auto& t : threads) t.join();
  }

  /// Runs fn over [0, total); the caller participates alongside the
  /// workers. One job at a time (job_mu); blocks until every index is
  /// done, then rethrows the first captured exception, if any.
  void run(size_t job_total, const std::function<void(size_t)>& job_fn) {
    std::lock_guard<std::mutex> job_lk(job_mu);
    {
      std::lock_guard<std::mutex> lk(mu);
      fn = &job_fn;
      total = job_total;
      next.store(0, std::memory_order_relaxed);
      error = nullptr;
      pending = threads.size();
      ++job_id;
    }
    cv_work.notify_all();
    process();
    {
      std::unique_lock<std::mutex> lk(mu);
      cv_done.wait(lk, [&] { return pending == 0; });
      fn = nullptr;
    }
    if (error) std::rethrow_exception(error);
  }

  void process() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu);
        if (!error) error = std::current_exception();
        next.store(total, std::memory_order_relaxed);  // abandon the rest
      }
    }
  }

  void worker() {
    tl_in_worker = true;
    uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu);
        cv_work.wait(lk, [&] { return stop || job_id != seen; });
        if (stop) return;
        seen = job_id;
      }
      process();
      {
        std::lock_guard<std::mutex> lk(mu);
        if (--pending == 0) cv_done.notify_all();
      }
    }
  }

  std::mutex job_mu;  // serializes run() callers
  std::mutex mu;
  std::condition_variable cv_work, cv_done;
  std::vector<std::thread> threads;
  const std::function<void(size_t)>* fn = nullptr;
  size_t total = 0;
  std::atomic<size_t> next{0};
  size_t pending = 0;
  uint64_t job_id = 0;
  std::exception_ptr error;
  bool stop = false;
};

// ------------------------------------------------------------ LruCache --

/// LRU of window tables for variable bases, keyed by the base's
/// serialized form. A base only pays for table construction after it has
/// been submitted kBuildThreshold times (break-even vs plain
/// exponentiation); until then the entry just tracks its use count.
struct CryptoEngine::LruCache {
  static constexpr size_t kCapacity = 64;
  static constexpr uint64_t kBuildThreshold = 4;

  struct Node {
    Bytes key;
    uint64_t uses = 0;
    std::shared_ptr<const pairing::G1FixedBase> g1;
    std::shared_ptr<const pairing::GtFixedBase> gt;
    std::shared_ptr<const pairing::PairingPrecomp> pair;  // line table
  };
  using List = std::list<Node>;

  std::mutex mu;
  List order;  // front = most recently used
  std::map<Bytes, List::iterator> index;

  /// Bumps the entry for `key` (inserting/evicting as needed) and
  /// returns it, moved to the front.
  Node& touch(const Bytes& key) {
    auto it = index.find(key);
    if (it != index.end()) {
      order.splice(order.begin(), order, it->second);
    } else {
      order.push_front(Node{key, 0, nullptr, nullptr, nullptr});
      index[key] = order.begin();
      if (index.size() > kCapacity) {
        index.erase(order.back().key);
        order.pop_back();
      }
    }
    ++order.front().uses;
    return order.front();
  }
};

// --------------------------------------------------------- CryptoEngine --

// ----------------------------------------------------------- StatCells --

/// Per-engine stat store behind a seqlock: commit_stats() bumps the
/// sequence to odd, applies every field, then bumps back to even;
/// stats() retries until it reads the same even sequence on both sides
/// of the field loads. All accesses are atomics (TSan-clean); the
/// write mutex serializes committers so the odd window stays short.
struct CryptoEngine::StatCells {
  std::mutex write_mu;
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> pairings{0}, g1_exps{0}, gt_exps{0}, miller_loops{0},
      final_exps{0}, batches{0}, tasks{0}, table_builds{0}, table_hits{0},
      precomp_builds{0}, precomp_hits{0}, wall_ns{0};
};

void CryptoEngine::commit_stats(const EngineStats& d) {
  StatCells& c = *stat_cells_;
  {
    std::lock_guard<std::mutex> lk(c.write_mu);
    const uint64_t s = c.seq.load(std::memory_order_relaxed);
    c.seq.store(s + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    const auto bump = [](std::atomic<uint64_t>& f, uint64_t v) {
      f.store(f.load(std::memory_order_relaxed) + v, std::memory_order_relaxed);
    };
    bump(c.pairings, d.pairings);
    bump(c.g1_exps, d.g1_exps);
    bump(c.gt_exps, d.gt_exps);
    bump(c.miller_loops, d.miller_loops);
    bump(c.final_exps, d.final_exps);
    bump(c.batches, d.batches);
    bump(c.tasks, d.tasks);
    bump(c.table_builds, d.table_builds);
    bump(c.table_hits, d.table_hits);
    bump(c.precomp_builds, d.precomp_builds);
    bump(c.precomp_hits, d.precomp_hits);
    bump(c.wall_ns, d.wall_ns);
    c.seq.store(s + 2, std::memory_order_release);
  }
  EngineMetrics& m = EngineMetrics::get();
  if (d.pairings) m.pairings.add(d.pairings);
  if (d.g1_exps) m.g1_exps.add(d.g1_exps);
  if (d.gt_exps) m.gt_exps.add(d.gt_exps);
  if (d.miller_loops) m.miller_loops.add(d.miller_loops);
  if (d.final_exps) m.final_exps.add(d.final_exps);
  if (d.batches) m.batches.add(d.batches);
  if (d.tasks) m.tasks.add(d.tasks);
  if (d.table_builds) m.table_builds.add(d.table_builds);
  if (d.table_hits) m.table_hits.add(d.table_hits);
  if (d.precomp_builds) m.precomp_builds.add(d.precomp_builds);
  if (d.precomp_hits) m.precomp_hits.add(d.precomp_hits);
  if (d.wall_ns) m.batch_wall_ns.add(d.wall_ns);
}

// ------------------------------------------------------------ BatchScope --

/// Accumulates one batch's stat delta and commits it atomically on
/// scope exit, alongside the per-batch latency histogram observation
/// and (when tracing is on) a span child of the caller's current span.
class CryptoEngine::BatchScope {
 public:
  BatchScope(CryptoEngine& eng, telemetry::Histogram& hist, const char* span_name)
      : eng_(eng), hist_(hist),
        span_(telemetry::Tracer::global().start_span(span_name)),
        start_(std::chrono::steady_clock::now()) {}

  ~BatchScope() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    delta.batches += 1;
    delta.wall_ns += static_cast<uint64_t>(ns);
    hist_.observe(static_cast<uint64_t>(ns));
    if (span_.active()) span_.attr("items", items_);
    eng_.commit_stats(delta);
  }

  void set_items(uint64_t n) { items_ = n; }
  /// Context for pool workers to parent their work on (unused today —
  /// batch items are too fine-grained to span individually).
  telemetry::SpanContext context() const { return span_.context(); }

  EngineStats delta;

 private:
  CryptoEngine& eng_;
  telemetry::Histogram& hist_;
  telemetry::Span span_;
  uint64_t items_ = 0;
  std::chrono::steady_clock::time_point start_;
};

// --------------------------------------------------- admission control --

/// RAII reservation against the engine's bounded submission window.
/// Construction sheds (throws OverloadError) when the window is full;
/// destruction releases the items. `tl_in_worker` calls run inline on a
/// pool thread inside an already-admitted batch, so they bypass the
/// window — counting them again would deadlock a nested sweep against
/// its own parent's reservation.
class CryptoEngine::AdmissionTicket {
 public:
  AdmissionTicket(CryptoEngine& eng, size_t items) : eng_(eng) {
    if (tl_in_worker) return;
    eng_.admit_items(items);
    items_ = items;
  }
  ~AdmissionTicket() {
    if (items_ > 0) eng_.release_items(items_);
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

 private:
  CryptoEngine& eng_;
  size_t items_ = 0;
};

void CryptoEngine::set_admission_limit(size_t items) {
  admission_limit_.store(items, std::memory_order_relaxed);
}

size_t CryptoEngine::admission_limit() const {
  return admission_limit_.load(std::memory_order_relaxed);
}

size_t CryptoEngine::inflight_items() const {
  return inflight_items_.load(std::memory_order_relaxed);
}

uint64_t CryptoEngine::shed_total() const {
  return sheds_.load(std::memory_order_relaxed);
}

void CryptoEngine::admit_items(size_t items) {
  const size_t limit = admission_limit_.load(std::memory_order_relaxed);
  const size_t prior = inflight_items_.fetch_add(items, std::memory_order_relaxed);
  if (limit == 0 || prior + items <= limit) return;
  inflight_items_.fetch_sub(items, std::memory_order_relaxed);
  sheds_.fetch_add(1, std::memory_order_relaxed);
  EngineMetrics::get().sheds.inc();
  throw OverloadError("CryptoEngine: admission window full (" +
                      std::to_string(prior) + " in flight, limit " +
                      std::to_string(limit) + "): shedding batch of " +
                      std::to_string(items));
}

void CryptoEngine::release_items(size_t items) {
  inflight_items_.fetch_sub(items, std::memory_order_relaxed);
}

// --------------------------------------------------------- construction --

CryptoEngine::CryptoEngine(const Group& grp, int threads)
    : grp_(&grp), threads_(1), cache_(std::make_unique<LruCache>()),
      stat_cells_(std::make_unique<StatCells>()) {
  set_threads(threads);
}

CryptoEngine::~CryptoEngine() = default;

int CryptoEngine::default_threads() {
  const int o = g_default_override.load(std::memory_order_relaxed);
  if (o > 0) return o;
  if (const char* env = std::getenv("MAABE_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void CryptoEngine::set_default_threads(int threads) {
  g_default_override.store(threads > 0 ? threads : 0, std::memory_order_relaxed);
}

CryptoEngine& CryptoEngine::for_group(const Group& grp) {
  struct Slot {
    uint64_t id = 0;
    std::unique_ptr<CryptoEngine> engine;
  };
  static std::mutex reg_mu;
  static std::map<const Group*, Slot> registry;
  std::lock_guard<std::mutex> lk(reg_mu);
  Slot& slot = registry[&grp];
  if (!slot.engine || slot.id != grp.instance_id()) {
    // First sighting, or the address was reused by a new Group after the
    // old one died — either way the engine (and its cached tables, which
    // reference the dead Group's contexts) must be rebuilt.
    slot.engine = std::make_unique<CryptoEngine>(grp);
    slot.id = grp.instance_id();
  }
  return *slot.engine;
}

void CryptoEngine::set_threads(int threads) {
  const int n = threads > 0 ? threads : default_threads();
  std::lock_guard<std::mutex> lk(mu_);
  if (n == threads_ && (pool_ || n == 1)) return;
  pool_.reset();  // joins workers; must not race a running batch
  threads_ = n;
  // Pool holds threads_ - 1 workers; the submitting thread participates.
  if (threads_ > 1) pool_ = std::make_unique<Pool>(threads_ - 1);
}

void CryptoEngine::run_items(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool_ == nullptr || n < 2 || tl_in_worker) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool_->run(n, fn);
}

void CryptoEngine::parallel_for(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  AdmissionTicket ticket(*this, n);
  telemetry::Span span = telemetry::Tracer::global().start_span("engine.parallel_for");
  if (span.active()) span.attr("items", static_cast<uint64_t>(n));
  EngineStats d;
  d.tasks = n;
  commit_stats(d);
  run_items(n, fn);
}

std::vector<GT> CryptoEngine::pair_batch(const std::vector<PairTerm>& terms) {
  AdmissionTicket ticket(*this, terms.size());
  BatchScope scope(*this, EngineMetrics::get().pair_batch_ns, "engine.pair_batch");
  const size_t n = terms.size();
  scope.delta.pairings = n;
  scope.delta.tasks = n;
  scope.set_items(n);
  // Resolve line tables for repeated first arguments under the LRU
  // lock; identity terms pair to 1 without touching the cache.
  std::vector<std::shared_ptr<const pairing::PairingPrecomp>> pre(n);
  {
    std::lock_guard<std::mutex> lk(cache_->mu);
    for (size_t i = 0; i < n; ++i) {
      if (terms[i].a.is_identity() || terms[i].b.is_identity()) continue;
      ++scope.delta.miller_loops;
      ++scope.delta.final_exps;
      LruCache::Node& node = cache_->touch(terms[i].a.to_bytes());
      if (!node.pair && node.uses >= LruCache::kBuildThreshold) {
        node.pair = grp_->pair_precompute(terms[i].a);
        ++scope.delta.precomp_builds;
      }
      if (node.pair) ++scope.delta.precomp_hits;
      pre[i] = node.pair;
    }
  }
  std::vector<GT> out(n);
  run_items(n, [&](size_t i) {
    out[i] = pre[i] ? grp_->miller_reduce(grp_->miller_with(*pre[i], terms[i].b))
                    : grp_->pair(terms[i].a, terms[i].b);
  });
  return out;
}

GT CryptoEngine::pairing_product(const std::vector<PairTerm>& terms) {
  return pairing_power_product(terms, {});
}

GT CryptoEngine::pairing_power_product(const std::vector<PairTerm>& terms,
                                       const std::vector<Zr>& exps) {
  if (!exps.empty() && exps.size() != terms.size())
    throw MathError("pairing_power_product: terms/exps size mismatch");
  AdmissionTicket ticket(*this, terms.size());
  BatchScope scope(*this, EngineMetrics::get().pair_batch_ns,
                   "engine.pairing_product");
  const size_t n = terms.size();
  scope.delta.pairings = n;
  scope.set_items(n);
  // Select the live terms. pair() defines identity inputs as 1, and a
  // zero exponent makes the factor 1 outright; both would inject
  // degenerate values into the shared reduction, so they are skipped —
  // which is exactly what the serial fold multiplies by anyway.
  std::vector<size_t> live;
  live.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (terms[i].a.is_identity() || terms[i].b.is_identity()) continue;
    if (!exps.empty() && exps[i].is_zero()) continue;
    live.push_back(i);
  }
  if (live.empty()) return grp_->gt_one();
  scope.delta.tasks = live.size();
  scope.delta.miller_loops = live.size();
  scope.delta.final_exps = 1;

  std::vector<std::shared_ptr<const pairing::PairingPrecomp>> pre(live.size());
  {
    std::lock_guard<std::mutex> lk(cache_->mu);
    for (size_t k = 0; k < live.size(); ++k) {
      const pairing::G1& a = terms[live[k]].a;
      LruCache::Node& node = cache_->touch(a.to_bytes());
      if (!node.pair && node.uses >= LruCache::kBuildThreshold) {
        node.pair = grp_->pair_precompute(a);
        ++scope.delta.precomp_builds;
      }
      if (node.pair) ++scope.delta.precomp_hits;
      pre[k] = node.pair;
    }
  }

  // Parallel Miller loops; the reduction below stays on the caller.
  std::vector<pairing::MillerVal> parts(live.size());
  run_items(live.size(), [&](size_t k) {
    const PairTerm& t = terms[live[k]];
    parts[k] = pre[k] ? grp_->miller_with(*pre[k], t.b) : grp_->miller(t.a, t.b);
  });

  // Fold unreduced values in submission order — exact arithmetic makes
  // this byte-identical to the serial pair-then-multiply loop at any
  // thread count. Runs of equal adjacent exponents fold first and are
  // raised once ((m1*m2)^e == m1^e * m2^e exactly), which halves the
  // exponentiations for the decrypt-denominator shape.
  pairing::MillerVal acc = grp_->miller_one();
  if (exps.empty()) {
    for (const pairing::MillerVal& p : parts) acc = acc.mul(p);
  } else {
    for (size_t k = 0; k < live.size();) {
      pairing::MillerVal run = parts[k];
      const Zr& e = exps[live[k]];
      size_t j = k + 1;
      for (; j < live.size() && exps[live[j]] == e; ++j) run = run.mul(parts[j]);
      ++scope.delta.gt_exps;
      acc = acc.mul(run.pow(e));
      k = j;
    }
  }
  // The single shared final exponentiation for the whole product.
  return grp_->miller_reduce(acc);
}

GT CryptoEngine::pair(const pairing::G1& a, const pairing::G1& b) {
  AdmissionTicket ticket(*this, 1);
  BatchScope scope(*this, EngineMetrics::get().pair_batch_ns, "engine.pair");
  scope.delta.pairings = 1;
  scope.set_items(1);
  if (a.is_identity() || b.is_identity()) return grp_->gt_one();
  scope.delta.miller_loops = 1;
  scope.delta.final_exps = 1;
  std::shared_ptr<const pairing::PairingPrecomp> pre;
  {
    std::lock_guard<std::mutex> lk(cache_->mu);
    LruCache::Node& node = cache_->touch(a.to_bytes());
    if (!node.pair && node.uses >= LruCache::kBuildThreshold) {
      node.pair = grp_->pair_precompute(a);
      ++scope.delta.precomp_builds;
    }
    if (node.pair) ++scope.delta.precomp_hits;
    pre = node.pair;
  }
  return pre ? grp_->miller_reduce(grp_->miller_with(*pre, b))
             : grp_->pair(a, b);
}

void CryptoEngine::warm_pair_precomp(const pairing::G1& base) {
  if (base.is_identity()) return;
  EngineStats d;
  {
    std::lock_guard<std::mutex> lk(cache_->mu);
    LruCache::Node& node = cache_->touch(base.to_bytes());
    // The caller announced a whole epoch of pairings against this base;
    // skip the break-even counting and build immediately.
    if (node.uses < LruCache::kBuildThreshold) node.uses = LruCache::kBuildThreshold;
    if (!node.pair) {
      node.pair = grp_->pair_precompute(base);
      d.precomp_builds = 1;
    }
  }
  if (d.precomp_builds != 0) commit_stats(d);
}

std::vector<G1> CryptoEngine::multi_exp_g1(const std::vector<G1Term>& terms,
                                           bool cache_bases) {
  AdmissionTicket ticket(*this, terms.size());
  BatchScope scope(*this, EngineMetrics::get().multi_exp_g1_ns,
                   "engine.multi_exp_g1");
  const size_t n = terms.size();
  scope.delta.g1_exps = n;
  scope.delta.tasks = n;
  scope.set_items(n);
  // Serial resolve phase: consult/update the LRU under one lock so the
  // parallel phase below touches only immutable tables.
  std::vector<std::shared_ptr<const pairing::G1FixedBase>> tables(n);
  if (cache_bases) {
    std::lock_guard<std::mutex> lk(cache_->mu);
    for (size_t i = 0; i < n; ++i) {
      if (terms[i].base.is_identity()) continue;
      LruCache::Node& node = cache_->touch(terms[i].base.to_bytes());
      if (!node.g1 && node.uses >= LruCache::kBuildThreshold) {
        node.g1 = grp_->g1_precompute(terms[i].base);
        ++scope.delta.table_builds;
      }
      if (node.g1) ++scope.delta.table_hits;
      tables[i] = node.g1;
    }
  }
  std::vector<G1> out(n);
  run_items(n, [&](size_t i) {
    out[i] = tables[i] ? grp_->g1_pow_with(*tables[i], terms[i].exp)
                       : terms[i].base.mul(terms[i].exp);
  });
  return out;
}

std::vector<GT> CryptoEngine::multi_exp_gt(const std::vector<GtTerm>& terms,
                                           bool cache_bases) {
  AdmissionTicket ticket(*this, terms.size());
  BatchScope scope(*this, EngineMetrics::get().multi_exp_gt_ns,
                   "engine.multi_exp_gt");
  const size_t n = terms.size();
  scope.delta.gt_exps = n;
  scope.delta.tasks = n;
  scope.set_items(n);
  std::vector<std::shared_ptr<const pairing::GtFixedBase>> tables(n);
  if (cache_bases) {
    std::lock_guard<std::mutex> lk(cache_->mu);
    for (size_t i = 0; i < n; ++i) {
      if (terms[i].base.is_one()) continue;
      LruCache::Node& node = cache_->touch(terms[i].base.to_bytes());
      if (!node.gt && node.uses >= LruCache::kBuildThreshold) {
        node.gt = grp_->gt_precompute(terms[i].base);
        ++scope.delta.table_builds;
      }
      if (node.gt) ++scope.delta.table_hits;
      tables[i] = node.gt;
    }
  }
  std::vector<GT> out(n);
  run_items(n, [&](size_t i) {
    out[i] = tables[i] ? grp_->gt_pow_with(*tables[i], terms[i].exp)
                       : terms[i].base.pow(terms[i].exp);
  });
  return out;
}

std::vector<G1> CryptoEngine::g_pow_batch(const std::vector<Zr>& exps) {
  AdmissionTicket ticket(*this, exps.size());
  BatchScope scope(*this, EngineMetrics::get().g_pow_batch_ns,
                   "engine.g_pow_batch");
  scope.delta.g1_exps = exps.size();
  scope.delta.tasks = exps.size();
  scope.set_items(exps.size());
  std::vector<G1> out(exps.size());
  run_items(exps.size(), [&](size_t i) { out[i] = grp_->g_pow(exps[i]); });
  return out;
}

std::vector<GT> CryptoEngine::egg_pow_batch(const std::vector<Zr>& exps) {
  AdmissionTicket ticket(*this, exps.size());
  BatchScope scope(*this, EngineMetrics::get().egg_pow_batch_ns,
                   "engine.egg_pow_batch");
  scope.delta.gt_exps = exps.size();
  scope.delta.tasks = exps.size();
  scope.set_items(exps.size());
  std::vector<GT> out(exps.size());
  run_items(exps.size(), [&](size_t i) { out[i] = grp_->egg_pow(exps[i]); });
  return out;
}

EngineStats CryptoEngine::stats() const {
  const StatCells& c = *stat_cells_;
  for (;;) {
    const uint64_t s1 = c.seq.load(std::memory_order_acquire);
    if ((s1 & 1) == 0) {
      EngineStats out;
      out.pairings = c.pairings.load(std::memory_order_relaxed);
      out.g1_exps = c.g1_exps.load(std::memory_order_relaxed);
      out.gt_exps = c.gt_exps.load(std::memory_order_relaxed);
      out.miller_loops = c.miller_loops.load(std::memory_order_relaxed);
      out.final_exps = c.final_exps.load(std::memory_order_relaxed);
      out.batches = c.batches.load(std::memory_order_relaxed);
      out.tasks = c.tasks.load(std::memory_order_relaxed);
      out.table_builds = c.table_builds.load(std::memory_order_relaxed);
      out.table_hits = c.table_hits.load(std::memory_order_relaxed);
      out.precomp_builds = c.precomp_builds.load(std::memory_order_relaxed);
      out.precomp_hits = c.precomp_hits.load(std::memory_order_relaxed);
      out.wall_ns = c.wall_ns.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (c.seq.load(std::memory_order_relaxed) == s1) return out;
    }
    std::this_thread::yield();
  }
}

void CryptoEngine::reset_stats() {
  StatCells& c = *stat_cells_;
  std::lock_guard<std::mutex> lk(c.write_mu);
  const uint64_t s = c.seq.load(std::memory_order_relaxed);
  c.seq.store(s + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (std::atomic<uint64_t>* f :
       {&c.pairings, &c.g1_exps, &c.gt_exps, &c.miller_loops, &c.final_exps,
        &c.batches, &c.tasks, &c.table_builds, &c.table_hits,
        &c.precomp_builds, &c.precomp_hits, &c.wall_ns}) {
    f->store(0, std::memory_order_relaxed);
  }
  c.seq.store(s + 2, std::memory_order_release);
}

}  // namespace maabe::engine
