// Batched crypto-op engine — the layer every hot path submits group
// operations through.
//
// The paper's cost model is dominated by pairings and exponentiations
// (decrypt alone evaluates 2l + N_A pairings); a CryptoEngine turns
// those serial loops into batches executed on a fixed-size thread pool:
//
//   * pairing_product / pairing_power_product / pair_batch — the
//     multi-pairing kernel: Miller loops evaluated in parallel (with
//     fixed-argument line tables cached in the LRU), unreduced values
//     folded in submission order, one shared final exponentiation per
//     product.
//   * multi_exp_g1 / multi_exp_gt — batched variable-base
//     exponentiation with a per-Group LRU precomputation cache:
//     bases seen repeatedly across batches (PK_UID in KeyGen, the
//     per-attribute PK_{x,AID} in Encrypt, authority blinds) get a
//     window table built once and reused, the same machinery Group
//     already uses for g and e(g,g).
//   * g_pow_batch / egg_pow_batch — batches over the two fixed bases.
//   * parallel_for — generic data-parallel sweep (CloudServer uses it
//     to re-encrypt stored ciphertexts concurrently).
//
// Determinism guarantee: all group arithmetic is exact, every output
// slot is computed independently, and folds run in submission order on
// the calling thread — results are byte-identical to the serial path at
// any thread count. `threads == 1` (or MAABE_THREADS=1) bypasses the
// pool entirely and executes the legacy serial sequence inline.
//
// Thread count resolution: explicit constructor arg > set_threads() >
// MAABE_THREADS env var > std::thread::hardware_concurrency().
//
// The engine relies on Group's documented const-thread-safety (see
// pairing/group.h). Engine methods themselves are safe to call from
// multiple threads; batches are serialized on the pool.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "pairing/group.h"

namespace maabe::engine {

/// Operation counters + wall time, surfaced to benches the same way
/// cloud::ChannelMeter surfaces wire bytes. Snapshot with
/// CryptoEngine::stats(); per-phase deltas via operator-.
struct EngineStats {
  uint64_t pairings = 0;   ///< e(a,b) evaluations submitted
  uint64_t g1_exps = 0;    ///< G1 exponentiations (fixed + variable base)
  uint64_t gt_exps = 0;    ///< GT/target-field exponentiations
  uint64_t miller_loops = 0;  ///< Miller loops actually evaluated
  uint64_t final_exps = 0;    ///< final exponentiations actually paid
  uint64_t batches = 0;    ///< batch API calls
  uint64_t tasks = 0;      ///< parallel_for items processed
  uint64_t table_builds = 0;  ///< LRU window tables constructed
  uint64_t table_hits = 0;    ///< exponentiations served from a cached table
  uint64_t precomp_builds = 0;  ///< pairing line tables constructed
  uint64_t precomp_hits = 0;    ///< Miller loops served from a cached table
  uint64_t wall_ns = 0;    ///< wall time spent inside batch APIs

  EngineStats operator-(const EngineStats& earlier) const;
  EngineStats& operator+=(const EngineStats& o);
  double wall_ms() const { return static_cast<double>(wall_ns) / 1e6; }
};

class CryptoEngine {
 public:
  /// `threads == 0` resolves via MAABE_THREADS / hardware_concurrency.
  /// The Group must outlive the engine.
  explicit CryptoEngine(const pairing::Group& grp, int threads = 0);
  ~CryptoEngine();

  CryptoEngine(const CryptoEngine&) = delete;
  CryptoEngine& operator=(const CryptoEngine&) = delete;

  /// The process-wide engine for `grp`, created on first use with the
  /// default thread count. Detects Group address reuse via
  /// Group::instance_id(). Engines live for the process lifetime.
  static CryptoEngine& for_group(const pairing::Group& grp);

  /// MAABE_THREADS env var, else hardware_concurrency, min 1. A value
  /// set with set_default_threads() overrides both (CLI --threads).
  static int default_threads();
  /// Override the default for engines created after this call;
  /// `0` restores env/hardware resolution.
  static void set_default_threads(int threads);

  int threads() const { return threads_; }
  /// Resize the pool (joins and respawns workers). `0` = default.
  void set_threads(int threads);

  // ---- Admission control -------------------------------------------
  /// Bounds the engine's submission window: while more than `items`
  /// batch items (pairing terms, exponentiation terms, parallel_for
  /// iterations) are in flight across all callers, further batch calls
  /// are shed with OverloadError instead of queueing behind the pool.
  /// `0` (the default) disables the bound — the process-wide for_group
  /// engines stay unbounded unless a deployment opts in.
  void set_admission_limit(size_t items);
  size_t admission_limit() const;
  /// Batch items currently admitted (approximate while calls race).
  size_t inflight_items() const;
  /// Batch calls shed with OverloadError since construction, mirrored
  /// into maabe_engine_shed_total.
  uint64_t shed_total() const;

  // ---- Batched operations ------------------------------------------
  struct PairTerm {
    pairing::G1 a, b;
  };
  struct G1Term {
    pairing::G1 base;
    pairing::Zr exp;
  };
  struct GtTerm {
    pairing::GT base;
    pairing::Zr exp;
  };

  /// prod_i e(a_i, b_i) through the multi-pairing kernel: Miller loops
  /// run in parallel (repeated first arguments hit the LRU's line
  /// tables), the unreduced values fold in submission order, and the
  /// whole product pays ONE shared final exponentiation. Identity terms
  /// are skipped outright — pair() defines them as 1, and a degenerate
  /// Miller value must never reach the shared reduction. Bit-identical
  /// to the serial pair-then-multiply fold at any thread count.
  pairing::GT pairing_product(const std::vector<PairTerm>& terms);
  /// prod_i e(a_i, b_i)^{e_i}, same kernel: exponents apply to the
  /// unreduced Miller values (runs of equal adjacent exponents are
  /// raised once, after folding), still one final exponentiation.
  /// Requires exps.size() == terms.size(); zero exponents skip their
  /// term. This is the shape of every ABE decrypt denominator.
  pairing::GT pairing_power_product(const std::vector<PairTerm>& terms,
                                    const std::vector<pairing::Zr>& exps);
  /// A single e(a, b) through the precomp cache — repeated first
  /// arguments (an epoch's UK1 in proxy re-encryption) become table
  /// hits. Same bits as Group::pair.
  pairing::GT pair(const pairing::G1& a, const pairing::G1& b);
  /// Forces the line table for `base` to exist in the LRU (epoch
  /// warm-up: build once before fanning slots across the pool).
  void warm_pair_precomp(const pairing::G1& base);
  /// Each e(a_i, b_i) individually (no fold; one final exp per term).
  std::vector<pairing::GT> pair_batch(const std::vector<PairTerm>& terms);

  /// base_i ^ exp_i for variable bases. `cache_bases = false` skips the
  /// LRU entirely — pass it when the bases are one-offs (e.g. the pairing
  /// products decrypt exponentiates) so they don't evict hot tables.
  std::vector<pairing::G1> multi_exp_g1(const std::vector<G1Term>& terms,
                                        bool cache_bases = true);
  std::vector<pairing::GT> multi_exp_gt(const std::vector<GtTerm>& terms,
                                        bool cache_bases = true);

  /// g ^ exp_i / e(g,g) ^ exp_i via the Group's fixed-base tables.
  std::vector<pairing::G1> g_pow_batch(const std::vector<pairing::Zr>& exps);
  std::vector<pairing::GT> egg_pow_batch(const std::vector<pairing::Zr>& exps);

  /// Runs fn(0..n-1), work-stealing across the pool; blocks until all
  /// items finish. Exceptions from fn are rethrown on the caller (first
  /// one wins), and once one item has thrown the remaining unstarted
  /// items are ABANDONED — a failed sweep is neither all nor nothing.
  /// Callers needing failure atomicity must write into staging copies
  /// and commit only after parallel_for returns (the contract
  /// CloudServer::reencrypt's epoch protocol builds on). The pool stays
  /// usable after a throwing sweep. Reentrant calls from inside a
  /// worker run inline.
  void parallel_for(size_t n, const std::function<void(size_t)>& fn);

  // ---- Accounting --------------------------------------------------
  /// Coherent snapshot: every batch commits its counters, wall time and
  /// batch count as one atomic unit (seqlock), so a snapshot taken
  /// while batches run never shows a half-recorded batch (e.g. its
  /// pairings without its wall_ns). The same deltas feed the global
  /// telemetry::MetricsRegistry under maabe_engine_* names.
  EngineStats stats() const;
  void reset_stats();

 private:
  struct Pool;
  struct LruCache;
  struct StatCells;  // seqlock-guarded per-engine stat store (engine.cpp)
  class BatchScope;  // RAII per-batch delta accumulator (engine.cpp)
  class AdmissionTicket;  // RAII admit/release around a batch (engine.cpp)

  /// Reserves `items` against the admission window; throws OverloadError
  /// (and counts the shed) when the window is full. Paired with
  /// release_items by AdmissionTicket.
  void admit_items(size_t items);
  void release_items(size_t items);

  void ensure_pool();
  /// parallel_for's dispatch without the task accounting — batch APIs
  /// fold their item count into the batch's atomic stat commit instead.
  void run_items(size_t n, const std::function<void(size_t)>& fn);
  /// Applies a delta to the per-engine seqlock store and mirrors it
  /// into the global metrics registry.
  void commit_stats(const EngineStats& delta);

  const pairing::Group* grp_;
  int threads_;
  std::unique_ptr<Pool> pool_;        // created lazily; null when threads_ == 1
  std::unique_ptr<LruCache> cache_;   // variable-base window tables
  std::unique_ptr<StatCells> stat_cells_;
  std::atomic<size_t> admission_limit_{0};  // 0 = unbounded
  std::atomic<size_t> inflight_items_{0};
  std::atomic<uint64_t> sheds_{0};
  mutable std::mutex mu_;             // guards pool_ resize
};

}  // namespace maabe::engine
