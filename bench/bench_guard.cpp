// Tiny threshold checker for the bench-smoke ctest target.
//
// Reads the flat BENCH_*.json files the bench harness writes (see
// bench_json.h) and enforces one numeric constraint per invocation:
//
//   bench_guard floor   <json> <key> <min>
//       fail when json[key] < min                (e.g. kernel_speedup)
//   bench_guard regress <fresh> <baseline> <key> <max_pct>
//       fail when fresh[key] > baseline[key] * (1 + max_pct/100)
//                                                (e.g. epoch wall time)
//   bench_guard floor_ratio <fresh> <baseline> <key> <min_ratio>
//       fail when fresh[key] < baseline[key] * min_ratio
//                                                (e.g. throughput floor)
//
// A missing or non-numeric key exits 2 — a guard must never silently
// pass because the bench stopped emitting its field.
//
// The "parser" is a text scan for `"key":` followed by a number — the
// harness emits flat records with ordered keys, so the first numeric
// occurrence of a key is the one the guard wants (occurrences whose
// value is a nested object are skipped).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace {

bool find_number(const std::string& text, const std::string& key, double* out) {
  const std::string needle = "\"" + key + "\":";
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    size_t v = pos + needle.size();
    while (v < text.size() && (text[v] == ' ' || text[v] == '\t')) ++v;
    char* end = nullptr;
    const double parsed = std::strtod(text.c_str() + v, &end);
    if (end != text.c_str() + v) {
      *out = parsed;
      return true;
    }
    pos = v;  // value was not a number (nested object) — keep looking
  }
  return false;
}

bool load(const char* path, const char* key, double* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_guard: cannot open %s\n", path);
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  if (!find_number(ss.str(), key, out)) {
    std::fprintf(stderr, "bench_guard: no numeric key \"%s\" in %s\n", key, path);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 5 && std::strcmp(argv[1], "floor") == 0) {
    double value = 0;
    if (!load(argv[2], argv[3], &value)) return 2;
    const double min = std::atof(argv[4]);
    std::printf("bench_guard: %s %s = %.4f (floor %.4f)\n", argv[2], argv[3], value, min);
    if (value < min) {
      std::fprintf(stderr, "bench_guard: FAIL — %s below floor\n", argv[3]);
      return 1;
    }
    return 0;
  }
  if (argc == 6 && std::strcmp(argv[1], "regress") == 0) {
    double fresh = 0, base = 0;
    if (!load(argv[2], argv[4], &fresh) || !load(argv[3], argv[4], &base)) return 2;
    const double max_pct = std::atof(argv[5]);
    const double limit = base * (1.0 + max_pct / 100.0);
    std::printf("bench_guard: %s = %.4f fresh vs %.4f baseline (limit %.4f, +%s%%)\n",
                argv[4], fresh, base, limit, argv[5]);
    if (fresh > limit) {
      std::fprintf(stderr, "bench_guard: FAIL — %s regressed more than %s%%\n",
                   argv[4], argv[5]);
      return 1;
    }
    return 0;
  }
  if (argc == 6 && std::strcmp(argv[1], "floor_ratio") == 0) {
    double fresh = 0, base = 0;
    if (!load(argv[2], argv[4], &fresh) || !load(argv[3], argv[4], &base)) return 2;
    const double min_ratio = std::atof(argv[5]);
    const double limit = base * min_ratio;
    std::printf("bench_guard: %s = %.4f fresh vs %.4f baseline (floor %.4f, x%s)\n",
                argv[4], fresh, base, limit, argv[5]);
    if (fresh < limit) {
      std::fprintf(stderr, "bench_guard: FAIL — %s below %sx of baseline\n",
                   argv[4], argv[5]);
      return 1;
    }
    return 0;
  }
  std::fprintf(stderr,
               "usage: bench_guard floor <json> <key> <min>\n"
               "       bench_guard regress <fresh_json> <baseline_json> <key> <max_pct>\n"
               "       bench_guard floor_ratio <fresh_json> <baseline_json> <key> <min_ratio>\n");
  return 2;
}
