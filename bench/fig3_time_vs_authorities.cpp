// Figure 3 (a)+(b): encryption and decryption time vs the number of
// authorities, with 5 attributes per authority — ours vs Lewko-Waters.
//
// Paper shape to reproduce:
//   (a) both schemes grow linearly in n_A; ours encrypts faster.
//   (b) both grow linearly; our decryption is slightly slower than
//       Lewko's (we pay n_A extra pairings; Lewko pays extra GT ops).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "bench_json.h"

namespace maabe::bench {
namespace {

constexpr int kAttrsPerAuthority = 5;

void BM_Fig3a_Encrypt_Ours(benchmark::State& state) {
  const int n_auth = static_cast<int>(state.range(0));
  const OurWorld& w = OurWorld::get(n_auth, kAttrsPerAuthority);
  crypto::Drbg rng(std::string_view("fig3a-ours"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(abe::encrypt(*w.grp, w.mk, "ct", w.message, w.policy,
                                          w.apks, w.attr_pks, rng));
  }
  state.counters["authorities"] = n_auth;
}

void BM_Fig3a_Encrypt_Lewko(benchmark::State& state) {
  const int n_auth = static_cast<int>(state.range(0));
  const LewkoWorld& w = LewkoWorld::get(n_auth, kAttrsPerAuthority);
  crypto::Drbg rng(std::string_view("fig3a-lewko"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baseline::lewko_encrypt(*w.grp, w.message, w.policy, w.pks, rng));
  }
  state.counters["authorities"] = n_auth;
}

void BM_Fig3b_Decrypt_Ours(benchmark::State& state) {
  const int n_auth = static_cast<int>(state.range(0));
  const OurWorld& w = OurWorld::get(n_auth, kAttrsPerAuthority);
  for (auto _ : state) {
    benchmark::DoNotOptimize(abe::decrypt(*w.grp, w.enc.ct, w.user, w.user_keys));
  }
  state.counters["authorities"] = n_auth;
}

void BM_Fig3b_Decrypt_Lewko(benchmark::State& state) {
  const int n_auth = static_cast<int>(state.range(0));
  const LewkoWorld& w = LewkoWorld::get(n_auth, kAttrsPerAuthority);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::lewko_decrypt(*w.grp, w.ct, w.user_key));
  }
  state.counters["authorities"] = n_auth;
}

void sweep(benchmark::internal::Benchmark* b) {
  for (int n = 2; n <= 10; n += 2) b->Arg(n);
  b->Unit(benchmark::kMillisecond)->MinTime(0.05);
}

BENCHMARK(BM_Fig3a_Encrypt_Ours)->Apply(sweep);
BENCHMARK(BM_Fig3a_Encrypt_Lewko)->Apply(sweep);
BENCHMARK(BM_Fig3b_Decrypt_Ours)->Apply(sweep);
BENCHMARK(BM_Fig3b_Decrypt_Lewko)->Apply(sweep);

void emit_json() {
  std::vector<Json> points;
  for (int n = 2; n <= 10; n += 2) {
    const FigPoint p = measure_fig_point(n, kAttrsPerAuthority);
    Json j;
    j.put("authorities", n)
        .put("ours_encrypt_ms", p.ours_encrypt_ms)
        .put("ours_decrypt_ms", p.ours_decrypt_ms)
        .put("lewko_encrypt_ms", p.lewko_encrypt_ms)
        .put("lewko_decrypt_ms", p.lewko_decrypt_ms)
        .put("ours_encrypt_ops", stats_json(p.ours_encrypt_ops))
        .put("ours_decrypt_ops", stats_json(p.ours_decrypt_ops))
        .put("lewko_encrypt_ops", stats_json(p.lewko_encrypt_ops))
        .put("lewko_decrypt_ops", stats_json(p.lewko_decrypt_ops));
    points.push_back(j);
  }
  Json root;
  root.put("bench", "fig3")
      .put("group", bench_group_label())
      .put("attrs_per_authority", kAttrsPerAuthority)
      .put("engine_threads",
           engine::CryptoEngine::for_group(*bench_group()).threads())
      .put("points", points);
  write_bench_json("fig3", root);
}

}  // namespace
}  // namespace maabe::bench

int main(int argc, char** argv) {
  std::printf("Fig. 3 reproduction: time vs #authorities (%d attrs/authority)\n",
              maabe::bench::kAttrsPerAuthority);
  std::printf("group: %s\nengine threads: %d\n\n",
              maabe::bench::bench_group_label().c_str(),
              maabe::engine::CryptoEngine::default_threads());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  maabe::bench::emit_json();
  return 0;
}
