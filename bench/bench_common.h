// Shared world-building for the benchmark harness.
//
// Every table/figure in the paper's evaluation uses the same workload
// family: n_A authorities, n_k attributes per authority, a policy
// spanning all n_A * n_k attributes (AND), one user holding all of them.
// Worlds are cached per configuration so google-benchmark iterations
// time only the operation under measurement.
//
// MAABE_BENCH_SMALL=1 in the environment switches to the fast insecure
// 192-bit test curve (useful for smoke runs); the default is the paper's
// 512-bit PBC a-type setting.
#pragma once

#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "abe/scheme.h"
#include "baseline/lewko.h"
#include "engine/engine.h"
#include "lsss/parser.h"

namespace maabe::bench {

inline std::shared_ptr<const pairing::Group> bench_group() {
  static std::shared_ptr<const pairing::Group> grp = [] {
    const char* small = std::getenv("MAABE_BENCH_SMALL");
    return (small != nullptr && small[0] == '1') ? pairing::Group::test_small()
                                                 : pairing::Group::pbc_a512();
  }();
  return grp;
}

inline std::string bench_group_label() {
  const char* small = std::getenv("MAABE_BENCH_SMALL");
  return (small != nullptr && small[0] == '1') ? "test_small(192-bit q)"
                                               : "pbc_a512(512-bit q, paper setting)";
}

inline std::string aid_of(int k) { return "AA" + std::to_string(k); }
inline std::string attr_name(int j) { return "attr" + std::to_string(j); }

/// AND-policy over all n_auth * n_attr attributes.
inline lsss::LsssMatrix full_and_policy(int n_auth, int n_attr) {
  std::string text;
  for (int k = 0; k < n_auth; ++k) {
    for (int j = 0; j < n_attr; ++j) {
      if (!text.empty()) text += " AND ";
      text += attr_name(j) + "@" + aid_of(k);
    }
  }
  return lsss::LsssMatrix::from_policy(lsss::parse_policy(text));
}

/// Our scheme's world for one (n_auth, n_attr) configuration.
struct OurWorld {
  std::shared_ptr<const pairing::Group> grp;
  abe::OwnerMasterKey mk;
  abe::OwnerSecretShare sk_o;
  std::map<std::string, abe::AuthorityVersionKey> vks;
  std::map<std::string, abe::AuthorityPublicKey> apks;
  std::map<std::string, abe::PublicAttributeKey> attr_pks;
  abe::UserPublicKey user;
  std::map<std::string, abe::UserSecretKey> user_keys;
  lsss::LsssMatrix policy;
  pairing::GT message;
  abe::EncryptionResult enc;  ///< pre-made ciphertext for decrypt timing

  static const OurWorld& get(int n_auth, int n_attr) {
    static std::map<std::pair<int, int>, std::unique_ptr<OurWorld>> cache;
    auto& slot = cache[{n_auth, n_attr}];
    if (!slot) slot = build(n_auth, n_attr);
    return *slot;
  }

  static std::unique_ptr<OurWorld> build(int n_auth, int n_attr) {
    auto w = std::make_unique<OurWorld>();
    w->grp = bench_group();
    crypto::Drbg rng(std::string_view("bench-our-world"));
    w->mk = abe::owner_gen(*w->grp, "owner", rng);
    w->sk_o = abe::owner_share(*w->grp, w->mk);
    w->user = abe::ca_register_user(*w->grp, "user", rng);
    for (int k = 0; k < n_auth; ++k) {
      const std::string aid = aid_of(k);
      const abe::AuthorityVersionKey vk = abe::aa_setup(*w->grp, aid, rng);
      w->apks.emplace(aid, abe::aa_public_key(*w->grp, vk));
      std::set<std::string> names;
      for (int j = 0; j < n_attr; ++j) {
        const std::string name = attr_name(j);
        names.insert(name);
        const abe::PublicAttributeKey pk = abe::aa_attribute_key(*w->grp, vk, name);
        w->attr_pks.emplace(pk.attr.qualified(), pk);
      }
      w->user_keys.emplace(aid, abe::aa_keygen(*w->grp, vk, w->sk_o, w->user, names));
      w->vks.emplace(aid, vk);
    }
    w->policy = full_and_policy(n_auth, n_attr);
    w->message = w->grp->gt_random(rng);
    w->enc = abe::encrypt(*w->grp, w->mk, "bench-ct", w->message, w->policy, w->apks,
                          w->attr_pks, rng);
    return w;
  }
};

/// Lewko-Waters baseline world for the same configuration.
struct LewkoWorld {
  std::shared_ptr<const pairing::Group> grp;
  std::map<std::string, baseline::LewkoAuthorityKeys> authorities;
  std::map<std::string, baseline::LewkoAttributePublicKey> pks;
  baseline::LewkoUserKey user_key;
  lsss::LsssMatrix policy;
  pairing::GT message;
  baseline::LewkoCiphertext ct;  ///< pre-made ciphertext for decrypt timing

  static const LewkoWorld& get(int n_auth, int n_attr) {
    static std::map<std::pair<int, int>, std::unique_ptr<LewkoWorld>> cache;
    auto& slot = cache[{n_auth, n_attr}];
    if (!slot) slot = build(n_auth, n_attr);
    return *slot;
  }

  static std::unique_ptr<LewkoWorld> build(int n_auth, int n_attr) {
    auto w = std::make_unique<LewkoWorld>();
    w->grp = bench_group();
    crypto::Drbg rng(std::string_view("bench-lewko-world"));
    for (int k = 0; k < n_auth; ++k) {
      const std::string aid = aid_of(k);
      std::set<std::string> names;
      for (int j = 0; j < n_attr; ++j) names.insert(attr_name(j));
      baseline::LewkoAuthorityKeys auth =
          baseline::lewko_authority_setup(*w->grp, aid, names, rng);
      for (const std::string& name : names) {
        const auto pk = baseline::lewko_attribute_pk(*w->grp, auth, name);
        w->pks.emplace(pk.attr.qualified(), pk);
      }
      baseline::lewko_keygen(*w->grp, auth, "user", names, &w->user_key);
      w->authorities.emplace(aid, std::move(auth));
    }
    w->policy = full_and_policy(n_auth, n_attr);
    w->message = w->grp->gt_random(rng);
    w->ct = baseline::lewko_encrypt(*w->grp, w->message, w->policy, w->pks, rng);
    return w;
  }
};

/// One (n_auth, n_attr) sweep point for the fig3/fig4 JSON emission:
/// wall time plus engine op-counter deltas for a single encrypt and
/// decrypt of each scheme.
struct FigPoint {
  double ours_encrypt_ms = 0, ours_decrypt_ms = 0;
  double lewko_encrypt_ms = 0, lewko_decrypt_ms = 0;
  engine::EngineStats ours_encrypt_ops, ours_decrypt_ops;
  engine::EngineStats lewko_encrypt_ops, lewko_decrypt_ops;
};

inline FigPoint measure_fig_point(int n_auth, int n_attr) {
  using Clock = std::chrono::steady_clock;
  const auto ms = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };
  FigPoint p;
  engine::CryptoEngine& eng = engine::CryptoEngine::for_group(*bench_group());
  {
    const OurWorld& w = OurWorld::get(n_auth, n_attr);
    crypto::Drbg rng(std::string_view("fig-json-ours"));
    engine::EngineStats s0 = eng.stats();
    auto t0 = Clock::now();
    const abe::EncryptionResult enc =
        abe::encrypt(*w.grp, w.mk, "json-ct", w.message, w.policy, w.apks, w.attr_pks, rng);
    auto t1 = Clock::now();
    p.ours_encrypt_ms = ms(t0, t1);
    p.ours_encrypt_ops = eng.stats() - s0;

    s0 = eng.stats();
    t0 = Clock::now();
    (void)abe::decrypt(*w.grp, enc.ct, w.user, w.user_keys);
    t1 = Clock::now();
    p.ours_decrypt_ms = ms(t0, t1);
    p.ours_decrypt_ops = eng.stats() - s0;
  }
  {
    const LewkoWorld& w = LewkoWorld::get(n_auth, n_attr);
    crypto::Drbg rng(std::string_view("fig-json-lewko"));
    engine::EngineStats s0 = eng.stats();
    auto t0 = Clock::now();
    const baseline::LewkoCiphertext ct =
        baseline::lewko_encrypt(*w.grp, w.message, w.policy, w.pks, rng);
    auto t1 = Clock::now();
    p.lewko_encrypt_ms = ms(t0, t1);
    p.lewko_encrypt_ops = eng.stats() - s0;

    s0 = eng.stats();
    t0 = Clock::now();
    (void)baseline::lewko_decrypt(*w.grp, ct, w.user_key);
    t1 = Clock::now();
    p.lewko_decrypt_ms = ms(t0, t1);
    p.lewko_decrypt_ops = eng.stats() - s0;
  }
  return p;
}

}  // namespace maabe::bench
