// Revocation cost benchmark + the paper's Eq. (2) ablation.
//
// Section V-C claims the server only re-encrypts the ciphertext
// components touched by the revoked authority (C and the C_i rows
// labeled by it), which "greatly improves the computation efficiency of
// attribute revocation". This bench quantifies that: for a ciphertext
// spanning n_A authorities, partial re-encryption does 1 pairing +
// n_k point additions, versus a full re-encrypt-from-scratch (decrypt
// prevention means the server CANNOT do that; the ablation instead
// re-runs owner-side encryption) costing l+1 exponentiations + shares.
//
// Also times the other protocol steps: ReKey (AA), key update (user),
// UpdateInfo generation (owner).
#include <benchmark/benchmark.h>

#include <chrono>

#include "abe/serial.h"
#include "bench_common.h"
#include "bench_json.h"
#include "cloud/cluster.h"
#include "cloud/meter.h"
#include "cloud/server.h"
#include "cloud/transport.h"

namespace maabe::bench {
namespace {

constexpr int kAttrsPerAuthority = 5;

struct RevocationFixture {
  const OurWorld* w;
  abe::AuthorityVersionKey old_vk, new_vk;
  abe::UpdateKey uk;
  std::map<std::string, abe::PublicAttributeKey> new_attr_pks;
  abe::UpdateInfo ui;

  static const RevocationFixture& get(int n_auth) {
    static std::map<int, std::unique_ptr<RevocationFixture>> cache;
    auto& slot = cache[n_auth];
    if (!slot) {
      slot = std::make_unique<RevocationFixture>();
      RevocationFixture& f = *slot;
      f.w = &OurWorld::get(n_auth, kAttrsPerAuthority);
      crypto::Drbg rng(std::string_view("revocation-bench"));
      f.old_vk = f.w->vks.at(aid_of(0));
      f.new_vk = abe::aa_rekey(*f.w->grp, f.old_vk, rng).new_vk;
      f.uk = abe::aa_make_update_key(*f.w->grp, f.old_vk, f.new_vk, f.w->sk_o);
      f.new_attr_pks = f.w->attr_pks;
      for (auto& [h, pk] : f.new_attr_pks) {
        if (pk.attr.aid == aid_of(0))
          pk = abe::apply_update_to_attribute_pk(*f.w->grp, pk, f.uk);
      }
      f.ui = abe::owner_update_info(*f.w->grp, f.w->mk, f.w->enc.record, f.w->enc.ct,
                                    f.w->attr_pks, f.new_attr_pks, aid_of(0));
    }
    return *slot;
  }
};

void BM_ReKey_AA(benchmark::State& state) {
  const RevocationFixture& f = RevocationFixture::get(static_cast<int>(state.range(0)));
  crypto::Drbg rng(std::string_view("rk"));
  for (auto _ : state) {
    const auto new_vk = abe::aa_rekey(*f.w->grp, f.old_vk, rng).new_vk;
    benchmark::DoNotOptimize(abe::aa_make_update_key(*f.w->grp, f.old_vk, new_vk, f.w->sk_o));
  }
}

void BM_KeyUpdate_User(benchmark::State& state) {
  const RevocationFixture& f = RevocationFixture::get(static_cast<int>(state.range(0)));
  const abe::UserSecretKey& sk = f.w->user_keys.at(aid_of(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(abe::apply_update_to_secret_key(*f.w->grp, sk, f.uk));
  }
}

void BM_UpdateInfo_Owner(benchmark::State& state) {
  const RevocationFixture& f = RevocationFixture::get(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(abe::owner_update_info(*f.w->grp, f.w->mk, f.w->enc.record,
                                                    f.w->enc.ct, f.w->attr_pks,
                                                    f.new_attr_pks, aid_of(0)));
  }
}

// The paper's proposal: server-side partial re-encryption (Eq. 2).
void BM_ReEncrypt_Partial_Server(benchmark::State& state) {
  const RevocationFixture& f = RevocationFixture::get(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    abe::Ciphertext ct = f.w->enc.ct;  // copy, then re-encrypt in place
    abe::reencrypt(*f.w->grp, &ct, f.uk, f.ui);
    benchmark::DoNotOptimize(ct);
  }
  state.counters["authorities"] = static_cast<double>(state.range(0));
}

// Ablation: full re-encryption from scratch (what a scheme without
// proxy re-encryption would force the OWNER to redo and re-upload).
void BM_ReEncrypt_Full_Owner(benchmark::State& state) {
  const RevocationFixture& f = RevocationFixture::get(static_cast<int>(state.range(0)));
  crypto::Drbg rng(std::string_view("full-reenc"));
  std::map<std::string, abe::AuthorityPublicKey> new_apks = f.w->apks;
  new_apks.at(aid_of(0)) =
      abe::apply_update_to_authority_pk(*f.w->grp, new_apks.at(aid_of(0)), f.uk);
  for (auto _ : state) {
    benchmark::DoNotOptimize(abe::encrypt(*f.w->grp, f.w->mk, "re", f.w->message,
                                          f.w->policy, new_apks, f.new_attr_pks, rng));
  }
  state.counters["authorities"] = static_cast<double>(state.range(0));
}

// A whole server-side revocation epoch over a populated sharded store:
// stage every affected slot (CryptoEngine fan-out), then commit under
// the shard write locks. Times the epoch only — the store is rebuilt at
// version 1 between iterations (an epoch is not idempotent: the strict
// version checks reject a second application).
void BM_ReEncrypt_Epoch_Server(benchmark::State& state) {
  const int n_files = static_cast<int>(state.range(0));
  const RevocationFixture& f = RevocationFixture::get(2);
  const pairing::Group& grp = *f.w->grp;
  crypto::Drbg rng(std::string_view("epoch-bench"));

  std::vector<cloud::StoredFile> files;
  std::vector<abe::UpdateInfo> infos;
  for (int i = 0; i < n_files; ++i) {
    const std::string file_id = "f" + std::to_string(i);
    const std::string ct_id = cloud::slot_ct_id(file_id, "key");
    abe::EncryptionResult enc = abe::encrypt(grp, f.w->mk, ct_id, f.w->message,
                                             f.w->policy, f.w->apks, f.w->attr_pks, rng);
    infos.push_back(abe::owner_update_info(grp, f.w->mk, enc.record, enc.ct,
                                           f.w->attr_pks, f.new_attr_pks, aid_of(0)));
    files.push_back({file_id, f.w->mk.owner_id, {{"key", std::move(enc.ct), Bytes{}}}});
  }

  uint64_t slots = 0;
  for (auto _ : state) {
    state.PauseTiming();
    cloud::CloudServer server(f.w->grp);
    for (const cloud::StoredFile& file : files) server.store(file);
    state.ResumeTiming();
    slots += server.reencrypt(f.uk, infos);
  }
  state.counters["files"] = static_cast<double>(n_files);
  state.counters["slots_per_epoch"] =
      static_cast<double>(slots) / static_cast<double>(state.iterations());
}

// The same epoch, but the {UK, UpdateInfo*} message reaches the server
// the way CloudSystem now sends it: serialized, framed, checksummed and
// delivered over a (fault-free) loopback transport, then deserialized
// server-side. The delta against BM_ReEncrypt_Epoch_Server is the full
// cost of byte-level transport on the revocation hot path; the counters
// report the wire framing overhead.
void BM_ReEncrypt_Epoch_Transport(benchmark::State& state) {
  const int n_files = static_cast<int>(state.range(0));
  const RevocationFixture& f = RevocationFixture::get(2);
  const pairing::Group& grp = *f.w->grp;
  crypto::Drbg rng(std::string_view("epoch-bench"));

  std::vector<cloud::StoredFile> files;
  std::vector<abe::UpdateInfo> infos;
  for (int i = 0; i < n_files; ++i) {
    const std::string file_id = "f" + std::to_string(i);
    const std::string ct_id = cloud::slot_ct_id(file_id, "key");
    abe::EncryptionResult enc = abe::encrypt(grp, f.w->mk, ct_id, f.w->message,
                                             f.w->policy, f.w->apks, f.w->attr_pks, rng);
    infos.push_back(abe::owner_update_info(grp, f.w->mk, enc.record, enc.ct,
                                           f.w->attr_pks, f.new_attr_pks, aid_of(0)));
    files.push_back({file_id, f.w->mk.owner_id, {{"key", std::move(enc.ct), Bytes{}}}});
  }

  cloud::LoopbackTransport transport;
  cloud::ReliableLink link(transport);
  uint64_t slots = 0;
  for (auto _ : state) {
    state.PauseTiming();
    cloud::CloudServer server(f.w->grp);
    for (const cloud::StoredFile& file : files) server.store(file);
    state.ResumeTiming();
    // Owner side: one epoch message, serialized once.
    Writer w;
    w.var_bytes(abe::serialize(grp, f.uk));
    w.u32(static_cast<uint32_t>(infos.size()));
    for (const abe::UpdateInfo& ui : infos) w.var_bytes(abe::serialize(grp, ui));
    // Wire + server side: frame, checksum, verify, parse, re-encrypt.
    link.send("owner:owner", "server", w.bytes(), [&](ByteView payload) {
      Reader r(payload);
      const abe::UpdateKey uk =
          abe::deserialize_update_key(grp, r.var_bytes(), abe::UkCheck::kCiphertextPath);
      std::vector<abe::UpdateInfo> delivered;
      const uint32_t n = r.u32();
      delivered.reserve(n);
      for (uint32_t i = 0; i < n; ++i)
        delivered.push_back(abe::deserialize_update_info(grp, r.var_bytes()));
      r.expect_done();
      slots += server.reencrypt(uk, delivered);
    });
  }
  const cloud::ChannelStats stats = transport.meter().stats("owner:owner", "server");
  state.counters["files"] = static_cast<double>(n_files);
  state.counters["slots_per_epoch"] =
      static_cast<double>(slots) / static_cast<double>(state.iterations());
  state.counters["payload_B_per_epoch"] =
      static_cast<double>(stats.payload_bytes) / static_cast<double>(state.iterations());
  state.counters["frame_overhead_pct"] =
      stats.payload_bytes == 0
          ? 0.0
          : 100.0 * static_cast<double>(stats.frame_bytes - stats.payload_bytes) /
                static_cast<double>(stats.payload_bytes);
}

// The transported epoch against a 3-node / R=2 cluster: every file is
// written through the consistent-hash ring (two replica copies) and the
// epoch runs as cluster-wide 2PC — stage on every node over the wire,
// commit everywhere once all ack. The delta against
// BM_ReEncrypt_Epoch_Transport prices replication + 2PC: roughly R x
// the re-encryption work plus the stage/commit round trips. bench-smoke
// keeps the single-pass version of this ratio within 2.5x (the
// cluster_epoch_efficiency floor in BENCH_revocation.json).
void BM_ReEncrypt_Epoch_Cluster(benchmark::State& state) {
  const int n_files = static_cast<int>(state.range(0));
  const RevocationFixture& f = RevocationFixture::get(2);
  const pairing::Group& grp = *f.w->grp;
  crypto::Drbg rng(std::string_view("epoch-bench"));

  std::vector<std::string> ids;
  std::vector<Bytes> wires;
  std::vector<abe::UpdateInfo> infos;
  for (int i = 0; i < n_files; ++i) {
    const std::string file_id = "f" + std::to_string(i);
    const std::string ct_id = cloud::slot_ct_id(file_id, "key");
    abe::EncryptionResult enc = abe::encrypt(grp, f.w->mk, ct_id, f.w->message,
                                             f.w->policy, f.w->apks, f.w->attr_pks, rng);
    infos.push_back(abe::owner_update_info(grp, f.w->mk, enc.record, enc.ct,
                                           f.w->attr_pks, f.new_attr_pks, aid_of(0)));
    const cloud::StoredFile file{file_id, f.w->mk.owner_id,
                                 {{"key", std::move(enc.ct), Bytes{}}}};
    ids.push_back(file_id);
    wires.push_back(cloud::serialize(grp, file));
  }

  cloud::ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.replication = 2;
  uint64_t slots = 0, repl_sent = 0, commits = 0, lag = 0;
  for (auto _ : state) {
    state.PauseTiming();
    cloud::LoopbackTransport transport;
    cloud::ReliableLink link(transport);
    cloud::DurableLink durable(link);
    cloud::Cluster cluster(f.w->grp, cfg, link, durable);
    for (int i = 0; i < n_files; ++i) {
      const std::string target = cluster.route_for(ids[i]);
      link.send("owner:owner", target, wires[i],
                [&](ByteView payload) { cluster.handle_store(target, payload); });
    }
    state.ResumeTiming();
    Writer w;
    w.var_bytes(abe::serialize(grp, f.uk));
    w.u32(static_cast<uint32_t>(infos.size()));
    for (const abe::UpdateInfo& ui : infos) w.var_bytes(abe::serialize(grp, ui));
    const std::string coord = cluster.coordinator();
    link.send("owner:owner", coord, w.bytes(),
              [&](ByteView payload) { cluster.handle_epoch(coord, payload); });
    state.PauseTiming();
    const cloud::ClusterStats cs = cluster.stats();
    slots += cluster.total_reencrypted_slots();
    repl_sent += cs.replication_ops_sent;
    commits += cs.epoch_commits;
    lag += durable.pending_count();
    state.ResumeTiming();
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["files"] = static_cast<double>(n_files);
  state.counters["nodes"] = static_cast<double>(cfg.nodes);
  state.counters["replication"] = static_cast<double>(cfg.replication);
  state.counters["slots_per_epoch"] = static_cast<double>(slots) / iters;
  state.counters["replication_ops_per_run"] = static_cast<double>(repl_sent) / iters;
  state.counters["epoch_commits_per_run"] = static_cast<double>(commits) / iters;
  state.counters["replication_lag_after_epoch"] = static_cast<double>(lag) / iters;
}

void sweep(benchmark::internal::Benchmark* b) {
  for (int n : {2, 5, 10}) b->Arg(n);
  b->Unit(benchmark::kMillisecond)->MinTime(0.05);
}

BENCHMARK(BM_ReKey_AA)->Apply(sweep);
BENCHMARK(BM_KeyUpdate_User)->Apply(sweep);
BENCHMARK(BM_UpdateInfo_Owner)->Apply(sweep);
BENCHMARK(BM_ReEncrypt_Partial_Server)->Apply(sweep);
BENCHMARK(BM_ReEncrypt_Full_Owner)->Apply(sweep);
BENCHMARK(BM_ReEncrypt_Epoch_Server)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_ReEncrypt_Epoch_Transport)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_ReEncrypt_Epoch_Cluster)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);

// One instrumented pass over the whole protocol, phase by phase, with
// per-op timing on: BENCH_revocation.json gets a per-phase wall-ms +
// engine-op breakdown (OpMeter deltas) plus the registry snapshot, so
// a sweep diff shows *where* a regression landed, not just that the
// epoch got slower.
void emit_phase_breakdown() {
  telemetry::set_op_timing(true);
  const RevocationFixture& f = RevocationFixture::get(2);
  const pairing::Group& grp = *f.w->grp;
  engine::CryptoEngine& eng = engine::CryptoEngine::for_group(grp);
  crypto::Drbg rng(std::string_view("phase-breakdown"));
  cloud::OpMeter meter;
  Json phase_wall_ms;
  const auto timed = [&](const char* phase, const auto& body) {
    cloud::OpMeter::Scope scope(meter, eng, phase);
    const auto start = std::chrono::steady_clock::now();
    body();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    phase_wall_ms.put(phase, ms);
    return ms;
  };

  timed("rekey_aa", [&] {
    const auto new_vk = abe::aa_rekey(grp, f.old_vk, rng).new_vk;
    benchmark::DoNotOptimize(abe::aa_make_update_key(grp, f.old_vk, new_vk, f.w->sk_o));
  });
  timed("key_update_user", [&] {
    benchmark::DoNotOptimize(apply_update_to_secret_key(
        grp, f.w->user_keys.at(aid_of(0)), f.uk));
  });
  timed("update_info_owner", [&] {
    benchmark::DoNotOptimize(abe::owner_update_info(grp, f.w->mk, f.w->enc.record,
                                                    f.w->enc.ct, f.w->attr_pks,
                                                    f.new_attr_pks, aid_of(0)));
  });

  // Transported epoch over 4 files, the full serialized round trip.
  constexpr int kFiles = 4;
  std::vector<cloud::StoredFile> files;
  std::vector<abe::UpdateInfo> infos;
  for (int i = 0; i < kFiles; ++i) {
    const std::string file_id = "f" + std::to_string(i);
    const std::string ct_id = cloud::slot_ct_id(file_id, "key");
    abe::EncryptionResult enc = abe::encrypt(grp, f.w->mk, ct_id, f.w->message,
                                             f.w->policy, f.w->apks, f.w->attr_pks, rng);
    infos.push_back(abe::owner_update_info(grp, f.w->mk, enc.record, enc.ct,
                                           f.w->attr_pks, f.new_attr_pks, aid_of(0)));
    files.push_back({file_id, f.w->mk.owner_id, {{"key", std::move(enc.ct), Bytes{}}}});
  }
  // The epoch message, serialized once and replayed per measurement rep.
  Bytes epoch_msg;
  {
    Writer w;
    w.var_bytes(abe::serialize(grp, f.uk));
    w.u32(static_cast<uint32_t>(infos.size()));
    for (const abe::UpdateInfo& ui : infos) w.var_bytes(abe::serialize(grp, ui));
    epoch_msg = w.take();
  }

  // An epoch is not idempotent, so each measurement rep rebuilds the
  // store at version 1. One warmup rep plus min-of-kEpochReps: the two
  // epoch walls feed guarded ratios (bench-smoke), and a single cold
  // pass is too noisy for that.
  constexpr int kEpochReps = 3;
  uint64_t slots = 0;
  double transported_ms = 0.0;
  cloud::ChannelStats stats;
  {
    cloud::OpMeter::Scope scope(meter, eng, "epoch_transport");
    for (int rep = -1; rep < kEpochReps; ++rep) {
      cloud::LoopbackTransport transport;
      cloud::ReliableLink link(transport);
      cloud::CloudServer server(f.w->grp);
      for (const cloud::StoredFile& file : files) server.store(file);
      const auto start = std::chrono::steady_clock::now();
      uint64_t rep_slots = 0;
      link.send("owner:owner", "server", epoch_msg, [&](ByteView payload) {
        Reader r(payload);
        const abe::UpdateKey uk = abe::deserialize_update_key(
            grp, r.var_bytes(), abe::UkCheck::kCiphertextPath);
        std::vector<abe::UpdateInfo> delivered;
        const uint32_t n = r.u32();
        delivered.reserve(n);
        for (uint32_t i = 0; i < n; ++i)
          delivered.push_back(abe::deserialize_update_info(grp, r.var_bytes()));
        r.expect_done();
        rep_slots = server.reencrypt(uk, delivered);
      });
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      if (rep < 0) continue;  // warmup
      slots = rep_slots;
      stats = transport.meter().stats("owner:owner", "server");
      transported_ms = rep == 0 ? ms : std::min(transported_ms, ms);
    }
    phase_wall_ms.put("epoch_transport", transported_ms);
  }

  // The same files and epoch against a 3-node / R=2 cluster: ring
  // writes put two replica copies of each file on the wire, the epoch
  // runs as 2PC. cluster_epoch_efficiency = transported / cluster wall
  // time; bench-smoke floors it at 0.4, i.e. the replicated epoch must
  // stay within 2.5x of the single-node transported epoch.
  cloud::ClusterConfig ccfg;
  ccfg.nodes = 3;
  ccfg.replication = 2;
  std::vector<Bytes> store_wires;
  store_wires.reserve(files.size());
  for (const cloud::StoredFile& file : files)
    store_wires.push_back(cloud::serialize(grp, file));
  double cluster_ms = 0.0;
  Json cluster_json;
  {
    cloud::OpMeter::Scope scope(meter, eng, "epoch_cluster");
    for (int rep = -1; rep < kEpochReps; ++rep) {
      cloud::LoopbackTransport cluster_transport;
      cloud::ReliableLink cluster_link(cluster_transport);
      cloud::DurableLink cluster_durable(cluster_link);
      cloud::Cluster cluster(f.w->grp, ccfg, cluster_link, cluster_durable);
      for (size_t i = 0; i < files.size(); ++i) {
        const std::string target = cluster.route_for(files[i].file_id);
        cluster_link.send(
            "owner:owner", target, store_wires[i],
            [&](ByteView payload) { cluster.handle_store(target, payload); });
      }
      const auto start = std::chrono::steady_clock::now();
      const std::string coord = cluster.coordinator();
      cluster_link.send("owner:owner", coord, epoch_msg, [&](ByteView payload) {
        cluster.handle_epoch(coord, payload);
      });
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      if (rep < 0) continue;  // warmup
      cluster_ms = rep == 0 ? ms : std::min(cluster_ms, ms);
      const cloud::ClusterStats cstats = cluster.stats();
      cluster_json = Json();
      cluster_json.put("nodes", static_cast<uint64_t>(cstats.nodes))
          .put("alive", static_cast<uint64_t>(cstats.alive))
          .put("replication", static_cast<uint64_t>(cstats.replication))
          .put("replication_ops_sent", cstats.replication_ops_sent)
          .put("replication_ops_applied", cstats.replication_ops_applied)
          .put("replication_lag_after_epoch",
               static_cast<uint64_t>(cluster_durable.pending_count()))
          .put("epoch_commits", cstats.epoch_commits)
          .put("epoch_aborts", cstats.epoch_aborts)
          .put("epoch_slots", cluster.total_reencrypted_slots());
    }
    phase_wall_ms.put("epoch_cluster", cluster_ms);
  }

  Json wire;
  wire.put("payload_bytes", stats.payload_bytes)
      .put("frame_bytes", stats.frame_bytes)
      .put("frames", stats.frames)
      .put("bytes_delivered", stats.bytes_delivered)
      .put("bytes_accepted", stats.bytes_accepted);
  Json root;
  root.put("bench", "revocation")
      .put("group", bench_group_label())
      .put("attrs_per_authority", kAttrsPerAuthority)
      .put("epoch_files", kFiles)
      .put("epoch_slots", slots);
  // Guarded ratio: only emitted when both epoch walls were actually
  // measured. A defaulted value here would let bench_guard floor-check
  // a number no run produced; absent, the guard exits 2 and the smoke
  // fails loudly instead.
  if (transported_ms > 0.0 && cluster_ms > 0.0)
    root.put("cluster_epoch_efficiency", transported_ms / cluster_ms);
  root.put("phase_wall_ms", phase_wall_ms)
      .put("phases", phases_json(meter.phases()))
      .put("epoch_wire", wire)
      .put("cluster", cluster_json)
      .put("telemetry", snapshot_json(telemetry::MetricsRegistry::global().collect()));
  write_bench_json("revocation", root);
}

}  // namespace
}  // namespace maabe::bench

int main(int argc, char** argv) {
  std::printf("Revocation cost + partial-vs-full re-encryption ablation (Eq. 2)\n");
  std::printf("group: %s, %d attrs/authority, revocation at one authority\n\n",
              maabe::bench::bench_group_label().c_str(),
              maabe::bench::kAttrsPerAuthority);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  maabe::bench::emit_phase_breakdown();
  return 0;
}
