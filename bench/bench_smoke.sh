#!/bin/sh
# Perf smoke for ctest (label: perf). Runs the guarded benches on the
# small test curve with tiny iteration counts and checks the headline
# numbers against the committed baselines in bench/baselines/.
#
# Which binary populates which guarded field is explicit below — every
# guard names the binary that must have emitted its JSON key on THIS
# run. bench_guard exits 2 when a key is absent, so a bench that stops
# emitting a guarded field fails the smoke loudly instead of the guard
# silently floor-checking a defaulted value.
#
# Binary -> guarded fields:
#   pairing_micro  -> BENCH_pairing_micro.json kernel_speedup
#       shared-final-exponentiation kernel vs the legacy
#       pair-then-multiply fold. A same-process ratio: host speed
#       cancels, guarded by an absolute floor.
#   revocation     -> BENCH_revocation.json epoch_transport,
#                     cluster_epoch_efficiency
#       epoch_transport is a wall time, guarded as a relative
#       regression against the committed baseline.
#       cluster_epoch_efficiency (single-node transported epoch wall /
#       3-node R=2 cluster epoch wall) is a same-process ratio, guarded
#       by an absolute floor; the bench omits the key entirely when
#       either wall was not measured.
#   workload       -> BENCH_workload.json download_p99_ms, achieved_qps,
#                     overload_rejected, overload_bounded,
#                     recovery_bytes_transferred, recovery_bounded,
#                     recovery_staged_open_zero, slo_download_p99_met
#       The steady mixed-Zipf curve against a 3-node cluster:
#       download tail latency guarded against the baseline (generous —
#       it is a wall time on a shared host), throughput floored at a
#       fraction of the baseline. The overload scenario must show
#       bounded queues: at least one typed kOverloaded rejection and a
#       max queue depth within the configured cap. The recovery
#       scenario (kill -> traffic -> rejoin) must converge through the
#       recovery protocol: some bytes moved, strictly less than a full
#       snapshot of the rejoined node (recovery_bounded folds the
#       <0.9x-snapshot ratio check), and zero epochs left staged-open.
#       The SLO plane scores the steady curve against generous rolling
#       objectives (download_p99_ms=250 et al.); a fault-free run must
#       stay inside every budget, so slo_download_p99_met is floored
#       at 1.
#
# Usage: bench_smoke.sh <pairing_micro> <revocation> <workload> \
#                       <bench_guard> <baseline_dir>
set -e
PAIRING_MICRO=${1:?pairing_micro binary}
REVOCATION=${2:?revocation binary}
WORKLOAD=${3:?workload binary}
GUARD=${4:?bench_guard binary}
BASELINES=${5:?baseline dir}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

export MAABE_BENCH_SMALL=1

# Cheap google-benchmark filters; the JSON reports each bench always
# emits (engine_batch_report / emit_phase_breakdown) are the real work.
# The workload bench has no google-benchmark harness: its scenario loop
# is the run.
"$PAIRING_MICRO" --benchmark_filter='BM_FinalExp$'
"$REVOCATION" --benchmark_filter='BM_KeyUpdate_User/2$'
"$WORKLOAD"

# pairing_micro guards
"$GUARD" floor BENCH_pairing_micro.json kernel_speedup 1.3

# revocation guards
"$GUARD" regress BENCH_revocation.json "$BASELINES/BENCH_revocation.json" \
  epoch_transport 25
"$GUARD" floor BENCH_revocation.json cluster_epoch_efficiency 0.4

# workload guards
"$GUARD" regress BENCH_workload.json "$BASELINES/BENCH_workload.json" \
  download_p99_ms 150
"$GUARD" floor_ratio BENCH_workload.json "$BASELINES/BENCH_workload.json" \
  achieved_qps 0.3
"$GUARD" floor BENCH_workload.json overload_rejected 1
"$GUARD" floor BENCH_workload.json overload_bounded 1
"$GUARD" floor BENCH_workload.json recovery_bytes_transferred 1
"$GUARD" floor BENCH_workload.json recovery_bounded 1
"$GUARD" floor BENCH_workload.json recovery_staged_open_zero 1
"$GUARD" floor BENCH_workload.json slo_download_p99_met 1

echo "bench-smoke: OK"
