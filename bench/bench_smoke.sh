#!/bin/sh
# Perf smoke for ctest (label: perf). Runs the pairing microbench and
# the re-encryption epoch bench on the small test curve with tiny
# iteration counts, then checks the two headline numbers against the
# committed baselines in bench/baselines/:
#
#   * BENCH_pairing_micro.json kernel_speedup must stay >= the floor —
#     the shared-final-exponentiation kernel must beat the legacy
#     pair-then-multiply fold regardless of host speed (it is a ratio,
#     so load noise largely cancels).
#   * BENCH_revocation.json's fault-free epoch_transport wall time must
#     not regress more than 25% against the committed baseline.
#   * BENCH_revocation.json cluster_epoch_efficiency (single-node
#     transported epoch wall time / 3-node R=2 cluster epoch wall time)
#     must stay >= 0.4 — the replicated 2PC epoch within 2.5x of the
#     single-node one. A ratio from the same process, so host speed
#     cancels.
#
# Usage: bench_smoke.sh <pairing_micro> <revocation> <bench_guard> <baseline_dir>
set -e
PAIRING_MICRO=${1:?pairing_micro binary}
REVOCATION=${2:?revocation binary}
GUARD=${3:?bench_guard binary}
BASELINES=${4:?baseline dir}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

export MAABE_BENCH_SMALL=1

# Cheap google-benchmark filters; the JSON reports each bench always
# emits (engine_batch_report / emit_phase_breakdown) are the real work.
"$PAIRING_MICRO" --benchmark_filter='BM_FinalExp$'
"$REVOCATION" --benchmark_filter='BM_KeyUpdate_User/2$'

"$GUARD" floor BENCH_pairing_micro.json kernel_speedup 1.3
"$GUARD" regress BENCH_revocation.json "$BASELINES/BENCH_revocation.json" \
  epoch_transport 25
"$GUARD" floor BENCH_revocation.json cluster_epoch_efficiency 0.4

echo "bench-smoke: OK"
