// Ablation: direct (Vandermonde) threshold compilation vs OR-of-ANDs
// expansion (DESIGN.md §7).
//
// The paper supports "any LSSS access structure"; k-of-n gates are the
// stress case. Expansion produces C(n,k)*k rows (and repeats
// attributes); the direct construction produces n rows and k-1 extra
// columns. This bench quantifies the matrix blow-up and its effect on
// encryption/decryption cost.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace maabe::bench {
namespace {

lsss::PolicyPtr threshold_policy(int k, int n) {
  std::vector<lsss::PolicyPtr> kids;
  kids.reserve(n);
  for (int i = 0; i < n; ++i)
    kids.push_back(lsss::PolicyNode::attr(attr_name(i), aid_of(0)));
  return lsss::PolicyNode::threshold(k, std::move(kids));
}

// World with a single authority managing n attributes.
struct ThresholdWorld {
  const OurWorld* base;
  lsss::LsssMatrix direct;
  lsss::LsssMatrix expanded;
  abe::Ciphertext ct_direct, ct_expanded;

  static const ThresholdWorld& get(int k, int n) {
    static std::map<std::pair<int, int>, std::unique_ptr<ThresholdWorld>> cache;
    auto& slot = cache[{k, n}];
    if (!slot) {
      slot = std::make_unique<ThresholdWorld>();
      slot->base = &OurWorld::get(1, n);
      const auto policy = threshold_policy(k, n);
      slot->direct = lsss::LsssMatrix::from_policy(policy);
      slot->expanded =
          lsss::LsssMatrix::from_policy(policy, true, lsss::ThresholdMode::kExpand);
      crypto::Drbg rng(std::string_view("threshold-world"));
      const OurWorld& w = *slot->base;
      slot->ct_direct = abe::encrypt(*w.grp, w.mk, "d", w.message, slot->direct,
                                     w.apks, w.attr_pks, rng)
                            .ct;
      slot->ct_expanded = abe::encrypt(*w.grp, w.mk, "e", w.message, slot->expanded,
                                       w.apks, w.attr_pks, rng)
                              .ct;
    }
    return *slot;
  }
};

void BM_Threshold_Encrypt_Direct(benchmark::State& state) {
  const ThresholdWorld& t = ThresholdWorld::get(static_cast<int>(state.range(0)),
                                                static_cast<int>(state.range(1)));
  const OurWorld& w = *t.base;
  crypto::Drbg rng(std::string_view("ta"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        abe::encrypt(*w.grp, w.mk, "x", w.message, t.direct, w.apks, w.attr_pks, rng));
  }
  state.counters["rows"] = t.direct.rows();
  state.counters["cols"] = t.direct.cols();
}

void BM_Threshold_Encrypt_Expanded(benchmark::State& state) {
  const ThresholdWorld& t = ThresholdWorld::get(static_cast<int>(state.range(0)),
                                                static_cast<int>(state.range(1)));
  const OurWorld& w = *t.base;
  crypto::Drbg rng(std::string_view("tb"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        abe::encrypt(*w.grp, w.mk, "x", w.message, t.expanded, w.apks, w.attr_pks, rng));
  }
  state.counters["rows"] = t.expanded.rows();
  state.counters["cols"] = t.expanded.cols();
}

void BM_Threshold_Decrypt_Direct(benchmark::State& state) {
  const ThresholdWorld& t = ThresholdWorld::get(static_cast<int>(state.range(0)),
                                                static_cast<int>(state.range(1)));
  const OurWorld& w = *t.base;
  for (auto _ : state) {
    benchmark::DoNotOptimize(abe::decrypt(*w.grp, t.ct_direct, w.user, w.user_keys));
  }
}

void BM_Threshold_Decrypt_Expanded(benchmark::State& state) {
  const ThresholdWorld& t = ThresholdWorld::get(static_cast<int>(state.range(0)),
                                                static_cast<int>(state.range(1)));
  const OurWorld& w = *t.base;
  for (auto _ : state) {
    benchmark::DoNotOptimize(abe::decrypt(*w.grp, t.ct_expanded, w.user, w.user_keys));
  }
}

void sweep(benchmark::internal::Benchmark* b) {
  b->Args({2, 4})->Args({3, 6})->Args({4, 8});
  b->Unit(benchmark::kMillisecond)->MinTime(0.05);
}

BENCHMARK(BM_Threshold_Encrypt_Direct)->Apply(sweep);
BENCHMARK(BM_Threshold_Encrypt_Expanded)->Apply(sweep);
BENCHMARK(BM_Threshold_Decrypt_Direct)->Apply(sweep);
BENCHMARK(BM_Threshold_Decrypt_Expanded)->Apply(sweep);

}  // namespace
}  // namespace maabe::bench

int main(int argc, char** argv) {
  std::printf("Threshold-gate compilation ablation: direct Vandermonde vs\n"
              "OR-of-ANDs expansion, k-of-n over one authority\n");
  std::printf("group: %s\n\n", maabe::bench::bench_group_label().c_str());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
