// Table II reproduction: size of each scheme component, ours vs
// Lewko-Waters, measured in real serialized bytes.
//
// Paper formulas (|p| = exponent, |G| = point, |GT| = target element):
//                     Ours                       Lewko
//   Authority key     |p|                        2*n_k*|p|
//   Public key        sum_k (n_k|G| + |GT|)      sum_k n_k(|GT| + |G|)
//   Secret key        |G| + sum_k n_{k,uid}|G|   sum_k n_{k,uid}|G|
//   Ciphertext        |GT| + (l+1)|G|            (l+1)|GT| + 2l|G|
//
// The harness prints measured bytes next to the formula prediction; both
// must agree (the measurement counts only group material, as the paper
// does — framing/ids excluded).
#include <cstdio>

#include "abe/serial.h"
#include "baseline/lewko_serial.h"
#include "bench_common.h"

using namespace maabe;
using namespace maabe::bench;

namespace {

struct Row {
  size_t ours_measured, ours_formula, lewko_measured, lewko_formula;
};

void print_row(const char* name, const Row& r) {
  std::printf("%-15s %10zu %10zu %12zu %12zu   %s\n", name, r.ours_measured,
              r.ours_formula, r.lewko_measured, r.lewko_formula,
              (r.ours_measured == r.ours_formula && r.lewko_measured == r.lewko_formula)
                  ? "ok"
                  : "MISMATCH");
}

}  // namespace

int main() {
  auto grp = bench_group();
  const size_t P = grp->zr_size(), G = grp->g1_size(), GT_ = grp->gt_size();
  std::printf("Table II reproduction: component sizes (bytes)\n");
  std::printf("group: %s  |p|=%zu |G|=%zu |GT|=%zu\n\n", bench_group_label().c_str(),
              P, G, GT_);

  for (const auto [n_auth, n_attr] : {std::pair{2, 5}, {5, 5}, {10, 5}}) {
    const OurWorld& ow = OurWorld::get(n_auth, n_attr);
    const LewkoWorld& lw = LewkoWorld::get(n_auth, n_attr);
    const size_t l = static_cast<size_t>(n_auth) * n_attr;

    std::printf("n_A = %d authorities, n_k = %d attrs each (l = %zu)\n", n_auth,
                n_attr, l);
    std::printf("%-15s %10s %10s %12s %12s\n", "Component", "ours", "formula",
                "lewko", "formula");

    // Authority key: ours = one version key; lewko = (alpha, y) per attr.
    Row auth_key;
    auth_key.ours_measured = ow.vks.begin()->second.alpha.to_bytes().size();
    auth_key.ours_formula = P;
    auth_key.lewko_measured =
        baseline::lewko_authority_storage_bytes(*grp, lw.authorities.begin()->second);
    auth_key.lewko_formula = 2 * n_attr * P;
    print_row("Authority key", auth_key);

    // Public key (all authorities' published material, group part only).
    Row pub;
    pub.ours_measured = 0;
    for (const auto& [aid, apk] : ow.apks) pub.ours_measured += apk.e_gg_alpha.to_bytes().size();
    for (const auto& [h, pk] : ow.attr_pks) pub.ours_measured += pk.key.to_bytes().size();
    pub.ours_formula = n_auth * (n_attr * G + GT_);
    pub.lewko_measured = 0;
    for (const auto& [h, pk] : lw.pks)
      pub.lewko_measured += pk.e_gg_alpha.to_bytes().size() + pk.g_y.to_bytes().size();
    pub.lewko_formula = n_auth * n_attr * (GT_ + G);
    print_row("Public key", pub);

    // Secret key (user holds all attributes).
    Row sk;
    sk.ours_measured = 0;
    for (const auto& [aid, usk] : ow.user_keys) {
      sk.ours_measured += usk.k.to_bytes().size();
      for (const auto& [h, kx] : usk.kx) sk.ours_measured += kx.to_bytes().size();
    }
    // Paper counts |G| + sum n_k,uid |G| with ONE K; our faithful
    // construction issues one K per authority (keys are per-authority),
    // so the formula instantiates as n_A*|G| + l*|G|.
    sk.ours_formula = n_auth * G + l * G;
    sk.lewko_measured = 0;
    for (const auto& [h, kx] : lw.user_key.k) sk.lewko_measured += kx.to_bytes().size();
    sk.lewko_formula = l * G;
    print_row("Secret key", sk);

    // Ciphertext (group material).
    Row ct;
    ct.ours_measured = abe::ciphertext_group_material_bytes(*grp, ow.enc.ct);
    ct.ours_formula = GT_ + (l + 1) * G;
    ct.lewko_measured = baseline::lewko_ciphertext_group_material_bytes(*grp, lw.ct);
    ct.lewko_formula = (l + 1) * GT_ + 2 * l * G;
    print_row("Ciphertext", ct);

    std::printf("  ciphertext ratio lewko/ours = %.2fx\n\n",
                double(ct.lewko_measured) / double(ct.ours_measured));
  }

  std::printf("note on 'Secret key': the paper's Table II writes |G| + sum n_k|G|\n"
              "for our scheme assuming a single tied K component; the construction\n"
              "in Section V-B issues K per authority, which is what we measure\n"
              "(n_A*|G| + l*|G|). Shapes and the ciphertext advantage match.\n");
  return 0;
}
