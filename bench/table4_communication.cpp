// Table IV reproduction: communication cost on each channel.
//
// Paper formulas:
//                   Ours                          Lewko
//   AA <-> User     |G| + sum_k n_{k,uid}|G|      sum_k n_{k,uid}|G|
//   AA <-> Owner    sum_k (n_k|G| + |GT|)         sum_k n_k(|GT| + |G|)
//   Server <-> User |GT| + (l+1)|G|               (l+1)|GT| + 2l|G|
//   Server <-> Owner|GT| + (l+1)|G|               (l+1)|GT| + 2l|G|
//
// Ours is measured from the ChannelMeter of a real CloudSystem run
// (serialized wire bytes, so framing/ids are included on top of the
// paper's group-material formulas); Lewko channels are computed from the
// baseline's serialized artefacts.
#include <cstdio>

#include "abe/serial.h"
#include "baseline/lewko_serial.h"
#include "bench_common.h"
#include "cloud/system.h"

using namespace maabe;
using namespace maabe::bench;

int main() {
  auto grp = bench_group();
  std::printf("Table IV reproduction: communication cost per channel (bytes)\n");
  std::printf("group: %s\n", bench_group_label().c_str());
  std::printf("(ours = metered wire bytes incl. framing; formula = group material)\n\n");

  for (const auto [n_auth, n_attr] : {std::pair{2, 5}, {5, 5}, {10, 5}}) {
    const size_t l = static_cast<size_t>(n_auth) * n_attr;
    const size_t P = grp->zr_size(), G = grp->g1_size(), GT_ = grp->gt_size();
    (void)P;

    cloud::CloudSystem sys(grp, "table4");
    std::string policy;
    for (int k = 0; k < n_auth; ++k) {
      std::set<std::string> names;
      for (int j = 0; j < n_attr; ++j) names.insert(attr_name(j));
      sys.add_authority(aid_of(k), names);
      for (int j = 0; j < n_attr; ++j) {
        if (!policy.empty()) policy += " AND ";
        policy += attr_name(j) + "@" + aid_of(k);
      }
    }
    sys.add_owner("owner");
    sys.add_user("user");
    for (int k = 0; k < n_auth; ++k) {
      sys.publish_authority_keys(aid_of(k), "owner");
      std::set<std::string> names;
      for (int j = 0; j < n_attr; ++j) names.insert(attr_name(j));
      sys.assign_attributes(aid_of(k), "user", names);
      sys.issue_user_key(aid_of(k), "user", "owner");
    }
    sys.upload("owner", "file", {{"data", bytes_of("payload-bytes"), policy}});
    sys.download("user", "file");

    size_t aa_user = 0, aa_owner = 0;
    for (int k = 0; k < n_auth; ++k) {
      aa_user += sys.meter().between("aa:" + aid_of(k), "user:user");
      aa_owner += sys.meter().between("aa:" + aid_of(k), "owner:owner");
    }
    const size_t server_user = sys.meter().between("server", "user:user");
    const size_t server_owner = sys.meter().between("server", "owner:owner");

    // Lewko equivalents from serialized artefacts.
    const LewkoWorld& lw = LewkoWorld::get(n_auth, n_attr);
    const size_t lw_aa_user = serialize(*grp, lw.user_key).size();
    size_t lw_aa_owner = 0;
    for (const auto& [h, pk] : lw.pks) lw_aa_owner += serialize(*grp, pk).size();
    const size_t lw_server = serialize(*grp, lw.ct).size();

    std::printf("n_A = %d, n_k = %d (l = %zu)\n", n_auth, n_attr, l);
    std::printf("  %-16s %12s %14s %12s %14s\n", "Channel", "ours", "ours-formula",
                "lewko", "lewko-formula");
    std::printf("  %-16s %12zu %14zu %12zu %14zu\n", "AA<->User", aa_user,
                G + l * G + n_auth * G - G,  // n_A K components + l K_x
                lw_aa_user, l * G);
    std::printf("  %-16s %12zu %14zu %12zu %14zu\n", "AA<->Owner", aa_owner,
                n_auth * (n_attr * G + GT_), lw_aa_owner, l * (GT_ + G));
    std::printf("  %-16s %12zu %14zu %12zu %14zu\n", "Server<->User", server_user,
                GT_ + (l + 1) * G, lw_server, (l + 1) * GT_ + 2 * l * G);
    std::printf("  %-16s %12zu %14zu %12zu %14zu\n\n", "Server<->Owner", server_owner,
                GT_ + (l + 1) * G, lw_server, (l + 1) * GT_ + 2 * l * G);
  }
  std::printf("shape check: ciphertext-bearing channels (server rows) are several\n"
              "times smaller in our scheme; AA<->Owner is comparable (|GT| vs n_k|GT|\n"
              "per authority); AA<->User is nearly identical (one extra K per AA).\n");
  return 0;
}
