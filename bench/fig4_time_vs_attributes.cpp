// Figure 4 (a)+(b): encryption and decryption time vs the number of
// attributes per authority, with 5 authorities — ours vs Lewko-Waters.
//
// Paper shape: linear growth in n_k for both schemes; ours encrypts
// faster, decrypts slightly slower.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "bench_json.h"

namespace maabe::bench {
namespace {

constexpr int kAuthorities = 5;

void BM_Fig4a_Encrypt_Ours(benchmark::State& state) {
  const int n_attr = static_cast<int>(state.range(0));
  const OurWorld& w = OurWorld::get(kAuthorities, n_attr);
  crypto::Drbg rng(std::string_view("fig4a-ours"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(abe::encrypt(*w.grp, w.mk, "ct", w.message, w.policy,
                                          w.apks, w.attr_pks, rng));
  }
  state.counters["attrs_per_auth"] = n_attr;
}

void BM_Fig4a_Encrypt_Lewko(benchmark::State& state) {
  const int n_attr = static_cast<int>(state.range(0));
  const LewkoWorld& w = LewkoWorld::get(kAuthorities, n_attr);
  crypto::Drbg rng(std::string_view("fig4a-lewko"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baseline::lewko_encrypt(*w.grp, w.message, w.policy, w.pks, rng));
  }
  state.counters["attrs_per_auth"] = n_attr;
}

void BM_Fig4b_Decrypt_Ours(benchmark::State& state) {
  const int n_attr = static_cast<int>(state.range(0));
  const OurWorld& w = OurWorld::get(kAuthorities, n_attr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(abe::decrypt(*w.grp, w.enc.ct, w.user, w.user_keys));
  }
  state.counters["attrs_per_auth"] = n_attr;
}

void BM_Fig4b_Decrypt_Lewko(benchmark::State& state) {
  const int n_attr = static_cast<int>(state.range(0));
  const LewkoWorld& w = LewkoWorld::get(kAuthorities, n_attr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::lewko_decrypt(*w.grp, w.ct, w.user_key));
  }
  state.counters["attrs_per_auth"] = n_attr;
}

void sweep(benchmark::internal::Benchmark* b) {
  for (int n = 2; n <= 10; n += 2) b->Arg(n);
  b->Unit(benchmark::kMillisecond)->MinTime(0.05);
}

BENCHMARK(BM_Fig4a_Encrypt_Ours)->Apply(sweep);
BENCHMARK(BM_Fig4a_Encrypt_Lewko)->Apply(sweep);
BENCHMARK(BM_Fig4b_Decrypt_Ours)->Apply(sweep);
BENCHMARK(BM_Fig4b_Decrypt_Lewko)->Apply(sweep);

void emit_json() {
  std::vector<Json> points;
  for (int n = 2; n <= 10; n += 2) {
    const FigPoint p = measure_fig_point(kAuthorities, n);
    Json j;
    j.put("attrs_per_auth", n)
        .put("ours_encrypt_ms", p.ours_encrypt_ms)
        .put("ours_decrypt_ms", p.ours_decrypt_ms)
        .put("lewko_encrypt_ms", p.lewko_encrypt_ms)
        .put("lewko_decrypt_ms", p.lewko_decrypt_ms)
        .put("ours_encrypt_ops", stats_json(p.ours_encrypt_ops))
        .put("ours_decrypt_ops", stats_json(p.ours_decrypt_ops))
        .put("lewko_encrypt_ops", stats_json(p.lewko_encrypt_ops))
        .put("lewko_decrypt_ops", stats_json(p.lewko_decrypt_ops));
    points.push_back(j);
  }
  Json root;
  root.put("bench", "fig4")
      .put("group", bench_group_label())
      .put("authorities", kAuthorities)
      .put("engine_threads",
           engine::CryptoEngine::for_group(*bench_group()).threads())
      .put("points", points);
  write_bench_json("fig4", root);
}

}  // namespace
}  // namespace maabe::bench

int main(int argc, char** argv) {
  std::printf("Fig. 4 reproduction: time vs attrs/authority (%d authorities)\n",
              maabe::bench::kAuthorities);
  std::printf("group: %s\nengine threads: %d\n\n",
              maabe::bench::bench_group_label().c_str(),
              maabe::engine::CryptoEngine::default_threads());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  maabe::bench::emit_json();
  return 0;
}
