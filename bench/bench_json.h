// Minimal JSON emission for the bench harness.
//
// Each bench main writes a machine-readable BENCH_<name>.json next to
// its stdout tables so sweeps can be plotted / diffed across runs
// without scraping google-benchmark output. Hand-rolled (ordered keys,
// no external deps) — the values are flat records of numbers and
// strings, nothing more.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.h"
#include "telemetry/metrics.h"

namespace maabe::bench {

/// Order-preserving JSON value builder (objects and arrays only nest
/// through raw emission).
class Json {
 public:
  static std::string quote(std::string_view s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c;
      }
    }
    out += '"';
    return out;
  }

  Json& put(std::string_view key, std::string_view value) {
    return put_raw(key, quote(value));
  }
  Json& put(std::string_view key, const char* value) {
    return put_raw(key, quote(value));
  }
  Json& put(std::string_view key, uint64_t value) {
    return put_raw(key, std::to_string(value));
  }
  Json& put(std::string_view key, int value) {
    return put_raw(key, std::to_string(value));
  }
  Json& put(std::string_view key, double value) {
    std::ostringstream os;
    os.precision(6);
    os << std::fixed << value;
    return put_raw(key, os.str());
  }
  Json& put(std::string_view key, const Json& nested) {
    return put_raw(key, nested.dump());
  }
  Json& put(std::string_view key, const std::vector<Json>& array) {
    std::string out = "[";
    for (size_t i = 0; i < array.size(); ++i) {
      if (i) out += ", ";
      out += array[i].dump();
    }
    out += ']';
    return put_raw(key, out);
  }

  Json& put_raw(std::string_view key, std::string_view json_value) {
    fields_.emplace_back(std::string(key), std::string(json_value));
    return *this;
  }

  std::string dump() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i) out += ", ";
      out += quote(fields_[i].first) + ": " + fields_[i].second;
    }
    out += '}';
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// The standard encoding of engine counters used by every bench JSON.
inline Json stats_json(const engine::EngineStats& s) {
  Json j;
  j.put("pairings", s.pairings)
      .put("g1_exps", s.g1_exps)
      .put("gt_exps", s.gt_exps)
      .put("miller_loops", s.miller_loops)
      .put("final_exps", s.final_exps)
      .put("batches", s.batches)
      .put("table_builds", s.table_builds)
      .put("table_hits", s.table_hits)
      .put("precomp_builds", s.precomp_builds)
      .put("precomp_hits", s.precomp_hits)
      .put("wall_ms", s.wall_ms());
  return j;
}

/// Per-phase engine-op breakdown (the shape cloud::OpMeter::phases()
/// returns): one nested stats record per phase name.
inline Json phases_json(const std::map<std::string, engine::EngineStats>& phases) {
  Json j;
  for (const auto& [name, stats] : phases) j.put(name, stats_json(stats));
  return j;
}

/// Telemetry registry snapshot: counters and gauges verbatim,
/// histograms reduced to count / sum / mean (full bucket vectors stay
/// in the Prometheus exposition; a bench JSON wants the summary).
inline Json snapshot_json(const telemetry::Snapshot& snap) {
  Json counters;
  for (const auto& [name, v] : snap.counters) counters.put(name, v);
  Json gauges;
  for (const auto& [name, v] : snap.gauges)
    gauges.put_raw(name, std::to_string(v));
  Json histograms;
  for (const auto& [name, data] : snap.histograms) {
    Json h;
    h.put("count", data.count).put("sum", data.sum);
    h.put("mean", data.count == 0
                      ? 0.0
                      : static_cast<double>(data.sum) / static_cast<double>(data.count));
    histograms.put(name, h);
  }
  Json j;
  j.put("counters", counters).put("gauges", gauges).put("histograms", histograms);
  return j;
}

/// Writes `root` to BENCH_<name>.json in the working directory and
/// tells the operator where it went.
inline void write_bench_json(const std::string& name, const Json& root) {
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::trunc);
  out << root.dump() << '\n';
  out.close();
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace maabe::bench
