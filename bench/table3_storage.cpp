// Table III reproduction: storage overhead on each entity.
//
// Paper formulas:
//                 Ours                               Lewko
//   AA            |p|                                2*n_k*|p|
//   Owner         2|p| + sum_k (n_k|G| + |GT|)       sum_k n_k(|GT| + |G|)
//   User          |G| + sum_k n_{k,uid}|G|           sum_k n_{k,uid}|G|
//   Server        |GT| + (l+1)|G|                    (l+1)|GT| + 2l|G|
//
// Ours is measured through the deployed CloudSystem (real entities
// holding real serialized keys); Lewko through the baseline world.
#include <cstdio>

#include "baseline/lewko_serial.h"
#include "bench_common.h"
#include "cloud/system.h"

using namespace maabe;
using namespace maabe::bench;

int main() {
  auto grp = bench_group();
  const size_t P = grp->zr_size(), G = grp->g1_size(), GT_ = grp->gt_size();
  std::printf("Table III reproduction: storage overhead per entity (bytes)\n");
  std::printf("group: %s  |p|=%zu |G|=%zu |GT|=%zu\n\n", bench_group_label().c_str(),
              P, G, GT_);

  for (const auto [n_auth, n_attr] : {std::pair{2, 5}, {5, 5}, {10, 5}}) {
    const size_t l = static_cast<size_t>(n_auth) * n_attr;

    // ---- Ours: drive a real deployment. -------------------------------
    cloud::CloudSystem sys(grp, "table3");
    std::string policy;
    for (int k = 0; k < n_auth; ++k) {
      std::set<std::string> names;
      for (int j = 0; j < n_attr; ++j) names.insert(attr_name(j));
      sys.add_authority(aid_of(k), names);
    }
    sys.add_owner("owner");
    sys.add_user("user");
    for (int k = 0; k < n_auth; ++k) {
      sys.publish_authority_keys(aid_of(k), "owner");
      std::set<std::string> names;
      for (int j = 0; j < n_attr; ++j) names.insert(attr_name(j));
      sys.assign_attributes(aid_of(k), "user", names);
      sys.issue_user_key(aid_of(k), "user", "owner");
      for (int j = 0; j < n_attr; ++j) {
        if (!policy.empty()) policy += " AND ";
        policy += attr_name(j) + "@" + aid_of(k);
      }
    }
    sys.upload("owner", "file", {{"data", bytes_of("x"), policy}});
    const auto report = sys.storage_report();

    const size_t ours_aa = report.per_entity.at("aa:" + aid_of(0));
    const size_t ours_owner = report.per_entity.at("owner:owner");
    const size_t ours_user = report.per_entity.at("user:user");
    const size_t ours_server_abe = sys.server().ciphertext_group_material_bytes();

    // ---- Lewko formulas + measured world. ------------------------------
    const LewkoWorld& lw = LewkoWorld::get(n_auth, n_attr);
    const size_t lewko_aa =
        baseline::lewko_authority_storage_bytes(*grp, lw.authorities.begin()->second);
    size_t lewko_owner = 0;  // cached public keys
    for (const auto& [h, pk] : lw.pks) lewko_owner += GT_ + G;
    size_t lewko_user = 0;
    for (const auto& [h, kx] : lw.user_key.k) lewko_user += G;
    const size_t lewko_server = baseline::lewko_ciphertext_group_material_bytes(*grp, lw.ct);

    std::printf("n_A = %d, n_k = %d (l = %zu)\n", n_auth, n_attr, l);
    std::printf("  %-8s %12s %12s %10s\n", "Entity", "ours", "lewko", "ratio");
    const auto row = [](const char* e, size_t ours, size_t lewko) {
      std::printf("  %-8s %12zu %12zu %9.2fx\n", e, ours, lewko,
                  ours == 0 ? 0.0 : double(lewko) / double(ours));
    };
    row("AA", ours_aa, lewko_aa);
    row("Owner", ours_owner, lewko_owner);
    row("User", ours_user, lewko_user);
    row("Server", ours_server_abe, lewko_server);
    std::printf("  (user row: ours carries one extra K per authority — the paper\n"
                "   counts it as |G| + sum n_k|G|; server row counts ABE group\n"
                "   material of one ciphertext, symmetric payload excluded)\n\n");
  }
  return 0;
}
