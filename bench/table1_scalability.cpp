// Table I reproduction: scalability comparison of multi-authority
// CP-ABE schemes.
//
// The two live rows ("Ours", "Lewko") are derived from the actual
// implementations in this repository: the policy type is demonstrated by
// compiling an arbitrary LSSS policy in both schemes, and the
// no-global-authority property follows from the APIs (neither setup
// touches a global secret). The remaining rows reproduce the paper's
// literature summary verbatim (those schemes are cited, not evaluated).
#include <cstdio>

#include "abe/scheme.h"
#include "baseline/lewko.h"
#include "bench_common.h"
#include "lsss/parser.h"

using namespace maabe;

namespace {

// Demonstrates "any LSSS" support by round-tripping a nested policy
// through each implementation.
bool ours_supports_lsss() {
  auto grp = pairing::Group::test_small();
  crypto::Drbg rng(std::string_view("t1"));
  const auto mk = abe::owner_gen(*grp, "o", rng);
  const auto sk_o = abe::owner_share(*grp, mk);
  const auto vk_a = abe::aa_setup(*grp, "A", rng);
  const auto vk_b = abe::aa_setup(*grp, "B", rng);
  std::map<std::string, abe::AuthorityPublicKey> apks{
      {"A", abe::aa_public_key(*grp, vk_a)}, {"B", abe::aa_public_key(*grp, vk_b)}};
  std::map<std::string, abe::PublicAttributeKey> pks;
  for (const char* n : {"x", "y"}) {
    auto pa = abe::aa_attribute_key(*grp, vk_a, n);
    pks.emplace(pa.attr.qualified(), pa);
    auto pb = abe::aa_attribute_key(*grp, vk_b, n);
    pks.emplace(pb.attr.qualified(), pb);
  }
  const auto policy =
      lsss::LsssMatrix::from_policy(lsss::parse_policy("(x@A AND y@B) OR (y@A AND x@B)"));
  const auto m = grp->gt_random(rng);
  const auto enc = abe::encrypt(*grp, mk, "ct", m, policy, apks, pks, rng);
  const auto user = abe::ca_register_user(*grp, "u", rng);
  std::map<std::string, abe::UserSecretKey> keys;
  keys.emplace("A", abe::aa_keygen(*grp, vk_a, sk_o, user, {"x"}));
  keys.emplace("B", abe::aa_keygen(*grp, vk_b, sk_o, user, {"y"}));
  return abe::decrypt(*grp, enc.ct, user, keys) == m;
}

bool lewko_supports_lsss() {
  auto grp = pairing::Group::test_small();
  crypto::Drbg rng(std::string_view("t1l"));
  const auto auth_a = baseline::lewko_authority_setup(*grp, "A", {"x", "y"}, rng);
  const auto auth_b = baseline::lewko_authority_setup(*grp, "B", {"x", "y"}, rng);
  std::map<std::string, baseline::LewkoAttributePublicKey> pks;
  for (const auto* a : {&auth_a, &auth_b}) {
    for (const char* n : {"x", "y"}) {
      auto pk = baseline::lewko_attribute_pk(*grp, *a, n);
      pks.emplace(pk.attr.qualified(), pk);
    }
  }
  const auto policy =
      lsss::LsssMatrix::from_policy(lsss::parse_policy("(x@A AND y@B) OR (y@A AND x@B)"));
  const auto m = grp->gt_random(rng);
  const auto ct = baseline::lewko_encrypt(*grp, m, policy, pks, rng);
  baseline::LewkoUserKey key;
  baseline::lewko_keygen(*grp, auth_a, "u", {"x"}, &key);
  baseline::lewko_keygen(*grp, auth_b, "u", {"y"}, &key);
  return baseline::lewko_decrypt(*grp, ct, key) == m;
}

}  // namespace

int main() {
  std::printf("Table I reproduction: scalability comparison\n");
  std::printf("(live rows verified against this repository's implementations)\n\n");
  std::printf("%-22s %-18s %-16s %-18s\n", "Scheme", "Global authority?",
              "Policy type", "Colluders tolerated");
  std::printf("%-22s %-18s %-16s %-18s\n", "------", "-----------------",
              "-----------", "-------------------");

  const bool ours_lsss = ours_supports_lsss();
  const bool lewko_lsss = lewko_supports_lsss();
  std::printf("%-22s %-18s %-16s %-18s   [live: LSSS %s]\n", "Ours (Yang-Jia'12)",
              "No", ours_lsss ? "Any LSSS" : "BROKEN", "Any", ours_lsss ? "ok" : "FAIL");
  std::printf("%-22s %-18s %-16s %-18s   [live: LSSS %s]\n", "Lewko-Waters'11",
              "No", lewko_lsss ? "Any LSSS" : "BROKEN", "Any", lewko_lsss ? "ok" : "FAIL");
  std::printf("%-22s %-18s %-16s %-18s   [paper row]\n", "Chase'07", "Yes",
              "Only 'AND'", "Any");
  std::printf("%-22s %-18s %-16s %-18s   [paper row]\n", "Muller'09", "Yes",
              "Any LSSS", "Any");
  std::printf("%-22s %-18s %-16s %-18s   [paper row]\n", "Chase-Chow'09", "No",
              "Only 'AND'", "Any");
  std::printf("%-22s %-18s %-16s %-18s   [paper row]\n", "Lin'10", "No",
              "Any LSSS", "Up to m (param)");
  return (ours_lsss && lewko_lsss) ? 0 : 1;
}
