// Production-shaped workload bench (DESIGN.md §14): drives the loadgen
// harness through five scenarios against a 3-node / R=2 cluster and
// emits BENCH_workload.json with per-op-class latency percentiles,
// achieved throughput and the admission-control counters.
//
//   steady    mixed Zipf traffic, no faults — the guarded curve:
//             download_p99_ms (regress guard) and achieved_qps
//             (floor_ratio guard) come from here.
//   storm     a mid-run revocation storm; shows the epoch pipeline
//             sharing the cluster with reads.
//   outage    kill node:1 mid-run, restart at 2/3 — quorum reads
//             degrade (fail-closed) but never error, restart prunes
//             superseded parked ops.
//   overload  whole cluster down with a tiny durable-queue cap —
//             uploads park up to the cap, then callers see the typed
//             kOverloaded rejection and queue depth stays bounded
//             (overload_rejected / overload_bounded guards).
//   recovery  kill node:1 at 1/3, traffic through the outage, rejoin at
//             2/3 via the recovery protocol (hinted hand-off + Merkle
//             anti-entropy + 2PC epoch resolution, DESIGN.md §15) —
//             emits recovery_convergence_ms and the transferred-bytes
//             counters. Guards: the rejoin must move something
//             (recovery_bytes_transferred) but strictly less than a
//             full snapshot of the node (recovery_bounded), and no
//             epoch may end staged-open (recovery_staged_open_zero).
//
// MAABE_BENCH_SMALL=1 switches to the fast insecure curve (bench-smoke).
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "bench_json.h"
#include "loadgen/loadgen.h"

namespace maabe::bench {
namespace {

using loadgen::LoadGenerator;
using loadgen::OpStats;
using loadgen::ScenarioEvent;
using loadgen::WorkloadConfig;
using loadgen::WorkloadReport;

/// SLO spec applied to every scenario (DESIGN.md §16). Thresholds are
/// deliberately generous against the committed steady baseline
/// (download p99 ~2 ms on the small curve): steady must meet them
/// (slo_download_p99_met is smoke-guarded), the fault scenarios show
/// burn rates above 1 when degraded/rejected ops eat the budget.
constexpr const char* kSloSpec =
    "download_p99_ms=250,epoch_commit_ms=30000@0.95,error_rate=0.01";

WorkloadConfig base_config() {
  WorkloadConfig cfg;
  cfg.authorities = 2;
  cfg.attributes_per_authority = 2;
  cfg.users = 8;
  cfg.users_per_attribute_set = 2;
  cfg.files = 16;
  cfg.nodes = 3;
  cfg.replication = 2;
  cfg.ops = 240;
  cfg.zipf_s = 1.1;
  cfg.seed = 42;
  cfg.slo_spec = kSloSpec;
  return cfg;
}

Json slo_json(const maabe::telemetry::SloStatus& s) {
  Json j;
  j.put("objective", s.objective)
      .put("threshold_ms", s.threshold_ms)
      .put("samples", s.samples)
      .put("bad", s.bad)
      .put("burn_short", s.burn_short)
      .put("burn_long", s.burn_long)
      .put("met", s.met ? 1 : 0);
  return j;
}

int slo_met(const WorkloadReport& r, const std::string& name) {
  for (const auto& s : r.slo) {
    if (s.name == name) return s.met ? 1 : 0;
  }
  return 0;  // untracked objective reads as unmet, never silently green
}

Json op_json(const OpStats& s) {
  Json j;
  j.put("attempts", s.attempts())
      .put("ok", s.ok)
      .put("denied", s.denied)
      .put("degraded", s.degraded)
      .put("rejected", s.rejected)
      .put("errors", s.errors)
      .put("p50_ms", s.percentile(50))
      .put("p95_ms", s.percentile(95))
      .put("p99_ms", s.percentile(99));
  return j;
}

Json report_json(const WorkloadReport& r) {
  Json per_op;
  for (const auto& [cls, stats] : r.per_op) per_op.put(cls, op_json(stats));
  Json j;
  j.put("ops", r.total_ops)
      .put("wall_seconds", r.wall_seconds)
      .put("achieved_qps", r.achieved_qps())
      .put("per_op", per_op)
      .put("decrypt_cache_hits", r.decrypt_cache_hits)
      .put("decrypt_cache_misses", r.decrypt_cache_misses)
      .put("parked_rejected", r.parked_rejected)
      .put("replication_sheds", r.replication_sheds)
      .put("restart_prunes", r.restart_prunes)
      .put("rejoins", r.rejoins)
      .put("recovery_convergence_ms", r.recovery_convergence_ms)
      .put("recovery_bytes_transferred", r.recovery_bytes_transferred)
      .put("recovery_files_transferred", r.recovery_files_transferred)
      .put("recovery_hints_replayed", r.recovery_hints_replayed)
      .put("recovery_epochs_resolved", r.recovery_epochs_resolved);
  if (!r.slo.empty()) {
    Json slo;
    for (const auto& s : r.slo) slo.put(s.name, slo_json(s));
    j.put("slo", slo);
  }
  return j;
}

void print_report(const char* scenario, const WorkloadReport& r) {
  std::printf("%s: %llu ops in %.3f s -> %.1f op/s\n", scenario,
              static_cast<unsigned long long>(r.total_ops), r.wall_seconds,
              r.achieved_qps());
  for (const auto& [cls, s] : r.per_op) {
    std::printf("  %-9s ok %-5llu denied %-3llu degraded %-4llu rejected %-4llu "
                "errors %-3llu p50 %.2f p95 %.2f p99 %.2f ms\n",
                cls.c_str(), static_cast<unsigned long long>(s.ok),
                static_cast<unsigned long long>(s.denied),
                static_cast<unsigned long long>(s.degraded),
                static_cast<unsigned long long>(s.rejected),
                static_cast<unsigned long long>(s.errors), s.percentile(50),
                s.percentile(95), s.percentile(99));
  }
  for (const auto& s : r.slo) {
    std::printf("  slo %-18s burn short %.3f long %.3f (%llu/%llu bad) -> %s\n",
                s.name.c_str(), s.burn_short, s.burn_long,
                static_cast<unsigned long long>(s.bad),
                static_cast<unsigned long long>(s.samples),
                s.met ? "met" : "MISSED");
  }
}

}  // namespace
}  // namespace maabe::bench

int main() {
  using namespace maabe::bench;
  std::printf("Workload harness: Zipf traffic vs 3-node cluster (%s)\n\n",
              bench_group_label().c_str());
  auto grp = bench_group();

  // ---- steady: the guarded curve ------------------------------------
  WorkloadConfig steady_cfg = base_config();
  LoadGenerator steady_gen(grp, steady_cfg);
  steady_gen.setup();
  const WorkloadReport steady = steady_gen.run();
  print_report("steady", steady);

  // ---- storm: revocation burst mid-run ------------------------------
  WorkloadConfig storm_cfg = base_config();
  storm_cfg.events.push_back(
      {storm_cfg.ops / 3, ScenarioEvent::Kind::kRevocationStorm, "", 6});
  LoadGenerator storm_gen(grp, storm_cfg);
  storm_gen.setup();
  const WorkloadReport storm = storm_gen.run();
  print_report("storm", storm);

  // ---- outage: kill + restart node:1 --------------------------------
  WorkloadConfig outage_cfg = base_config();
  outage_cfg.events.push_back(
      {outage_cfg.ops / 3, ScenarioEvent::Kind::kKillNode, "node:1", 0});
  outage_cfg.events.push_back(
      {2 * outage_cfg.ops / 3, ScenarioEvent::Kind::kRestartNode, "node:1", 0});
  LoadGenerator outage_gen(grp, outage_cfg);
  outage_gen.setup();
  const WorkloadReport outage = outage_gen.run();
  print_report("outage", outage);

  // ---- recovery: kill -> traffic -> rejoin --------------------------
  WorkloadConfig rec_cfg = base_config();
  rec_cfg.events.push_back(
      {rec_cfg.ops / 3, ScenarioEvent::Kind::kKillNode, "node:1", 0});
  rec_cfg.events.push_back(
      {2 * rec_cfg.ops / 3, ScenarioEvent::Kind::kRejoinNode, "node:1", 0});
  LoadGenerator rec_gen(grp, rec_cfg);
  rec_gen.setup();
  const WorkloadReport rec = rec_gen.run();
  print_report("recovery", rec);
  // The rejoin must have moved strictly less than the node's full store
  // (that is the point of hint-scoped drains + Merkle diffs over a
  // snapshot fetch), and no epoch may be left staged-open.
  const uint64_t rec_snapshot_bytes =
      rec_gen.system().cluster().snapshot("node:1").size();
  const double rec_ratio =
      rec_snapshot_bytes > 0
          ? static_cast<double>(rec.recovery_bytes_transferred) /
                static_cast<double>(rec_snapshot_bytes)
          : 0.0;
  const bool rec_bounded = rec.recovery_bytes_transferred > 0 && rec_ratio < 0.9;
  uint64_t rec_staged_open = 0;
  for (const auto& nh : rec_gen.system().cluster_health())
    rec_staged_open += nh.epochs_staged_open;
  std::printf("  rejoin converged in %.2f ms, moved %llu bytes "
              "(%.1f%% of a %llu-byte snapshot) -> %s, staged-open %llu\n",
              rec.recovery_convergence_ms,
              static_cast<unsigned long long>(rec.recovery_bytes_transferred),
              rec_ratio * 100.0,
              static_cast<unsigned long long>(rec_snapshot_bytes),
              rec_bounded ? "bounded" : "UNBOUNDED",
              static_cast<unsigned long long>(rec_staged_open));

  // ---- overload: bounded queues under a dead cluster ----------------
  // Every node dead, durable cap 4, store-only traffic: the first ~cap
  // uploads park, the rest must come back as typed kOverloaded
  // rejections while the queue depth stays at the cap.
  WorkloadConfig over_cfg = base_config();
  over_cfg.ops = 16;
  over_cfg.pending_cap = 4;
  over_cfg.store_weight = 1.0;
  over_cfg.download_weight = 0.0;
  over_cfg.revoke_weight = 0.0;
  over_cfg.churn_weight = 0.0;
  over_cfg.flush_every = 0;  // no replay: the destination stays dead
  LoadGenerator over_gen(grp, over_cfg);
  over_gen.setup();
  for (size_t i = 0; i < over_cfg.nodes; ++i)
    over_gen.system().cluster().kill_node("node:" + std::to_string(i));
  const WorkloadReport over = over_gen.run();
  print_report("overload", over);
  size_t max_queue = 0;
  for (const auto& [dest, depth] :
       over_gen.system().health().pending_by_destination)
    max_queue = std::max(max_queue, depth);
  const bool bounded = max_queue <= over_gen.system().pending_cap();
  std::printf("  max queue depth %zu (cap %zu) -> %s\n", max_queue,
              over_gen.system().pending_cap(), bounded ? "bounded" : "UNBOUNDED");

  const OpStats& steady_dl = steady.per_op.at("download");
  Json root;
  root.put("bench", "workload")
      .put("group", bench_group_label())
      .put("nodes", static_cast<uint64_t>(steady_cfg.nodes))
      .put("replication", static_cast<uint64_t>(steady_cfg.replication))
      .put("zipf_s", steady_cfg.zipf_s)
      // Guarded headline numbers (bench_smoke.sh): the steady curve's
      // download tail and throughput, and the overload invariants.
      .put("download_p99_ms", steady_dl.percentile(99))
      .put("achieved_qps", steady.achieved_qps())
      .put("overload_rejected",
           over.per_op.count("store") ? over.per_op.at("store").rejected : 0)
      .put("overload_bounded", bounded ? 1 : 0)
      .put("recovery_convergence_ms", rec.recovery_convergence_ms)
      .put("recovery_bytes_transferred", rec.recovery_bytes_transferred)
      .put("recovery_files_transferred", rec.recovery_files_transferred)
      .put("recovery_hints_replayed", rec.recovery_hints_replayed)
      .put("recovery_snapshot_bytes", rec_snapshot_bytes)
      .put("recovery_transfer_ratio", rec_ratio)
      .put("recovery_bounded", rec_bounded ? 1 : 0)
      .put("recovery_staged_open_zero", rec_staged_open == 0 ? 1 : 0)
      // SLO plane (DESIGN.md §16): the steady scenario must stay inside
      // every objective's budget (slo_download_p99_met is smoke-guarded).
      .put("slo_spec", kSloSpec)
      .put("slo_download_p99_met", slo_met(steady, "download_p99_ms"))
      .put("slo_epoch_commit_met", slo_met(steady, "epoch_commit_ms"))
      .put("slo_error_rate_met", slo_met(steady, "error_rate"))
      .put("steady", report_json(steady))
      .put("storm", report_json(storm))
      .put("outage", report_json(outage))
      .put("recovery", report_json(rec))
      .put("overload", report_json(over))
      .put("telemetry",
           snapshot_json(maabe::telemetry::MetricsRegistry::global().collect()));
  write_bench_json("workload", root);
  return 0;
}
