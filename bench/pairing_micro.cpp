// Pairing-substrate microbenchmarks — the anchor for every timing claim
// in the table/figure reproductions, plus the Montgomery-vs-plain
// modular-multiplication ablation called out in DESIGN.md.
#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "bench_common.h"
#include "bench_json.h"
#include "engine/engine.h"
#include "math/montgomery.h"

namespace maabe::bench {
namespace {

void BM_Pairing(benchmark::State& state) {
  auto grp = bench_group();
  crypto::Drbg rng(std::string_view("micro"));
  const auto p = grp->g1_random(rng);
  const auto q = grp->g1_random(rng);
  for (auto _ : state) benchmark::DoNotOptimize(grp->pair(p, q));
}

// The multi-pairing kernel's three cost centers, measured separately:
// pair() == miller + reduce; the kernel pays miller per term but reduce
// once per product, and precomputed line tables cut the miller cost for
// repeated first arguments.
void BM_MillerLoop(benchmark::State& state) {
  auto grp = bench_group();
  crypto::Drbg rng(std::string_view("micro"));
  const auto p = grp->g1_random(rng);
  const auto q = grp->g1_random(rng);
  for (auto _ : state) benchmark::DoNotOptimize(grp->miller(p, q));
}

void BM_MillerLoop_Precomp(benchmark::State& state) {
  auto grp = bench_group();
  crypto::Drbg rng(std::string_view("micro"));
  const auto p = grp->g1_random(rng);
  const auto q = grp->g1_random(rng);
  const auto pre = grp->pair_precompute(p);
  for (auto _ : state) benchmark::DoNotOptimize(grp->miller_with(*pre, q));
}

void BM_FinalExp(benchmark::State& state) {
  auto grp = bench_group();
  crypto::Drbg rng(std::string_view("micro"));
  const auto m = grp->miller(grp->g1_random(rng), grp->g1_random(rng));
  for (auto _ : state) benchmark::DoNotOptimize(grp->miller_reduce(m));
}

void BM_G1_Exp(benchmark::State& state) {
  auto grp = bench_group();
  crypto::Drbg rng(std::string_view("micro"));
  const auto p = grp->g1_random(rng);
  const auto k = grp->zr_random(rng);
  for (auto _ : state) benchmark::DoNotOptimize(p.mul(k));
}

void BM_G1_Exp_FixedBase(benchmark::State& state) {
  auto grp = bench_group();
  crypto::Drbg rng(std::string_view("micro"));
  const auto k = grp->zr_random(rng);
  for (auto _ : state) benchmark::DoNotOptimize(grp->g_pow(k));
}

void BM_GT_Exp_FixedBase(benchmark::State& state) {
  auto grp = bench_group();
  crypto::Drbg rng(std::string_view("micro"));
  const auto k = grp->zr_random(rng);
  for (auto _ : state) benchmark::DoNotOptimize(grp->egg_pow(k));
}

void BM_GT_Exp(benchmark::State& state) {
  auto grp = bench_group();
  crypto::Drbg rng(std::string_view("micro"));
  const auto e = grp->gt_generator();
  const auto k = grp->zr_random(rng);
  for (auto _ : state) benchmark::DoNotOptimize(e.pow(k));
}

void BM_GT_Mul(benchmark::State& state) {
  auto grp = bench_group();
  crypto::Drbg rng(std::string_view("micro"));
  const auto a = grp->gt_random(rng);
  const auto b = grp->gt_random(rng);
  for (auto _ : state) benchmark::DoNotOptimize(a.mul(b));
}

void BM_HashToG1(benchmark::State& state) {
  auto grp = bench_group();
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grp->hash_to_g1(std::string("input" + std::to_string(i++))));
  }
}

void BM_HashToZr(benchmark::State& state) {
  auto grp = bench_group();
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grp->hash_to_zr(std::string("input" + std::to_string(i++))));
  }
}

// Ablation: Montgomery vs division-based modular multiplication at the
// base-field size. Justifies the substrate design choice.
void BM_FieldMul_Montgomery(benchmark::State& state) {
  auto grp = bench_group();
  const math::MontCtx mont(grp->params().q);
  crypto::Drbg rng(std::string_view("micro"));
  const auto a = mont.to_mont(rng.below(grp->params().q));
  const auto b = mont.to_mont(rng.below(grp->params().q));
  for (auto _ : state) benchmark::DoNotOptimize(mont.mul(a, b));
}

void BM_FieldMul_PlainDivision(benchmark::State& state) {
  auto grp = bench_group();
  crypto::Drbg rng(std::string_view("micro"));
  const auto a = rng.below(grp->params().q);
  const auto b = rng.below(grp->params().q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::Bignum::mod_mul(a, b, grp->params().q));
  }
}

void BM_FieldInverse(benchmark::State& state) {
  auto grp = bench_group();
  crypto::Drbg rng(std::string_view("micro"));
  const auto a = rng.nonzero_below(grp->params().q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::Bignum::mod_inverse(a, grp->params().q));
  }
}

BENCHMARK(BM_Pairing)->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_MillerLoop)->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_MillerLoop_Precomp)->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_FinalExp)->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_G1_Exp)->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_G1_Exp_FixedBase)->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_GT_Exp)->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_GT_Exp_FixedBase)->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_GT_Mul)->Unit(benchmark::kMicrosecond)->MinTime(0.05);
BENCHMARK(BM_HashToG1)->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_HashToZr)->Unit(benchmark::kMicrosecond)->MinTime(0.05);
BENCHMARK(BM_FieldMul_Montgomery)->Unit(benchmark::kNanosecond)->MinTime(0.05);
BENCHMARK(BM_FieldMul_PlainDivision)->Unit(benchmark::kNanosecond)->MinTime(0.05);
BENCHMARK(BM_FieldInverse)->Unit(benchmark::kMicrosecond)->MinTime(0.05);

// The engine's headline batch: a 16-term pairing product (decrypt's
// shape at l=8, N_A=... — the dominant cost in Fig. 3b), timed on the
// legacy serial path vs the thread pool. Emits BENCH_pairing_micro.json.
void engine_batch_report() {
  using Clock = std::chrono::steady_clock;
  auto grp = bench_group();
  crypto::Drbg rng(std::string_view("micro-batch"));

  constexpr size_t kTerms = 16;
  std::vector<engine::CryptoEngine::PairTerm> terms;
  for (size_t i = 0; i < kTerms; ++i)
    terms.push_back({grp->g1_random(rng), grp->g1_random(rng)});

  const int pool_threads = std::max(4, engine::CryptoEngine::default_threads());
  engine::CryptoEngine serial_eng(*grp, 1);
  engine::CryptoEngine pool_eng(*grp, pool_threads);

  const auto time_reps = [&](engine::CryptoEngine& eng, int reps) {
    (void)eng.pairing_product(terms);  // warm up (pool spin-up, caches)
    const auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) benchmark::DoNotOptimize(eng.pairing_product(terms));
    const auto t1 = Clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count() / reps;
  };

  constexpr int kReps = 5;
  const double serial_ms = time_reps(serial_eng, kReps);
  const double pool_ms = time_reps(pool_eng, kReps);
  const double speedup = pool_ms > 0 ? serial_ms / pool_ms : 0.0;

  // The kernel's algorithmic headline, independent of thread count: the
  // legacy pair-then-multiply fold pays one final exponentiation per
  // term, the kernel pays one for the whole product.
  const auto fold_once = [&] {
    pairing::GT acc = grp->gt_one();
    for (const auto& t : terms) acc = acc * grp->pair(t.a, t.b);
    return acc;
  };
  const auto time_fold = [&](int reps) {
    (void)fold_once();
    const auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) benchmark::DoNotOptimize(fold_once());
    const auto t1 = Clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count() / reps;
  };
  const double fold_ms = time_fold(kReps);
  const double kernel_ms = serial_ms;  // same work, pool bypassed
  const double kernel_speedup = kernel_ms > 0 ? fold_ms / kernel_ms : 0.0;

  std::printf("\n%zu-pairing product batch (%d reps):\n", kTerms, kReps);
  std::printf("  pair-then-multiply  : %8.3f ms   (%zu final exps)\n", fold_ms, kTerms);
  std::printf("  kernel (1 thread)   : %8.3f ms   (1 final exp)  speedup %.2fx\n",
              kernel_ms, kernel_speedup);
  std::printf("  kernel (%d threads) : %8.3f ms   pool-vs-serial %.2fx\n", pool_threads,
              pool_ms, speedup);
  if (std::thread::hardware_concurrency() <= 1)
    std::printf("  (host exposes 1 hardware thread; no parallel gain is possible)\n");

  Json root;
  root.put("bench", "pairing_micro")
      .put("group", bench_group_label())
      .put("batch", "pairing_product")
      .put("batch_terms", kTerms)
      .put("reps", kReps)
      .put("hardware_concurrency",
           static_cast<uint64_t>(std::thread::hardware_concurrency()))
      .put("serial_threads", 1)
      .put("pool_threads", pool_threads)
      .put("serial_wall_ms", serial_ms)
      .put("pool_wall_ms", pool_ms)
      .put("speedup", speedup)
      .put("fold_wall_ms", fold_ms)
      .put("kernel_wall_ms", kernel_ms)
      .put("kernel_speedup", kernel_speedup)
      .put("serial_stats", stats_json(serial_eng.stats()))
      .put("pool_stats", stats_json(pool_eng.stats()));
  write_bench_json("pairing_micro", root);
}

}  // namespace
}  // namespace maabe::bench

int main(int argc, char** argv) {
  std::printf("Pairing substrate microbenchmarks\ngroup: %s\nengine threads: %d\n\n",
              maabe::bench::bench_group_label().c_str(),
              maabe::engine::CryptoEngine::default_threads());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  maabe::bench::engine_batch_report();
  return 0;
}
