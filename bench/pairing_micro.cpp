// Pairing-substrate microbenchmarks — the anchor for every timing claim
// in the table/figure reproductions, plus the Montgomery-vs-plain
// modular-multiplication ablation called out in DESIGN.md.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "math/montgomery.h"

namespace maabe::bench {
namespace {

void BM_Pairing(benchmark::State& state) {
  auto grp = bench_group();
  crypto::Drbg rng(std::string_view("micro"));
  const auto p = grp->g1_random(rng);
  const auto q = grp->g1_random(rng);
  for (auto _ : state) benchmark::DoNotOptimize(grp->pair(p, q));
}

void BM_G1_Exp(benchmark::State& state) {
  auto grp = bench_group();
  crypto::Drbg rng(std::string_view("micro"));
  const auto p = grp->g1_random(rng);
  const auto k = grp->zr_random(rng);
  for (auto _ : state) benchmark::DoNotOptimize(p.mul(k));
}

void BM_G1_Exp_FixedBase(benchmark::State& state) {
  auto grp = bench_group();
  crypto::Drbg rng(std::string_view("micro"));
  const auto k = grp->zr_random(rng);
  for (auto _ : state) benchmark::DoNotOptimize(grp->g_pow(k));
}

void BM_GT_Exp_FixedBase(benchmark::State& state) {
  auto grp = bench_group();
  crypto::Drbg rng(std::string_view("micro"));
  const auto k = grp->zr_random(rng);
  for (auto _ : state) benchmark::DoNotOptimize(grp->egg_pow(k));
}

void BM_GT_Exp(benchmark::State& state) {
  auto grp = bench_group();
  crypto::Drbg rng(std::string_view("micro"));
  const auto e = grp->gt_generator();
  const auto k = grp->zr_random(rng);
  for (auto _ : state) benchmark::DoNotOptimize(e.pow(k));
}

void BM_GT_Mul(benchmark::State& state) {
  auto grp = bench_group();
  crypto::Drbg rng(std::string_view("micro"));
  const auto a = grp->gt_random(rng);
  const auto b = grp->gt_random(rng);
  for (auto _ : state) benchmark::DoNotOptimize(a.mul(b));
}

void BM_HashToG1(benchmark::State& state) {
  auto grp = bench_group();
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grp->hash_to_g1(std::string("input" + std::to_string(i++))));
  }
}

void BM_HashToZr(benchmark::State& state) {
  auto grp = bench_group();
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grp->hash_to_zr(std::string("input" + std::to_string(i++))));
  }
}

// Ablation: Montgomery vs division-based modular multiplication at the
// base-field size. Justifies the substrate design choice.
void BM_FieldMul_Montgomery(benchmark::State& state) {
  auto grp = bench_group();
  const math::MontCtx mont(grp->params().q);
  crypto::Drbg rng(std::string_view("micro"));
  const auto a = mont.to_mont(rng.below(grp->params().q));
  const auto b = mont.to_mont(rng.below(grp->params().q));
  for (auto _ : state) benchmark::DoNotOptimize(mont.mul(a, b));
}

void BM_FieldMul_PlainDivision(benchmark::State& state) {
  auto grp = bench_group();
  crypto::Drbg rng(std::string_view("micro"));
  const auto a = rng.below(grp->params().q);
  const auto b = rng.below(grp->params().q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::Bignum::mod_mul(a, b, grp->params().q));
  }
}

void BM_FieldInverse(benchmark::State& state) {
  auto grp = bench_group();
  crypto::Drbg rng(std::string_view("micro"));
  const auto a = rng.nonzero_below(grp->params().q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::Bignum::mod_inverse(a, grp->params().q));
  }
}

BENCHMARK(BM_Pairing)->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_G1_Exp)->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_G1_Exp_FixedBase)->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_GT_Exp)->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_GT_Exp_FixedBase)->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_GT_Mul)->Unit(benchmark::kMicrosecond)->MinTime(0.05);
BENCHMARK(BM_HashToG1)->Unit(benchmark::kMicrosecond)->MinTime(0.1);
BENCHMARK(BM_HashToZr)->Unit(benchmark::kMicrosecond)->MinTime(0.05);
BENCHMARK(BM_FieldMul_Montgomery)->Unit(benchmark::kNanosecond)->MinTime(0.05);
BENCHMARK(BM_FieldMul_PlainDivision)->Unit(benchmark::kNanosecond)->MinTime(0.05);
BENCHMARK(BM_FieldInverse)->Unit(benchmark::kMicrosecond)->MinTime(0.05);

}  // namespace
}  // namespace maabe::bench

int main(int argc, char** argv) {
  std::printf("Pairing substrate microbenchmarks\ngroup: %s\n\n",
              maabe::bench::bench_group_label().c_str());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
