// Attribute-revocation lifecycle (paper Section V-C), step by step.
//
// Walks the complete protocol: an employee loses an attribute, the
// authority bumps its version key, non-revoked users receive update
// keys, the owner refreshes its public keys and emits update
// information, and the cloud server proxy-re-encrypts affected
// ciphertexts WITHOUT ever decrypting them. Shows:
//   * backward security  — the revoked user loses access to old data,
//   * forward access     — newly joined users can read old data,
//   * the partial-re-encryption property (only affected rows change).
//
//   $ ./revocation_lifecycle
#include <cstdio>

#include "cloud/system.h"

using namespace maabe;

namespace {

void check(const char* what, bool got, bool want) {
  std::printf("  %-58s %s\n", what, got == want ? (got ? "ACCESS" : "denied") : "UNEXPECTED!");
}

}  // namespace

int main() {
  cloud::CloudSystem sys(pairing::Group::pbc_a512(), "revocation-demo");

  sys.add_authority("Corp", {"Staff", "Finance"});
  sys.add_owner("filer");
  sys.publish_authority_keys("Corp", "filer");

  sys.add_user("mallory");
  sys.assign_attributes("Corp", "mallory", {"Staff", "Finance"});
  sys.issue_user_key("Corp", "mallory", "filer");

  sys.add_user("trent");
  sys.assign_attributes("Corp", "trent", {"Staff", "Finance"});
  sys.issue_user_key("Corp", "trent", "filer");

  sys.upload("filer", "q2-report",
             {{"summary", bytes_of("Q2 revenue up 12%"), "Staff@Corp"},
              {"ledger", bytes_of("detailed ledger rows"), "Finance@Corp"}});

  std::printf("before revocation (Corp key version %u):\n",
              sys.authority("Corp").version());
  check("mallory reads ledger", sys.download("mallory", "q2-report").contains("ledger"), true);
  check("trent reads ledger", sys.download("trent", "q2-report").contains("ledger"), true);

  // Mallory moves out of Finance: revoke the attribute. One call runs
  // both protocol phases across all entities.
  const size_t reencrypted = sys.revoke_attribute("Corp", "mallory", "Finance");
  std::printf("\nrevoked Finance@Corp from mallory: version -> %u, "
              "%zu ciphertext(s) proxy-re-encrypted by the server\n",
              sys.authority("Corp").version(), reencrypted);

  std::printf("\nafter revocation:\n");
  const auto mallory_view = sys.download("mallory", "q2-report");
  check("mallory reads summary (still Staff)", mallory_view.contains("summary"), true);
  check("mallory reads ledger (revoked)", mallory_view.contains("ledger"), false);
  const auto trent_view = sys.download("trent", "q2-report");
  check("trent reads ledger (update key applied)", trent_view.contains("ledger"), true);

  // New data is encrypted under the version-2 keys automatically.
  sys.upload("filer", "q3-forecast",
             {{"forecast", bytes_of("Q3 forecast: flat"), "Finance@Corp"}});
  std::printf("\nnew upload under version-2 keys:\n");
  check("mallory reads q3 forecast", sys.download("mallory", "q3-forecast").contains("forecast"),
        false);
  check("trent reads q3 forecast", sys.download("trent", "q3-forecast").contains("forecast"),
        true);

  // Forward access: a user joining after the revocation still reads the
  // re-encrypted OLD data (the server moved it to the new version).
  sys.add_user("peggy");
  sys.assign_attributes("Corp", "peggy", {"Finance"});
  sys.issue_user_key("Corp", "peggy", "filer");
  std::printf("\nnew user joining after revocation:\n");
  check("peggy reads old ledger", sys.download("peggy", "q2-report").contains("ledger"), true);

  std::printf("\nrevocation traffic (bytes):\n");
  std::printf("  aa:Corp -> user:trent   : %zu (update key)\n",
              sys.meter().sent("aa:Corp", "user:trent"));
  std::printf("  aa:Corp -> owner:filer  : %zu (update key)\n",
              sys.meter().sent("aa:Corp", "owner:filer"));
  return 0;
}
