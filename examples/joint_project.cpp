// Joint project — the paper's second motivating scenario.
//
// Two companies ("IBM" and "Google") run a joint project; each issues
// attributes to its own employees independently. Project documents are
// encrypted so that access requires credentials FROM BOTH companies —
// something single-authority CP-ABE cannot express, because no single
// authority can verify both companies' attributes.
//
// Also demonstrates threshold policies ("2of(...)") and that employees
// of the two companies cannot collude: Alice's engineer attribute plus
// Bob's manager attribute do NOT combine, because their UIDs differ.
//
//   $ ./joint_project
#include <cstdio>

#include "cloud/system.h"

using namespace maabe;

int main() {
  cloud::CloudSystem sys(pairing::Group::pbc_a512(), "joint-project-demo");

  sys.add_authority("IBM", {"Engineer", "Manager", "ProjectX"});
  sys.add_authority("Google", {"Engineer", "Manager", "ProjectX"});

  sys.add_owner("project-office");
  sys.publish_authority_keys("IBM", "project-office");
  sys.publish_authority_keys("Google", "project-office");

  // carol: in the project at both companies (a liaison).
  sys.add_user("carol");
  sys.assign_attributes("IBM", "carol", {"Engineer", "ProjectX"});
  sys.assign_attributes("Google", "carol", {"ProjectX"});
  sys.issue_user_key("IBM", "carol", "project-office");
  sys.issue_user_key("Google", "carol", "project-office");

  // alice: IBM engineer on the project, no Google credentials at all.
  sys.add_user("alice");
  sys.assign_attributes("IBM", "alice", {"Engineer", "ProjectX"});
  sys.issue_user_key("IBM", "alice", "project-office");

  // bob: Google manager on the project.
  sys.add_user("bob");
  sys.assign_attributes("Google", "bob", {"Manager", "ProjectX"});
  sys.issue_user_key("Google", "bob", "project-office");
  sys.issue_user_key("IBM", "bob", "project-office");  // empty IBM key

  // The design doc needs project membership at BOTH companies. Note
  // that "ProjectX@IBM" and "ProjectX@Google" are distinct attributes —
  // the AID disambiguates same-named attributes (paper Section V-A).
  sys.upload("project-office", "design-doc",
             {{"spec", bytes_of("joint accelerator design v3"),
               "ProjectX@IBM AND ProjectX@Google"}});

  const auto carol_view = sys.download("carol", "design-doc");
  const auto alice_view = sys.download("alice", "design-doc");
  const auto bob_view = sys.download("bob", "design-doc");
  std::printf("policy: ProjectX@IBM AND ProjectX@Google\n");
  std::printf("  carol (both companies):   %s\n",
              carol_view.contains("spec") ? "ACCESS" : "denied");
  std::printf("  alice (IBM only):         %s\n",
              alice_view.contains("spec") ? "ACCESS" : "denied");
  std::printf("  bob   (Google only):      %s\n",
              bob_view.contains("spec") ? "ACCESS" : "denied");

  // Threshold policy across authorities: any 2 of 3 credentials.
  // (Thresholds expand to OR-of-ANDs, reusing attributes across rows —
  // an extension beyond the paper's injective-rho restriction, so the
  // policy compiler requires explicit opt-in; CloudSystem components use
  // the parser which goes through LsssMatrix::from_policy internally —
  // here we demonstrate with distinct attributes instead.)
  sys.upload("project-office", "meeting-notes",
             {{"notes", bytes_of("sync notes 2026-07-06"),
               "(Engineer@IBM AND ProjectX@IBM) OR (Manager@Google AND ProjectX@Google)"}});
  std::printf("\npolicy: (Engineer@IBM AND ProjectX@IBM) OR "
              "(Manager@Google AND ProjectX@Google)\n");
  std::printf("  alice (IBM engineer):     %s\n",
              sys.download("alice", "meeting-notes").contains("notes") ? "ACCESS"
                                                                        : "denied");
  std::printf("  bob   (Google manager):   %s\n",
              sys.download("bob", "meeting-notes").contains("notes") ? "ACCESS"
                                                                      : "denied");
  std::printf(
      "\nnote: alice satisfies the IBM branch but is denied — the scheme's\n"
      "decryption needs a K_{UID,AID} component from EVERY authority the\n"
      "ciphertext involves (the numerator in the paper's Eq. 1 ranges over\n"
      "all of I_A), and alice holds no Google-issued key at all. bob was\n"
      "issued an empty-attribute IBM key, so his Google branch decrypts.\n");
  return 0;
}
