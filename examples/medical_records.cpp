// Medical-records sharing — the paper's motivating scenario.
//
// A hospital (data owner) shares patient records in the cloud. A medical
// organization issues "Doctor"/"Nurse" attributes; a clinical-trial
// administrator independently issues "Researcher". The record is split
// into components with different policies (Fig. 2), so a doctor who is
// also a trial researcher sees the diagnosis, a nurse sees only vitals,
// and the billing department sees only invoices — all from one stored
// file, with no trusted party evaluating policies.
//
//   $ ./medical_records
#include <cstdio>

#include "cloud/system.h"

using namespace maabe;
using cloud::CloudSystem;

namespace {

void show(const char* who, const std::map<std::string, Bytes>& view) {
  std::printf("%-28s ->", who);
  if (view.empty()) std::printf(" (nothing)");
  for (const auto& [name, data] : view) {
    std::printf(" %s=\"%s\"", name.c_str(), string_of(data).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  CloudSystem sys(pairing::Group::pbc_a512(), "medical-records-demo");

  // Independent authorities: no global coordinator.
  sys.add_authority("MedOrg", {"Doctor", "Nurse", "Billing"});
  sys.add_authority("TrialAdmin", {"Researcher"});

  // The hospital owns the data; it shares SK_o with both authorities and
  // pulls their public keys.
  sys.add_owner("hospital");
  sys.publish_authority_keys("MedOrg", "hospital");
  sys.publish_authority_keys("TrialAdmin", "hospital");

  // Users and their roles.
  sys.add_user("dr-grey");  // doctor AND trial researcher
  sys.assign_attributes("MedOrg", "dr-grey", {"Doctor"});
  sys.assign_attributes("TrialAdmin", "dr-grey", {"Researcher"});
  sys.issue_user_key("MedOrg", "dr-grey", "hospital");
  sys.issue_user_key("TrialAdmin", "dr-grey", "hospital");

  sys.add_user("nurse-kim");
  sys.assign_attributes("MedOrg", "nurse-kim", {"Nurse"});
  sys.issue_user_key("MedOrg", "nurse-kim", "hospital");

  sys.add_user("acct-lee");
  sys.assign_attributes("MedOrg", "acct-lee", {"Billing"});
  sys.issue_user_key("MedOrg", "acct-lee", "hospital");

  // One stored file, three granularities (paper Fig. 2).
  sys.upload("hospital", "patient-1307",
             {{"diagnosis", bytes_of("adenocarcinoma, stage II"),
               "Doctor@MedOrg AND Researcher@TrialAdmin"},
              {"vitals", bytes_of("bp=118/76 hr=64 spo2=98"),
               "Doctor@MedOrg OR Nurse@MedOrg"},
              {"invoice", bytes_of("CT scan $2,400"),
               "Billing@MedOrg"}});

  std::printf("record 'patient-1307' uploaded; per-user views:\n\n");
  show("dr-grey (Doctor+Researcher)", sys.download("dr-grey", "patient-1307"));
  show("nurse-kim (Nurse)", sys.download("nurse-kim", "patient-1307"));
  show("acct-lee (Billing)", sys.download("acct-lee", "patient-1307"));

  // Communication accounting (what Table IV measures).
  std::printf("\nbytes moved (selected channels):\n");
  std::printf("  aa:MedOrg    -> user:dr-grey : %6zu\n",
              sys.meter().sent("aa:MedOrg", "user:dr-grey"));
  std::printf("  aa:MedOrg    -> owner:hospital: %6zu\n",
              sys.meter().sent("aa:MedOrg", "owner:hospital"));
  std::printf("  owner:hospital -> server      : %6zu\n",
              sys.meter().sent("owner:hospital", "server"));
  std::printf("  server       -> user:nurse-kim: %6zu\n",
              sys.meter().sent("server", "user:nurse-kim"));
  return 0;
}
