// Quickstart: the raw multi-authority CP-ABE API in ~80 lines.
//
// Two attribute authorities, one data owner, one user. Encrypt a message
// under a cross-authority policy, decrypt it with the user's keys.
//
//   $ ./quickstart
#include <cstdio>

#include "abe/scheme.h"
#include "crypto/random.h"
#include "lsss/parser.h"

using namespace maabe;

int main() {
  // 1. Global setup: the pairing group. pbc_a512() matches the paper's
  //    512-bit testbed; test_small() is a fast insecure curve for demos.
  auto grp = pairing::Group::pbc_a512();
  crypto::Drbg rng = crypto::make_system_drbg();
  std::printf("group: 512-bit base field, %zu-byte G1, %zu-byte GT\n",
              grp->g1_size(), grp->gt_size());

  // 2. CA registers the user and assigns the global UID.
  const abe::UserPublicKey alice = abe::ca_register_user(*grp, "alice", rng);

  // 3. Two independent authorities set up (no global authority!).
  const abe::AuthorityVersionKey med = abe::aa_setup(*grp, "MedOrg", rng);
  const abe::AuthorityVersionKey trial = abe::aa_setup(*grp, "TrialAdmin", rng);

  // 4. The data owner generates its master key and shares SK_o with
  //    the authorities.
  const abe::OwnerMasterKey mk = abe::owner_gen(*grp, "hospital", rng);
  const abe::OwnerSecretShare sk_o = abe::owner_share(*grp, mk);

  // 5. Authorities publish public keys and issue Alice's secret keys.
  std::map<std::string, abe::AuthorityPublicKey> authority_pks{
      {"MedOrg", abe::aa_public_key(*grp, med)},
      {"TrialAdmin", abe::aa_public_key(*grp, trial)}};
  std::map<std::string, abe::PublicAttributeKey> attribute_pks;
  for (const std::string& name : {"Doctor", "Nurse"}) {
    const auto pk = abe::aa_attribute_key(*grp, med, name);
    attribute_pks.emplace(pk.attr.qualified(), pk);
  }
  {
    const auto pk = abe::aa_attribute_key(*grp, trial, "Researcher");
    attribute_pks.emplace(pk.attr.qualified(), pk);
  }

  std::map<std::string, abe::UserSecretKey> alice_keys;
  alice_keys.emplace("MedOrg", abe::aa_keygen(*grp, med, sk_o, alice, {"Doctor"}));
  alice_keys.emplace("TrialAdmin",
                     abe::aa_keygen(*grp, trial, sk_o, alice, {"Researcher"}));

  // 6. Encrypt under a cross-authority policy.
  const char* policy_text = "Doctor@MedOrg AND Researcher@TrialAdmin";
  const lsss::LsssMatrix policy =
      lsss::LsssMatrix::from_policy(lsss::parse_policy(policy_text));
  const pairing::GT message = grp->gt_random(rng);
  const abe::EncryptionResult enc =
      abe::encrypt(*grp, mk, "ct-1", message, policy, authority_pks, attribute_pks, rng);
  std::printf("encrypted under: %s\n", policy_text);

  // 7. Decrypt.
  const pairing::GT recovered = abe::decrypt(*grp, enc.ct, alice, alice_keys);
  std::printf("decryption %s\n", recovered == message ? "OK" : "FAILED");
  return recovered == message ? 0 : 1;
}
