// Generating custom pairing parameters.
//
// The library ships the paper's exact setting (PBC's 512-bit a.param)
// and a fast test curve, but deployments can mint their own type-A
// parameters at any size: a random prime group order r and a cofactor h
// (multiple of 4) such that q = h*r - 1 is prime. This example generates
// a fresh ~256-bit-field instance, verifies the pairing's algebra on it,
// and runs one encrypt/decrypt round trip.
//
//   $ ./custom_parameters
#include <cstdio>

#include "abe/scheme.h"
#include "crypto/random.h"
#include "lsss/parser.h"

using namespace maabe;

int main() {
  crypto::Drbg rng = crypto::make_system_drbg();

  std::printf("generating type-A parameters (r: 96 bits, q: 256 bits)...\n");
  const pairing::TypeAParams params = pairing::TypeAParams::generate(96, 256, rng);
  std::printf("  q = %s\n  r = %s\n", params.q.to_hex().c_str(),
              params.r.to_hex().c_str());
  auto grp = pairing::Group::create(params);

  // Sanity: bilinearity on the fresh curve.
  const pairing::Zr a = grp->zr_random(rng), b = grp->zr_random(rng);
  const bool bilinear =
      grp->pair(grp->g_pow(a), grp->g_pow(b)) == grp->gt_generator().pow(a * b);
  std::printf("bilinearity check: %s\n", bilinear ? "OK" : "FAILED");
  if (!bilinear) return 1;

  // One full scheme round trip on the custom group.
  const auto mk = abe::owner_gen(*grp, "owner", rng);
  const auto sk_o = abe::owner_share(*grp, mk);
  const auto vk = abe::aa_setup(*grp, "Org", rng);
  const auto user = abe::ca_register_user(*grp, "user", rng);
  std::map<std::string, abe::AuthorityPublicKey> apks{{"Org", abe::aa_public_key(*grp, vk)}};
  std::map<std::string, abe::PublicAttributeKey> attr_pks;
  const auto pk = abe::aa_attribute_key(*grp, vk, "Member");
  attr_pks.emplace(pk.attr.qualified(), pk);

  const pairing::GT m = grp->gt_random(rng);
  const auto enc = abe::encrypt(
      *grp, mk, "ct", m, lsss::LsssMatrix::from_policy(lsss::parse_policy("Member@Org")),
      apks, attr_pks, rng);
  std::map<std::string, abe::UserSecretKey> keys;
  keys.emplace("Org", abe::aa_keygen(*grp, vk, sk_o, user, {"Member"}));
  const bool ok = abe::decrypt(*grp, enc.ct, user, keys) == m;
  std::printf("encrypt/decrypt on custom curve: %s\n", ok ? "OK" : "FAILED");
  std::printf("element sizes: |Zr|=%zu |G1|=%zu |GT|=%zu bytes\n", grp->zr_size(),
              grp->g1_size(), grp->gt_size());
  return ok ? 0 : 1;
}
