// Integration tests for maabe-cli: drive the real binary through full
// workflows against a temporary keystore.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#ifndef MAABE_CLI_PATH
#error "MAABE_CLI_PATH must be defined by the build"
#endif

namespace {

namespace fs = std::filesystem;

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    home_ = fs::temp_directory_path() /
            ("maabe-cli-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(home_);
    fs::create_directories(home_);
  }

  void TearDown() override { fs::remove_all(home_); }

  int run(const std::string& args) {
    const std::string cmd = std::string(MAABE_CLI_PATH) + " --home " +
                            home_.string() + " " + args + " >/dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  void write_file(const std::string& name, const std::string& content) {
    std::ofstream out(home_ / name);
    out << content;
  }

  std::string read_file(const std::string& name) {
    std::ifstream in(home_ / name);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  static std::string read_path(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  fs::path home_;
};

TEST_F(CliTest, FullWorkflow) {
  ASSERT_EQ(run("init --test-curve"), 0);
  ASSERT_EQ(run("add-authority Med Doctor Nurse"), 0);
  ASSERT_EQ(run("add-authority Trial Researcher"), 0);
  ASSERT_EQ(run("add-owner hosp"), 0);
  ASSERT_EQ(run("add-user alice"), 0);
  ASSERT_EQ(run("grant Med alice Doctor"), 0);
  ASSERT_EQ(run("grant Trial alice Researcher"), 0);
  ASSERT_EQ(run("issue-key Med alice hosp"), 0);
  ASSERT_EQ(run("issue-key Trial alice hosp"), 0);

  write_file("in.txt", "hello multi-authority world");
  ASSERT_EQ(run("encrypt hosp f1 \"Doctor@Med AND Researcher@Trial\" " +
                (home_ / "in.txt").string()),
            0);
  ASSERT_EQ(run("decrypt alice f1 " + (home_ / "out.txt").string()), 0);
  EXPECT_EQ(read_file("out.txt"), "hello multi-authority world");
}

TEST_F(CliTest, AccessDeniedExitCode) {
  ASSERT_EQ(run("init --test-curve"), 0);
  ASSERT_EQ(run("add-authority Med Doctor Nurse"), 0);
  ASSERT_EQ(run("add-owner hosp"), 0);
  ASSERT_EQ(run("add-user bob"), 0);
  ASSERT_EQ(run("grant Med bob Nurse"), 0);
  ASSERT_EQ(run("issue-key Med bob hosp"), 0);
  write_file("in.txt", "doctors only");
  ASSERT_EQ(run("encrypt hosp f1 \"Doctor@Med\" " + (home_ / "in.txt").string()), 0);
  EXPECT_EQ(run("decrypt bob f1 " + (home_ / "out.txt").string()), 2);
}

TEST_F(CliTest, RevocationAcrossInvocations) {
  ASSERT_EQ(run("init --test-curve"), 0);
  ASSERT_EQ(run("add-authority Med Doctor"), 0);
  ASSERT_EQ(run("add-owner hosp"), 0);
  ASSERT_EQ(run("add-user alice"), 0);
  ASSERT_EQ(run("add-user carol"), 0);
  ASSERT_EQ(run("grant Med alice Doctor"), 0);
  ASSERT_EQ(run("grant Med carol Doctor"), 0);
  ASSERT_EQ(run("issue-key Med alice hosp"), 0);
  ASSERT_EQ(run("issue-key Med carol hosp"), 0);
  write_file("in.txt", "ward census");
  ASSERT_EQ(run("encrypt hosp f1 \"Doctor@Med\" " + (home_ / "in.txt").string()), 0);

  ASSERT_EQ(run("decrypt alice f1 " + (home_ / "o1.txt").string()), 0);
  ASSERT_EQ(run("revoke Med alice Doctor"), 0);
  // Alice: denied. Carol: still works via the update key.
  EXPECT_EQ(run("decrypt alice f1 " + (home_ / "o2.txt").string()), 2);
  EXPECT_EQ(run("decrypt carol f1 " + (home_ / "o3.txt").string()), 0);
  EXPECT_EQ(read_file("o3.txt"), "ward census");
}

TEST_F(CliTest, ErrorsAndUsage) {
  EXPECT_NE(run(""), 0);                           // usage
  EXPECT_NE(run("bogus-command"), 0);              // unknown command
  EXPECT_EQ(run("status"), 1);                     // not initialized
  ASSERT_EQ(run("init --test-curve"), 0);
  EXPECT_EQ(run("init --test-curve"), 1);          // double init
  EXPECT_EQ(run("add-authority"), 1);              // missing args
  EXPECT_EQ(run("add-user 'bad id'"), 1);          // invalid identifier
  EXPECT_EQ(run("grant NoAA nobody X"), 1);        // unknown authority
  EXPECT_EQ(run("decrypt nobody nofile out"), 1);  // unknown everything
  EXPECT_EQ(run("status"), 0);
}

TEST_F(CliTest, HybridCiphertextIdsSurviveTheKeystore) {
  // Regression: hybrid slot ct ids are "<file_id>/<component>"; the '/'
  // used to be rejected by Keystore::validate_id when the owner's
  // record was saved, breaking encrypt. The id must round-trip the
  // keystore (percent-encoded on disk) through encrypt, decrypt and a
  // revocation epoch.
  ASSERT_EQ(run("init --test-curve"), 0);
  ASSERT_EQ(run("add-authority Med Doctor"), 0);
  ASSERT_EQ(run("add-owner hosp"), 0);
  ASSERT_EQ(run("add-user alice"), 0);
  ASSERT_EQ(run("add-user carol"), 0);
  ASSERT_EQ(run("grant Med alice Doctor"), 0);
  ASSERT_EQ(run("grant Med carol Doctor"), 0);
  ASSERT_EQ(run("issue-key Med alice hosp"), 0);
  ASSERT_EQ(run("issue-key Med carol hosp"), 0);
  write_file("in.txt", "slot id has a slash");
  ASSERT_EQ(run("encrypt hosp f1 \"Doctor@Med\" " + (home_ / "in.txt").string()), 0);

  // The owner-side record/ciphertext for "f1/data" landed on disk as a
  // percent-encoded leaf, not a nested directory.
  EXPECT_TRUE(fs::exists(home_ / "owners" / "hosp" / "records" / "f1%2Fdata"));
  EXPECT_TRUE(fs::exists(home_ / "owners" / "hosp" / "cts" / "f1%2Fdata"));
  EXPECT_FALSE(fs::exists(home_ / "owners" / "hosp" / "records" / "f1" / "data"));

  ASSERT_EQ(run("decrypt alice f1 " + (home_ / "o1.txt").string()), 0);
  EXPECT_EQ(read_file("o1.txt"), "slot id has a slash");
  // Revocation must find the record under the encoded id too.
  ASSERT_EQ(run("revoke Med alice Doctor"), 0);
  EXPECT_EQ(run("decrypt alice f1 " + (home_ / "o2.txt").string()), 2);
  EXPECT_EQ(run("decrypt carol f1 " + (home_ / "o3.txt").string()), 0);
  EXPECT_EQ(read_file("o3.txt"), "slot id has a slash");
}

TEST_F(CliTest, DuplicateFileRejected) {
  ASSERT_EQ(run("init --test-curve"), 0);
  ASSERT_EQ(run("add-authority Med Doctor"), 0);
  ASSERT_EQ(run("add-owner hosp"), 0);
  write_file("in.txt", "x");
  ASSERT_EQ(run("encrypt hosp f1 \"Doctor@Med\" " + (home_ / "in.txt").string()), 0);
  EXPECT_EQ(run("encrypt hosp f1 \"Doctor@Med\" " + (home_ / "in.txt").string()), 1);
  EXPECT_EQ(run("inspect f1"), 0);
}

TEST_F(CliTest, ChaosFlagsDegradeTyped) {
  ASSERT_EQ(run("init --test-curve"), 0);
  ASSERT_EQ(run("add-authority Med Doctor"), 0);
  ASSERT_EQ(run("add-owner hosp"), 0);
  ASSERT_EQ(run("add-user alice"), 0);
  ASSERT_EQ(run("grant Med alice Doctor"), 0);
  ASSERT_EQ(run("issue-key Med alice hosp"), 0);
  write_file("in.txt", "chaos payload");
  ASSERT_EQ(run("encrypt hosp f1 \"Doctor@Med\" " + (home_ / "in.txt").string()), 0);

  // A channel that drops everything: the upload exhausts its retries and
  // exits with the generic (typed-error) code, and nothing is stored.
  write_file("in2.txt", "never arrives");
  EXPECT_EQ(run("--drop-rate 1.0 encrypt hosp f2 \"Doctor@Med\" " +
                (home_ / "in2.txt").string()),
            1);
  EXPECT_EQ(run("inspect f2"), 1);

  // Corruption on the download leg is caught by the frame checksum: a
  // typed failure, never wrong plaintext on disk.
  EXPECT_EQ(run("--corrupt-rate 1.0 --fault-seed 9 decrypt alice f1 " +
                (home_ / "bad.txt").string()),
            1);
  EXPECT_FALSE(fs::exists(home_ / "bad.txt"));

  // Moderate faults: retries recover, the plaintext is exact, and
  // --transport-stats reporting does not disturb the exit code.
  EXPECT_EQ(run("--drop-rate 0.4 --fault-seed 3 --transport-stats decrypt "
                "alice f1 " +
                (home_ / "out.txt").string()),
            0);
  EXPECT_EQ(read_file("out.txt"), "chaos payload");
}

TEST_F(CliTest, ChaosFlagsValidated) {
  EXPECT_EQ(run("--drop-rate 1.5 status"), 64);
  EXPECT_EQ(run("--corrupt-rate banana status"), 64);
}

TEST_F(CliTest, ClusterFlagsValidated) {
  EXPECT_EQ(run("--nodes 0 status"), 64);
  EXPECT_EQ(run("--replication banana status"), 64);
}

TEST_F(CliTest, ClusterPlacementReplicatesAndSurvivesShardLoss) {
  const std::string c = "--nodes 3 --replication 2 ";
  ASSERT_EQ(run("init --test-curve"), 0);
  ASSERT_EQ(run("add-authority Med Doctor"), 0);
  ASSERT_EQ(run("add-owner hosp"), 0);
  ASSERT_EQ(run("add-user alice"), 0);
  ASSERT_EQ(run("grant Med alice Doctor"), 0);
  ASSERT_EQ(run("issue-key Med alice hosp"), 0);
  write_file("in.txt", "replicated ward notes");
  const std::vector<std::string> files = {"f1", "f2", "f3", "f4"};
  for (const std::string& f : files)
    ASSERT_EQ(run(c + "encrypt hosp " + f + " \"Doctor@Med\" " +
                  (home_ / "in.txt").string()),
              0);

  // Every file lands on exactly R=2 node shards, byte-identical copies,
  // and never in the legacy server/ root.
  for (const std::string& f : files) {
    EXPECT_FALSE(fs::exists(home_ / "server" / f)) << f;
    std::vector<fs::path> copies;
    for (int n = 0; n < 3; ++n) {
      const fs::path p = home_ / "server" / ("node-" + std::to_string(n)) / f;
      if (fs::exists(p)) copies.push_back(p);
    }
    ASSERT_EQ(copies.size(), 2u) << f;
    EXPECT_EQ(read_path(copies[0]), read_path(copies[1])) << f;
  }

  ASSERT_EQ(run(c + "decrypt alice f1 " + (home_ / "o1.txt").string()), 0);
  EXPECT_EQ(read_file("o1.txt"), "replicated ward notes");
  ASSERT_EQ(run(c + "status"), 0);
  ASSERT_EQ(run(c + "inspect f1"), 0);

  // Losing one replica shard does not lose the file: the download fails
  // over to the surviving replica.
  for (int n = 0; n < 3; ++n) {
    const fs::path p = home_ / "server" / ("node-" + std::to_string(n)) / "f1";
    if (fs::exists(p)) {
      fs::remove(p);
      break;
    }
  }
  ASSERT_EQ(run(c + "decrypt alice f1 " + (home_ / "o2.txt").string()), 0);
  EXPECT_EQ(read_file("o2.txt"), "replicated ward notes");

  // Revocation re-encrypts through the ring (and re-replicates the
  // shard deleted above); the revoked user is locked out after.
  ASSERT_EQ(run(c + "revoke Med alice Doctor"), 0);
  EXPECT_EQ(run(c + "decrypt alice f1 " + (home_ / "o3.txt").string()), 2);
}

TEST_F(CliTest, TelemetryExportFlags) {
  ASSERT_EQ(run("init --test-curve"), 0);
  ASSERT_EQ(run("add-authority Med Doctor"), 0);
  ASSERT_EQ(run("add-owner hosp"), 0);
  ASSERT_EQ(run("add-user alice"), 0);
  ASSERT_EQ(run("grant Med alice Doctor"), 0);
  ASSERT_EQ(run("issue-key Med alice hosp"), 0);
  write_file("in.txt", "observed payload");
  ASSERT_EQ(run("encrypt hosp f1 \"Doctor@Med\" " + (home_ / "in.txt").string()), 0);

  ASSERT_EQ(run("--metrics-out " + (home_ / "metrics.prom").string() +
                " --trace-out " + (home_ / "trace.jsonl").string() +
                " decrypt alice f1 " + (home_ / "out.txt").string()),
            0);
  EXPECT_EQ(read_file("out.txt"), "observed payload");

  // The metrics file is a parseable Prometheus text snapshot: every
  // non-comment line is "<series> <integer>".
  const std::string prom = read_file("metrics.prom");
  ASSERT_FALSE(prom.empty());
  uint64_t pairings = 0;
  std::istringstream lines(prom);
  for (std::string line; std::getline(lines, line);) {
    if (line.empty() || line[0] == '#') continue;
    const size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    size_t parsed = 0;
    (void)std::stoll(line.substr(sp + 1), &parsed);  // throws on garbage
    EXPECT_EQ(parsed, line.size() - sp - 1) << line;
    if (line.compare(0, sp, "maabe_pairing_pairings_total") == 0)
      pairings = std::stoull(line.substr(sp + 1));
  }
  EXPECT_NE(prom.find("# TYPE maabe_pairing_pairings_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE maabe_engine_pairings_total counter"),
            std::string::npos);
  // A decrypt evaluates the access structure: pairings must have run.
  EXPECT_GT(pairings, 0u);
  // --metrics-out also switches per-op timing on, so the pairing
  // latency histogram recorded samples.
  EXPECT_NE(prom.find("# TYPE maabe_pairing_pair_ns histogram"),
            std::string::npos);
  EXPECT_EQ(prom.find("maabe_pairing_pair_ns_count 0\n"), std::string::npos);

  // The trace file holds the command's root span with its exit code.
  const std::string trace = read_file("trace.jsonl");
  EXPECT_NE(trace.find("\"name\":\"cli.decrypt\""), std::string::npos);
  EXPECT_NE(trace.find("\"exit_code\":\"0\""), std::string::npos);
  // The CLI drives the transport directly, so the root's children are
  // the send/frame spans of the server fetch.
  EXPECT_NE(trace.find("\"name\":\"transport.send\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"transport.frame\""), std::string::npos);
  EXPECT_NE(trace.find("\"outcome\":\"delivered\""), std::string::npos);
}

TEST_F(CliTest, TelemetryExportSurvivesCommandFailure) {
  ASSERT_EQ(run("init --test-curve"), 0);
  ASSERT_EQ(run("add-authority Med Doctor"), 0);
  ASSERT_EQ(run("add-owner hosp"), 0);
  ASSERT_EQ(run("add-user bob"), 0);
  ASSERT_EQ(run("grant Med bob Doctor"), 0);
  ASSERT_EQ(run("issue-key Med bob hosp"), 0);
  write_file("in.txt", "x");
  ASSERT_EQ(run("encrypt hosp f1 \"Doctor@Med\" " + (home_ / "in.txt").string()), 0);
  // Revoking bob makes his decrypt fail typed (exit 2); the metrics
  // snapshot must still be written on the error path.
  ASSERT_EQ(run("revoke Med bob Doctor"), 0);
  EXPECT_EQ(run("--metrics-out " + (home_ / "metrics.prom").string() +
                " decrypt bob f1 " + (home_ / "out.txt").string()),
            2);
  EXPECT_NE(read_file("metrics.prom").find("maabe_pairing_pairings_total"),
            std::string::npos);
}

}  // namespace
