// trace-lint integration: drive the real binary over JSONL traces and
// check the exit codes and violation classes (parseable lines, unique
// span ids, end_ns >= start_ns, no orphan parents, roots own their
// trace id).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "telemetry/trace.h"

#ifndef MAABE_TRACE_LINT_PATH
#error "MAABE_TRACE_LINT_PATH must be defined by the build"
#endif

namespace {

namespace fs = std::filesystem;

class TraceLintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("maabe-trace-lint-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  fs::path write(const std::string& name, const std::string& content) {
    const fs::path p = dir_ / name;
    std::ofstream out(p);
    out << content;
    return p;
  }

  int lint(const fs::path& file) {
    const std::string cmd = std::string(MAABE_TRACE_LINT_PATH) + " " +
                            file.string() + " >/dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  /// One valid span line in the emitter's format (ids as decimal
  /// strings, clocks as bare numbers).
  static std::string span_line(uint64_t trace, uint64_t span, uint64_t parent,
                               uint64_t start = 100, uint64_t end = 200) {
    maabe::telemetry::SpanRecord rec;
    rec.trace_id = trace;
    rec.span_id = span;
    rec.parent_id = parent;
    rec.name = "op";
    rec.start_ns = start;
    rec.end_ns = end;
    rec.wall_start_us = 42;
    return rec.to_json_line() + "\n";
  }

  fs::path dir_;
};

TEST_F(TraceLintTest, AcceptsAWellFormedTrace) {
  // Children emit before their parent (spans emit when they END).
  const fs::path p = write("good.jsonl", span_line(7, 9, 8, 120, 150) +
                                             span_line(7, 8, 7, 110, 160) +
                                             span_line(7, 7, 0, 100, 200));
  EXPECT_EQ(lint(p), 0);
}

TEST_F(TraceLintTest, AcceptsTheRealEmitterOutput) {
  // End-to-end: JsonLinesSink writes, trace-lint validates.
  const fs::path p = dir_ / "emitted.jsonl";
  auto& tracer = maabe::telemetry::Tracer::global();
  tracer.enable(maabe::telemetry::JsonLinesSink(p.string()));
  {
    maabe::telemetry::Span root = tracer.start_span("root");
    root.attr("outcome", "ok \"quoted\"");
    maabe::telemetry::Span child = tracer.start_span("child");
  }
  tracer.disable();  // flushes and closes the file
  EXPECT_EQ(lint(p), 0);
}

TEST_F(TraceLintTest, RejectsOrphanParent) {
  const fs::path p = write("orphan.jsonl", span_line(7, 8, 99));
  EXPECT_EQ(lint(p), 1);
}

TEST_F(TraceLintTest, RejectsDuplicateSpanIds) {
  const fs::path p =
      write("dup.jsonl", span_line(7, 7, 0) + span_line(7, 7, 0));
  EXPECT_EQ(lint(p), 1);
}

TEST_F(TraceLintTest, RejectsEndBeforeStart) {
  const fs::path p = write("clock.jsonl", span_line(7, 7, 0, 200, 100));
  EXPECT_EQ(lint(p), 1);
}

TEST_F(TraceLintTest, RejectsRootWithForeignTraceId) {
  // parent_id 0 claims "root", but the trace id belongs elsewhere.
  const fs::path p = write("root.jsonl", span_line(3, 7, 0));
  EXPECT_EQ(lint(p), 1);
}

TEST_F(TraceLintTest, RejectsChildInDifferentTraceThanParent) {
  const fs::path p =
      write("cross.jsonl", span_line(9, 8, 7) + span_line(7, 7, 0));
  EXPECT_EQ(lint(p), 1);
}

TEST_F(TraceLintTest, RejectsTruncatedAndFieldlessLines) {
  EXPECT_EQ(lint(write("trunc.jsonl", "{\"trace_id\":\"7\",\"span_id\"\n")), 1);
  EXPECT_EQ(lint(write("fields.jsonl", "{\"name\":\"op\"}\n")), 1);
  EXPECT_EQ(lint(write("zero.jsonl", span_line(7, 0, 0))), 1);
}

TEST_F(TraceLintTest, UsageAndMissingFileAreDistinctFromViolations) {
  const int status = std::system((std::string(MAABE_TRACE_LINT_PATH) +
                                  " >/dev/null 2>&1")
                                     .c_str());
  EXPECT_EQ(WIFEXITED(status) ? WEXITSTATUS(status) : -1, 2);  // usage
  EXPECT_EQ(lint(dir_ / "does-not-exist.jsonl"), 2);
}

}  // namespace
