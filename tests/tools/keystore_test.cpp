#include "keystore.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "abe/scheme.h"
#include "common/errors.h"
#include "lsss/parser.h"

namespace maabe::tools {
namespace {

namespace fs = std::filesystem;

class KeystoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    home_ = fs::temp_directory_path() /
            ("maabe-ks-test-" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(home_);
    store_ = std::make_unique<Keystore>(home_);
  }

  void TearDown() override { fs::remove_all(home_); }

  fs::path home_;
  std::unique_ptr<Keystore> store_;
  crypto::Drbg rng_{std::string_view("keystore-test")};
};

TEST_F(KeystoreTest, IdentifierValidation) {
  Keystore::validate_id("alice-01.test_X");
  EXPECT_THROW(Keystore::validate_id(""), SchemeError);
  EXPECT_THROW(Keystore::validate_id("a/b"), SchemeError);
  EXPECT_THROW(Keystore::validate_id(".."), SchemeError);
  EXPECT_THROW(Keystore::validate_id("a b"), SchemeError);
  EXPECT_THROW(Keystore::validate_id("a\nb"), SchemeError);
  EXPECT_THROW(Keystore::validate_id(std::string(200, 'a')), SchemeError);
}

TEST_F(KeystoreTest, CiphertextIdValidationAndEncoding) {
  // Hybrid slot ids carry a '/', which plain ids must not.
  Keystore::validate_ct_id("f1/data");
  Keystore::validate_ct_id("plain-id");
  EXPECT_THROW(Keystore::validate_ct_id(""), SchemeError);
  EXPECT_THROW(Keystore::validate_ct_id("."), SchemeError);
  EXPECT_THROW(Keystore::validate_ct_id(".."), SchemeError);
  EXPECT_THROW(Keystore::validate_ct_id("a b"), SchemeError);
  EXPECT_THROW(Keystore::validate_ct_id(std::string(200, 'a')), SchemeError);

  EXPECT_EQ(Keystore::encode_ct_id("f1/data"), "f1%2Fdata");
  EXPECT_EQ(Keystore::encode_ct_id("plain-id_0.9"), "plain-id_0.9");
  EXPECT_EQ(Keystore::encode_ct_id("a%b"), "a%25b");  // '%' itself escapes
  for (const std::string id : {"f1/data", "plain", "a/b/c", "a%2Fb"})
    EXPECT_EQ(Keystore::decode_ct_id(Keystore::encode_ct_id(id)), id) << id;
  EXPECT_THROW(Keystore::decode_ct_id("bad%"), SchemeError);
  EXPECT_THROW(Keystore::decode_ct_id("bad%2"), SchemeError);
  EXPECT_THROW(Keystore::decode_ct_id("bad%ZZ"), SchemeError);
}

TEST_F(KeystoreTest, HybridCiphertextIdsRoundTrip) {
  // Regression: "<file_id>/<component>" ct ids used to be rejected by
  // validate_id when used as keystore path leaves.
  store_->init_group(pairing::TypeAParams::test_small());
  auto grp = store_->group();
  const auto mk = abe::owner_gen(*grp, "hosp", rng_);
  store_->save_owner(mk, abe::owner_share(*grp, mk));

  const auto vk = abe::aa_setup(*grp, "Med", rng_);
  std::map<std::string, abe::AuthorityPublicKey> apks;
  apks.emplace("Med", abe::aa_public_key(*grp, vk));
  std::map<std::string, abe::PublicAttributeKey> attr_pks;
  const auto apk = abe::aa_attribute_key(*grp, vk, "Doctor");
  attr_pks.emplace(apk.attr.qualified(), apk);

  const std::string ct_id = "records/data";  // contains '/'
  const auto enc = abe::encrypt(
      *grp, mk, ct_id, grp->gt_random(rng_),
      lsss::LsssMatrix::from_policy(lsss::parse_policy("Doctor@Med")), apks,
      attr_pks, rng_);
  store_->save_record("hosp", enc.record);
  store_->save_owner_ciphertext("hosp", enc.ct);

  EXPECT_EQ(store_->load_record("hosp", ct_id).ct_id, ct_id);
  EXPECT_EQ(store_->load_owner_ciphertext("hosp", ct_id).id, ct_id);
  // Listing decodes the escaped path leaves back to the raw ids.
  EXPECT_EQ(store_->list_owner_ciphertexts("hosp"),
            std::vector<std::string>{ct_id});
}

TEST_F(KeystoreTest, UninitializedGroupThrows) {
  EXPECT_FALSE(store_->initialized());
  EXPECT_THROW(store_->group(), SchemeError);
}

TEST_F(KeystoreTest, GroupPersistsAcrossInstances) {
  store_->init_group(pairing::TypeAParams::test_small());
  EXPECT_TRUE(store_->initialized());
  auto g1 = store_->group();
  Keystore reopened(home_);
  auto g2 = reopened.group();
  EXPECT_EQ(g1->params().q, g2->params().q);
  EXPECT_EQ(g1->order(), g2->order());
  // Deterministic generator derivation: the two instances interoperate.
  EXPECT_EQ(g1->g().to_bytes(), g2->g().to_bytes());
}

TEST_F(KeystoreTest, UserRoundTrip) {
  store_->init_group(pairing::TypeAParams::test_small());
  auto grp = store_->group();
  const auto pk = abe::ca_register_user(*grp, "alice", rng_);
  store_->save_user_pk(pk);
  EXPECT_TRUE(store_->has_user("alice"));
  EXPECT_FALSE(store_->has_user("bob"));
  EXPECT_EQ(store_->load_user_pk("alice").pk, pk.pk);
  EXPECT_EQ(store_->list_users(), std::vector<std::string>{"alice"});
  EXPECT_THROW(store_->load_user_pk("bob"), SchemeError);
}

TEST_F(KeystoreTest, AuthorityStateRoundTrip) {
  store_->init_group(pairing::TypeAParams::test_small());
  auto grp = store_->group();
  AuthorityState state;
  state.vk = abe::aa_setup(*grp, "Med", rng_);
  state.universe = {"Doctor", "Nurse"};
  state.assignments = {{"alice", {"Doctor"}}, {"bob", {"Doctor", "Nurse"}}};
  store_->save_authority(state);

  const AuthorityState back = store_->load_authority("Med");
  EXPECT_EQ(back.vk.aid, "Med");
  EXPECT_EQ(back.vk.version, 1u);
  EXPECT_EQ(back.vk.alpha, state.vk.alpha);
  EXPECT_EQ(back.universe, state.universe);
  EXPECT_EQ(back.assignments, state.assignments);
  EXPECT_EQ(store_->list_authorities(), std::vector<std::string>{"Med"});
}

TEST_F(KeystoreTest, OwnerAndKeysRoundTrip) {
  store_->init_group(pairing::TypeAParams::test_small());
  auto grp = store_->group();
  const auto mk = abe::owner_gen(*grp, "hosp", rng_);
  const auto share = abe::owner_share(*grp, mk);
  store_->save_owner(mk, share);
  EXPECT_TRUE(store_->has_owner("hosp"));
  EXPECT_EQ(store_->load_owner_master("hosp").beta, mk.beta);
  EXPECT_EQ(store_->load_owner_share("hosp").r_over_beta, share.r_over_beta);

  const auto vk = abe::aa_setup(*grp, "Med", rng_);
  const auto user = abe::ca_register_user(*grp, "alice", rng_);
  const auto sk = abe::aa_keygen(*grp, vk, share, user, {"Doctor"});
  store_->save_user_key(sk);
  const auto loaded = store_->load_user_key("alice", "hosp", "Med");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->k, sk.k);
  EXPECT_FALSE(store_->load_user_key("alice", "hosp", "Gov").has_value());
  const auto by_owner = store_->load_user_keys_for_owner("alice", "hosp");
  EXPECT_EQ(by_owner.size(), 1u);
  EXPECT_TRUE(by_owner.contains("Med"));

  store_->delete_user_key("alice", "hosp", "Med");
  EXPECT_FALSE(store_->load_user_key("alice", "hosp", "Med").has_value());
}

TEST_F(KeystoreTest, ServerFilesRoundTrip) {
  store_->init_group(pairing::TypeAParams::test_small());
  const Bytes data = bytes_of("stored file bytes");
  store_->save_server_file("f1", data);
  EXPECT_TRUE(store_->has_server_file("f1"));
  EXPECT_EQ(store_->load_server_file("f1"), data);
  EXPECT_EQ(store_->list_server_files(), std::vector<std::string>{"f1"});
  // Overwrite allowed (re-encryption path rewrites files).
  store_->save_server_file("f1", bytes_of("v2"));
  EXPECT_EQ(string_of(store_->load_server_file("f1")), "v2");
}

TEST_F(KeystoreTest, CorruptGroupParamsRejected) {
  store_->init_group(pairing::TypeAParams::test_small());
  // Truncate the params file.
  const fs::path p = home_ / "group.params";
  fs::resize_file(p, fs::file_size(p) / 2);
  Keystore reopened(home_);
  EXPECT_THROW(reopened.group(), Error);
}

}  // namespace
}  // namespace maabe::tools
