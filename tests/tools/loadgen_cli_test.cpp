// Integration tests for maabe-loadgen: drive the real binary through a
// kill → traffic → rejoin scenario and check the recovery reporting
// surface (--recovery-stats table section, BENCH_workload_cli.json keys).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#ifndef MAABE_LOADGEN_PATH
#error "MAABE_LOADGEN_PATH must be defined by the build"
#endif

namespace {

namespace fs = std::filesystem;

class LoadgenCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("maabe-loadgen-test-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  /// Runs the binary inside the temp dir (it writes its JSON to cwd),
  /// forcing the fast curve; captures stdout to out.txt.
  int run(const std::string& args) {
    const std::string cmd = "cd " + dir_.string() + " && MAABE_BENCH_SMALL=1 " +
                            std::string(MAABE_LOADGEN_PATH) + " " + args +
                            " > out.txt 2>&1";
    const int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  std::string read_file(const std::string& name) {
    std::ifstream in(dir_ / name);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  fs::path dir_;
};

TEST_F(LoadgenCliTest, RejoinScenarioEmitsRecoveryStats) {
  ASSERT_EQ(run("--ops 50 --files 12 --kill-at 10 --kill-node 1 "
                "--rejoin-at 35 --recovery-stats --seed 7"),
            0);
  const std::string out = read_file("out.txt");
  EXPECT_NE(out.find("recovery:"), std::string::npos) << out;
  EXPECT_NE(out.find("1 rejoins"), std::string::npos) << out;

  const std::string json = read_file("BENCH_workload_cli.json");
  EXPECT_NE(json.find("\"rejoins\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"recovery_convergence_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"recovery_bytes_transferred\""), std::string::npos);
  EXPECT_NE(json.find("\"recovery_files_transferred\""), std::string::npos);
  EXPECT_NE(json.find("\"recovery_hints_replayed\""), std::string::npos);
  EXPECT_NE(json.find("\"recovery_epochs_resolved\""), std::string::npos);
}

TEST_F(LoadgenCliTest, NoRecoveryFlagKeepsTableQuiet) {
  ASSERT_EQ(run("--ops 20 --seed 3"), 0);
  const std::string out = read_file("out.txt");
  EXPECT_EQ(out.find("recovery:"), std::string::npos) << out;
  // The JSON always carries the keys (zeroed without a rejoin event) so
  // downstream guards can rely on their presence.
  const std::string json = read_file("BENCH_workload_cli.json");
  EXPECT_NE(json.find("\"rejoins\": 0"), std::string::npos) << json;
}

TEST_F(LoadgenCliTest, UnknownFlagFailsWithUsage) {
  EXPECT_EQ(run("--bogus"), 2);
  EXPECT_NE(read_file("out.txt").find("usage:"), std::string::npos);
}

}  // namespace
