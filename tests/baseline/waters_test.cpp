#include "baseline/waters.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "lsss/parser.h"

namespace maabe::baseline {
namespace {

using lsss::Attribute;
using lsss::LsssMatrix;
using lsss::parse_policy;
using pairing::Group;
using pairing::GT;

class WatersTest : public ::testing::Test {
 protected:
  WatersTest() : grp(Group::test_small()), rng("waters") {
    auto setup = waters_setup(*grp, rng);
    pk = setup.pk;
    msk = setup.msk;
  }

  WatersSecretKey keygen(std::initializer_list<Attribute> attrs) {
    return waters_keygen(*grp, pk, msk, std::set<Attribute>(attrs), rng);
  }

  std::shared_ptr<const Group> grp;
  crypto::Drbg rng;
  WatersPublicKey pk;
  WatersMasterKey msk;
};

TEST_F(WatersTest, EncryptDecryptRoundTrip) {
  const GT m = grp->gt_random(rng);
  const auto ct = waters_encrypt(
      *grp, pk, m, LsssMatrix::from_policy(parse_policy("Doctor@Org")), rng);
  EXPECT_EQ(waters_decrypt(*grp, ct, keygen({{"Doctor", "Org"}})), m);
}

TEST_F(WatersTest, PolicyEnforced) {
  const GT m = grp->gt_random(rng);
  const auto ct = waters_encrypt(
      *grp, pk, m,
      LsssMatrix::from_policy(parse_policy("Doctor@Org AND Senior@Org")), rng);
  EXPECT_THROW(waters_decrypt(*grp, ct, keygen({{"Doctor", "Org"}})), SchemeError);
  EXPECT_EQ(waters_decrypt(*grp, ct, keygen({{"Doctor", "Org"}, {"Senior", "Org"}})), m);
}

TEST_F(WatersTest, OrAndThresholdPolicies) {
  const GT m = grp->gt_random(rng);
  const auto or_ct = waters_encrypt(
      *grp, pk, m, LsssMatrix::from_policy(parse_policy("a@O OR b@O")), rng);
  EXPECT_EQ(waters_decrypt(*grp, or_ct, keygen({{"b", "O"}})), m);

  const auto th_ct = waters_encrypt(
      *grp, pk, m, LsssMatrix::from_policy(parse_policy("2of(a@O, b@O, c@O)")), rng);
  EXPECT_EQ(waters_decrypt(*grp, th_ct, keygen({{"a", "O"}, {"c", "O"}})), m);
  EXPECT_THROW(waters_decrypt(*grp, th_ct, keygen({{"c", "O"}})), SchemeError);
}

TEST_F(WatersTest, KeysAreRandomized) {
  // Two keys for the same attribute set use independent t values.
  const auto k1 = keygen({{"Doctor", "Org"}});
  const auto k2 = keygen({{"Doctor", "Org"}});
  EXPECT_NE(k1.l, k2.l);
  EXPECT_NE(k1.k, k2.k);
  // Both decrypt.
  const GT m = grp->gt_random(rng);
  const auto ct = waters_encrypt(
      *grp, pk, m, LsssMatrix::from_policy(parse_policy("Doctor@Org")), rng);
  EXPECT_EQ(waters_decrypt(*grp, ct, k1), m);
  EXPECT_EQ(waters_decrypt(*grp, ct, k2), m);
}

TEST_F(WatersTest, KeyMixingFailsAcrossUsers) {
  // The t-randomization prevents combining components of two keys:
  // take K, L from user 1 and K_x from user 2.
  const auto k1 = keygen({{"a", "O"}});
  const auto k2 = keygen({{"b", "O"}});
  WatersSecretKey frankenstein;
  frankenstein.k = k1.k;
  frankenstein.l = k1.l;
  frankenstein.kx = k1.kx;
  frankenstein.kx.insert(k2.kx.begin(), k2.kx.end());

  const GT m = grp->gt_random(rng);
  const auto ct = waters_encrypt(
      *grp, pk, m, LsssMatrix::from_policy(parse_policy("a@O AND b@O")), rng);
  EXPECT_NE(waters_decrypt(*grp, ct, frankenstein), m);
}

TEST_F(WatersTest, SingleAuthorityLimitationDemonstrated) {
  // What the paper's introduction argues: with one authority, ALL
  // attributes hang off one master key — there is no way for a second
  // organization to issue keys without receiving msk (full trust). Two
  // independent waters_setup instances produce incompatible systems:
  // keys from system 2 cannot decrypt ciphertexts of system 1 even for
  // identical attribute strings.
  auto setup2 = waters_setup(*grp, rng);
  const GT m = grp->gt_random(rng);
  const auto ct = waters_encrypt(
      *grp, pk, m, LsssMatrix::from_policy(parse_policy("Doctor@Org")), rng);
  const auto foreign_key =
      waters_keygen(*grp, setup2.pk, setup2.msk, {{"Doctor", "Org"}}, rng);
  EXPECT_NE(waters_decrypt(*grp, ct, foreign_key), m);
}

TEST_F(WatersTest, EmptyPolicyRejected) {
  // An empty policy cannot even be constructed through the parser; the
  // scheme guard is exercised through a default matrix.
  const GT m = grp->gt_random(rng);
  EXPECT_THROW(waters_encrypt(*grp, pk, m, lsss::LsssMatrix(), rng), SchemeError);
}

TEST_F(WatersTest, CiphertextShape) {
  const auto ct = waters_encrypt(
      *grp, pk, grp->gt_random(rng),
      LsssMatrix::from_policy(parse_policy("a@O AND b@O AND c@O")), rng);
  EXPECT_EQ(ct.ci.size(), 3u);
  EXPECT_EQ(ct.di.size(), 3u);
}

}  // namespace
}  // namespace baseline
