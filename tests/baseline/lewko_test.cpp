#include "baseline/lewko.h"

#include <gtest/gtest.h>

#include "baseline/lewko_serial.h"
#include "common/errors.h"
#include "lsss/parser.h"

namespace maabe::baseline {
namespace {

using lsss::LsssMatrix;
using lsss::parse_policy;
using pairing::Group;
using pairing::GT;

class LewkoTest : public ::testing::Test {
 protected:
  LewkoTest() : grp(Group::test_small()), rng("lewko-test") {
    med = lewko_authority_setup(*grp, "Med", {"Doctor", "Nurse"}, rng);
    gov = lewko_authority_setup(*grp, "Gov", {"Auditor"}, rng);
    for (const auto& [aid, auth] : {std::pair{"Med", &med}, {"Gov", &gov}}) {
      (void)aid;
      for (const auto& [handle, secret] : auth->secrets) {
        const size_t at = handle.rfind('@');
        const auto pk = lewko_attribute_pk(*grp, *auth, handle.substr(0, at));
        pks.emplace(handle, pk);
      }
    }
  }

  std::shared_ptr<const Group> grp;
  crypto::Drbg rng;
  LewkoAuthorityKeys med, gov;
  std::map<std::string, LewkoAttributePublicKey> pks;
};

TEST_F(LewkoTest, EncryptDecryptSingleAttribute) {
  const GT m = grp->gt_random(rng);
  const auto ct = lewko_encrypt(*grp, m,
                                LsssMatrix::from_policy(parse_policy("Doctor@Med")),
                                pks, rng);
  LewkoUserKey key;
  lewko_keygen(*grp, med, "alice", {"Doctor"}, &key);
  EXPECT_EQ(lewko_decrypt(*grp, ct, key), m);
}

TEST_F(LewkoTest, CrossAuthorityAnd) {
  const GT m = grp->gt_random(rng);
  const auto ct = lewko_encrypt(
      *grp, m, LsssMatrix::from_policy(parse_policy("Doctor@Med AND Auditor@Gov")),
      pks, rng);
  LewkoUserKey key;
  lewko_keygen(*grp, med, "alice", {"Doctor"}, &key);
  EXPECT_THROW(lewko_decrypt(*grp, ct, key), SchemeError);
  lewko_keygen(*grp, gov, "alice", {"Auditor"}, &key);
  EXPECT_EQ(lewko_decrypt(*grp, ct, key), m);
}

TEST_F(LewkoTest, OrPolicy) {
  const GT m = grp->gt_random(rng);
  const auto ct = lewko_encrypt(
      *grp, m, LsssMatrix::from_policy(parse_policy("Doctor@Med OR Auditor@Gov")),
      pks, rng);
  LewkoUserKey nurse_key;
  lewko_keygen(*grp, med, "carol", {"Nurse"}, &nurse_key);
  EXPECT_THROW(lewko_decrypt(*grp, ct, nurse_key), SchemeError);
  LewkoUserKey auditor_key;
  lewko_keygen(*grp, gov, "dave", {"Auditor"}, &auditor_key);
  EXPECT_EQ(lewko_decrypt(*grp, ct, auditor_key), m);
}

TEST_F(LewkoTest, CollusionMixedGidsFails) {
  // Alice has Doctor, Bob has Auditor. Pooling their key components
  // (different GIDs) must not decrypt — emulate by building a key map
  // with components minted for different GIDs.
  const GT m = grp->gt_random(rng);
  const auto ct = lewko_encrypt(
      *grp, m, LsssMatrix::from_policy(parse_policy("Doctor@Med AND Auditor@Gov")),
      pks, rng);
  LewkoUserKey alice, bob;
  lewko_keygen(*grp, med, "alice", {"Doctor"}, &alice);
  lewko_keygen(*grp, gov, "bob", {"Auditor"}, &bob);
  LewkoUserKey pooled;
  pooled.gid = "alice";
  pooled.k = alice.k;
  pooled.k.insert(bob.k.begin(), bob.k.end());
  EXPECT_NE(lewko_decrypt(*grp, ct, pooled), m);
  pooled.gid = "bob";
  EXPECT_NE(lewko_decrypt(*grp, ct, pooled), m);
}

TEST_F(LewkoTest, KeygenValidation) {
  LewkoUserKey key;
  lewko_keygen(*grp, med, "alice", {"Doctor"}, &key);
  EXPECT_THROW(lewko_keygen(*grp, med, "bob", {"Nurse"}, &key), SchemeError);
  EXPECT_THROW(lewko_keygen(*grp, med, "alice", {"NoSuchAttr"}, &key), SchemeError);
  EXPECT_THROW(lewko_attribute_pk(*grp, med, "NoSuchAttr"), SchemeError);
}

TEST_F(LewkoTest, EncryptRequiresAllAttributeKeys) {
  std::map<std::string, LewkoAttributePublicKey> partial = pks;
  partial.erase("Auditor@Gov");
  EXPECT_THROW(
      lewko_encrypt(*grp, grp->gt_random(rng),
                    LsssMatrix::from_policy(parse_policy("Auditor@Gov")), partial, rng),
      SchemeError);
}

TEST_F(LewkoTest, HashGidDeterministic) {
  EXPECT_EQ(lewko_hash_gid(*grp, "alice"), lewko_hash_gid(*grp, "alice"));
  EXPECT_NE(lewko_hash_gid(*grp, "alice"), lewko_hash_gid(*grp, "bob"));
}

TEST_F(LewkoTest, CiphertextShapeMatchesTableII) {
  // (l+1) GT elements and 2l G elements of group material.
  const auto ct = lewko_encrypt(
      *grp, grp->gt_random(rng),
      LsssMatrix::from_policy(parse_policy("Doctor@Med AND Nurse@Med AND Auditor@Gov")),
      pks, rng);
  EXPECT_EQ(ct.c1.size(), 3u);
  EXPECT_EQ(lewko_ciphertext_group_material_bytes(*grp, ct),
            4 * grp->gt_size() + 6 * grp->g1_size());
}

TEST_F(LewkoTest, SerializationRoundTrips) {
  const auto pk = pks.at("Doctor@Med");
  const auto pk2 = deserialize_lewko_attribute_pk(*grp, serialize(*grp, pk));
  EXPECT_EQ(pk2.attr.qualified(), "Doctor@Med");
  EXPECT_EQ(pk2.e_gg_alpha, pk.e_gg_alpha);
  EXPECT_EQ(pk2.g_y, pk.g_y);

  LewkoUserKey key;
  lewko_keygen(*grp, med, "alice", {"Doctor", "Nurse"}, &key);
  const auto key2 = deserialize_lewko_user_key(*grp, serialize(*grp, key));
  EXPECT_EQ(key2.gid, "alice");
  EXPECT_EQ(key2.k.size(), 2u);
  EXPECT_EQ(key2.k.at("Nurse@Med"), key.k.at("Nurse@Med"));

  const GT m = grp->gt_random(rng);
  const auto ct = lewko_encrypt(
      *grp, m, LsssMatrix::from_policy(parse_policy("Doctor@Med AND Nurse@Med")), pks,
      rng);
  const auto ct2 = deserialize_lewko_ciphertext(*grp, serialize(*grp, ct));
  EXPECT_EQ(lewko_decrypt(*grp, ct2, key), m);
}

TEST_F(LewkoTest, SerializationRejectsCorruption) {
  LewkoUserKey key;
  lewko_keygen(*grp, med, "alice", {"Doctor"}, &key);
  Bytes b = serialize(*grp, key);
  EXPECT_THROW(deserialize_lewko_ciphertext(*grp, b), WireError);
  b.pop_back();
  EXPECT_THROW(deserialize_lewko_user_key(*grp, b), WireError);
}

TEST_F(LewkoTest, RandomizedEncryption) {
  const GT m = grp->gt_random(rng);
  const LsssMatrix policy = LsssMatrix::from_policy(parse_policy("Doctor@Med"));
  const auto ct1 = lewko_encrypt(*grp, m, policy, pks, rng);
  const auto ct2 = lewko_encrypt(*grp, m, policy, pks, rng);
  EXPECT_NE(ct1.c0, ct2.c0);
}

TEST_F(LewkoTest, ThresholdPolicyWorks) {
  // Thresholds expand to OR-of-ANDs; attribute reuse is inherent, which
  // Lewko's scheme supports (fresh r_i per row).
  const auto all = lewko_authority_setup(*grp, "Uni", {"a", "b", "c"}, rng);
  std::map<std::string, LewkoAttributePublicKey> upks;
  for (const char* n : {"a", "b", "c"})
    upks.emplace(std::string(n) + "@Uni", lewko_attribute_pk(*grp, all, n));
  const GT m = grp->gt_random(rng);
  const auto ct = lewko_encrypt(
      *grp, m,
      LsssMatrix::from_policy(parse_policy("2of(a@Uni, b@Uni, c@Uni)"), true), upks,
      rng);
  LewkoUserKey key;
  lewko_keygen(*grp, all, "erin", {"a", "c"}, &key);
  EXPECT_EQ(lewko_decrypt(*grp, ct, key), m);
  LewkoUserKey weak;
  lewko_keygen(*grp, all, "frank", {"b"}, &weak);
  EXPECT_THROW(lewko_decrypt(*grp, ct, weak), SchemeError);
}

}  // namespace
}  // namespace maabe::baseline
