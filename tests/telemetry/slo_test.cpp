// SLO plane (DESIGN.md §16): spec parsing, rolling-window bad
// fractions, multi-window burn rates and the maabe_slo_* gauge export.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/slo.h"

namespace maabe::telemetry {
namespace {

TEST(Slo, ParseLatencyErrorRateAndExplicitObjectives) {
  const std::vector<SloSpec> specs = SloPlane::parse(
      "download_p99_ms=250,epoch_commit_ms=2000@0.95,error_rate=0.01");
  ASSERT_EQ(specs.size(), 3u);

  EXPECT_EQ(specs[0].name, "download_p99_ms");
  EXPECT_EQ(specs[0].kind, SloSpec::Kind::kLatency);
  EXPECT_DOUBLE_EQ(specs[0].threshold_ms, 250.0);
  EXPECT_DOUBLE_EQ(specs[0].objective, 0.99);  // latency default

  EXPECT_EQ(specs[1].name, "epoch_commit_ms");
  EXPECT_DOUBLE_EQ(specs[1].threshold_ms, 2000.0);
  EXPECT_DOUBLE_EQ(specs[1].objective, 0.95);  // @objective override

  EXPECT_EQ(specs[2].name, "error_rate");
  EXPECT_EQ(specs[2].kind, SloSpec::Kind::kErrorRate);
  // Error-rate value is the allowed bad fraction.
  EXPECT_DOUBLE_EQ(specs[2].objective, 0.99);
}

TEST(Slo, ParseSkipsEmptyTokensAndRejectsMalformedOnes) {
  EXPECT_TRUE(SloPlane::parse("").empty());
  EXPECT_EQ(SloPlane::parse("a_ms=1,,b_ms=2").size(), 2u);  // empty token ok

  EXPECT_THROW(SloPlane::parse("no_equals"), std::invalid_argument);
  EXPECT_THROW(SloPlane::parse("=250"), std::invalid_argument);
  EXPECT_THROW(SloPlane::parse("x_ms=abc"), std::invalid_argument);
  EXPECT_THROW(SloPlane::parse("x_ms=250@nope"), std::invalid_argument);
  EXPECT_THROW(SloPlane::parse("x_ms=0"), std::invalid_argument);     // <= 0 ms
  EXPECT_THROW(SloPlane::parse("x_ms=-5"), std::invalid_argument);
  EXPECT_THROW(SloPlane::parse("error_rate=1.0"), std::invalid_argument);
  EXPECT_THROW(SloPlane::parse("error_rate=-0.1"), std::invalid_argument);
  EXPECT_THROW(SloPlane::parse("x_ms=250@0"), std::invalid_argument);
  EXPECT_THROW(SloPlane::parse("x_ms=250@1"), std::invalid_argument);
}

TEST(Slo, LatencySamplesAreBadOnThresholdMissOrFailure) {
  SloTracker t({"lat_ms", SloSpec::Kind::kLatency, 100.0, 0.9});
  t.record(50.0, false);   // good
  t.record(100.0, false);  // good: threshold is strict >
  t.record(150.0, false);  // bad: over threshold
  t.record(10.0, true);    // bad: failed outright, latency irrelevant
  const SloStatus s = t.status();
  EXPECT_EQ(s.samples, 4u);
  EXPECT_EQ(s.bad, 2u);
}

TEST(Slo, ErrorRateSamplesIgnoreLatency) {
  SloTracker t({"error_rate", SloSpec::Kind::kErrorRate, 0.0, 0.9});
  t.record(99999.0, false);  // good no matter how slow
  t.record(0.1, true);       // bad
  const SloStatus s = t.status();
  EXPECT_EQ(s.samples, 2u);
  EXPECT_EQ(s.bad, 1u);
}

TEST(Slo, BurnRateIsBadFractionOverBudgetPerWindow) {
  // Short window 4, long window 8, objective 0.9 -> budget 0.1.
  SloTracker t({"lat_ms", SloSpec::Kind::kLatency, 100.0, 0.9}, 4, 8);
  // 4 old bad samples, then 4 recent good ones: the short window is
  // clean while the long window still remembers the burst.
  for (int i = 0; i < 4; ++i) t.record(500.0, false);
  for (int i = 0; i < 4; ++i) t.record(1.0, false);
  const SloStatus s = t.status();
  EXPECT_DOUBLE_EQ(s.bad_fraction_short, 0.0);
  EXPECT_DOUBLE_EQ(s.bad_fraction_long, 0.5);
  EXPECT_DOUBLE_EQ(s.burn_short, 0.0);
  EXPECT_DOUBLE_EQ(s.burn_long, 5.0);  // 0.5 / 0.1
  EXPECT_FALSE(s.met);                 // burn_long > 1
}

TEST(Slo, RollingWindowForgetsOldBadSamples) {
  SloTracker t({"lat_ms", SloSpec::Kind::kLatency, 100.0, 0.9}, 4, 8);
  for (int i = 0; i < 4; ++i) t.record(500.0, false);
  // Push the burst fully out of the long window.
  for (int i = 0; i < 8; ++i) t.record(1.0, false);
  const SloStatus s = t.status();
  EXPECT_EQ(s.samples, 12u);  // lifetime counters keep the burst...
  EXPECT_EQ(s.bad, 4u);
  EXPECT_DOUBLE_EQ(s.bad_fraction_long, 0.0);  // ...the window forgot it
  EXPECT_TRUE(s.met);
}

TEST(Slo, MetSemantics) {
  SloTracker empty({"lat_ms", SloSpec::Kind::kLatency, 100.0, 0.9}, 4, 8);
  EXPECT_TRUE(empty.status().met);  // no samples: trivially met

  // Exactly-at-budget burns at 1.0 and still counts as met. Objective
  // 0.75 keeps budget (0.25) and bad fraction (1/4) exact in binary.
  SloTracker at_budget({"lat_ms", SloSpec::Kind::kLatency, 100.0, 0.75}, 4, 4);
  for (int i = 0; i < 3; ++i) at_budget.record(1.0, false);
  at_budget.record(500.0, false);
  const SloStatus s = at_budget.status();
  EXPECT_DOUBLE_EQ(s.burn_long, 1.0);
  EXPECT_TRUE(s.met);
}

TEST(Slo, ZeroBudgetObjectiveUsesSentinelBurn) {
  // objective 1.0 cannot come from parse() (rejected), but a
  // hand-built spec must not divide by zero.
  SloTracker t({"error_rate", SloSpec::Kind::kErrorRate, 0.0, 1.0}, 4, 8);
  t.record(1.0, false);
  EXPECT_DOUBLE_EQ(t.status().burn_long, 0.0);
  t.record(1.0, true);
  EXPECT_GE(t.status().burn_long, 1e12);
  EXPECT_FALSE(t.status().met);
}

TEST(Slo, PlaneRoutesByNameAndDropsUnknownFeeds) {
  SloPlane plane(SloPlane::parse("download_p99_ms=100,error_rate=0.5"));
  ASSERT_FALSE(plane.empty());
  plane.observe("download_p99_ms", 250.0, false);  // bad for latency SLO
  plane.observe("error_rate", 250.0, false);       // good for error SLO
  plane.observe("never_configured", 1.0, true);    // dropped silently
  const std::vector<SloStatus> st = plane.status();
  ASSERT_EQ(st.size(), 2u);
  EXPECT_EQ(st[0].name, "download_p99_ms");
  EXPECT_EQ(st[0].samples, 1u);
  EXPECT_EQ(st[0].bad, 1u);
  EXPECT_EQ(st[1].name, "error_rate");
  EXPECT_EQ(st[1].samples, 1u);
  EXPECT_EQ(st[1].bad, 0u);
}

TEST(Slo, ExportPublishesMaabeSloGauges) {
  SloPlane plane(SloPlane::parse("slo_test_export_ms=100@0.9"));
  for (int i = 0; i < 3; ++i) plane.observe("slo_test_export_ms", 1.0, false);
  plane.observe("slo_test_export_ms", 500.0, false);
  plane.export_gauges();

  const Snapshot snap = MetricsRegistry::global().collect();
  // 1 bad / 4 samples = 0.25 bad fraction; budget 0.1 -> burn 2.5.
  EXPECT_EQ(snap.gauge("maabe_slo_slo_test_export_ms_met"), 0);
  EXPECT_EQ(snap.gauge("maabe_slo_slo_test_export_ms_burn_short_x1000"), 2500);
  EXPECT_EQ(snap.gauge("maabe_slo_slo_test_export_ms_burn_long_x1000"), 2500);
  EXPECT_EQ(snap.gauge("maabe_slo_slo_test_export_ms_samples"), 4);
}

TEST(Slo, DefaultPlaneIsEmptyAndInert) {
  SloPlane plane;
  EXPECT_TRUE(plane.empty());
  plane.observe("anything", 1.0, true);  // no-op, must not crash
  EXPECT_TRUE(plane.status().empty());
}

}  // namespace
}  // namespace maabe::telemetry
