// MetricsRegistry: sharded counters, histograms, interning, collector
// tokens and the Prometheus text exposition (DESIGN.md §11).
//
// The registry is process-wide, so every assertion on a shared metric
// is delta-based: snapshot before, act, snapshot after.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "crypto/drbg.h"
#include "engine/engine.h"
#include "pairing/group.h"
#include "telemetry/metrics.h"

namespace maabe::telemetry {
namespace {

TEST(Metrics, CounterSumsAcrossThreads) {
  Counter& c = MetricsRegistry::global().counter("test_counter_threads_total");
  const uint64_t before = c.value();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value() - before, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, InterningReturnsSameHandle) {
  MetricsRegistry& reg = MetricsRegistry::global();
  EXPECT_EQ(&reg.counter("test_interned_total"), &reg.counter("test_interned_total"));
  EXPECT_EQ(&reg.gauge("test_interned_gauge"), &reg.gauge("test_interned_gauge"));
  EXPECT_EQ(&reg.histogram("test_interned_hist"), &reg.histogram("test_interned_hist"));
}

TEST(Metrics, GaugeSetAndAdd) {
  Gauge& g = MetricsRegistry::global().gauge("test_gauge");
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-50);
  EXPECT_EQ(g.value(), -8);
}

TEST(Metrics, HistogramBucketsFollowPrometheusLeSemantics) {
  Histogram& h = MetricsRegistry::global().histogram("test_hist_buckets", {10, 100});
  // le=10 catches 3 and 10; le=100 catches 55; +Inf catches 1000.
  for (uint64_t v : {3u, 10u, 55u, 1000u}) h.observe(v);
  const Histogram::Data data = h.data();
  ASSERT_EQ(data.bounds, (std::vector<uint64_t>{10, 100}));
  ASSERT_EQ(data.counts.size(), 3u);
  EXPECT_EQ(data.counts[0], 2u);
  EXPECT_EQ(data.counts[1], 1u);
  EXPECT_EQ(data.counts[2], 1u);
  EXPECT_EQ(data.count, 4u);
  EXPECT_EQ(data.sum, 3u + 10 + 55 + 1000);
}

TEST(Metrics, HistogramBoundsFixedByFirstCaller) {
  MetricsRegistry& reg = MetricsRegistry::global();
  Histogram& h = reg.histogram("test_hist_first_bounds", {7});
  // A second intern with different bounds returns the existing handle.
  EXPECT_EQ(&reg.histogram("test_hist_first_bounds", {1, 2, 3}), &h);
  EXPECT_EQ(h.bounds(), std::vector<uint64_t>{7});
}

TEST(Metrics, PrometheusTextExposition) {
  MetricsRegistry& reg = MetricsRegistry::global();
  reg.counter("test_prom_total").add(3);
  reg.gauge("test_prom_gauge").set(-5);
  reg.histogram("test_prom_hist", {10}).observe(4);
  const std::string text = reg.collect().prometheus_text();
  EXPECT_NE(text.find("# TYPE test_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_prom_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("test_prom_gauge -5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_hist histogram"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_sum 4"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count 1"), std::string::npos);
}

// ---- Exposition conformance (DESIGN.md §16): every series gets HELP
// and TYPE lines, free-form registry names are sanitized to the
// Prometheus charset, and histograms expose cumulative _bucket series
// in ascending le order plus _sum/_count.
TEST(Metrics, ExpositionEmitsHelpBeforeTypeForEverySeries) {
  Snapshot snap;
  snap.counters["test_help_total"] = 1;
  snap.gauges["test_help_gauge"] = 2;
  Histogram::Data h;
  h.bounds = {10};
  h.counts = {1, 0};
  h.count = 1;
  h.sum = 4;
  snap.histograms["test_help_hist"] = h;
  const std::string text = snap.prometheus_text();
  for (const char* n : {"test_help_total", "test_help_gauge", "test_help_hist"}) {
    const size_t help = text.find("# HELP " + std::string(n) + " ");
    const size_t type = text.find("# TYPE " + std::string(n) + " ");
    ASSERT_NE(help, std::string::npos) << n;
    ASSERT_NE(type, std::string::npos) << n;
    EXPECT_LT(help, type) << n << ": HELP must precede TYPE";
  }
}

TEST(Metrics, ExpositionSanitizesNonPrometheusNameCharacters) {
  Snapshot snap;
  // Collector contributions interpolate node names: '-' and '.' are
  // illegal in a metric name, ':' is legal.
  snap.gauges["maabe_node:node-1.lag"] = 3;
  snap.counters["9starts_with_digit"] = 1;
  const std::string text = snap.prometheus_text();
  EXPECT_NE(text.find("maabe_node:node_1_lag 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE maabe_node:node_1_lag gauge"), std::string::npos);
  EXPECT_EQ(text.find("node-1.lag"), std::string::npos);
  EXPECT_NE(text.find("_9starts_with_digit 1"), std::string::npos);
}

TEST(Metrics, ExpositionHistogramBucketsAreCumulativeAscending) {
  Snapshot snap;
  Histogram::Data h;
  h.bounds = {10, 100, 1000};
  h.counts = {2, 3, 0, 1};  // per-bucket, last is the overflow bucket
  h.count = 6;
  h.sum = 1234;
  snap.histograms["test_cum_hist"] = h;
  const std::string text = snap.prometheus_text();
  // Cumulative: each bucket includes everything below; +Inf == _count.
  const size_t b10 = text.find("test_cum_hist_bucket{le=\"10\"} 2\n");
  const size_t b100 = text.find("test_cum_hist_bucket{le=\"100\"} 5\n");
  const size_t b1000 = text.find("test_cum_hist_bucket{le=\"1000\"} 5\n");
  const size_t binf = text.find("test_cum_hist_bucket{le=\"+Inf\"} 6\n");
  ASSERT_NE(b10, std::string::npos);
  ASSERT_NE(b100, std::string::npos);
  ASSERT_NE(b1000, std::string::npos);
  ASSERT_NE(binf, std::string::npos);
  EXPECT_LT(b10, b100);
  EXPECT_LT(b100, b1000);
  EXPECT_LT(b1000, binf);
  EXPECT_NE(text.find("test_cum_hist_sum 1234"), std::string::npos);
  EXPECT_NE(text.find("test_cum_hist_count 6"), std::string::npos);
}

TEST(Metrics, CollectorRunsUntilTokenReset) {
  MetricsRegistry& reg = MetricsRegistry::global();
  MetricsRegistry::CollectorToken token = reg.register_collector(
      [](Snapshot& snap) { snap.add_gauge("test_collector_gauge", 11); });
  EXPECT_EQ(reg.collect().gauge("test_collector_gauge"), 11);
  token.reset();
  EXPECT_EQ(reg.collect().gauge("test_collector_gauge"), 0);
}

TEST(Metrics, AddGaugeMergesAcrossCollectors) {
  MetricsRegistry& reg = MetricsRegistry::global();
  MetricsRegistry::CollectorToken a = reg.register_collector(
      [](Snapshot& snap) { snap.add_gauge("test_merged_gauge", 2); });
  MetricsRegistry::CollectorToken b = reg.register_collector(
      [](Snapshot& snap) { snap.add_gauge("test_merged_gauge", 3); });
  EXPECT_EQ(reg.collect().gauge("test_merged_gauge"), 5);
}

TEST(Metrics, SnapshotLookupsAreAbsentSafe) {
  const Snapshot snap = MetricsRegistry::global().collect();
  EXPECT_EQ(snap.counter("test_never_registered_total"), 0u);
  EXPECT_EQ(snap.gauge("test_never_registered_gauge"), 0);
}

// The registry's engine counters move in lockstep with EngineStats: the
// two views of the same batch must agree (the CLI's --metrics-out
// acceptance check relies on this).
TEST(Metrics, EngineCountersMatchEngineStats) {
  auto grp = pairing::Group::test_small();
  engine::CryptoEngine& eng = engine::CryptoEngine::for_group(*grp);
  const Snapshot before = MetricsRegistry::global().collect();
  const engine::EngineStats stats_before = eng.stats();

  crypto::Drbg rng(std::string_view("metrics-match"));
  std::vector<pairing::Zr> exps;
  for (int i = 0; i < 6; ++i) exps.push_back(grp->zr_random(rng));
  (void)eng.g_pow_batch(exps);
  (void)eng.egg_pow_batch(exps);

  const Snapshot after = MetricsRegistry::global().collect();
  const engine::EngineStats delta = eng.stats() - stats_before;
  EXPECT_EQ(delta.g1_exps, 6u);
  EXPECT_EQ(delta.gt_exps, 6u);
  EXPECT_EQ(after.counter("maabe_engine_g1_exps_total") -
                before.counter("maabe_engine_g1_exps_total"),
            delta.g1_exps);
  EXPECT_EQ(after.counter("maabe_engine_gt_exps_total") -
                before.counter("maabe_engine_gt_exps_total"),
            delta.gt_exps);
  EXPECT_EQ(after.counter("maabe_engine_batches_total") -
                before.counter("maabe_engine_batches_total"),
            delta.batches);
}

// Per-op pairing histograms only record when op timing is on; the
// always-on op counters move either way.
TEST(Metrics, OpTimingFlagGatesPairingHistograms) {
  auto grp = pairing::Group::test_small();
  crypto::Drbg rng(std::string_view("op-timing"));
  MetricsRegistry& reg = MetricsRegistry::global();

  ASSERT_FALSE(op_timing_enabled());  // default off
  const uint64_t hist_before = reg.collect().histograms["maabe_pairing_g1_exp_ns"].count;
  const uint64_t ctr_before = reg.collect().counter("maabe_pairing_g1_exps_total");
  (void)grp->g_pow(grp->zr_random(rng));
  EXPECT_EQ(reg.collect().histograms["maabe_pairing_g1_exp_ns"].count, hist_before);
  EXPECT_GT(reg.collect().counter("maabe_pairing_g1_exps_total"), ctr_before);

  set_op_timing(true);
  (void)grp->g_pow(grp->zr_random(rng));
  set_op_timing(false);
  EXPECT_GT(reg.collect().histograms["maabe_pairing_g1_exp_ns"].count, hist_before);
}

}  // namespace
}  // namespace maabe::telemetry
