// Per-node flight recorder (DESIGN.md §16): fixed-capacity rings
// retaining the last N spans/events per node, armed via the process-
// wide FlightRegistry independently of the JSONL trace sink.
//
// The registry is process-wide, so every test scopes its arming with
// ArmedFlightRecorder and uses distinct node names; arm() clears
// retained entries, so tests do not see each other's records.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/flight_recorder.h"
#include "telemetry/trace.h"

namespace maabe::telemetry {
namespace {

FlightEntry make_entry(uint64_t seq, const std::string& name) {
  FlightEntry e;
  e.seq = seq;
  e.kind = FlightEntry::Kind::kSpan;
  e.node = "ring-test";
  e.name = name;
  return e;
}

TEST(FlightRecorder, DisarmedByDefaultAndDropsRecords) {
  ASSERT_FALSE(FlightRegistry::armed());
  FlightRegistry::global().record_event("flight-disarmed",
                                        FlightEntry::Kind::kFaultInjected,
                                        "dropped", "should not be retained");
  EXPECT_TRUE(FlightRegistry::global().entries("flight-disarmed").empty());
}

TEST(FlightRecorder, RingKeepsNewestWhenLapped) {
  FlightRecorder ring(4);
  ASSERT_EQ(ring.capacity(), 4u);
  for (uint64_t i = 1; i <= 10; ++i)
    ring.record(make_entry(i, "e" + std::to_string(i)));
  const std::vector<FlightEntry> got = ring.snapshot();
  ASSERT_EQ(got.size(), 4u);
  // Oldest first, and only the newest four survive the laps.
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].seq, 7u + i);
    EXPECT_EQ(got[i].name, "e" + std::to_string(7 + i));
  }
}

TEST(FlightRecorder, ConcurrentWritersLoseNoSlotAndStayOrdered) {
  FlightRecorder ring(64);
  std::atomic<uint64_t> next_seq{1};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i)
        ring.record(make_entry(next_seq.fetch_add(1), "w"));
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<FlightEntry> got = ring.snapshot();
  ASSERT_EQ(got.size(), 64u);
  // snapshot() is sorted by global seq; every retained entry is unique.
  for (size_t i = 1; i < got.size(); ++i) EXPECT_GT(got[i].seq, got[i - 1].seq);
  // Lapped writers lose to newer entries: the retained window must sit
  // in the top portion of the sequence space.
  EXPECT_GT(got.front().seq, static_cast<uint64_t>(kThreads * kPerThread) / 2);
}

TEST(FlightRecorder, EventsCarryWallClockAndTypedKind) {
  ArmedFlightRecorder armed;
  FlightRegistry::global().record_event("flight-events",
                                        FlightEntry::Kind::kOverloadShed,
                                        "parked_rejected", "queue at cap");
  const std::vector<FlightEntry> got =
      FlightRegistry::global().entries("flight-events");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].kind, FlightEntry::Kind::kOverloadShed);
  EXPECT_EQ(got[0].name, "parked_rejected");
  EXPECT_EQ(got[0].detail, "queue at cap");
  EXPECT_GT(got[0].wall_us, 0u);  // wall anchor, not steady clock
  EXPECT_EQ(got[0].span_id, 0u);  // events carry no span ids
}

TEST(FlightRecorder, SpansRouteByNodeIdAttrWithProcessFallback) {
  ArmedFlightRecorder armed;
  SpanRecord rec;
  rec.trace_id = 7;
  rec.span_id = 7;
  rec.name = "routed.span";
  rec.attrs.emplace_back("node_id", "flight-node-a");
  FlightRegistry::global().record_span(rec);

  SpanRecord unattributed;
  unattributed.trace_id = 8;
  unattributed.span_id = 8;
  unattributed.name = "process.span";
  FlightRegistry::global().record_span(unattributed);

  const auto a = FlightRegistry::global().entries("flight-node-a");
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].name, "routed.span");
  EXPECT_EQ(a[0].span_id, 7u);

  const auto proc = FlightRegistry::global().entries("process");
  ASSERT_FALSE(proc.empty());
  EXPECT_EQ(proc.back().name, "process.span");
}

TEST(FlightRecorder, ArmedRegistryTeesSpansWithSinkDisabled) {
  ASSERT_FALSE(Tracer::global().enabled());
  ArmedFlightRecorder armed;
  {
    Span s = Tracer::global().start_span("teed.without_sink");
    ASSERT_TRUE(s.active());  // recording() is on because armed
    s.attr("node_id", "flight-tee");
    s.attr("outcome", "ok");
  }
  const auto got = FlightRegistry::global().entries("flight-tee");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].name, "teed.without_sink");
  EXPECT_NE(got[0].trace_id, 0u);
  EXPECT_GE(got[0].end_ns, got[0].start_ns);
  // node_id is consumed for routing; the other attrs land in detail.
  EXPECT_NE(got[0].detail.find("outcome=ok"), std::string::npos);
  EXPECT_EQ(got[0].detail.find("node_id"), std::string::npos);
}

TEST(FlightRecorder, ArmClearsPriorRecordingAndDisarmRestoresDefault) {
  FlightRegistry& reg = FlightRegistry::global();
  reg.arm();
  reg.record_event("flight-rearm", FlightEntry::Kind::kEpochDecision,
                   "commit", "epoch 1");
  ASSERT_EQ(reg.entries("flight-rearm").size(), 1u);
  reg.arm();  // fresh recording: prior entries cleared
  EXPECT_TRUE(reg.entries("flight-rearm").empty());
  reg.disarm();
  EXPECT_FALSE(FlightRegistry::armed());
  {
    Span s = Tracer::global().start_span("after.disarm");
    EXPECT_FALSE(s.active());  // sink off + disarmed = inert spans again
  }
}

TEST(FlightRecorder, DumpIsHumanReadableWithHeaderAndEntryLines) {
  ArmedFlightRecorder armed;
  FlightRegistry& reg = FlightRegistry::global();
  reg.record_event("flight-dump", FlightEntry::Kind::kFaultInjected,
                   "drop", "owner:hosp -> node-1");
  reg.record_event("flight-dump", FlightEntry::Kind::kEpochDecision,
                   "commit", "epoch 3");
  const std::string dump = reg.dump("flight-dump");
  EXPECT_NE(dump.find("flight-recorder flight-dump: 2 entries"),
            std::string::npos);
  EXPECT_NE(dump.find("drop"), std::string::npos);
  EXPECT_NE(dump.find("owner:hosp -> node-1"), std::string::npos);
  EXPECT_NE(dump.find("commit"), std::string::npos);
  // nodes() lists the ring we just created.
  const std::vector<std::string> nodes = reg.nodes();
  bool found = false;
  for (const std::string& n : nodes) found = found || n == "flight-dump";
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace maabe::telemetry
