// Span/Tracer semantics plus the end-to-end acceptance scenario: one
// fault-injected revocation epoch produces a causally-linked span tree
// — revocation root -> transport send/frames (including every scripted
// retry) -> server epoch -> per-slot re-encrypts — under a single
// trace id (DESIGN.md §11).
#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "cloud/system.h"
#include "common/errors.h"
#include "telemetry/trace.h"

namespace maabe::telemetry {
namespace {

using cloud::CloudSystem;
using cloud::FaultPlan;
using cloud::LoopbackTransport;
using pairing::Group;

/// Installs a vector-collecting sink for the test's lifetime.
class SpanCollector {
 public:
  SpanCollector() {
    Tracer::global().enable(
        [this](const SpanRecord& rec) { records_.push_back(rec); });
  }
  ~SpanCollector() { Tracer::global().disable(); }
  const std::vector<SpanRecord>& records() const { return records_; }

 private:
  std::vector<SpanRecord> records_;
};

std::string attr_of(const SpanRecord& rec, const std::string& key) {
  for (const auto& [k, v] : rec.attrs) {
    if (k == key) return v;
  }
  return "";
}

TEST(Trace, DisabledTracerHandsOutInertSpans) {
  ASSERT_FALSE(Tracer::global().enabled());
  Span span = Tracer::global().start_span("untraced");
  EXPECT_FALSE(span.active());
  EXPECT_FALSE(span.context().valid());
  span.attr("k", "v");  // all no-ops
  span.end();
}

TEST(Trace, SameThreadNestingLinksParentAndChild) {
  SpanCollector sink;
  {
    Span root = Tracer::global().start_span("root");
    ASSERT_TRUE(root.active());
    {
      Span child = Tracer::global().start_span("child");
      ASSERT_TRUE(child.active());
      EXPECT_EQ(child.context().trace_id, root.context().trace_id);
    }
  }
  ASSERT_EQ(sink.records().size(), 2u);  // child emitted first (ends first)
  const SpanRecord& child = sink.records()[0];
  const SpanRecord& root = sink.records()[1];
  EXPECT_EQ(child.name, "child");
  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_EQ(child.parent_id, root.span_id);
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_LE(root.start_ns, child.start_ns);
}

TEST(Trace, EndRestoresPreviousCurrentSpan) {
  SpanCollector sink;
  Span root = Tracer::global().start_span("root");
  const SpanContext root_ctx = root.context();
  {
    Span child = Tracer::global().start_span("child");
    EXPECT_EQ(Tracer::current().span_id, child.context().span_id);
  }
  EXPECT_EQ(Tracer::current().span_id, root_ctx.span_id);
}

TEST(Trace, ExplicitParentCrossesThreads) {
  SpanCollector sink;
  SpanContext parent_ctx;
  {
    Span parent = Tracer::global().start_span("parent");
    parent_ctx = parent.context();
    std::thread worker([&] {
      Span child = Tracer::global().start_child("worker", parent_ctx);
      ASSERT_TRUE(child.active());
      // Non-scoped: the worker thread's current span stays empty.
      EXPECT_FALSE(Tracer::current().valid());
    });
    worker.join();
  }
  ASSERT_EQ(sink.records().size(), 2u);
  EXPECT_EQ(sink.records()[0].name, "worker");
  EXPECT_EQ(sink.records()[0].parent_id, parent_ctx.span_id);
  EXPECT_EQ(sink.records()[0].trace_id, parent_ctx.trace_id);
}

TEST(Trace, InvalidExplicitParentYieldsInertSpan) {
  SpanCollector sink;
  Span span = Tracer::global().start_child("orphan", SpanContext{});
  EXPECT_FALSE(span.active());
  span.end();
  EXPECT_TRUE(sink.records().empty());
}

TEST(Trace, JsonLineFormat) {
  SpanRecord rec;
  rec.trace_id = 7;
  rec.span_id = 8;
  rec.parent_id = 7;
  rec.name = "op \"quoted\"";
  rec.start_ns = 100;
  rec.end_ns = 250;
  rec.attrs.emplace_back("outcome", "delivered");
  const std::string line = rec.to_json_line();
  EXPECT_NE(line.find("\"trace_id\":\"7\""), std::string::npos);
  EXPECT_NE(line.find("\"span_id\":\"8\""), std::string::npos);
  EXPECT_NE(line.find("\"parent_id\":\"7\""), std::string::npos);
  EXPECT_NE(line.find("\"name\":\"op \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(line.find("\"start_ns\":100"), std::string::npos);
  EXPECT_NE(line.find("\"end_ns\":250"), std::string::npos);
  EXPECT_NE(line.find("\"outcome\":\"delivered\""), std::string::npos);
}

// ---- The acceptance scenario -----------------------------------------
// A revocation epoch whose server hop fails twice (scripted) before
// succeeding must yield ONE trace containing: the revoke root span, a
// transport.send with three attempts, three transport.frame spans (two
// scripted failures + one delivery), the server epoch span, and one
// slot span per re-encrypted ciphertext slot — every parent chain
// terminating at the root.
TEST(Trace, FaultInjectedRevocationEpochYieldsLinkedSpanTree) {
  auto grp = Group::test_small();
  CloudSystem sys(grp, "trace-acceptance");
  sys.add_authority("Med", {"Doctor"});
  sys.add_owner("hosp");
  sys.publish_authority_keys("Med", "hosp");
  for (const char* uid : {"alice", "bob"}) {
    sys.add_user(uid);
    sys.assign_attributes("Med", uid, {"Doctor"});
    sys.issue_user_key("Med", uid, "hosp");
  }
  sys.upload("hosp", "f1",
             {{"a", bytes_of("alpha"), "Doctor@Med"},
              {"b", bytes_of("bravo"), "Doctor@Med"}});

  auto& loopback = dynamic_cast<LoopbackTransport&>(sys.transport());
  loopback.faults().fail_next("owner:hosp", "server", 2);

  size_t slots = 0;
  std::vector<SpanRecord> records;
  {
    SpanCollector sink;
    slots = sys.revoke_attribute("Med", "bob", "Doctor");
    records = sink.records();
  }
  ASSERT_EQ(slots, 2u);  // both slots of f1 re-encrypted in this call

  // Index the tree and find the root.
  std::map<uint64_t, const SpanRecord*> by_id;
  const SpanRecord* root = nullptr;
  for (const SpanRecord& rec : records) {
    by_id[rec.span_id] = &rec;
    if (rec.name == "system.revoke_attribute") {
      ASSERT_EQ(root, nullptr) << "two revocation roots";
      root = &rec;
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(attr_of(*root, "attribute"), "Doctor");

  // One trace id everywhere; every parent chain reaches the root.
  for (const SpanRecord& rec : records) {
    EXPECT_EQ(rec.trace_id, root->trace_id) << rec.name;
    const SpanRecord* cur = &rec;
    int hops = 0;
    while (cur->parent_id != 0 && hops < 64) {
      const auto it = by_id.find(cur->parent_id);
      ASSERT_NE(it, by_id.end()) << rec.name << ": dangling parent";
      cur = it->second;
      ++hops;
    }
    EXPECT_EQ(cur->span_id, root->span_id) << rec.name << ": chain misses root";
  }

  // The epoch hop: a send with 3 attempts, whose channel saw two
  // scripted failures and then one delivery.
  const SpanRecord* epoch_send = nullptr;
  size_t scripted = 0, delivered = 0;
  for (const SpanRecord& rec : records) {
    if (rec.name == "transport.send" && attr_of(rec, "from") == "owner:hosp" &&
        attr_of(rec, "to") == "server") {
      epoch_send = &rec;
    }
    if (rec.name == "transport.frame" && attr_of(rec, "from") == "owner:hosp" &&
        attr_of(rec, "to") == "server") {
      if (attr_of(rec, "outcome") == "scripted_failure") ++scripted;
      if (attr_of(rec, "outcome") == "delivered") ++delivered;
    }
  }
  ASSERT_NE(epoch_send, nullptr);
  EXPECT_EQ(attr_of(*epoch_send, "attempts"), "3");
  EXPECT_EQ(attr_of(*epoch_send, "outcome"), "ok");
  EXPECT_EQ(scripted, 2u);
  EXPECT_EQ(delivered, 1u);

  // The server epoch and its per-slot children (pool workers, explicit
  // parent) are in the same tree.
  const SpanRecord* epoch = nullptr;
  std::vector<const SpanRecord*> slot_spans;
  for (const SpanRecord& rec : records) {
    if (rec.name == "server.reencrypt_epoch") {
      ASSERT_EQ(epoch, nullptr) << "two epochs";
      epoch = &rec;
    }
    if (rec.name == "server.reencrypt_slot") slot_spans.push_back(&rec);
  }
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(attr_of(*epoch, "outcome"), "committed");
  EXPECT_EQ(attr_of(*epoch, "slots"), "2");
  ASSERT_EQ(slot_spans.size(), 2u);
  for (const SpanRecord* slot : slot_spans) {
    EXPECT_EQ(slot->parent_id, epoch->span_id);
  }
}

}  // namespace
}  // namespace maabe::telemetry
