// Span/Tracer semantics plus the end-to-end acceptance scenario: one
// fault-injected revocation epoch produces a causally-linked span tree
// — revocation root -> transport send/frames (including every scripted
// retry) -> server epoch -> per-slot re-encrypts — under a single
// trace id (DESIGN.md §11).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cloud/system.h"
#include "common/errors.h"
#include "telemetry/trace.h"

namespace maabe::telemetry {
namespace {

using cloud::CloudSystem;
using cloud::FaultPlan;
using cloud::LoopbackTransport;
using pairing::Group;

/// Installs a vector-collecting sink for the test's lifetime.
class SpanCollector {
 public:
  SpanCollector() {
    Tracer::global().enable(
        [this](const SpanRecord& rec) { records_.push_back(rec); });
  }
  ~SpanCollector() { Tracer::global().disable(); }
  const std::vector<SpanRecord>& records() const { return records_; }

 private:
  std::vector<SpanRecord> records_;
};

std::string attr_of(const SpanRecord& rec, const std::string& key) {
  for (const auto& [k, v] : rec.attrs) {
    if (k == key) return v;
  }
  return "";
}

TEST(Trace, DisabledTracerHandsOutInertSpans) {
  ASSERT_FALSE(Tracer::global().enabled());
  Span span = Tracer::global().start_span("untraced");
  EXPECT_FALSE(span.active());
  EXPECT_FALSE(span.context().valid());
  span.attr("k", "v");  // all no-ops
  span.end();
}

TEST(Trace, SameThreadNestingLinksParentAndChild) {
  SpanCollector sink;
  {
    Span root = Tracer::global().start_span("root");
    ASSERT_TRUE(root.active());
    {
      Span child = Tracer::global().start_span("child");
      ASSERT_TRUE(child.active());
      EXPECT_EQ(child.context().trace_id, root.context().trace_id);
    }
  }
  ASSERT_EQ(sink.records().size(), 2u);  // child emitted first (ends first)
  const SpanRecord& child = sink.records()[0];
  const SpanRecord& root = sink.records()[1];
  EXPECT_EQ(child.name, "child");
  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_EQ(child.parent_id, root.span_id);
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_LE(root.start_ns, child.start_ns);
}

TEST(Trace, EndRestoresPreviousCurrentSpan) {
  SpanCollector sink;
  Span root = Tracer::global().start_span("root");
  const SpanContext root_ctx = root.context();
  {
    Span child = Tracer::global().start_span("child");
    EXPECT_EQ(Tracer::current().span_id, child.context().span_id);
  }
  EXPECT_EQ(Tracer::current().span_id, root_ctx.span_id);
}

TEST(Trace, ExplicitParentCrossesThreads) {
  SpanCollector sink;
  SpanContext parent_ctx;
  {
    Span parent = Tracer::global().start_span("parent");
    parent_ctx = parent.context();
    std::thread worker([&] {
      Span child = Tracer::global().start_child("worker", parent_ctx);
      ASSERT_TRUE(child.active());
      // Non-scoped: the worker thread's current span stays empty.
      EXPECT_FALSE(Tracer::current().valid());
    });
    worker.join();
  }
  ASSERT_EQ(sink.records().size(), 2u);
  EXPECT_EQ(sink.records()[0].name, "worker");
  EXPECT_EQ(sink.records()[0].parent_id, parent_ctx.span_id);
  EXPECT_EQ(sink.records()[0].trace_id, parent_ctx.trace_id);
}

TEST(Trace, InvalidExplicitParentYieldsInertSpan) {
  SpanCollector sink;
  Span span = Tracer::global().start_child("orphan", SpanContext{});
  EXPECT_FALSE(span.active());
  span.end();
  EXPECT_TRUE(sink.records().empty());
}

TEST(Trace, JsonLineFormat) {
  SpanRecord rec;
  rec.trace_id = 7;
  rec.span_id = 8;
  rec.parent_id = 7;
  rec.name = "op \"quoted\"";
  rec.start_ns = 100;
  rec.end_ns = 250;
  rec.attrs.emplace_back("outcome", "delivered");
  const std::string line = rec.to_json_line();
  EXPECT_NE(line.find("\"trace_id\":\"7\""), std::string::npos);
  EXPECT_NE(line.find("\"span_id\":\"8\""), std::string::npos);
  EXPECT_NE(line.find("\"parent_id\":\"7\""), std::string::npos);
  EXPECT_NE(line.find("\"name\":\"op \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(line.find("\"start_ns\":100"), std::string::npos);
  EXPECT_NE(line.find("\"end_ns\":250"), std::string::npos);
  EXPECT_NE(line.find("\"outcome\":\"delivered\""), std::string::npos);
}

TEST(Trace, WallStartDerivesFromProcessAnchor) {
  const auto wall_before = std::chrono::duration_cast<std::chrono::microseconds>(
                               std::chrono::system_clock::now().time_since_epoch())
                               .count();
  SpanCollector sink;
  { Span s = Tracer::global().start_span("anchored"); }
  const auto wall_after = std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::system_clock::now().time_since_epoch())
                              .count();
  ASSERT_EQ(sink.records().size(), 1u);
  const SpanRecord& rec = sink.records()[0];
  // The anchor maps the steady start into wall time: the span's wall
  // start must land inside the wall interval bracketing the test
  // (generous ±1s slack for clock reads on a loaded host).
  EXPECT_GE(rec.wall_start_us + 1'000'000u, static_cast<uint64_t>(wall_before));
  EXPECT_LE(rec.wall_start_us, static_cast<uint64_t>(wall_after) + 1'000'000u);
  EXPECT_NE(rec.to_json_line().find("\"wall_start_us\":"), std::string::npos);
}

// ---- Satellite (c): emit must not hold the sink lock across the sink
// callback. A slow sink with many concurrent emitters would serialize
// (or deadlock, for a re-entrant sink) if it did.
TEST(Trace, ConcurrentEmittersDoNotSerializeOnTheSink) {
  std::atomic<int> in_sink{0};
  std::atomic<int> max_concurrent_spans{0};
  std::atomic<int> live_spans{0};
  std::atomic<size_t> emitted{0};
  Tracer::global().enable([&](const SpanRecord&) {
    in_sink.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    in_sink.fetch_sub(1);
    emitted.fetch_add(1);
  });

  constexpr int kThreads = 8;
  constexpr int kPerThread = 16;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        Span s = Tracer::global().start_span("burst");
        const int live = live_spans.fetch_add(1) + 1;
        int seen = max_concurrent_spans.load();
        while (live > seen &&
               !max_concurrent_spans.compare_exchange_weak(seen, live)) {
        }
        s.end();  // enqueue + maybe flush; must not block siblings
        live_spans.fetch_sub(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  Tracer::global().disable();  // drains the queue before dropping the sink
  EXPECT_EQ(emitted.load(), static_cast<size_t>(kThreads) * kPerThread);
  // With a 1ms sink delay per record, emitters that waited for the sink
  // would run lockstep; flush combining keeps them concurrent.
  EXPECT_GT(max_concurrent_spans.load(), 1);
}

TEST(Trace, ReentrantEmitFromInsideSinkDoesNotDeadlock) {
  std::vector<std::string> names;
  std::atomic<bool> emitted_inner{false};
  Tracer::global().enable([&](const SpanRecord& rec) {
    names.push_back(rec.name);  // sink calls are serialized by the tracer
    if (!emitted_inner.exchange(true)) {
      // A sink that itself traces (e.g. logging through an instrumented
      // writer) re-enters emit() on the flushing thread.
      Span inner = Tracer::global().start_span("inner.from_sink");
      inner.end();
    }
  });
  { Span outer = Tracer::global().start_span("outer"); }
  Tracer::global().disable();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "outer");
  EXPECT_EQ(names[1], "inner.from_sink");
}

TEST(Trace, DisableDrainsPendingRecordsBeforeDroppingSink) {
  std::atomic<size_t> seen{0};
  Tracer::global().enable([&](const SpanRecord&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    seen.fetch_add(1);
  });
  constexpr int kSpans = 8;
  std::vector<std::thread> threads;
  for (int i = 0; i < kSpans; ++i) {
    threads.emplace_back([&] { Span s = Tracer::global().start_span("drain"); });
  }
  for (std::thread& t : threads) t.join();
  // All spans ended; some may still sit in the flush queue. disable()
  // must wait for the active flusher instead of racing the teardown.
  Tracer::global().disable();
  EXPECT_EQ(seen.load(), static_cast<size_t>(kSpans));
}

// ---- The acceptance scenario -----------------------------------------
// A revocation epoch whose server hop fails twice (scripted) before
// succeeding must yield ONE trace containing: the revoke root span, a
// transport.send with three attempts, three transport.frame spans (two
// scripted failures + one delivery), the server epoch span, and one
// slot span per re-encrypted ciphertext slot — every parent chain
// terminating at the root.
TEST(Trace, FaultInjectedRevocationEpochYieldsLinkedSpanTree) {
  auto grp = Group::test_small();
  CloudSystem sys(grp, "trace-acceptance");
  sys.add_authority("Med", {"Doctor"});
  sys.add_owner("hosp");
  sys.publish_authority_keys("Med", "hosp");
  for (const char* uid : {"alice", "bob"}) {
    sys.add_user(uid);
    sys.assign_attributes("Med", uid, {"Doctor"});
    sys.issue_user_key("Med", uid, "hosp");
  }
  sys.upload("hosp", "f1",
             {{"a", bytes_of("alpha"), "Doctor@Med"},
              {"b", bytes_of("bravo"), "Doctor@Med"}});

  auto& loopback = dynamic_cast<LoopbackTransport&>(sys.transport());
  loopback.faults().fail_next("owner:hosp", "server", 2);

  size_t slots = 0;
  std::vector<SpanRecord> records;
  {
    SpanCollector sink;
    slots = sys.revoke_attribute("Med", "bob", "Doctor");
    records = sink.records();
  }
  ASSERT_EQ(slots, 2u);  // both slots of f1 re-encrypted in this call

  // Index the tree and find the root.
  std::map<uint64_t, const SpanRecord*> by_id;
  const SpanRecord* root = nullptr;
  for (const SpanRecord& rec : records) {
    by_id[rec.span_id] = &rec;
    if (rec.name == "system.revoke_attribute") {
      ASSERT_EQ(root, nullptr) << "two revocation roots";
      root = &rec;
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(attr_of(*root, "attribute"), "Doctor");

  // One trace id everywhere; every parent chain reaches the root.
  for (const SpanRecord& rec : records) {
    EXPECT_EQ(rec.trace_id, root->trace_id) << rec.name;
    const SpanRecord* cur = &rec;
    int hops = 0;
    while (cur->parent_id != 0 && hops < 64) {
      const auto it = by_id.find(cur->parent_id);
      ASSERT_NE(it, by_id.end()) << rec.name << ": dangling parent";
      cur = it->second;
      ++hops;
    }
    EXPECT_EQ(cur->span_id, root->span_id) << rec.name << ": chain misses root";
  }

  // The epoch hop: a send with 3 attempts, whose channel saw two
  // scripted failures and then one delivery.
  const SpanRecord* epoch_send = nullptr;
  size_t scripted = 0, delivered = 0;
  for (const SpanRecord& rec : records) {
    if (rec.name == "transport.send" && attr_of(rec, "from") == "owner:hosp" &&
        attr_of(rec, "to") == "server") {
      epoch_send = &rec;
    }
    if (rec.name == "transport.frame" && attr_of(rec, "from") == "owner:hosp" &&
        attr_of(rec, "to") == "server") {
      if (attr_of(rec, "outcome") == "scripted_failure") ++scripted;
      if (attr_of(rec, "outcome") == "delivered") ++delivered;
    }
  }
  ASSERT_NE(epoch_send, nullptr);
  EXPECT_EQ(attr_of(*epoch_send, "attempts"), "3");
  EXPECT_EQ(attr_of(*epoch_send, "outcome"), "ok");
  EXPECT_EQ(scripted, 2u);
  EXPECT_EQ(delivered, 1u);

  // The server epoch and its per-slot children (pool workers, explicit
  // parent) are in the same tree.
  const SpanRecord* epoch = nullptr;
  std::vector<const SpanRecord*> slot_spans;
  for (const SpanRecord& rec : records) {
    if (rec.name == "server.reencrypt_epoch") {
      ASSERT_EQ(epoch, nullptr) << "two epochs";
      epoch = &rec;
    }
    if (rec.name == "server.reencrypt_slot") slot_spans.push_back(&rec);
  }
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(attr_of(*epoch, "outcome"), "committed");
  EXPECT_EQ(attr_of(*epoch, "slots"), "2");
  ASSERT_EQ(slot_spans.size(), 2u);
  for (const SpanRecord* slot : slot_spans) {
    EXPECT_EQ(slot->parent_id, epoch->span_id);
  }
}

}  // namespace
}  // namespace maabe::telemetry
