#include "math/bignum.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

#include "common/errors.h"

namespace maabe::math {
namespace {

Bignum H(std::string_view hex) { return Bignum::from_hex(hex); }

TEST(Bignum, DefaultIsZero) {
  Bignum b;
  EXPECT_TRUE(b.is_zero());
  EXPECT_EQ(b.bit_length(), 0);
  EXPECT_EQ(b.to_hex(), "0");
  EXPECT_EQ(b.to_u64(), 0u);
}

TEST(Bignum, FromU64RoundTrip) {
  for (uint64_t v : {0ull, 1ull, 2ull, 255ull, 256ull, 0xdeadbeefull,
                     0xffffffffffffffffull}) {
    EXPECT_EQ(Bignum::from_u64(v).to_u64(), v);
  }
}

TEST(Bignum, HexRoundTrip) {
  const char* cases[] = {"1", "f", "10", "deadbeef",
                         "123456789abcdef0123456789abcdef",
                         "ffffffffffffffffffffffffffffffffffffffff"};
  for (const char* c : cases) {
    EXPECT_EQ(H(c).to_hex(), c) << c;
  }
}

TEST(Bignum, HexPrefixAccepted) {
  EXPECT_EQ(H("0xff").to_u64(), 255u);
  EXPECT_EQ(H("0XFF").to_u64(), 255u);
}

TEST(Bignum, FromHexRejectsGarbage) {
  EXPECT_THROW(H(""), MathError);
  EXPECT_THROW(H("xyz"), MathError);
  EXPECT_THROW(H("12 34"), MathError);
}

TEST(Bignum, BytesRoundTrip) {
  const Bignum v = H("0102030405060708090a0b0c0d0e0f");
  const Bytes be = v.to_bytes_be(15);
  EXPECT_EQ(to_hex(be), "0102030405060708090a0b0c0d0e0f");
  EXPECT_EQ(Bignum::from_bytes_be(be), v);
  // Wider width pads with zeros on the left.
  const Bytes wide = v.to_bytes_be(20);
  EXPECT_EQ(wide.size(), 20u);
  EXPECT_EQ(Bignum::from_bytes_be(wide), v);
  // Too-narrow width throws.
  EXPECT_THROW(v.to_bytes_be(14), MathError);
}

TEST(Bignum, FromBytesSkipsLeadingZeros) {
  const Bytes b = {0, 0, 0, 1, 2};
  EXPECT_EQ(Bignum::from_bytes_be(b).to_u64(), 0x0102u);
}

TEST(Bignum, BitAccess) {
  const Bignum v = H("8000000000000001");  // bit 63 and bit 0
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(1));
  EXPECT_FALSE(v.bit(64));
  EXPECT_EQ(v.bit_length(), 64);
  EXPECT_EQ(H("10000000000000000").bit_length(), 65);
}

TEST(Bignum, Comparisons) {
  EXPECT_LT(H("ff"), H("100"));
  EXPECT_GT(H("ffffffffffffffffff"), H("ffffffffffffffff"));
  EXPECT_EQ(H("abc"), H("0abc"));
  EXPECT_LE(H("5"), H("5"));
}

TEST(Bignum, AddSubSmall) {
  EXPECT_EQ(Bignum::add(H("ffffffffffffffff"), H("1")).to_hex(), "10000000000000000");
  EXPECT_EQ(Bignum::sub(H("10000000000000000"), H("1")).to_hex(), "ffffffffffffffff");
  EXPECT_THROW(Bignum::sub(H("1"), H("2")), MathError);
  EXPECT_TRUE(Bignum::sub(H("7"), H("7")).is_zero());
}

TEST(Bignum, MulSmall) {
  EXPECT_EQ(Bignum::mul(H("ffffffffffffffff"), H("ffffffffffffffff")).to_hex(),
            "fffffffffffffffe0000000000000001");
  EXPECT_TRUE(Bignum::mul(H("12345"), Bignum()).is_zero());
}

TEST(Bignum, Shifts) {
  EXPECT_EQ(Bignum::shl(H("1"), 127).to_hex(), "80000000000000000000000000000000");
  EXPECT_EQ(Bignum::shr(H("80000000000000000000000000000000"), 127).to_u64(), 1u);
  EXPECT_TRUE(Bignum::shr(H("ff"), 9).is_zero());
  EXPECT_EQ(Bignum::shl(H("ff"), 0), H("ff"));
  // shl then shr is identity.
  const Bignum v = H("123456789abcdef123456789");
  EXPECT_EQ(Bignum::shr(Bignum::shl(v, 67), 67), v);
}

TEST(Bignum, CapacityOverflowThrows) {
  const Bignum big = Bignum::shl(H("1"), 64 * Bignum::kMaxLimbs - 1);
  EXPECT_THROW(Bignum::shl(big, 64), MathError);
  EXPECT_THROW(Bignum::mul(big, big), MathError);
}

TEST(Bignum, DivmodBasics) {
  Bignum q, r;
  Bignum::divmod(H("64"), H("a"), &q, &r);  // 100 / 10
  EXPECT_EQ(q.to_u64(), 10u);
  EXPECT_TRUE(r.is_zero());
  Bignum::divmod(H("65"), H("a"), &q, &r);
  EXPECT_EQ(q.to_u64(), 10u);
  EXPECT_EQ(r.to_u64(), 1u);
  // Dividend smaller than divisor.
  Bignum::divmod(H("5"), H("a0000000000000000"), &q, &r);
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(r.to_u64(), 5u);
  EXPECT_THROW(Bignum::divmod(H("5"), Bignum(), &q, &r), MathError);
}

// Vectors generated with Python's arbitrary-precision integers.
struct ArithVector {
  const char* a;
  const char* b;
  const char* sum;
  const char* prod;
  const char* quot;
  const char* rem;
};

const ArithVector kArith[] = {
    {"ef0361600a35a099950d836f675cc81e74ef5e8e25d940ed904759531985d5d9dc9f81818e811892f902bd23f0824128b2f330c5c7fd0a6a3a4506513270e",
     "916b0d549b",
     "ef0361600a35a099950d836f675cc81e74ef5e8e25d940ed904759531985d5d9dc9f81818e811892f902bd23f0824128b2f330c5c7fd0a6a3a4e1d0207ba9",
     "87c4dd0342b1845e568ceb4b9e76b882f926d7b3ffff0c653683a001347e33b6443fd330e95c5509465c52063e84d8df9409da2a1e90343ebe0c788c92c2011511f3d7a",
     "1a4c4b9cd6231928be64172530c48e67f4b5420344ded80f4494a7f8648904eb33e89d450ce5094ec99f326a56018590d6245b128561827a202a",
     "72271e5a0"},
    {"f21fb17c2390c192cfd3ac94af0f21ddb66cad4a268d116ece", "a139263059",
     "f21fb17c2390c192cfd3ac94af0f21ddb66cad4ac7c6379f27",
     "987bfbcc0578ae3abea1cf575cc28387bcd17c9aa246953e83aaa06a259e",
     "18075740b8a79d41719c8f4c78831f9a83b21f441", "45e5d15435"},
    {"23658cda1495e60af5",
     "38f6d05584ef8aa38922766581e27a1c08a6a63ec24ede6a46b4cb2424a23d5962217beaddbc496cb8e81973e0becd7b03898d190f9ebdacc",
     "38f6d05584ef8aa38922766581e27a1c08a6a63ec24ede6a46b4cb2424a23d5962217beaddbc496cb8e81973e0becd7d39e25aba58fd1e5c1",
     "7e05733639b031a61909372eeefa41a23119b67a10116f16e3fc1ad6f9050d74e86d8e45976e4208e3e55101a444cad48c46628a358ae2917a4e75d9b1b48c5d3c",
     "0", "23658cda1495e60af5"},
    {"8c18f135d25f557203301850c5a38fd547923a736994e3bf91", "90b64ce422",
     "8c18f135d25f557203301850c5a38fd547923a73fa4b30a3b3",
     "4f31cb7e03074e43b10fedb4fb12890788824723f4888ddb3bfe91e89542",
     "f7d6247f02da0d878e9b7a84713c656c1880a70e", "6632dd17b5"},
    {"2b7f15052434b9b5df",
     "3b2f14c942e05319acb5c74273f98e2774cbd87ad5c90a9587403e430ec66a78795e761d17731af10506bf2efc6f877186d76b07e881ed162",
     "3b2f14c942e05319acb5c74273f98e2774cbd87ad5c90a9587403e430ec66a78795e761d17731af10506bf2efc6f87743ec8bb5a2bcd88741",
     "a0e49b52b129514d718394d7fc227c98b8018e3ae38ed6d8a037395ad858c5300b1629c6a8ac68cd9f1b126db780378299c0002369d8c0249c0dba310b94b4ae5e",
     "0", "2b7f15052434b9b5df"},
    {"ba57ee05cde00902c77ebff206867347214cdd2055930d6eaf", "c972e6cc3a",
     "ba57ee05cde00902c77ebff206867347214cdd211f05f43ae9",
     "92a2ad0a355d645bd923caa3fb8d969903026890910d3dc78554647887a6",
     "eccddff8992421bc6ab88498294b009e0bc5982b", "189664b0f1"},
};

TEST(Bignum, ArithmeticVectors) {
  for (const auto& v : kArith) {
    const Bignum a = H(v.a), b = H(v.b);
    EXPECT_EQ(Bignum::add(a, b), H(v.sum));
    EXPECT_EQ(Bignum::mul(a, b), H(v.prod));
    Bignum q, r;
    Bignum::divmod(a, b, &q, &r);
    EXPECT_EQ(q, H(v.quot));
    EXPECT_EQ(r, H(v.rem));
  }
}

struct PowVector {
  const char* base;
  const char* exp;
  const char* mod;
  const char* result;
};

const PowVector kPow[] = {
    {"92b8ede0d7ac3baea9e13deef86ab1031d0f646e1f40a097c976bf46c697d2caf82eeeacbe3",
     "5051c1ccd17f9acae01f5057ca02135e",
     "a6e5790f82ec1d3fcff2a3af4d46b0a18e8830e07bc1e398f1012bd4acefaecbd389be4bcfd",
     "4bb51152b563cab5967536ef35edda4c79b8b068b87239645061b80ac04b8accfd5f274ca05"},
    {"b39bb2d420f0f88080b10a3d6b2aa05e11ab2715945795e8229451abd81f1d69ed617f5e838",
     "fe3b890b93f448b3a5aa3c814f426dcb",
     "d70119a72d174c9df6acc011cdd9474031b7f26144b98289fcd59a54a7bb1fee08f57124243",
     "b824e30fe55ce4aa24ec1dc48ea2250dff6341350c4968bdb34b048eefae6efce1d7a3a305"},
    {"14a7f1b103cdf1582b0eab477d26415479c65dc9f503f63af83bd0561e6211c70cf4995239a",
     "8ca8181166d2287672fdf2022a96fb1a",
     "85c58d5563dab2cd31ee315128862c33a4fb774eb5248db40af72158370d269a9a5ae658f33",
     "1cde2f21ddd34317e0996f2fc1c6a2e90b8e1965a0110130093958bc5b4c9a88a18fcfeb223"},
    {"2d1153e7c2a26a2c0bd3b1287fff52ddf5d616499c9e25a7605aec6f0245bd86d40fc891b4b",
     "3bbbe9eaa8948c893b61867626bb7dbd",
     "ea5b4d66a3a47469a4d8cdb305fdd2e16096e36aab0d1bc52d9230d977ee22571594720771f",
     "8fd167e035cfb2cfa8602bb0fc135c604edcae29086e54f0438b700e054f87a101a03171236"},
};

TEST(Bignum, ModPowVectors) {
  for (const auto& v : kPow) {
    EXPECT_EQ(Bignum::mod_pow(H(v.base), H(v.exp), H(v.mod)), H(v.result));
  }
}

struct InvVector {
  const char* a;
  const char* m;
  const char* inv;
};

const InvVector kInv[] = {
    {"70dd27a65bd628881ad1b72dba7abe1c29e1a8ef4f341e07a83f73f16dbf4a8b4",
     "a010c4759482c9cbc43435cc52eae05cf96d0cc5fd4c28c2e7c26847f0316909f",
     "782b3a5b647c876b79b2b7ca7d54c4c7be8b1148d8a0141f49c7fb3db6c959299"},
    {"99c94309570dc1951c2442f9298cb3a570ccec313571810afc132d0d113db17f",
     "e8f2c6ec8cc4169a3ae3a2b7fdfe01893f3aed0b6c7ac1491def88334e647cb8f",
     "10dd1aff90dfd02930016377a58f1ca6b33f608022ef5a70d2e92e2e221431df7"},
    {"4a268aa872607679d6050914a9d33a01c353c631cdfd43f371200339d068739fc",
     "95d158a2ff2ee4e4519f9919c895fd7b326b94c7f9118bb16000f49c81a358ca1",
     "2ea1a1e5a0bae4d68bf2731be40cc39dfa5fdd0f5801e0ad92fb9714891719177"},
    {"124e4e25a15fc899e4fd58dbe7bdc968b7afb2c68774b15d7fa529ba3fe3bfadc",
     "fd953ee261d87cec31f7296ab7961fd925d39d0a89a2ef80f58ee8571f4998d7d",
     "6a70c6f3eace32674b8d3a170561bb3871cce2270c6d5b33464cb720b8b809ac3"},
};

TEST(Bignum, ModInverseVectors) {
  for (const auto& v : kInv) {
    const Bignum inv = Bignum::mod_inverse(H(v.a), H(v.m));
    EXPECT_EQ(inv, H(v.inv));
    EXPECT_TRUE(Bignum::mod_mul(H(v.a), inv, H(v.m)).is_one());
  }
}

TEST(Bignum, ModInverseEvenModulus) {
  // Euclid path: inverse of 3 mod 2^64.
  const Bignum m = Bignum::shl(H("1"), 64);
  const Bignum inv = Bignum::mod_inverse(H("3"), m);
  EXPECT_TRUE(Bignum::mod(Bignum::mul(H("3"), inv), m).is_one());
  // Non-invertible element throws.
  EXPECT_THROW(Bignum::mod_inverse(H("2"), m), MathError);
}

TEST(Bignum, ModInverseRejectsZero) {
  EXPECT_THROW(Bignum::mod_inverse(Bignum(), H("17")), MathError);
  EXPECT_THROW(Bignum::mod_inverse(H("5"), H("1")), MathError);
}

TEST(Bignum, KnuthAddBackBranch) {
  // Inputs crafted (u = v*k - epsilon) so that the qhat estimate in
  // Algorithm D overshoots and the rarely-taken "add back" correction
  // executes. Verified against Python's arbitrary-precision division.
  const std::pair<const char*, const char*> cases[] = {
      {"12f394ad1b8de1547ec631620ed47d44be873524f6033fb479df1a74b68532f0",
       "c9e9c616612e7696a6cecc1b78e510617311d8a3c2ce6f44"},
      {"da22c3b1363174f94f6ef1aea2328401b79b508b31330907b577b1c82e12d81a",
       "f1fd42a29755d4c13a902931cd447e35b8b6d8fe442e3d43"},
      {"549218a751adaf682f402c423ebab6a4265982d77bbff2c89476b6a1a3124b01",
       "b80208a9ad45f23d3b1a11df587fd2803bab6c398d88348a"},
  };
  for (const auto& [ua, va] : cases) {
    const Bignum u = H(ua), v = H(va);
    Bignum q, r;
    Bignum::divmod(u, v, &q, &r);
    EXPECT_LT(Bignum::cmp(r, v), 0);
    EXPECT_EQ(Bignum::add(Bignum::mul(q, v), r), u);
  }
}

// ---- Randomized property tests -----------------------------------------

class BignumProperty : public ::testing::TestWithParam<int> {};

std::mt19937_64 rng_for(int seed) { return std::mt19937_64(0xC0FFEE + seed); }

Bignum random_bignum(std::mt19937_64& rng, int max_limbs) {
  std::uniform_int_distribution<int> limbs(1, max_limbs);
  const int n = limbs(rng);
  Bytes bytes(size_t(n) * 8);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng());
  return Bignum::from_bytes_be(bytes);
}

TEST_P(BignumProperty, AddSubRoundTrip) {
  auto rng = rng_for(GetParam());
  const Bignum a = random_bignum(rng, 12), b = random_bignum(rng, 12);
  const Bignum s = Bignum::add(a, b);
  EXPECT_EQ(Bignum::sub(s, b), a);
  EXPECT_EQ(Bignum::sub(s, a), b);
}

TEST_P(BignumProperty, MulCommutesAndDistributes) {
  auto rng = rng_for(GetParam() + 1000);
  const Bignum a = random_bignum(rng, 8), b = random_bignum(rng, 8),
               c = random_bignum(rng, 8);
  EXPECT_EQ(Bignum::mul(a, b), Bignum::mul(b, a));
  EXPECT_EQ(Bignum::mul(a, Bignum::add(b, c)),
            Bignum::add(Bignum::mul(a, b), Bignum::mul(a, c)));
}

TEST_P(BignumProperty, DivisionIdentity) {
  auto rng = rng_for(GetParam() + 2000);
  const Bignum a = random_bignum(rng, 16);
  const Bignum b = random_bignum(rng, 7);
  if (b.is_zero()) return;
  Bignum q, r;
  Bignum::divmod(a, b, &q, &r);
  EXPECT_LT(Bignum::cmp(r, b), 0);
  EXPECT_EQ(Bignum::add(Bignum::mul(q, b), r), a);
}

TEST_P(BignumProperty, DivisionBySelfAndOne) {
  auto rng = rng_for(GetParam() + 3000);
  const Bignum a = random_bignum(rng, 10);
  if (a.is_zero()) return;
  Bignum q, r;
  Bignum::divmod(a, a, &q, &r);
  EXPECT_TRUE(q.is_one());
  EXPECT_TRUE(r.is_zero());
  Bignum::divmod(a, Bignum::from_u64(1), &q, &r);
  EXPECT_EQ(q, a);
  EXPECT_TRUE(r.is_zero());
}

TEST_P(BignumProperty, SmallValuesMatchNativeArithmetic) {
  auto rng = rng_for(GetParam() + 4000);
  const uint64_t a = rng() >> 33, b = (rng() >> 33) | 1;
  EXPECT_EQ(Bignum::add(Bignum::from_u64(a), Bignum::from_u64(b)).to_u64(), a + b);
  EXPECT_EQ(Bignum::mul(Bignum::from_u64(a), Bignum::from_u64(b)).to_u64(), a * b);
  Bignum q, r;
  Bignum::divmod(Bignum::from_u64(a), Bignum::from_u64(b), &q, &r);
  EXPECT_EQ(q.to_u64(), a / b);
  EXPECT_EQ(r.to_u64(), a % b);
}

TEST_P(BignumProperty, HexAndBytesAgree) {
  auto rng = rng_for(GetParam() + 5000);
  const Bignum a = random_bignum(rng, 9);
  EXPECT_EQ(Bignum::from_hex(a.to_hex()), a);
  EXPECT_EQ(Bignum::from_bytes_be(a.to_bytes_be_min()), a);
}

TEST_P(BignumProperty, ModPowMatchesRepeatedMultiplication) {
  auto rng = rng_for(GetParam() + 6000);
  const Bignum m = random_bignum(rng, 3);
  if (m.bit_length() < 2) return;
  const Bignum base = Bignum::mod(random_bignum(rng, 3), m);
  const int e = static_cast<int>(rng() % 30);
  Bignum expect = Bignum::mod(Bignum::from_u64(1), m);
  for (int i = 0; i < e; ++i) expect = Bignum::mod_mul(expect, base, m);
  EXPECT_EQ(Bignum::mod_pow(base, Bignum::from_u64(e), m), expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BignumProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace maabe::math
