#include "math/prime.h"

#include <gtest/gtest.h>

namespace maabe::math {
namespace {

Bignum H(std::string_view hex) { return Bignum::from_hex(hex); }

TEST(Prime, SmallValues) {
  const uint64_t primes[] = {2, 3, 5, 7, 11, 13, 97, 101, 127};
  for (uint64_t p : primes) EXPECT_TRUE(is_probable_prime(Bignum::from_u64(p))) << p;
  const uint64_t composites[] = {0, 1, 4, 6, 9, 15, 21, 100, 121, 169};
  for (uint64_t c : composites)
    EXPECT_FALSE(is_probable_prime(Bignum::from_u64(c))) << c;
}

TEST(Prime, MediumValues) {
  EXPECT_TRUE(is_probable_prime(Bignum::from_u64(1000003)));
  EXPECT_FALSE(is_probable_prime(Bignum::from_u64(1000001)));  // 101*9901
  EXPECT_TRUE(is_probable_prime(Bignum::from_u64(0xffffffffffffffc5ull)));  // 2^64-59
  EXPECT_FALSE(is_probable_prime(Bignum::from_u64(0xffffffffffffffffull)));
}

TEST(Prime, CarmichaelNumbersRejected) {
  for (uint64_t c : {561ull, 1105ull, 1729ull, 41041ull, 825265ull}) {
    EXPECT_FALSE(is_probable_prime(Bignum::from_u64(c))) << c;
  }
}

TEST(Prime, PbcTypeAParametersArePrime) {
  // Group order r = 2^159 + 2^107 + 1 and 512-bit field prime q of PBC's
  // stock "a" parameters.
  EXPECT_TRUE(is_probable_prime(H("8000000000000800000000000000000000000001")));
  EXPECT_TRUE(is_probable_prime(
      H("a7a73868e95fba886edef8ce96e7217e364bb946f5ed839628d1f80010940622"
        "a7afdaf9b049744a459e54dab7ba5be92539e8ff9b4f30a3cf6230c28e284d97")));
}

TEST(Prime, LargeCompositeRejected) {
  // Product of two 256-bit primes must be recognized as composite.
  const Bignum p = H("8000000000000800000000000000000000000001");
  EXPECT_FALSE(is_probable_prime(Bignum::mul(p, p)));
  EXPECT_FALSE(is_probable_prime(
      Bignum::mul(p, H("ffffffffffffffffffffffffffffff61"))));
}

TEST(Prime, MersennePrimes) {
  // 2^89-1 and 2^107-1 are prime; 2^83-1 and 2^97-1 are not.
  const auto mersenne = [](int n) {
    return Bignum::sub(Bignum::shl(Bignum::from_u64(1), n), Bignum::from_u64(1));
  };
  EXPECT_TRUE(is_probable_prime(mersenne(89)));
  EXPECT_TRUE(is_probable_prime(mersenne(107)));
  EXPECT_FALSE(is_probable_prime(mersenne(83)));
  EXPECT_FALSE(is_probable_prime(mersenne(97)));
}

}  // namespace
}  // namespace maabe::math
