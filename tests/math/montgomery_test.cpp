#include "math/montgomery.h"

#include <gtest/gtest.h>

#include <random>

#include "common/errors.h"

namespace maabe::math {
namespace {

Bignum H(std::string_view hex) { return Bignum::from_hex(hex); }

// The 512-bit base-field prime of PBC's stock type-A parameters.
const char* kQ512 =
    "a7a73868e95fba886edef8ce96e7217e364bb946f5ed839628d1f80010940622"
    "a7afdaf9b049744a459e54dab7ba5be92539e8ff9b4f30a3cf6230c28e284d97";

TEST(MontCtx, RejectsEvenModulus) {
  EXPECT_THROW(MontCtx(H("10")), MathError);
  EXPECT_THROW(MontCtx(Bignum::from_u64(1)), MathError);
}

TEST(MontCtx, RoundTripSmall) {
  const MontCtx m(H("17"));  // 23
  for (uint64_t v = 0; v < 23; ++v) {
    const Bignum a = Bignum::from_u64(v);
    EXPECT_EQ(m.from_mont(m.to_mont(a)), a);
  }
}

TEST(MontCtx, MulMatchesPlainModMul) {
  std::mt19937_64 rng(99);
  const Bignum p = H("ffffffffffffffffffffffffffffff61");  // odd 128-bit
  const MontCtx m(p);
  for (int i = 0; i < 50; ++i) {
    Bytes ab(16), bb(16);
    for (auto& x : ab) x = static_cast<uint8_t>(rng());
    for (auto& x : bb) x = static_cast<uint8_t>(rng());
    const Bignum a = Bignum::mod(Bignum::from_bytes_be(ab), p);
    const Bignum b = Bignum::mod(Bignum::from_bytes_be(bb), p);
    const Bignum got = m.from_mont(m.mul(m.to_mont(a), m.to_mont(b)));
    EXPECT_EQ(got, Bignum::mod_mul(a, b, p));
  }
}

TEST(MontCtx, MulMatchesPlainAt512Bits) {
  std::mt19937_64 rng(7);
  const Bignum p = H(kQ512);
  const MontCtx m(p);
  for (int i = 0; i < 20; ++i) {
    Bytes ab(64), bb(64);
    for (auto& x : ab) x = static_cast<uint8_t>(rng());
    for (auto& x : bb) x = static_cast<uint8_t>(rng());
    const Bignum a = Bignum::mod(Bignum::from_bytes_be(ab), p);
    const Bignum b = Bignum::mod(Bignum::from_bytes_be(bb), p);
    const Bignum got = m.from_mont(m.mul(m.to_mont(a), m.to_mont(b)));
    EXPECT_EQ(got, Bignum::mod_mul(a, b, p));
  }
}

TEST(MontCtx, OneBehaves) {
  const MontCtx m(H(kQ512));
  const Bignum x = m.to_mont(H("123456789abcdef"));
  EXPECT_EQ(m.mul(x, m.one()), x);
  EXPECT_EQ(m.from_mont(m.one()).to_u64(), 1u);
}

TEST(MontCtx, AddSubNeg) {
  const Bignum p = H("61");  // 97
  const MontCtx m(p);
  const Bignum a = Bignum::from_u64(90), b = Bignum::from_u64(20);
  EXPECT_EQ(m.add(a, b).to_u64(), 13u);   // 110 mod 97
  EXPECT_EQ(m.sub(b, a).to_u64(), 27u);   // -70 mod 97
  EXPECT_EQ(m.neg(a).to_u64(), 7u);
  EXPECT_TRUE(m.neg(Bignum()).is_zero());
  EXPECT_EQ(m.add(a, m.neg(a)).to_u64(), 0u);
}

TEST(MontCtx, PowMatchesPlainModPow) {
  std::mt19937_64 rng(3);
  const Bignum p = H("ffffffffffffffffffffffffffffff61");
  const MontCtx m(p);
  for (int i = 0; i < 20; ++i) {
    Bytes ab(16), eb(12);
    for (auto& x : ab) x = static_cast<uint8_t>(rng());
    for (auto& x : eb) x = static_cast<uint8_t>(rng());
    const Bignum a = Bignum::mod(Bignum::from_bytes_be(ab), p);
    const Bignum e = Bignum::from_bytes_be(eb);
    EXPECT_EQ(m.from_mont(m.pow(m.to_mont(a), e)), Bignum::mod_pow(a, e, p));
  }
}

TEST(MontCtx, PowZeroExponentIsOne) {
  const MontCtx m(H(kQ512));
  const Bignum a = m.to_mont(H("deadbeef"));
  EXPECT_EQ(m.pow(a, Bignum()), m.one());
}

TEST(MontCtx, FermatLittleTheorem) {
  const Bignum p = H("ffffffffffffffffffffffffffffff61");  // prime
  const MontCtx m(p);
  const Bignum a = m.to_mont(H("1234567890abcdef1234"));
  const Bignum e = Bignum::sub(p, Bignum::from_u64(1));
  EXPECT_EQ(m.pow(a, e), m.one());
}

TEST(MontCtx, InverseRoundTrip) {
  std::mt19937_64 rng(11);
  const Bignum p = H(kQ512);
  const MontCtx m(p);
  for (int i = 0; i < 10; ++i) {
    Bytes ab(64);
    for (auto& x : ab) x = static_cast<uint8_t>(rng());
    const Bignum a = Bignum::mod(Bignum::from_bytes_be(ab), p);
    if (a.is_zero()) continue;
    const Bignum am = m.to_mont(a);
    EXPECT_EQ(m.mul(am, m.inv(am)), m.one());
  }
}

TEST(MontCtx, SqrMatchesMulSelf) {
  std::mt19937_64 rng(123);
  for (const char* mod : {"ffffffffffffffffffffffffffffff61", kQ512}) {
    const Bignum p = H(mod);
    const MontCtx m(p);
    // Edge residues: 0, 1, p-1 (squared in Montgomery form).
    const Bignum edges[] = {Bignum{}, Bignum::from_u64(1),
                            Bignum::sub(p, Bignum::from_u64(1))};
    for (const Bignum& v : edges) {
      const Bignum a = m.to_mont(v);
      EXPECT_EQ(m.sqr(a), m.mul(a, a));
      EXPECT_EQ(m.from_mont(m.sqr(a)), Bignum::mod_mul(v, v, p));
    }
    for (int i = 0; i < 50; ++i) {
      Bytes ab(m.byte_length());
      for (auto& x : ab) x = static_cast<uint8_t>(rng());
      const Bignum a = Bignum::mod(Bignum::from_bytes_be(ab), p);
      const Bignum am = m.to_mont(a);
      EXPECT_EQ(m.sqr(am), m.mul(am, am));
    }
  }
}

TEST(MontCtx, ByteLength) {
  EXPECT_EQ(MontCtx(H(kQ512)).byte_length(), 64u);
  EXPECT_EQ(MontCtx(H("17")).byte_length(), 1u);
  EXPECT_EQ(MontCtx(H("101")).byte_length(), 2u);
}

}  // namespace
}  // namespace maabe::math
