// Test-support listener (DESIGN.md §16): arms the process-wide flight
// recorder around every test and, when a test fails, dumps each node's
// ring to stderr — a non-deterministic chaos/recovery flake ships its
// own post-mortem (the last N spans and typed fault/shed/epoch events
// per node) instead of demanding a rerun.
#pragma once

#include <gtest/gtest.h>

#include <iostream>
#include <string>

#include "telemetry/flight_recorder.h"

namespace maabe::test_support {

class FlightDumpOnFailure : public ::testing::EmptyTestEventListener {
 public:
  void OnTestStart(const ::testing::TestInfo&) override {
    // Fresh recording per test: old entries never pollute a new dump.
    telemetry::FlightRegistry::global().arm();
  }

  void OnTestEnd(const ::testing::TestInfo& info) override {
    if (info.result() != nullptr && info.result()->Failed()) {
      auto& reg = telemetry::FlightRegistry::global();
      std::cerr << "---- flight-recorder dump (" << info.test_suite_name()
                << "." << info.name() << ") ----\n";
      for (const std::string& node : reg.nodes()) {
        std::cerr << reg.dump(node);
      }
    }
    telemetry::FlightRegistry::global().disarm();
  }
};

/// Call from ONE translation unit per test binary (a static initializer
/// is fine: gtest_main runs after static init, and the listener list
/// takes ownership of the pointer).
inline bool install_flight_dump_on_failure() {
  ::testing::UnitTest::GetInstance()->listeners().Append(new FlightDumpOnFailure());
  return true;
}

}  // namespace maabe::test_support
