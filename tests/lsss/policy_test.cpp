#include "lsss/policy.h"

#include <gtest/gtest.h>

#include <functional>

#include "common/errors.h"

namespace maabe::lsss {
namespace {

Attribute A(const std::string& n, const std::string& aid = "A") { return {n, aid}; }

TEST(Policy, AttrNode) {
  const PolicyPtr p = PolicyNode::attr("Doctor", "MedOrg");
  EXPECT_EQ(p->kind(), PolicyNode::Kind::kAttr);
  EXPECT_EQ(p->attribute().qualified(), "Doctor@MedOrg");
  EXPECT_EQ(p->to_string(), "Doctor@MedOrg");
  EXPECT_TRUE(p->satisfied_by({{"Doctor", "MedOrg"}}));
  EXPECT_FALSE(p->satisfied_by({{"Doctor", "OtherOrg"}}));
  EXPECT_FALSE(p->satisfied_by({}));
}

TEST(Policy, EmptyNamesRejected) {
  EXPECT_THROW(PolicyNode::attr("", "A"), PolicyError);
  EXPECT_THROW(PolicyNode::attr("x", ""), PolicyError);
}

TEST(Policy, AndOrSemantics) {
  const PolicyPtr p = PolicyNode::and_of(
      {PolicyNode::attr("a", "A"),
       PolicyNode::or_of({PolicyNode::attr("b", "B"), PolicyNode::attr("c", "C")})});
  EXPECT_TRUE(p->satisfied_by({{"a", "A"}, {"b", "B"}}));
  EXPECT_TRUE(p->satisfied_by({{"a", "A"}, {"c", "C"}}));
  EXPECT_FALSE(p->satisfied_by({{"a", "A"}}));
  EXPECT_FALSE(p->satisfied_by({{"b", "B"}, {"c", "C"}}));
}

TEST(Policy, SingleChildCollapses) {
  const PolicyPtr a = PolicyNode::attr("a", "A");
  EXPECT_EQ(PolicyNode::and_of({a}), a);
  EXPECT_EQ(PolicyNode::or_of({a}), a);
}

TEST(Policy, EmptyGatesRejected) {
  EXPECT_THROW(PolicyNode::and_of({}), PolicyError);
  EXPECT_THROW(PolicyNode::or_of({}), PolicyError);
  EXPECT_THROW(PolicyNode::threshold(1, {}), PolicyError);
}

TEST(Policy, ThresholdSemantics) {
  const PolicyPtr p = PolicyNode::threshold(
      2, {PolicyNode::attr("a", "A"), PolicyNode::attr("b", "B"),
          PolicyNode::attr("c", "C")});
  EXPECT_EQ(p->kind(), PolicyNode::Kind::kThreshold);
  EXPECT_FALSE(p->satisfied_by({A("a")}));
  EXPECT_TRUE(p->satisfied_by({{"a", "A"}, {"b", "B"}}));
  EXPECT_TRUE(p->satisfied_by({{"a", "A"}, {"c", "C"}}));
  EXPECT_TRUE(p->satisfied_by({{"a", "A"}, {"b", "B"}, {"c", "C"}}));
  EXPECT_FALSE(p->satisfied_by({{"b", "X"}, {"c", "C"}}));
}

TEST(Policy, ThresholdDegenerateCollapses) {
  const auto kids = [] {
    return std::vector<PolicyPtr>{PolicyNode::attr("a", "A"), PolicyNode::attr("b", "B")};
  };
  EXPECT_EQ(PolicyNode::threshold(1, kids())->kind(), PolicyNode::Kind::kOr);
  EXPECT_EQ(PolicyNode::threshold(2, kids())->kind(), PolicyNode::Kind::kAnd);
  EXPECT_THROW(PolicyNode::threshold(0, kids()), PolicyError);
  EXPECT_THROW(PolicyNode::threshold(3, kids()), PolicyError);
}

TEST(Policy, LeavesPreserveOrder) {
  const PolicyPtr p = PolicyNode::or_of(
      {PolicyNode::and_of({PolicyNode::attr("x", "A"), PolicyNode::attr("y", "B")}),
       PolicyNode::attr("z", "C")});
  const auto leaves = p->leaves();
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_EQ(leaves[0].name, "x");
  EXPECT_EQ(leaves[1].name, "y");
  EXPECT_EQ(leaves[2].name, "z");
}

TEST(Policy, InvolvedAuthorities) {
  const PolicyPtr p = PolicyNode::and_of(
      {PolicyNode::attr("x", "Med"), PolicyNode::attr("y", "Trial"),
       PolicyNode::attr("z", "Med")});
  EXPECT_EQ(p->involved_authorities(), (std::set<std::string>{"Med", "Trial"}));
}

TEST(Policy, ExpandThresholdsProducesEquivalentFormula) {
  const PolicyPtr p = PolicyNode::threshold(
      2, {PolicyNode::attr("a", "A"), PolicyNode::attr("b", "B"),
          PolicyNode::attr("c", "C"), PolicyNode::attr("d", "D")});
  const PolicyPtr e = expand_thresholds(p);
  // Exhaustively compare semantics over all 16 subsets.
  const Attribute all[] = {{"a", "A"}, {"b", "B"}, {"c", "C"}, {"d", "D"}};
  for (int mask = 0; mask < 16; ++mask) {
    std::set<Attribute> have;
    for (int i = 0; i < 4; ++i)
      if (mask & (1 << i)) have.insert(all[i]);
    EXPECT_EQ(p->satisfied_by(have), e->satisfied_by(have)) << mask;
  }
  // Expanded tree is AND/OR only.
  const std::function<bool(const PolicyPtr&)> no_thresh = [&](const PolicyPtr& n) {
    if (n->kind() == PolicyNode::Kind::kThreshold) return false;
    for (const auto& c : n->children())
      if (!no_thresh(c)) return false;
    return true;
  };
  EXPECT_TRUE(no_thresh(e));
}

TEST(Policy, ExpandThresholdExplosionGuarded) {
  std::vector<PolicyPtr> kids;
  for (int i = 0; i < 20; ++i) kids.push_back(PolicyNode::attr("a" + std::to_string(i), "A"));
  const PolicyPtr p = PolicyNode::threshold(10, kids);  // C(20,10) = 184756
  EXPECT_THROW(expand_thresholds(p, 1000), PolicyError);
}

TEST(Policy, ToStringRoundTripShape) {
  const PolicyPtr p = PolicyNode::or_of(
      {PolicyNode::and_of({PolicyNode::attr("Doctor", "Med"), PolicyNode::attr("Res", "Tri")}),
       PolicyNode::attr("Admin", "Med")});
  EXPECT_EQ(p->to_string(), "((Doctor@Med AND Res@Tri) OR Admin@Med)");
}

}  // namespace
}  // namespace maabe::lsss
