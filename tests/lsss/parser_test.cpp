#include "lsss/parser.h"
#include <random>

#include <gtest/gtest.h>

#include "common/errors.h"

namespace maabe::lsss {
namespace {

TEST(Parser, SingleAttribute) {
  const PolicyPtr p = parse_policy("Doctor@MedOrg");
  EXPECT_EQ(p->kind(), PolicyNode::Kind::kAttr);
  EXPECT_EQ(p->attribute().name, "Doctor");
  EXPECT_EQ(p->attribute().aid, "MedOrg");
}

TEST(Parser, AndOrPrecedence) {
  // AND binds tighter than OR: a OR b AND c == a OR (b AND c).
  const PolicyPtr p = parse_policy("a@A OR b@B AND c@C");
  ASSERT_EQ(p->kind(), PolicyNode::Kind::kOr);
  ASSERT_EQ(p->children().size(), 2u);
  EXPECT_EQ(p->children()[0]->kind(), PolicyNode::Kind::kAttr);
  EXPECT_EQ(p->children()[1]->kind(), PolicyNode::Kind::kAnd);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  const PolicyPtr p = parse_policy("(a@A OR b@B) AND c@C");
  ASSERT_EQ(p->kind(), PolicyNode::Kind::kAnd);
  EXPECT_EQ(p->children()[0]->kind(), PolicyNode::Kind::kOr);
}

TEST(Parser, CaseInsensitiveKeywords) {
  EXPECT_EQ(parse_policy("a@A and b@B")->kind(), PolicyNode::Kind::kAnd);
  EXPECT_EQ(parse_policy("a@A Or b@B")->kind(), PolicyNode::Kind::kOr);
}

TEST(Parser, Threshold) {
  const PolicyPtr p = parse_policy("2of(a@A, b@B, c@C)");
  ASSERT_EQ(p->kind(), PolicyNode::Kind::kThreshold);
  EXPECT_EQ(p->threshold_k(), 2);
  EXPECT_EQ(p->children().size(), 3u);
}

TEST(Parser, ThresholdWithSpaces) {
  const PolicyPtr p = parse_policy("2 of (a@A, b@B, c@C)");
  ASSERT_EQ(p->kind(), PolicyNode::Kind::kThreshold);
}

TEST(Parser, ThresholdOverCompoundTerms) {
  const PolicyPtr p = parse_policy("2of(a@A AND x@X, b@B, c@C OR d@D)");
  ASSERT_EQ(p->kind(), PolicyNode::Kind::kThreshold);
  EXPECT_EQ(p->children()[0]->kind(), PolicyNode::Kind::kAnd);
  EXPECT_EQ(p->children()[2]->kind(), PolicyNode::Kind::kOr);
}

TEST(Parser, NestedPolicies) {
  const PolicyPtr p = parse_policy(
      "(Doctor@Med AND Researcher@Trial) OR (Admin@Med AND 2of(a@A, b@B, c@C))");
  ASSERT_EQ(p->kind(), PolicyNode::Kind::kOr);
  // Semantics sanity.
  EXPECT_TRUE(p->satisfied_by({{"Doctor", "Med"}, {"Researcher", "Trial"}}));
  EXPECT_TRUE(p->satisfied_by({{"Admin", "Med"}, {"a", "A"}, {"c", "C"}}));
  EXPECT_FALSE(p->satisfied_by({{"Admin", "Med"}, {"a", "A"}}));
}

TEST(Parser, IdentifierCharacterSet) {
  const PolicyPtr p = parse_policy("role:senior-dev_2@org.example+test");
  EXPECT_EQ(p->attribute().name, "role:senior-dev_2");
  EXPECT_EQ(p->attribute().aid, "org.example+test");
}

TEST(Parser, NumericLeadingIdent) {
  // A number NOT followed by "of" parses as an attribute name.
  const PolicyPtr p = parse_policy("2fa@SecOrg");
  EXPECT_EQ(p->attribute().name, "2fa");
}

TEST(Parser, SyntaxErrors) {
  EXPECT_THROW(parse_policy(""), PolicyError);
  EXPECT_THROW(parse_policy("a@"), PolicyError);
  EXPECT_THROW(parse_policy("@A"), PolicyError);
  EXPECT_THROW(parse_policy("a@A AND"), PolicyError);
  EXPECT_THROW(parse_policy("a@A b@B"), PolicyError);
  EXPECT_THROW(parse_policy("(a@A"), PolicyError);
  EXPECT_THROW(parse_policy("a@A)"), PolicyError);
  EXPECT_THROW(parse_policy("2of(a@A)"), PolicyError);      // k > n
  EXPECT_THROW(parse_policy("0of(a@A, b@B)"), PolicyError); // k < 1
  EXPECT_THROW(parse_policy("a@A ! b@B"), PolicyError);
  EXPECT_THROW(parse_policy("2of a@A, b@B"), PolicyError);
}

TEST(Parser, ErrorMessagesCarryPosition) {
  try {
    parse_policy("a@A AND ");
    FAIL() << "expected PolicyError";
  } catch (const PolicyError& e) {
    EXPECT_NE(std::string(e.what()).find("position"), std::string::npos);
  }
}

TEST(Parser, FuzzedInputsNeverCrash) {
  // Pseudo-random byte soup and mutated valid policies must either parse
  // or throw PolicyError — never crash or throw anything else.
  std::mt19937_64 rng(0xF0220);
  const std::string alphabet = "ab@AO()of2, ANDRX\t\n%$";
  int parsed = 0, rejected = 0;
  for (int i = 0; i < 500; ++i) {
    std::string s;
    const size_t len = rng() % 40;
    for (size_t j = 0; j < len; ++j) s.push_back(alphabet[rng() % alphabet.size()]);
    try {
      const PolicyPtr p = parse_policy(s);
      ASSERT_NE(p, nullptr);
      (void)p->to_string();
      ++parsed;
    } catch (const PolicyError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  SUCCEED() << parsed << " parsed, " << rejected << " rejected";
}

TEST(Parser, MutatedValidPoliciesNeverCrash) {
  const std::string base = "(Doctor@Med AND 2of(a@A, b@B, c@C)) OR Admin@Med";
  std::mt19937_64 rng(0xBEEF);
  for (int i = 0; i < 300; ++i) {
    std::string s = base;
    const int op = rng() % 3;
    const size_t pos = rng() % s.size();
    if (op == 0) {
      s.erase(pos, 1);
    } else if (op == 1) {
      s.insert(pos, 1, static_cast<char>("()@, "[rng() % 5]));
    } else {
      s[pos] = static_cast<char>(rng() % 94 + 33);
    }
    try {
      (void)parse_policy(s);
    } catch (const PolicyError&) {
      // expected for most mutations
    }
  }
  SUCCEED();
}

TEST(Parser, DeeplyNestedPolicies) {
  // 200 levels of parentheses: must parse (or cleanly reject), not
  // overflow the stack.
  std::string s;
  for (int i = 0; i < 200; ++i) s += "(";
  s += "a@A";
  for (int i = 0; i < 200; ++i) s += ")";
  const PolicyPtr p = parse_policy(s);
  EXPECT_EQ(p->kind(), PolicyNode::Kind::kAttr);
}

TEST(Parser, RoundTripThroughToString) {
  const char* policies[] = {
      "Doctor@MedOrg",
      "(a@A AND b@B)",
      "((a@A AND b@B) OR c@C)",
      "2of(a@A, b@B, c@C)",
  };
  for (const char* text : policies) {
    const PolicyPtr p1 = parse_policy(text);
    const PolicyPtr p2 = parse_policy(p1->to_string());
    EXPECT_EQ(p1->to_string(), p2->to_string()) << text;
  }
}

}  // namespace
}  // namespace maabe::lsss
