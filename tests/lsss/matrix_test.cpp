#include "lsss/matrix.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "lsss/parser.h"

namespace maabe::lsss {
namespace {

using pairing::Group;
using pairing::Zr;

class MatrixTest : public ::testing::Test {
 protected:
  MatrixTest() : grp(Group::test_small()) {}

  // Reconstructs sum w_i * lambda_i and checks it equals s.
  void expect_reconstructs(const LsssMatrix& m, const std::set<Attribute>& have,
                           bool expect_ok) {
    const Zr s = grp->zr_random(rng);
    const std::vector<Zr> shares = m.share(*grp, s, rng);
    const auto coeffs = m.reconstruction(*grp, have);
    EXPECT_EQ(coeffs.has_value(), expect_ok);
    if (!coeffs) return;
    Zr acc = grp->zr_zero();
    for (const auto& [row, w] : *coeffs) {
      ASSERT_GE(row, 0);
      ASSERT_LT(row, m.rows());
      // Coefficients must only reference rows the user holds.
      EXPECT_TRUE(have.contains(m.row_attribute(row)));
      acc = acc + w * shares[row];
    }
    EXPECT_EQ(acc, s);
  }

  std::shared_ptr<const Group> grp;
  crypto::Drbg rng{std::string_view("matrix-test")};
};

TEST_F(MatrixTest, SingleAttribute) {
  const LsssMatrix m = LsssMatrix::from_policy(parse_policy("a@A"));
  EXPECT_EQ(m.rows(), 1);
  EXPECT_EQ(m.cols(), 1);
  expect_reconstructs(m, {{"a", "A"}}, true);
  expect_reconstructs(m, {{"b", "A"}}, false);
  expect_reconstructs(m, {}, false);
}

TEST_F(MatrixTest, SimpleAnd) {
  const LsssMatrix m = LsssMatrix::from_policy(parse_policy("a@A AND b@B"));
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 2);
  expect_reconstructs(m, {{"a", "A"}, {"b", "B"}}, true);
  expect_reconstructs(m, {{"a", "A"}}, false);
  expect_reconstructs(m, {{"b", "B"}}, false);
}

TEST_F(MatrixTest, SimpleOr) {
  const LsssMatrix m = LsssMatrix::from_policy(parse_policy("a@A OR b@B"));
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 1);
  expect_reconstructs(m, {{"a", "A"}}, true);
  expect_reconstructs(m, {{"b", "B"}}, true);
  expect_reconstructs(m, {{"c", "C"}}, false);
}

TEST_F(MatrixTest, WideAnd) {
  const LsssMatrix m =
      LsssMatrix::from_policy(parse_policy("a@A AND b@B AND c@C AND d@D"));
  EXPECT_EQ(m.rows(), 4);
  expect_reconstructs(m, {{"a", "A"}, {"b", "B"}, {"c", "C"}, {"d", "D"}}, true);
  expect_reconstructs(m, {{"a", "A"}, {"b", "B"}, {"c", "C"}}, false);
}

TEST_F(MatrixTest, ThresholdDirectModeKeepsRhoInjective) {
  // The default Vandermonde compilation gives one row per leaf — no
  // attribute repetition, so no reuse opt-in needed.
  const PolicyPtr p = parse_policy("2of(a@A, b@B, c@C)");
  const LsssMatrix m = LsssMatrix::from_policy(p);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);  // root column + (k-1) Vandermonde columns
  expect_reconstructs(m, {{"a", "A"}, {"b", "B"}}, true);
  expect_reconstructs(m, {{"b", "B"}, {"c", "C"}}, true);
  expect_reconstructs(m, {{"a", "A"}, {"c", "C"}}, true);
  expect_reconstructs(m, {{"a", "A"}}, false);
  expect_reconstructs(m, {{"c", "C"}}, false);
}

TEST_F(MatrixTest, ThresholdExpandModeRequiresReuseFlag) {
  // The OR-of-ANDs expansion repeats attributes, so the paper's
  // injective-rho rule rejects it unless reuse is explicitly allowed.
  const PolicyPtr p = parse_policy("2of(a@A, b@B, c@C)");
  EXPECT_THROW(LsssMatrix::from_policy(p, false, ThresholdMode::kExpand), PolicyError);
  const LsssMatrix m = LsssMatrix::from_policy(p, true, ThresholdMode::kExpand);
  EXPECT_EQ(m.rows(), 6);  // 3 combinations x 2 leaves
  expect_reconstructs(m, {{"a", "A"}, {"b", "B"}}, true);
  expect_reconstructs(m, {{"a", "A"}}, false);
}

TEST_F(MatrixTest, WideThresholdOnlyFeasibleDirect) {
  // 10-of-20 has C(20,10) = 184756 expansion terms — the expansion path
  // refuses, the direct path emits a 20 x 10 matrix.
  std::vector<PolicyPtr> kids;
  for (int i = 0; i < 20; ++i)
    kids.push_back(PolicyNode::attr("a" + std::to_string(i), "A"));
  const PolicyPtr p = PolicyNode::threshold(10, kids);
  EXPECT_THROW(LsssMatrix::from_policy(p, true, ThresholdMode::kExpand), PolicyError);

  const LsssMatrix m = LsssMatrix::from_policy(p);
  EXPECT_EQ(m.rows(), 20);
  EXPECT_EQ(m.cols(), 10);
  // Any 10 leaves reconstruct; any 9 do not.
  std::set<Attribute> have;
  for (int i = 0; i < 9; ++i) have.insert({"a" + std::to_string(2 * i), "A"});
  expect_reconstructs(m, have, false);
  have.insert({"a19", "A"});
  expect_reconstructs(m, have, true);
}

TEST_F(MatrixTest, NestedThresholdsDirect) {
  // Threshold over compound children, nested under other gates.
  const PolicyPtr p = parse_policy("x@X AND 2of(a@A AND b@B, c@C, d@D OR e@E)");
  const LsssMatrix m = LsssMatrix::from_policy(p);
  expect_reconstructs(m, {{"x", "X"}, {"a", "A"}, {"b", "B"}, {"c", "C"}}, true);
  expect_reconstructs(m, {{"x", "X"}, {"c", "C"}, {"e", "E"}}, true);
  expect_reconstructs(m, {{"x", "X"}, {"a", "A"}, {"c", "C"}}, false);  // AND half
  expect_reconstructs(m, {{"a", "A"}, {"b", "B"}, {"c", "C"}}, false);  // missing x
  expect_reconstructs(m, {{"x", "X"}, {"c", "C"}}, false);
}

TEST_F(MatrixTest, ThresholdOverflowGuard) {
  // Vandermonde powers n^{k-1} must fit 62 bits; a 40-of-80 gate
  // (80^39) must be rejected with a clear error rather than overflow.
  std::vector<PolicyPtr> kids;
  for (int i = 0; i < 80; ++i)
    kids.push_back(PolicyNode::attr("a" + std::to_string(i), "A"));
  const PolicyPtr p = PolicyNode::threshold(40, kids);
  EXPECT_THROW(LsssMatrix::from_policy(p), PolicyError);
}

TEST_F(MatrixTest, DuplicateAttributeRejectedByDefault) {
  EXPECT_THROW(LsssMatrix::from_policy(parse_policy("a@A OR (a@A AND b@B)")),
               PolicyError);
}

TEST_F(MatrixTest, RowAttributesMatchPolicyLeaves) {
  const PolicyPtr p = parse_policy("(x@A AND y@B) OR z@C");
  const LsssMatrix m = LsssMatrix::from_policy(p);
  ASSERT_EQ(m.rows(), 3);
  EXPECT_EQ(m.row_attribute(0).name, "x");
  EXPECT_EQ(m.row_attribute(1).name, "y");
  EXPECT_EQ(m.row_attribute(2).name, "z");
  EXPECT_EQ(m.policy_text(), p->to_string());
}

TEST_F(MatrixTest, ShareVectorFirstCoordinateIsSecret) {
  // Sharing with the full attribute set must always reconstruct.
  const LsssMatrix m = LsssMatrix::from_policy(
      parse_policy("(a@A AND b@B) OR (c@C AND d@D AND e@E)"));
  expect_reconstructs(m, {{"a", "A"}, {"b", "B"}}, true);
  expect_reconstructs(m, {{"c", "C"}, {"d", "D"}, {"e", "E"}}, true);
  expect_reconstructs(m, {{"a", "A"}, {"c", "C"}, {"d", "D"}}, false);
  expect_reconstructs(m, {{"b", "B"}, {"e", "E"}}, false);
}

// Property test: LSSS satisfiability must agree with boolean semantics on
// every subset of attributes, for a corpus of policies.
class MatrixAgreement : public ::testing::TestWithParam<const char*> {};

TEST_P(MatrixAgreement, MatchesBooleanSemanticsOnAllSubsets) {
  auto grp = Group::test_small();
  crypto::Drbg rng(std::string_view("agreement"));
  const PolicyPtr p = parse_policy(GetParam());

  // Collect distinct attributes.
  const std::vector<Attribute> all_leaves = p->leaves();
  std::set<Attribute> attr_set(all_leaves.begin(), all_leaves.end());
  std::vector<Attribute> attrs(attr_set.begin(), attr_set.end());
  ASSERT_LE(attrs.size(), 12u) << "test policy too wide for subset enumeration";

  // Both threshold compilation strategies must agree with the boolean
  // semantics on every subset.
  for (const ThresholdMode mode : {ThresholdMode::kDirect, ThresholdMode::kExpand}) {
    const LsssMatrix m = LsssMatrix::from_policy(p, /*allow_attribute_reuse=*/true, mode);
    for (uint32_t mask = 0; mask < (1u << attrs.size()); ++mask) {
      std::set<Attribute> have;
      for (size_t i = 0; i < attrs.size(); ++i)
        if (mask & (1u << i)) have.insert(attrs[i]);
      const bool boolean = p->satisfied_by(have);
      const auto coeffs = m.reconstruction(*grp, have);
      ASSERT_EQ(coeffs.has_value(), boolean)
          << "policy=" << GetParam() << " mask=" << mask
          << " mode=" << (mode == ThresholdMode::kDirect ? "direct" : "expand");
      if (coeffs) {
        const Zr s = grp->zr_random(rng);
        const auto shares = m.share(*grp, s, rng);
        Zr acc = grp->zr_zero();
        for (const auto& [row, w] : *coeffs) acc = acc + w * shares[row];
        ASSERT_EQ(acc, s) << "policy=" << GetParam() << " mask=" << mask;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, MatrixAgreement,
    ::testing::Values(
        "a@A",
        "a@A AND b@B",
        "a@A OR b@B",
        "a@A AND b@B AND c@C",
        "a@A OR b@B OR c@C",
        "(a@A AND b@B) OR c@C",
        "(a@A OR b@B) AND c@C",
        "(a@A AND b@B) OR (c@C AND d@D)",
        "(a@A OR b@B) AND (c@C OR d@D)",
        "((a@A AND b@B) OR c@C) AND d@D",
        "a@A AND (b@B OR (c@C AND d@D))",
        "2of(a@A, b@B, c@C)",
        "3of(a@A, b@B, c@C, d@D)",
        "2of(a@A AND b@B, c@C, d@D)",
        "(x@X OR y@Y) AND 2of(a@A, b@B, c@C)",
        "((a@A AND b@B) OR (c@C AND d@D)) AND (e@E OR f@F)",
        "a@A AND b@A AND c@A AND d@A AND e@A AND f@A AND g@A",
        "a@A OR (b@B AND (c@C OR (d@D AND e@E)))"));

TEST_F(MatrixTest, NullPolicyRejected) {
  EXPECT_THROW(LsssMatrix::from_policy(nullptr), PolicyError);
}

}  // namespace
}  // namespace maabe::lsss
