#include "pairing/pairing.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "pairing/group.h"

namespace maabe::pairing {
namespace {

using math::Bignum;

class PairingTest : public ::testing::Test {
 protected:
  PairingTest() : grp(Group::test_small()) {}
  std::shared_ptr<const Group> grp;
  crypto::Drbg rng{std::string_view("pairing-test")};
};

TEST_F(PairingTest, NonDegenerate) {
  const GT egg = grp->gt_generator();
  EXPECT_FALSE(egg.is_one());
}

TEST_F(PairingTest, TargetGroupHasOrderR) {
  const GT egg = grp->gt_generator();
  EXPECT_TRUE(egg.pow(grp->zr_from_bignum(grp->order())).is_one());
}

TEST_F(PairingTest, BilinearInFirstArgument) {
  const G1& g = grp->g();
  for (int i = 0; i < 5; ++i) {
    const Zr a = grp->zr_random(rng);
    EXPECT_EQ(grp->pair(g.mul(a), g), grp->pair(g, g).pow(a));
  }
}

TEST_F(PairingTest, BilinearInSecondArgument) {
  const G1& g = grp->g();
  for (int i = 0; i < 5; ++i) {
    const Zr b = grp->zr_random(rng);
    EXPECT_EQ(grp->pair(g, g.mul(b)), grp->pair(g, g).pow(b));
  }
}

TEST_F(PairingTest, FullBilinearity) {
  // e(aP, bQ) = e(P, Q)^(ab) on random P, Q.
  for (int i = 0; i < 5; ++i) {
    const G1 p = grp->g1_random(rng);
    const G1 q = grp->g1_random(rng);
    const Zr a = grp->zr_random(rng), b = grp->zr_random(rng);
    EXPECT_EQ(grp->pair(p.mul(a), q.mul(b)), grp->pair(p, q).pow(a * b));
  }
}

TEST_F(PairingTest, Symmetric) {
  for (int i = 0; i < 5; ++i) {
    const G1 p = grp->g1_random(rng);
    const G1 q = grp->g1_random(rng);
    EXPECT_EQ(grp->pair(p, q), grp->pair(q, p));
  }
}

TEST_F(PairingTest, MultiplicativeInProducts) {
  // e(P1 + P2, Q) = e(P1, Q) * e(P2, Q).
  const G1 p1 = grp->g1_random(rng), p2 = grp->g1_random(rng), q = grp->g1_random(rng);
  EXPECT_EQ(grp->pair(p1 + p2, q), grp->pair(p1, q) * grp->pair(p2, q));
}

TEST_F(PairingTest, IdentityPairsToOne) {
  const G1 p = grp->g1_random(rng);
  EXPECT_TRUE(grp->pair(grp->g1_identity(), p).is_one());
  EXPECT_TRUE(grp->pair(p, grp->g1_identity()).is_one());
}

TEST_F(PairingTest, NegationInvertsPairing) {
  const G1 p = grp->g1_random(rng), q = grp->g1_random(rng);
  EXPECT_EQ(grp->pair(p.neg(), q), grp->pair(p, q).inverse());
}

TEST_F(PairingTest, GtInverseAndDiv) {
  const GT a = grp->gt_random(rng), b = grp->gt_random(rng);
  EXPECT_TRUE((a * a.inverse()).is_one());
  EXPECT_EQ(a / b * b, a);
}

TEST_F(PairingTest, GtPowArithmetic) {
  const GT a = grp->gt_generator();
  const Zr x = grp->zr_random(rng), y = grp->zr_random(rng);
  EXPECT_EQ(a.pow(x) * a.pow(y), a.pow(x + y));
  EXPECT_EQ(a.pow(x).pow(y), a.pow(x * y));
  EXPECT_TRUE(a.pow(grp->zr_zero()).is_one());
}

TEST_F(PairingTest, GtSerializationRoundTrip) {
  for (int i = 0; i < 5; ++i) {
    const GT a = grp->gt_random(rng);
    const Bytes b = a.to_bytes();
    EXPECT_EQ(b.size(), grp->gt_size());
    EXPECT_EQ(grp->gt_from_bytes(b), a);
  }
}

TEST_F(PairingTest, DecisionalStructure) {
  // e(g^a, g^b) == e(g, g)^(ab) but != e(g,g)^c for random c.
  const G1& g = grp->g();
  const Zr a = grp->zr_random(rng), b = grp->zr_random(rng);
  const Zr c = grp->zr_random(rng);
  const GT lhs = grp->pair(g.mul(a), g.mul(b));
  EXPECT_EQ(lhs, grp->gt_generator().pow(a * b));
  if (c != a * b) EXPECT_NE(lhs, grp->gt_generator().pow(c));
}

TEST(PairingFullSize, Pbc512Bilinearity) {
  // One full-size check: the paper's actual 512-bit parameters.
  auto grp = Group::pbc_a512();
  crypto::Drbg rng("pbc512");
  const Zr a = grp->zr_random(rng), b = grp->zr_random(rng);
  const G1& g = grp->g();
  EXPECT_EQ(grp->pair(g.mul(a), g.mul(b)), grp->gt_generator().pow(a * b));
  EXPECT_FALSE(grp->gt_generator().is_one());
  EXPECT_TRUE(grp->gt_generator().pow(grp->zr_from_bignum(grp->order())).is_one());
}

TEST(PairingGenerated, FreshParamsWork) {
  crypto::Drbg rng("gen-params");
  const TypeAParams params = TypeAParams::generate(48, 160, rng);
  auto grp = Group::create(params);
  const Zr a = grp->zr_random(rng), b = grp->zr_random(rng);
  const G1& g = grp->g();
  EXPECT_EQ(grp->pair(g.mul(a), g.mul(b)), grp->gt_generator().pow(a * b));
}

TEST(PairingParams, ValidateCatchesBadParams) {
  TypeAParams p = TypeAParams::test_small();
  p.h = Bignum::add(p.h, Bignum::from_u64(4));
  EXPECT_THROW(p.validate(), MathError);
  TypeAParams p2 = TypeAParams::test_small();
  p2.r = Bignum::add(p2.r, Bignum::from_u64(2));
  EXPECT_THROW(p2.validate(), MathError);
}

}  // namespace
}  // namespace maabe::pairing
