#include "pairing/fp2.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "pairing/params.h"

namespace maabe::pairing {
namespace {

using math::Bignum;

class Fp2Test : public ::testing::Test {
 protected:
  Fp2Test() : fq(TypeAParams::test_small().q), fq2(fq) {}
  FpCtx fq;
  Fp2Ctx fq2;
  crypto::Drbg rng{std::string_view("fp2-test")};
};

TEST_F(Fp2Test, RingAxiomsSampled) {
  for (int i = 0; i < 20; ++i) {
    const Fp2 a = fq2.random(rng), b = fq2.random(rng), c = fq2.random(rng);
    EXPECT_EQ(fq2.add(a, b), fq2.add(b, a));
    EXPECT_EQ(fq2.mul(a, b), fq2.mul(b, a));
    EXPECT_EQ(fq2.mul(fq2.mul(a, b), c), fq2.mul(a, fq2.mul(b, c)));
    EXPECT_EQ(fq2.mul(a, fq2.add(b, c)), fq2.add(fq2.mul(a, b), fq2.mul(a, c)));
    EXPECT_EQ(fq2.add(a, fq2.neg(a)), fq2.zero());
    EXPECT_EQ(fq2.mul(a, fq2.one()), a);
  }
}

TEST_F(Fp2Test, ImaginaryUnitSquaresToMinusOne) {
  const Fp2 i{fq.zero(), fq.one()};
  const Fp2 minus_one{fq.neg(fq.one()), fq.zero()};
  EXPECT_EQ(fq2.mul(i, i), minus_one);
  EXPECT_EQ(fq2.sqr(i), minus_one);
}

TEST_F(Fp2Test, SqrMatchesMul) {
  for (int i = 0; i < 20; ++i) {
    const Fp2 a = fq2.random(rng);
    EXPECT_EQ(fq2.sqr(a), fq2.mul(a, a));
  }
}

TEST_F(Fp2Test, InverseIsInverse) {
  for (int i = 0; i < 20; ++i) {
    const Fp2 a = fq2.random(rng);
    if (fq2.is_zero(a)) continue;
    EXPECT_EQ(fq2.mul(a, fq2.inv(a)), fq2.one());
  }
  EXPECT_THROW(fq2.inv(fq2.zero()), MathError);
}

TEST_F(Fp2Test, CyclotomicSqrMatchesGenericOnNormOne) {
  EXPECT_TRUE(fq2.is_norm_one(fq2.one()));
  EXPECT_FALSE(fq2.is_norm_one(fq2.zero()));
  for (int i = 0; i < 20; ++i) {
    const Fp2 a = fq2.random(rng);
    if (fq2.is_zero(a)) continue;
    // a^(q-1) = conj(a)/a lands in the norm-1 cyclotomic subgroup —
    // the same easy-part map the final exponentiation applies.
    const Fp2 u = fq2.mul(fq2.conj(a), fq2.inv(a));
    ASSERT_TRUE(fq2.is_norm_one(u));
    EXPECT_EQ(fq2.sqr_cyclotomic(u), fq2.sqr(u));
    EXPECT_EQ(fq2.sqr_cyclotomic(u), fq2.mul(u, u));
  }
}

TEST_F(Fp2Test, CyclotomicPowMatchesGenericPow) {
  const Bignum q = TypeAParams::test_small().q;
  for (int i = 0; i < 10; ++i) {
    const Fp2 a = fq2.random(rng);
    if (fq2.is_zero(a)) continue;
    const Fp2 u = fq2.mul(fq2.conj(a), fq2.inv(a));
    const Bignum k = rng.below(q);
    EXPECT_EQ(fq2.pow_cyclotomic(u, k), fq2.pow(u, k));
  }
  const Fp2 a = fq2.random(rng);
  const Fp2 u = fq2.mul(fq2.conj(a), fq2.inv(a));
  EXPECT_EQ(fq2.pow_cyclotomic(u, Bignum{}), fq2.one());
  EXPECT_EQ(fq2.pow_cyclotomic(u, Bignum::from_u64(1)), u);
}

TEST_F(Fp2Test, ConjugationProperties) {
  for (int i = 0; i < 10; ++i) {
    const Fp2 a = fq2.random(rng), b = fq2.random(rng);
    EXPECT_EQ(fq2.conj(fq2.conj(a)), a);
    EXPECT_EQ(fq2.conj(fq2.mul(a, b)), fq2.mul(fq2.conj(a), fq2.conj(b)));
    // a * conj(a) has zero imaginary part (it is the norm).
    EXPECT_TRUE(fq2.mul(a, fq2.conj(a)).b.is_zero());
  }
}

TEST_F(Fp2Test, PowMatchesRepeatedMul) {
  const Fp2 a = fq2.random(rng);
  Fp2 acc = fq2.one();
  for (uint64_t e = 0; e < 17; ++e) {
    EXPECT_EQ(fq2.pow(a, Bignum::from_u64(e)), acc) << e;
    acc = fq2.mul(acc, a);
  }
}

TEST_F(Fp2Test, PowAddsExponents) {
  const Fp2 a = fq2.random(rng);
  const Bignum e1 = rng.below(Bignum::from_hex("ffffffffffffffff"));
  const Bignum e2 = rng.below(Bignum::from_hex("ffffffffffffffff"));
  EXPECT_EQ(fq2.mul(fq2.pow(a, e1), fq2.pow(a, e2)), fq2.pow(a, Bignum::add(e1, e2)));
}

TEST_F(Fp2Test, MultiplicativeGroupOrder) {
  // a^(q^2 - 1) == 1 for nonzero a.
  const Fp2 a = fq2.random(rng);
  const Bignum q = fq.modulus();
  const Bignum order = Bignum::sub(Bignum::mul(q, q), Bignum::from_u64(1));
  EXPECT_EQ(fq2.pow(a, order), fq2.one());
}

TEST_F(Fp2Test, SerializationRoundTrip) {
  for (int i = 0; i < 10; ++i) {
    const Fp2 a = fq2.random(rng);
    const Bytes b = fq2.to_bytes(a);
    EXPECT_EQ(b.size(), fq2.byte_length());
    EXPECT_EQ(fq2.from_bytes(b), a);
  }
  EXPECT_THROW(fq2.from_bytes(Bytes(fq2.byte_length() + 1)), WireError);
}

}  // namespace
}  // namespace maabe::pairing
