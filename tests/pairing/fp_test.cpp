#include "pairing/fp.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "pairing/params.h"

namespace maabe::pairing {
namespace {

using math::Bignum;

class FpTest : public ::testing::Test {
 protected:
  FpTest() : fq(TypeAParams::test_small().q) {}
  FpCtx fq;
  crypto::Drbg rng{std::string_view("fp-test")};
};

TEST_F(FpTest, EncodeDecodeRoundTrip) {
  for (int i = 0; i < 20; ++i) {
    const Bignum plain = rng.below(fq.modulus());
    EXPECT_EQ(fq.dec(fq.enc(plain)), plain);
  }
}

TEST_F(FpTest, FieldAxiomsSampled) {
  for (int i = 0; i < 20; ++i) {
    const Bignum a = fq.random(rng), b = fq.random(rng), c = fq.random(rng);
    EXPECT_EQ(fq.add(a, b), fq.add(b, a));
    EXPECT_EQ(fq.mul(a, b), fq.mul(b, a));
    EXPECT_EQ(fq.mul(a, fq.add(b, c)), fq.add(fq.mul(a, b), fq.mul(a, c)));
    EXPECT_EQ(fq.add(a, fq.neg(a)), fq.zero());
    EXPECT_EQ(fq.mul(a, fq.one()), a);
    EXPECT_EQ(fq.sub(a, b), fq.add(a, fq.neg(b)));
  }
}

TEST_F(FpTest, InverseIsInverse) {
  for (int i = 0; i < 20; ++i) {
    const Bignum a = fq.random(rng);
    if (a.is_zero()) continue;
    EXPECT_EQ(fq.mul(a, fq.inv(a)), fq.one());
  }
  EXPECT_THROW(fq.inv(fq.zero()), MathError);
}

TEST_F(FpTest, SqrMatchesMul) {
  for (int i = 0; i < 20; ++i) {
    const Bignum a = fq.random(rng);
    EXPECT_EQ(fq.sqr(a), fq.mul(a, a));
  }
}

TEST_F(FpTest, SqrtOfSquaresWorks) {
  int residues = 0;
  for (int i = 0; i < 30; ++i) {
    const Bignum a = fq.random(rng);
    const Bignum sq = fq.sqr(a);
    ASSERT_TRUE(fq.is_qr(sq));
    const Bignum root = fq.sqrt(sq);
    EXPECT_TRUE(root == a || root == fq.neg(a));
    ++residues;
  }
  EXPECT_GT(residues, 0);
}

TEST_F(FpTest, NonResidueDetected) {
  // -1 is a non-residue because q = 3 (mod 4).
  const Bignum minus_one = fq.neg(fq.one());
  EXPECT_FALSE(fq.is_qr(minus_one));
  EXPECT_THROW(fq.sqrt(minus_one), MathError);
}

TEST_F(FpTest, QrMultiplicativity) {
  // Product of two non-residues is a residue.
  Bignum nr1, nr2;
  bool found1 = false;
  for (int i = 0; i < 100 && !found1; ++i) {
    const Bignum a = fq.random(rng);
    if (!a.is_zero() && !fq.is_qr(a)) {
      if (nr1.is_zero()) {
        nr1 = a;
      } else {
        nr2 = a;
        found1 = true;
      }
    }
  }
  ASSERT_TRUE(found1);
  EXPECT_TRUE(fq.is_qr(fq.mul(nr1, nr2)));
}

TEST_F(FpTest, SerializationRoundTrip) {
  for (int i = 0; i < 10; ++i) {
    const Bignum a = fq.random(rng);
    const Bytes b = fq.to_bytes(a);
    EXPECT_EQ(b.size(), fq.byte_length());
    EXPECT_EQ(fq.from_bytes(b), a);
  }
}

TEST_F(FpTest, FromBytesRejectsBadInput) {
  EXPECT_THROW(fq.from_bytes(Bytes(fq.byte_length() - 1)), WireError);
  EXPECT_THROW(fq.from_bytes(Bytes(fq.byte_length() + 1)), WireError);
  // The modulus itself is not a reduced residue.
  EXPECT_THROW(fq.from_bytes(fq.modulus().to_bytes_be(fq.byte_length())), WireError);
}

}  // namespace
}  // namespace maabe::pairing
