// The multi-pairing kernel's algebra at the Group layer: Miller values
// (unreduced pairings), the shared final exponentiation, fixed-argument
// line tables. Every equality here is bit-for-bit — the kernel's whole
// correctness story is that exact arithmetic makes the homomorphism
// reduce(a * b) == reduce(a) * reduce(b) an identity of byte strings,
// not just of group elements.
#include <gtest/gtest.h>

#include "pairing/group.h"

namespace maabe::pairing {
namespace {

std::shared_ptr<const Group> shared_group() {
  static std::shared_ptr<const Group> grp = Group::test_small();
  return grp;
}

class MultiPairTest : public ::testing::Test {
 protected:
  MultiPairTest() : grp(shared_group()), rng(std::string_view("multi-pair")) {}

  std::shared_ptr<const Group> grp;
  crypto::Drbg rng;
};

TEST_F(MultiPairTest, MillerReduceMatchesPair) {
  for (int i = 0; i < 5; ++i) {
    const G1 a = grp->g1_random(rng), b = grp->g1_random(rng);
    EXPECT_EQ(grp->miller_reduce(grp->miller(a, b)).to_bytes(),
              grp->pair(a, b).to_bytes());
  }
}

TEST_F(MultiPairTest, FinalExponentiationIsAHomomorphism) {
  for (int i = 0; i < 5; ++i) {
    const MillerVal m1 = grp->miller(grp->g1_random(rng), grp->g1_random(rng));
    const MillerVal m2 = grp->miller(grp->g1_random(rng), grp->g1_random(rng));
    EXPECT_EQ(grp->miller_reduce(m1 * m2).to_bytes(),
              (grp->miller_reduce(m1) * grp->miller_reduce(m2)).to_bytes());
  }
}

TEST_F(MultiPairTest, SharedReductionMatchesSerialProduct) {
  for (const size_t n : {0u, 1u, 2u, 17u}) {
    MillerVal folded = grp->miller_one();
    GT serial = grp->gt_one();
    for (size_t i = 0; i < n; ++i) {
      const G1 a = grp->g1_random(rng), b = grp->g1_random(rng);
      folded = folded * grp->miller(a, b);
      serial = serial * grp->pair(a, b);
    }
    EXPECT_EQ(grp->miller_reduce(folded).to_bytes(), serial.to_bytes())
        << "product size " << n;
  }
}

TEST_F(MultiPairTest, MillerValuePowCommutesWithReduction) {
  for (int i = 0; i < 5; ++i) {
    const MillerVal m = grp->miller(grp->g1_random(rng), grp->g1_random(rng));
    const Zr k = grp->zr_random(rng);
    EXPECT_EQ(grp->miller_reduce(m.pow(k)).to_bytes(),
              grp->miller_reduce(m).pow(k).to_bytes());
  }
}

TEST_F(MultiPairTest, NegatedArgumentInvertsThePairing) {
  const G1 a = grp->g1_random(rng), b = grp->g1_random(rng);
  EXPECT_EQ(grp->pair(a, b.neg()).to_bytes(),
            grp->pair(a, b).inverse().to_bytes());
  // The fold identity decrypt relies on: m(a,b) * m(a,-b) reduces to 1.
  EXPECT_EQ(grp->miller_reduce(grp->miller(a, b) * grp->miller(a, b.neg())),
            grp->gt_one());
}

TEST_F(MultiPairTest, IdentityInputsYieldNeutralMillerValues) {
  const G1 a = grp->g1_random(rng);
  const G1 inf = grp->g1_identity();
  EXPECT_TRUE(grp->miller(inf, a).is_one());
  EXPECT_TRUE(grp->miller(a, inf).is_one());
  EXPECT_TRUE(grp->miller_one().is_one());
  // An identity term folded into a product leaves it unchanged.
  const MillerVal m = grp->miller(a, grp->g1_random(rng));
  EXPECT_EQ((m * grp->miller(inf, a)).to_bytes(), m.to_bytes());
  // Reducing the neutral value still gives GT's one.
  EXPECT_EQ(grp->miller_reduce(grp->miller_one()), grp->gt_one());
}

TEST_F(MultiPairTest, PrecomputedLineTableMatchesPair) {
  for (int i = 0; i < 3; ++i) {
    const G1 base = grp->g1_random(rng);
    const auto pre = grp->pair_precompute(base);
    ASSERT_FALSE(pre->base_is_infinity());
    EXPECT_GT(pre->line_count(), 0u);
    for (int j = 0; j < 3; ++j) {
      const G1 q = grp->g1_random(rng);
      // Same bits at both layers: unreduced and reduced.
      EXPECT_EQ(grp->miller_with(*pre, q).to_bytes(),
                grp->miller(base, q).to_bytes());
      EXPECT_EQ(grp->miller_reduce(grp->miller_with(*pre, q)).to_bytes(),
                grp->pair(base, q).to_bytes());
    }
  }
}

TEST_F(MultiPairTest, PrecomputeHandlesIdentityBase) {
  const auto pre = grp->pair_precompute(grp->g1_identity());
  EXPECT_TRUE(pre->base_is_infinity());
  EXPECT_TRUE(grp->miller_with(*pre, grp->g1_random(rng)).is_one());
}

}  // namespace
}  // namespace maabe::pairing
