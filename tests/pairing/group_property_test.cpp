// Parameterized property sweeps over the public Group API: algebraic
// identities, serialization stability and hash determinism across many
// seeds.
#include <gtest/gtest.h>

#include "common/errors.h"
#include "pairing/group.h"

namespace maabe::pairing {
namespace {

std::shared_ptr<const Group> shared_group() {
  static std::shared_ptr<const Group> grp = Group::test_small();
  return grp;
}

class GroupProperty : public ::testing::TestWithParam<int> {
 protected:
  GroupProperty()
      : grp(shared_group()),
        rng("group-prop-" + std::to_string(GetParam())) {}

  std::shared_ptr<const Group> grp;
  crypto::Drbg rng;
};

TEST_P(GroupProperty, ZrFieldIdentities) {
  const Zr a = grp->zr_random(rng), b = grp->zr_random(rng), c = grp->zr_random(rng);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a - a, grp->zr_zero());
  EXPECT_EQ(a + a.neg(), grp->zr_zero());
  if (!a.is_zero()) {
    EXPECT_EQ(a * a.inverse(), grp->zr_one());
    EXPECT_EQ(a.inverse().inverse(), a);
  }
}

TEST_P(GroupProperty, ZrSerializationRoundTrip) {
  const Zr a = grp->zr_random(rng);
  const Bytes b = a.to_bytes();
  EXPECT_EQ(b.size(), grp->zr_size());
  EXPECT_EQ(grp->zr_from_bytes(b), a);
}

TEST_P(GroupProperty, G1ExponentLaws) {
  const G1 p = grp->g1_random(rng);
  const Zr a = grp->zr_random(rng), b = grp->zr_random(rng);
  // (p^a)^b = p^(ab); p^a * p^b = p^(a+b); p^0 = identity; p^(-a) = (p^a)^-1.
  EXPECT_EQ(p.mul(a).mul(b), p.mul(a * b));
  EXPECT_EQ(p.mul(a) + p.mul(b), p.mul(a + b));
  EXPECT_TRUE(p.mul(grp->zr_zero()).is_identity());
  EXPECT_EQ(p.mul(a.neg()), p.mul(a).neg());
}

TEST_P(GroupProperty, PairingRespectsAllStructure) {
  const Zr a = grp->zr_random(rng), b = grp->zr_random(rng);
  const G1 p = grp->g1_random(rng), q = grp->g1_random(rng);
  EXPECT_EQ(grp->pair(p.mul(a), q.mul(b)), grp->pair(p, q).pow(a * b));
  EXPECT_EQ(grp->pair(p + q, p), grp->pair(p, p) * grp->pair(q, p));
  EXPECT_EQ(grp->pair(p, q), grp->pair(q, p));
}

TEST_P(GroupProperty, GtGroupIdentities) {
  const GT x = grp->gt_random(rng), y = grp->gt_random(rng);
  const Zr a = grp->zr_random(rng);
  EXPECT_EQ(x * y, y * x);
  EXPECT_TRUE((x / x).is_one());
  EXPECT_EQ((x * y).inverse(), x.inverse() * y.inverse());
  EXPECT_EQ((x * y).pow(a), x.pow(a) * y.pow(a));
  EXPECT_EQ(grp->gt_from_bytes(x.to_bytes()), x);
}

TEST_P(GroupProperty, G1SerializationStable) {
  const G1 p = grp->g1_random(rng);
  // Serialize-deserialize-serialize is a fixed point.
  const Bytes b1 = p.to_bytes();
  const Bytes b2 = grp->g1_from_bytes(b1).to_bytes();
  EXPECT_EQ(b1, b2);
}

TEST_P(GroupProperty, HashesDeterministicAndSpread) {
  const std::string input = "seed-" + std::to_string(GetParam());
  EXPECT_EQ(grp->hash_to_zr(input), grp->hash_to_zr(input));
  EXPECT_NE(grp->hash_to_zr(input), grp->hash_to_zr(input + "x"));
  EXPECT_EQ(grp->hash_to_g1(input), grp->hash_to_g1(input));
  EXPECT_NE(grp->hash_to_g1(input), grp->hash_to_g1(input + "x"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace maabe::pairing
