#include "pairing/fixed_base.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "pairing/group.h"

namespace maabe::pairing {
namespace {

using math::Bignum;

class FixedBaseTest : public ::testing::Test {
 protected:
  FixedBaseTest() : grp(Group::test_small()) {}
  std::shared_ptr<const Group> grp;
  crypto::Drbg rng{std::string_view("fixed-base")};
};

TEST_F(FixedBaseTest, GPowMatchesNaiveScalarMul) {
  for (int i = 0; i < 20; ++i) {
    const Zr k = grp->zr_random(rng);
    EXPECT_EQ(grp->g_pow(k), grp->g().mul(k));
  }
}

TEST_F(FixedBaseTest, EggPowMatchesNaivePow) {
  for (int i = 0; i < 20; ++i) {
    const Zr k = grp->zr_random(rng);
    EXPECT_EQ(grp->egg_pow(k), grp->gt_generator().pow(k));
  }
}

TEST_F(FixedBaseTest, EdgeExponents) {
  EXPECT_TRUE(grp->g_pow(grp->zr_zero()).is_identity());
  EXPECT_EQ(grp->g_pow(grp->zr_one()), grp->g());
  EXPECT_TRUE(grp->egg_pow(grp->zr_zero()).is_one());
  EXPECT_EQ(grp->egg_pow(grp->zr_one()), grp->gt_generator());
  // r - 1 (the largest reduced exponent).
  const Zr top = grp->zr_from_bignum(
      Bignum::sub(grp->order(), Bignum::from_u64(1)));
  EXPECT_EQ(grp->g_pow(top), grp->g().mul(top));
  EXPECT_EQ(grp->egg_pow(top), grp->gt_generator().pow(top));
}

TEST_F(FixedBaseTest, HomomorphicInExponent) {
  const Zr a = grp->zr_random(rng), b = grp->zr_random(rng);
  EXPECT_EQ(grp->g_pow(a) + grp->g_pow(b), grp->g_pow(a + b));
  EXPECT_EQ(grp->egg_pow(a) * grp->egg_pow(b), grp->egg_pow(a + b));
}

TEST_F(FixedBaseTest, CrossGroupExponentRejected) {
  auto other = Group::test_small();
  crypto::Drbg rng2(std::string_view("o"));
  const Zr foreign = other->zr_random(rng2);
  EXPECT_THROW((void)grp->g_pow(foreign), MathError);
  EXPECT_THROW((void)grp->egg_pow(foreign), MathError);
}

TEST_F(FixedBaseTest, RawTableClassesValidateInputs) {
  const CurveCtx& curve = grp->ctx().curve();
  EXPECT_THROW(G1FixedBase(curve, AffinePoint::infinity(), 80), MathError);
  const Fp2Ctx& fq2 = grp->ctx().fq2();
  EXPECT_THROW(GtFixedBase(fq2, fq2.zero(), 80), MathError);
}

TEST_F(FixedBaseTest, VariousWindowSizesAgree) {
  // Exercise the raw table classes at several window widths against the
  // naive square-and-multiply, over a raw curve point and a raw Fp2
  // element (no Group wrappers needed).
  const CurveCtx& curve = grp->ctx().curve();
  const FpCtx& fq = grp->ctx().fq();
  const Fp2Ctx& fq2 = grp->ctx().fq2();
  crypto::Drbg local(std::string_view("windows"));

  // Find a curve point by lifting random x values.
  AffinePoint pt = AffinePoint::infinity();
  for (int i = 0; i < 100 && pt.inf; ++i) {
    const Bignum x = fq.random(local);
    Bignum y;
    if (curve.lift_x(x, &y)) pt = {x, y, false};
  }
  ASSERT_FALSE(pt.inf);

  const Bignum k = local.below(grp->order());
  const AffinePoint expect_pt = curve.mul(pt, k);
  const Fp2 base2 = fq2.random(local);
  const Fp2 expect2 = fq2.pow(base2, k);

  for (int w : {1, 2, 3, 5, 8}) {
    const G1FixedBase t1(curve, pt, grp->order().bit_length(), w);
    EXPECT_TRUE(curve.eq(t1.pow(k), expect_pt)) << "window " << w;
    const GtFixedBase t2(fq2, base2, grp->order().bit_length(), w);
    EXPECT_EQ(t2.pow(k), expect2) << "window " << w;
  }
}

TEST_F(FixedBaseTest, ExponentBeyondTableRangeRejected) {
  const CurveCtx& curve = grp->ctx().curve();
  const FpCtx& fq = grp->ctx().fq();
  AffinePoint pt = AffinePoint::infinity();
  crypto::Drbg local(std::string_view("range"));
  for (int i = 0; i < 100 && pt.inf; ++i) {
    const Bignum x = fq.random(local);
    Bignum y;
    if (curve.lift_x(x, &y)) pt = {x, y, false};
  }
  ASSERT_FALSE(pt.inf);
  const G1FixedBase table(curve, pt, 16);
  EXPECT_THROW((void)table.pow(Bignum::shl(Bignum::from_u64(1), 20)), MathError);
}

TEST_F(FixedBaseTest, SubgroupMembershipChecks) {
  // The generator and its powers are in the subgroup.
  EXPECT_TRUE(grp->g().in_subgroup());
  EXPECT_TRUE(grp->g_pow(grp->zr_random(rng)).in_subgroup());
  EXPECT_TRUE(grp->g1_identity().in_subgroup());
  EXPECT_TRUE(grp->gt_generator().in_subgroup());
  EXPECT_TRUE(grp->gt_one().in_subgroup());
  EXPECT_TRUE(grp->egg_pow(grp->zr_random(rng)).in_subgroup());

  // A random on-curve point is (with overwhelming probability for our
  // cofactor) NOT in the order-r subgroup; reconstruct one via the
  // hash-to-curve x-lift without cofactor clearing.
  const FpCtx& fq = grp->ctx().fq();
  const CurveCtx& curve = grp->ctx().curve();
  crypto::Drbg local(std::string_view("coset"));
  bool saw_outside = false;
  for (int i = 0; i < 20 && !saw_outside; ++i) {
    const Bignum x = fq.random(local);
    Bignum y;
    if (!curve.lift_x(x, &y)) continue;
    // Wrap through the byte decoder (which does NOT cofactor-clear).
    Bytes enc = fq.to_bytes(x);
    enc.push_back(static_cast<uint8_t>(fq.dec(y).is_odd() ? 1 : 0));
    const G1 raw = grp->g1_from_bytes(enc);
    if (!raw.in_subgroup()) saw_outside = true;
  }
  EXPECT_TRUE(saw_outside) << "every random point landed in the subgroup?";
}

}  // namespace
}  // namespace maabe::pairing
