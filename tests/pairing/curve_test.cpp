#include "pairing/curve.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "pairing/group.h"
#include "pairing/params.h"

namespace maabe::pairing {
namespace {

using math::Bignum;

class CurveTest : public ::testing::Test {
 protected:
  CurveTest() : grp(Group::test_small()) {}
  std::shared_ptr<const Group> grp;
  crypto::Drbg rng{std::string_view("curve-test")};
};

TEST_F(CurveTest, GeneratorHasOrderR) {
  const G1& g = grp->g();
  EXPECT_FALSE(g.is_identity());
  EXPECT_TRUE(g.mul(grp->zr_from_bignum(grp->order())).is_identity());
  // No smaller order: r is prime, so any element is either identity or
  // has order exactly r; g^1 != identity was checked above.
  EXPECT_FALSE(g.mul(grp->zr_one()).is_identity());
}

TEST_F(CurveTest, GroupLawBasics) {
  const G1 p = grp->g1_random(rng);
  const G1 q = grp->g1_random(rng);
  const G1 o = grp->g1_identity();
  EXPECT_EQ(p + o, p);
  EXPECT_EQ(o + p, p);
  EXPECT_EQ(p + q, q + p);
  EXPECT_TRUE((p + p.neg()).is_identity());
  EXPECT_EQ(p - q, p + q.neg());
}

TEST_F(CurveTest, AssociativitySampled) {
  for (int i = 0; i < 10; ++i) {
    const G1 a = grp->g1_random(rng), b = grp->g1_random(rng), c = grp->g1_random(rng);
    EXPECT_EQ((a + b) + c, a + (b + c));
  }
}

TEST_F(CurveTest, ScalarMulMatchesRepeatedAddition) {
  const G1 p = grp->g1_random(rng);
  G1 acc = grp->g1_identity();
  for (uint64_t k = 0; k < 12; ++k) {
    EXPECT_EQ(p.mul(grp->zr_from_u64(k)), acc) << k;
    acc = acc + p;
  }
}

TEST_F(CurveTest, ScalarMulDistributes) {
  const G1 p = grp->g1_random(rng);
  const Zr a = grp->zr_random(rng), b = grp->zr_random(rng);
  EXPECT_EQ(p.mul(a) + p.mul(b), p.mul(a + b));
  EXPECT_EQ(p.mul(a).mul(b), p.mul(a * b));
}

TEST_F(CurveTest, DoublingConsistent) {
  const G1 p = grp->g1_random(rng);
  EXPECT_EQ(p + p, p.mul(grp->zr_from_u64(2)));
}

TEST_F(CurveTest, RandomPointsAreInSubgroup) {
  for (int i = 0; i < 5; ++i) {
    const G1 p = grp->g1_random(rng);
    EXPECT_TRUE(p.mul(grp->zr_from_bignum(grp->order())).is_identity());
  }
}

TEST_F(CurveTest, HashToG1DeterministicAndInSubgroup) {
  const G1 a1 = grp->hash_to_g1(std::string_view("attribute:doctor"));
  const G1 a2 = grp->hash_to_g1(std::string_view("attribute:doctor"));
  const G1 b = grp->hash_to_g1(std::string_view("attribute:nurse"));
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_FALSE(a1.is_identity());
  EXPECT_TRUE(a1.mul(grp->zr_from_bignum(grp->order())).is_identity());
}

TEST_F(CurveTest, SerializationRoundTrip) {
  for (int i = 0; i < 10; ++i) {
    const G1 p = grp->g1_random(rng);
    const Bytes b = p.to_bytes();
    EXPECT_EQ(b.size(), grp->g1_size());
    EXPECT_EQ(grp->g1_from_bytes(b), p);
  }
}

TEST_F(CurveTest, SerializationIdentity) {
  const Bytes b = grp->g1_identity().to_bytes();
  EXPECT_EQ(b.size(), grp->g1_size());
  EXPECT_TRUE(grp->g1_from_bytes(b).is_identity());
}

TEST_F(CurveTest, SerializationNegatesWithSignBit) {
  const G1 p = grp->g1_random(rng);
  Bytes b = p.to_bytes();
  b.back() ^= 1;  // flip the sign flag
  EXPECT_EQ(grp->g1_from_bytes(b), p.neg());
}

TEST_F(CurveTest, UncompressedSerializationRoundTrip) {
  for (int i = 0; i < 10; ++i) {
    const G1 p = grp->g1_random(rng);
    const Bytes b = p.to_bytes_uncompressed();
    EXPECT_EQ(b.size(), grp->g1_uncompressed_size());
    EXPECT_EQ(grp->g1_from_bytes_uncompressed(b), p);
  }
  const Bytes id = grp->g1_identity().to_bytes_uncompressed();
  EXPECT_EQ(id.size(), grp->g1_uncompressed_size());
  EXPECT_TRUE(grp->g1_from_bytes_uncompressed(id).is_identity());
}

TEST_F(CurveTest, UncompressedDeserializationRejectsMalformed) {
  const G1 p = grp->g1_random(rng);
  const Bytes good = p.to_bytes_uncompressed();
  EXPECT_THROW(grp->g1_from_bytes_uncompressed(Bytes(good.size() - 1)), WireError);
  Bytes flag = good;
  flag.back() = 1;  // only 0 (point) and 2 (infinity) are valid
  EXPECT_THROW(grp->g1_from_bytes_uncompressed(flag), WireError);
  Bytes off = good;
  off[good.size() / 2] ^= 0x5a;  // break y: (x, y) leaves the curve
  EXPECT_THROW(grp->g1_from_bytes_uncompressed(off), WireError);
  Bytes inf(grp->g1_uncompressed_size(), 0);
  inf.back() = 2;
  inf[0] = 1;  // nonzero coordinate bytes in an infinity encoding
  EXPECT_THROW(grp->g1_from_bytes_uncompressed(inf), WireError);
}

TEST_F(CurveTest, DeserializationRejectsMalformed) {
  EXPECT_THROW(grp->g1_from_bytes(Bytes(grp->g1_size() - 1)), WireError);
  Bytes bad(grp->g1_size(), 0);
  bad.back() = 7;  // invalid flag
  EXPECT_THROW(grp->g1_from_bytes(bad), WireError);
  // x = 1: rhs = 2; whether 2 is a QR depends on q, so instead use a
  // known non-liftable x by searching.
  crypto::Drbg local("bad-x");
  for (int i = 0; i < 50; ++i) {
    Bytes cand = local.bytes(grp->g1_size());
    cand.back() = 0;
    try {
      (void)grp->g1_from_bytes(cand);
    } catch (const WireError&) {
      SUCCEED();
      return;
    }
  }
  FAIL() << "never saw a rejected x-coordinate";
}

TEST_F(CurveTest, MixedGroupOperationsRejected) {
  auto other = Group::test_small();
  const G1 p = grp->g1_random(rng);
  crypto::Drbg rng2("other");
  const G1 q = other->g1_random(rng2);
  EXPECT_THROW((void)(p + q), MathError);
  EXPECT_THROW((void)(p == q), MathError);
  EXPECT_THROW((void)p.mul(other->zr_one()), MathError);
}

TEST_F(CurveTest, UninitializedElementsRejected) {
  G1 p;
  EXPECT_THROW((void)p.to_bytes(), MathError);
  EXPECT_THROW((void)p.neg(), MathError);
  Zr z;
  EXPECT_THROW((void)z.to_bytes(), MathError);
}

}  // namespace
}  // namespace maabe::pairing
