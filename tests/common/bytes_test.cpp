#include "common/bytes.h"

#include <gtest/gtest.h>

#include "common/errors.h"

namespace maabe {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);
}

TEST(Bytes, EmptyHex) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, FromHexRejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), WireError);    // odd length
  EXPECT_THROW(from_hex("zz"), WireError);     // bad digit
  EXPECT_THROW(from_hex("a b0"), WireError);   // whitespace
}

TEST(Bytes, SecureEqual) {
  const Bytes a = {1, 2, 3}, b = {1, 2, 3}, c = {1, 2, 4}, d = {1, 2};
  EXPECT_TRUE(secure_equal(a, b));
  EXPECT_FALSE(secure_equal(a, c));
  EXPECT_FALSE(secure_equal(a, d));
  EXPECT_TRUE(secure_equal({}, {}));
}

TEST(Bytes, StringConversions) {
  const std::string s = "hello";
  EXPECT_EQ(string_of(bytes_of(s)), s);
  EXPECT_EQ(bytes_of("").size(), 0u);
}

TEST(Bytes, Concat) {
  const Bytes a = {1, 2}, b = {3};
  EXPECT_EQ(concat(a, b), (Bytes{1, 2, 3}));
  EXPECT_EQ(concat({}, b), b);
  EXPECT_EQ(concat(a, {}), a);
}

}  // namespace
}  // namespace maabe
