#include "common/wire.h"

#include <gtest/gtest.h>

#include "common/errors.h"

namespace maabe {
namespace {

TEST(Wire, IntegersRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u32(0x01020304);
  w.u64(0x0102030405060708ull);
  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0x01020304u);
  EXPECT_EQ(r.u64(), 0x0102030405060708ull);
  EXPECT_TRUE(r.done());
}

TEST(Wire, BigEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  EXPECT_EQ(w.bytes(), (Bytes{1, 2, 3, 4}));
}

TEST(Wire, VarBytesAndStrings) {
  Writer w;
  w.var_bytes(Bytes{9, 8, 7});
  w.str("policy");
  w.var_bytes({});
  Reader r(w.bytes());
  EXPECT_EQ(r.var_bytes(), (Bytes{9, 8, 7}));
  EXPECT_EQ(r.str(), "policy");
  EXPECT_TRUE(r.var_bytes().empty());
  r.expect_done();
}

TEST(Wire, RawFixedWidth) {
  Writer w;
  w.raw(Bytes{1, 2, 3, 4, 5});
  Reader r(w.bytes());
  EXPECT_EQ(r.raw(2), (Bytes{1, 2}));
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_EQ(r.raw(3), (Bytes{3, 4, 5}));
}

TEST(Wire, TruncationDetected) {
  Writer w;
  w.u32(7);
  {
    Reader r(ByteView(w.bytes().data(), 3));
    EXPECT_THROW(r.u32(), WireError);
  }
  {
    Writer w2;
    w2.u32(100);  // length prefix promising 100 bytes
    Reader r(w2.bytes());
    EXPECT_THROW(r.var_bytes(), WireError);
  }
}

TEST(Wire, TrailingBytesDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.bytes());
  r.u8();
  EXPECT_THROW(r.expect_done(), WireError);
}

TEST(Wire, EmptyReader) {
  Reader r(ByteView{});
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.u8(), WireError);
}

}  // namespace
}  // namespace maabe
