#include "crypto/aes.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/errors.h"

namespace maabe::crypto {
namespace {

// FIPS-197 Appendix C vectors.
TEST(Aes, Fips197Aes128) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  uint8_t block[16];
  std::memcpy(block, pt.data(), 16);
  Aes(key).encrypt_block(block);
  EXPECT_EQ(to_hex(ByteView(block, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
  Aes(key).decrypt_block(block);
  EXPECT_EQ(Bytes(block, block + 16), pt);
}

TEST(Aes, Fips197Aes192) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f1011121314151617");
  uint8_t block[16];
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  std::memcpy(block, pt.data(), 16);
  Aes(key).encrypt_block(block);
  EXPECT_EQ(to_hex(ByteView(block, 16)), "dda97ca4864cdfe06eaf70a0ec0d7191");
  Aes(key).decrypt_block(block);
  EXPECT_EQ(Bytes(block, block + 16), pt);
}

TEST(Aes, Fips197Aes256) {
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  uint8_t block[16];
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  std::memcpy(block, pt.data(), 16);
  Aes(key).encrypt_block(block);
  EXPECT_EQ(to_hex(ByteView(block, 16)), "8ea2b7ca516745bfeafc49904b496089");
  Aes(key).decrypt_block(block);
  EXPECT_EQ(Bytes(block, block + 16), pt);
}

TEST(Aes, RejectsBadKeySizes) {
  EXPECT_THROW(Aes(Bytes(15)), CryptoError);
  EXPECT_THROW(Aes(Bytes(17)), CryptoError);
  EXPECT_THROW(Aes(Bytes(0)), CryptoError);
  EXPECT_THROW(Aes(Bytes(33)), CryptoError);
}

// NIST SP 800-38A F.5.1 (AES-128-CTR).
TEST(AesCtr, Sp80038aVector) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes iv = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const Bytes expect = from_hex(
      "874d6191b620e3261bef6864990db6ce"
      "9806f66b7970fdff8617187bb9fffdff"
      "5ae4df3edbd5d35e5b4f09020db03eab"
      "1e031dda2fbe03d1792170a0f3009cee");
  EXPECT_EQ(aes_ctr(key, iv, pt), expect);
  // CTR is an involution.
  EXPECT_EQ(aes_ctr(key, iv, expect), pt);
}

TEST(AesCtr, PartialBlocks) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes iv(16, 0x42);
  for (size_t len : {0u, 1u, 15u, 16u, 17u, 31u, 33u, 100u}) {
    const Bytes pt(len, 0xa5);
    const Bytes ct = aes_ctr(key, iv, pt);
    EXPECT_EQ(ct.size(), len);
    EXPECT_EQ(aes_ctr(key, iv, ct), pt) << len;
    if (len > 0) EXPECT_NE(ct, pt);
  }
}

TEST(AesCtr, IvMustBe16Bytes) {
  EXPECT_THROW(aes_ctr(Bytes(16), Bytes(12), Bytes(4)), CryptoError);
}

TEST(AesCtr, CounterIncrementsAcrossBlocks) {
  // Keystream blocks must differ (counter actually increments).
  const Bytes key(16, 1);
  const Bytes iv(16, 0);
  const Bytes zeros(48, 0);
  const Bytes ks = aes_ctr(key, iv, zeros);
  EXPECT_NE(Bytes(ks.begin(), ks.begin() + 16), Bytes(ks.begin() + 16, ks.begin() + 32));
  EXPECT_NE(Bytes(ks.begin() + 16, ks.begin() + 32), Bytes(ks.begin() + 32, ks.end()));
}

}  // namespace
}  // namespace maabe::crypto
