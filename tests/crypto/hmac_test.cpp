#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include "common/errors.h"

namespace maabe::crypto {
namespace {

// RFC 4231 test vectors.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(bytes_of("Jefe"),
                               bytes_of("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, bytes_of("Test Using Larger Than Block-Size Key - "
                              "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  const Bytes msg = bytes_of("same message");
  EXPECT_NE(hmac_sha256(bytes_of("key1"), msg), hmac_sha256(bytes_of("key2"), msg));
}

TEST(Kdf, DeterministicAndLabelSeparated) {
  const Bytes ikm = bytes_of("input keying material");
  const Bytes a1 = kdf(ikm, "label-a", 32);
  const Bytes a2 = kdf(ikm, "label-a", 32);
  const Bytes b = kdf(ikm, "label-b", 32);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(a1.size(), 32u);
}

TEST(Kdf, VariableLengthsArePrefixConsistent) {
  const Bytes ikm = bytes_of("ikm");
  const Bytes long_out = kdf(ikm, "l", 80);
  const Bytes short_out = kdf(ikm, "l", 48);
  EXPECT_EQ(Bytes(long_out.begin(), long_out.begin() + 48), short_out);
}

TEST(Kdf, RejectsBadLengths) {
  EXPECT_THROW(kdf(bytes_of("x"), "l", 0), CryptoError);
  EXPECT_THROW(kdf(bytes_of("x"), "l", 255 * 32 + 1), CryptoError);
}

}  // namespace
}  // namespace maabe::crypto
