#include "crypto/drbg.h"

#include <gtest/gtest.h>

#include "common/errors.h"
#include "crypto/random.h"

namespace maabe::crypto {
namespace {

using math::Bignum;

TEST(Drbg, DeterministicForSameSeed) {
  Drbg a("seed"), b("seed");
  EXPECT_EQ(a.bytes(64), b.bytes(64));
  EXPECT_EQ(a.bytes(10), b.bytes(10));
}

TEST(Drbg, DifferentSeedsDiverge) {
  Drbg a("seed-1"), b("seed-2");
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Drbg, SuccessiveOutputsDiffer) {
  Drbg d("seed");
  EXPECT_NE(d.bytes(32), d.bytes(32));
}

TEST(Drbg, ReseedChangesStream) {
  Drbg a("seed"), b("seed");
  a.reseed(bytes_of("extra"));
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Drbg, BelowIsInRange) {
  Drbg d("range");
  const Bignum bound = Bignum::from_hex("a8b318d0752b1825bc55");
  for (int i = 0; i < 200; ++i) {
    const Bignum v = d.below(bound);
    EXPECT_LT(Bignum::cmp(v, bound), 0);
  }
}

TEST(Drbg, BelowSmallBoundHitsAllValues) {
  Drbg d("small");
  bool seen[5] = {};
  for (int i = 0; i < 200; ++i) seen[d.below(Bignum::from_u64(5)).to_u64()] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Drbg, BelowRejectsZeroBound) {
  Drbg d("z");
  EXPECT_THROW(d.below(Bignum()), MathError);
}

TEST(Drbg, NonzeroBelowNeverReturnsZero) {
  Drbg d("nz");
  for (int i = 0; i < 300; ++i) {
    EXPECT_FALSE(d.nonzero_below(Bignum::from_u64(2)).is_zero());
  }
}

TEST(Drbg, BelowPowerOfTwoBoundaryMasking) {
  Drbg d("mask");
  const Bignum bound = Bignum::from_u64(256);  // exactly 9 bits
  for (int i = 0; i < 100; ++i) EXPECT_LT(d.below(bound).to_u64(), 256u);
}

TEST(OsEntropy, ProducesRequestedLength) {
  EXPECT_EQ(os_entropy(16).size(), 16u);
  EXPECT_EQ(os_entropy(0).size(), 0u);
  EXPECT_NE(os_entropy(32), os_entropy(32));
}

TEST(OsEntropy, SystemDrbgWorks) {
  Drbg d = make_system_drbg();
  EXPECT_EQ(d.bytes(8).size(), 8u);
}

}  // namespace
}  // namespace maabe::crypto
