#include "crypto/authenc.h"

#include <gtest/gtest.h>

#include "common/errors.h"

namespace maabe::crypto {
namespace {

Bytes test_key() {
  Bytes k(kContentKeySize);
  for (size_t i = 0; i < k.size(); ++i) k[i] = static_cast<uint8_t>(i * 7);
  return k;
}

TEST(AuthEnc, RoundTrip) {
  Drbg rng("authenc");
  const Bytes pt = bytes_of("patient record: name=Alice diagnosis=healthy");
  const Bytes aad = bytes_of("component:medical");
  const Bytes box = seal(test_key(), pt, aad, rng);
  EXPECT_EQ(open(test_key(), box, aad), pt);
}

TEST(AuthEnc, EmptyPlaintext) {
  Drbg rng("authenc");
  const Bytes box = seal(test_key(), {}, {}, rng);
  EXPECT_TRUE(open(test_key(), box, {}).empty());
}

TEST(AuthEnc, WrongKeyFails) {
  Drbg rng("authenc");
  const Bytes box = seal(test_key(), bytes_of("secret"), {}, rng);
  Bytes other = test_key();
  other[0] ^= 1;
  EXPECT_THROW(open(other, box, {}), CryptoError);
}

TEST(AuthEnc, WrongAadFails) {
  Drbg rng("authenc");
  const Bytes box = seal(test_key(), bytes_of("secret"), bytes_of("aad1"), rng);
  EXPECT_THROW(open(test_key(), box, bytes_of("aad2")), CryptoError);
}

TEST(AuthEnc, TamperedCiphertextFails) {
  Drbg rng("authenc");
  Bytes box = seal(test_key(), bytes_of("some longer secret payload"), {}, rng);
  for (size_t pos : {size_t{0}, size_t{16}, box.size() - 1}) {
    Bytes tampered = box;
    tampered[pos] ^= 0x80;
    EXPECT_THROW(open(test_key(), tampered, {}), CryptoError) << pos;
  }
}

TEST(AuthEnc, TruncatedBoxFails) {
  Drbg rng("authenc");
  const Bytes box = seal(test_key(), bytes_of("secret"), {}, rng);
  EXPECT_THROW(open(test_key(), ByteView(box.data(), 10), {}), CryptoError);
  EXPECT_THROW(open(test_key(), ByteView(box.data(), 47), {}), CryptoError);
}

TEST(AuthEnc, FreshIvPerSeal) {
  Drbg rng("authenc");
  const Bytes pt = bytes_of("same message");
  const Bytes b1 = seal(test_key(), pt, {}, rng);
  const Bytes b2 = seal(test_key(), pt, {}, rng);
  EXPECT_NE(b1, b2);  // randomized encryption
  EXPECT_EQ(open(test_key(), b1, {}), pt);
  EXPECT_EQ(open(test_key(), b2, {}), pt);
}

TEST(AuthEnc, BadKeySizeRejected) {
  Drbg rng("authenc");
  EXPECT_THROW(seal(Bytes(16), bytes_of("x"), {}, rng), CryptoError);
  EXPECT_THROW(open(Bytes(31), Bytes(64), {}), CryptoError);
}

}  // namespace
}  // namespace maabe::crypto
