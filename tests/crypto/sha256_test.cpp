#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include "common/errors.h"

namespace maabe::crypto {
namespace {

std::string hex_digest(ByteView data) { return to_hex(Sha256::digest(data)); }

// NIST FIPS 180-4 example vectors.
TEST(Sha256, NistVectors) {
  EXPECT_EQ(hex_digest(bytes_of("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(hex_digest({}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex_digest(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const Bytes data = bytes_of("the quick brown fox jumps over the lazy dog!!");
  for (size_t split = 0; split <= data.size(); ++split) {
    Sha256 h;
    h.update(ByteView(data.data(), split));
    h.update(ByteView(data.data() + split, data.size() - split));
    EXPECT_EQ(h.finish(), Sha256::digest(data)) << "split=" << split;
  }
}

TEST(Sha256, BlockBoundaryLengths) {
  // Exercise padding around the 56- and 64-byte boundaries.
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const Bytes data(len, 0x5a);
    Sha256 a;
    a.update(data);
    EXPECT_EQ(a.finish(), Sha256::digest(data)) << len;
  }
}

TEST(Sha256, ReuseAfterFinishThrows) {
  Sha256 h;
  h.update(bytes_of("x"));
  h.finish();
  EXPECT_THROW(h.update(bytes_of("y")), CryptoError);
  EXPECT_THROW(h.finish(), CryptoError);
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::digest(bytes_of("a")), Sha256::digest(bytes_of("b")));
  EXPECT_NE(Sha256::digest(bytes_of("")), Sha256::digest(Bytes{0}));
}

}  // namespace
}  // namespace maabe::crypto
