// The concurrent sharded cloud store: snapshot-fetch semantics, the
// stage-then-commit revocation epoch (all-or-nothing, proven via the
// fault hook), per-shard stats, and a concurrent fetch/store/reencrypt
// stress test (run it under -DMAABE_SANITIZE=thread for tsan-grade
// evidence).
#include "cloud/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "abe/serial.h"
#include "common/errors.h"
#include "lsss/parser.h"

namespace maabe::cloud {
namespace {

using pairing::Group;
using pairing::GT;

/// A minimal scheme world (one owner, one authority, one user) that can
/// mint stored files and produce complete revocation epochs against the
/// files it has minted.
struct World {
  std::shared_ptr<const Group> grp = Group::test_small();
  crypto::Drbg rng{std::string_view("server-test")};
  abe::OwnerMasterKey mk;
  abe::OwnerSecretShare share;
  abe::AuthorityVersionKey vk;
  std::map<std::string, abe::AuthorityPublicKey> apks;
  std::map<std::string, abe::PublicAttributeKey> attr_pks;
  abe::UserPublicKey user;
  std::map<std::string, abe::UserSecretKey> sks;
  std::map<std::string, abe::EncryptionRecord> records;  // ct_id -> s
  std::map<std::string, abe::Ciphertext> cts;            // owner copies

  World() {
    mk = abe::owner_gen(*grp, "owner", rng);
    share = abe::owner_share(*grp, mk);
    vk = abe::aa_setup(*grp, "A", rng);
    apks.emplace("A", abe::aa_public_key(*grp, vk));
    const abe::PublicAttributeKey pk = abe::aa_attribute_key(*grp, vk, "x1");
    attr_pks.emplace(pk.attr.qualified(), pk);
    user = abe::ca_register_user(*grp, "uid", rng);
    sks.emplace("A", abe::aa_keygen(*grp, vk, share, user, {"x1"}));
  }

  StoredFile make_file(const std::string& file_id, int n_slots = 1) {
    StoredFile file;
    file.file_id = file_id;
    file.owner_id = mk.owner_id;
    const lsss::LsssMatrix policy =
        lsss::LsssMatrix::from_policy(lsss::parse_policy("x1@A"));
    for (int j = 0; j < n_slots; ++j) {
      const std::string name = "c" + std::to_string(j);
      const std::string ct_id = slot_ct_id(file_id, name);
      abe::EncryptionResult enc = abe::encrypt(*grp, mk, ct_id, grp->gt_random(rng),
                                               policy, apks, attr_pks, rng);
      records.emplace(ct_id, enc.record);
      cts.emplace(ct_id, enc.ct);
      file.slots.push_back({name, std::move(enc.ct), Bytes{}});
    }
    return file;
  }

  struct Epoch {
    abe::UpdateKey uk;
    std::vector<abe::UpdateInfo> infos;
  };

  /// ReKeys authority A and emits UpdateInfo for every tracked
  /// ciphertext at the pre-rekey version; advances the world's keys and
  /// owner-side ciphertext copies.
  Epoch make_epoch() {
    const abe::AuthorityVersionKey old_vk = vk;
    vk = abe::aa_rekey(*grp, old_vk, rng).new_vk;
    Epoch epoch;
    epoch.uk = abe::aa_make_update_key(*grp, old_vk, vk, share);
    std::map<std::string, abe::PublicAttributeKey> new_pks = attr_pks;
    for (auto& [handle, pk] : new_pks)
      pk = abe::apply_update_to_attribute_pk(*grp, pk, epoch.uk);
    for (auto& [ct_id, ct] : cts) {
      if (ct.versions.at("A") != old_vk.version) continue;
      epoch.infos.push_back(abe::owner_update_info(*grp, mk, records.at(ct_id), ct,
                                                   attr_pks, new_pks, "A"));
      ct.versions.at("A") = vk.version;
    }
    attr_pks = std::move(new_pks);
    sks.at("A") = abe::apply_update_to_secret_key(*grp, sks.at("A"), epoch.uk);
    return epoch;
  }
};

Bytes serialize_whole_store(const CloudServer& server, const Group& grp) {
  Writer w;
  for (const std::string& id : server.file_ids()) {
    w.str(id);
    w.var_bytes(serialize(grp, *server.fetch(id)));
  }
  return w.take();
}

TEST(ServerTest, ShardedStoreBasicOps) {
  World w;
  CloudServer server(w.grp, 4);
  EXPECT_EQ(server.shard_count(), 4u);
  EXPECT_THROW(server.fetch("nope"), SchemeError);

  std::vector<std::string> ids;
  for (int i = 0; i < 8; ++i) {
    const std::string id = "f" + std::to_string(i);
    server.store(w.make_file(id));
    ids.push_back(id);
  }
  EXPECT_EQ(server.file_ids(), ids);  // sorted, across all shards
  EXPECT_TRUE(server.has_file("f3"));
  EXPECT_FALSE(server.has_file("f9"));
  EXPECT_GT(server.storage_bytes(), 0u);
  EXPECT_GT(server.ciphertext_group_material_bytes(), 0u);
  // storage_bytes stays exact: the maintained counters match a full
  // re-serialization of every stored file.
  size_t expect_bytes = 0;
  for (const std::string& id : ids)
    expect_bytes += serialize(*w.grp, *server.fetch(id)).size();
  EXPECT_EQ(server.storage_bytes(), expect_bytes);

  const ServerStats stats = server.stats();
  ASSERT_EQ(stats.shards.size(), 4u);
  EXPECT_EQ(stats.totals().files, 8u);
  EXPECT_EQ(stats.totals().stores, 8u);
  EXPECT_GT(stats.totals().fetches, 0u);
  EXPECT_EQ(stats.totals().bytes, server.storage_bytes());

  // Replacement: same id, file count unchanged, store count up.
  server.store(w.make_file("f0", 2));
  EXPECT_EQ(server.stats().totals().files, 8u);
  EXPECT_EQ(server.stats().totals().stores, 9u);
  EXPECT_EQ(server.fetch("f0")->slots.size(), 2u);
}

TEST(ServerTest, InvalidStoresRejected) {
  World w;
  CloudServer server(w.grp);
  EXPECT_THROW(server.store(StoredFile{}), SchemeError);  // empty file id
  StoredFile orphan = w.make_file("f");
  orphan.owner_id.clear();  // would silently escape revocation
  EXPECT_THROW(server.store(orphan), SchemeError);
}

TEST(ServerTest, FetchReturnsStableSnapshot) {
  World w;
  CloudServer server(w.grp, 2);
  server.store(w.make_file("f", 1));
  const std::shared_ptr<const StoredFile> snapshot = server.fetch("f");
  const Bytes before = serialize(*w.grp, *snapshot);

  server.store(w.make_file("f", 3));  // replace behind the reader's back
  EXPECT_EQ(serialize(*w.grp, *snapshot), before);  // snapshot unaffected
  EXPECT_EQ(snapshot->slots.size(), 1u);
  EXPECT_EQ(server.fetch("f")->slots.size(), 3u);
}

TEST(ServerTest, DuplicateUpdateInfoRejected) {
  World w;
  CloudServer server(w.grp, 2);
  server.store(w.make_file("f"));
  World::Epoch epoch = w.make_epoch();
  ASSERT_EQ(epoch.infos.size(), 1u);
  const Bytes before = serialize_whole_store(server, *w.grp);

  epoch.infos.push_back(epoch.infos.front());  // same ct_id twice
  EXPECT_THROW(server.reencrypt(epoch.uk, epoch.infos), SchemeError);
  EXPECT_EQ(serialize_whole_store(server, *w.grp), before);

  epoch.infos.pop_back();
  EXPECT_EQ(server.reencrypt(epoch.uk, epoch.infos), 1u);
}

TEST(ServerTest, MissingUpdateInfoRejected) {
  World w;
  CloudServer server(w.grp, 2);
  server.store(w.make_file("f"));
  const World::Epoch epoch = w.make_epoch();
  const Bytes before = serialize_whole_store(server, *w.grp);
  EXPECT_THROW(server.reencrypt(epoch.uk, {}), SchemeError);
  EXPECT_EQ(serialize_whole_store(server, *w.grp), before);
}

TEST(ServerTest, ReencryptEpochCommitsAllSlots) {
  World w;
  CloudServer server(w.grp, 4);
  server.store(w.make_file("f0", 2));
  server.store(w.make_file("f1", 1));
  server.store(w.make_file("f2", 1));

  const World::Epoch epoch = w.make_epoch();
  EXPECT_EQ(server.reencrypt(epoch.uk, epoch.infos), 4u);
  for (const std::string& id : server.file_ids()) {
    for (const SealedSlot& slot : server.fetch(id)->slots)
      EXPECT_EQ(slot.key_ct.versions.at("A"), 2u) << id;
  }
  // The updated user key still decrypts the re-encrypted ciphertext.
  const abe::Ciphertext ct = server.fetch("f1")->slots[0].key_ct;
  EXPECT_NO_THROW((void)abe::decrypt(*w.grp, ct, w.user, w.sks));

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.epochs_committed, 1u);
  EXPECT_EQ(stats.epochs_aborted, 0u);
  EXPECT_EQ(stats.totals().reencrypted_slots, 4u);
}

TEST(ServerTest, FaultInjectedEpochLeavesStoreByteIdentical) {
  World w;
  CloudServer server(w.grp, 4);
  server.store(w.make_file("f0", 2));
  server.store(w.make_file("f1", 1));
  server.store(w.make_file("f2", 1));
  const World::Epoch epoch = w.make_epoch();
  const Bytes before = serialize_whole_store(server, *w.grp);

  // Fail on the second slot the staging pass touches: some slots have
  // already been re-encrypted (into staged copies), some never run.
  std::atomic<int> seen{0};
  server.set_reencrypt_fault_hook([&](const std::string&) {
    if (seen.fetch_add(1) == 1) throw SchemeError("injected fault");
  });
  EXPECT_THROW(server.reencrypt(epoch.uk, epoch.infos), SchemeError);

  // All-or-nothing: every stored byte is exactly as before the epoch.
  EXPECT_EQ(serialize_whole_store(server, *w.grp), before);
  EXPECT_EQ(server.stats().epochs_aborted, 1u);
  EXPECT_EQ(server.stats().epochs_committed, 0u);
  EXPECT_EQ(server.stats().totals().reencrypted_slots, 0u);

  // And the store is not wedged: the same epoch, replayed without the
  // fault, applies cleanly — version checks see a consistent store.
  server.set_reencrypt_fault_hook(nullptr);
  EXPECT_EQ(server.reencrypt(epoch.uk, epoch.infos), 4u);
  EXPECT_EQ(server.stats().epochs_committed, 1u);
  const abe::Ciphertext ct = server.fetch("f1")->slots[0].key_ct;
  EXPECT_NO_THROW((void)abe::decrypt(*w.grp, ct, w.user, w.sks));
}

TEST(ServerTest, ConcurrentFetchStoreReencryptStress) {
  World w;
  CloudServer server(w.grp, 4);
  constexpr int kFiles = 6;
  std::vector<std::string> ids;
  for (int i = 0; i < kFiles; ++i) {
    const std::string id = "f" + std::to_string(i);
    server.store(w.make_file(id));
    ids.push_back(id);
  }
  const World::Epoch epoch = w.make_epoch();
  const StoredFile replacement_template = *server.fetch("f0");

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  // Readers: snapshots must always be internally consistent, whatever
  // the writers are doing.
  auto reader = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const std::string& id : ids) {
        try {
          const auto file = server.fetch(id);
          if (file->file_id != id || file->slots.empty() ||
              (file->slots[0].key_ct.versions.at("A") != 1u &&
               file->slots[0].key_ct.versions.at("A") != 2u)) {
            failures.fetch_add(1);
          }
        } catch (const Error&) {
          failures.fetch_add(1);
        }
      }
    }
  };

  // Writer: hammers unrelated inserts plus replacements of f0 with its
  // original (version-1) bytes, racing the epoch's commit-time identity
  // check.
  auto writer = [&] {
    int n = 0;
    // Run at least 8 iterations so every "w" file exists even when the
    // epoch commits (and sets `stop`) before the writer has warmed up —
    // the final file-count check assumes all 8 landed.
    while (n < 8 || !stop.load(std::memory_order_relaxed)) {
      StoredFile fresh = replacement_template;
      fresh.file_id = "w" + std::to_string(n % 8);
      fresh.owner_id = "bystander";  // never matched by the epoch
      server.store(std::move(fresh));
      StoredFile again = replacement_template;
      server.store(std::move(again));  // replace f0 with the v1 snapshot
      ++n;
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(reader);
  threads.emplace_back(reader);
  threads.emplace_back(writer);
  size_t committed = 0;
  std::thread reencryptor([&] { committed = server.reencrypt(epoch.uk, epoch.infos); });
  reencryptor.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  // f0 may have been replaced by the writer mid-epoch (the replacement
  // wins); everything else committed.
  EXPECT_GE(committed, static_cast<size_t>(kFiles - 1));
  for (int i = 1; i < kFiles; ++i) {
    EXPECT_EQ(server.fetch("f" + std::to_string(i))->slots[0].key_ct.versions.at("A"),
              2u);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.epochs_committed, 1u);
  EXPECT_EQ(stats.totals().files, static_cast<uint64_t>(kFiles) + 8u);
  // Byte accounting stayed exact through all the racing swaps.
  size_t expect_bytes = 0;
  for (const std::string& id : server.file_ids())
    expect_bytes += serialize(*w.grp, *server.fetch(id)).size();
  EXPECT_EQ(server.storage_bytes(), expect_bytes);
}

}  // namespace
}  // namespace maabe::cloud
