// Admission-control suite (DESIGN.md §14): bounded durable queues with
// typed rejection, the engine's inflight-item window, and the
// consumer's decrypt-result cache. Invariants:
//   1. A dead destination cannot grow a durable queue past the cap —
//      further sends come back as TransportError(kOverloaded) and the
//      rejection is counted (regression test: pre-cap, a dead node
//      OOMed the system instead of shedding).
//   2. The engine sheds oversized work with a typed OverloadError when
//      an admission window is set, and is unbounded by default.
//   3. The decrypt cache serves repeat reads without re-running ABE
//      decryption, and a revocation epoch or key change can never serve
//      a stale plaintext.
#include <gtest/gtest.h>

#include "cloud/system.h"
#include "common/errors.h"
#include "engine/engine.h"

namespace maabe::cloud {
namespace {

using pairing::Group;

std::unique_ptr<CloudSystem> make_system(size_t nodes, size_t replication) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.replication = replication;
  return std::make_unique<CloudSystem>(Group::test_small(), "admission-test",
                                       std::make_unique<LoopbackTransport>(),
                                       RetryPolicy(), cfg);
}

void enroll(CloudSystem& sys) {
  sys.add_authority("Med", {"Doctor"});
  sys.add_owner("hosp");
  sys.publish_authority_keys("Med", "hosp");
  sys.add_user("alice");
  sys.add_user("bob");
  sys.assign_attributes("Med", "alice", {"Doctor"});
  sys.assign_attributes("Med", "bob", {"Doctor"});
  sys.issue_user_key("Med", "alice", "hosp");
  sys.issue_user_key("Med", "bob", "hosp");
}

void upload(CloudSystem& sys, const std::string& file_id) {
  sys.upload("hosp", file_id, {{"a", bytes_of("record " + file_id), "Doctor@Med"}});
}

// ------------------------------------------------ bounded durable queues --

TEST(AdmissionTest, DeadDestinationShedsAtCapInsteadOfGrowingUnbounded) {
  auto sys = make_system(1, 1);
  enroll(*sys);
  const size_t kCap = 8;
  sys->set_pending_cap(kCap);
  EXPECT_EQ(sys->pending_cap(), kCap);

  const uint64_t counter_before = telemetry::MetricsRegistry::global()
                                      .collect()
                                      .counter("maabe_transport_parked_rejected_total");
  sys->cluster().kill_node("server");

  // The first kCap uploads park; every later one must be rejected with
  // the typed overload error, leaving the queue at the cap.
  size_t parked_ok = 0, rejected = 0;
  for (int i = 0; i < 24; ++i) {
    try {
      upload(*sys, "f" + std::to_string(i));
      ++parked_ok;
    } catch (const TransportError& e) {
      ASSERT_EQ(e.kind(), TransportError::Kind::kOverloaded) << e.what();
      ++rejected;
    }
  }
  EXPECT_EQ(parked_ok, kCap);
  EXPECT_EQ(rejected, 24 - kCap);
  EXPECT_EQ(sys->parked_rejected_total(), 24 - kCap);
  EXPECT_LE(sys->health().pending_deliveries, kCap);
  EXPECT_LE(sys->health().pending_by_destination.at("server"), kCap);
  EXPECT_GE(telemetry::MetricsRegistry::global().collect().counter(
                "maabe_transport_parked_rejected_total"),
            counter_before + (24 - kCap));

  // Recovery: the node comes back, parked uploads replay, and the
  // queue drains — rejection was backpressure, not data loss.
  sys->cluster().restart_node("server");
  EXPECT_EQ(sys->flush_pending(), 0u);
  EXPECT_EQ(sys->health().pending_deliveries, 0u);
  for (size_t i = 0; i < parked_ok; ++i) {
    EXPECT_TRUE(sys->download_report("alice", "f" + std::to_string(i)).all_ok());
  }
}

TEST(AdmissionTest, PendingCapZeroRestoresDefault) {
  auto sys = make_system(1, 1);
  sys->set_pending_cap(16);
  EXPECT_EQ(sys->pending_cap(), 16u);
  sys->set_pending_cap(0);
  EXPECT_EQ(sys->pending_cap(), kDefaultPendingCap);
}

// ------------------------------------------------- engine admission window --

TEST(AdmissionTest, EngineShedsOversizedBatchWhenWindowSet) {
  const auto grp = Group::test_small();
  engine::CryptoEngine eng(*grp, 2);
  crypto::Drbg rng(std::string_view("admission-engine"));

  std::vector<engine::CryptoEngine::PairTerm> terms;
  for (int i = 0; i < 6; ++i)
    terms.push_back({grp->g1_random(rng), grp->g1_random(rng)});

  // Unbounded by default.
  EXPECT_EQ(eng.admission_limit(), 0u);
  EXPECT_EQ(eng.pair_batch(terms).size(), terms.size());
  EXPECT_EQ(eng.shed_total(), 0u);

  // A window smaller than the batch sheds it, typed and counted.
  eng.set_admission_limit(4);
  EXPECT_THROW((void)eng.pair_batch(terms), OverloadError);
  EXPECT_EQ(eng.shed_total(), 1u);
  EXPECT_EQ(eng.inflight_items(), 0u);  // reservation rolled back

  // Work that fits the window still runs, and lifting the limit
  // restores unbounded service.
  terms.resize(3);
  EXPECT_EQ(eng.pair_batch(terms).size(), 3u);
  eng.set_admission_limit(0);
  for (int i = 0; i < 4; ++i)
    terms.push_back({grp->g1_random(rng), grp->g1_random(rng)});
  EXPECT_EQ(eng.pair_batch(terms).size(), terms.size());
}

// --------------------------------------------------- decrypt-result cache --

TEST(AdmissionTest, DecryptCacheServesRepeatReads) {
  auto sys = make_system(1, 1);
  enroll(*sys);
  upload(*sys, "f1");

  Consumer& alice = sys->user("alice");
  EXPECT_EQ(alice.decrypt_cache_hits(), 0u);
  const auto first = sys->download("alice", "f1");
  EXPECT_EQ(first.at("a"), bytes_of("record f1"));
  EXPECT_EQ(alice.decrypt_cache_hits(), 0u);
  EXPECT_GE(alice.decrypt_cache_misses(), 1u);
  EXPECT_EQ(alice.decrypt_cache_size(), 1u);

  const auto second = sys->download("alice", "f1");
  EXPECT_EQ(second.at("a"), bytes_of("record f1"));
  EXPECT_GE(alice.decrypt_cache_hits(), 1u);
}

TEST(AdmissionTest, RevocationEpochNeverServesStalePlaintext) {
  auto sys = make_system(1, 1);
  enroll(*sys);
  upload(*sys, "f1");
  ASSERT_TRUE(sys->download_report("alice", "f1").all_ok());
  ASSERT_GE(sys->user("alice").decrypt_cache_size(), 1u);

  // Revoking bob rewrites the ciphertext (new version) and updates
  // alice's keys — both sides of the cache key change, and the key
  // update wipes alice's cache outright.
  sys->revoke_attribute("Med", "bob", "Doctor");
  EXPECT_EQ(sys->user("alice").decrypt_cache_size(), 0u);

  const uint64_t hits_before = sys->user("alice").decrypt_cache_hits();
  const auto opened = sys->download("alice", "f1");
  EXPECT_EQ(opened.at("a"), bytes_of("record f1"));
  EXPECT_EQ(sys->user("alice").decrypt_cache_hits(), hits_before);

  // And the revoked user stays locked out — the cache cannot resurrect
  // bob's pre-revocation plaintext either.
  EXPECT_FALSE(sys->download_report("bob", "f1").all_ok());
}

TEST(AdmissionTest, DecryptCacheCapacityZeroDisables) {
  auto sys = make_system(1, 1);
  enroll(*sys);
  upload(*sys, "f1");
  Consumer& alice = sys->user("alice");
  alice.set_decrypt_cache_capacity(0);
  ASSERT_TRUE(sys->download_report("alice", "f1").all_ok());
  ASSERT_TRUE(sys->download_report("alice", "f1").all_ok());
  EXPECT_EQ(alice.decrypt_cache_size(), 0u);
  EXPECT_EQ(alice.decrypt_cache_hits(), 0u);
}

}  // namespace
}  // namespace maabe::cloud
