// Node restart/rejoin chaos under synthesized load (DESIGN.md §14):
// drives the tools/loadgen harness phase by phase — steady, node killed
// mid-workload, restarted — and asserts
//   1. a degraded-mode SLO during the outage: every download completes
//      as ok, denied or fail-closed degraded; no untyped errors, no
//      corruption;
//   2. read-repair + durable-queue replay restore byte-identical
//      replicas at identical versions after the restart;
//   3. the post-recovery phase serves downloads without degradation.
// Registered under the `chaos` ctest label.
#include <gtest/gtest.h>

#include <algorithm>

#include "loadgen/loadgen.h"

namespace maabe::loadgen {
namespace {

using cloud::CloudSystem;

/// Every replica of every file holds the same bytes at the same version.
void expect_replicas_converged(CloudSystem& sys, size_t files) {
  cloud::Cluster& c = sys.cluster();
  for (size_t f = 0; f < files; ++f) {
    const std::string fid = "file" + std::to_string(f);
    const std::vector<std::string> replicas = c.replicas_for(fid);
    ASSERT_FALSE(replicas.empty());
    ASSERT_TRUE(c.node_store(replicas.front()).has_file(fid))
        << "primary of '" << fid << "' lost it";
    const Bytes want =
        cloud::serialize(sys.group(), *c.node_store(replicas.front()).fetch(fid));
    const uint64_t version = c.version_of(replicas.front(), fid);
    for (const std::string& name : replicas) {
      ASSERT_TRUE(c.node_store(name).has_file(fid))
          << "replica " << name << " missing '" << fid << "'";
      EXPECT_EQ(cloud::serialize(sys.group(), *c.node_store(name).fetch(fid)), want)
          << "replica " << name << " diverged on '" << fid << "'";
      EXPECT_EQ(c.version_of(name, fid), version)
          << "replica " << name << " at wrong version of '" << fid << "'";
    }
  }
}

void expect_no_errors(const WorkloadReport& r, const char* phase) {
  for (const auto& [cls, s] : r.per_op) {
    EXPECT_EQ(s.errors, 0u) << phase << ": op class '" << cls << "'";
  }
}

TEST(WorkloadChaosTest, KillAndRestartMidWorkloadMeetsDegradedSlo) {
  WorkloadConfig cfg;
  cfg.users = 8;
  cfg.users_per_attribute_set = 2;
  cfg.files = 12;
  cfg.nodes = 3;
  cfg.replication = 2;
  cfg.ops = 240;  // driven in three phases of 80 below
  cfg.seed = 7;
  LoadGenerator gen(pairing::Group::test_small(), cfg);
  gen.setup();
  CloudSystem& sys = gen.system();

  // Phase 1 — steady state: nothing degrades, nothing fails.
  const WorkloadReport steady = gen.run_ops(80);
  expect_no_errors(steady, "steady");
  for (const auto& [cls, s] : steady.per_op) {
    EXPECT_EQ(s.degraded, 0u) << "steady: op class '" << cls << "'";
    EXPECT_EQ(s.rejected, 0u) << "steady: op class '" << cls << "'";
  }
  EXPECT_GT(steady.per_op.at("download").ok, 0u);

  // Phase 2 — node:1 dies mid-workload. Degraded-mode SLO: every
  // download completes ok, denied, or fail-closed degraded (quorum not
  // met / parked server deliveries). No untyped errors anywhere, and
  // writes keep landing on the surviving replicas.
  sys.cluster().kill_node("node:1");
  const WorkloadReport outage = gen.run_ops(80);
  expect_no_errors(outage, "outage");
  const OpStats& dl = outage.per_op.at("download");
  EXPECT_EQ(dl.ok + dl.denied + dl.degraded, dl.attempts())
      << "a download completed outside the degraded-mode contract";
  EXPECT_GT(dl.ok + dl.degraded, 0u);
  if (outage.per_op.count("store")) {
    EXPECT_EQ(outage.per_op.at("store").errors, 0u);
  }

  // Restart + replay: reconciliation prunes superseded parked versions,
  // the durable queues drain, read-repair fixes what replay missed.
  sys.cluster().restart_node("node:1");
  EXPECT_EQ(sys.flush_pending(), 0u);
  sys.cluster().repair_all();
  sys.flush_pending();
  EXPECT_EQ(sys.replication_lag(), 0u);

  // Phase 3 — recovered: the cluster serves like phase 1 again.
  const WorkloadReport recovered = gen.run_ops(80);
  expect_no_errors(recovered, "recovered");
  for (const auto& [cls, s] : recovered.per_op) {
    EXPECT_EQ(s.degraded, 0u) << "recovered: op class '" << cls << "'";
  }
  EXPECT_GT(recovered.per_op.at("download").ok, 0u);

  // Byte-identical replicas everywhere, at identical versions.
  sys.flush_pending();
  expect_replicas_converged(sys, cfg.files);
}

}  // namespace
}  // namespace maabe::loadgen
