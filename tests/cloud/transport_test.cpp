// Transport layer: framing, checksums, deterministic fault injection,
// retry/backoff and receiver-side idempotency.
#include <gtest/gtest.h>

#include "cloud/transport.h"
#include "common/errors.h"

namespace maabe::cloud {
namespace {

Frame sample_frame() {
  Frame f;
  f.from = "owner:hosp";
  f.to = "server";
  f.request_id = 42;
  f.seq = 7;
  f.payload = bytes_of("the quick brown artefact");
  return f;
}

TEST(Frames, RoundTrip) {
  const Frame f = sample_frame();
  const Bytes wire = encode_frame(f);
  const Frame g = decode_frame(wire);
  EXPECT_EQ(g.from, f.from);
  EXPECT_EQ(g.to, f.to);
  EXPECT_EQ(g.request_id, f.request_id);
  EXPECT_EQ(g.seq, f.seq);
  EXPECT_EQ(g.payload, f.payload);
}

TEST(Frames, EveryByteFlipIsDetected) {
  const Bytes wire = encode_frame(sample_frame());
  for (size_t pos = 0; pos < wire.size(); ++pos) {
    for (uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}}) {
      Bytes bad = wire;
      bad[pos] ^= mask;
      try {
        (void)decode_frame(bad);
        FAIL() << "flip at " << pos << " not detected";
      } catch (const TransportError& e) {
        EXPECT_EQ(e.kind(), TransportError::Kind::kChecksum) << "pos " << pos;
      }
    }
  }
}

TEST(Frames, TruncationIsDetected) {
  const Bytes wire = encode_frame(sample_frame());
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_THROW((void)decode_frame(ByteView(wire.data(), len)), TransportError)
        << "length " << len;
  }
}

TEST(Frames, TrailingGarbageIsDetected) {
  Bytes wire = encode_frame(sample_frame());
  wire.push_back(0x00);
  EXPECT_THROW((void)decode_frame(wire), TransportError);
}

TEST(FaultPlanTest, SameSeedSameDecisions) {
  FaultSpec spec;
  spec.drop = spec.duplicate = spec.corrupt = spec.ack_loss = spec.delay = 0.3;
  auto run = [&](uint64_t seed) {
    FaultPlan plan(seed);
    plan.set_default(spec);
    std::string trace;
    for (int i = 0; i < 200; ++i) {
      const auto d = plan.decide("a", "b", 100);
      trace += d.drop ? 'D' : '.';
      trace += d.duplicate ? '2' : '.';
      trace += d.corrupt ? 'C' : '.';
      trace += d.ack_loss ? 'A' : '.';
      trace += d.delay_ms > 0 ? 'L' : '.';
      trace += static_cast<char>('0' + d.corrupt_offset % 10);
    }
    return trace;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
}

TEST(FaultPlanTest, ChannelsAreIndependentStreams) {
  // Decisions on channel a->b must not shift when traffic interleaves on
  // another channel.
  FaultSpec spec;
  spec.drop = 0.5;
  FaultPlan lone(99), mixed(99);
  lone.set_default(spec);
  mixed.set_default(spec);
  std::string lone_trace, mixed_trace;
  for (int i = 0; i < 100; ++i) {
    lone_trace += lone.decide("a", "b", 64).drop ? 'D' : '.';
    (void)mixed.decide("c", "d", 64);  // interleaved other-channel traffic
    mixed_trace += mixed.decide("a", "b", 64).drop ? 'D' : '.';
  }
  EXPECT_EQ(lone_trace, mixed_trace);
}

TEST(FaultPlanTest, UnseededPlanIsFaultFree) {
  FaultPlan plan;
  FaultSpec spec;
  spec.drop = 1.0;
  plan.set_default(spec);
  for (int i = 0; i < 10; ++i) {
    const auto d = plan.decide("a", "b", 64);
    EXPECT_FALSE(d.drop || d.duplicate || d.corrupt || d.ack_loss || d.script_failure);
  }
  EXPECT_EQ(plan.injected().total(), 0u);
}

TEST(FaultPlanTest, FailNextScriptsFireFirst) {
  FaultPlan plan;  // even an unseeded plan honours scripts
  plan.fail_next("a", "b", 2);
  EXPECT_TRUE(plan.decide("a", "b", 64).script_failure);
  EXPECT_TRUE(plan.decide("a", "b", 64).script_failure);
  EXPECT_FALSE(plan.decide("a", "b", 64).script_failure);
  EXPECT_EQ(plan.injected().script_failures, 2u);
}

TEST(LoopbackTest, FaultFreeDeliveryMetersPayloadAndFrame) {
  LoopbackTransport t;
  const Bytes payload = bytes_of("hello");
  int called = 0;
  t.deliver("a", "b", 5, payload, [&](uint64_t rid, ByteView p) {
    EXPECT_EQ(rid, 5u);
    EXPECT_EQ(Bytes(p.begin(), p.end()), payload);
    ++called;
  });
  EXPECT_EQ(called, 1);
  const ChannelStats s = t.meter().stats("a", "b");
  EXPECT_EQ(s.payload_bytes, payload.size());
  EXPECT_GT(s.frame_bytes, payload.size());  // header + checksum overhead
  EXPECT_EQ(s.frames, 1u);
  EXPECT_EQ(s.deliveries, 1u);
  EXPECT_EQ(s.faults(), 0u);
}

TEST(LoopbackTest, DropNeverReachesTheSink) {
  FaultPlan plan(7);
  FaultSpec spec;
  spec.drop = 1.0;
  plan.set_channel("a", "b", spec);
  LoopbackTransport t(std::move(plan));
  int called = 0;
  try {
    t.deliver("a", "b", 1, bytes_of("x"), [&](uint64_t, ByteView) { ++called; });
    FAIL() << "drop did not throw";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kLost);
  }
  EXPECT_EQ(called, 0);
  EXPECT_EQ(t.meter().stats("a", "b").drops, 1u);
  EXPECT_EQ(t.faults().injected().drops, 1u);
}

TEST(LoopbackTest, CorruptionSurfacesAsChecksumError) {
  FaultPlan plan(7);
  FaultSpec spec;
  spec.corrupt = 1.0;
  plan.set_channel("a", "b", spec);
  LoopbackTransport t(std::move(plan));
  for (int i = 0; i < 20; ++i) {  // random flip position each time
    try {
      t.deliver("a", "b", 1, bytes_of("some payload bytes"),
                [](uint64_t, ByteView) { FAIL() << "corrupt frame delivered"; });
      FAIL() << "corruption not detected";
    } catch (const TransportError& e) {
      EXPECT_EQ(e.kind(), TransportError::Kind::kChecksum);
    }
  }
  EXPECT_EQ(t.meter().stats("a", "b").corruptions, 20u);
}

TEST(LoopbackTest, DuplicateDeliversTwice) {
  FaultPlan plan(7);
  FaultSpec spec;
  spec.duplicate = 1.0;
  plan.set_channel("a", "b", spec);
  LoopbackTransport t(std::move(plan));
  int called = 0;
  t.deliver("a", "b", 1, bytes_of("x"), [&](uint64_t, ByteView) { ++called; });
  EXPECT_EQ(called, 2);
  EXPECT_EQ(t.meter().stats("a", "b").deliveries, 2u);
  EXPECT_EQ(t.meter().stats("a", "b").duplicates, 1u);
}

TEST(LoopbackTest, AckLossDeliversThenFails) {
  FaultPlan plan(7);
  FaultSpec spec;
  spec.ack_loss = 1.0;
  plan.set_channel("a", "b", spec);
  LoopbackTransport t(std::move(plan));
  int called = 0;
  EXPECT_THROW(
      t.deliver("a", "b", 1, bytes_of("x"), [&](uint64_t, ByteView) { ++called; }),
      TransportError);
  EXPECT_EQ(called, 1);  // the receiver DID get it
}

TEST(LoopbackTest, DelayAdvancesVirtualClock) {
  FaultPlan plan(7);
  FaultSpec spec;
  spec.delay = 1.0;
  spec.delay_ms = 40;
  plan.set_channel("a", "b", spec);
  LoopbackTransport t(std::move(plan));
  t.deliver("a", "b", 1, bytes_of("x"), [](uint64_t, ByteView) {});
  EXPECT_EQ(t.now_ms(), 40u);
  EXPECT_EQ(t.meter().stats("a", "b").delay_ms, 40u);
}

TEST(ReliableLinkTest, RetriesUntilSuccess) {
  LoopbackTransport t;
  t.faults().fail_next("a", "b", 2);
  ReliableLink link(t);
  int applied = 0;
  link.send("a", "b", bytes_of("x"), [&](ByteView) { ++applied; });
  EXPECT_EQ(applied, 1);
  EXPECT_EQ(link.retries(), 2u);
  EXPECT_EQ(link.sends_ok(), 1u);
  EXPECT_EQ(t.meter().stats("a", "b").retries, 2u);
  // Backoff was charged to the virtual clock: 10 + 20 ms.
  EXPECT_EQ(t.now_ms(), 30u);
}

TEST(ReliableLinkTest, ExhaustionIsTyped) {
  LoopbackTransport t;
  t.faults().fail_next("a", "b", 100);
  ReliableLink link(t);
  int applied = 0;
  try {
    link.send("a", "b", bytes_of("x"), [&](ByteView) { ++applied; });
    FAIL() << "send did not exhaust";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kExhausted);
  }
  EXPECT_EQ(applied, 0);
  EXPECT_EQ(link.sends_failed(), 1u);
}

TEST(ReliableLinkTest, AckLossRetryAppliesOnce) {
  // Every delivery succeeds receiver-side but the ack is lost, so the
  // sender retries to exhaustion — yet the apply must run exactly once.
  FaultPlan plan(7);
  FaultSpec spec;
  spec.ack_loss = 1.0;
  plan.set_channel("a", "b", spec);
  LoopbackTransport t(std::move(plan));
  ReliableLink link(t);
  int applied = 0;
  EXPECT_THROW(link.send("a", "b", bytes_of("x"), [&](ByteView) { ++applied; }),
               TransportError);
  EXPECT_EQ(applied, 1);
  const ChannelStats s = t.meter().stats("a", "b");
  EXPECT_EQ(s.redeliveries, s.deliveries - 1);
}

TEST(ReliableLinkTest, DuplicateFrameDedupedByRequestId) {
  FaultPlan plan(7);
  FaultSpec spec;
  spec.duplicate = 1.0;
  plan.set_channel("a", "b", spec);
  LoopbackTransport t(std::move(plan));
  ReliableLink link(t);
  int applied = 0;
  link.send("a", "b", bytes_of("x"), [&](ByteView) { ++applied; });
  EXPECT_EQ(applied, 1);
  EXPECT_EQ(t.meter().stats("a", "b").redeliveries, 1u);
  EXPECT_EQ(link.applied_requests(), 1u);
}

TEST(ReliableLinkTest, ReplayUnderSameRequestIdIsNoOp) {
  LoopbackTransport t;
  ReliableLink link(t);
  const uint64_t rid = link.allocate_request_id();
  int applied = 0;
  link.send_as(rid, "a", "b", bytes_of("x"), [&](ByteView) { ++applied; });
  link.send_as(rid, "a", "b", bytes_of("x"), [&](ByteView) { ++applied; });
  EXPECT_EQ(applied, 1);
  EXPECT_EQ(t.meter().stats("a", "b").redeliveries, 1u);
}

TEST(ReliableLinkTest, DedupIsScopedByOrigin) {
  // Request-id counters are per sender process, so two origins can
  // legitimately allocate the same id; both deliveries must apply.
  LoopbackTransport t;
  ReliableLink link(t);
  const uint64_t rid = link.allocate_request_id();
  int applied = 0;
  link.send_as(rid, "node:0", "b", bytes_of("x"), [&](ByteView) { ++applied; });
  link.send_as(rid, "node:1", "b", bytes_of("x"), [&](ByteView) { ++applied; });
  EXPECT_EQ(applied, 2);
  EXPECT_EQ(link.applied_requests(), 2u);
}

TEST(ReliableLinkTest, FailoverRetryToNewDestinationIsNoOp) {
  // A store applied at one node and retried by the same origin against a
  // different primary (failover after the ack was lost) must not apply
  // twice: dedup is keyed by (origin, request id), not by destination.
  LoopbackTransport t;
  ReliableLink link(t);
  const uint64_t rid = link.allocate_request_id();
  int applied = 0;
  link.send_as(rid, "owner:o", "node:0", bytes_of("x"), [&](ByteView) { ++applied; });
  link.send_as(rid, "owner:o", "node:1", bytes_of("x"), [&](ByteView) { ++applied; });
  EXPECT_EQ(applied, 1);
  EXPECT_EQ(link.applied_requests(), 1u);
}

TEST(ReliableLinkTest, NonTransportExceptionsPropagateUnretried) {
  LoopbackTransport t;
  ReliableLink link(t);
  int attempts = 0;
  EXPECT_THROW(link.send("a", "b", bytes_of("x"),
                         [&](ByteView) {
                           ++attempts;
                           throw SchemeError("application rejected it");
                         }),
               SchemeError);
  EXPECT_EQ(attempts, 1);
  // A failed apply must not mark the request as applied.
  EXPECT_EQ(link.applied_requests(), 0u);
}

TEST(ReliableLinkTest, DeadlineBoundsTheSend) {
  LoopbackTransport t;
  t.faults().fail_next("a", "b", 1000);
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.base_backoff_ms = 100;
  policy.max_backoff_ms = 1000;
  policy.deadline_ms = 350;
  ReliableLink link(t, policy);
  EXPECT_THROW(link.send("a", "b", bytes_of("x"), [](ByteView) {}), TransportError);
  // Backoffs 100+200 = 300 <= 350, next (400) overshoots: 4 attempts max.
  EXPECT_LE(t.meter().stats("a", "b").frames, 4u);
}

}  // namespace
}  // namespace maabe::cloud
