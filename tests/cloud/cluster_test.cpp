// Cluster chaos suite (DESIGN.md §13): node failures, partitions and
// corrupt replicas against the 3-node cloud. Invariants:
//   1. Replicas of every file converge byte-identically once queues
//      drain (snapshot comparison, including against a fault-free run).
//   2. A revocation epoch commits on every node or on none (2PC).
//   3. Reads fail closed (typed) while an epoch is parked, and fail
//      typed when a quorum cannot be met.
//   4. A corrupt replica loses the quorum read and gets repaired.
// Registered under the `chaos` ctest label.
#include <gtest/gtest.h>

#include <algorithm>

#include "cloud/system.h"
#include "common/errors.h"
#include "crypto/sha256.h"
#include "../support/flight_dump_on_failure.h"

namespace maabe::cloud {
namespace {

using pairing::Group;

// One install per binary: a failing chaos test dumps every node's
// flight-recorder ring so the fault sequence ships with the report.
[[maybe_unused]] const bool kFlightDumpInstalled =
    maabe::test_support::install_flight_dump_on_failure();

std::unique_ptr<CloudSystem> make_system(std::shared_ptr<const Group> grp,
                                         size_t nodes, size_t replication,
                                         FaultPlan plan = FaultPlan(),
                                         RetryPolicy retry = RetryPolicy()) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.replication = replication;
  return std::make_unique<CloudSystem>(
      grp, "cluster-chaos", std::make_unique<LoopbackTransport>(std::move(plan)),
      retry, cfg);
}

void enroll(CloudSystem& sys) {
  sys.add_authority("Med", {"Doctor"});
  sys.add_owner("hosp");
  sys.publish_authority_keys("Med", "hosp");
  sys.add_user("alice");
  sys.add_user("bob");
  sys.assign_attributes("Med", "alice", {"Doctor"});
  sys.assign_attributes("Med", "bob", {"Doctor"});
  sys.issue_user_key("Med", "alice", "hosp");
  sys.issue_user_key("Med", "bob", "hosp");
}

std::string record_of(const std::string& file_id) { return "record " + file_id; }

void upload_all(CloudSystem& sys, const std::vector<std::string>& files) {
  for (const std::string& f : files) {
    sys.upload("hosp", f, {{"a", bytes_of(record_of(f)), "Doctor@Med"}});
  }
}

/// Invariant 1: every replica of every file holds the same bytes at the
/// same version, and nodes outside the replica set hold nothing.
void expect_replicas_converged(CloudSystem& sys,
                               const std::vector<std::string>& files) {
  Cluster& c = sys.cluster();
  for (const std::string& f : files) {
    const std::vector<std::string> replicas = c.replicas_for(f);
    ASSERT_FALSE(replicas.empty());
    ASSERT_TRUE(c.node_store(replicas.front()).has_file(f))
        << "primary of '" << f << "' lost it";
    const Bytes want = serialize(sys.group(), *c.node_store(replicas.front()).fetch(f));
    const uint64_t version = c.version_of(replicas.front(), f);
    for (const std::string& name : c.node_names()) {
      const bool is_replica =
          std::find(replicas.begin(), replicas.end(), name) != replicas.end();
      if (!is_replica) {
        EXPECT_FALSE(c.node_store(name).has_file(f))
            << "'" << f << "' leaked onto non-replica " << name;
        continue;
      }
      ASSERT_TRUE(c.node_store(name).has_file(f))
          << "replica " << name << " missing '" << f << "'";
      EXPECT_EQ(serialize(sys.group(), *c.node_store(name).fetch(f)), want)
          << "replica " << name << " diverged on '" << f << "'";
      EXPECT_EQ(c.version_of(name, f), version)
          << "replica " << name << " at wrong version of '" << f << "'";
    }
  }
}

/// Per-node snapshots, for byte-identical comparison across runs.
std::vector<Bytes> snapshots_of(CloudSystem& sys) {
  std::vector<Bytes> out;
  for (const std::string& name : sys.cluster().node_names()) {
    out.push_back(sys.cluster().snapshot(name));
  }
  return out;
}

/// Drives `op` until `done` holds, tolerating typed failures and
/// replaying parked deliveries between tries (same shape as the
/// single-node chaos soak).
template <typename Op, typename Done>
bool ensure(CloudSystem& sys, Op&& op, Done&& done, int limit = 120) {
  for (int i = 0; i < limit; ++i) {
    if (done()) return true;
    try {
      op();
    } catch (const Error&) {
      // Typed failures are allowed; untyped ones escape and fail hard.
    }
    sys.flush_pending();
  }
  return done();
}

// ----------------------------------------------------- basic routing --

TEST(ClusterTest, SingleNodeDefaultKeepsLegacyShape) {
  CloudSystem sys(Group::test_small(), "cluster-chaos");
  EXPECT_EQ(sys.cluster().size(), 1u);
  EXPECT_EQ(sys.cluster().node_names(), std::vector<std::string>{"server"});
  EXPECT_EQ(&sys.server(), &sys.cluster().node_store(0));
  enroll(sys);
  upload_all(sys, {"f1"});
  EXPECT_TRUE(sys.download_report("alice", "f1").all_ok());
  EXPECT_TRUE(sys.storage_report().per_entity.contains("server"));
  // Single node: no replication traffic, no 2PC.
  const ClusterStats cs = sys.cluster().stats();
  EXPECT_EQ(cs.replication_ops_sent, 0u);
  EXPECT_EQ(cs.epochs_2pc, 0u);
}

TEST(ClusterTest, UploadReplicatesToRingReplicasAndReadsMeetQuorum) {
  auto sys = make_system(Group::test_small(), 3, 2);
  enroll(*sys);
  const std::vector<std::string> files = {"f1", "f2", "f3", "f4"};
  upload_all(*sys, files);
  EXPECT_EQ(sys->flush_pending(), 0u);
  expect_replicas_converged(*sys, files);

  const ClusterStats cs = sys->cluster().stats();
  EXPECT_EQ(cs.nodes, 3u);
  EXPECT_EQ(cs.replication, 2u);
  EXPECT_EQ(cs.replication_ops_sent, files.size());  // one secondary per file
  EXPECT_EQ(cs.replication_ops_applied, files.size());

  for (const std::string& f : files) {
    const auto report = sys->download_report("alice", f);
    EXPECT_TRUE(report.all_ok());
    EXPECT_EQ(string_of(report.opened().at("a")), record_of(f));
  }
  EXPECT_EQ(sys->cluster().stats().quorum_reads, files.size());
  EXPECT_EQ(sys->cluster().stats().quorum_failures, 0u);
}

TEST(ClusterTest, NodeHealthAttributesOutageAndReplicationLag) {
  auto sys = make_system(Group::test_small(), 3, 2);
  enroll(*sys);
  sys->cluster().kill_node("node:2");
  const std::vector<std::string> files = {"f1", "f2", "f3", "f4", "f5", "f6"};
  upload_all(*sys, files);

  // Every file with node:2 in its replica set has a replication (or
  // whole-upload) delivery parked for it; lag counts the replication
  // share and health pins it to the dead node.
  size_t on_dead = 0;
  for (const std::string& f : files) {
    const auto replicas = sys->cluster().replicas_for(f);
    if (std::find(replicas.begin(), replicas.end(), "node:2") != replicas.end())
      ++on_dead;
  }
  ASSERT_GT(on_dead, 0u) << "placement left node:2 empty; add more files";

  const NodeHealth dead = sys->health("node:2");
  EXPECT_FALSE(dead.alive);
  EXPECT_EQ(dead.pending_in, on_dead);
  EXPECT_EQ(dead.replication_lag, sys->replication_lag());
  EXPECT_GT(sys->replication_lag(), 0u);

  const std::vector<NodeHealth> all = sys->cluster_health();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_TRUE(all[0].alive);
  EXPECT_GT(all[0].transport_in.frames, 0u);  // served uploads
  EXPECT_EQ(all[2].node, "node:2");

  sys->cluster().restart_node("node:2");
  EXPECT_EQ(sys->flush_pending(), 0u);
  EXPECT_EQ(sys->replication_lag(), 0u);
  expect_replicas_converged(*sys, files);
}

// ------------------------------------------------------- quorum reads --

TEST(ClusterTest, QuorumReadRepairsCorruptReplica) {
  auto sys = make_system(Group::test_small(), 3, 3);
  enroll(*sys);
  upload_all(*sys, {"f1"});
  EXPECT_EQ(sys->flush_pending(), 0u);

  // Rot one non-coordinator replica on disk: flip a sealed byte, leaving
  // the recorded content hash pointing at the original bytes.
  Cluster& c = sys->cluster();
  const std::string coord = c.route_for("f1");
  std::string victim;
  for (const std::string& name : c.node_names()) {
    if (name != coord) {
      victim = name;
      break;
    }
  }
  StoredFile rotted = *c.node_store(victim).fetch("f1");
  ASSERT_FALSE(rotted.slots.empty());
  ASSERT_GT(rotted.slots[0].sealed_data.size(), 10u);
  rotted.slots[0].sealed_data[10] ^= 0x40;
  c.node_store(victim).store(std::move(rotted));

  // The quorum read outvotes the rotten copy (its bytes no longer match
  // the recorded hash) and pushes the winner back at it.
  const auto report = sys->download_report("alice", "f1");
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(string_of(report.opened().at("a")), record_of("f1"));
  EXPECT_GE(c.stats().read_repairs, 1u);
  EXPECT_EQ(sys->flush_pending(), 0u);
  EXPECT_EQ(serialize(sys->group(), *c.node_store(victim).fetch("f1")),
            serialize(sys->group(), *c.node_store(coord).fetch("f1")));
}

TEST(ClusterTest, ReadWithoutQuorumFailsTyped) {
  auto sys = make_system(Group::test_small(), 3, 2);
  enroll(*sys);
  const std::vector<std::string> files = {"f1", "f2", "f3", "f4",
                                          "f5", "f6", "f7", "f8"};
  upload_all(*sys, files);
  EXPECT_EQ(sys->flush_pending(), 0u);

  sys->cluster().kill_node("node:2");
  std::string degraded, healthy;
  for (const std::string& f : files) {
    const auto replicas = sys->cluster().replicas_for(f);
    const bool on_dead =
        std::find(replicas.begin(), replicas.end(), "node:2") != replicas.end();
    (on_dead ? degraded : healthy) = f;
  }
  ASSERT_FALSE(degraded.empty());
  ASSERT_FALSE(healthy.empty());

  // R=2 majority quorum is 2: a file with its second replica dead cannot
  // meet it (typed, fail-closed); a file fully off the dead node reads
  // normally.
  EXPECT_THROW(sys->download_report("alice", degraded), TransportError);
  EXPECT_GE(sys->cluster().stats().quorum_failures, 1u);
  EXPECT_TRUE(sys->download_report("alice", healthy).all_ok());
}

// -------------------------------------------------- revocation epochs --

/// Enroll, upload, revoke bob — optionally killing `kill` just before
/// the revocation so the 2PC cannot stage there. Returns the per-node
/// snapshots after everything drained.
std::vector<Bytes> run_epoch_scenario(std::shared_ptr<const Group> grp,
                                      const std::string& kill,
                                      const std::vector<std::string>& files) {
  auto sys = make_system(grp, 3, 3);
  enroll(*sys);
  upload_all(*sys, files);
  EXPECT_EQ(sys->flush_pending(), 0u);

  if (!kill.empty()) {
    sys->cluster().kill_node(kill);
    // The 2PC aborts (a node cannot stage) and the epoch parks; nothing
    // commits anywhere, and reads fail closed behind the parked epoch.
    EXPECT_EQ(sys->revoke_attribute("Med", "bob", "Doctor"), 0u);
    const ClusterStats mid = sys->cluster().stats();
    EXPECT_GE(mid.epoch_aborts, 1u);
    EXPECT_EQ(mid.epoch_commits, 0u);
    EXPECT_EQ(mid.server_epochs_committed, 0u);
    for (const std::string& name : sys->cluster().node_names()) {
      EXPECT_EQ(sys->health(name).epochs_staged_open, 0u) << name;
    }
    EXPECT_THROW(sys->download_report("alice", files.front()), TransportError);
    sys->cluster().restart_node(kill);
    EXPECT_EQ(sys->flush_pending(), 0u);  // recovery replay commits the epoch
  } else {
    EXPECT_GT(sys->revoke_attribute("Med", "bob", "Doctor"), 0u);
    EXPECT_EQ(sys->flush_pending(), 0u);
  }

  // Epoch committed on every node, exactly once each.
  const ClusterStats cs = sys->cluster().stats();
  EXPECT_EQ(cs.epoch_commits, 1u);
  EXPECT_EQ(cs.server_epochs_committed, 3u);
  EXPECT_EQ(cs.epoch_commit_orphans, 0u);

  // Revoked bob opens nothing; alice keeps access through the update.
  for (const std::string& f : files) {
    EXPECT_TRUE(sys->download_report("bob", f).opened().empty());
    const auto report = sys->download_report("alice", f);
    EXPECT_TRUE(report.all_ok());
    EXPECT_EQ(string_of(report.opened().at("a")), record_of(f));
  }
  expect_replicas_converged(*sys, files);
  return snapshots_of(*sys);
}

TEST(ClusterTest, ReplicaKilledMidEpochConvergesByteIdentically) {
  auto grp = Group::test_small();
  const std::vector<std::string> files = {"f1", "f2", "f3"};
  // Reference: the same protocol with no failure. The failure run must
  // land every node on byte-identical state after recovery replay.
  const std::vector<Bytes> reference = run_epoch_scenario(grp, "", files);
  const std::vector<Bytes> recovered = run_epoch_scenario(grp, "node:2", files);
  EXPECT_EQ(recovered, reference);
}

TEST(ClusterTest, PartitionDuring2PCAbortsCleanlyThenCommitsOnHeal) {
  // Seeded plan: channel specs apply (drop=1.0 is deterministic anyway).
  auto sys = make_system(Group::test_small(), 3, 3, FaultPlan(1));
  enroll(*sys);
  const std::vector<std::string> files = {"f1", "f2"};
  upload_all(*sys, files);
  EXPECT_EQ(sys->flush_pending(), 0u);
  const std::vector<Bytes> before = snapshots_of(*sys);

  // Partition node:2 away from the coordinator: it is alive, but no
  // stage message can reach it.
  auto& loopback = dynamic_cast<LoopbackTransport&>(sys->transport());
  FaultSpec cut;
  cut.drop = 1.0;
  loopback.faults().set_channel("node:0", "node:2", cut);

  EXPECT_EQ(sys->revoke_attribute("Med", "bob", "Doctor"), 0u);
  const ClusterStats mid = sys->cluster().stats();
  EXPECT_GE(mid.epoch_aborts, 1u);
  EXPECT_EQ(mid.epoch_commits, 0u);
  // Abort is byte-identical: no node's store moved.
  for (const std::string& name : sys->cluster().node_names()) {
    EXPECT_EQ(sys->health(name).epochs_staged_open, 0u) << name;
  }
  EXPECT_EQ(snapshots_of(*sys), before);
  EXPECT_THROW(sys->download_report("alice", files.front()), TransportError);

  // Heal: the parked epoch replays, stages everywhere and commits.
  loopback.faults().set_channel("node:0", "node:2", FaultSpec());
  EXPECT_EQ(sys->flush_pending(), 0u);
  EXPECT_EQ(sys->cluster().stats().epoch_commits, 1u);
  EXPECT_EQ(sys->cluster().stats().server_epochs_committed, 3u);
  EXPECT_NE(snapshots_of(*sys), before);  // the epoch really re-encrypted
  expect_replicas_converged(*sys, files);
  for (const std::string& f : files) {
    EXPECT_TRUE(sys->download_report("bob", f).opened().empty());
    EXPECT_TRUE(sys->download_report("alice", f).all_ok());
  }
}

TEST(ClusterTest, RestartReconcilesStaleGaugesAndPrunesSupersededOps) {
  auto sys = make_system(Group::test_small(), 3, 2);
  enroll(*sys);
  std::vector<std::string> files;
  for (int i = 0; i < 8; ++i) files.push_back("f" + std::to_string(i));
  upload_all(*sys, files);
  EXPECT_EQ(sys->flush_pending(), 0u);
  expect_replicas_converged(*sys, files);

  // A file replicated onto node:1 (deterministic ring placement; with 8
  // files one always lands there).
  std::string fx;
  for (const std::string& f : files) {
    const auto replicas = sys->cluster().replicas_for(f);
    if (std::find(replicas.begin(), replicas.end(), "node:1") != replicas.end()) {
      fx = f;
      break;
    }
  }
  ASSERT_FALSE(fx.empty());

  // Kill node:1, then write two more versions of fx: the surviving
  // coordinator stores them, and two versioned replicate ops park for
  // the dead node. The per-node gauges now show real lag.
  sys->cluster().kill_node("node:1");
  sys->upload("hosp", fx, {{"b", bytes_of("v2 " + fx), "Doctor@Med"}});
  sys->upload("hosp", fx, {{"c", bytes_of("v3 " + fx), "Doctor@Med"}});
  EXPECT_GT(sys->replication_lag(), 0u);
  EXPECT_GT(sys->health().pending_by_destination.at("node:1"), 0u);
  const uint64_t prunes_before = sys->cluster().stats().restart_prunes;

  // Restart reconciles the parked queue against what replay can use:
  // the superseded v2 replicate op is pruned (apply is last-write-wins
  // and each op carries the whole file), the newest survives and
  // replays. Gauges return to zero once converged.
  sys->cluster().restart_node("node:1");
  EXPECT_GE(sys->cluster().stats().restart_prunes, prunes_before + 1);
  EXPECT_EQ(sys->flush_pending(), 0u);
  EXPECT_EQ(sys->replication_lag(), 0u);
  EXPECT_EQ(sys->health().pending_by_destination.count("node:1"), 0u);
  for (const NodeHealth& nh : sys->cluster_health()) {
    EXPECT_EQ(nh.replication_lag, 0u) << nh.node;
  }
  expect_replicas_converged(*sys, files);
  EXPECT_TRUE(sys->download_report("alice", fx).all_ok());
}

// ------------------------------------------- fault-injected soak sweep --

FaultSpec cluster_chaos() {
  FaultSpec spec;
  spec.drop = 0.08;
  spec.duplicate = 0.08;
  spec.corrupt = 0.08;
  spec.ack_loss = 0.08;
  spec.delay = 0.08;
  spec.delay_ms = 5;
  return spec;
}

RetryPolicy patient_policy() {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.base_backoff_ms = 5;
  policy.max_backoff_ms = 80;
  policy.deadline_ms = 1u << 20;
  return policy;
}

Bytes run_chaos_sweep(std::shared_ptr<const Group> grp, uint64_t fault_seed) {
  FaultPlan plan(fault_seed);
  plan.set_default(cluster_chaos());
  auto sys = make_system(grp, 3, 2, std::move(plan), patient_policy());
  const std::vector<std::string> files = {"f1", "f2"};

  const auto idempotent = [&](auto op, const char* what) {
    bool done = false;
    EXPECT_TRUE(ensure(*sys, [&] { op(); done = true; }, [&] { return done; }))
        << "seed " << fault_seed << ": " << what << " never converged";
  };
  idempotent([&] { sys->add_authority("Med", {"Doctor"}); }, "add_authority");
  idempotent([&] { sys->add_owner("hosp"); }, "add_owner");
  idempotent([&] { sys->publish_authority_keys("Med", "hosp"); }, "publish");
  idempotent([&] { sys->add_user("alice"); }, "add alice");
  idempotent([&] { sys->add_user("bob"); }, "add bob");
  idempotent([&] { sys->assign_attributes("Med", "alice", {"Doctor"}); }, "assign a");
  idempotent([&] { sys->assign_attributes("Med", "bob", {"Doctor"}); }, "assign b");
  idempotent([&] { sys->issue_user_key("Med", "alice", "hosp"); }, "issue a");
  idempotent([&] { sys->issue_user_key("Med", "bob", "hosp"); }, "issue b");

  upload_all(*sys, files);
  for (const std::string& f : files) {
    bool ok = false;
    EXPECT_TRUE(ensure(*sys,
                       [&] { ok = sys->download_report("alice", f).all_ok(); },
                       [&] { return ok; }))
        << "seed " << fault_seed << ": alice never read " << f;
  }

  sys->revoke_attribute("Med", "bob", "Doctor");
  EXPECT_TRUE(ensure(*sys, [] {}, [&] { return sys->flush_pending() == 0; }))
      << "seed " << fault_seed << ": revocation never drained";
  sys->cluster().repair_all();
  EXPECT_TRUE(ensure(*sys, [] {}, [&] { return sys->flush_pending() == 0; }));

  for (const std::string& f : files) {
    bool bob_done = false;
    EXPECT_TRUE(ensure(*sys,
                       [&] {
                         EXPECT_TRUE(sys->download_report("bob", f).opened().empty())
                             << "seed " << fault_seed << ": revoked bob read " << f;
                         bob_done = true;
                       },
                       [&] { return bob_done; }));
    bool alice_ok = false;
    EXPECT_TRUE(ensure(*sys,
                       [&] { alice_ok = sys->download_report("alice", f).all_ok(); },
                       [&] { return alice_ok; }))
        << "seed " << fault_seed << ": alice lost access after revocation";
  }
  expect_replicas_converged(*sys, files);

  // Every injected fault is accounted for on the meter, node channels
  // included.
  auto& loopback = dynamic_cast<LoopbackTransport&>(sys->transport());
  EXPECT_EQ(sys->meter().totals().faults(), loopback.faults().injected().total());

  Writer w;
  for (const Bytes& snap : snapshots_of(*sys)) w.var_bytes(snap);
  return crypto::Sha256::digest(w.bytes());
}

TEST(ClusterChaos, FaultInjectedConvergenceSweep) {
  auto grp = Group::test_small();
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    run_chaos_sweep(grp, seed);
  }
}

TEST(ClusterChaos, SameSeedIsByteIdentical) {
  auto grp = Group::test_small();
  EXPECT_EQ(run_chaos_sweep(grp, 11), run_chaos_sweep(grp, 11));
}

}  // namespace
}  // namespace maabe::cloud
