// Chaos soak: the full enroll -> upload -> revoke -> download protocol
// survives a faulty transport for a sweep of fault seeds. Invariants:
//   1. No download ever yields wrong plaintext (degraded, never wrong).
//   2. The revoked user never decrypts once the epoch reaches the server.
//   3. Every operation eventually succeeds, or fails with a typed error.
//   4. Every injected fault is accounted for in the channel meter.
//   5. The same (system seed, fault seed) reproduces byte-identically.
// Registered under the `chaos` ctest label so it can run as its own
// parallel-safe stage (see CMakePresets.json).
#include <gtest/gtest.h>

#include <fstream>

#include "cloud/system.h"
#include "common/errors.h"
#include "crypto/sha256.h"
#include "telemetry/trace.h"

namespace maabe::cloud {
namespace {

using pairing::Group;

const char* kRecordA = "patient record alpha";
const char* kRecordB = "patient record bravo";

FaultSpec moderate_chaos() {
  FaultSpec spec;
  spec.drop = 0.15;
  spec.duplicate = 0.10;
  spec.corrupt = 0.10;
  spec.ack_loss = 0.10;
  spec.delay = 0.10;
  spec.delay_ms = 7;
  return spec;
}

RetryPolicy patient_policy() {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.base_backoff_ms = 5;
  policy.max_backoff_ms = 80;
  policy.deadline_ms = 1u << 20;  // the virtual clock makes this free
  return policy;
}

/// Drives `op` until `done` holds, tolerating typed failures and
/// replaying parked deliveries between tries. Returns false if the
/// operation never converged (which fails invariant 3).
template <typename Op, typename Done>
bool ensure(CloudSystem& sys, Op&& op, Done&& done, int limit = 120) {
  for (int i = 0; i < limit; ++i) {
    if (done()) return true;
    try {
      op();
    } catch (const Error&) {
      // Typed (TransportError, SchemeError, ...) — invariant 3 allows
      // these; anything untyped escapes and fails the test hard.
    }
    sys.flush_pending();
  }
  return done();
}

/// Invariant 1: whatever a report managed to open must be the truth.
void check_no_wrong_plaintext(const CloudSystem::DownloadReport& report) {
  for (const auto& [name, data] : report.opened()) {
    if (name == "a") {
      ASSERT_EQ(string_of(data), kRecordA);
    } else if (name == "b") {
      ASSERT_EQ(string_of(data), kRecordB);
    } else {
      FAIL() << "unexpected component '" << name << "'";
    }
  }
}

struct SoakOutcome {
  Bytes digest;           ///< everything observable, for invariant 5
  uint64_t faults = 0;    ///< total injected
  uint64_t retries = 0;
};

SoakOutcome run_scenario(std::shared_ptr<const Group> grp, uint64_t fault_seed) {
  FaultPlan plan(fault_seed);
  plan.set_default(moderate_chaos());
  CloudSystem sys(grp, "chaos-soak",
                  std::make_unique<LoopbackTransport>(std::move(plan)),
                  patient_policy());
  SoakOutcome out;

  // ---- Enroll ---------------------------------------------------------
  const auto has_authority = [&] {
    try {
      (void)sys.authority("Med");
      return true;
    } catch (const SchemeError&) {
      return false;
    }
  };
  EXPECT_TRUE(ensure(sys, [&] { sys.add_authority("Med", {"Doctor"}); }, has_authority))
      << "seed " << fault_seed << ": add_authority never converged";
  const auto has_owner = [&] {
    try {
      (void)sys.owner("hosp");
      return true;
    } catch (const SchemeError&) {
      return false;
    }
  };
  EXPECT_TRUE(ensure(sys, [&] { sys.add_owner("hosp"); }, has_owner))
      << "seed " << fault_seed << ": add_owner never converged";
  for (const char* uid : {"alice", "bob"}) {
    const auto has_user = [&] {
      try {
        (void)sys.user(uid);
        return true;
      } catch (const SchemeError&) {
        return false;
      }
    };
    EXPECT_TRUE(ensure(sys, [&] { sys.add_user(uid); }, has_user))
        << "seed " << fault_seed << ": add_user(" << uid << ") never converged";
  }

  // Idempotent operations: done == "completed without throwing once".
  const auto idempotent = [&](auto op, const char* what) {
    bool done = false;
    EXPECT_TRUE(ensure(sys, [&] { op(); done = true; }, [&] { return done; }))
        << "seed " << fault_seed << ": " << what << " never converged";
  };
  idempotent([&] { sys.publish_authority_keys("Med", "hosp"); }, "publish");
  idempotent([&] { sys.assign_attributes("Med", "alice", {"Doctor"}); }, "assign a");
  idempotent([&] { sys.assign_attributes("Med", "bob", {"Doctor"}); }, "assign b");
  idempotent([&] { sys.issue_user_key("Med", "alice", "hosp"); }, "issue a");
  idempotent([&] { sys.issue_user_key("Med", "bob", "hosp"); }, "issue b");

  // ---- Upload ---------------------------------------------------------
  // protect() runs once; delivery parks on failure and drains below.
  sys.upload("hosp", "f1",
             {{"a", bytes_of(kRecordA), "Doctor@Med"},
              {"b", bytes_of(kRecordB), "Doctor@Med"}});

  // ---- Download (pre-revocation): both users read everything ----------
  for (const char* uid : {"alice", "bob"}) {
    bool all_ok = false;
    EXPECT_TRUE(ensure(sys,
                       [&] {
                         const auto report = sys.download_report(uid, "f1");
                         check_no_wrong_plaintext(report);
                         all_ok = report.all_ok() && report.slots.size() == 2;
                       },
                       [&] { return all_ok; }))
        << "seed " << fault_seed << ": " << uid << " never read f1";
  }

  // ---- Revoke bob -----------------------------------------------------
  sys.revoke_attribute("Med", "bob", "Doctor");
  EXPECT_TRUE(ensure(sys, [] {}, [&] { return sys.flush_pending() == 0; }))
      << "seed " << fault_seed << ": revocation deliveries never drained";

  // ---- Post-revocation invariants ------------------------------------
  // Invariant 2: with the epoch committed, bob opens nothing — ever.
  bool bob_report_done = false;
  EXPECT_TRUE(ensure(sys,
                     [&] {
                       const auto report = sys.download_report("bob", "f1");
                       check_no_wrong_plaintext(report);
                       EXPECT_TRUE(report.opened().empty())
                           << "seed " << fault_seed << ": revoked user decrypted";
                       bob_report_done = true;
                     },
                     [&] { return bob_report_done; }));
  // Alice keeps full access through the update.
  Bytes alice_view;
  bool alice_ok = false;
  EXPECT_TRUE(ensure(sys,
                     [&] {
                       const auto report = sys.download_report("alice", "f1");
                       check_no_wrong_plaintext(report);
                       if (report.all_ok()) {
                         alice_ok = true;
                         alice_view.clear();
                         for (const auto& [name, data] : report.opened()) {
                           alice_view.insert(alice_view.end(), name.begin(), name.end());
                           alice_view.insert(alice_view.end(), data.begin(), data.end());
                         }
                       }
                     },
                     [&] { return alice_ok; }))
      << "seed " << fault_seed << ": alice lost access after bob's revocation";

  // ---- Invariant 4: every injected fault is accounted for -------------
  auto& loopback = dynamic_cast<LoopbackTransport&>(sys.transport());
  const FaultPlan::Injected& injected = loopback.faults().injected();
  const ChannelStats totals = sys.meter().totals();
  EXPECT_EQ(totals.drops, injected.drops);
  EXPECT_EQ(totals.duplicates, injected.duplicates);
  EXPECT_EQ(totals.corruptions, injected.corruptions);
  EXPECT_EQ(totals.ack_losses, injected.ack_losses);
  EXPECT_EQ(totals.delays, injected.delays);
  EXPECT_EQ(totals.script_failures, injected.script_failures);
  EXPECT_EQ(totals.faults(), injected.total());

  // Goodput accounting: bytes_delivered counts every intact frame copy
  // handed to a receiver (including redelivered copies the dedup layer
  // then suppresses); bytes_accepted only counts applied payloads.
  // Dedup'd redeliveries must never inflate goodput.
  EXPECT_LE(totals.bytes_accepted, totals.bytes_delivered);
  if (totals.redeliveries == 0) {
    EXPECT_EQ(totals.bytes_accepted, totals.bytes_delivered);
  } else {
    EXPECT_LT(totals.bytes_accepted, totals.bytes_delivered);
  }

  const CloudSystem::Health health = sys.health();
  EXPECT_EQ(health.pending_deliveries, 0u);
  EXPECT_GT(health.applied_requests, 0u);

  // ---- Invariant 5 input: digest of everything observable -------------
  Writer w;
  w.var_bytes(serialize(*grp, *sys.server().fetch("f1")));
  w.var_bytes(alice_view);
  w.u64(totals.payload_bytes);
  w.u64(totals.frame_bytes);
  w.u64(totals.frames);
  w.u64(totals.deliveries);
  w.u64(totals.faults());
  w.u64(totals.retries);
  w.u64(totals.redeliveries);
  w.u64(totals.bytes_delivered);
  w.u64(totals.bytes_accepted);
  w.u64(health.sends_ok);
  w.u64(health.sends_failed);
  w.u64(health.applied_requests);
  w.u64(health.virtual_ms);
  out.digest = crypto::Sha256::digest(w.bytes());
  out.faults = injected.total();
  out.retries = totals.retries;
  return out;
}

TEST(ChaosSoak, ThirtyTwoSeedSweep) {
  auto grp = Group::test_small();
  uint64_t total_faults = 0;
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    const SoakOutcome out = run_scenario(grp, seed);
    total_faults += out.faults;
  }
  // The sweep is pointless if the plan never actually injected faults.
  EXPECT_GT(total_faults, 100u);
}

TEST(ChaosSoak, SameSeedIsByteIdentical) {
  auto grp = Group::test_small();
  for (uint64_t seed : {3u, 17u}) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    const SoakOutcome a = run_scenario(grp, seed);
    const SoakOutcome b = run_scenario(grp, seed);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.faults, b.faults);
    EXPECT_EQ(a.retries, b.retries);
  }
}

// A chaotic scenario with the telemetry exporters on produces the two
// operator artifacts: a JSON-lines span stream and a Prometheus-style
// metrics snapshot, both parseable and mutually consistent.
TEST(ChaosSoak, EmitsTelemetryArtifacts) {
  const std::string trace_path =
      testing::TempDir() + "/chaos_soak_trace.jsonl";
  std::vector<telemetry::SpanRecord> records;
  telemetry::Tracer::global().enable(
      [&, file_sink = telemetry::JsonLinesSink(trace_path)](
          const telemetry::SpanRecord& rec) mutable {
        records.push_back(rec);
        file_sink(rec);
      });
  const SoakOutcome out = run_scenario(Group::test_small(), 7);
  telemetry::Tracer::global().disable();
  EXPECT_GT(out.faults, 0u);

  // Span stream: non-empty, and the revocation root is present with the
  // epoch and transport activity underneath it somewhere in the run.
  ASSERT_FALSE(records.empty());
  size_t revoke_roots = 0, epochs = 0, frames = 0;
  for (const telemetry::SpanRecord& rec : records) {
    EXPECT_NE(rec.trace_id, 0u);
    EXPECT_NE(rec.span_id, 0u);
    EXPECT_GE(rec.end_ns, rec.start_ns);
    if (rec.name == "system.revoke_attribute") ++revoke_roots;
    if (rec.name == "server.reencrypt_epoch") ++epochs;
    if (rec.name == "transport.frame") ++frames;
  }
  EXPECT_EQ(revoke_roots, 1u);
  EXPECT_GE(epochs, 1u);
  EXPECT_GT(frames, 0u);

  // The file sink saw the same stream, one JSON object per line.
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.is_open());
  size_t lines = 0;
  for (std::string line; std::getline(in, line);) {
    if (line.empty()) continue;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_EQ(lines, records.size());

  // Metrics snapshot: renders, and the registry's transport counters
  // are at least as large as this scenario's channel totals (the
  // registry is process-wide and other tests may have added to it).
  const telemetry::Snapshot snap = telemetry::MetricsRegistry::global().collect();
  const std::string text = snap.prometheus_text();
  EXPECT_NE(text.find("# TYPE maabe_transport_frames_total counter"),
            std::string::npos);
  EXPECT_GT(snap.counter("maabe_transport_frames_total"), 0u);
  EXPECT_GT(snap.counter("maabe_server_epochs_committed_total"), 0u);
}

TEST(ChaosSoak, FaultFreeControlInjectsNothing) {
  CloudSystem sys(Group::test_small(), "chaos-soak");
  sys.add_authority("Med", {"Doctor"});
  sys.add_owner("hosp");
  sys.publish_authority_keys("Med", "hosp");
  sys.add_user("alice");
  sys.assign_attributes("Med", "alice", {"Doctor"});
  sys.issue_user_key("Med", "alice", "hosp");
  sys.upload("hosp", "f1", {{"a", bytes_of(kRecordA), "Doctor@Med"}});
  const auto report = sys.download_report("alice", "f1");
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(sys.meter().totals().faults(), 0u);
  EXPECT_EQ(sys.health().retries, 0u);
}

}  // namespace
}  // namespace maabe::cloud
