// Unit tests for the individual framework entities (the integration
// behaviour is covered in system_test.cpp).
#include "cloud/entities.h"

#include <gtest/gtest.h>

#include "cloud/server.h"
#include "common/errors.h"

namespace maabe::cloud {
namespace {

using pairing::Group;

class EntitiesTest : public ::testing::Test {
 protected:
  EntitiesTest()
      : grp(Group::test_small()),
        ca(grp, crypto::Drbg(std::string_view("ca"))),
        aa(grp, "Med", crypto::Drbg(std::string_view("aa"))),
        owner(grp, "hosp", crypto::Drbg(std::string_view("owner"))) {}

  std::shared_ptr<const Group> grp;
  CertificateAuthority ca;
  AttributeAuthority aa;
  DataOwner owner;
};

TEST_F(EntitiesTest, CaRegistration) {
  const abe::UserPublicKey& pk = ca.register_user("alice");
  EXPECT_EQ(pk.uid, "alice");
  EXPECT_TRUE(ca.has_user("alice"));
  EXPECT_FALSE(ca.has_user("bob"));
  EXPECT_EQ(ca.user_public_key("alice").pk, pk.pk);
  EXPECT_THROW(ca.register_user("alice"), SchemeError);
  EXPECT_THROW(ca.user_public_key("ghost"), SchemeError);

  ca.register_authority("Med");
  EXPECT_TRUE(ca.has_authority("Med"));
  EXPECT_THROW(ca.register_authority("Med"), SchemeError);
  EXPECT_THROW(ca.register_authority(""), SchemeError);
}

TEST_F(EntitiesTest, DistinctUsersGetDistinctKeys) {
  const auto& a = ca.register_user("a");
  const auto& b = ca.register_user("b");
  EXPECT_NE(a.pk, b.pk);
}

TEST_F(EntitiesTest, AuthorityUniverseAndAssignments) {
  aa.define_attribute("Doctor");
  aa.define_attribute("Nurse");
  EXPECT_TRUE(aa.manages("Doctor"));
  EXPECT_FALSE(aa.manages("Pilot"));
  EXPECT_THROW(aa.define_attribute(""), SchemeError);

  aa.assign("alice", {"Doctor"});
  EXPECT_EQ(aa.assignment("alice"), (std::set<std::string>{"Doctor"}));
  EXPECT_TRUE(aa.assignment("stranger").empty());
  EXPECT_THROW(aa.assign("alice", {"Pilot"}), SchemeError);
  // Assignments accumulate.
  aa.assign("alice", {"Nurse"});
  EXPECT_EQ(aa.assignment("alice").size(), 2u);
}

TEST_F(EntitiesTest, IssueKeyRequiresOnboardedOwner) {
  aa.define_attribute("Doctor");
  const auto& alice = ca.register_user("alice");
  aa.assign("alice", {"Doctor"});
  EXPECT_THROW(aa.issue_key(alice, "hosp"), SchemeError);
  aa.accept_owner_share(owner.share());
  const abe::UserSecretKey sk = aa.issue_key(alice, "hosp");
  EXPECT_EQ(sk.uid, "alice");
  EXPECT_EQ(sk.owner_id, "hosp");
  EXPECT_EQ(sk.kx.size(), 1u);
  EXPECT_TRUE(sk.kx.contains("Doctor@Med"));
}

TEST_F(EntitiesTest, AuthorityPublicKeysTrackUniverse) {
  aa.define_attribute("Doctor");
  aa.define_attribute("Nurse");
  const auto pks = aa.attribute_public_keys();
  EXPECT_EQ(pks.size(), 2u);
  EXPECT_TRUE(pks.contains("Doctor@Med"));
  EXPECT_TRUE(pks.contains("Nurse@Med"));
  EXPECT_EQ(aa.public_key().aid, "Med");
  EXPECT_EQ(aa.public_key().version, 1u);
}

TEST_F(EntitiesTest, RevokeValidatesAssignment) {
  aa.define_attribute("Doctor");
  const auto& alice = ca.register_user("alice");
  EXPECT_THROW(aa.revoke(alice, "Doctor"), SchemeError);  // never assigned
  aa.assign("alice", {"Doctor"});
  aa.accept_owner_share(owner.share());
  const auto bundle = aa.revoke(alice, "Doctor");
  EXPECT_EQ(bundle.new_version, 2u);
  EXPECT_EQ(aa.version(), 2u);
  ASSERT_TRUE(bundle.update_keys.contains("hosp"));
  ASSERT_TRUE(bundle.regenerated_keys.contains("hosp"));
  EXPECT_TRUE(bundle.regenerated_keys.at("hosp").kx.empty());
  // Assignment is gone: second revoke of the same attribute fails.
  EXPECT_THROW(aa.revoke(alice, "Doctor"), SchemeError);
}

TEST_F(EntitiesTest, OwnerProtectValidatesInputs) {
  EXPECT_THROW(owner.protect("f", {}), SchemeError);
  // Policy referencing an authority the owner has no keys for.
  EXPECT_THROW(owner.protect("f", {{"c", bytes_of("x"), "Doctor@Med"}}), SchemeError);
}

TEST_F(EntitiesTest, OwnerProtectAndConsumerOpen) {
  aa.define_attribute("Doctor");
  aa.accept_owner_share(owner.share());
  owner.learn_authority_key(aa.public_key());
  for (const auto& [h, pk] : aa.attribute_public_keys()) owner.learn_attribute_key(pk);

  const StoredFile file =
      owner.protect("f", {{"c1", bytes_of("payload-1"), "Doctor@Med"},
                          {"c2", bytes_of("payload-2"), "Doctor@Med"}});
  EXPECT_EQ(file.slots.size(), 2u);
  EXPECT_EQ(owner.tracked_ciphertexts(), 2u);
  // Duplicate component id rejected.
  EXPECT_THROW(owner.protect("f", {{"c1", bytes_of("z"), "Doctor@Med"}}), SchemeError);

  const auto& alice = ca.register_user("alice");
  aa.assign("alice", {"Doctor"});
  Consumer consumer(grp, alice);
  consumer.add_key(aa.issue_key(alice, "hosp"));
  EXPECT_TRUE(consumer.has_key("hosp", "Med"));
  EXPECT_TRUE(consumer.can_open(file.slots[0]));
  const auto view = consumer.open_file(file);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(string_of(view.at("c1")), "payload-1");
  EXPECT_EQ(string_of(view.at("c2")), "payload-2");
}

TEST_F(EntitiesTest, ConsumerRejectsForeignKeys) {
  const auto& alice = ca.register_user("alice");
  const auto& bob = ca.register_user("bob");
  aa.define_attribute("Doctor");
  aa.assign("bob", {"Doctor"});
  aa.accept_owner_share(owner.share());
  Consumer consumer(grp, alice);
  EXPECT_THROW(consumer.add_key(aa.issue_key(bob, "hosp")), SchemeError);
  EXPECT_THROW(consumer.key("hosp", "Med"), SchemeError);
}

TEST_F(EntitiesTest, ConsumerKeyStorageBytes) {
  const auto& alice = ca.register_user("alice");
  aa.define_attribute("Doctor");
  aa.assign("alice", {"Doctor"});
  aa.accept_owner_share(owner.share());
  Consumer consumer(grp, alice);
  EXPECT_EQ(consumer.key_storage_bytes(), 0u);
  consumer.add_key(aa.issue_key(alice, "hosp"));
  EXPECT_GT(consumer.key_storage_bytes(), grp->g1_size());
}

TEST_F(EntitiesTest, ServerStoreFetchReencryptValidation) {
  CloudServer server(grp);
  EXPECT_THROW(server.fetch("nope"), SchemeError);
  EXPECT_THROW(server.store(StoredFile{}), SchemeError);  // empty id
  EXPECT_EQ(server.storage_bytes(), 0u);

  aa.define_attribute("Doctor");
  aa.accept_owner_share(owner.share());
  owner.learn_authority_key(aa.public_key());
  for (const auto& [h, pk] : aa.attribute_public_keys()) owner.learn_attribute_key(pk);
  server.store(owner.protect("f", {{"c", bytes_of("x"), "Doctor@Med"}}));
  EXPECT_TRUE(server.has_file("f"));
  EXPECT_EQ(server.file_ids(), std::vector<std::string>{"f"});
  EXPECT_GT(server.storage_bytes(), 0u);
  EXPECT_GT(server.ciphertext_group_material_bytes(), 0u);

  // Re-encrypt with missing update info throws.
  const auto& alice = ca.register_user("alice");
  aa.assign("alice", {"Doctor"});
  auto bundle = aa.revoke(alice, "Doctor");
  EXPECT_THROW(server.reencrypt(bundle.update_keys.at("hosp"), {}), SchemeError);
}

TEST_F(EntitiesTest, OwnerApplyUpdateIgnoresForeignUpdates) {
  aa.define_attribute("Doctor");
  aa.accept_owner_share(owner.share());
  owner.learn_authority_key(aa.public_key());
  abe::UpdateKey uk;
  uk.aid = "Med";
  uk.owner_id = "someone-else";
  EXPECT_FALSE(owner.apply_update(uk));
  abe::UpdateKey uk2;
  uk2.aid = "UnknownAA";
  uk2.owner_id = "hosp";
  EXPECT_FALSE(owner.apply_update(uk2));
}

}  // namespace
}  // namespace maabe::cloud
